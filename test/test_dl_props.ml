(* Property-based tests (qcheck): algebraic laws of Z-sets and
   differential testing of the incremental engine against the naive
   evaluator on randomised update sequences. *)

open Dl

let ints l = Row.of_list (List.map Value.of_int l)

(* ------------------------------------------------------------------ *)
(* Z-set laws                                                          *)
(* ------------------------------------------------------------------ *)

let gen_zset =
  QCheck2.Gen.(
    let gen_row = map2 (fun a b -> ints [ a; b ]) (int_range 0 5) (int_range 0 5) in
    let gen_entry = map2 (fun r w -> (r, w)) gen_row (int_range (-3) 3) in
    map Zset.of_list (list_size (int_range 0 12) gen_entry))

let zset_law name law =
  QCheck2.Test.make ~count:300 ~name QCheck2.Gen.(pair gen_zset gen_zset) law

let prop_union_commutative =
  zset_law "zset union commutative" (fun (a, b) ->
      Zset.equal (Zset.union a b) (Zset.union b a))

let prop_union_neg_inverse =
  zset_law "zset a + (-a) = 0" (fun (a, _) ->
      Zset.is_empty (Zset.union a (Zset.neg a)))

let prop_diff_is_union_neg =
  zset_law "zset a - b = a + (-b)" (fun (a, b) ->
      Zset.equal (Zset.diff a b) (Zset.union a (Zset.neg b)))

let prop_distinct_idempotent =
  zset_law "zset distinct idempotent" (fun (a, _) ->
      Zset.equal (Zset.distinct a) (Zset.distinct (Zset.distinct a)))

let prop_no_zero_weights =
  zset_law "zset never stores weight 0" (fun (a, b) ->
      Zset.fold (fun _ w acc -> acc && w <> 0) (Zset.union a b) true)

let prop_union_associative =
  QCheck2.Test.make ~count:300 ~name:"zset union associative"
    QCheck2.Gen.(triple gen_zset gen_zset gen_zset)
    (fun (a, b, c) ->
      Zset.equal (Zset.union a (Zset.union b c)) (Zset.union (Zset.union a b) c))

let prop_scale_laws =
  QCheck2.Test.make ~count:300 ~name:"zset scale identities"
    QCheck2.Gen.(triple gen_zset (int_range (-4) 4) (int_range (-4) 4))
    (fun (a, k, l) ->
      Zset.equal (Zset.scale 1 a) a
      && Zset.is_empty (Zset.scale 0 a)
      && Zset.equal (Zset.scale (-1) a) (Zset.neg a)
      && Zset.equal (Zset.scale k (Zset.scale l a)) (Zset.scale (k * l) a))

let prop_scale_distributes =
  zset_law "zset scale distributes over union" (fun (a, b) ->
      List.for_all
        (fun k ->
          Zset.equal
            (Zset.scale k (Zset.union a b))
            (Zset.union (Zset.scale k a) (Zset.scale k b)))
        [ -3; -1; 2; 5 ])

let prop_neg_involution =
  zset_law "zset neg involution, zero-free" (fun (a, _) ->
      Zset.equal (Zset.neg (Zset.neg a)) a
      && Zset.fold (fun _ w acc -> acc && w <> 0) (Zset.neg a) true
      && Zset.fold (fun _ w acc -> acc && w <> 0) (Zset.scale (-2) a) true)

(* ------------------------------------------------------------------ *)
(* Engine vs naive evaluator on random update traces                   *)
(* ------------------------------------------------------------------ *)

(* A trace is a list of transactions; each transaction a list of
   (relation, row, insert?) updates over a small universe, so that
   inserts and deletes of the same rows collide frequently. *)

let run_trace ?(planner = true) ?(use_indexes = true) program rels_arities
    trace =
  let eng = Engine.create ~planner ~use_indexes program in
  (* Current input database, maintained alongside. *)
  let current : (string, Row.Set.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (r, _) -> Hashtbl.replace current r Row.Set.empty) rels_arities;
  let ok = ref true in
  List.iter
    (fun txn_updates ->
      let txn = Engine.transaction eng in
      List.iter
        (fun (rel, row, ins) ->
          if ins then Engine.insert txn rel row else Engine.delete txn rel row;
          let s = Hashtbl.find current rel in
          Hashtbl.replace current rel
            (if ins then Row.Set.add row s else Row.Set.remove row s))
        txn_updates;
      ignore (Engine.commit txn);
      let inputs =
        Hashtbl.fold
          (fun rel s acc -> (rel, Row.Set.elements s) :: acc)
          current []
      in
      let oracle = Naive.run program inputs in
      List.iter
        (fun (d : Ast.rel_decl) ->
          let expected =
            List.sort Row.compare (Row.Set.elements (Naive.get oracle d.rname))
          in
          let actual =
            List.sort Row.compare (Engine.relation_rows eng d.rname)
          in
          if not (List.equal Row.equal expected actual) then ok := false)
        program.Ast.decls)
    trace;
  !ok

let gen_trace rels_arities =
  QCheck2.Gen.(
    let gen_update =
      let* rel, arity = oneofl rels_arities in
      let* row = list_repeat arity (int_range 0 4) in
      let* ins = bool in
      return (rel, ints row, ins)
    in
    let gen_txn = list_size (int_range 1 5) gen_update in
    list_size (int_range 1 10) gen_txn)

let engine_matches_naive name src rels_arities =
  let program = Parser.parse_program_exn src in
  QCheck2.Test.make ~count:60 ~name (gen_trace rels_arities) (fun trace ->
      run_trace program rels_arities trace)

let prop_reachability =
  engine_matches_naive "engine = naive: recursive reachability"
    {|
    input relation Edge(a: int, b: int)
    input relation Src(n: int)
    output relation Reach(n: int)
    Reach(n) :- Src(n).
    Reach(b) :- Reach(a), Edge(a, b).
    |}
    [ ("Edge", 2); ("Src", 1) ]

let prop_mutual_recursion =
  engine_matches_naive "engine = naive: mutual recursion"
    {|
    input relation E(a: int, b: int)
    input relation Start(n: int)
    output relation Even(n: int)
    output relation Odd(n: int)
    Even(n) :- Start(n).
    Odd(b) :- Even(a), E(a, b).
    Even(b) :- Odd(a), E(a, b).
    |}
    [ ("E", 2); ("Start", 1) ]

let prop_join_negation =
  engine_matches_naive "engine = naive: join with negation"
    {|
    input relation R(x: int, y: int)
    input relation S(y: int)
    input relation Block(x: int, y: int)
    output relation T(x: int, y: int)
    T(x, y) :- R(x, y), S(y), not Block(x, y).
    output relation U(x: int)
    U(x) :- R(x, _), not S(x).
    |}
    [ ("R", 2); ("S", 1); ("Block", 2) ]

let prop_aggregates =
  engine_matches_naive "engine = naive: aggregates"
    {|
    input relation M(k: int, v: int)
    output relation Cnt(k: int, n: int)
    output relation Sum(k: int, s: int)
    output relation Lo(k: int, v: int)
    Cnt(k, n) :- M(k, v), var n = count(v) group_by (k).
    Sum(k, s) :- M(k, v), var s = sum(v) group_by (k).
    Lo(k, v) :- M(k, x), var v = min(x) group_by (k).
    |}
    [ ("M", 2) ]

let prop_negated_reach =
  engine_matches_naive "engine = naive: negation over recursion"
    {|
    input relation Edge(a: int, b: int)
    input relation Node(n: int)
    relation Reach(a: int, b: int)
    output relation Cut(a: int, b: int)
    Reach(a, b) :- Edge(a, b).
    Reach(a, c) :- Reach(a, b), Edge(b, c).
    Cut(a, b) :- Node(a), Node(b), not Reach(a, b), a != b.
    |}
    [ ("Edge", 2); ("Node", 1) ]

(* The ablation configurations must agree with the default engine. *)
let prop_planner_off =
  let src =
    {|
    input relation Edge(a: int, b: int)
    input relation Src(n: int)
    output relation Reach(n: int)
    Reach(n) :- Src(n).
    Reach(b) :- Reach(a), Edge(a, b).
    output relation Deg(a: int, n: int)
    Deg(a, n) :- Edge(a, b), var n = count(b) group_by (a).
    |}
  in
  let program = Parser.parse_program_exn src in
  let rels = [ ("Edge", 2); ("Src", 1) ] in
  QCheck2.Test.make ~count:40 ~name:"engine = naive: planner disabled"
    (gen_trace rels)
    (fun trace -> run_trace ~planner:false program rels trace)

let prop_indexes_off =
  let src =
    {|
    input relation Edge(a: int, b: int)
    input relation Src(n: int)
    output relation Reach(n: int)
    Reach(n) :- Src(n).
    Reach(b) :- Reach(a), Edge(a, b).
    |}
  in
  let program = Parser.parse_program_exn src in
  let rels = [ ("Edge", 2); ("Src", 1) ] in
  QCheck2.Test.make ~count:40 ~name:"engine = naive: indexes disabled"
    (gen_trace rels)
    (fun trace -> run_trace ~use_indexes:false program rels trace)

let prop_expressions =
  engine_matches_naive "engine = naive: expressions and flattening"
    {|
    input relation R(x: int, y: int)
    output relation O(a: int, b: int)
    O(x, z) :- R(x, y), var z = x * 10 + y, z % 2 == 0.
    O(x, w) :- R(x, y), var ws = vec_push(vec_push(vec_empty(), y), y + 1),
               var w in ws, w > x.
    |}
    [ ("R", 2) ]

(* ------------------------------------------------------------------ *)
(* Store/index consistency under churn                                  *)
(* ------------------------------------------------------------------ *)

(* Indexed point queries must agree with filtering a full scan, for
   every (single- and multi-column) key, after every transaction of a
   random appear/disappear trace.  The derived relation exercises the
   index maintenance on visibility transitions (rows whose derivation
   count rises above / falls back to zero), where a projection mismatch
   between index_add and index_remove would leak stale bucket rows. *)
let prop_index_churn =
  let program =
    Parser.parse_program_exn
      {|
      input relation R(x: int, y: int)
      input relation S(y: int, z: int)
      output relation T(x: int, y: int, z: int)
      T(x, y, z) :- R(x, y), S(y, z).
      |}
  in
  let rels = [ ("R", 2); ("S", 2) ] in
  QCheck2.Test.make ~count:60 ~name:"store index = scan under churn"
    (gen_trace rels) (fun trace ->
      let eng = Engine.create program in
      let ok = ref true in
      List.iter
        (fun txn_updates ->
          let txn = Engine.transaction eng in
          List.iter
            (fun (rel, row, ins) ->
              if ins then Engine.insert txn rel row
              else Engine.delete txn rel row)
            txn_updates;
          ignore (Engine.commit txn);
          let scan positions key =
            List.filter
              (fun (row : Row.t) ->
                List.for_all2
                  (fun p v -> Value.equal (Row.get row p) v)
                  positions key)
              (Engine.relation_rows eng "T")
          in
          let check positions key =
            let expected = List.sort Row.compare (scan positions key) in
            let actual =
              List.sort Row.compare
                (Engine.query eng "T" ~positions ~key)
            in
            if not (List.equal Row.equal expected actual) then ok := false
          in
          for v = 0 to 4 do
            check [ 0 ] [ Value.of_int v ];
            check [ 1 ] [ Value.of_int v ];
            check [ 2 ] [ Value.of_int v ];
            check [ 0; 2 ] [ Value.of_int v; Value.of_int v ];
            (* unsorted positions: exercise query normalisation *)
            check [ 2; 0 ] [ Value.of_int v; Value.of_int v ]
          done)
        trace;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_union_commutative;
      prop_union_neg_inverse;
      prop_diff_is_union_neg;
      prop_distinct_idempotent;
      prop_no_zero_weights;
      prop_union_associative;
      prop_scale_laws;
      prop_scale_distributes;
      prop_neg_involution;
      prop_index_churn;
      prop_reachability;
      prop_mutual_recursion;
      prop_join_negation;
      prop_aggregates;
      prop_negated_reach;
      prop_expressions;
      prop_planner_off;
      prop_indexes_off;
    ]
