(* Unit tests for Dl.Zset. *)

open Dl

let row i j : Row.t = Row.intern [| Value.of_int i; Value.of_int j |]
let z_testable = Alcotest.testable Zset.pp Zset.equal

let test_add_cancellation () =
  let z = Zset.add (Zset.singleton (row 1 2) 3) (row 1 2) (-3) in
  Alcotest.check z_testable "weights cancel to empty" Zset.empty z;
  Alcotest.(check int) "absent weight is 0" 0 (Zset.weight z (row 1 2))

let test_union_diff () =
  let a = Zset.of_list [ (row 1 1, 2); (row 2 2, -1) ] in
  let b = Zset.of_list [ (row 1 1, -2); (row 3 3, 5) ] in
  Alcotest.check z_testable "union cancels"
    (Zset.of_list [ (row 2 2, -1); (row 3 3, 5) ])
    (Zset.union a b);
  Alcotest.check z_testable "a - a = 0" Zset.empty (Zset.diff a a);
  Alcotest.check z_testable "diff = union neg" (Zset.diff a b)
    (Zset.union a (Zset.neg b))

let test_distinct () =
  let z = Zset.of_list [ (row 1 1, 3); (row 2 2, -2); (row 3 3, 1) ] in
  Alcotest.check z_testable "distinct keeps positives at 1"
    (Zset.of_list [ (row 1 1, 1); (row 3 3, 1) ])
    (Zset.distinct z)

let test_support () =
  let z = Zset.of_list [ (row 1 1, 3); (row 2 2, -2) ] in
  Alcotest.(check int) "support counts positives" 1 (List.length (Zset.support z))

let test_scale () =
  let z = Zset.of_list [ (row 1 1, 2) ] in
  Alcotest.check z_testable "scale by 0" Zset.empty (Zset.scale 0 z);
  Alcotest.check z_testable "scale by -1" (Zset.neg z) (Zset.scale (-1) z)

let test_map_rows_merges () =
  let z = Zset.of_list [ (row 1 1, 2); (row 1 2, 3) ] in
  let merged = Zset.map_rows (fun r -> Row.intern [| Row.get r 0 |]) z in
  Alcotest.(check int) "images merged" 5
    (Zset.weight merged (Row.intern [| Value.of_int 1 |]))

let tests =
  [
    Alcotest.test_case "add cancellation" `Quick test_add_cancellation;
    Alcotest.test_case "union and diff" `Quick test_union_diff;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "map_rows merges weights" `Quick test_map_rows_merges;
  ]
