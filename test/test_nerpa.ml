(* Unit tests for the Nerpa layer (codegen, bridge) and the full-stack
   integration test of §4.3: OVSDB -> DL engine -> P4Runtime -> switch,
   with the MAC-learning digest feedback loop. *)

open Dl

let parse_gen schema p4 =
  let g = Nerpa.Codegen.generate ~schema ~p4 in
  (g, Nerpa.Codegen.decls_text g)

(* ---------------- codegen ---------------- *)

let test_codegen_relations () =
  let g, text = parse_gen Snvs.schema Snvs.p4 in
  let find name =
    match List.find_opt (fun (d : Ast.rel_decl) -> d.rname = name) g.decls with
    | Some d -> d
    | None -> Alcotest.failf "missing generated relation %s" name
  in
  (* OVSDB tables become input relations with a _uuid column. *)
  let port = find "Port" in
  Alcotest.(check bool) "Port is input" true (port.role = Ast.Input);
  Alcotest.(check string) "uuid first" "_uuid" (fst (List.hd port.cols));
  Alcotest.(check bool) "trunks is vec<int>" true
    (Dtype.equal (List.assoc "trunks" port.cols) (Dtype.TVec Dtype.TInt));
  Alcotest.(check bool) "switch_ is option<string>" true
    (Dtype.equal (List.assoc "switch_" port.cols) (Dtype.TOption Dtype.TString));
  (* P4 tables become per-action output relations. *)
  let inv = find "InVlanSetVlan" in
  Alcotest.(check bool) "output role" true (inv.role = Ast.Output);
  Alcotest.(check (list string)) "key+param columns"
    [ "ingress_port"; "vlan_id"; "vlan" ]
    (List.map fst inv.cols);
  (* Ternary tables gain mask and priority columns. *)
  let acl = find "AclDeny" in
  Alcotest.(check (list string)) "ternary layout"
    [ "ethernet_src"; "ethernet_src_mask"; "ethernet_dst"; "ethernet_dst_mask";
      "priority" ]
    (List.map fst acl.cols);
  (* Digests become input relations. *)
  let learned = find "LearnedMac" in
  Alcotest.(check bool) "digest input" true (learned.role = Ast.Input);
  Alcotest.(check bool) "mac is bit<48>" true
    (Dtype.equal (List.assoc "mac" learned.cols) (Dtype.TBit 48));
  (* The generated text parses back as a DL program. *)
  match Parser.parse_program text with
  | Ok p ->
    Alcotest.(check int) "printed decls parse" (List.length g.decls)
      (List.length p.Ast.decls)
  | Error e -> Alcotest.failf "generated text does not parse: %s" e

let test_codegen_mapping () =
  let g, _ = parse_gen Snvs.schema Snvs.p4 in
  let m =
    List.find
      (fun (m : Nerpa.Codegen.mapping) -> m.rel_name = "DmacForward")
      g.mappings
  in
  Alcotest.(check string) "table" "dmac" m.table_name;
  Alcotest.(check string) "action" "forward" m.action_name;
  Alcotest.(check (list int)) "param widths" [ 16 ] m.param_widths;
  Alcotest.(check bool) "no priority" false m.has_priority;
  let acl =
    List.find
      (fun (m : Nerpa.Codegen.mapping) -> m.rel_name = "AclDeny")
      g.mappings
  in
  Alcotest.(check bool) "acl has priority" true acl.has_priority

let test_codegen_camel () =
  Alcotest.(check string) "camel" "InVlan" (Nerpa.Codegen.camel "in_vlan");
  Alcotest.(check string) "already camel" "Port" (Nerpa.Codegen.camel "Port");
  Alcotest.(check string) "single" "Dmac" (Nerpa.Codegen.camel "dmac")

(* ---------------- bridge ---------------- *)

let test_bridge_ovsdb_row () =
  let db = Ovsdb.Db.create Snvs.schema in
  let uuid =
    Ovsdb.Db.insert_exn db "Port"
      [
        ("name", Ovsdb.Datum.string "p1");
        ("port", Ovsdb.Datum.integer 7L);
        ("mode", Ovsdb.Datum.string "trunk");
        ("tag", Ovsdb.Datum.integer 0L);
        ("trunks",
         Ovsdb.Datum.set [ Ovsdb.Atom.Integer 10L; Ovsdb.Atom.Integer 20L ]);
      ]
  in
  let g, _ = parse_gen Snvs.schema Snvs.p4 in
  let decl = List.find (fun (d : Ast.rel_decl) -> d.rname = "Port") g.decls in
  let row = Option.get (Ovsdb.Db.get_row db "Port" uuid) in
  let dl_row = Nerpa.Bridge.row_of_ovsdb decl uuid row in
  Alcotest.(check int) "arity" (List.length decl.cols) (Row.arity dl_row);
  Alcotest.(check bool) "uuid" true
    (Value.equal (Row.get dl_row 0) (Value.VString (Ovsdb.Uuid.to_string uuid)));
  Alcotest.(check bool) "name" true (Value.equal (Row.get dl_row 1) (Value.VString "p1"));
  Alcotest.(check bool) "port" true (Value.equal (Row.get dl_row 2) (Value.VInt 7L));
  Alcotest.(check bool) "trunks" true
    (Value.equal (Row.get dl_row 5) (Value.VVec [ Value.VInt 10L; Value.VInt 20L ]));
  Alcotest.(check bool) "absent ref is none" true
    (Value.equal (Row.get dl_row 6) (Value.VOption None))

let test_bridge_entry_of_row () =
  let g, _ = parse_gen Snvs.schema Snvs.p4 in
  let sw = P4.Switch.create Snvs.p4 in
  let srv = P4runtime.attach sw in
  let info = P4runtime.info srv in
  let m =
    List.find (fun (m : Nerpa.Codegen.mapping) -> m.rel_name = "DmacForward")
      g.mappings
  in
  let row = Row.intern [| Value.bit 12 5L; Value.bit 48 0xAAL; Value.bit 16 3L |] in
  let entry = Nerpa.Bridge.entry_of_row info m row in
  Alcotest.(check bool) "matches" true
    (entry.P4runtime.matches = [ P4runtime.FmExact 5L; P4runtime.FmExact 0xAAL ]);
  Alcotest.(check bool) "args" true (entry.P4runtime.action_args = [ 3L ]);
  (* a ternary relation row carries masks and priority *)
  let acl =
    List.find (fun (m : Nerpa.Codegen.mapping) -> m.rel_name = "AclDeny")
      g.mappings
  in
  let row =
    Row.intern
      [| Value.bit 48 1L; Value.bit 48 0xFFL; Value.bit 48 2L; Value.bit 48 0xFFL;
         Value.VInt 7L |]
  in
  let entry = Nerpa.Bridge.entry_of_row info acl row in
  Alcotest.(check int) "priority" 7 entry.P4runtime.priority;
  Alcotest.(check bool) "ternary matches" true
    (entry.P4runtime.matches
    = [ P4runtime.FmTernary (1L, 0xFFL); P4runtime.FmTernary (2L, 0xFFL) ])

(* ---------------- full stack ---------------- *)

let mac = P4.Stdhdrs.mac_of_string

let frame ~dst ~src =
  P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x1234L ~payload:"data"

let tagged ~dst ~src ~vid =
  P4.Stdhdrs.vlan_frame ~dst ~src ~vid ~ethertype:0x1234L ~payload:"data"

let sync d = ignore (Nerpa.Controller.sync d.Snvs.controller)

let out_ports outs = List.sort Int.compare (List.map fst outs)

let deploy_with_ports () =
  let d = Snvs.deploy () in
  (* three access ports on VLAN 10, one on VLAN 20, one trunk *)
  ignore (Snvs.add_port d ~name:"p1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p4" ~port:4 ~mode:"trunk" ~tag:0 ~trunks:[ 10; 20 ]);
  sync d;
  d

let test_flood_within_vlan () =
  let d = deploy_with_ports () in
  (* unknown destination from p1 floods to VLAN 10 members: p2 and the
     trunk p4 (tagged) — not p3 (VLAN 20), not back to p1 *)
  let outs =
    P4.Switch.process d.switch ~in_port:1
      (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:01"))
  in
  Alcotest.(check (list int)) "flooded" [ 2; 4 ] (out_ports outs);
  (* the copy on the trunk is tagged with VLAN 10 *)
  let _, trunk_pkt = List.find (fun (p, _) -> p = 4) outs in
  Alcotest.(check int64) "trunk tagged" P4.Stdhdrs.ethertype_vlan
    (P4.Packet.get_bits trunk_pkt ~bit_offset:96 ~width:16);
  Alcotest.(check int64) "vid 10" 10L
    (P4.Packet.get_bits trunk_pkt ~bit_offset:116 ~width:12);
  (* the copy on the access port is untagged *)
  let _, access_pkt = List.find (fun (p, _) -> p = 2) outs in
  Alcotest.(check int64) "access untagged" 0x1234L
    (P4.Packet.get_bits access_pkt ~bit_offset:96 ~width:16)

let test_mac_learning_feedback () =
  let d = deploy_with_ports () in
  (* traffic from host A on p1 generates a digest; after sync the
     controller installs smac/dmac entries *)
  ignore
    (P4.Switch.process d.switch ~in_port:1
       (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:0a")));
  sync d;
  Alcotest.(check int) "dmac installed" 1 (P4.Switch.entry_count d.switch "dmac");
  Alcotest.(check int) "smac installed" 1 (P4.Switch.entry_count d.switch "smac");
  (* now traffic to A from p2 is unicast to p1 *)
  let outs =
    P4.Switch.process d.switch ~in_port:2
      (frame ~dst:(mac "00:00:00:00:00:0a") ~src:(mac "00:00:00:00:00:0b"))
  in
  Alcotest.(check (list int)) "unicast to learned port" [ 1 ] (out_ports outs);
  sync d;
  (* learning B too: no duplicate for A, one entry for B *)
  Alcotest.(check int) "two dmac entries" 2 (P4.Switch.entry_count d.switch "dmac");
  (* A's repeated traffic no longer digests *)
  ignore
    (P4.Switch.process d.switch ~in_port:1
       (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:0a")));
  Alcotest.(check int) "no new digest" 0
    (List.length (P4.Switch.take_digests d.switch))

let test_mac_mobility () =
  let d = deploy_with_ports () in
  let a = mac "00:00:00:00:00:0a" in
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:a));
  sync d;
  (* the same MAC appears on p2: group_by max picks the new port and the
     controller must *modify* the dmac entry (delete then insert) *)
  ignore (P4.Switch.process d.switch ~in_port:2 (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:a));
  sync d;
  Alcotest.(check int) "still one dmac entry for A" 1
    (P4.Switch.entry_count d.switch "dmac");
  let outs = P4.Switch.process d.switch ~in_port:3 (frame ~dst:a ~src:(mac "00:00:00:00:00:0c")) in
  ignore outs;
  let outs = P4.Switch.process d.switch ~in_port:4 (tagged ~dst:a ~src:(mac "00:00:00:00:00:0d") ~vid:10L) in
  Alcotest.(check (list int)) "unicast to moved port" [ 2 ] (out_ports outs)

let test_trunk_admission () =
  let d = deploy_with_ports () in
  (* VLAN 30 is not allowed on the trunk: dropped *)
  let outs =
    P4.Switch.process d.switch ~in_port:4
      (tagged ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:0e") ~vid:30L)
  in
  Alcotest.(check int) "disallowed vlan dropped" 0 (List.length outs);
  (* VLAN 20 floods to p3, untagged *)
  let outs =
    P4.Switch.process d.switch ~in_port:4
      (tagged ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:0e") ~vid:20L)
  in
  Alcotest.(check (list int)) "vlan 20 flood" [ 3 ] (out_ports outs);
  (* untagged traffic on the trunk is dropped (no native VLAN) *)
  let outs =
    P4.Switch.process d.switch ~in_port:4
      (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:0e"))
  in
  Alcotest.(check int) "untagged on trunk dropped" 0 (List.length outs)

let test_port_deletion_retracts () =
  let d = deploy_with_ports () in
  let before = P4.Switch.entry_count d.switch "in_vlan" in
  Snvs.del_port d ~name:"p2";
  sync d;
  Alcotest.(check int) "in_vlan entry removed" (before - 1)
    (P4.Switch.entry_count d.switch "in_vlan");
  (* flooding from p1 no longer reaches p2 *)
  let outs =
    P4.Switch.process d.switch ~in_port:1
      (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:01"))
  in
  Alcotest.(check (list int)) "p2 out of the flood set" [ 4 ] (out_ports outs)

let test_mirroring () =
  let d = deploy_with_ports () in
  ignore (Snvs.add_mirror d ~name:"m1" ~select_port:1 ~output_port:9);
  sync d;
  let outs =
    P4.Switch.process d.switch ~in_port:1
      (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:01"))
  in
  Alcotest.(check (list int)) "flood + mirror copy" [ 2; 4; 9 ] (out_ports outs)

let test_acl_deny () =
  let d = deploy_with_ports () in
  let a = mac "00:00:00:00:00:0a" and b = mac "00:00:00:00:00:0b" in
  ignore
    (Snvs.add_acl d ~priority:10 ~src:a ~src_mask:0xFFFFFFFFFFFFL ~dst:b
       ~dst_mask:0xFFFFFFFFFFFFL ~allow:false);
  sync d;
  Alcotest.(check int) "a->b dropped" 0
    (List.length (P4.Switch.process d.switch ~in_port:1 (frame ~dst:b ~src:a)));
  Alcotest.(check bool) "b->a still flows" true
    (P4.Switch.process d.switch ~in_port:1 (frame ~dst:a ~src:b) <> [])

let test_no_flood_vlan () =
  let d = deploy_with_ports () in
  Snvs.set_vlan_flood d ~vlan:10 ~flood:false;
  sync d;
  let outs =
    P4.Switch.process d.switch ~in_port:1
      (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:01"))
  in
  Alcotest.(check int) "vlan 10 flood suppressed" 0 (List.length outs);
  (* re-enable by flipping the row *)
  ignore
    (Ovsdb.Db.transact_exn d.db
       [ Ovsdb.Db.Update
           { table = "Vlan";
             where = [ Ovsdb.Db.eq "vlan" (Ovsdb.Datum.integer 10L) ];
             row = [ ("flood", Ovsdb.Datum.boolean true) ] } ]);
  sync d;
  let outs =
    P4.Switch.process d.switch ~in_port:1
      (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:01"))
  in
  Alcotest.(check (list int)) "flood restored" [ 2; 4 ] (out_ports outs)

let test_preflight_and_inventory () =
  let d = Snvs.deploy () in
  Alcotest.(check (list string)) "no preflight warnings" []
    (Nerpa.Controller.preflight d.controller);
  let inv = Snvs.loc_inventory () in
  Alcotest.(check bool) "rules are compact" true (inv.rules_loc < 60);
  Alcotest.(check int) "five ovsdb tables" 5 inv.ovsdb_tables;
  Alcotest.(check bool) "generation produced decls" true (inv.generated_loc > 10)

let test_controller_restart () =
  (* Failover: a fresh controller + switch attached to the surviving
     management database converges to the same configured state (the
     monitor's initial snapshot replays it); learned MACs are data-plane
     soft state and come back with traffic. *)
  let d = deploy_with_ports () in
  ignore
    (P4.Switch.process d.switch ~in_port:1
       (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:0a")));
  sync d;
  Alcotest.(check int) "learned before restart" 1
    (P4.Switch.entry_count d.switch "dmac");
  (* restart: new switch, new controller, same database *)
  let sw2 = P4.Switch.create ~name:"snvs0'" Snvs.p4 in
  let c2 =
    Nerpa.Controller.create
      ~digest_replace:[ ("learned_mac", [ "vlan"; "mac" ]) ]
      ~db:d.db ~p4:Snvs.p4 ~rules:Snvs.rules
      ~switches:[ ("snvs0'", sw2) ] ()
  in
  ignore (Nerpa.Controller.sync c2);
  (* configured state is fully restored *)
  Alcotest.(check int) "in_vlan restored"
    (P4.Switch.entry_count d.switch "in_vlan")
    (P4.Switch.entry_count sw2 "in_vlan");
  Alcotest.(check bool) "groups restored" true
    (P4.Switch.mcast_group d.switch 10L = P4.Switch.mcast_group sw2 10L);
  (* learned state is gone but regenerates from traffic *)
  Alcotest.(check int) "learned state reset" 0 (P4.Switch.entry_count sw2 "dmac");
  ignore
    (P4.Switch.process sw2 ~in_port:1
       (frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "00:00:00:00:00:0a")));
  ignore (Nerpa.Controller.sync c2);
  Alcotest.(check int) "relearned" 1 (P4.Switch.entry_count sw2 "dmac")

let test_controller_stats () =
  let d = deploy_with_ports () in
  let s = Nerpa.Controller.stats d.controller in
  Alcotest.(check bool) "transactions happened" true (s.Nerpa.Controller.txns > 0);
  Alcotest.(check bool) "entries written" true
    (s.Nerpa.Controller.entries_written > 0);
  Alcotest.(check bool) "groups programmed" true
    (s.Nerpa.Controller.groups_updated > 0)

let test_sync_quiescence_diagnostics () =
  (* With a single iteration of fuel, any real change cannot quiesce
     (one iteration consumes the monitor batch, a second must observe
     silence).  The failure must name the fuel and the relations that
     were still changing, with their delta sizes. *)
  let d = Snvs.deploy ~max_iterations:1 () in
  ignore (Snvs.add_port d ~name:"p1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match Nerpa.Controller.sync d.controller with
  | _ -> Alcotest.fail "sync should not quiesce with max_iterations:1"
  | exception Nerpa.Controller.Controller_error msg ->
    Alcotest.(check bool) "names the fuel" true
      (has_sub msg "did not quiesce after 1 iterations");
    Alcotest.(check bool) "names the changing relation" true
      (has_sub msg "Port");
    Alcotest.(check bool) "gives a cardinality" true (has_sub msg "rows"));
  (* default fuel handles the same change fine *)
  let d2 = Snvs.deploy () in
  ignore
    (Snvs.add_port d2 ~name:"p1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  Alcotest.(check bool) "default fuel quiesces" true
    (Nerpa.Controller.sync d2.controller >= 0);
  (* non-positive fuel is rejected at construction *)
  Alcotest.(check bool) "zero fuel rejected" true
    (try
       ignore (Snvs.deploy ~max_iterations:0 ());
       false
     with Nerpa.Controller.Controller_error _ -> true)

let tests =
  [
    Alcotest.test_case "codegen relations" `Quick test_codegen_relations;
    Alcotest.test_case "codegen mapping" `Quick test_codegen_mapping;
    Alcotest.test_case "codegen camel" `Quick test_codegen_camel;
    Alcotest.test_case "bridge ovsdb row" `Quick test_bridge_ovsdb_row;
    Alcotest.test_case "bridge entry of row" `Quick test_bridge_entry_of_row;
    Alcotest.test_case "flood within vlan" `Quick test_flood_within_vlan;
    Alcotest.test_case "mac learning feedback" `Quick test_mac_learning_feedback;
    Alcotest.test_case "mac mobility" `Quick test_mac_mobility;
    Alcotest.test_case "trunk admission" `Quick test_trunk_admission;
    Alcotest.test_case "port deletion retracts" `Quick test_port_deletion_retracts;
    Alcotest.test_case "mirroring" `Quick test_mirroring;
    Alcotest.test_case "acl deny" `Quick test_acl_deny;
    Alcotest.test_case "per-vlan flood control" `Quick test_no_flood_vlan;
    Alcotest.test_case "preflight and LoC inventory" `Quick
      test_preflight_and_inventory;
    Alcotest.test_case "controller restart" `Quick test_controller_restart;
    Alcotest.test_case "controller stats" `Quick test_controller_stats;
    Alcotest.test_case "sync quiescence diagnostics" `Quick
      test_sync_quiescence_diagnostics;
  ]
