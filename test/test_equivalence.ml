(* The strongest full-stack oracle: random configuration histories are
   applied simultaneously to the Nerpa stack (OVSDB -> incremental DL
   engine -> P4Runtime) and to the imperative recompute controller; the
   two switches' complete data-plane states must coincide after every
   step.  This pins the incremental controller's *cumulative* behaviour
   (including deletions, modifications and MAC learning) to the
   recompute-from-scratch semantics. *)

let entry_set sw table =
  List.sort compare
    (List.map
       (fun (e : P4.Entry.t) -> (e.matches, e.priority, e.action, e.args))
       (P4.Switch.table_entries sw table))

let groups_of sw vlans =
  List.map
    (fun v -> (v, P4.Switch.mcast_group sw (Int64.of_int v)))
    vlans

type step =
  | SAddPort of int * int * bool (* port, vlan, trunk? *)
  | SDelPort of int
  | SMirror of int * int
  | SDelMirrors
  | SAcl of int * int64 * int64 * bool
  | SVlanFlood of int * bool
  | STraffic of int64 * int (* src mac, in port *)

let vlans = [ 10; 11; 12 ]

let gen_step r live_ports =
  match Random.State.int r 8 with
  | 0 | 1 ->
    let p = 1 + Random.State.int r 12 in
    SAddPort (p, List.nth vlans (Random.State.int r 3), Random.State.bool r)
  | 2 when live_ports <> [] ->
    SDelPort (List.nth live_ports (Random.State.int r (List.length live_ports)))
  | 3 -> SMirror (1 + Random.State.int r 12, 90 + Random.State.int r 3)
  | 4 -> SDelMirrors
  | 5 ->
    SAcl
      ( 1 + Random.State.int r 5,
        Int64.of_int (Random.State.int r 4),
        Int64.of_int (Random.State.int r 4),
        Random.State.bool r )
  | 6 -> SVlanFlood (List.nth vlans (Random.State.int r 3), Random.State.bool r)
  | _ ->
    STraffic
      ( Int64.of_int (0x020000000000 + Random.State.int r 6),
        1 + Random.State.int r 12 )

let test_random_histories () =
  let r = Random.State.make [| 2026 |] in
  for _trial = 0 to 9 do
    let d = Snvs.deploy () in
    let live = ref [] in
    let next_acl = ref 100 in
    for _step = 0 to 30 do
      (match gen_step r !live with
      | SAddPort (p, vlan, trunk) ->
        if not (List.mem p !live) then begin
          live := p :: !live;
          ignore
            (Snvs.add_port d
               ~name:(Printf.sprintf "p%d" p)
               ~port:p
               ~mode:(if trunk then "trunk" else "access")
               ~tag:(if trunk then 0 else vlan)
               ~trunks:(if trunk then vlans else []))
        end
      | SDelPort p ->
        live := List.filter (fun q -> q <> p) !live;
        Snvs.del_port d ~name:(Printf.sprintf "p%d" p)
      | SMirror (sel, out) ->
        ignore
          (Snvs.add_mirror d
             ~name:(Printf.sprintf "m%d" !next_acl)
             ~select_port:sel ~output_port:out);
        incr next_acl
      | SDelMirrors ->
        ignore
          (Ovsdb.Db.transact_exn d.db
             [ Ovsdb.Db.Delete { table = "Mirror"; where = [] } ])
      | SAcl (prio, src, dst, allow) ->
        ignore
          (Snvs.add_acl d ~priority:!next_acl ~src ~src_mask:(-1L) ~dst
             ~dst_mask:(-1L) ~allow);
        ignore prio;
        incr next_acl
      | SVlanFlood (vlan, flood) ->
        ignore
          (Ovsdb.Db.transact_exn d.db
             [ Ovsdb.Db.Delete
                 { table = "Vlan";
                   where = [ Ovsdb.Db.eq "vlan" (Ovsdb.Datum.integer (Int64.of_int vlan)) ] } ]);
        Snvs.set_vlan_flood d ~vlan ~flood
      | STraffic (src, port) ->
        ignore
          (P4.Switch.process d.switch ~in_port:port
             (P4.Stdhdrs.ethernet_frame ~dst:0xFFFFFFFFFFFFL ~src
                ~ethertype:0x0800L ~payload:"x")));
      ignore (Nerpa.Controller.sync d.controller);

      (* Rebuild the full imperative config from the current OVSDB
         contents plus the engine's learned-MAC inputs, recompute from
         scratch, and compare data planes. *)
      let cfg =
        {
          Baseline.Snvs_imperative.ports =
            Ovsdb.Db.fold_rows d.db "Port"
              (fun _ row acc ->
                let geti c =
                  Int64.to_int
                    (Option.get (Ovsdb.Datum.as_integer (Ovsdb.Db.column_value row c)))
                in
                let mode =
                  Option.get (Ovsdb.Datum.as_string (Ovsdb.Db.column_value row "mode"))
                in
                {
                  Baseline.Snvs_imperative.port = geti "port";
                  mode = (if mode = "trunk" then `Trunk else `Access);
                  tag = geti "tag";
                  trunks =
                    (match Ovsdb.Db.column_value row "trunks" with
                    | Ovsdb.Datum.Set atoms ->
                      List.map
                        (function
                          | Ovsdb.Atom.Integer i -> Int64.to_int i
                          | _ -> 0)
                        atoms
                    | _ -> []);
                }
                :: acc)
              [];
          mirrors =
            Ovsdb.Db.fold_rows d.db "Mirror"
              (fun _ row acc ->
                let geti c =
                  Int64.to_int
                    (Option.get (Ovsdb.Datum.as_integer (Ovsdb.Db.column_value row c)))
                in
                { Baseline.Snvs_imperative.select_port = geti "select_port";
                  output_port = geti "output_port" }
                :: acc)
              [];
          acls =
            Ovsdb.Db.fold_rows d.db "Acl"
              (fun _ row acc ->
                let geti64 c =
                  Option.get (Ovsdb.Datum.as_integer (Ovsdb.Db.column_value row c))
                in
                {
                  Baseline.Snvs_imperative.prio = Int64.to_int (geti64 "priority");
                  src = geti64 "src";
                  src_mask = geti64 "src_mask";
                  dst = geti64 "dst";
                  dst_mask = geti64 "dst_mask";
                  allow =
                    Option.get
                      (Ovsdb.Datum.as_boolean (Ovsdb.Db.column_value row "allow"));
                }
                :: acc)
              [];
          no_flood_vlans =
            Ovsdb.Db.fold_rows d.db "Vlan"
              (fun _ row acc ->
                if
                  Ovsdb.Datum.as_boolean (Ovsdb.Db.column_value row "flood")
                  = Some false
                then
                  Int64.to_int
                    (Option.get
                       (Ovsdb.Datum.as_integer (Ovsdb.Db.column_value row "vlan")))
                  :: acc
                else acc)
              [];
          macs =
            List.map
              (fun row ->
                {
                  Baseline.Snvs_imperative.l_port =
                    Int64.to_int (Dl.Value.as_int (Dl.Row.get row 0));
                  l_vlan = Int64.to_int (Dl.Value.as_int (Dl.Row.get row 1));
                  l_mac = Dl.Value.as_int (Dl.Row.get row 2);
                })
              (Dl.Engine.relation_rows
                 (Nerpa.Controller.engine d.controller)
                 "LearnedMac");
        }
      in
      let sw2 = P4.Switch.create Snvs.p4 in
      let inst = Baseline.Snvs_imperative.fresh_installed () in
      ignore (Baseline.Snvs_imperative.reconcile inst sw2 cfg);
      List.iter
        (fun table ->
          if entry_set d.switch table <> entry_set sw2 table then
            Alcotest.failf "table %s diverged from recompute semantics" table)
        [ "in_vlan"; "out_vlan"; "mirror"; "acl"; "smac"; "dmac" ];
      if groups_of d.switch vlans <> groups_of sw2 vlans then begin
        let show gs =
          String.concat "; "
            (List.map
               (fun (v, ports) ->
                 Printf.sprintf "%d->%s" v
                   (match ports with
                   | None -> "none"
                   | Some ps ->
                     "[" ^ String.concat "," (List.map Int64.to_string ps) ^ "]"))
               gs)
        in
        Alcotest.failf "multicast groups diverged: nerpa {%s} vs recompute {%s}"
          (show (groups_of d.switch vlans))
          (show (groups_of sw2 vlans))
      end
    done
  done

let tests =
  [ Alcotest.test_case "nerpa = recompute on random histories" `Quick
      test_random_histories ]
