(* Tests for incremental FDD recompilation (PR 9):
   - Openflow flow-delta algebra: diff, pair_modifies, apply_delta;
   - Compile.State differentials: after scripted and QCheck-random
     entry churn the patched diagrams are structurally identical to a
     from-scratch compile, the flow set dumps byte-identically, and
     replaying the emitted deltas over the previous pipeline
     reconstructs the new one (checked by dump and by Eval probes);
   - manager compaction keeps the interned node count bounded across
     10^4 churn transactions without changing results;
   - fold_flows streams the exact flow sequence compile materialises;
   - Switch.process_many agrees with per-packet process;
   - Controller.attach_flow_programmer pushes deltas through sync and
     reconciliation that replay to the from-scratch pipeline. *)

open Ofp4

let mk = Test_fdd.mk
let churn_prog = Test_fdd.churn_prog

let dump_of_state st = Openflow.dump (Compile.State.flows st)

(* A deep copy of a pipeline, so delta replay does not alias the
   original's mutable flow list. *)
let copy_pipeline (p : Openflow.t) : Openflow.t =
  { Openflow.flows = p.Openflow.flows; n_tables = p.Openflow.n_tables;
    egress_start = p.Openflow.egress_start }

let check_dump what expected actual =
  if not (String.equal expected actual) then
    Alcotest.failf "%s: pipeline dump mismatch\n--- expected ---\n%s\n--- actual ---\n%s"
      what expected actual

(* Order-insensitive dump comparison: [dump]'s sort is stable on
   (table, priority), so equal-priority flows keep insertion order —
   fine within one pipeline, but a mirror patched by delta replay
   inserts in delta order.  Same-priority flows in a group have
   disjoint matches, so line-multiset equality is the right oracle. *)
let check_dump_canon what expected actual =
  let canon d = List.sort compare (String.split_on_char '\n' d) in
  if canon expected <> canon actual then
    Alcotest.failf "%s: pipeline dump mismatch\n--- expected ---\n%s\n--- actual ---\n%s"
      what expected actual

(* The from-scratch oracle: State.flows must dump identically to
   Compile.compile of the live switch, the diagrams must be
   structurally equal to a fresh State's, and [mirror] (the previous
   pipeline patched by the emitted deltas) must match too. *)
let check_state ~what sw st (mirror : Openflow.t) =
  let scratch = Openflow.dump (Compile.compile sw) in
  check_dump (what ^ " (state vs compile)") scratch (dump_of_state st);
  check_dump_canon (what ^ " (delta replay vs compile)") scratch
    (Openflow.dump mirror);
  let fresh = Compile.State.create sw in
  List.iter2
    (fun (tid, inc) (tid', scr) ->
      Alcotest.(check int) (what ^ ": plan ids align") tid tid';
      if not (String.equal inc scr) then
        Alcotest.failf
          "%s: diagram for table %d diverged from scratch\n--- incremental ---\n%s\n--- scratch ---\n%s"
          what tid inc scr)
    (Compile.State.render st)
    (Compile.State.render fresh)

(* ------------------------------------------------------------------ *)
(* Flow-delta algebra                                                  *)
(* ------------------------------------------------------------------ *)

let fl ?(table = 0) ?(prio = 1) ?(cookie = "t/a") matches actions =
  { Openflow.table_id = table; priority = prio; matches; actions; cookie }

let fm field value =
  { Openflow.mfield = field; mvalue = value; mmask = Some (-1L) }

let test_diff_pairs_modifies () =
  let f1 = fl [ fm "a" 1L ] [ Openflow.Output 1L ] in
  let f2 = fl [ fm "a" 2L ] [ Openflow.Output 2L ] in
  let f2' = fl [ fm "a" 2L ] [ Openflow.Output 9L ] in
  let f3 = fl [ fm "a" 3L ] [ Openflow.Output 3L ] in
  let f4 = fl [ fm "a" 4L ] [ Openflow.Output 4L ] in
  let d =
    Openflow.diff ~old_flows:[ f1; f2; f3 ] ~new_flows:[ f1; f2'; f4 ]
  in
  Alcotest.(check int) "adds" 1 (List.length d.Openflow.fd_add);
  Alcotest.(check int) "mods" 1 (List.length d.Openflow.fd_mod);
  Alcotest.(check int) "dels" 1 (List.length d.Openflow.fd_del);
  Alcotest.(check bool) "f4 added" true (List.mem f4 d.Openflow.fd_add);
  Alcotest.(check bool) "f3 deleted" true (List.mem f3 d.Openflow.fd_del);
  Alcotest.(check bool) "f2 modified" true
    (d.Openflow.fd_mod = [ (f2, f2') ]);
  Alcotest.(check int) "delta size" 3 (Openflow.delta_size d);
  (* identical sides diff to nothing, duplicates count as a multiset *)
  let d0 = Openflow.diff ~old_flows:[ f1; f1 ] ~new_flows:[ f1; f1 ] in
  Alcotest.(check int) "no change" 0 (Openflow.delta_size d0);
  let d1 = Openflow.diff ~old_flows:[ f1; f1 ] ~new_flows:[ f1 ] in
  Alcotest.(check int) "multiset del" 1 (List.length d1.Openflow.fd_del)

let test_apply_delta () =
  let f1 = fl [ fm "a" 1L ] [ Openflow.Output 1L ] in
  let f2 = fl [ fm "a" 2L ] [ Openflow.Output 2L ] in
  let f2' = fl [ fm "a" 2L ] [ Openflow.Output 9L ] in
  let f3 = fl [ fm "a" 3L ] [ Openflow.Output 3L ] in
  let prog = Openflow.create () in
  Openflow.add_flow prog f1;
  Openflow.add_flow prog f2;
  let d =
    Openflow.diff ~old_flows:prog.Openflow.flows ~new_flows:[ f2'; f3 ]
  in
  Openflow.apply_delta prog d;
  let target = Openflow.create () in
  Openflow.add_flow target f2';
  Openflow.add_flow target f3;
  check_dump_canon "apply_delta" (Openflow.dump target) (Openflow.dump prog);
  (* deleting a flow that is not installed is a hard error *)
  Alcotest.check_raises "absent delete rejected"
    (Invalid_argument "Openflow.apply_delta: flow to delete not present: 0")
    (fun () ->
      Openflow.apply_delta prog
        { Openflow.fd_add = []; fd_mod = []; fd_del = [ f1 ] })

(* ------------------------------------------------------------------ *)
(* Scripted State differential                                         *)
(* ------------------------------------------------------------------ *)

let acl_e ?(prio = 0) v m port =
  mk
    ~matches:[ P4.Entry.MTernary (v, m) ]
    ~prio ~action:"forward"
    ~args:[ Int64.of_int port ]
    ()

let route_e ?(prio = 0) prefix len port =
  mk
    ~matches:[ P4.Entry.MLpm (prefix, len) ]
    ~prio ~action:"forward"
    ~args:[ Int64.of_int port ]
    ()

(* Apply one churn transaction to the live switch and to the State,
   replay the emitted delta onto [mirror], and run the oracle. *)
let churn_step ~what sw st mirror (ops : (string * (P4.Entry.t * int) list) list)
    =
  List.iter
    (fun (tname, tops) ->
      List.iter
        (fun ((e : P4.Entry.t), w) ->
          if w < 0 then P4.Switch.delete_entry sw tname e
          else P4.Switch.insert_entry sw tname e)
        tops)
    ops;
  let d = Compile.State.apply_delta st ops in
  Openflow.apply_delta mirror d;
  check_state ~what sw st mirror;
  d

let test_state_scripted () =
  let sw = P4.Switch.create churn_prog in
  P4.Switch.insert_entry sw "routes" (route_e 0x0A000000L 8 1);
  P4.Switch.insert_entry sw "routes" (route_e 0x0A010000L 16 2);
  P4.Switch.insert_entry sw "acl" (acl_e 0x05L 0xFFL 3);
  let st = Compile.State.create sw in
  let mirror = copy_pipeline (Compile.State.flows st) in
  check_state ~what:"initial" sw st mirror;
  let step what ops = ignore (churn_step ~what sw st mirror ops) in
  (* insert a finer route: splices above the /16 *)
  step "insert /24" [ ("routes", [ (route_e 0x0A010200L 24 3, 1) ]) ];
  (* insert a coarser route: splices near the bottom of the spine *)
  step "insert /4" [ ("routes", [ (route_e 0x00000000L 4 4, 1) ]) ];
  (* a default-hiding catch-all *)
  step "insert /0" [ ("routes", [ (route_e 0L 0 5, 1) ]) ];
  (* same-match replace: action args change in place *)
  step "replace /16" [ ("routes", [ (route_e 0x0A010000L 16 9, 1) ]) ];
  (* equal canonical test, different raw value: shadowing inside a rank
     run, not a replace *)
  step "shadow /8" [ ("routes", [ (route_e ~prio:1 0x0A000001L 8 7, 1) ]) ];
  (* remove in the middle, remove an absent entry (silent no-op) *)
  step "remove /24 + absent"
    [ ("routes",
       [ (route_e 0x0A010200L 24 3, -1); (route_e 0x0B000000L 8 9, -1) ]) ];
  (* remove the catch-all: the hidden table default resurfaces *)
  step "remove /0" [ ("routes", [ (route_e 0L 0 5, -1) ]) ];
  (* ternary table churn goes through the refold path *)
  step "acl churn"
    [ ("acl",
       [ (acl_e 0x05L 0xFFL 3, -1); (acl_e ~prio:2 0x0500L 0xFF00L 4, 1);
         (acl_e 0L 0L 1, 1) ]) ];
  (* one transaction touching both tables *)
  step "cross-table"
    [ ("routes", [ (route_e 0x0AFF0000L 16 6, 1) ]);
      ("acl", [ (acl_e 0L 0L 1, -1) ]) ];
  (* empty the LPM table entirely *)
  step "drain routes"
    [ ("routes",
       [ (route_e ~prio:1 0x0A000001L 8 7, -1); (route_e 0x0A000000L 8 1, -1);
         (route_e 0x0A010000L 16 9, -1); (route_e 0x00000000L 4 4, -1);
         (route_e 0x0AFF0000L 16 6, -1) ]) ];
  Alcotest.check_raises "unknown table rejected"
    (Invalid_argument "Compile.State: unknown table nosuch") (fun () ->
      ignore (Compile.State.apply_delta st [ ("nosuch", [ (acl_e 0L 0L 1, 1) ]) ]))

(* A multi-op transaction on a ternary table always takes the refold
   fallback — the in-place fast path is LPM-only — so pin that the
   refolded diagrams stay byte-identical to a from-scratch State and
   that the emitted delta replays exactly, under one 2-op transaction
   (delete + insert on the same table). *)
let test_ternary_refold_two_op () =
  let sw = P4.Switch.create churn_prog in
  P4.Switch.insert_entry sw "acl" (acl_e ~prio:3 0x0500L 0xFF00L 2);
  P4.Switch.insert_entry sw "acl" (acl_e ~prio:1 0x05L 0xFFL 3);
  P4.Switch.insert_entry sw "acl" (acl_e 0L 0L 1);
  let st = Compile.State.create sw in
  let mirror = copy_pipeline (Compile.State.flows st) in
  check_state ~what:"seeded acl" sw st mirror;
  ignore
    (churn_step ~what:"ternary 2-op refold" sw st mirror
       [ ("acl",
          [ (acl_e ~prio:1 0x05L 0xFFL 3, -1);
            (acl_e ~prio:2 0x0005L 0x00FFL 4, 1) ]) ]);
  let fresh = Compile.State.create sw in
  List.iter2
    (fun (tid, inc) (tid', scr) ->
      Alcotest.(check int) "plan ids align" tid tid';
      Alcotest.(check string)
        (Printf.sprintf "table %d diagram byte-identical" tid)
        scr inc)
    (Compile.State.render st)
    (Compile.State.render fresh)

(* Single-entry churn on a mid-sized FIB emits a small delta, not a
   table rewrite: the incremental path patches rather than recompiles. *)
let test_state_delta_is_small () =
  let sw = P4.Switch.create churn_prog in
  for i = 0 to 999 do
    P4.Switch.insert_entry sw "routes"
      (route_e (Int64.of_int (0x0A000000 lor (i lsl 8))) 24 ((i mod 4) + 1))
  done;
  let st = Compile.State.create sw in
  let mirror = copy_pipeline (Compile.State.flows st) in
  let e = route_e 0x0B000000L 24 2 in
  let d = churn_step ~what:"fib add" sw st mirror [ ("routes", [ (e, 1) ]) ] in
  Alcotest.(check bool)
    (Printf.sprintf "insert delta small (%d)" (Openflow.delta_size d))
    true
    (Openflow.delta_size d <= 4);
  let d =
    churn_step ~what:"fib del" sw st mirror [ ("routes", [ (e, -1) ]) ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "delete delta small (%d)" (Openflow.delta_size d))
    true
    (Openflow.delta_size d <= 4)

(* ------------------------------------------------------------------ *)
(* QCheck churn lockstep                                               *)
(* ------------------------------------------------------------------ *)

let gen_op =
  QCheck2.Gen.(
    let gen_acl =
      let* v = oneofl [ 0x05L; 0x0500L; 0x05000000L; 0xDEAD0000L; 0L ] in
      let* m = oneofl [ 0L; 0xFFL; 0xFF00L; 0xFFFF0000L; -1L ] in
      let* prio = int_range 0 3 in
      let* port = int_range 1 4 in
      return ("acl", acl_e ~prio v m port)
    in
    let gen_route =
      let* base = int_range 0 2 in
      let* sub = int_range 0 3 in
      let* len = oneofl [ 0; 4; 8; 16; 24; 32 ] in
      let* prio = int_range 0 2 in
      let* port = int_range 1 4 in
      let prefix =
        Int64.logor
          (Int64.shift_left (Int64.of_int (10 + base)) 24)
          (Int64.shift_left (Int64.of_int sub) 16)
      in
      return ("routes", route_e ~prio prefix len port)
    in
    let* tbl_e = oneof [ gen_acl; gen_route ] in
    let* remove = frequency [ (2, return false); (1, return true) ] in
    return (tbl_e, remove))

let prop_state_churn_differential =
  QCheck2.Test.make ~count:30
    ~name:"incremental state matches from-scratch compile under churn"
    QCheck2.Gen.(list_size (int_range 1 10) (list_size (int_range 1 4) gen_op))
    (fun txns ->
      let sw = P4.Switch.create churn_prog in
      let st = Compile.State.create sw in
      let mirror = copy_pipeline (Compile.State.flows st) in
      List.iter
        (fun txn ->
          (* removals name a previously generated entry only by shape;
             removing an absent one must be a no-op on both sides *)
          let ops =
            List.fold_left
              (fun acc ((tname, e), remove) ->
                let w = if remove then -1 else 1 in
                match List.assoc_opt tname acc with
                | Some tops ->
                  (tname, tops @ [ (e, w) ]) :: List.remove_assoc tname acc
                | None -> (tname, [ (e, w) ]) :: acc)
              [] txn
          in
          ignore (churn_step ~what:"qcheck churn" sw st mirror ops))
        txns;
      (* behavioural check: the incremental pipeline forwards like the
         interpreter switch *)
      let ev = Eval.of_switch sw (Compile.State.flows st) in
      List.for_all
        (fun (src, dst) ->
          Test_fdd.sorted_outs
            (P4.Switch.process sw ~in_port:5
               (P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:src
                  ~ip_dst:dst ~src_port:1L ~dst_port:2L ~payload:""))
          = Test_fdd.sorted_outs
              (Eval.process ev ~in_port:5
                 (P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:src
                    ~ip_dst:dst ~src_port:1L ~dst_port:2L ~payload:"")))
        [
          (0x05L, 0x0A000001L); (0x0500L, 0x0A030001L);
          (0xDEAD0001L, 0x0B0000FFL); (0x12345678L, 0x0C000001L);
        ])

(* ------------------------------------------------------------------ *)
(* Compaction boundedness                                              *)
(* ------------------------------------------------------------------ *)

let test_compaction_bounded () =
  let sw = P4.Switch.create churn_prog in
  for i = 0 to 199 do
    P4.Switch.insert_entry sw "routes"
      (route_e (Int64.of_int (0x0A000000 lor (i lsl 8))) 24 ((i mod 4) + 1))
  done;
  let threshold = 3_000 in
  let st = Compile.State.create ~compact_threshold:threshold sw in
  (* 10^4 churn transactions with periodic diagram reads: deltas alone
     only mark the spine dirty, but every read re-unions the stale
     suffix and allocates fresh nodes, so without compaction the
     manager would intern hundreds of thousands of nodes *)
  for i = 0 to 9_999 do
    let e =
      route_e (Int64.of_int (0x0B000000 lor ((i mod 256) lsl 8))) 24 2
    in
    let w = if i mod 2 = 0 then 1 else -1 in
    (if w > 0 then P4.Switch.insert_entry sw "routes" e
     else P4.Switch.delete_entry sw "routes" e);
    ignore (Compile.State.apply_delta st [ ("routes", [ (e, w) ]) ]);
    if i mod 10 = 0 then ignore (Compile.State.diagrams st)
  done;
  Alcotest.(check bool) "compaction ran" true (Compile.State.compactions st > 0);
  Alcotest.(check bool) "nodes swept" true (Compile.State.swept st > 0);
  let nodes = Compile.State.node_count st in
  Alcotest.(check bool)
    (Printf.sprintf "node count bounded (%d <= %d)" nodes threshold)
    true (nodes <= threshold);
  (* and compaction changed nothing observable *)
  check_dump "post-compaction state"
    (Openflow.dump (Compile.compile sw))
    (dump_of_state st)

(* ------------------------------------------------------------------ *)
(* Streaming extraction                                                *)
(* ------------------------------------------------------------------ *)

(* churn_prog with the routes table widened past its 1024-entry cap so
   the streaming test can install a large FIB *)
let big_prog : P4.Program.t =
  { churn_prog with
    P4.Program.tables =
      List.map
        (fun (t : P4.Program.table) ->
          if String.equal t.P4.Program.tname "routes" then
            { t with P4.Program.size = 8192 }
          else t)
        churn_prog.P4.Program.tables }

let test_fold_flows_streaming () =
  let sw = P4.Switch.create big_prog in
  P4.Switch.insert_entry sw "acl" (acl_e ~prio:1 0x05L 0xFFL 3);
  P4.Switch.insert_entry sw "acl" (acl_e 0L 0L 1);
  for i = 0 to 4_999 do
    P4.Switch.insert_entry sw "routes"
      (route_e
         (Int64.of_int ((0x0A000000 lor (i lsl 8)) land 0xFFFFFFFF))
         ((i mod 3 * 8) + 8)
         ((i mod 4) + 1))
  done;
  let materialised = Compile.compile sw in
  let streamed = List.rev (Compile.fold_flows sw ~init:[] ~f:(fun acc f -> f :: acc)) in
  (* identical sequence, not just identical sets: compile's flow list is
     newest-first, so emission order is its reverse *)
  Alcotest.(check int) "flow count"
    (Openflow.flow_count materialised)
    (List.length streamed);
  List.iter2
    (fun (a : Openflow.flow) b ->
      if a <> b then
        Alcotest.failf "streamed flow differs:\n%s\n%s"
          (Openflow.flow_to_string a) (Openflow.flow_to_string b))
    (List.rev materialised.Openflow.flows)
    streamed

(* ------------------------------------------------------------------ *)
(* Batched packet processing                                           *)
(* ------------------------------------------------------------------ *)

let test_process_many () =
  let sw = P4.Switch.create churn_prog in
  P4.Switch.insert_entry sw "acl" (acl_e ~prio:1 0x05L 0xFFL 2);
  P4.Switch.insert_entry sw "routes" (route_e 0x0A000000L 8 1);
  P4.Switch.insert_entry sw "routes" (route_e 0x0A010000L 16 3);
  let r = Random.State.make [| 77 |] in
  let jobs =
    List.init 64 (fun _ ->
        let src = if Random.State.bool r then 0x05L else 0x1234L in
        let dst =
          Int64.of_int
            (((10 + Random.State.int r 2) lsl 24)
            lor (Random.State.int r 3 lsl 16)
            lor Random.State.int r 256)
        in
        ( 1 + Random.State.int r 4,
          P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:src ~ip_dst:dst
            ~src_port:1L ~dst_port:2L ~payload:"x" ))
  in
  let batched = P4.Switch.process_many sw jobs in
  List.iter2
    (fun (in_port, pkt) outs ->
      Alcotest.(check (list (pair int string)))
        "batched = per-packet"
        (Test_fdd.sorted_outs (P4.Switch.process sw ~in_port pkt))
        (Test_fdd.sorted_outs outs))
    jobs batched

(* ------------------------------------------------------------------ *)
(* Controller flow programmer                                          *)
(* ------------------------------------------------------------------ *)

let test_controller_flow_programmer () =
  let d = L3router.deploy () in
  let psw = L3router.switch d "r0" in
  let pushes = ref [] in
  Nerpa.Controller.attach_flow_programmer d.L3router.controller "r0" psw
    ~push:(fun delta -> pushes := delta :: !pushes);
  let mirror =
    copy_pipeline
      (Option.get (Nerpa.Controller.flow_pipeline d.L3router.controller "r0"))
  in
  L3router.add_route d ~prefix:0x0A000000L ~plen:8 ~nexthop:0x0A000001L;
  L3router.add_neighbor d ~ip:0x0A000001L ~mac:0xAAL ~port:1;
  ignore (L3router.sync d);
  L3router.add_route d ~prefix:0x0A010000L ~plen:16 ~nexthop:0x0A000001L;
  ignore (L3router.sync d);
  L3router.del_route d ~prefix:0x0A010000L ~plen:16;
  ignore (L3router.sync d);
  Alcotest.(check bool) "deltas were pushed" true (List.length !pushes >= 3);
  List.iter (Openflow.apply_delta mirror) (List.rev !pushes);
  let scratch = Openflow.dump (Compile.compile psw) in
  check_dump "controller mirror" scratch (Openflow.dump mirror);
  check_dump "controller pipeline" scratch
    (Openflow.dump
       (Option.get (Nerpa.Controller.flow_pipeline d.L3router.controller "r0")))

let tests =
  [
    Alcotest.test_case "flow diff pairs modifies" `Quick
      test_diff_pairs_modifies;
    Alcotest.test_case "flow delta application" `Quick test_apply_delta;
    Alcotest.test_case "incremental state (scripted churn)" `Quick
      test_state_scripted;
    Alcotest.test_case "ternary 2-op refold is byte-identical" `Quick
      test_ternary_refold_two_op;
    Alcotest.test_case "single-entry churn emits small deltas" `Quick
      test_state_delta_is_small;
    Alcotest.test_case "compaction bounds the manager" `Quick
      test_compaction_bounded;
    Alcotest.test_case "fold_flows streams compile's flows" `Quick
      test_fold_flows_streaming;
    Alcotest.test_case "process_many agrees with process" `Quick
      test_process_many;
    Alcotest.test_case "controller pushes flow deltas" `Quick
      test_controller_flow_programmer;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_state_churn_differential ]
