(* Tests for multi-controller sharding: the shard map artifact, the
   cluster-aware Endpoint API, the exchange store, and the acceptance
   differential — an N-shard fat-tree fleet must converge
   byte-identically to the single-controller run, including after one
   shard is killed and restarted mid-churn.  A gated leg (see
   test_server.ml) drives two daemons over real Unix sockets with the
   shared-secret handshake. *)

module Shard_map = Nerpa.Shard_map
module Endpoint = Nerpa.Endpoint
module Xrel = Nerpa.Xrel
module Cluster = Nerpa.Cluster
module Controller = Nerpa.Controller

let socket_tests_enabled =
  match Sys.getenv_opt "NERPA_SOCKET_TESTS" with
  | Some "1" | Some "true" | Some "yes" -> true
  | _ -> false

let gated name speed f =
  Alcotest.test_case name speed (fun () ->
      if socket_tests_enabled then f () else Alcotest.skip ())

(* ---------------- shard map ---------------- *)

let locs n = List.init n (fun i -> Shard_map.Dir (Printf.sprintf "/tmp/s%d" i))

let test_shard_map_deterministic () =
  (* assignment ignores input order: names are sorted, then dealt
     round-robin *)
  let a =
    Shard_map.create ~locations:(locs 3) ~switches:[ "c"; "a"; "d"; "b" ]
  in
  let b =
    Shard_map.create ~locations:(locs 3) ~switches:[ "b"; "d"; "a"; "c" ]
  in
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " assigned identically")
        (Shard_map.shard_of a name) (Shard_map.shard_of b name))
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check (list string))
    "fleet order is sorted" [ "a"; "b"; "c"; "d" ] (Shard_map.switches a);
  Alcotest.(check int) "a -> shard 0" 0 (Shard_map.shard_of a "a");
  Alcotest.(check int) "b -> shard 1" 1 (Shard_map.shard_of a "b");
  Alcotest.(check int) "c -> shard 2" 2 (Shard_map.shard_of a "c");
  Alcotest.(check int) "d wraps to shard 0" 0 (Shard_map.shard_of a "d");
  Alcotest.(check (list string))
    "shard 0 owns a and d" [ "a"; "d" ] (Shard_map.switches_of a 0)

let test_shard_map_roundtrip () =
  let m =
    Shard_map.create
      ~locations:[ Shard_map.Dir "/tmp/s0"; Shard_map.Tcp ("10.0.0.2", 7600) ]
      ~switches:[ "sw1"; "sw0"; "sw2" ]
  in
  let text = Shard_map.render m in
  match Shard_map.parse text with
  | Error e -> Alcotest.failf "rendered map failed to parse: %s" e
  | Ok m' ->
    Alcotest.(check string) "render is a fixpoint" text (Shard_map.render m');
    Alcotest.(check int) "nshards survives" 2 (Shard_map.nshards m');
    List.iter
      (fun name ->
        Alcotest.(check int) (name ^ " ownership survives")
          (Shard_map.shard_of m name) (Shard_map.shard_of m' name))
      (Shard_map.switches m)

let test_shard_map_parse_errors () =
  let rejects label text =
    match Shard_map.parse text with
    | Ok _ -> Alcotest.failf "parse accepted %s" label
    | Error _ -> ()
  in
  rejects "missing header" "shard 0 dir:/tmp/a\nswitch s 0\n";
  rejects "sparse shard ids"
    "nerpa-shard-map v1\nshard 0 dir:/a\nshard 2 dir:/b\nswitch s 0\n";
  rejects "dangling switch assignment"
    "nerpa-shard-map v1\nshard 0 dir:/a\nswitch s 7\n";
  rejects "duplicate switch"
    "nerpa-shard-map v1\nshard 0 dir:/a\nswitch s 0\nswitch s 0\n";
  rejects "unknown line" "nerpa-shard-map v1\nshard 0 dir:/a\nbogus\n"

let test_shard_map_addrs () =
  let m =
    Shard_map.create
      ~locations:[ Shard_map.Tcp ("h0", 7600); Shard_map.Dir "/tmp/s1" ]
      ~switches:[ "a"; "b"; "c" ]
  in
  (* TCP layout: base = mgmt, base+1 = xrel, base+2+k = k-th switch *)
  Alcotest.(check string) "mgmt at shard 0's base" "tcp:h0:7600"
    (Transport.addr_to_string (Shard_map.mgmt_addr m));
  Alcotest.(check string) "shard 0 xrel" "tcp:h0:7601"
    (Transport.addr_to_string (Shard_map.xrel_addr m 0));
  Alcotest.(check string) "a is shard 0's 0th switch" "tcp:h0:7602"
    (Transport.addr_to_string (Shard_map.p4_addr m "a"));
  Alcotest.(check string) "c is shard 0's 1st switch" "tcp:h0:7603"
    (Transport.addr_to_string (Shard_map.p4_addr m "c"));
  (* Dir layout reuses the Endpoint socket names *)
  Alcotest.(check string) "shard 1 xrel socket" "unix:/tmp/s1/xrel.sock"
    (Transport.addr_to_string (Shard_map.xrel_addr m 1));
  Alcotest.(check string) "b's socket at its own shard"
    "unix:/tmp/s1/p4-b.sock"
    (Transport.addr_to_string (Shard_map.p4_addr m "b"))

(* ---------------- cluster-aware Endpoint ---------------- *)

let test_endpoint_cluster_planes () =
  let m =
    Shard_map.create
      ~locations:[ Shard_map.Tcp ("h", 7600); Shard_map.Tcp ("h", 7700) ]
      ~switches:[ "a"; "b" ]
  in
  (match Cluster.shard_endpoint ~codec:Transport.Binary m ~shard:1 with
  | Endpoint.Planes p ->
    (match p.Endpoint.mgmt with
    | Endpoint.Socket { addr; _ } ->
      Alcotest.(check string) "mgmt reaches shard 0" "tcp:h:7600"
        (Transport.addr_to_string addr)
    | _ -> Alcotest.fail "mgmt plane should be a socket");
    (match p.Endpoint.p4_of "b" with
    | Endpoint.Socket { addr; _ } ->
      Alcotest.(check string) "p4 reaches the owning shard" "tcp:h:7702"
        (Transport.addr_to_string addr)
    | _ -> Alcotest.fail "p4 plane should be a socket")
  | Endpoint.Cluster _ -> Alcotest.fail "shard_endpoint returns planes");
  (* the Cluster endpoint form is rejected where a single controller's
     planes are required *)
  let c = Endpoint.cluster m in
  (match Endpoint.planes_exn c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "planes_exn should reject a cluster endpoint");
  match Endpoint.faulty_p4 ~seed:1 c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "faulty_p4 should reject a cluster endpoint"

(* ---------------- exchange store ---------------- *)

let xrel_rows db =
  List.sort compare
    (Ovsdb.Db.fold_rows db Xrel.table_name
       (fun _ row acc ->
         ( Ovsdb.Datum.to_string (List.assoc "shard" row),
           Ovsdb.Datum.to_string (List.assoc "rel" row),
           Ovsdb.Datum.to_string (List.assoc "row" row) )
         :: acc)
       [])

let test_xrel_apply_set_semantics () =
  let db = Xrel.create_db () in
  Xrel.apply db ~shard:1 ~reset:false
    ~rows:[ ("r", [ ("(1)", 1); ("(2)", 1) ]) ];
  Alcotest.(check int) "two rows stored" 2 (List.length (xrel_rows db));
  (* re-publication is idempotent; deleting an absent row is a no-op *)
  Xrel.apply db ~shard:1 ~reset:false
    ~rows:[ ("r", [ ("(1)", 1); ("(3)", -1) ]) ];
  Alcotest.(check int) "still two rows" 2 (List.length (xrel_rows db));
  (* another shard's claims are separate rows *)
  Xrel.apply db ~shard:2 ~reset:false ~rows:[ ("r", [ ("(1)", 1) ]) ];
  Alcotest.(check int) "peer claim is distinct" 3 (List.length (xrel_rows db));
  (* a reset publish drops only the publishing shard's rows *)
  Xrel.apply db ~shard:1 ~reset:true ~rows:[ ("r", [ ("(9)", 1) ]) ];
  let remaining = xrel_rows db in
  Alcotest.(check int) "reset replaced shard 1's rows" 2
    (List.length remaining);
  Alcotest.(check bool) "shard 2 survived shard 1's reset" true
    (List.exists (fun (s, _, _) -> s = "2") remaining)

let test_xrel_deltas_of_updates () =
  let db = Xrel.create_db () in
  let mon = Ovsdb.Db.add_monitor db [ (Xrel.table_name, None) ] in
  Xrel.apply db ~shard:0 ~reset:false ~rows:[ ("r", [ ("(1)", 1) ]) ];
  Xrel.apply db ~shard:0 ~reset:false ~rows:[ ("r", [ ("(1)", -1) ]) ];
  let deltas =
    List.concat_map Xrel.deltas_of_updates (Ovsdb.Db.poll mon)
    |> List.filter (fun (s, _, _, _) -> s = 0)
  in
  Alcotest.(check (list (pair string int)))
    "insert then retract, in order"
    [ ("(1)", 1); ("(1)", -1) ]
    (List.map (fun (_, _, text, w) -> (text, w)) deltas)

(* ---------------- the sharded-vs-single differential ------------- *)

(* A k=2-flavoured fat-tree fleet: 2 cores, 4 edges, dealt across 3
   shards.  The snvs program is switch-agnostic, so every switch must
   end with identical forwarding state — which is exactly what makes
   the byte-identical differential sharp: every learned MAC must cross
   the exchange to every shard. *)
let fat_tree =
  [ "ft-core0"; "ft-core1"; "ft-edge00"; "ft-edge01"; "ft-edge10";
    "ft-edge11" ]

let demo_mac ~sw ~port =
  P4.Stdhdrs.mac_of_string (Printf.sprintf "02:00:00:00:%02x:%02x" sw port)

let bcast = P4.Stdhdrs.mac_of_string "ff:ff:ff:ff:ff:ff"

let in_vlan_id =
  lazy
    (let info = P4.P4info.of_program Snvs.p4 in
     (List.find
        (fun ti -> ti.P4.P4info.table_name = "in_vlan")
        info.P4.P4info.tables)
       .P4.P4info.table_id)

let churn_ports db =
  List.iter
    (fun (name, port, mode, tag, trunks) ->
      ignore
        (Ovsdb.Db.insert_exn db "Port"
           [
             ("name", Ovsdb.Datum.string name);
             ("port", Ovsdb.Datum.integer (Int64.of_int port));
             ("mode", Ovsdb.Datum.string mode);
             ("tag", Ovsdb.Datum.integer (Int64.of_int tag));
             ("trunks",
              Ovsdb.Datum.set
                (List.map
                   (fun v -> Ovsdb.Atom.Integer (Int64.of_int v))
                   trunks));
           ]))
    [ ("p1", 1, "access", 10, []); ("p2", 2, "access", 10, []);
      ("p3", 3, "trunk", 0, [ 10 ]) ]

let churn_acl db =
  ignore
    (Ovsdb.Db.insert_exn db "Acl"
       [
         ("priority", Ovsdb.Datum.integer 10L);
         ("src", Ovsdb.Datum.integer (demo_mac ~sw:0 ~port:1));
         ("src_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("dst", Ovsdb.Datum.integer (demo_mac ~sw:1 ~port:1));
         ("dst_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("allow", Ovsdb.Datum.boolean false);
       ])

let feed ~sync ~switch ~name ~port src =
  let ready () =
    let srv = P4runtime.attach (switch name) in
    List.exists
      (fun e ->
        match e.P4runtime.matches with
        | P4runtime.FmExact p :: _ -> p = Int64.of_int port
        | _ -> false)
      (P4runtime.read_table srv ~table_id:(Lazy.force in_vlan_id))
  in
  let n = ref 100 in
  while (not (ready ())) && !n > 0 do
    decr n;
    sync ()
  done;
  ignore
    (P4.Switch.process (switch name) ~in_port:port
       (P4.Stdhdrs.ethernet_frame ~dst:bcast ~src ~ethertype:0x1234L
          ~payload:"x"))

let traffic ~sync ~switch names =
  List.iteri
    (fun i name ->
      feed ~sync ~switch ~name ~port:1 (demo_mac ~sw:i ~port:1);
      sync ();
      feed ~sync ~switch ~name ~port:2 (demo_mac ~sw:i ~port:2);
      sync ())
    names

(* MAC mobility across shards: switch 0's port-1 host reappears on
   port 2 — every shard must LWW-displace the old binding *)
let mobility ~sync ~switch names =
  feed ~sync ~switch ~name:(List.hd names) ~port:2 (demo_mac ~sw:0 ~port:1);
  sync ()

type baseline = {
  bctl : Controller.t;
  bswitches : (string * P4.Switch.t) list;
}

let run_baseline names =
  let db = Ovsdb.Db.create Snvs.schema in
  let bswitches =
    List.map (fun n -> (n, P4.Switch.create ~name:n Snvs.p4)) names
  in
  let bctl =
    Controller.create ~digest_replace:Snvs.digest_replace ~db ~p4:Snvs.p4
      ~rules:Snvs.rules ~switches:bswitches ()
  in
  let sync () = ignore (Controller.sync bctl) in
  let switch n = List.assoc n bswitches in
  churn_ports db;
  sync ();
  traffic ~sync ~switch names;
  churn_acl db;
  sync ();
  traffic ~sync ~switch names;
  mobility ~sync ~switch names;
  sync ();
  { bctl; bswitches }

let ovsdb_rel rel =
  List.exists
    (fun (tbl : Ovsdb.Schema.table) -> tbl.Ovsdb.Schema.tname = rel)
    Snvs.schema.Ovsdb.Schema.tables

(* The acceptance check: every switch byte-identical to the baseline's,
   every engine relation identical across shards, and every relation
   except the uuid-bearing OVSDB inputs identical to the baseline
   engine too. *)
let check_differential base cl names =
  List.iter
    (fun name ->
      let ctl = Cluster.controller cl (Cluster.owner cl name) in
      Alcotest.(check string)
        (Printf.sprintf "switch %s byte-identical" name)
        (Controller.dump_switch base.bctl name)
        (Controller.dump_switch ctl name))
    names;
  List.iter
    (fun rel ->
      let shard0 = Controller.relation_dump (Cluster.controller cl 0) rel in
      for k = 1 to Cluster.nshards cl - 1 do
        Alcotest.(check (list string))
          (Printf.sprintf "relation %s identical on shard %d" rel k)
          shard0
          (Controller.relation_dump (Cluster.controller cl k) rel)
      done;
      if not (ovsdb_rel rel) then
        Alcotest.(check (list string))
          (Printf.sprintf "relation %s matches the baseline" rel)
          (Controller.relation_dump base.bctl rel)
          shard0)
    (Controller.relations base.bctl)

let test_three_shard_differential () =
  let names = fat_tree in
  let base = run_baseline names in
  let db = Ovsdb.Db.create Snvs.schema in
  let cl =
    Cluster.create_local ~digest_replace:Snvs.digest_replace ~nshards:3 ~db
      ~p4:Snvs.p4 ~rules:Snvs.rules ~switch_names:names ()
  in
  let sync () = ignore (Cluster.sync_all cl) in
  let switch n = Cluster.switch cl n in
  churn_ports db;
  sync ();
  traffic ~sync ~switch names;
  churn_acl db;
  sync ();
  traffic ~sync ~switch names;
  mobility ~sync ~switch names;
  sync ();
  check_differential base cl names

let test_kill_restart_differential () =
  let names = fat_tree in
  let base = run_baseline names in
  let db = Ovsdb.Db.create Snvs.schema in
  let cl =
    Cluster.create_local ~digest_replace:Snvs.digest_replace ~nshards:3 ~db
      ~p4:Snvs.p4 ~rules:Snvs.rules ~switch_names:names ()
  in
  let sync () = ignore (Cluster.sync_all cl) in
  let switch n = Cluster.switch cl n in
  churn_ports db;
  sync ();
  traffic ~sync ~switch names;
  (* kill shard 2 mid-churn: its switches, store and controller are
     lost; config lands while it is down and survivors keep going *)
  Cluster.kill cl 2;
  Alcotest.(check bool) "shard 2 down" false (Cluster.alive cl 2);
  churn_acl db;
  sync ();
  Cluster.restart cl 2;
  sync ();
  (* re-offer all traffic: the restarted shard's switches re-learn,
     and its contributions re-cross the exchange *)
  traffic ~sync ~switch names;
  mobility ~sync ~switch names;
  sync ();
  check_differential base cl names

(* ---------------- sockets + auth (gated) ---------------- *)

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nerpa-clu-%s-%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let test_socket_cluster_auth () =
  let dir0 = fresh_dir "s0" and dir1 = fresh_dir "s1" in
  let secret = "cluster-secret" in
  let map =
    Shard_map.create
      ~locations:[ Shard_map.Dir dir0; Shard_map.Dir dir1 ]
      ~switches:[ "sx0"; "sx1" ]
  in
  let db = Ovsdb.Db.create Snvs.schema in
  let sw0 = P4.Switch.create ~name:"sx0" Snvs.p4 in
  let sw1 = P4.Switch.create ~name:"sx1" Snvs.p4 in
  let srv0 =
    Server.create ~db ~xdb:(Xrel.create_db ()) ~auth:secret
      ~switches:[ ("sx0", sw0) ] ~dir:dir0 ()
  in
  let srv1 =
    Server.create ~xdb:(Xrel.create_db ()) ~auth:secret
      ~switches:[ ("sx1", sw1) ] ~dir:dir1 ()
  in
  Server.start srv0;
  Server.start srv1;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv0;
      Server.stop srv1)
    (fun () ->
      (* the wrong secret (and no secret at all) is turned away *)
      List.iter
        (fun auth ->
          let link =
            Nerpa.Links.socket_mgmt ?auth ~addr:(Shard_map.mgmt_addr map) ()
          in
          match Transport.send link Nerpa.Links.Poll_monitor with
          | Ok _ -> Alcotest.fail "handshake should have been rejected"
          | Error _ -> ())
        [ Some "wrong-secret"; None ];
      let mk shard =
        Snvs.connect
          ~switch_names:(Shard_map.switches_of map shard)
          ~exchange:(Cluster.shard_exchange ~auth:secret map ~shard)
          ~endpoint:(Cluster.shard_endpoint ~auth:secret map ~shard)
          ()
      in
      let c0 = mk 0 and c1 = mk 1 in
      let sync () =
        ignore (Controller.sync c0);
        ignore (Controller.sync c1)
      in
      Server.with_lock srv0 (fun () -> churn_ports db);
      for _ = 1 to 10 do
        sync ()
      done;
      (* one host behind each daemon's switch *)
      Server.with_lock srv0 (fun () ->
          ignore
            (P4.Switch.process sw0 ~in_port:1
               (P4.Stdhdrs.ethernet_frame ~dst:bcast
                  ~src:(demo_mac ~sw:0 ~port:1) ~ethertype:0x1234L
                  ~payload:"x")));
      for _ = 1 to 10 do
        sync ()
      done;
      Server.with_lock srv1 (fun () ->
          ignore
            (P4.Switch.process sw1 ~in_port:2
               (P4.Stdhdrs.ethernet_frame ~dst:bcast
                  ~src:(demo_mac ~sw:1 ~port:2) ~ethertype:0x1234L
                  ~payload:"x")));
      for _ = 1 to 20 do
        sync ()
      done;
      (* both learned MACs crossed the exchange: the two controllers'
         learned_mac relations agree and hold both rows *)
      let l0 = Controller.relation_dump c0 "LearnedMac" in
      Alcotest.(check (list string))
        "learned_mac identical across shards" l0
        (Controller.relation_dump c1 "LearnedMac");
      Alcotest.(check int) "both hosts learned everywhere" 2
        (List.length l0);
      (* and both switches carry the same forwarding state *)
      Server.with_lock srv0 (fun () -> ())
      |> ignore;
      Alcotest.(check string) "switch dumps agree"
        (Controller.dump_switch c0 "sx0")
        (Controller.dump_switch c1 "sx1"))

let tests =
  [
    Alcotest.test_case "shard map: deterministic assignment" `Quick
      test_shard_map_deterministic;
    Alcotest.test_case "shard map: render/parse round-trip" `Quick
      test_shard_map_roundtrip;
    Alcotest.test_case "shard map: strict parse" `Quick
      test_shard_map_parse_errors;
    Alcotest.test_case "shard map: socket layout" `Quick test_shard_map_addrs;
    Alcotest.test_case "endpoint: cluster planes" `Quick
      test_endpoint_cluster_planes;
    Alcotest.test_case "xrel: set-semantics publish" `Quick
      test_xrel_apply_set_semantics;
    Alcotest.test_case "xrel: monitor deltas" `Quick
      test_xrel_deltas_of_updates;
    Alcotest.test_case "3-shard fat-tree differential" `Quick
      test_three_shard_differential;
    Alcotest.test_case "kill/restart differential" `Quick
      test_kill_restart_differential;
    gated "socket cluster with auth" `Quick test_socket_cluster_auth;
  ]
