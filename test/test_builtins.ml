(* Exhaustive coverage of the DL builtin library: evaluation semantics,
   typing rules, and aggregate functions. *)

open Dl

let v = Alcotest.testable Value.pp Value.equal
let i n = Value.of_int n
let i64 n = Value.VInt n
let b w x = Value.bit w x
let s x = Value.VString x
let d x = Value.VDouble x
let t = Value.VBool true
let f = Value.VBool false

let eval name args = Builtins.eval name args

let check_eval name args expected =
  Alcotest.check v (name ^ " eval") expected (eval name args)

let check_eval_raises name args =
  match eval name args with
  | exception Builtins.Eval_error _ -> ()
  | r ->
    Alcotest.failf "%s: expected Eval_error, got %s" name (Value.to_string r)

let test_arithmetic () =
  check_eval "+" [ i 2; i 3 ] (i 5);
  check_eval "-" [ i 2; i 3 ] (i (-1));
  check_eval "*" [ i 4; i 5 ] (i 20);
  check_eval "/" [ i 7; i 2 ] (i 3);
  check_eval "%" [ i 7; i 2 ] (i 1);
  check_eval_raises "/" [ i 1; i 0 ];
  check_eval_raises "%" [ i 1; i 0 ];
  (* bit vectors wrap at their width *)
  check_eval "+" [ b 8 250L; b 8 10L ] (b 8 4L);
  check_eval "-" [ b 8 0L; b 8 1L ] (b 8 255L);
  check_eval "*" [ b 4 5L; b 4 5L ] (b 4 9L);
  (* unsigned division on bit vectors *)
  check_eval "/" [ b 8 200L; b 8 3L ] (b 8 66L);
  (* doubles *)
  check_eval "+" [ d 1.5; d 2.25 ] (d 3.75);
  check_eval "/" [ d 1.0; d 4.0 ] (d 0.25);
  check_eval "neg" [ d 2.0 ] (d (-2.0));
  check_eval "sqrt" [ d 9.0 ] (d 3.0);
  check_eval "int2double" [ i 3 ] (d 3.0);
  check_eval "double2int" [ d 3.9 ] (i 3);
  (* string concatenation via + *)
  check_eval "+" [ s "ab"; s "cd" ] (s "abcd")

let test_comparisons_and_bool () =
  check_eval "==" [ i 1; i 1 ] t;
  check_eval "!=" [ i 1; i 2 ] t;
  check_eval "<" [ s "a"; s "b" ] t;
  check_eval ">=" [ i 3; i 3 ] t;
  check_eval "&&" [ t; f ] f;
  check_eval "||" [ t; f ] t;
  check_eval "not" [ f ] t;
  check_eval "min" [ i 3; i 1 ] (i 1);
  check_eval "max" [ s "a"; s "b" ] (s "b");
  check_eval "abs" [ i (-4) ] (i 4)

let test_bit_ops () =
  check_eval "&" [ b 8 0xF0L; b 8 0x3CL ] (b 8 0x30L);
  check_eval "|" [ b 8 0xF0L; b 8 0x0FL ] (b 8 0xFFL);
  check_eval "^" [ b 8 0xFFL; b 8 0x0FL ] (b 8 0xF0L);
  check_eval "~" [ b 8 0x0FL ] (b 8 0xF0L);
  check_eval "<<" [ b 8 0x01L; i 7 ] (b 8 0x80L);
  check_eval "<<" [ b 8 0x01L; i 8 ] (b 8 0x00L);
  check_eval ">>" [ b 8 0x80L; i 4 ] (b 8 0x08L);
  check_eval "bit2int" [ b 12 5L ] (i 5);
  check_eval "int2bit" [ i64 16L; i64 0x1FFFFL ] (b 16 0xFFFFL);
  check_eval "zext" [ b 8 0xFFL; i 16 ] (b 16 0xFFL);
  check_eval "bit_slice" [ b 16 0xABCDL; i 15; i 8 ] (b 8 0xABL);
  check_eval "bit_slice" [ b 16 0xABCDL; i 3; i 0 ] (b 4 0xDL);
  check_eval_raises "bit_slice" [ b 16 1L; i 0; i 3 ];
  check_eval "concat_bits" [ b 8 0xABL; b 8 0xCDL ] (b 16 0xABCDL)

let test_strings () =
  check_eval "string_len" [ s "hello" ] (i 5);
  check_eval "string_contains" [ s "hello"; s "ell" ] t;
  check_eval "string_contains" [ s "hello"; s "xyz" ] f;
  check_eval "string_starts_with" [ s "hello"; s "he" ] t;
  check_eval "substr" [ s "hello"; i 1; i 3 ] (s "ell");
  check_eval "substr" [ s "hello"; i 3; i 99 ] (s "lo");
  check_eval "substr" [ s "hello"; i (-2); i 2 ] (s "he");
  check_eval "string_to_upper" [ s "aBc" ] (s "ABC");
  check_eval "string_to_lower" [ s "aBc" ] (s "abc");
  check_eval "string_join" [ Value.VVec [ s "a"; s "b" ]; s "," ] (s "a,b");
  check_eval "parse_int" [ s "42" ] (Value.VOption (Some (i 42)));
  check_eval "parse_int" [ s "nope" ] (Value.VOption None);
  check_eval "to_string" [ i 7 ] (s "7");
  check_eval "to_string" [ s "x" ] (s "x")

let test_collections () =
  let vec = Value.VVec [ i 1; i 2; i 2 ] in
  check_eval "vec_len" [ vec ] (i 3);
  check_eval "vec_contains" [ vec; i 2 ] t;
  check_eval "vec_contains" [ vec; i 9 ] f;
  check_eval "vec_push" [ Value.VVec []; i 1 ] (Value.VVec [ i 1 ]);
  check_eval "vec_concat" [ Value.VVec [ i 1 ]; Value.VVec [ i 2 ] ]
    (Value.VVec [ i 1; i 2 ]);
  check_eval "vec_nth" [ vec; i 1 ] (Value.VOption (Some (i 2)));
  check_eval "vec_nth" [ vec; i 9 ] (Value.VOption None);
  check_eval "vec_sort" [ Value.VVec [ i 3; i 1; i 2 ] ]
    (Value.VVec [ i 1; i 2; i 3 ]);
  check_eval "vec_empty" [] (Value.VVec []);
  let m = Value.VMap [ (i 1, s "a") ] in
  check_eval "map_get" [ m; i 1 ] (Value.VOption (Some (s "a")));
  check_eval "map_get" [ m; i 2 ] (Value.VOption None);
  check_eval "map_contains" [ m; i 1 ] t;
  check_eval "map_size" [ m ] (i 1);
  check_eval "map_insert" [ m; i 2; s "b" ]
    (Value.VMap [ (i 1, s "a"); (i 2, s "b") ]);
  check_eval "map_empty" [] (Value.VMap []);
  check_eval "some" [ i 1 ] (Value.VOption (Some (i 1)));
  check_eval "none" [] (Value.VOption None);
  check_eval "is_some" [ Value.VOption (Some (i 1)) ] t;
  check_eval "is_none" [ Value.VOption None ] t;
  check_eval "unwrap_or" [ Value.VOption (Some (i 1)); i 9 ] (i 1);
  check_eval "unwrap_or" [ Value.VOption None; i 9 ] (i 9);
  check_eval "tuple_nth" [ Value.VTuple [| i 1; s "x" |]; i 1 ] (s "x");
  check_eval_raises "tuple_nth" [ Value.VTuple [| i 1 |]; i 5 ]

let test_hashing_deterministic () =
  let h1 = eval "hash32" [ s "abc" ] and h2 = eval "hash32" [ s "abc" ] in
  Alcotest.check v "hash32 deterministic" h1 h2;
  (match h1 with
  | Value.VBit (32, _) -> ()
  | _ -> Alcotest.fail "hash32 width");
  match eval "hash64" [ i 5 ] with
  | Value.VBit (64, _) -> ()
  | _ -> Alcotest.fail "hash64 width"

(* ---------------- typing ---------------- *)

let ok ty = function
  | Ok ty' ->
    Alcotest.(check bool)
      (Printf.sprintf "expected %s, got %s" (Dtype.to_string ty)
         (Dtype.to_string ty'))
      true (Dtype.equal ty ty')
  | Error e -> Alcotest.failf "unexpected type error: %s" e

let err = function
  | Ok ty -> Alcotest.failf "expected type error, got %s" (Dtype.to_string ty)
  | Error _ -> ()

let test_result_types () =
  let open Dtype in
  ok TInt (Builtins.result_type "+" [ TInt; TInt ]);
  ok (TBit 8) (Builtins.result_type "+" [ TBit 8; TBit 8 ]);
  ok TDouble (Builtins.result_type "+" [ TDouble; TDouble ]);
  ok TString (Builtins.result_type "+" [ TString; TString ]);
  err (Builtins.result_type "+" [ TBit 8; TBit 9 ]);
  err (Builtins.result_type "+" [ TInt; TBit 8 ]);
  ok TBool (Builtins.result_type "==" [ TInt; TInt ]);
  err (Builtins.result_type "==" [ TInt; TString ]);
  ok TBool (Builtins.result_type "&&" [ TBool; TBool ]);
  err (Builtins.result_type "&&" [ TInt; TBool ]);
  ok (TBit 8) (Builtins.result_type "&" [ TBit 8; TBit 8 ]);
  err (Builtins.result_type "&" [ TInt; TInt ]);
  ok (TBit 16) (Builtins.result_type "concat_bits" [ TBit 8; TBit 8 ]);
  err (Builtins.result_type "concat_bits" [ TBit 40; TBit 40 ]);
  ok TInt (Builtins.result_type "vec_len" [ TVec TInt ]);
  ok (TVec TInt) (Builtins.result_type "vec_push" [ TVec TAny; TInt ]);
  err (Builtins.result_type "vec_push" [ TVec TString; TInt ]);
  ok (TOption TString) (Builtins.result_type "map_get" [ TMap (TInt, TString); TInt ]);
  err (Builtins.result_type "map_get" [ TMap (TInt, TString); TString ]);
  ok TString (Builtins.result_type "unwrap_or" [ TOption TString; TString ]);
  err (Builtins.result_type "no_such_builtin" [ TInt ])

(* ---------------- aggregates ---------------- *)

let test_aggregates () =
  let group = [ (i 1, 2); (i 5, 1) ] in
  Alcotest.check v "count" (i 3) (Builtins.agg_eval "count" group);
  Alcotest.check v "count_distinct" (i 2)
    (Builtins.agg_eval "count_distinct" group);
  Alcotest.check v "sum" (i 7) (Builtins.agg_eval "sum" group);
  Alcotest.check v "min" (i 1) (Builtins.agg_eval "min" group);
  Alcotest.check v "max" (i 5) (Builtins.agg_eval "max" group);
  Alcotest.check v "avg" (i 2) (Builtins.agg_eval "avg" group);
  Alcotest.check v "collect_vec" (Value.VVec [ i 1; i 1; i 5 ])
    (Builtins.agg_eval "collect_vec" group);
  Alcotest.check v "collect_set" (Value.VVec [ i 1; i 5 ])
    (Builtins.agg_eval "collect_set" group);
  (* bit-vector sums wrap at width *)
  Alcotest.check v "sum bits" (b 8 4L)
    (Builtins.agg_eval "sum" [ (b 8 250L, 1); (b 8 10L, 1) ]);
  (* double sums and averages *)
  Alcotest.check v "sum doubles" (d 4.5)
    (Builtins.agg_eval "sum" [ (d 1.5, 3) ]);
  Alcotest.check v "avg doubles" (d 1.5)
    (Builtins.agg_eval "avg" [ (d 1.0, 1); (d 2.0, 1) ]);
  (* typing *)
  ok Dtype.TInt (Builtins.agg_result_type "count" Dtype.TString);
  ok (Dtype.TVec Dtype.TString)
    (Builtins.agg_result_type "collect_vec" Dtype.TString);
  ok Dtype.TDouble (Builtins.agg_result_type "sum" Dtype.TDouble);
  err (Builtins.agg_result_type "sum" Dtype.TString);
  err (Builtins.agg_result_type "avg" Dtype.TString);
  err (Builtins.agg_result_type "frobnicate" Dtype.TInt)

(* ---------------- builtins through the engine ---------------- *)

let test_engine_collect_and_doubles () =
  let program =
    Parser.parse_program_exn
      {|
      input relation Sample(k: string, x: double)
      output relation Mean(k: string, m: double)
      Mean(k, m) :- Sample(k, x), var m = avg(x) group_by (k).
      output relation Members(k: string, xs: vec<double>)
      Members(k, xs) :- Sample(k, x), var xs = collect_set(x) group_by (k).
      |}
  in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [
         ("Sample", Row.intern [| s "a"; d 1.0 |], true);
         ("Sample", Row.intern [| s "a"; d 3.0 |], true);
         ("Sample", Row.intern [| s "b"; d 10.0 |], true);
       ]);
  let rows = List.sort Row.compare (Engine.relation_rows eng "Mean") in
  Alcotest.(check int) "two groups" 2 (List.length rows);
  (match List.map Row.values rows with
  | [ [| _; m1 |]; [| _; m2 |] ] ->
    Alcotest.check v "mean a" (d 2.0) m1;
    Alcotest.check v "mean b" (d 10.0) m2
  | _ -> Alcotest.fail "unexpected Mean rows");
  match Engine.relation_rows eng "Members" with
  | rows ->
    let a =
      List.find (fun r -> Value.equal (Row.get r 0) (s "a")) rows
    in
    Alcotest.check v "collected" (Value.VVec [ d 1.0; d 3.0 ]) (Row.get a 1)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons and booleans" `Quick
      test_comparisons_and_bool;
    Alcotest.test_case "bit operations" `Quick test_bit_ops;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "collections" `Quick test_collections;
    Alcotest.test_case "hashing" `Quick test_hashing_deterministic;
    Alcotest.test_case "result types" `Quick test_result_types;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "collect/doubles through engine" `Quick
      test_engine_collect_and_doubles;
  ]
