(* A second engine suite: corner cases beyond the basics — deep strata
   chains, multiple drivers in one transaction, query API, transaction
   lifecycle, recursion interleaved with computation, and aggregates
   over recursive results. *)

open Dl

let parse = Parser.parse_program_exn
let ints l = Row.of_list (List.map Value.of_int l)

let test_deep_strata_chain () =
  (* A 10-deep dependency chain: one input change ripples through every
     stratum; intermediate strata stay consistent. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "input relation R0(x: int)\n";
  for i = 1 to 10 do
    Buffer.add_string buf (Printf.sprintf "relation R%d(x: int)\n" i)
  done;
  Buffer.add_string buf "output relation Out(x: int)\n";
  for i = 1 to 10 do
    Buffer.add_string buf (Printf.sprintf "R%d(x + 1) :- R%d(x).\n" i (i - 1))
  done;
  Buffer.add_string buf "Out(x) :- R10(x).\n";
  let eng = Engine.create (parse (Buffer.contents buf)) in
  let deltas = Engine.apply eng [ ("R0", ints [ 0 ], true) ] in
  Alcotest.(check int) "all strata changed" 12 (List.length deltas);
  Alcotest.(check bool) "value accumulated" true
    (Engine.relation_rows eng "Out" = [ ints [ 10 ] ]);
  let deltas = Engine.apply eng [ ("R0", ints [ 0 ], false) ] in
  Alcotest.(check int) "all strata retracted" 12 (List.length deltas);
  Alcotest.(check int) "empty again" 0 (Engine.relation_cardinal eng "Out")

let test_two_drivers_same_txn () =
  (* Both sides of a join change in one transaction: the telescoped sum
     must count the (new, new) pairing exactly once. *)
  let eng =
    Engine.create
      (parse
         {|
         input relation A(x: int)
         input relation B(x: int)
         output relation Both(x: int)
         Both(x) :- A(x), B(x).
         |})
  in
  let deltas =
    Engine.apply eng [ ("A", ints [ 1 ], true); ("B", ints [ 1 ], true) ]
  in
  Alcotest.(check int) "derived once" 1
    (Zset.weight (List.assoc "Both" deltas) (ints [ 1 ]));
  (* and removing both sides in one transaction retracts exactly once *)
  let deltas =
    Engine.apply eng [ ("A", ints [ 1 ], false); ("B", ints [ 1 ], false) ]
  in
  Alcotest.(check int) "retracted once" (-1)
    (Zset.weight (List.assoc "Both" deltas) (ints [ 1 ]))

let test_swap_in_one_txn () =
  (* Replacing a row (delete old + insert new) in one transaction must
     produce a clean -old/+new delta downstream. *)
  let eng =
    Engine.create
      (parse
         {|
         input relation Port(id: int, vlan: int)
         output relation V(id: int, vlan: int)
         V(p, v) :- Port(p, v).
         |})
  in
  ignore (Engine.apply eng [ ("Port", ints [ 1; 10 ], true) ]);
  let deltas =
    Engine.apply eng
      [ ("Port", ints [ 1; 10 ], false); ("Port", ints [ 1; 20 ], true) ]
  in
  let dz = List.assoc "V" deltas in
  Alcotest.(check int) "old retracted" (-1) (Zset.weight dz (ints [ 1; 10 ]));
  Alcotest.(check int) "new asserted" 1 (Zset.weight dz (ints [ 1; 20 ]));
  Alcotest.(check int) "nothing else" 2 (Zset.cardinal dz)

let test_query_api () =
  let eng =
    Engine.create
      (parse
         {|
         input relation E(a: int, b: int)
         output relation F(a: int, b: int)
         F(a, b) :- E(a, b).
         |})
  in
  ignore
    (Engine.apply eng
       [ ("E", ints [ 1; 10 ], true); ("E", ints [ 1; 20 ], true);
         ("E", ints [ 2; 30 ], true) ]);
  let rows =
    Engine.query eng "F" ~positions:[ 0 ] ~key:[ Value.of_int 1 ]
  in
  Alcotest.(check int) "keyed rows" 2 (List.length rows);
  (* the maintained index reflects later changes *)
  ignore (Engine.apply eng [ ("E", ints [ 1; 10 ], false) ]);
  Alcotest.(check int) "index maintained" 1
    (List.length (Engine.query eng "F" ~positions:[ 0 ] ~key:[ Value.of_int 1 ]));
  Alcotest.(check int) "compound key" 1
    (List.length
       (Engine.query eng "F" ~positions:[ 0; 1 ]
          ~key:[ Value.of_int 2; Value.of_int 30 ]))

let test_txn_lifecycle () =
  let eng =
    Engine.create (parse {| input relation R(x: int)
                            output relation O(x: int)
                            O(x) :- R(x). |})
  in
  let txn = Engine.transaction eng in
  Engine.insert txn "R" (ints [ 1 ]);
  ignore (Engine.commit txn);
  (* double commit is rejected *)
  (match Engine.commit txn with
  | exception Engine.Error _ -> ()
  | _ -> Alcotest.fail "double commit must fail");
  (* rollback discards staged changes *)
  let txn = Engine.transaction eng in
  Engine.insert txn "R" (ints [ 2 ]);
  Engine.rollback txn;
  Alcotest.(check int) "rollback discarded" 1 (Engine.relation_cardinal eng "R");
  (* the engine is reusable after rollback *)
  ignore (Engine.apply eng [ ("R", ints [ 3 ], true) ]);
  Alcotest.(check int) "usable after rollback" 2
    (Engine.relation_cardinal eng "R")

let test_recursion_with_computation () =
  (* Recursion whose step computes: bounded counting to a limit. *)
  let eng =
    Engine.create
      (parse
         {|
         input relation Start(x: int)
         input relation Limit(n: int)
         output relation Steps(x: int)
         Steps(x) :- Start(x).
         Steps(y) :- Steps(x), Limit(n), x < n, var y = x + 1.
         |})
  in
  ignore
    (Engine.apply eng [ ("Start", ints [ 0 ], true); ("Limit", ints [ 5 ], true) ]);
  Alcotest.(check int) "0..5" 6 (Engine.relation_cardinal eng "Steps");
  (* raising the limit extends the chain incrementally *)
  let deltas =
    Engine.apply eng
      [ ("Limit", ints [ 5 ], false); ("Limit", ints [ 8 ], true) ]
  in
  Alcotest.(check int) "extended by 3" 3
    (Zset.cardinal (List.assoc "Steps" deltas));
  (* lowering it shrinks the chain *)
  ignore
    (Engine.apply eng [ ("Limit", ints [ 8 ], false); ("Limit", ints [ 2 ], true) ]);
  Alcotest.(check int) "0..2" 3 (Engine.relation_cardinal eng "Steps")

let test_aggregate_over_recursion () =
  (* Aggregate a recursive relation from a higher stratum. *)
  let eng =
    Engine.create
      (parse
         {|
         input relation Edge(a: int, b: int)
         input relation Src(n: int)
         relation Reach(n: int)
         output relation Size(n: int)
         Reach(n) :- Src(n).
         Reach(b) :- Reach(a), Edge(a, b).
         Size(n) :- Reach(x), var n = count(x) group_by ().
         |})
  in
  (* group_by () — a global aggregate *)
  ignore
    (Engine.apply eng
       [ ("Src", ints [ 1 ], true); ("Edge", ints [ 1; 2 ], true);
         ("Edge", ints [ 2; 3 ], true) ]);
  Alcotest.(check bool) "count 3" true
    (Engine.relation_rows eng "Size" = [ ints [ 3 ] ]);
  ignore (Engine.apply eng [ ("Edge", ints [ 1; 2 ], false) ]);
  Alcotest.(check bool) "count 1" true
    (Engine.relation_rows eng "Size" = [ ints [ 1 ] ])

let test_string_keys_and_tuples () =
  let eng =
    Engine.create
      (parse
         {|
         input relation Kv(k: string, v: (int, bool))
         output relation Nice(k: string)
         Nice(k) :- Kv(k, t), tuple_nth(t, 1) == true.
         |})
  in
  ignore
    (Engine.apply eng
       [ ("Kv", Row.intern [| Value.of_string "a";
                   Value.VTuple [| Value.of_int 1; Value.VBool true |] |], true);
         ("Kv", Row.intern [| Value.of_string "b";
                   Value.VTuple [| Value.of_int 2; Value.VBool false |] |], true) ]);
  Alcotest.(check bool) "tuple projection filters" true
    (Engine.relation_rows eng "Nice"
    = [ Row.intern [| Value.of_string "a" |] ])

let test_footprint_shrinks () =
  let eng =
    Engine.create
      (parse {| input relation R(x: int)
                output relation O(x: int)
                O(x) :- R(x). |})
  in
  let empty = Engine.footprint eng in
  ignore
    (Engine.apply eng (List.init 100 (fun i -> ("R", ints [ i ], true))));
  let full = Engine.footprint eng in
  Alcotest.(check bool) "footprint grows" true (full > empty);
  ignore
    (Engine.apply eng (List.init 100 (fun i -> ("R", ints [ i ], false))));
  Alcotest.(check int) "footprint returns to baseline" empty
    (Engine.footprint eng)

let test_query_normalisation () =
  let eng =
    Engine.create
      (parse
         {|
         input relation R(x: int, y: int, z: int)
         output relation O(x: int, y: int, z: int)
         O(x, y, z) :- R(x, y, z).
         |})
  in
  ignore
    (Engine.apply eng
       [ ("R", ints [ 1; 2; 3 ], true); ("R", ints [ 1; 5; 3 ], true);
         ("R", ints [ 4; 2; 3 ], true) ]);
  let sorted rows = List.sort Row.compare rows in
  (* unsorted positions answer the same as ascending ones *)
  Alcotest.(check bool) "unsorted positions" true
    (sorted
       (Engine.query eng "O" ~positions:[ 2; 0 ]
          ~key:[ Value.of_int 3; Value.of_int 1 ])
    = sorted
        (Engine.query eng "O" ~positions:[ 0; 2 ]
           ~key:[ Value.of_int 1; Value.of_int 3 ]));
  Alcotest.(check int) "unsorted result count" 2
    (List.length
       (Engine.query eng "O" ~positions:[ 2; 0 ]
          ~key:[ Value.of_int 3; Value.of_int 1 ]));
  (* duplicate positions with agreeing values collapse *)
  Alcotest.(check int) "duplicate agreeing" 2
    (List.length
       (Engine.query eng "O" ~positions:[ 0; 0 ]
          ~key:[ Value.of_int 1; Value.of_int 1 ]));
  (* duplicate positions with conflicting values are unsatisfiable *)
  Alcotest.(check int) "duplicate conflicting" 0
    (List.length
       (Engine.query eng "O" ~positions:[ 0; 0 ]
          ~key:[ Value.of_int 1; Value.of_int 4 ]));
  (* out-of-range positions and length mismatches raise *)
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Engine.query eng "O" ~positions:[ 3 ] ~key:[ Value.of_int 0 ]);
       false
     with Engine.Error _ -> true);
  Alcotest.(check bool) "negative position raises" true
    (try
       ignore (Engine.query eng "O" ~positions:[ -1 ] ~key:[ Value.of_int 0 ]);
       false
     with Engine.Error _ -> true);
  Alcotest.(check bool) "length mismatch raises" true
    (try
       ignore (Engine.query eng "O" ~positions:[ 0; 1 ] ~key:[ Value.of_int 0 ]);
       false
     with Engine.Error _ -> true)

let test_poisoned_engine () =
  (* A rule that divides by an input value: inserting y=0 raises from
     inside propagation, after the input stratum already mutated the
     stores.  The engine must poison itself and refuse every subsequent
     operation instead of serving half-updated state. *)
  let eng =
    Engine.create
      (parse
         {|
         input relation R(x: int, y: int)
         output relation O(x: int, z: int)
         O(x, z) :- R(x, y), var z = 100 / y.
         |})
  in
  ignore (Engine.apply eng [ ("R", ints [ 1; 10 ], true) ]);
  Alcotest.(check bool) "healthy engine answers" true
    (Engine.relation_rows eng "O" = [ ints [ 1; 10 ] ]);
  Alcotest.(check bool) "mid-commit failure propagates" true
    (try
       ignore (Engine.apply eng [ ("R", ints [ 2; 0 ], true) ]);
       false
     with Builtins.Eval_error _ -> true);
  let poisoned f =
    try
      ignore (f ());
      false
    with Engine.Error msg ->
      (* the diagnostic must say why the engine is unusable *)
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      has_sub msg "poisoned"
  in
  Alcotest.(check bool) "reads poisoned" true
    (poisoned (fun () -> Engine.relation_rows eng "O"));
  Alcotest.(check bool) "cardinal poisoned" true
    (poisoned (fun () -> Engine.relation_cardinal eng "R"));
  Alcotest.(check bool) "query poisoned" true
    (poisoned (fun () ->
         Engine.query eng "O" ~positions:[ 0 ] ~key:[ Value.of_int 1 ]));
  Alcotest.(check bool) "new transaction poisoned" true
    (poisoned (fun () -> Engine.transaction eng));
  (* a fresh engine over the same program is unaffected *)
  let eng2 =
    Engine.create
      (parse
         {|
         input relation R(x: int, y: int)
         output relation O(x: int, z: int)
         O(x, z) :- R(x, y), var z = 100 / y.
         |})
  in
  ignore (Engine.apply eng2 [ ("R", ints [ 1; 4 ], true) ]);
  Alcotest.(check bool) "fresh engine healthy" true
    (Engine.relation_rows eng2 "O" = [ ints [ 1; 25 ] ])

let tests =
  [
    Alcotest.test_case "deep strata chain" `Quick test_deep_strata_chain;
    Alcotest.test_case "two drivers in one txn" `Quick test_two_drivers_same_txn;
    Alcotest.test_case "row swap in one txn" `Quick test_swap_in_one_txn;
    Alcotest.test_case "query api" `Quick test_query_api;
    Alcotest.test_case "transaction lifecycle" `Quick test_txn_lifecycle;
    Alcotest.test_case "recursion with computation" `Quick
      test_recursion_with_computation;
    Alcotest.test_case "aggregate over recursion" `Quick
      test_aggregate_over_recursion;
    Alcotest.test_case "string keys and tuples" `Quick test_string_keys_and_tuples;
    Alcotest.test_case "footprint shrinks" `Quick test_footprint_shrinks;
    Alcotest.test_case "query normalisation" `Quick test_query_normalisation;
    Alcotest.test_case "poisoned engine" `Quick test_poisoned_engine;
  ]
