(* Long-horizon differential test: the optimised incremental engine is
   driven through >=1000 random transactions (inserts, deletes and
   re-inserts over a tiny universe, so collisions are frequent) and
   after every commit both the visible relations AND the reported
   output deltas are checked against [Naive], the from-scratch
   reference evaluator.  The program exercises a recursive stratum
   (reachability), joins, negation and a group_by aggregate, so the
   counting, semi-naive/DRed and aggregate paths are all covered. *)

open Dl

let program =
  Parser.parse_program_exn
    {|
    input relation Edge(x: int, y: int)
    input relation Root(x: int)
    output relation Reach(x: int)
    Reach(x) :- Root(x).
    Reach(y) :- Reach(x), Edge(x, y).
    output relation Pair(x: int, z: int)
    Pair(x, z) :- Edge(x, y), Edge(y, z).
    output relation Unreached(x: int)
    Unreached(y) :- Edge(_, y), not Reach(y).
    output relation Deg(x: int, n: int)
    Deg(x, n) :- Edge(x, y), var n = count(y) group_by (x).
    |}

let rels = [ ("Edge", 2); ("Root", 1) ]
let universe = 6

let row_of rng arity =
  Row.of_list
    (List.init arity (fun _ -> Value.of_int (Random.State.int rng universe)))

(* Visible rows of [rel] in the naive oracle database. *)
let oracle_rows db rel = Naive.get db rel

(* The delta we expect the engine to report for [rel]: +1 for every row
   visible now but not before, -1 for every row visible before but not
   now. *)
let expected_delta before after =
  let appeared = Row.Set.diff after before in
  let disappeared = Row.Set.diff before after in
  Row.Set.fold
    (fun r z -> Zset.add z r (-1))
    disappeared
    (Row.Set.fold (fun r z -> Zset.add z r 1) appeared Zset.empty)

let test_differential () =
  let rng = Random.State.make [| 0xd1ff |] in
  let eng = Engine.create program in
  let current : (string, Row.Set.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (r, _) -> Hashtbl.replace current r Row.Set.empty) rels;
  let all_rels = List.map (fun (d : Ast.rel_decl) -> d.rname) program.Ast.decls in
  (* Oracle snapshot of every relation before the first transaction. *)
  let snapshot db =
    List.map (fun r -> (r, oracle_rows db r)) all_rels
  in
  let inputs () =
    Hashtbl.fold (fun rel s acc -> (rel, Row.Set.elements s) :: acc) current []
  in
  let before = ref (snapshot (Naive.run program (inputs ()))) in
  let n_txns = 1200 in
  for txn_i = 1 to n_txns do
    let txn = Engine.transaction eng in
    let n_ops = 1 + Random.State.int rng 5 in
    for _ = 1 to n_ops do
      let rel, arity = List.nth rels (Random.State.int rng (List.length rels)) in
      let row = row_of rng arity in
      let ins = Random.State.bool rng in
      if ins then Engine.insert txn rel row else Engine.delete txn rel row;
      let s = Hashtbl.find current rel in
      Hashtbl.replace current rel
        (if ins then Row.Set.add row s else Row.Set.remove row s)
    done;
    let deltas = Engine.commit txn in
    let oracle = Naive.run program (inputs ()) in
    let after = snapshot oracle in
    List.iter
      (fun rel ->
        let prev = List.assoc rel !before in
        let next = List.assoc rel after in
        (* 1. Visible relation contents match the oracle. *)
        let expected = List.sort Row.compare (Row.Set.elements next) in
        let actual = List.sort Row.compare (Engine.relation_rows eng rel) in
        if not (List.equal Row.equal expected actual) then
          Alcotest.failf "txn %d: relation %s diverged (%d vs %d rows)" txn_i
            rel (List.length expected) (List.length actual);
        (* 2. The reported delta is exactly the visibility diff. *)
        let want = expected_delta prev next in
        let got =
          match List.assoc_opt rel deltas with
          | Some z -> z
          | None -> Zset.empty
        in
        if not (Zset.equal want got) then
          Alcotest.failf "txn %d: delta for %s diverged: want %s got %s" txn_i
            rel (Format.asprintf "%a" Zset.pp want)
            (Format.asprintf "%a" Zset.pp got))
      all_rels;
    before := after
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d transactions, engine = naive oracle" n_txns)
    true true

(* Lockstep pool-size differential: the same 1200-txn random stream is
   applied to three engines over the same program — pool size 0
   (sequential), 1 and 4 — and after EVERY commit the reported
   per-relation deltas and the visible contents of every relation must
   be identical across all three.  This is the executable form of the
   determinism argument in DESIGN.md: parallel commits are
   bit-identical to sequential ones. *)
let test_pool_lockstep () =
  let rng = Random.State.make [| 0x9001 |] in
  let pools =
    [ None; Some (Pool.create ~size:1 ()); Some (Pool.create ~size:4 ()) ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (function Some p -> Pool.shutdown p | None -> ()) pools)
    (fun () ->
      let engines = List.map (fun pool -> Engine.create ?pool program) pools in
      let all_rels =
        List.map (fun (d : Ast.rel_decl) -> d.rname) program.Ast.decls
      in
      let n_txns = 1200 in
      for txn_i = 1 to n_txns do
        let txns = List.map Engine.transaction engines in
        let n_ops = 1 + Random.State.int rng 5 in
        for _ = 1 to n_ops do
          let rel, arity =
            List.nth rels (Random.State.int rng (List.length rels))
          in
          let row = row_of rng arity in
          let ins = Random.State.bool rng in
          List.iter
            (fun txn ->
              if ins then Engine.insert txn rel row
              else Engine.delete txn rel row)
            txns
        done;
        let deltas = List.map Engine.commit txns in
        let ref_delta = List.hd deltas in
        List.iteri
          (fun k delta ->
            List.iter
              (fun rel ->
                let want =
                  Option.value ~default:Zset.empty
                    (List.assoc_opt rel ref_delta)
                in
                let got =
                  Option.value ~default:Zset.empty (List.assoc_opt rel delta)
                in
                if not (Zset.equal want got) then
                  Alcotest.failf
                    "txn %d: engine %d delta for %s diverged from sequential"
                    txn_i (k + 1) rel)
              all_rels)
          (List.tl deltas);
        let ref_eng = List.hd engines in
        List.iteri
          (fun k eng ->
            List.iter
              (fun rel ->
                let want =
                  List.sort Row.compare (Engine.relation_rows ref_eng rel)
                in
                let got =
                  List.sort Row.compare (Engine.relation_rows eng rel)
                in
                if not (List.equal Row.equal want got) then
                  Alcotest.failf
                    "txn %d: engine %d relation %s diverged from sequential"
                    txn_i (k + 1) rel)
              all_rels)
          (List.tl engines)
      done);
  Alcotest.(check bool) "pool sizes 0/1/4 stay in lockstep" true true

let tests =
  [
    Alcotest.test_case "1200-txn differential vs naive" `Quick test_differential;
    Alcotest.test_case "1200-txn lockstep across pool sizes 0/1/4" `Quick
      test_pool_lockstep;
  ]
