(* Tests for the OpenFlow model and the P4 -> OpenFlow compiler. *)

open Ofp4

let simple_router : P4.Program.t =
  let open P4.Program in
  {
    name = "router";
    headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
    parser =
      { start = "s";
        states = [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ];
                     transition = Accept } ] };
    actions =
      [
        { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
        { aname = "drop"; params = []; body = [ Drop ] };
        { aname = "flood"; params = [ ("g", 16) ];
          body = [ Multicast (EParam "g") ] };
      ];
    tables =
      [
        { tname = "acl";
          keys = [ { kref = Field ("ipv4", "src"); kind = Ternary } ];
          actions = [ "forward"; "drop" ];
          default_action = ("forward", [ 0L ]); size = 64 };
        { tname = "routes";
          keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm } ];
          actions = [ "forward"; "drop"; "flood" ];
          default_action = ("drop", []); size = 1024 };
      ];
    digests = []; counters = []; registers = [];
    ingress = Seq (ApplyTable "acl", ApplyTable "routes");
    egress = Nop;
  }

let mk_switch () =
  let sw = P4.Switch.create simple_router in
  P4.Switch.insert_entry sw "routes"
    { P4.Entry.matches = [ P4.Entry.MLpm (0x0A000000L, 8) ]; priority = 0;
      action = "forward"; args = [ 1L ] };
  P4.Switch.insert_entry sw "routes"
    { P4.Entry.matches = [ P4.Entry.MLpm (0x0A010000L, 16) ]; priority = 0;
      action = "forward"; args = [ 2L ] };
  P4.Switch.insert_entry sw "acl"
    { P4.Entry.matches = [ P4.Entry.MTernary (0xDEAD0000L, 0xFFFF0000L) ];
      priority = 9; action = "drop"; args = [] };
  sw

let eval_pkt prog ~src ~dst =
  Openflow.eval prog
    { Openflow.fields = [ ("ipv4.src", src); ("ipv4.dst", dst) ]; present = [] }

let test_compile_structure () =
  let prog = Compile.compile (mk_switch ()) in
  (* 3 entries + 2 default flows *)
  Alcotest.(check int) "flow count" 5 (Openflow.flow_count prog);
  Alcotest.(check int) "two tables" 2 prog.Openflow.n_tables;
  (* every acl flow chains to the routes table *)
  List.iter
    (fun (f : Openflow.flow) ->
      if f.table_id = 0 && f.actions <> [] then
        Alcotest.(check bool) "goto appended" true
          (List.exists (function Openflow.Goto 1 -> true | _ -> false) f.actions
          || List.mem (Openflow.SetField (Openflow.reg_dropped, 1L)) f.actions))
    prog.Openflow.flows

let test_compiled_semantics () =
  let prog = Compile.compile (mk_switch ()) in
  (* LPM: /16 beats /8 *)
  let v = eval_pkt prog ~src:1L ~dst:0x0A016666L in
  Alcotest.(check bool) "lpm /16" true (v.Openflow.outputs = [ 2L ]);
  let v = eval_pkt prog ~src:1L ~dst:0x0A996666L in
  Alcotest.(check bool) "lpm /8" true (v.Openflow.outputs = [ 1L ]);
  (* default drop *)
  let v = eval_pkt prog ~src:1L ~dst:0x0B000000L in
  Alcotest.(check bool) "default" true (v.Openflow.outputs = []);
  (* acl ternary drop stops the pipeline *)
  let v = eval_pkt prog ~src:0xDEAD1234L ~dst:0x0A016666L in
  Alcotest.(check bool) "acl drop" true (v.Openflow.outputs = [])

let test_compile_vs_switch_differential () =
  (* The compiled flow pipeline and the P4 behavioural model must agree
     on the forwarding verdict for random packets. *)
  let sw = mk_switch () in
  let prog = Compile.compile sw in
  let r = Random.State.make [| 11 |] in
  for _ = 0 to 200 do
    let src = Random.State.int64 r 0xFFFFFFFFL in
    let dst = Random.State.int64 r 0xFFFFFFFFL in
    let pkt =
      P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:src ~ip_dst:dst
        ~src_port:1L ~dst_port:2L ~payload:""
    in
    let p4_ports =
      List.sort Int.compare (List.map fst (P4.Switch.process sw ~in_port:5 pkt))
    in
    let of_ports =
      List.sort Int.compare
        (List.map Int64.to_int (eval_pkt prog ~src ~dst).Openflow.outputs)
    in
    if p4_ports <> of_ports then
      Alcotest.failf "divergence on src=%Ld dst=%Ld: p4=[%s] of=[%s]" src dst
        (String.concat ";" (List.map string_of_int p4_ports))
        (String.concat ";" (List.map string_of_int of_ports))
  done

(* The naive per-entry translator still rejects conditional control
   flow; the FDD backend compiles the same program (snvs's ingress
   starts with [If (EValid "vlan", ...)]). *)
let test_unsupported_control () =
  let sw = P4.Switch.create Snvs.p4 in
  (match Compile.compile_naive sw with
  | exception Compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "naive backend must reject conditional control flow");
  let ofp = Compile.compile sw in
  Alcotest.(check bool) "fdd backend compiles If" true
    (Openflow.flow_count ofp > 0)

let test_eval_goto_forward_only () =
  let prog = Openflow.create () in
  Openflow.add_flow prog
    { Openflow.table_id = 0; priority = 1; matches = [];
      actions = [ Openflow.Goto 0 ]; cookie = "loop" };
  match eval_pkt prog ~src:0L ~dst:0L with
  | exception Openflow.Eval_error _ -> ()
  | _ -> Alcotest.fail "backward goto must fail"

let test_fragment_count_by_cookie () =
  let prog = Openflow.create () in
  let flow cookie table_id =
    { Openflow.table_id; priority = 1; matches = []; actions = [];
      cookie }
  in
  Openflow.add_flow prog (flow "a" 0);
  Openflow.add_flow prog (flow "a" 1);
  Openflow.add_flow prog (flow "b" 0);
  Alcotest.(check int) "three flows" 3 (Openflow.flow_count prog);
  Alcotest.(check int) "two fragments" 2 (Openflow.fragment_count prog)

let tests =
  [
    Alcotest.test_case "compile structure" `Quick test_compile_structure;
    Alcotest.test_case "compiled semantics" `Quick test_compiled_semantics;
    Alcotest.test_case "compile vs switch differential" `Quick
      test_compile_vs_switch_differential;
    Alcotest.test_case "naive rejects If, fdd compiles it" `Quick
      test_unsupported_control;
    Alcotest.test_case "goto loop rejected" `Quick test_eval_goto_forward_only;
    Alcotest.test_case "fragment counting" `Quick test_fragment_count_by_cookie;
  ]
