let () =
  Alcotest.run "nerpa"
    [
      ("value", Test_value.tests);
      ("zset", Test_zset.tests);
      ("obs", Test_obs.tests);
      ("builtins", Test_builtins.tests);
      ("dl-parser", Test_dl_parser.tests);
      ("dl-typecheck", Test_dl_typecheck.tests);
      ("dl-engine", Test_dl_engine.tests);
      ("dl-engine2", Test_dl_engine2.tests);
      ("dl-props", Test_dl_props.suite);
      ("dl-diff", Test_dl_diff.tests);
      ("pool", Test_pool.tests);
      ("json", Test_json.tests);
      ("ovsdb", Test_ovsdb.tests);
      ("p4", Test_p4.tests);
      ("p4-props", Test_p4_props.suite);
      ("p4-matcher", Test_p4_matcher.tests);
      ("nerpa", Test_nerpa.tests);
      ("transport", Test_transport.tests);
      ("server", Test_server.tests);
      ("binc", Test_binc.suite);
      ("l3router", Test_l3router.tests);
      ("baseline", Test_baseline.tests);
      ("equivalence", Test_equivalence.tests);
      ("ofp4", Test_ofp4.tests);
      ("fdd", Test_fdd.tests);
      ("compile_state", Test_compile_state.tests);
      ("cluster", Test_cluster.tests);
    ]
