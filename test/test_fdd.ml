(* Tests for the FDD compiler stack (PR 8):
   - Fdd unit behaviour: hash-consing, prefer-left union, bind,
     subtree sharing;
   - the priority-collision regression the naive backend used to have
     (1 + priority + lpm_length summed two incomparable dimensions);
   - on snvs/l3router pipelines with injected shadowed rules the FDD
     backend emits strictly fewer flows than the naive translator;
   - >= 1000-packet Eval-vs-interpreter differentials for snvs and
     l3router, plus QCheck entry churn with overlapping ternary and
     shadowed entries. *)

open Ofp4

let mk ~matches ~prio ?(action = "x") ?(args = []) () =
  { P4.Entry.matches; priority = prio; action; args }

let sorted_outs outs =
  List.sort compare
    (List.map (fun (p, pkt) -> (p, P4.Packet.to_hex pkt)) outs)

(* Run one packet through the interpreter switch and through the
   FDD-compiled pipeline under Eval; fail on any difference in the
   (port, bytes) output set. *)
let check_agree ~what sw ev ~in_port pkt =
  let a = sorted_outs (P4.Switch.process sw ~in_port (pkt ())) in
  let b = sorted_outs (Eval.process ev ~in_port (pkt ())) in
  if a <> b then
    Alcotest.failf "%s: divergence on in_port=%d: p4=[%s] of=[%s]" what in_port
      (String.concat ";" (List.map (fun (p, h) -> Printf.sprintf "%d:%s" p h) a))
      (String.concat ";" (List.map (fun (p, h) -> Printf.sprintf "%d:%s" p h) b))

(* ------------------------------------------------------------------ *)
(* Fdd unit behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let order_ab f = if String.equal f "a" then 0 else 1
let ta v = { Fdd.tfield = "a"; tmask = 0xFFL; tvalue = v }
let tb v = { Fdd.tfield = "b"; tmask = 0xFFL; tvalue = v }

let test_hashcons () =
  let m = Fdd.create ~order:order_ab () in
  let n1 = Fdd.node m (ta 1L) (Fdd.leaf 1) (Fdd.leaf 2) in
  let n2 = Fdd.node m (ta 1L) (Fdd.leaf 1) (Fdd.leaf 2) in
  Alcotest.(check bool) "equal nodes share" true (n1 == n2);
  (* the value is canonicalised under the mask *)
  let n3 =
    Fdd.node m
      { Fdd.tfield = "a"; tmask = 0xFFL; tvalue = 0xAB01L }
      (Fdd.leaf 1) (Fdd.leaf 2)
  in
  Alcotest.(check bool) "value canonicalised" true (n3 == n1);
  (* hi == lo collapses to the child *)
  let c = Fdd.node m (ta 1L) (Fdd.leaf 3) (Fdd.leaf 3) in
  Alcotest.(check int) "hi=lo collapses" (Fdd.id (Fdd.leaf 3)) (Fdd.id c);
  Alcotest.(check int) "leaf ids stable" (-1) (Fdd.id Fdd.undef)

let test_union_prefer_left () =
  let m = Fdd.create ~order:order_ab () in
  Alcotest.(check int) "left leaf wins" (Fdd.id (Fdd.leaf 1))
    (Fdd.id (Fdd.union m (Fdd.leaf 1) (Fdd.leaf 2)));
  Alcotest.(check int) "undef is left identity" (Fdd.id (Fdd.leaf 2))
    (Fdd.id (Fdd.union m Fdd.undef (Fdd.leaf 2)));
  Alcotest.(check int) "undef is right identity" (Fdd.id (Fdd.leaf 1))
    (Fdd.id (Fdd.union m (Fdd.leaf 1) Fdd.undef));
  (* a partial diagram falls through to the right on its undef side *)
  let part = Fdd.node m (ta 1L) (Fdd.leaf 1) Fdd.undef in
  Alcotest.(check bool) "fallthrough fills lo" true
    (Fdd.union m part (Fdd.leaf 2) == Fdd.node m (ta 1L) (Fdd.leaf 1) (Fdd.leaf 2));
  (* an identical match lower in rank order is shadowed away *)
  let shadow = Fdd.node m (ta 1L) (Fdd.leaf 2) Fdd.undef in
  Alcotest.(check bool) "identical match shadowed" true
    (Fdd.union m part shadow == part)

let test_union_sharing () =
  let m = Fdd.create ~order:order_ab () in
  let x = Fdd.node m (tb 1L) (Fdd.leaf 1) (Fdd.leaf 2) in
  let y = Fdd.node m (ta 1L) x Fdd.undef in
  let y' = Fdd.node m (ta 2L) x Fdd.undef in
  let u = Fdd.union m y y' in
  Alcotest.(check bool) "structure" true
    (u == Fdd.node m (ta 1L) x (Fdd.node m (ta 2L) x Fdd.undef));
  Alcotest.(check int) "shared subtree counted once" 3 (Fdd.size u);
  Alcotest.(check (list int)) "leaves" [ 0; 1; 2 ] (Fdd.leaves u)

let test_bind () =
  let m = Fdd.create ~order:order_ab () in
  let d = Fdd.node m (ta 1L) (Fdd.leaf 1) (Fdd.leaf 2) in
  let flipped = Fdd.bind m d (fun v -> Fdd.leaf (if v = 1 then 2 else 1)) in
  Alcotest.(check bool) "leaves substituted" true
    (flipped == Fdd.node m (ta 1L) (Fdd.leaf 2) (Fdd.leaf 1));
  let collapsed = Fdd.bind m d (fun _ -> Fdd.leaf 7) in
  Alcotest.(check int) "constant bind collapses" (Fdd.id (Fdd.leaf 7))
    (Fdd.id collapsed)

(* Long lo-spines (one node per entry) must not overflow the stack:
   union, bind and size are all iterative. *)
let test_deep_spine () =
  let m = Fdd.create ~order:order_ab () in
  let deep =
    let d = ref Fdd.undef in
    for i = 100_000 downto 1 do
      d := Fdd.node m (ta (Int64.of_int (i land 0xFF))) (Fdd.leaf 1) !d
    done;
    !d
  in
  ignore (Fdd.union m deep (Fdd.leaf 2));
  ignore (Fdd.bind m deep (fun v -> Fdd.leaf (v + 1)));
  Alcotest.(check bool) "deep spine sized" true (Fdd.size deep > 0)

(* ------------------------------------------------------------------ *)
(* Priority-collision regression                                       *)
(* ------------------------------------------------------------------ *)

(* The old naive scheme assigned priority [1 + entry.priority +
   lpm_length], so an exact/optional entry at priority 11 outranked an
   LPM /10 entry at priority 0 — the opposite of the rank order every
   matcher uses ([Entry.rank_compare]: total prefix length dominates).
   Both backends must agree with the interpreter on packets matching
   both entries. *)
let collide : P4.Program.t =
  let open P4.Program in
  {
    name = "collide";
    headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
    parser =
      { start = "s";
        states = [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ];
                     transition = Accept } ] };
    actions =
      [
        { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
        { aname = "drop"; params = []; body = [ Drop ] };
      ];
    tables =
      [
        { tname = "t";
          keys =
            [ { kref = Field ("ipv4", "protocol"); kind = Optional };
              { kref = Field ("ipv4", "dst"); kind = Lpm } ];
          actions = [ "forward"; "drop" ];
          default_action = ("drop", []); size = 64 };
      ];
    digests = []; counters = []; registers = [];
    ingress = ApplyTable "t";
    egress = Nop;
  }

let test_priority_collision () =
  let sw = P4.Switch.create collide in
  (* exact-on-protocol at priority 11 ... *)
  P4.Switch.insert_entry sw "t"
    (mk
       ~matches:[ P4.Entry.MExact 17L; P4.Entry.MLpm (0L, 0) ]
       ~prio:11 ~action:"forward" ~args:[ 1L ] ());
  (* ... versus an LPM /10 at priority 0: the /10 must win *)
  P4.Switch.insert_entry sw "t"
    (mk
       ~matches:[ P4.Entry.MAny; P4.Entry.MLpm (0x0A000000L, 10) ]
       ~prio:0 ~action:"forward" ~args:[ 2L ] ());
  let ev_naive = Eval.of_switch sw (Compile.compile_naive sw) in
  let ev_fdd = Eval.of_switch sw (Compile.compile sw) in
  let probe ~proto ~dst expect =
    let pkt () =
      let p =
        P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:1L ~ip_dst:dst
          ~src_port:1L ~dst_port:2L ~payload:""
      in
      P4.Packet.set_bits p ~bit_offset:((14 * 8) + 72) ~width:8 proto;
      p
    in
    let ports outs = List.sort Int.compare (List.map fst outs) in
    let p4 = ports (P4.Switch.process sw ~in_port:5 (pkt ())) in
    Alcotest.(check (list int)) "interpreter verdict" expect p4;
    Alcotest.(check (list int)) "naive backend agrees" expect
      (ports (Eval.process ev_naive ~in_port:5 (pkt ())));
    Alcotest.(check (list int)) "fdd backend agrees" expect
      (ports (Eval.process ev_fdd ~in_port:5 (pkt ())))
  in
  (* both entries match: lpm_length 10 beats priority 11 *)
  probe ~proto:17L ~dst:0x0A000001L [ 2 ];
  (* only the exact-protocol entry matches *)
  probe ~proto:17L ~dst:0xC0000001L [ 1 ];
  (* only the /10 matches *)
  probe ~proto:6L ~dst:0x0A000001L [ 2 ];
  (* neither: default drop *)
  probe ~proto:6L ~dst:0xC0000001L []

(* ------------------------------------------------------------------ *)
(* Shadowed rules: FDD output is strictly smaller than naive           *)
(* ------------------------------------------------------------------ *)

(* If-free variants of the real pipelines, so the naive backend (which
   rejects conditionals) can compile the same tables for the count
   comparison. *)
let snvs_linear : P4.Program.t =
  let open P4.Program in
  {
    (Snvs.p4) with
    ingress =
      Seq
        ( ApplyTable "in_vlan",
          Seq
            ( ApplyTable "acl",
              Seq (ApplyTable "mirror",
                   Seq (ApplyTable "smac", ApplyTable "dmac")) ) );
  }

let l3_linear : P4.Program.t =
  let open P4.Program in
  { (L3router.p4) with
    ingress = Seq (ApplyTable "protocol_filter", ApplyTable "routes") }

let test_fewer_flows_snvs () =
  let sw = P4.Switch.create snvs_linear in
  P4.Switch.insert_entry sw "in_vlan"
    (mk ~matches:[ P4.Entry.MExact 1L; P4.Entry.MExact 0L ]
       ~prio:5 ~action:"set_vlan" ~args:[ 10L ] ());
  (* same match at lower priority: fully shadowed *)
  P4.Switch.insert_entry sw "in_vlan"
    (mk ~matches:[ P4.Entry.MExact 1L; P4.Entry.MExact 0L ]
       ~prio:0 ~action:"set_vlan" ~args:[ 20L ] ());
  P4.Switch.insert_entry sw "in_vlan"
    (mk ~matches:[ P4.Entry.MExact 3L; P4.Entry.MExact 10L ]
       ~prio:0 ~action:"keep_tag" ());
  (* a catch-all ACL allow shadows the narrower deny below it *)
  P4.Switch.insert_entry sw "acl"
    (mk ~matches:[ P4.Entry.MTernary (0L, 0L); P4.Entry.MTernary (0L, 0L) ]
       ~prio:9 ~action:"allow" ());
  P4.Switch.insert_entry sw "acl"
    (mk ~matches:[ P4.Entry.MTernary (5L, 7L); P4.Entry.MTernary (0L, 0L) ]
       ~prio:1 ~action:"deny" ());
  P4.Switch.insert_entry sw "dmac"
    (mk ~matches:[ P4.Entry.MExact 10L; P4.Entry.MExact 2L ]
       ~prio:0 ~action:"forward" ~args:[ 3L ] ());
  let naive = Openflow.flow_count (Compile.compile_naive sw) in
  let fdd = Openflow.flow_count (Compile.compile sw) in
  Alcotest.(check bool)
    (Printf.sprintf "fdd (%d) < naive (%d)" fdd naive)
    true (fdd < naive);
  (* the shadowed rows were unreachable, so behaviour is unchanged *)
  let ev = Eval.of_switch sw (Compile.compile sw) in
  let r = Random.State.make [| 21 |] in
  for _ = 1 to 100 do
    let dst = Int64.of_int (1 + Random.State.int r 4) in
    let src = Int64.of_int (1 + Random.State.int r 6) in
    let port = 1 + Random.State.int r 4 in
    check_agree ~what:"snvs shadowed" sw ev ~in_port:port (fun () ->
        P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x0800L ~payload:"pp")
  done

let test_fewer_flows_l3router () =
  let sw = P4.Switch.create l3_linear in
  (* catch-all allow shadows both the deny and the table default *)
  P4.Switch.insert_entry sw "protocol_filter"
    (mk ~matches:[ P4.Entry.MAny ] ~prio:9 ~action:"allow" ());
  P4.Switch.insert_entry sw "protocol_filter"
    (mk ~matches:[ P4.Entry.MExact 17L ] ~prio:1 ~action:"deny" ());
  P4.Switch.insert_entry sw "routes"
    (mk ~matches:[ P4.Entry.MLpm (0x0A000000L, 8) ]
       ~prio:5 ~action:"route_to" ~args:[ 1L; 0xAAL ] ());
  (* same prefix at lower priority: fully shadowed *)
  P4.Switch.insert_entry sw "routes"
    (mk ~matches:[ P4.Entry.MLpm (0x0A000000L, 8) ]
       ~prio:0 ~action:"route_to" ~args:[ 9L; 0xBBL ] ());
  P4.Switch.insert_entry sw "routes"
    (mk ~matches:[ P4.Entry.MLpm (0x0A010000L, 16) ]
       ~prio:0 ~action:"route_to" ~args:[ 2L; 0xCCL ] ());
  let naive = Openflow.flow_count (Compile.compile_naive sw) in
  let fdd = Openflow.flow_count (Compile.compile sw) in
  Alcotest.(check bool)
    (Printf.sprintf "fdd (%d) < naive (%d)" fdd naive)
    true (fdd < naive);
  let ev = Eval.of_switch sw (Compile.compile sw) in
  let r = Random.State.make [| 22 |] in
  for _ = 1 to 100 do
    let dst =
      Int64.of_int
        (((10 + Random.State.int r 2) lsl 24)
        lor (Random.State.int r 3 lsl 16)
        lor Random.State.int r 256)
    in
    check_agree ~what:"l3 shadowed" sw ev ~in_port:7 (fun () ->
        P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:3L ~ip_dst:dst
          ~src_port:1L ~dst_port:2L ~payload:"x")
  done

(* ------------------------------------------------------------------ *)
(* Eval vs interpreter differentials (>= 1000 packets per program)     *)
(* ------------------------------------------------------------------ *)

let test_snvs_differential () =
  let sw = P4.Switch.create Snvs.p4 in
  (* access ports 1-2 on vlan 10, trunks 3-4; macs 1-3 known on vlan
     10; a ternary ACL deny, a mirror and a tagged output *)
  List.iter
    (fun (port, vid, act, args) ->
      P4.Switch.insert_entry sw "in_vlan"
        (mk ~matches:[ P4.Entry.MExact port; P4.Entry.MExact vid ]
           ~prio:0 ~action:act ~args ()))
    [
      (1L, 0L, "set_vlan", [ 10L ]); (2L, 0L, "set_vlan", [ 10L ]);
      (3L, 10L, "keep_tag", []); (3L, 20L, "keep_tag", []);
      (4L, 10L, "keep_tag", []);
    ];
  List.iter
    (fun mac ->
      P4.Switch.insert_entry sw "dmac"
        (mk ~matches:[ P4.Entry.MExact 10L; P4.Entry.MExact mac ]
           ~prio:0 ~action:"forward" ~args:[ Int64.add mac 1L ] ());
      P4.Switch.insert_entry sw "smac"
        (mk
           ~matches:
             [ P4.Entry.MExact 10L; P4.Entry.MExact mac;
               P4.Entry.MExact (Int64.add mac 1L) ]
           ~prio:0 ~action:"noop" ()))
    [ 1L; 2L; 3L ];
  P4.Switch.insert_entry sw "acl"
    (mk ~matches:[ P4.Entry.MTernary (5L, 7L); P4.Entry.MTernary (0L, 0L) ]
       ~prio:3 ~action:"deny" ());
  P4.Switch.insert_entry sw "mirror"
    (mk ~matches:[ P4.Entry.MExact 2L ] ~prio:0 ~action:"clone_to"
       ~args:[ 9L ] ());
  P4.Switch.insert_entry sw "out_vlan"
    (mk ~matches:[ P4.Entry.MExact 3L; P4.Entry.MExact 10L ]
       ~prio:0 ~action:"output_tagged" ());
  P4.Switch.set_mcast_group sw 10L [ 1L; 2L; 3L ];
  P4.Switch.set_mcast_group sw 20L [ 3L; 4L ];
  let ev = Eval.of_switch sw (Compile.compile sw) in
  let r = Random.State.make [| 31 |] in
  for _ = 1 to 1200 do
    let dst = Int64.of_int (1 + Random.State.int r 6) in
    let src = Int64.of_int (1 + Random.State.int r 6) in
    let port = 1 + Random.State.int r 4 in
    let tagged = Random.State.bool r in
    let vid = if Random.State.bool r then 10L else 20L in
    check_agree ~what:"snvs" sw ev ~in_port:port (fun () ->
        if tagged then
          P4.Stdhdrs.vlan_frame ~dst ~src ~vid ~ethertype:0x0800L ~payload:"pp"
        else P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x0800L ~payload:"pp")
  done

let test_l3router_differential () =
  let sw = P4.Switch.create L3router.p4 in
  List.iter
    (fun (prefix, len, port) ->
      P4.Switch.insert_entry sw "routes"
        (mk ~matches:[ P4.Entry.MLpm (prefix, len) ]
           ~prio:0 ~action:"route_to"
           ~args:[ port; Int64.add 0x100L port ] ()))
    [
      (0x0A000000L, 8, 1L); (0x0A010000L, 16, 2L); (0x0A010200L, 24, 3L);
      (0x0A010203L, 32, 4L); (0L, 0, 5L);
    ];
  P4.Switch.insert_entry sw "protocol_filter"
    (mk ~matches:[ P4.Entry.MExact 6L ] ~prio:1 ~action:"deny" ());
  let ev = Eval.of_switch sw (Compile.compile sw) in
  let r = Random.State.make [| 32 |] in
  for _ = 1 to 1200 do
    let dst =
      Int64.of_int
        (((9 + Random.State.int r 3) lsl 24)
        lor (Random.State.int r 3 lsl 16)
        lor (Random.State.int r 4 lsl 8)
        lor Random.State.int r 5)
    in
    let ttl = List.nth [ 0L; 1L; 64L ] (Random.State.int r 3) in
    let proto = if Random.State.bool r then 6L else 17L in
    check_agree ~what:"l3router" sw ev ~in_port:9 (fun () ->
        let p =
          P4.Stdhdrs.udp_packet ~eth_dst:0xAAL ~eth_src:0xBBL
            ~ip_src:0x0A000001L ~ip_dst:dst ~src_port:7L ~dst_port:53L
            ~payload:"x"
        in
        P4.Packet.set_bits p ~bit_offset:((14 * 8) + 64) ~width:8 ttl;
        P4.Packet.set_bits p ~bit_offset:((14 * 8) + 72) ~width:8 proto;
        p)
  done

(* Random entry churn over a ternary + LPM pipeline, with masks and
   values drawn from small pools so overlapping and shadowed entries
   occur constantly. *)
let churn_prog : P4.Program.t =
  let open P4.Program in
  {
    name = "churn";
    headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
    parser =
      { start = "s";
        states = [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ];
                     transition = Accept } ] };
    actions =
      [
        { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
        { aname = "drop"; params = []; body = [ Drop ] };
      ];
    tables =
      [
        { tname = "acl";
          keys = [ { kref = Field ("ipv4", "src"); kind = Ternary } ];
          actions = [ "forward"; "drop" ];
          default_action = ("forward", [ 0L ]); size = 64 };
        { tname = "routes";
          keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm } ];
          actions = [ "forward"; "drop" ];
          default_action = ("drop", []); size = 1024 };
      ];
    digests = []; counters = []; registers = [];
    ingress = Seq (ApplyTable "acl", ApplyTable "routes");
    egress = Nop;
  }

let prop_churn_differential =
  let gen_acl =
    QCheck2.Gen.(
      let* v = oneofl [ 0x05L; 0x0500L; 0x05000000L; 0xDEAD0000L; 0L ] in
      let* m = oneofl [ 0L; 0xFFL; 0xFF00L; 0xFFFF0000L; 0x0F0F0000L; -1L ] in
      let* prio = int_range 0 4 in
      let* drop = bool in
      let* port = int_range 1 4 in
      return
        (mk
           ~matches:[ P4.Entry.MTernary (v, m) ]
           ~prio
           ~action:(if drop then "drop" else "forward")
           ~args:(if drop then [] else [ Int64.of_int port ])
           ()))
  in
  let gen_route =
    QCheck2.Gen.(
      let* base = int_range 0 2 in
      let* sub = int_range 0 3 in
      let* len = oneofl [ 0; 8; 16; 24; 32 ] in
      let* prio = int_range 0 2 in
      let* port = int_range 1 4 in
      let prefix =
        Int64.logor
          (Int64.shift_left (Int64.of_int (10 + base)) 24)
          (Int64.shift_left (Int64.of_int sub) 16)
      in
      return
        (mk
           ~matches:[ P4.Entry.MLpm (prefix, len) ]
           ~prio ~action:"forward" ~args:[ Int64.of_int port ] ()))
  in
  let gen_probe =
    QCheck2.Gen.(
      let* src = oneofl [ 0x05L; 0x0501L; 0x0500FFL; 0xDEAD1234L; 0x12345678L ] in
      let* base = int_range 0 3 in
      let* sub = int_range 0 3 in
      let* low = oneofl [ 0; 1; 255 ] in
      return
        ( src,
          Int64.logor
            (Int64.shift_left (Int64.of_int (10 + base)) 24)
            (Int64.logor (Int64.shift_left (Int64.of_int sub) 16)
               (Int64.of_int low)) ))
  in
  QCheck2.Test.make ~count:40
    ~name:"fdd eval differential (entry churn, overlapping ternary)"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 12) gen_acl)
        (list_size (int_range 1 12) gen_route)
        (list_size (int_range 5 30) gen_probe))
    (fun (acls, routes, probes) ->
      let sw = P4.Switch.create churn_prog in
      List.iter (fun e -> P4.Switch.insert_entry sw "acl" e) acls;
      List.iter (fun e -> P4.Switch.insert_entry sw "routes" e) routes;
      let ev = Eval.of_switch sw (Compile.compile sw) in
      List.for_all
        (fun (src, dst) ->
          let pkt () =
            P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:src
              ~ip_dst:dst ~src_port:1L ~dst_port:2L ~payload:""
          in
          sorted_outs (P4.Switch.process sw ~in_port:5 (pkt ()))
          = sorted_outs (Eval.process ev ~in_port:5 (pkt ())))
        probes)

let tests =
  [
    Alcotest.test_case "fdd hash-consing" `Quick test_hashcons;
    Alcotest.test_case "fdd union prefers left" `Quick test_union_prefer_left;
    Alcotest.test_case "fdd union shares subtrees" `Quick test_union_sharing;
    Alcotest.test_case "fdd bind" `Quick test_bind;
    Alcotest.test_case "fdd deep spines are iterative" `Quick test_deep_spine;
    Alcotest.test_case "priority collision regression" `Quick
      test_priority_collision;
    Alcotest.test_case "shadowed rules elided (snvs)" `Quick
      test_fewer_flows_snvs;
    Alcotest.test_case "shadowed rules elided (l3router)" `Quick
      test_fewer_flows_l3router;
    Alcotest.test_case "eval differential (snvs, 1200 pkts)" `Quick
      test_snvs_differential;
    Alcotest.test_case "eval differential (l3router, 1200 pkts)" `Quick
      test_l3router_differential;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_churn_differential ]
