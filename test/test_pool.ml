(* PR 4 concurrency tests.  Three layers:

   1. The domain pool itself: positional results, the size-0 sequential
      fallback, lowest-index exception propagation and nested batches.
   2. The domain-safety contracts the pool relies on: exact counts when
      several domains hammer one [Obs] counter/histogram, and canonical
      interning when several domains intern the same rows.
   3. The parallel multi-switch driver under fault injection: a
      16-switch fleet with one link force-disconnected mid-run must
      leave the other 15 switches byte-identical to a fault-free
      sequential baseline, without the sync loop stalling on the dead
      link. *)

open Dl

(* ---------------------------------------------------------------- *)
(* Pool semantics                                                    *)
(* ---------------------------------------------------------------- *)

let with_pool ~size f =
  let pool = Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_results () =
  with_pool ~size:3 (fun pool ->
      Alcotest.(check int) "size" 3 (Pool.size pool);
      let results = Pool.run pool (Array.init 64 (fun i () -> i * i)) in
      Alcotest.(check (array int))
        "results are positional"
        (Array.init 64 (fun i -> i * i))
        results)

let test_pool_sequential_fallback () =
  with_pool ~size:0 (fun pool ->
      Alcotest.(check int) "size" 0 (Pool.size pool);
      let order = ref [] in
      let results =
        Pool.run pool
          (Array.init 8 (fun i () ->
               order := i :: !order;
               i))
      in
      Alcotest.(check (list int))
        "size 0 runs inline in index order"
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        (List.rev !order);
      Alcotest.(check (array int)) "results" (Array.init 8 Fun.id) results)

let test_pool_exception () =
  with_pool ~size:3 (fun pool ->
      match
        Pool.run pool
          (Array.init 16 (fun i () ->
               if i mod 5 = 2 then failwith (string_of_int i) else i))
      with
      | _ -> Alcotest.fail "expected a task exception to propagate"
      | exception Failure msg ->
          (* Tasks 2, 7 and 12 all fail; sequential execution would
             report task 2 first, so the pool must too. *)
          Alcotest.(check string) "lowest-index failure wins" "2" msg)

let test_pool_nested () =
  with_pool ~size:2 (fun pool ->
      let results =
        Pool.run pool
          (Array.init 4 (fun i () ->
               (* A task submitting a batch to its own pool must not
                  deadlock, whichever domain claimed it. *)
               let inner =
                 Pool.run pool (Array.init 3 (fun j () -> (10 * i) + j))
               in
               Array.fold_left ( + ) 0 inner))
      in
      Alcotest.(check (array int))
        "nested batches run inline"
        [| 3; 33; 63; 93 |]
        results)

(* ---------------------------------------------------------------- *)
(* Domain-safe Obs: exact counts under concurrent recording          *)
(* ---------------------------------------------------------------- *)

let test_counter_hammer () =
  Obs.set_enabled true;
  let c = Obs.Counter.create "test.pool.counter_hammer" in
  let base = Obs.Counter.value c in
  let n_domains = 4 and per_domain = 100_000 in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    "exact count after 4 domains x 100k increments"
    (base + (n_domains * per_domain))
    (Obs.Counter.value c)

let test_histogram_hammer () =
  Obs.set_enabled true;
  let h = Obs.Histogram.create "test.pool.hist_hammer" in
  let n_domains = 4 and per_domain = 25_000 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Histogram.observe h (float_of_int ((d * per_domain) + i))
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    "exact observation count"
    (n_domains * per_domain)
    (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "exact min" 1.0 (Obs.Histogram.min_value h);
  Alcotest.(check (float 0.0))
    "exact max"
    (float_of_int (n_domains * per_domain))
    (Obs.Histogram.max_value h);
  (* A percentile query racing nothing must see a coherent snapshot. *)
  Alcotest.(check bool)
    "median within observed range" true
    (let p50 = Obs.Histogram.percentile h 50.0 in
     p50 >= 1.0 && p50 <= float_of_int (n_domains * per_domain))

(* ---------------------------------------------------------------- *)
(* Domain-safe Row interning                                         *)
(* ---------------------------------------------------------------- *)

let test_concurrent_intern () =
  Row.enable_domain_safety ();
  let distinct = 997 and per_domain = 20_000 in
  let mk i =
    let v = i mod distinct in
    Row.of_list [ Value.of_int v; Value.of_int (v * 2) ]
  in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Array.init per_domain mk))
  in
  let results = List.map Domain.join domains in
  let first = List.hd results in
  List.iter
    (fun arr ->
      Array.iteri
        (fun i r ->
          if not (first.(i) == r) then
            Alcotest.failf "row %d interned to distinct physical values" i)
        arr)
    (List.tl results);
  (* Every structurally distinct row got exactly one id. *)
  let ids =
    Array.to_list (Array.map Row.id first)
    |> List.sort_uniq Int.compare |> List.length
  in
  Alcotest.(check int) "one id per distinct row" distinct ids

(* ---------------------------------------------------------------- *)
(* 16-switch fleet, one link cut mid-run                             *)
(* ---------------------------------------------------------------- *)

let fleet_size = 16
let victim = 7
let victim_name = Printf.sprintf "sw%02d" victim
let bcast = P4.Stdhdrs.mac_of_string "ff:ff:ff:ff:ff:ff"
let mac_a = P4.Stdhdrs.mac_of_string "00:00:00:00:00:aa"
let mac_b = P4.Stdhdrs.mac_of_string "00:00:00:00:00:bb"

let in_vlan_id =
  lazy
    (let info = P4.P4info.of_program Snvs.p4 in
     (List.find
        (fun ti -> ti.P4.P4info.table_name = "in_vlan")
        info.P4.P4info.tables)
       .P4.P4info.table_id)

(* Canonical byte dump of one switch's dataplane state (tables sorted,
   group ports sorted), as in the CLI faultsim. *)
let dump_switch (sw : P4.Switch.t) =
  let srv = P4runtime.attach sw in
  let info = P4runtime.info srv in
  let entries =
    List.concat_map
      (fun ti -> P4runtime.read_table srv ~table_id:ti.P4.P4info.table_id)
      info.P4.P4info.tables
  in
  let groups =
    List.map
      (fun (g, ps) -> (g, List.sort Int64.compare ps))
      (P4runtime.multicast_groups srv)
  in
  P4runtime.Wire.encode_response
    (P4runtime.Wire.Table (List.sort compare entries))
  ^ P4runtime.Wire.encode_response (P4runtime.Wire.Groups groups)

(* Feed one broadcast frame into [sw] once its ingress port is admitted
   (syncing while we wait, like a host that keeps talking). *)
let feed controller (sw : P4.Switch.t) ~port src =
  let ready () =
    let srv = P4runtime.attach sw in
    List.exists
      (fun e ->
        match e.P4runtime.matches with
        | P4runtime.FmExact p :: _ -> p = Int64.of_int port
        | _ -> false)
      (P4runtime.read_table srv ~table_id:(Lazy.force in_vlan_id))
  in
  let fuel = ref 100 in
  while (not (ready ())) && !fuel > 0 do
    decr fuel;
    ignore (Nerpa.Controller.sync controller)
  done;
  ignore
    (P4.Switch.process sw ~in_port:port
       (P4.Stdhdrs.ethernet_frame ~dst:bcast ~src ~ethertype:0x1234L
          ~payload:"x"))

(* Run the fleet workload and return every switch's final dump.  With
   [fault], the victim's link is cut after the first round of config
   and stays down for the rest of the run. *)
let run_fleet ~fault ~pool () =
  let db = Ovsdb.Db.create Snvs.schema in
  let switches =
    List.init fleet_size (fun i ->
        let name = Printf.sprintf "sw%02d" i in
        (name, P4.Switch.create ~name Snvs.p4))
  in
  let endpoint =
    (* only the victim's P4Runtime link is faulty (wire + injection);
       the rest of the fleet stays on direct links *)
    Nerpa.Endpoint.planes ~mgmt:Nerpa.Endpoint.plane_in_process
      ~p4_of:(fun name ->
        if fault && String.equal name victim_name then
          Nerpa.Endpoint.Faulty
            {
              seed = 11;
              faults = Some Transport.no_faults;
              inner = Nerpa.Endpoint.Wire;
            }
        else Nerpa.Endpoint.In_process)
  in
  let controller =
    Nerpa.Controller.create
      ~digest_replace:[ ("learned_mac", [ "vlan"; "mac" ]) ]
      ~endpoint ?pool ~db ~p4:Snvs.p4 ~rules:Snvs.rules ~switches ()
  in
  let ctl_ref = ref (Nerpa.Controller.p4_ctl controller victim_name) in
  if not fault then ctl_ref := None;
  let add_port ~name ~port ~mode ~tag ~trunks =
    ignore
      (Ovsdb.Db.insert_exn db "Port"
         [
           ("name", Ovsdb.Datum.string name);
           ("port", Ovsdb.Datum.integer (Int64.of_int port));
           ("mode", Ovsdb.Datum.string mode);
           ("tag", Ovsdb.Datum.integer (Int64.of_int tag));
           ( "trunks",
             Ovsdb.Datum.set
               (List.map
                  (fun v -> Ovsdb.Atom.Integer (Int64.of_int v))
                  trunks) );
         ])
  in
  add_port ~name:"p1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[];
  add_port ~name:"p2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[];
  add_port ~name:"p3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[];
  add_port ~name:"p4" ~port:4 ~mode:"trunk" ~tag:0 ~trunks:[ 10; 20 ];
  ignore (Nerpa.Controller.sync controller);
  feed controller (snd (List.nth switches 2)) ~port:1 mac_a;
  ignore (Nerpa.Controller.sync controller);
  if fault then
    Transport.force_disconnect (Option.get !ctl_ref) ~down_for:1_000_000 ();
  (* Config and digests the victim misses while down. *)
  add_port ~name:"p5" ~port:5 ~mode:"access" ~tag:20 ~trunks:[];
  ignore (Nerpa.Controller.sync controller);
  feed controller (snd (List.nth switches 4)) ~port:2 mac_b;
  ignore (Nerpa.Controller.sync controller);
  List.map (fun (name, sw) -> (name, dump_switch sw)) switches

let test_fleet_fault () =
  let baseline = run_fleet ~fault:false ~pool:None () in
  let dumps =
    with_pool ~size:3 (fun pool ->
        run_fleet ~fault:true ~pool:(Some pool) ())
  in
  List.iter2
    (fun (name, want) (name', got) ->
      Alcotest.(check string) "fleet order" name name';
      if not (String.equal name victim_name) then
        if not (String.equal want got) then
          Alcotest.failf
            "switch %s diverged from the fault-free sequential baseline" name)
    baseline dumps;
  (* The cut must actually have bitten: the victim missed the updates
     that landed while its link was down. *)
  Alcotest.(check bool)
    "victim state differs from fault-free run" false
    (String.equal (List.assoc victim_name baseline)
       (List.assoc victim_name dumps))

let tests =
  [
    Alcotest.test_case "pool: positional results" `Quick test_pool_results;
    Alcotest.test_case "pool: size-0 sequential fallback" `Quick
      test_pool_sequential_fallback;
    Alcotest.test_case "pool: lowest-index exception" `Quick
      test_pool_exception;
    Alcotest.test_case "pool: nested batches run inline" `Quick
      test_pool_nested;
    Alcotest.test_case "obs: 4-domain counter hammer is exact" `Quick
      test_counter_hammer;
    Alcotest.test_case "obs: 4-domain histogram hammer is exact" `Quick
      test_histogram_hammer;
    Alcotest.test_case "row: concurrent interning is canonical" `Quick
      test_concurrent_intern;
    Alcotest.test_case "driver: 16-switch fleet, one link cut mid-run"
      `Quick test_fleet_fault;
  ]
