(* Tests for the client/server split: the socket frame codec (pure —
   always run) and the live Unix-socket stack (gated behind
   NERPA_SOCKET_TESTS=1 for sandboxed CI): serve/connect convergence in
   one process, frame corruption tolerated by the server, and the
   two-process kill/restart differential of the acceptance criteria. *)

module F = Transport.Frame

let socket_tests_enabled =
  match Sys.getenv_opt "NERPA_SOCKET_TESTS" with
  | Some "1" | Some "true" | Some "yes" -> true
  | _ -> false

let gated name speed f =
  Alcotest.test_case name speed (fun () ->
      if socket_tests_enabled then f ()
      else Alcotest.skip ())

(* ---------------- frame codec (pure) ---------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun (plane, codec, req_id, payload) ->
      let s = F.encode ~plane ~codec ~req_id payload in
      Alcotest.(check int) "framed length" (F.header_len + String.length payload)
        (String.length s);
      match F.decode s with
      | Ok (p, c, id, body) ->
        Alcotest.(check bool) "plane round-trips" true (p = plane);
        Alcotest.(check bool) "codec round-trips" true (c = codec);
        Alcotest.(check int) "req_id round-trips" req_id id;
        Alcotest.(check string) "payload round-trips" payload body
      | Error _ -> Alcotest.fail "well-formed frame rejected")
    [
      (F.Mgmt, Transport.Json, 0, "");
      (F.P4, Transport.Json, 1, "x");
      (F.Mgmt, Transport.Binary, 0x7FFFFFFF, String.make 4096 'z');
      (F.P4, Transport.Binary, 42, "{\"op\":\"poll_digests\"}");
    ];
  (* a JSON-codec frame is byte-identical to the pre-codec protocol:
     byte 5 carries only the plane nibble *)
  let s = F.encode ~plane:F.P4 ~codec:Transport.Json ~req_id:3 "x" in
  Alcotest.(check int) "json frame leaves codec nibble zero" 0
    (Char.code s.[5] lsr 4)

let reason_of = function Ok _ -> "ok" | Error r -> Transport.reason_label r

let test_frame_rejects_corruption () =
  let good = F.encode ~plane:F.Mgmt ~codec:Transport.Binary ~req_id:7 "payload" in
  (* truncation at every prefix length: always Truncated, never a
     wrong parse *)
  for k = 0 to String.length good - 1 do
    Alcotest.(check string)
      (Printf.sprintf "truncated at %d" k)
      "truncated"
      (reason_of (F.decode (String.sub good 0 k)))
  done;
  (* corrupt magic *)
  let bad_magic = "XRPA" ^ String.sub good 4 (String.length good - 4) in
  Alcotest.(check string) "bad magic" "bad-magic" (reason_of (F.decode bad_magic));
  (* wrong protocol version *)
  let bad_version = Bytes.of_string good in
  Bytes.set bad_version 4 (Char.chr 99);
  Alcotest.(check string) "version mismatch" "version-mismatch"
    (reason_of (F.decode (Bytes.to_string bad_version)));
  (* bad plane tag (low nibble of byte 5) *)
  let bad_plane = Bytes.of_string good in
  Bytes.set bad_plane 5 (Char.chr 0x1E);
  Alcotest.(check string) "bad plane" "protocol"
    (reason_of (F.decode (Bytes.to_string bad_plane)));
  (* bad codec tag (high nibble of byte 5) *)
  let bad_codec = Bytes.of_string good in
  Bytes.set bad_codec 5 (Char.chr 0x21);
  Alcotest.(check string) "bad codec" "protocol"
    (reason_of (F.decode (Bytes.to_string bad_codec)));
  (* over-declared length *)
  let oversize = Bytes.of_string good in
  Bytes.set_int32_be oversize 10 0x7F000000l;
  Alcotest.(check string) "oversize" "oversize"
    (reason_of (F.decode (Bytes.to_string oversize)))

let test_error_labels_stable () =
  (* the metric-label contract: finite, stable strings *)
  List.iter
    (fun (err, label) ->
      Alcotest.(check string) label label (Transport.error_to_string err))
    [
      (Transport.Closed Transport.Refused, "closed/refused");
      (Transport.Closed Transport.Eof, "closed/eof");
      (Transport.Closed Transport.Truncated, "closed/truncated");
      (Transport.Closed Transport.Bad_magic, "closed/bad-magic");
      (Transport.Closed (Transport.Version_mismatch (1, 9)),
       "closed/version-mismatch");
      (Transport.Closed (Transport.Oversize 99), "closed/oversize");
      (Transport.Transient (Transport.Codec "boom"), "transient/codec");
      (Transport.Closed (Transport.Io "x"), "closed/io");
      (Transport.Transient (Transport.Injected "drop"),
       "transient/injected-drop");
      (Transport.Closed Transport.Down, "closed/down");
      (Transport.Closed (Transport.Protocol "p"), "closed/protocol");
    ];
  (* messages keep the payload the labels drop *)
  Alcotest.(check bool) "message carries versions" true
    (let m =
       Transport.error_message (Transport.Closed (Transport.Version_mismatch (1, 9)))
     in
     String.length m > String.length "closed/version-mismatch")

(* ---------------- live socket stack (gated) ---------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "nerpa-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let add_port db ~name ~port ~mode ~tag ~trunks =
  ignore
    (Ovsdb.Db.insert_exn db "Port"
       [
         ("name", Ovsdb.Datum.string name);
         ("port", Ovsdb.Datum.integer (Int64.of_int port));
         ("mode", Ovsdb.Datum.string mode);
         ("tag", Ovsdb.Datum.integer (Int64.of_int tag));
         ("trunks",
          Ovsdb.Datum.set
            (List.map (fun v -> Ovsdb.Atom.Integer (Int64.of_int v)) trunks));
       ])

let ports =
  [ ("p1", 1, "access", 10, []); ("p2", 2, "access", 10, []);
    ("p3", 3, "access", 20, []); ("p4", 4, "trunk", 0, [ 10; 20 ]) ]

let add_acl db =
  ignore
    (Ovsdb.Db.insert_exn db "Acl"
       [
         ("priority", Ovsdb.Datum.integer 10L);
         ("src", Ovsdb.Datum.integer 0xAL);
         ("src_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("dst", Ovsdb.Datum.integer 0xBL);
         ("dst_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("allow", Ovsdb.Datum.boolean false);
       ])

let host_a = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0a"

let learning_frame src =
  P4.Stdhdrs.ethernet_frame
    ~dst:(P4.Stdhdrs.mac_of_string "ff:ff:ff:ff:ff:ff")
    ~src ~ethertype:0x1234L ~payload:"x"

(* The in-process fault-free reference for the convergence tests:
   deploy directly, apply the same config (raw row inserts, identical
   to what the server-side tests use), dump through the same
   link-level oracle. *)
let baseline_dump ~with_acl ~with_traffic () =
  let d = Snvs.deploy () in
  List.iter
    (fun (name, port, mode, tag, trunks) ->
      add_port d.Snvs.db ~name ~port ~mode ~tag ~trunks)
    ports;
  if with_acl then add_acl d.Snvs.db;
  ignore (Nerpa.Controller.sync d.controller);
  if with_traffic then begin
    ignore (P4.Switch.process d.switch ~in_port:1 (learning_frame host_a));
    ignore (Nerpa.Controller.sync d.controller)
  end;
  ignore (Nerpa.Controller.sync d.controller);
  Nerpa.Controller.dump_switch d.controller "snvs0"

let sync_until ?(timeout_s = 30.) (c : Nerpa.Controller.t) (pred : unit -> bool)
    ~(what : string) : unit =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      (try ignore (Nerpa.Controller.sync c)
       with Nerpa.Controller.Controller_error _ -> ());
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let dump_or_empty c name =
  try Nerpa.Controller.dump_switch c name
  with Nerpa.Controller.Controller_error _ -> ""

(* serve + connect inside one process: server handler threads, client
   controller on the main thread, all planes over real sockets.  Run
   once per wire codec — the converged dump must not depend on how the
   bytes travelled. *)
let test_serve_connect_convergence ~codec () =
  let dir = fresh_dir () in
  let db = Ovsdb.Db.create Snvs.schema in
  let switch = P4.Switch.create ~name:"snvs0" Snvs.p4 in
  let server = Server.create ~db ~switches:[ ("snvs0", switch) ] ~dir () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let sconn0 = Obs.counter_value "transport.socket.connects" in
  let c = Snvs.connect ~endpoint:(Nerpa.Endpoint.sockets ~codec ~dir ()) () in
  (* config applied server-side, under the server's lock *)
  Server.with_lock server (fun () ->
      List.iter
        (fun (name, port, mode, tag, trunks) ->
          add_port db ~name ~port ~mode ~tag ~trunks)
        ports;
      add_acl db);
  let want = baseline_dump ~with_acl:true ~with_traffic:false () in
  sync_until c ~what:"socket deployment to converge" (fun () ->
      String.equal (dump_or_empty c "snvs0") want);
  Alcotest.(check bool) "socket connects counted" true
    (Obs.counter_value "transport.socket.connects" > sconn0)

(* A client speaking garbage must lose only its own connection: the
   listener and other clients keep working. *)
let test_corrupt_frame_tolerated () =
  let dir = fresh_dir () in
  let db = Ovsdb.Db.create Snvs.schema in
  let server = Server.create ~db ~dir () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let path = Nerpa.Endpoint.mgmt_socket_path ~dir in
  let raw () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  (* garbage magic: the server closes the connection *)
  let fd = raw () in
  ignore (Unix.write_substring fd "garbage-not-a-frame-at-all" 0 26);
  Alcotest.(check string) "garbage conn closed" "eof"
    (match F.read_frame fd with
    | Error r -> Transport.reason_label r
    | Ok _ -> "ok");
  Unix.close fd;
  (* oversize declared length: closed too, without reading 2 GiB *)
  let fd = raw () in
  let hdr =
    Bytes.of_string (F.encode ~plane:F.Mgmt ~codec:Transport.Json ~req_id:1 "")
  in
  Bytes.set_int32_be hdr 10 0x7F000000l;
  ignore (Unix.write fd hdr 0 (Bytes.length hdr));
  Alcotest.(check string) "oversize conn closed" "eof"
    (match F.read_frame fd with
    | Error r -> Transport.reason_label r
    | Ok _ -> "ok");
  Unix.close fd;
  (* a well-behaved client still gets answers *)
  let link = Nerpa.Links.socket_mgmt ~addr:(Transport.Unix_path path) () in
  (match Transport.send link Nerpa.Links.Poll_monitor with
  | Ok (Nerpa.Links.Batches _) -> ()
  | Ok _ -> Alcotest.fail "unexpected response"
  | Error e ->
    Alcotest.failf "server died after corrupt frames: %s"
      (Transport.error_message e));
  (* a frame claiming another protocol version: the server closes
     rather than guessing *)
  let fd = raw () in
  let hdr =
    Bytes.of_string (F.encode ~plane:F.Mgmt ~codec:Transport.Json ~req_id:1 "")
  in
  Bytes.set hdr 4 (Char.chr 9);
  ignore (Unix.write fd hdr 0 (Bytes.length hdr));
  Alcotest.(check string) "version-mismatch conn closed" "eof"
    (match F.read_frame fd with
    | Error r -> Transport.reason_label r
    | Ok _ -> "ok");
  Unix.close fd

(* ---------------- codec negotiation fallback ---------------- *)

let really_read fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Some b
    else
      match Unix.read fd b off (n - off) with
      | 0 -> None
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* A pre-codec-era management server: it validates byte 5 of the header
   as a bare plane tag (1 or 2, nothing else) and closes the connection
   on anything it does not recognise — exactly what the PR5 protocol
   did.  A binary-preferring client must fall back to JSON against it
   and still get answers. *)
let json_only_server lfd (conns : Unix.file_descr list ref) : unit =
  let rec accept_loop () =
    match Unix.accept lfd with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      conns := fd :: !conns;
      let rec serve () =
        match really_read fd F.header_len with
        | None -> ()
        | Some hdr ->
          let b5 = Char.code (Bytes.get hdr 5) in
          if
            Bytes.sub_string hdr 0 4 = "NRPA"
            && Char.code (Bytes.get hdr 4) = 1
            && (b5 = 1 || b5 = 2)
          then begin
            let req_id = Int32.to_int (Bytes.get_int32_be hdr 6) in
            let len = Int32.to_int (Bytes.get_int32_be hdr 10) in
            match really_read fd len with
            | None -> ()
            | Some payload ->
              (match
                 Nerpa.Links.decode_mgmt_request (Bytes.to_string payload)
               with
              | Ok Nerpa.Links.Poll_monitor ->
                (match
                   F.write_frame fd ~plane:F.Mgmt ~codec:Transport.Json
                     ~req_id
                     (Nerpa.Links.encode_mgmt_response
                        (Nerpa.Links.Batches []))
                 with
                | Ok () -> serve ()
                | Error _ -> ())
              | _ -> ())
          end
      in
      serve ();
      (* signal end-of-stream but leave the fd open: the test's finally
         owns closing (avoids shutting down a reused descriptor) *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      accept_loop ()
  in
  accept_loop ()

let test_codec_negotiation_fallback () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "old.sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 4;
  let conns = ref [] in
  let th = Thread.create (fun () -> json_only_server lfd conns) () in
  Fun.protect
    ~finally:(fun () ->
      (* wake the thread wherever it blocks: the listener for accept,
         every accepted connection for its frame read *)
      (try Unix.shutdown lfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      List.iter
        (fun fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        !conns;
      Thread.join th;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !conns;
      try Unix.close lfd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* client prefers Binary; the old peer closes on the unknown nibble;
     the client must retry the same request in JSON, transparently *)
  let link = Nerpa.Links.socket_mgmt ~codec:Transport.Binary ~addr:(Transport.Unix_path path) () in
  (match Transport.send link Nerpa.Links.Poll_monitor with
  | Ok (Nerpa.Links.Batches []) -> ()
  | Ok _ -> Alcotest.fail "unexpected response from json-only server"
  | Error e ->
    Alcotest.failf "negotiation fallback failed: %s"
      (Transport.error_message e));
  (* the downgrade is sticky: later requests keep working *)
  match Transport.send link Nerpa.Links.Poll_monitor with
  | Ok (Nerpa.Links.Batches []) -> ()
  | Ok _ -> Alcotest.fail "unexpected response after downgrade"
  | Error e ->
    Alcotest.failf "post-downgrade request failed: %s"
      (Transport.error_message e)

(* ---------------- request pipelining over a socket ---------------- *)

(* [send_many] over a live socket: more requests than the in-flight
   window (32), with Poll/Resync interleaved so a response matched to
   the wrong request is detectable by its constructor. *)
let test_socket_pipelining ~codec () =
  let dir = fresh_dir () in
  let db = Ovsdb.Db.create Snvs.schema in
  let server = Server.create ~db ~dir () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let path = Nerpa.Endpoint.mgmt_socket_path ~dir in
  let link = Nerpa.Links.socket_mgmt ~codec ~addr:(Transport.Unix_path path) () in
  let n = 80 in
  let reqs =
    List.init n (fun i ->
        if i mod 3 = 0 then Nerpa.Links.Resync else Nerpa.Links.Poll_monitor)
  in
  let results = Transport.send_many link reqs in
  Alcotest.(check int) "one result per request" n (List.length results);
  List.iteri
    (fun i r ->
      match (i mod 3 = 0, r) with
      | true, Ok (Nerpa.Links.Snapshot _) | false, Ok (Nerpa.Links.Batches _)
        ->
        ()
      | _, Error e ->
        Alcotest.failf "pipelined request %d failed: %s" i
          (Transport.error_message e)
      | _, Ok _ ->
        Alcotest.failf "response %d matched to the wrong request" i)
    results

(* ---------------- server resource tracking ---------------- *)

(* The stop/conns/threads bug sweep: handler threads must self-reap,
   [stop] must clear its connection list, and a second [stop] must be
   a harmless no-op (the old code shut down stale — possibly reused —
   fds again). *)
let test_server_stop_reaps () =
  let dir = fresh_dir () in
  let db = Ovsdb.Db.create Snvs.schema in
  let server = Server.create ~db ~dir () in
  Server.start server;
  let base_threads = Server.live_threads server in
  let path = Nerpa.Endpoint.mgmt_socket_path ~dir in
  let links =
    List.init 3 (fun _ -> Nerpa.Links.socket_mgmt ~addr:(Transport.Unix_path path) ())
  in
  List.iter
    (fun l ->
      match Transport.send l Nerpa.Links.Poll_monitor with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "poll failed: %s" (Transport.error_message e))
    links;
  Alcotest.(check int) "three live connections" 3 (Server.live_conns server);
  Alcotest.(check int) "one handler thread per connection"
    (base_threads + 3) (Server.live_threads server);
  Server.stop server;
  Alcotest.(check int) "stop leaves no connections" 0
    (Server.live_conns server);
  Alcotest.(check int) "stop leaves no threads" 0
    (Server.live_threads server);
  (* double stop: nothing tracked, nothing to break *)
  Server.stop server;
  Alcotest.(check int) "double stop still clean" 0 (Server.live_conns server)

(* ---------------- the two-process acceptance test ---------------- *)

(* Child-process body: host a fresh db + switch under [dir], apply
   [ports] (and optionally the acl), inject one learning frame from
   host A on port 1 once a controller admits it, then sleep until
   killed.  Runs in a re-exec'd copy of the test binary (see the
   [NERPA_SERVER_CHILD] hook below) — [Unix.fork] is off-limits once
   earlier suites have spawned pool domains. *)
let child_main ~dir ~with_acl ~with_traffic : unit =
  let db = Ovsdb.Db.create Snvs.schema in
  let switch = P4.Switch.create ~name:"snvs0" Snvs.p4 in
  let server = Server.create ~db ~switches:[ ("snvs0", switch) ] ~dir () in
  Server.start server;
  Server.with_lock server (fun () ->
      List.iter
        (fun (name, port, mode, tag, trunks) ->
          add_port db ~name ~port ~mode ~tag ~trunks)
        ports;
      if with_acl then add_acl db);
  if with_traffic then begin
    let info = P4.P4info.of_program Snvs.p4 in
    let in_vlan =
      (List.find
         (fun ti -> ti.P4.P4info.table_name = "in_vlan")
         info.P4.P4info.tables)
        .P4.P4info.table_id
    in
    let admitted () =
      Server.with_lock server (fun () ->
          let srv = P4runtime.attach switch in
          List.exists
            (fun e ->
              match e.P4runtime.matches with
              | P4runtime.FmExact p :: _ -> p = 1L
              | _ -> false)
            (P4runtime.read_table srv ~table_id:in_vlan))
    in
    let deadline = Unix.gettimeofday () +. 30. in
    while (not (admitted ())) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.02
    done;
    Server.with_lock server (fun () ->
        ignore (P4.Switch.process switch ~in_port:1 (learning_frame host_a)))
  end;
  while true do
    Unix.sleep 3600
  done

(* When the test binary starts with NERPA_SERVER_CHILD="dir|acl|traffic"
   in its environment it becomes the server process instead of running
   the suites; this module initializer runs before Alcotest's main. *)
let () =
  match Sys.getenv_opt "NERPA_SERVER_CHILD" with
  | None -> ()
  | Some spec ->
    (match String.split_on_char '|' spec with
    | [ dir; acl; traffic ] ->
      (try
         child_main ~dir ~with_acl:(bool_of_string acl)
           ~with_traffic:(bool_of_string traffic)
       with _ -> exit 1);
      exit 0
    | _ -> exit 2)

let spawn_server ~dir ~with_acl ~with_traffic () : int =
  let spec = Printf.sprintf "%s|%b|%b" dir with_acl with_traffic in
  let env =
    Array.append (Unix.environment ()) [| "NERPA_SERVER_CHILD=" ^ spec |]
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

(* The acceptance criteria end to end: a controller in this process
   drives OVSDB + a switch served from a child process, the child is
   SIGKILLed mid-run and replaced (fresh db, fresh switch, same
   config), and the final switch state must be byte-identical to the
   in-process fault-free run — config via monitor resync, learned MACs
   via digests and reconnect reconciliation. *)
let test_two_process_kill_restart () =
  let dir = fresh_dir () in
  let baseline = baseline_dump ~with_acl:true ~with_traffic:true () in
  let pid1 = spawn_server ~dir ~with_acl:false ~with_traffic:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid1) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let c = Snvs.connect ~endpoint:(Nerpa.Endpoint.sockets ~dir ()) () in
  (* phase 1: converge against the first server, consuming the digest
     the child injects once port 1 is admitted *)
  sync_until c ~what:"first server's config and digest" (fun () ->
      Dl.Engine.relation_rows (Nerpa.Controller.engine c) "LearnedMac" <> []);
  (* hard kill mid-run *)
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  (* a couple of syncs observe the outage (failed polls, Closed links) *)
  (try ignore (Nerpa.Controller.sync c)
   with Nerpa.Controller.Controller_error _ -> ());
  (* restart: fresh db (new row uuids!), empty switch, full config *)
  let pid2 = spawn_server ~dir ~with_acl:true ~with_traffic:false () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ())
  @@ fun () ->
  sync_until c ~what:"post-restart convergence" (fun () ->
      String.equal (dump_or_empty c "snvs0") baseline);
  (* the engine kept every management row across the restart *)
  Alcotest.(check int) "all ports present" (List.length ports)
    (List.length
       (Dl.Engine.relation_rows (Nerpa.Controller.engine c) "Port"));
  Alcotest.(check int) "acl present" 1
    (List.length (Dl.Engine.relation_rows (Nerpa.Controller.engine c) "Acl"))

let tests =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame rejects corruption" `Quick
      test_frame_rejects_corruption;
    Alcotest.test_case "error labels stable" `Quick test_error_labels_stable;
    gated "serve/connect convergence (sockets, binary)" `Slow
      (test_serve_connect_convergence ~codec:Transport.Binary);
    gated "serve/connect convergence (sockets, json)" `Slow
      (test_serve_connect_convergence ~codec:Transport.Json);
    gated "corrupt frame tolerated by server" `Slow
      test_corrupt_frame_tolerated;
    gated "codec negotiation falls back to json" `Slow
      test_codec_negotiation_fallback;
    gated "socket pipelining (binary)" `Slow
      (test_socket_pipelining ~codec:Transport.Binary);
    gated "socket pipelining (json)" `Slow
      (test_socket_pipelining ~codec:Transport.Json);
    gated "stop reaps connections and threads" `Slow test_server_stop_reaps;
    gated "two-process kill/restart differential" `Slow
      test_two_process_kill_restart;
  ]
