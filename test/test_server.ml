(* Tests for the client/server split: the socket frame codec (pure —
   always run) and the live Unix-socket stack (gated behind
   NERPA_SOCKET_TESTS=1 for sandboxed CI): serve/connect convergence in
   one process, frame corruption tolerated by the server, and the
   two-process kill/restart differential of the acceptance criteria. *)

module F = Transport.Frame

let socket_tests_enabled =
  match Sys.getenv_opt "NERPA_SOCKET_TESTS" with
  | Some "1" | Some "true" | Some "yes" -> true
  | _ -> false

let gated name speed f =
  Alcotest.test_case name speed (fun () ->
      if socket_tests_enabled then f ()
      else Alcotest.skip ())

(* ---------------- frame codec (pure) ---------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun (plane, req_id, payload) ->
      let s = F.encode ~plane ~req_id payload in
      Alcotest.(check int) "framed length" (F.header_len + String.length payload)
        (String.length s);
      match F.decode s with
      | Ok (p, id, body) ->
        Alcotest.(check bool) "plane round-trips" true (p = plane);
        Alcotest.(check int) "req_id round-trips" req_id id;
        Alcotest.(check string) "payload round-trips" payload body
      | Error _ -> Alcotest.fail "well-formed frame rejected")
    [
      (F.Mgmt, 0, "");
      (F.P4, 1, "x");
      (F.Mgmt, 0x7FFFFFFF, String.make 4096 'z');
      (F.P4, 42, "{\"op\":\"poll_digests\"}");
    ]

let reason_of = function Ok _ -> "ok" | Error r -> Transport.reason_label r

let test_frame_rejects_corruption () =
  let good = F.encode ~plane:F.Mgmt ~req_id:7 "payload" in
  (* truncation at every prefix length: always Truncated, never a
     wrong parse *)
  for k = 0 to String.length good - 1 do
    Alcotest.(check string)
      (Printf.sprintf "truncated at %d" k)
      "truncated"
      (reason_of (F.decode (String.sub good 0 k)))
  done;
  (* corrupt magic *)
  let bad_magic = "XRPA" ^ String.sub good 4 (String.length good - 4) in
  Alcotest.(check string) "bad magic" "bad-magic" (reason_of (F.decode bad_magic));
  (* wrong protocol version *)
  let bad_version = Bytes.of_string good in
  Bytes.set bad_version 4 (Char.chr 99);
  Alcotest.(check string) "version mismatch" "version-mismatch"
    (reason_of (F.decode (Bytes.to_string bad_version)));
  (* bad plane tag *)
  let bad_plane = Bytes.of_string good in
  Bytes.set bad_plane 5 (Char.chr 0xEE);
  Alcotest.(check string) "bad plane" "protocol"
    (reason_of (F.decode (Bytes.to_string bad_plane)));
  (* over-declared length *)
  let oversize = Bytes.of_string good in
  Bytes.set_int32_be oversize 10 0x7F000000l;
  Alcotest.(check string) "oversize" "oversize"
    (reason_of (F.decode (Bytes.to_string oversize)))

let test_error_labels_stable () =
  (* the metric-label contract: finite, stable strings *)
  List.iter
    (fun (err, label) ->
      Alcotest.(check string) label label (Transport.error_to_string err))
    [
      (Transport.Closed Transport.Refused, "closed/refused");
      (Transport.Closed Transport.Eof, "closed/eof");
      (Transport.Closed Transport.Truncated, "closed/truncated");
      (Transport.Closed Transport.Bad_magic, "closed/bad-magic");
      (Transport.Closed (Transport.Version_mismatch (1, 9)),
       "closed/version-mismatch");
      (Transport.Closed (Transport.Oversize 99), "closed/oversize");
      (Transport.Transient (Transport.Codec "boom"), "transient/codec");
      (Transport.Closed (Transport.Io "x"), "closed/io");
      (Transport.Transient (Transport.Injected "drop"),
       "transient/injected-drop");
      (Transport.Closed Transport.Down, "closed/down");
      (Transport.Closed (Transport.Protocol "p"), "closed/protocol");
    ];
  (* messages keep the payload the labels drop *)
  Alcotest.(check bool) "message carries versions" true
    (let m =
       Transport.error_message (Transport.Closed (Transport.Version_mismatch (1, 9)))
     in
     String.length m > String.length "closed/version-mismatch")

(* ---------------- live socket stack (gated) ---------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "nerpa-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let add_port db ~name ~port ~mode ~tag ~trunks =
  ignore
    (Ovsdb.Db.insert_exn db "Port"
       [
         ("name", Ovsdb.Datum.string name);
         ("port", Ovsdb.Datum.integer (Int64.of_int port));
         ("mode", Ovsdb.Datum.string mode);
         ("tag", Ovsdb.Datum.integer (Int64.of_int tag));
         ("trunks",
          Ovsdb.Datum.set
            (List.map (fun v -> Ovsdb.Atom.Integer (Int64.of_int v)) trunks));
       ])

let ports =
  [ ("p1", 1, "access", 10, []); ("p2", 2, "access", 10, []);
    ("p3", 3, "access", 20, []); ("p4", 4, "trunk", 0, [ 10; 20 ]) ]

let add_acl db =
  ignore
    (Ovsdb.Db.insert_exn db "Acl"
       [
         ("priority", Ovsdb.Datum.integer 10L);
         ("src", Ovsdb.Datum.integer 0xAL);
         ("src_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("dst", Ovsdb.Datum.integer 0xBL);
         ("dst_mask", Ovsdb.Datum.integer 0xFFFFFFFFFFFFL);
         ("allow", Ovsdb.Datum.boolean false);
       ])

let host_a = P4.Stdhdrs.mac_of_string "00:00:00:00:00:0a"

let learning_frame src =
  P4.Stdhdrs.ethernet_frame
    ~dst:(P4.Stdhdrs.mac_of_string "ff:ff:ff:ff:ff:ff")
    ~src ~ethertype:0x1234L ~payload:"x"

(* The in-process fault-free reference for the convergence tests:
   deploy directly, apply the same config (raw row inserts, identical
   to what the server-side tests use), dump through the same
   link-level oracle. *)
let baseline_dump ~with_acl ~with_traffic () =
  let d = Snvs.deploy () in
  List.iter
    (fun (name, port, mode, tag, trunks) ->
      add_port d.Snvs.db ~name ~port ~mode ~tag ~trunks)
    ports;
  if with_acl then add_acl d.Snvs.db;
  ignore (Nerpa.Controller.sync d.controller);
  if with_traffic then begin
    ignore (P4.Switch.process d.switch ~in_port:1 (learning_frame host_a));
    ignore (Nerpa.Controller.sync d.controller)
  end;
  ignore (Nerpa.Controller.sync d.controller);
  Nerpa.Controller.dump_switch d.controller "snvs0"

let sync_until ?(timeout_s = 30.) (c : Nerpa.Controller.t) (pred : unit -> bool)
    ~(what : string) : unit =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      (try ignore (Nerpa.Controller.sync c)
       with Nerpa.Controller.Controller_error _ -> ());
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let dump_or_empty c name =
  try Nerpa.Controller.dump_switch c name
  with Nerpa.Controller.Controller_error _ -> ""

(* serve + connect inside one process: server handler threads, client
   controller on the main thread, all planes over real sockets. *)
let test_serve_connect_convergence () =
  let dir = fresh_dir () in
  let db = Ovsdb.Db.create Snvs.schema in
  let switch = P4.Switch.create ~name:"snvs0" Snvs.p4 in
  let server = Server.create ~db ~switches:[ ("snvs0", switch) ] ~dir () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let sconn0 = Obs.counter_value "transport.socket.connects" in
  let c = Snvs.connect ~endpoint:(Nerpa.Endpoint.sockets ~dir) () in
  (* config applied server-side, under the server's lock *)
  Server.with_lock server (fun () ->
      List.iter
        (fun (name, port, mode, tag, trunks) ->
          add_port db ~name ~port ~mode ~tag ~trunks)
        ports;
      add_acl db);
  let want = baseline_dump ~with_acl:true ~with_traffic:false () in
  sync_until c ~what:"socket deployment to converge" (fun () ->
      String.equal (dump_or_empty c "snvs0") want);
  Alcotest.(check bool) "socket connects counted" true
    (Obs.counter_value "transport.socket.connects" > sconn0)

(* A client speaking garbage must lose only its own connection: the
   listener and other clients keep working. *)
let test_corrupt_frame_tolerated () =
  let dir = fresh_dir () in
  let db = Ovsdb.Db.create Snvs.schema in
  let server = Server.create ~db ~dir () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let path = Nerpa.Endpoint.mgmt_socket_path ~dir in
  let raw () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  (* garbage magic: the server closes the connection *)
  let fd = raw () in
  ignore (Unix.write_substring fd "garbage-not-a-frame-at-all" 0 26);
  Alcotest.(check string) "garbage conn closed" "eof"
    (match F.read_frame fd with
    | Error r -> Transport.reason_label r
    | Ok _ -> "ok");
  Unix.close fd;
  (* oversize declared length: closed too, without reading 2 GiB *)
  let fd = raw () in
  let hdr = Bytes.of_string (F.encode ~plane:F.Mgmt ~req_id:1 "") in
  Bytes.set_int32_be hdr 10 0x7F000000l;
  ignore (Unix.write fd hdr 0 (Bytes.length hdr));
  Alcotest.(check string) "oversize conn closed" "eof"
    (match F.read_frame fd with
    | Error r -> Transport.reason_label r
    | Ok _ -> "ok");
  Unix.close fd;
  (* a well-behaved client still gets answers *)
  let link = Nerpa.Links.socket_mgmt ~path in
  (match Transport.send link Nerpa.Links.Poll_monitor with
  | Ok (Nerpa.Links.Batches _) -> ()
  | Ok _ -> Alcotest.fail "unexpected response"
  | Error e ->
    Alcotest.failf "server died after corrupt frames: %s"
      (Transport.error_message e));
  (* a frame claiming another protocol version: the server closes
     rather than guessing *)
  let fd = raw () in
  let hdr = Bytes.of_string (F.encode ~plane:F.Mgmt ~req_id:1 "") in
  Bytes.set hdr 4 (Char.chr 9);
  ignore (Unix.write fd hdr 0 (Bytes.length hdr));
  Alcotest.(check string) "version-mismatch conn closed" "eof"
    (match F.read_frame fd with
    | Error r -> Transport.reason_label r
    | Ok _ -> "ok");
  Unix.close fd

(* ---------------- the two-process acceptance test ---------------- *)

(* Child-process body: host a fresh db + switch under [dir], apply
   [ports] (and optionally the acl), inject one learning frame from
   host A on port 1 once a controller admits it, then sleep until
   killed.  Runs in a re-exec'd copy of the test binary (see the
   [NERPA_SERVER_CHILD] hook below) — [Unix.fork] is off-limits once
   earlier suites have spawned pool domains. *)
let child_main ~dir ~with_acl ~with_traffic : unit =
  let db = Ovsdb.Db.create Snvs.schema in
  let switch = P4.Switch.create ~name:"snvs0" Snvs.p4 in
  let server = Server.create ~db ~switches:[ ("snvs0", switch) ] ~dir () in
  Server.start server;
  Server.with_lock server (fun () ->
      List.iter
        (fun (name, port, mode, tag, trunks) ->
          add_port db ~name ~port ~mode ~tag ~trunks)
        ports;
      if with_acl then add_acl db);
  if with_traffic then begin
    let info = P4.P4info.of_program Snvs.p4 in
    let in_vlan =
      (List.find
         (fun ti -> ti.P4.P4info.table_name = "in_vlan")
         info.P4.P4info.tables)
        .P4.P4info.table_id
    in
    let admitted () =
      Server.with_lock server (fun () ->
          let srv = P4runtime.attach switch in
          List.exists
            (fun e ->
              match e.P4runtime.matches with
              | P4runtime.FmExact p :: _ -> p = 1L
              | _ -> false)
            (P4runtime.read_table srv ~table_id:in_vlan))
    in
    let deadline = Unix.gettimeofday () +. 30. in
    while (not (admitted ())) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.02
    done;
    Server.with_lock server (fun () ->
        ignore (P4.Switch.process switch ~in_port:1 (learning_frame host_a)))
  end;
  while true do
    Unix.sleep 3600
  done

(* When the test binary starts with NERPA_SERVER_CHILD="dir|acl|traffic"
   in its environment it becomes the server process instead of running
   the suites; this module initializer runs before Alcotest's main. *)
let () =
  match Sys.getenv_opt "NERPA_SERVER_CHILD" with
  | None -> ()
  | Some spec ->
    (match String.split_on_char '|' spec with
    | [ dir; acl; traffic ] ->
      (try
         child_main ~dir ~with_acl:(bool_of_string acl)
           ~with_traffic:(bool_of_string traffic)
       with _ -> exit 1);
      exit 0
    | _ -> exit 2)

let spawn_server ~dir ~with_acl ~with_traffic () : int =
  let spec = Printf.sprintf "%s|%b|%b" dir with_acl with_traffic in
  let env =
    Array.append (Unix.environment ()) [| "NERPA_SERVER_CHILD=" ^ spec |]
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

(* The acceptance criteria end to end: a controller in this process
   drives OVSDB + a switch served from a child process, the child is
   SIGKILLed mid-run and replaced (fresh db, fresh switch, same
   config), and the final switch state must be byte-identical to the
   in-process fault-free run — config via monitor resync, learned MACs
   via digests and reconnect reconciliation. *)
let test_two_process_kill_restart () =
  let dir = fresh_dir () in
  let baseline = baseline_dump ~with_acl:true ~with_traffic:true () in
  let pid1 = spawn_server ~dir ~with_acl:false ~with_traffic:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid1) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let c = Snvs.connect ~endpoint:(Nerpa.Endpoint.sockets ~dir) () in
  (* phase 1: converge against the first server, consuming the digest
     the child injects once port 1 is admitted *)
  sync_until c ~what:"first server's config and digest" (fun () ->
      Dl.Engine.relation_rows (Nerpa.Controller.engine c) "LearnedMac" <> []);
  (* hard kill mid-run *)
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  (* a couple of syncs observe the outage (failed polls, Closed links) *)
  (try ignore (Nerpa.Controller.sync c)
   with Nerpa.Controller.Controller_error _ -> ());
  (* restart: fresh db (new row uuids!), empty switch, full config *)
  let pid2 = spawn_server ~dir ~with_acl:true ~with_traffic:false () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ())
  @@ fun () ->
  sync_until c ~what:"post-restart convergence" (fun () ->
      String.equal (dump_or_empty c "snvs0") baseline);
  (* the engine kept every management row across the restart *)
  Alcotest.(check int) "all ports present" (List.length ports)
    (List.length
       (Dl.Engine.relation_rows (Nerpa.Controller.engine c) "Port"));
  Alcotest.(check int) "acl present" 1
    (List.length (Dl.Engine.relation_rows (Nerpa.Controller.engine c) "Acl"))

let tests =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame rejects corruption" `Quick
      test_frame_rejects_corruption;
    Alcotest.test_case "error labels stable" `Quick test_error_labels_stable;
    gated "serve/connect convergence (sockets)" `Slow
      test_serve_connect_convergence;
    gated "corrupt frame tolerated by server" `Slow
      test_corrupt_frame_tolerated;
    gated "two-process kill/restart differential" `Slow
      test_two_process_kill_restart;
  ]
