(* Differential tests for the data-plane fast path (PR 7):
   - QCheck: compiled matchers vs a naive reference scan across all
     four match kinds, under interleaved insert/delete churn, and
     incremental updates vs a matcher rebuilt from scratch;
   - LPM trie edge cases (0-length, full-width, over-width and
     overlapping prefixes);
   - whole-pipeline differential: a compiled switch and an interpreter
     switch fed identical entry churn and packets must agree on every
     output copy, hit/miss counter, P4 counter and digest;
   - domain-safety of the packet and hit/miss counters under
     multi-domain process calls. *)

let mk ~matches ~prio ?(action = "x") ?(args = []) () =
  { P4.Entry.matches; priority = prio; action; args }

(* ------------------------------------------------------------------ *)
(* Matcher vs naive reference                                          *)
(* ------------------------------------------------------------------ *)

(* The reference: filter by match_value_matches, take the maximum under
   the shared total order.  Unlike test_p4_props' winner-set reference,
   rank_compare is total, so the winner is unique and the comparison
   exact. *)
let ref_find (entries : P4.Entry.t list) ~(widths : int array)
    (values : int64 array) : P4.Entry.t option =
  let matches (e : P4.Entry.t) =
    List.for_all
      (fun (i, mv) -> P4.Entry.match_value_matches ~width:widths.(i) mv values.(i))
      (List.mapi (fun i mv -> (i, mv)) e.matches)
  in
  List.fold_left
    (fun best e ->
      if not (matches e) then best
      else
        match best with
        | None -> Some e
        | Some b -> if P4.Entry.rank_compare e b > 0 then Some e else best)
    None entries

type kspec = P4.Program.match_kind * int

(* One schema per compiled representation, plus mixed/keyless shapes. *)
let schemas : (string * kspec list) list =
  let open P4.Program in
  [
    ("exact16", [ (Exact, 16) ]);
    ("exact8x48", [ (Exact, 8); (Exact, 48) ]);
    ("lpm32", [ (Lpm, 32) ]);
    ("lpm64", [ (Lpm, 64) ]);
    ("lpm8", [ (Lpm, 8) ]);
    ("ternary16", [ (Ternary, 16) ]);
    ("optional8", [ (Optional, 8) ]);
    ("lpm+ternary", [ (Lpm, 32); (Ternary, 8) ]);
    ("exact+optional", [ (Exact, 8); (Optional, 8) ]);
    ("lpm+lpm", [ (Lpm, 16); (Lpm, 16) ]);
  ]

let schema_of (ks : kspec list) : P4.Matcher.schema =
  {
    P4.Matcher.widths = Array.of_list (List.map snd ks);
    kinds = Array.of_list (List.map fst ks);
  }

let trunc w v = if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

(* Small value domains so that collisions, shadowing and overlaps are
   common. *)
let gen_value w =
  QCheck2.Gen.(
    let* v = oneof [ int_range 0 20; int_range 0 1023; return 0 ] in
    let* top = bool in
    (* exercise the MSB half of wide keys too *)
    return
      (trunc w
         (if top && w >= 16 then Int64.logor (Int64.shift_left 1L (w - 1)) (Int64.of_int v)
          else Int64.of_int v)))

let gen_mv ((kind, w) : kspec) : P4.Entry.match_value QCheck2.Gen.t =
  QCheck2.Gen.(
    match kind with
    | P4.Program.Exact ->
      let* v = gen_value w in
      return (P4.Entry.MExact v)
    | P4.Program.Lpm ->
      let* v = gen_value w in
      (* include clamping cases: 0, over-width, and everything between *)
      let* len = oneof [ int_range 0 w; return (w + 5); return 0 ] in
      return (P4.Entry.MLpm (v, len))
    | P4.Program.Ternary ->
      let* v = gen_value w in
      oneof
        [
          return (P4.Entry.MExact v) (* P4Runtime maps exact onto ternary *);
          (let* m = oneofl [ 0L; 0xffL; 0xf0L; -1L; 0x0101L ] in
           return (P4.Entry.MTernary (v, trunc w m)));
        ]
    | P4.Program.Optional ->
      let* v = gen_value w in
      oneofl [ P4.Entry.MExact v; P4.Entry.MAny ])

let gen_entry (ks : kspec list) : P4.Entry.t QCheck2.Gen.t =
  QCheck2.Gen.(
    let* matches = flatten_l (List.map gen_mv ks) in
    let* prio = int_range 0 3 in
    return (mk ~matches ~prio ()))

type op = Ins of P4.Entry.t | Del of P4.Entry.t

let gen_ops ks =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (let* e = gen_entry ks in
       let* del = frequency [ (3, return false); (1, return true) ] in
       return (if del then Del e else Ins e)))

let apply_model (model : P4.Entry.t list) = function
  | Ins e -> e :: List.filter (fun e' -> not (P4.Entry.same_match e e')) model
  | Del e -> List.filter (fun e' -> not (P4.Entry.same_match e e')) model

let probe_agrees m model ~widths values =
  let got = Option.map fst (P4.Matcher.find m values) in
  let want = ref_find model ~widths values in
  got = want

(* After every churn step the matcher must agree with the reference on
   a battery of probes, and at the end an incrementally-built matcher
   must agree with one rebuilt from scratch. *)
let prop_matcher_differential (sname, ks) =
  let widths = Array.of_list (List.map snd ks) in
  QCheck2.Test.make ~count:120
    ~name:(Printf.sprintf "matcher = reference under churn (%s)" sname)
    QCheck2.Gen.(
      pair (gen_ops ks)
        (list_size (int_range 4 12) (flatten_l (List.map (fun (_, w) -> gen_value w) ks))))
    (fun (ops, probes) ->
      let m = P4.Matcher.create (schema_of ks) in
      let model = ref [] in
      let step_ok =
        List.for_all
          (fun op ->
            (match op with
            | Ins e -> P4.Matcher.insert m e ()
            | Del e -> P4.Matcher.remove m e);
            model := apply_model !model op;
            P4.Matcher.cardinal m = List.length !model
            && List.for_all
                 (fun vs -> probe_agrees m !model ~widths (Array.of_list vs))
                 probes)
          ops
      in
      (* incremental vs rebuilt-from-scratch *)
      let fresh = P4.Matcher.create (schema_of ks) in
      List.iter (fun e -> P4.Matcher.insert fresh e ()) !model;
      step_ok
      && List.for_all
           (fun vs ->
             let vals = Array.of_list vs in
             Option.map fst (P4.Matcher.find m vals)
             = Option.map fst (P4.Matcher.find fresh vals))
           probes)

(* ------------------------------------------------------------------ *)
(* LPM trie edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let lpm32 = schema_of [ (P4.Program.Lpm, 32) ]

let find_args m v =
  match P4.Matcher.find m [| v |] with
  | Some (e, ()) -> Some e.P4.Entry.args
  | None -> None

let test_trie_edges () =
  let m = P4.Matcher.create lpm32 in
  Alcotest.(check string) "repr" "lpm-trie" (P4.Matcher.repr m);
  let route ?(prio = 0) v len port =
    P4.Matcher.insert m
      (mk ~matches:[ P4.Entry.MLpm (v, len) ] ~prio ~args:[ port ] ())
      ()
  in
  (* 0-length prefix: matches everything *)
  route 0L 0 99L;
  Alcotest.(check (option (list int64))) "default /0" (Some [ 99L ])
    (find_args m 0xdeadbeefL);
  (* overlapping prefixes: longest wins *)
  route 0x0a000000L 8 1L;
  route 0x0a010000L 16 2L;
  route 0x0a010200L 24 3L;
  Alcotest.(check (option (list int64))) "/24 wins" (Some [ 3L ])
    (find_args m 0x0a0102ffL);
  Alcotest.(check (option (list int64))) "/16 wins" (Some [ 2L ])
    (find_args m 0x0a01ffffL);
  Alcotest.(check (option (list int64))) "/8 wins" (Some [ 1L ])
    (find_args m 0x0affffffL);
  Alcotest.(check (option (list int64))) "fallback /0" (Some [ 99L ])
    (find_args m 0x0b000000L);
  (* full-width prefix beats everything *)
  route 0x0a010203L 32 4L;
  Alcotest.(check (option (list int64))) "/32 wins" (Some [ 4L ])
    (find_args m 0x0a010203L);
  (* an over-width raw length clamps to the full-width path but keeps
     its raw lpm_length for ranking: it outranks the /32 *)
  route 0x0a010203L 40 5L;
  Alcotest.(check (option (list int64))) "/40 outranks /32" (Some [ 5L ])
    (find_args m 0x0a010203L);
  (* stray low bits beyond the prefix are ignored *)
  route 0x0b0103ffL 16 6L;
  Alcotest.(check (option (list int64))) "low bits masked" (Some [ 6L ])
    (find_args m 0x0b010000L);
  (* same prefix, higher priority wins *)
  route ~prio:7 0x0a010000L 16 8L;
  Alcotest.(check (option (list int64))) "priority tie-break" (Some [ 8L ])
    (find_args m 0x0a01ffffL);
  (* deleting the deep prefixes restores the shorter ones *)
  P4.Matcher.remove m (mk ~matches:[ P4.Entry.MLpm (0x0a010203L, 40) ] ~prio:0 ());
  P4.Matcher.remove m (mk ~matches:[ P4.Entry.MLpm (0x0a010203L, 32) ] ~prio:0 ());
  P4.Matcher.remove m (mk ~matches:[ P4.Entry.MLpm (0x0a010200L, 24) ] ~prio:0 ());
  Alcotest.(check (option (list int64))) "delete restores /16 (prio 7)"
    (Some [ 8L ])
    (find_args m 0x0a010203L);
  (* 64-bit keys with the sign bit set *)
  let m64 = P4.Matcher.create (schema_of [ (P4.Program.Lpm, 64) ]) in
  P4.Matcher.insert m64
    (mk ~matches:[ P4.Entry.MLpm (Int64.min_int, 1) ] ~prio:0 ~args:[ 1L ] ())
    ();
  P4.Matcher.insert m64
    (mk ~matches:[ P4.Entry.MLpm (-1L, 64) ] ~prio:0 ~args:[ 2L ] ())
    ();
  Alcotest.(check (option (list int64))) "64-bit msb" (Some [ 1L ])
    (find_args m64 Int64.min_int);
  Alcotest.(check (option (list int64))) "64-bit full" (Some [ 2L ])
    (find_args m64 (-1L))

let test_repr_selection () =
  let sw = P4.Switch.create ~name:"r" L3router.p4 in
  Alcotest.(check string) "routes" "lpm-trie" (P4.Switch.matcher_repr sw "routes");
  Alcotest.(check string) "protocol_filter" "scan"
    (P4.Switch.matcher_repr sw "protocol_filter");
  Alcotest.(check string) "ttl_check" "scan" (P4.Switch.matcher_repr sw "ttl_check");
  let sv = P4.Switch.create ~name:"s" Snvs.p4 in
  Alcotest.(check string) "dmac" "exact" (P4.Switch.matcher_repr sv "dmac");
  Alcotest.(check string) "acl" "scan" (P4.Switch.matcher_repr sv "acl")

(* ------------------------------------------------------------------ *)
(* Whole-pipeline differential: compiled vs interpreter                *)
(* ------------------------------------------------------------------ *)

(* Run the same entry churn and the same packets through a compiled
   switch and an interpreter switch; every observable — output copies
   (port and exact bytes), per-table hits/misses, P4 counters, digests —
   must be identical. *)

let show_outs outs =
  String.concat ";"
    (List.map
       (fun (p, pkt) -> Printf.sprintf "%d:%s" p (P4.Packet.to_hex pkt))
       outs)

let same_state prog fast ref_ =
  List.for_all
    (fun (t : P4.Program.table) ->
      let a = P4.Switch.stats fast t.tname and b = P4.Switch.stats ref_ t.tname in
      a.entries = b.entries && a.hits = b.hits && a.misses = b.misses)
    prog.P4.Program.tables
  && P4.Switch.take_digests fast = P4.Switch.take_digests ref_

let prop_l3router_differential =
  let gen_route =
    QCheck2.Gen.(
      let* base = int_range 0 3 in
      let* plen = oneofl [ 0; 8; 15; 16; 24; 31; 32 ] in
      let* sub = int_range 0 255 in
      let* port = int_range 1 4 in
      let prefix =
        Int64.logor
          (Int64.shift_left (Int64.of_int (10 + base)) 24)
          (Int64.shift_left (Int64.of_int sub) 8)
      in
      return
        (mk
           ~matches:[ P4.Entry.MLpm (prefix, plen) ]
           ~prio:0 ~action:"route_to"
           ~args:[ Int64.of_int port; Int64.of_int (0x20000 + port) ]
           ()))
  in
  let gen_probe =
    QCheck2.Gen.(
      let* base = int_range 0 4 in
      let* sub = int_range 0 255 in
      let* low = oneofl [ 0; 1; 255 ] in
      let* ttl = oneofl [ 0L; 1L; 64L ] in
      let* proto = oneofl [ 6L; 17L ] in
      return
        ( Int64.logor
            (Int64.shift_left (Int64.of_int (10 + base)) 24)
            (Int64.logor (Int64.shift_left (Int64.of_int sub) 8) (Int64.of_int low)),
          ttl,
          proto ))
  in
  QCheck2.Test.make ~count:60 ~name:"pipeline differential (l3router, lpm churn)"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 30) gen_route)
        (list_size (int_range 0 8) (pair (int_range 0 29) bool))
        (list_size (int_range 1 20) gen_probe))
    (fun (routes, churn, probes) ->
      let fast = P4.Switch.create ~name:"fast" L3router.p4 in
      let ref_ = P4.Switch.create ~name:"ref" ~use_compiled:false L3router.p4 in
      let both f = f fast; f ref_ in
      List.iter (fun e -> both (fun sw -> P4.Switch.insert_entry sw "routes" e)) routes;
      (* deny UDP on half the runs via the optional filter *)
      (match routes with
      | { P4.Entry.args = a :: _; _ } :: _ when Int64.rem a 2L = 0L ->
        both (fun sw ->
            P4.Switch.insert_entry sw "protocol_filter"
              (mk ~matches:[ P4.Entry.MExact 17L ] ~prio:1 ~action:"deny" ()))
      | _ -> ());
      (* interleaved delete/re-insert churn against the same routes *)
      List.iter
        (fun (i, reinsert) ->
          match List.nth_opt routes (i mod List.length routes) with
          | None -> ()
          | Some e ->
            both (fun sw -> P4.Switch.delete_entry sw "routes" e);
            if reinsert then
              both (fun sw -> P4.Switch.insert_entry sw "routes" e))
        churn;
      List.for_all
        (fun (dst, ttl, proto) ->
          let pkt () =
            let p =
              P4.Stdhdrs.udp_packet ~eth_dst:0xaaL ~eth_src:0xbbL
                ~ip_src:0x0a000001L ~ip_dst:dst ~src_port:7L ~dst_port:53L
                ~payload:"x"
            in
            P4.Packet.set_bits p ~bit_offset:((14 * 8) + 64) ~width:8 ttl;
            P4.Packet.set_bits p ~bit_offset:((14 * 8) + 72) ~width:8 proto;
            p
          in
          let a = P4.Switch.process fast ~in_port:9 (pkt ()) in
          let b = P4.Switch.process ref_ ~in_port:9 (pkt ()) in
          show_outs a = show_outs b)
        probes
      && same_state L3router.p4 fast ref_
      && List.for_all
           (fun p ->
             P4.Switch.counter_value fast "forwarded" p
             = P4.Switch.counter_value ref_ "forwarded" p)
           [ 1L; 2L; 3L; 4L ])

(* snvs exercises the rest of the primitive set: digests, multicast
   flood, clones, header add/remove (vlan push/pop), ternary ACL. *)
let prop_snvs_differential =
  let gen_frame =
    QCheck2.Gen.(
      let* dst = int_range 1 6 in
      let* src = int_range 1 6 in
      let* port = int_range 1 4 in
      let* tagged = bool in
      let* vid = oneofl [ 10L; 20L ] in
      return (Int64.of_int dst, Int64.of_int src, port, tagged, vid))
  in
  QCheck2.Test.make ~count:40 ~name:"pipeline differential (snvs, full primitives)"
    QCheck2.Gen.(list_size (int_range 1 25) gen_frame)
    (fun frames ->
      let fast = P4.Switch.create ~name:"fast" Snvs.p4 in
      let ref_ = P4.Switch.create ~name:"ref" ~use_compiled:false Snvs.p4 in
      let both f = f fast; f ref_ in
      both (fun sw ->
          (* access ports 1-2 on vlan 10, trunks 3-4; macs 1-3 known on
             vlan 10; an ACL deny and a mirror rule *)
          List.iter
            (fun (port, vid) ->
              P4.Switch.insert_entry sw "in_vlan"
                (mk
                   ~matches:[ P4.Entry.MExact port; P4.Entry.MExact 0L ]
                   ~prio:0 ~action:"set_vlan" ~args:[ vid ] ()))
            [ (1L, 10L); (2L, 10L) ];
          List.iter
            (fun (port, vid) ->
              P4.Switch.insert_entry sw "in_vlan"
                (mk
                   ~matches:[ P4.Entry.MExact port; P4.Entry.MExact vid ]
                   ~prio:0 ~action:"keep_tag" ()))
            [ (3L, 10L); (3L, 20L); (4L, 10L) ];
          List.iter
            (fun mac ->
              P4.Switch.insert_entry sw "dmac"
                (mk
                   ~matches:[ P4.Entry.MExact 10L; P4.Entry.MExact mac ]
                   ~prio:0 ~action:"forward" ~args:[ Int64.add mac 1L ] ());
              P4.Switch.insert_entry sw "smac"
                (mk
                   ~matches:
                     [ P4.Entry.MExact 10L; P4.Entry.MExact mac;
                       P4.Entry.MExact (Int64.add mac 1L) ]
                   ~prio:0 ~action:"noop" ()))
            [ 1L; 2L; 3L ];
          P4.Switch.insert_entry sw "acl"
            (mk
               ~matches:[ P4.Entry.MTernary (5L, 7L); P4.Entry.MTernary (0L, 0L) ]
               ~prio:3 ~action:"deny" ());
          P4.Switch.insert_entry sw "mirror"
            (mk ~matches:[ P4.Entry.MExact 2L ] ~prio:0 ~action:"clone_to"
               ~args:[ 9L ] ());
          P4.Switch.insert_entry sw "out_vlan"
            (mk
               ~matches:[ P4.Entry.MExact 3L; P4.Entry.MExact 10L ]
               ~prio:0 ~action:"output_tagged" ());
          P4.Switch.set_mcast_group sw 10L [ 1L; 2L; 3L ];
          P4.Switch.set_mcast_group sw 20L [ 3L; 4L ]);
      List.for_all
        (fun (dst, src, port, tagged, vid) ->
          let pkt () =
            if tagged then
              P4.Stdhdrs.vlan_frame ~dst ~src ~vid ~ethertype:0x0800L
                ~payload:"pp"
            else P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x0800L ~payload:"pp"
          in
          let a = P4.Switch.process fast ~in_port:port (pkt ()) in
          let b = P4.Switch.process ref_ ~in_port:port (pkt ()) in
          show_outs a = show_outs b)
        frames
      && same_state Snvs.p4 fast ref_)

(* ------------------------------------------------------------------ *)
(* Domain-safety of the counters                                       *)
(* ------------------------------------------------------------------ *)

let test_counters_domain_safe () =
  let sw = P4.Switch.create ~name:"mc" L3router.p4 in
  P4.Switch.insert_entry sw "routes"
    (mk
       ~matches:[ P4.Entry.MLpm (0x0a000000L, 8) ]
       ~prio:0 ~action:"route_to" ~args:[ 1L; 0xeeL ] ());
  let per_domain = 500 and domains = 4 in
  let pkt =
    P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:3L
      ~ip_dst:0x0a000001L ~src_port:1L ~dst_port:2L ~payload:""
  in
  let run () =
    for _ = 1 to per_domain do
      ignore (P4.Switch.process sw ~in_port:9 pkt)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn run) in
  List.iter Domain.join ds;
  let total = domains * per_domain in
  Alcotest.(check int) "packets_in" total (Atomic.get sw.P4.Switch.packets_in);
  Alcotest.(check int) "packets_out" total (Atomic.get sw.P4.Switch.packets_out);
  let s = P4.Switch.stats sw "routes" in
  Alcotest.(check int) "route hits" total s.hits;
  Alcotest.(check int) "filter misses" total
    (P4.Switch.stats sw "protocol_filter").misses

let tests =
  [
    Alcotest.test_case "lpm trie edge cases" `Quick test_trie_edges;
    Alcotest.test_case "matcher representation selection" `Quick
      test_repr_selection;
    Alcotest.test_case "counters domain-safe under parallel process" `Quick
      test_counters_domain_safe;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      (List.map prop_matcher_differential schemas
      @ [ prop_l3router_differential; prop_snvs_differential ])
