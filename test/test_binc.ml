(* Property tests for the binary wire codec ({!Ovsdb.Binc} and the
   binary forms layered on it): arbitrary database updates and
   P4Runtime messages round-trip exactly, and corrupt input — every
   truncation, random bit flips — yields [Error], never an exception.
   A differential leg checks the JSON and binary codecs agree on the
   decoded value. *)

module G = QCheck2.Gen
module W = P4runtime.Wire

(* ---------------- generators: database values ---------------- *)

let gen_atom : Ovsdb.Atom.t G.t =
  G.oneof
    [
      G.map (fun i -> Ovsdb.Atom.Integer (Int64.of_int i)) G.int;
      (* floats via of_int: exact equality after the bits round-trip *)
      G.map (fun i -> Ovsdb.Atom.Real (float_of_int i)) (G.int_range (-1000) 1000);
      G.map (fun b -> Ovsdb.Atom.Boolean b) G.bool;
      G.map (fun s -> Ovsdb.Atom.String s) (G.string_size (G.int_range 0 12));
      G.map (fun () -> Ovsdb.Atom.Uuid (Ovsdb.Uuid.fresh ())) G.unit;
      G.return (Ovsdb.Atom.Uuid Ovsdb.Uuid.nil);
    ]

(* Built through [Datum.set]/[Datum.map] so the generated value is
   already canonical — the decoder re-canonicalises, and round-trip
   equality must hold on canonical forms. *)
let gen_datum : Ovsdb.Datum.t G.t =
  G.oneof
    [
      G.map Ovsdb.Datum.set (G.list_size (G.int_range 0 4) gen_atom);
      G.map Ovsdb.Datum.map
        (G.list_size (G.int_range 0 4) (G.pair gen_atom gen_atom));
    ]

let gen_row : Ovsdb.Db.row G.t =
  G.list_size (G.int_range 0 4)
    (G.pair (G.string_size ~gen:(G.char_range 'a' 'z') (G.int_range 1 8))
       gen_datum)

let gen_row_update : Ovsdb.Db.row_update G.t =
  G.map2
    (fun before after -> { Ovsdb.Db.before; after })
    (G.option gen_row) (G.option gen_row)

let gen_table_updates : Ovsdb.Db.table_updates G.t =
  G.list_size (G.int_range 0 3)
    (G.pair
       (G.string_size ~gen:(G.char_range 'A' 'Z') (G.int_range 1 8))
       (G.list_size (G.int_range 0 3)
          (G.pair
             (G.map (fun () -> Ovsdb.Uuid.fresh ()) G.unit)
             gen_row_update)))

(* ---------------- generators: p4runtime messages ---------------- *)

let gen_i64 = G.map Int64.of_int G.int

let gen_match : P4runtime.field_match G.t =
  G.oneof
    [
      G.map (fun v -> P4runtime.FmExact v) gen_i64;
      G.map2 (fun v l -> P4runtime.FmLpm (v, l)) gen_i64 (G.int_range 0 64);
      G.map2 (fun v m -> P4runtime.FmTernary (v, m)) gen_i64 gen_i64;
      G.map (fun o -> P4runtime.FmOptional o) (G.option gen_i64);
    ]

let gen_entry : P4runtime.table_entry G.t =
  G.map
    (fun (table_id, matches, priority, (action_id, action_args)) ->
      { P4runtime.table_id; matches; priority; action_id; action_args })
    (G.quad G.nat
       (G.list_size (G.int_range 0 4) gen_match)
       G.nat
       (G.pair G.nat (G.list_size (G.int_range 0 4) gen_i64)))

let gen_update : P4runtime.update G.t =
  G.map2
    (fun utype entity -> { P4runtime.utype; entity })
    (G.oneofl [ P4runtime.Insert; P4runtime.Modify; P4runtime.Delete ])
    (G.oneof
       [
         G.map (fun e -> P4runtime.TableEntry e) gen_entry;
         G.map2
           (fun group_id replicas ->
             P4runtime.MulticastGroupEntry { P4runtime.group_id; replicas })
           gen_i64
           (G.list_size (G.int_range 0 4) gen_i64);
       ])

let gen_request : W.request G.t =
  G.oneof
    [
      G.map (fun us -> W.Write us) (G.list_size (G.int_range 0 4) gen_update);
      G.map (fun i -> W.Read_table i) G.nat;
      G.return W.Read_groups;
      G.return W.Poll_digests;
      G.map (fun i -> W.Ack i) G.nat;
    ]

let gen_response : W.response G.t =
  G.oneof
    [
      G.return (W.Write_reply (Ok ()));
      G.map (fun m -> W.Write_reply (Error m)) (G.string_size (G.int_range 0 16));
      G.map (fun es -> W.Table es) (G.list_size (G.int_range 0 4) gen_entry);
      G.map (fun gs -> W.Groups gs)
        (G.list_size (G.int_range 0 3)
           (G.pair gen_i64 (G.list_size (G.int_range 0 3) gen_i64)));
      G.map (fun dls -> W.Digests dls)
        (G.list_size (G.int_range 0 3)
           (G.map
              (fun (digest_id, list_id, entries) ->
                { P4runtime.digest_id; list_id; entries })
              (G.triple G.nat G.nat
                 (G.list_size (G.int_range 0 3)
                    (G.list_size (G.int_range 0 3) gen_i64)))));
      G.return W.Acked;
      G.map (fun m -> W.Error_reply m) (G.string_size (G.int_range 0 16));
    ]

(* ---------------- round-trip properties ---------------- *)

let prop_updates_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"binc table_updates round-trip"
    gen_table_updates (fun tu ->
      Ovsdb.Rpc.updates_of_binary (Ovsdb.Rpc.updates_to_binary tu) = Ok tu)

let prop_p4_request_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"binc p4 request round-trip" gen_request
    (fun req -> W.decode_request_bin (W.encode_request_bin req) = Ok req)

let prop_p4_response_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"binc p4 response round-trip"
    gen_response (fun resp ->
      W.decode_response_bin (W.encode_response_bin resp) = Ok resp)

(* The two codecs must agree on what a message means: encode through
   each, decode through each, land on the same value. *)
let prop_codec_differential =
  QCheck2.Test.make ~count:200 ~name:"json and binary codecs agree"
    gen_response (fun resp ->
      W.decode_response (W.encode_response resp) = Ok resp
      && W.decode_response_bin (W.encode_response_bin resp) = Ok resp)

(* ---------------- corruption safety ---------------- *)

(* Every strict prefix of a valid encoding must decode to [Error] (the
   decoders demand full, exact consumption), and no prefix may raise. *)
let prop_truncation_safe =
  QCheck2.Test.make ~count:100 ~name:"binc truncation yields Error"
    gen_table_updates (fun tu ->
      let s = Ovsdb.Rpc.updates_to_binary tu in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        match Ovsdb.Rpc.updates_of_binary (String.sub s 0 k) with
        | Error _ -> ()
        | Ok _ -> ok := false
        | exception _ -> ok := false
      done;
      !ok)

(* A flipped bit may still decode (e.g. inside a string's bytes), but
   it must never raise — and the p4 decoders hold the same contract. *)
let prop_bitflip_safe =
  QCheck2.Test.make ~count:200 ~name:"binc bit flips never raise"
    (G.triple gen_response G.nat G.(int_range 0 7))
    (fun (resp, pos, bit) ->
      let s = W.encode_response_bin resp in
      if String.length s = 0 then true
      else begin
        let b = Bytes.of_string s in
        let i = pos mod Bytes.length b in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        match W.decode_response_bin (Bytes.to_string b) with
        | Ok _ | Error _ -> true
        | exception _ -> false
      end)

(* ---------------- deterministic spot checks ---------------- *)

let test_mgmt_response_codecs () =
  let tu =
    [
      ( "Port",
        [
          ( Ovsdb.Uuid.fresh (),
            {
              Ovsdb.Db.before = None;
              after =
                Some
                  [
                    ("name", Ovsdb.Datum.string "p1");
                    ("port", Ovsdb.Datum.integer 1L);
                    ( "trunks",
                      Ovsdb.Datum.set
                        [ Ovsdb.Atom.Integer 10L; Ovsdb.Atom.Integer 20L ] );
                  ];
            } );
        ] );
    ]
  in
  List.iter
    (fun resp ->
      (match
         Nerpa.Links.decode_mgmt_response_bin
           (Nerpa.Links.encode_mgmt_response_bin resp)
       with
      | Ok got ->
        Alcotest.(check bool) "binary mgmt response round-trips" true
          (got = resp)
      | Error e -> Alcotest.failf "binary mgmt decode failed: %s" e);
      match
        Nerpa.Links.decode_mgmt_response (Nerpa.Links.encode_mgmt_response resp)
      with
      | Ok got ->
        Alcotest.(check bool) "json mgmt response round-trips" true
          (got = resp)
      | Error e -> Alcotest.failf "json mgmt decode failed: %s" e)
    [
      Nerpa.Links.Batches [];
      Nerpa.Links.Batches [ tu; [] ];
      Nerpa.Links.Snapshot tu;
    ];
  (* requests too, both codecs *)
  List.iter
    (fun req ->
      Alcotest.(check bool) "binary mgmt request round-trips" true
        (Nerpa.Links.decode_mgmt_request_bin
           (Nerpa.Links.encode_mgmt_request_bin req)
        = Ok req);
      Alcotest.(check bool) "json mgmt request round-trips" true
        (Nerpa.Links.decode_mgmt_request (Nerpa.Links.encode_mgmt_request req)
        = Ok req))
    [ Nerpa.Links.Poll_monitor; Nerpa.Links.Resync ]

let test_binary_smaller_than_json () =
  (* the point of the exercise: the hot responses shrink *)
  let entries =
    List.init 32 (fun i ->
        {
          P4runtime.table_id = 3;
          matches = [ P4runtime.FmExact (Int64.of_int i) ];
          priority = 0;
          action_id = 2;
          action_args = [ Int64.of_int (i * 7) ];
        })
  in
  let resp = W.Table entries in
  Alcotest.(check bool) "binary beats json on a table read" true
    (String.length (W.encode_response_bin resp)
    < String.length (W.encode_response resp))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_updates_roundtrip;
      prop_p4_request_roundtrip;
      prop_p4_response_roundtrip;
      prop_codec_differential;
      prop_truncation_safe;
      prop_bitflip_safe;
    ]
  @ [
      Alcotest.test_case "mgmt codecs round-trip (json + binary)" `Quick
        test_mgmt_response_codecs;
      Alcotest.test_case "binary encoding is smaller" `Quick
        test_binary_smaller_than_json;
    ]
