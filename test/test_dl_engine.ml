(* Unit and oracle tests for the incremental engine.

   Most tests follow the same pattern: run a sequence of transactions
   through the incremental engine and compare the resulting relation
   contents with the naive from-scratch evaluator fed with the final
   input database. *)

open Dl

let parse = Parser.parse_program_exn

let rows_testable =
  Alcotest.testable
    (fun fmt rows ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
           Row.pp)
        rows)
    (List.equal Row.equal)

let sorted rows = List.sort Row.compare rows

(** Compare the engine's view of every relation with the naive oracle
    run over [inputs]. *)
let check_against_oracle ?(msg = "oracle") (eng : Engine.t) program inputs =
  let oracle = Naive.run program inputs in
  List.iter
    (fun (d : Ast.rel_decl) ->
      let expected = sorted (Row.Set.elements (Naive.get oracle d.rname)) in
      let actual = sorted (Engine.relation_rows eng d.rname) in
      Alcotest.check rows_testable
        (Printf.sprintf "%s: relation %s" msg d.rname)
        expected actual)
    program.Ast.decls

let ints l = Row.of_list (List.map Value.of_int l)

(* ------------------------------------------------------------------ *)

let reach_src =
  {|
  input relation Edge(a: int, b: int)
  input relation GivenLabel(n: int, l: string)
  output relation Label(n: int, l: string)
  Label(n, l) :- GivenLabel(n, l).
  Label(n2, l) :- Label(n1, l), Edge(n1, n2).
  |}

let test_label_basic () =
  let program = parse reach_src in
  let eng = Engine.create program in
  let lbl n = Row.intern [| Value.of_int n; Value.of_string "red" |] in
  let txn = Engine.transaction eng in
  Engine.insert txn "GivenLabel" (lbl 1);
  Engine.insert txn "Edge" (ints [ 1; 2 ]);
  Engine.insert txn "Edge" (ints [ 2; 3 ]);
  let deltas = Engine.commit txn in
  let label_delta = List.assoc "Label" deltas in
  Alcotest.(check int) "three labels derived" 3 (Zset.cardinal label_delta);
  Alcotest.(check int) "label cardinality" 3 (Engine.relation_cardinal eng "Label");
  check_against_oracle eng program
    [ ("GivenLabel", [ lbl 1 ]); ("Edge", [ ints [ 1; 2 ]; ints [ 2; 3 ] ]) ]

let test_label_incremental_delete () =
  let program = parse reach_src in
  let eng = Engine.create program in
  let lbl n = Row.intern [| Value.of_int n; Value.of_string "red" |] in
  ignore
    (Engine.apply eng
       [
         ("GivenLabel", lbl 1, true);
         ("Edge", ints [ 1; 2 ], true);
         ("Edge", ints [ 2; 3 ], true);
         ("Edge", ints [ 3; 4 ], true);
       ]);
  (* Cut the chain: 3 and 4 lose their label. *)
  let deltas = Engine.apply eng [ ("Edge", ints [ 2; 3 ], false) ] in
  let label_delta = List.assoc "Label" deltas in
  Alcotest.(check int) "two labels retracted" 2 (Zset.cardinal label_delta);
  Zset.iter
    (fun _ w -> Alcotest.(check int) "all deletions" (-1) w)
    label_delta;
  check_against_oracle eng program
    [
      ("GivenLabel", [ lbl 1 ]);
      ("Edge", [ ints [ 1; 2 ]; ints [ 3; 4 ] ]);
    ]

let test_label_cycle_deletion () =
  (* A cycle keeps facts alive only while externally supported: the
     DRed re-derivation step must not resurrect a dead cycle. *)
  let program = parse reach_src in
  let eng = Engine.create program in
  let lbl n = Row.intern [| Value.of_int n; Value.of_string "c" |] in
  ignore
    (Engine.apply eng
       [
         ("GivenLabel", lbl 1, true);
         ("Edge", ints [ 1; 2 ], true);
         ("Edge", ints [ 2; 3 ], true);
         ("Edge", ints [ 3; 2 ], true); (* cycle 2 <-> 3 *)
       ]);
  Alcotest.(check int) "three labelled" 3 (Engine.relation_cardinal eng "Label");
  ignore (Engine.apply eng [ ("Edge", ints [ 1; 2 ], false) ]);
  (* Nodes 2 and 3 support each other in the cycle but have no external
     support left; only node 1 keeps its label. *)
  Alcotest.(check int) "cycle died" 1 (Engine.relation_cardinal eng "Label");
  check_against_oracle eng program
    [
      ("GivenLabel", [ lbl 1 ]);
      ("Edge", [ ints [ 2; 3 ]; ints [ 3; 2 ] ]);
    ]

let test_rederivation_keeps_alternate_path () =
  let program = parse reach_src in
  let eng = Engine.create program in
  let lbl n = Row.intern [| Value.of_int n; Value.of_string "x" |] in
  ignore
    (Engine.apply eng
       [
         ("GivenLabel", lbl 1, true);
         ("Edge", ints [ 1; 2 ], true);
         ("Edge", ints [ 1; 3 ], true);
         ("Edge", ints [ 3; 2 ], true); (* node 2 reachable two ways *)
       ]);
  let deltas = Engine.apply eng [ ("Edge", ints [ 1; 2 ], false) ] in
  (* Node 2 is still reachable via 3: no visible change to Label. *)
  Alcotest.(check bool) "no label change" true
    (not (List.mem_assoc "Label" deltas));
  Alcotest.(check int) "all labelled" 3 (Engine.relation_cardinal eng "Label")

let test_insert_delete_same_txn () =
  let program = parse reach_src in
  let eng = Engine.create program in
  let txn = Engine.transaction eng in
  Engine.insert txn "Edge" (ints [ 1; 2 ]);
  Engine.delete txn "Edge" (ints [ 1; 2 ]);
  let deltas = Engine.commit txn in
  Alcotest.(check int) "no net change" 0 (List.length deltas)

let test_duplicate_insert_ignored () =
  let program = parse reach_src in
  let eng = Engine.create program in
  ignore (Engine.apply eng [ ("Edge", ints [ 1; 2 ], true) ]);
  let deltas = Engine.apply eng [ ("Edge", ints [ 1; 2 ], true) ] in
  Alcotest.(check int) "duplicate is a no-op" 0 (List.length deltas);
  let deltas = Engine.apply eng [ ("Edge", ints [ 9; 9 ], false) ] in
  Alcotest.(check int) "absent delete is a no-op" 0 (List.length deltas)

(* ------------------------------------------------------------------ *)
(* Multiplicity correctness in non-recursive strata                    *)
(* ------------------------------------------------------------------ *)

let test_join_counting () =
  (* T(x) is derivable via two different joins; deleting one support
     must not retract the fact. *)
  let program =
    parse
      {|
      input relation R(x: int, y: int)
      input relation S(y: int)
      output relation T(x: int)
      T(x) :- R(x, y), S(y).
      |}
  in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [
         ("R", ints [ 1; 10 ], true);
         ("R", ints [ 1; 20 ], true);
         ("S", ints [ 10 ], true);
         ("S", ints [ 20 ], true);
       ]);
  Alcotest.(check int) "T has one row" 1 (Engine.relation_cardinal eng "T");
  let deltas = Engine.apply eng [ ("S", ints [ 10 ], false) ] in
  Alcotest.(check bool) "T unchanged (still one derivation)" true
    (not (List.mem_assoc "T" deltas));
  let deltas = Engine.apply eng [ ("S", ints [ 20 ], false) ] in
  Alcotest.(check int) "T retracted with last support" (-1)
    (Zset.weight (List.assoc "T" deltas) (ints [ 1 ]))

let test_self_join () =
  let program =
    parse
      {|
      input relation E(a: int, b: int)
      output relation Tri(a: int, b: int, c: int)
      Tri(a, b, c) :- E(a, b), E(b, c), E(a, c).
      |}
  in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [
         ("E", ints [ 1; 2 ], true);
         ("E", ints [ 2; 3 ], true);
         ("E", ints [ 1; 3 ], true);
       ]);
  Alcotest.(check int) "triangle found" 1 (Engine.relation_cardinal eng "Tri");
  check_against_oracle eng program
    [ ("E", [ ints [ 1; 2 ]; ints [ 2; 3 ]; ints [ 1; 3 ] ]) ];
  ignore (Engine.apply eng [ ("E", ints [ 2; 3 ], false) ]);
  Alcotest.(check int) "triangle gone" 0 (Engine.relation_cardinal eng "Tri")

(* ------------------------------------------------------------------ *)
(* Negation                                                            *)
(* ------------------------------------------------------------------ *)

let test_negation_basic () =
  let program =
    parse
      {|
      input relation Node(n: int)
      input relation Blocked(n: int)
      output relation Open(n: int)
      Open(n) :- Node(n), not Blocked(n).
      |}
  in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [ ("Node", ints [ 1 ], true); ("Node", ints [ 2 ], true) ]);
  Alcotest.(check int) "both open" 2 (Engine.relation_cardinal eng "Open");
  let deltas = Engine.apply eng [ ("Blocked", ints [ 1 ], true) ] in
  Alcotest.(check int) "1 retracted" (-1)
    (Zset.weight (List.assoc "Open" deltas) (ints [ 1 ]));
  let deltas = Engine.apply eng [ ("Blocked", ints [ 1 ], false) ] in
  Alcotest.(check int) "1 restored" 1
    (Zset.weight (List.assoc "Open" deltas) (ints [ 1 ]))

let test_negation_with_wildcard_projection () =
  (* not Assigned(n, _) depends only on the projection of Assigned on
     its first column: adding a second assignment for the same node must
     not change anything. *)
  let program =
    parse
      {|
      input relation Node(n: int)
      input relation Assigned(n: int, task: int)
      output relation Idle(n: int)
      Idle(n) :- Node(n), not Assigned(n, _).
      |}
  in
  let eng = Engine.create program in
  ignore (Engine.apply eng [ ("Node", ints [ 1 ], true) ]);
  let d1 = Engine.apply eng [ ("Assigned", ints [ 1; 100 ], true) ] in
  Alcotest.(check int) "idle retracted" (-1)
    (Zset.weight (List.assoc "Idle" d1) (ints [ 1 ]));
  let d2 = Engine.apply eng [ ("Assigned", ints [ 1; 200 ], true) ] in
  Alcotest.(check bool) "second assignment: no change" true
    (not (List.mem_assoc "Idle" d2));
  let d3 = Engine.apply eng [ ("Assigned", ints [ 1; 100 ], false) ] in
  Alcotest.(check bool) "first removal: still assigned" true
    (not (List.mem_assoc "Idle" d3));
  let d4 = Engine.apply eng [ ("Assigned", ints [ 1; 200 ], false) ] in
  Alcotest.(check int) "idle restored" 1
    (Zset.weight (List.assoc "Idle" d4) (ints [ 1 ]))

let test_negation_same_txn_as_positive () =
  let program =
    parse
      {|
      input relation Node(n: int)
      input relation Blocked(n: int)
      output relation Open(n: int)
      Open(n) :- Node(n), not Blocked(n).
      |}
  in
  let eng = Engine.create program in
  (* Insert a node and its block in the same transaction. *)
  let deltas =
    Engine.apply eng
      [ ("Node", ints [ 1 ], true); ("Blocked", ints [ 1 ], true) ]
  in
  Alcotest.(check bool) "never open" true (not (List.mem_assoc "Open" deltas));
  check_against_oracle eng program
    [ ("Node", [ ints [ 1 ] ]); ("Blocked", [ ints [ 1 ] ]) ]

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let agg_src =
  {|
  input relation Port(id: int, vlan: int)
  output relation VlanSize(vlan: int, n: int)
  VlanSize(v, n) :- Port(p, v), var n = count(p) group_by (v).
  |}

let test_aggregate_count () =
  let program = parse agg_src in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [
         ("Port", ints [ 1; 10 ], true);
         ("Port", ints [ 2; 10 ], true);
         ("Port", ints [ 3; 20 ], true);
       ]);
  let got = sorted (Engine.relation_rows eng "VlanSize") in
  Alcotest.check rows_testable "counts"
    [ ints [ 10; 2 ]; ints [ 20; 1 ] ]
    got;
  (* Incremental update: -old +new for the touched group only. *)
  let deltas = Engine.apply eng [ ("Port", ints [ 1; 10 ], false) ] in
  let dz = List.assoc "VlanSize" deltas in
  Alcotest.(check int) "old count retracted" (-1) (Zset.weight dz (ints [ 10; 2 ]));
  Alcotest.(check int) "new count asserted" 1 (Zset.weight dz (ints [ 10; 1 ]));
  (* Group disappears entirely when its last member leaves. *)
  let deltas = Engine.apply eng [ ("Port", ints [ 3; 20 ], false) ] in
  let dz = List.assoc "VlanSize" deltas in
  Alcotest.(check int) "group removed" (-1) (Zset.weight dz (ints [ 20; 1 ]));
  Alcotest.(check int) "no new row for empty group" 1 (Zset.cardinal dz);
  check_against_oracle eng program
    [ ("Port", [ ints [ 2; 10 ] ]) ]

let test_aggregate_min_max_sum () =
  let program =
    parse
      {|
      input relation M(k: int, v: int)
      output relation Stats(k: int, lo: int, hi: int, total: int)
      Stats(k, lo, hi, total) :-
        M(k, v),
        var lo = min(v) group_by (k),
        var hi = max(v) group_by (k),
        var total = sum(v) group_by (k).
      |}
  in
  (* Multiple aggregates in one rule are not supported (one LAgg max);
     the type checker must reject the extra literals after the first. *)
  match Typecheck.check_program program with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected rejection of trailing aggregate"

let test_aggregate_sum_updates () =
  let program =
    parse
      {|
      input relation M(k: int, v: int)
      output relation Total(k: int, s: int)
      Total(k, s) :- M(k, v), var s = sum(v) group_by (k).
      |}
  in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [ ("M", ints [ 1; 5 ], true); ("M", ints [ 1; 7 ], true) ]);
  Alcotest.check rows_testable "sum" [ ints [ 1; 12 ] ]
    (sorted (Engine.relation_rows eng "Total"));
  ignore (Engine.apply eng [ ("M", ints [ 1; 5 ], false) ]);
  Alcotest.check rows_testable "sum after delete" [ ints [ 1; 7 ] ]
    (sorted (Engine.relation_rows eng "Total"));
  check_against_oracle eng program [ ("M", [ ints [ 1; 7 ] ]) ]

let test_aggregate_downstream () =
  (* An aggregate feeding another rule exercises stratum chaining. *)
  let program =
    parse
      {|
      input relation Port(id: int, vlan: int)
      relation VlanSize(vlan: int, n: int)
      output relation Crowded(vlan: int)
      VlanSize(v, n) :- Port(p, v), var n = count(p) group_by (v).
      Crowded(v) :- VlanSize(v, n), n >= 2.
      |}
  in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [ ("Port", ints [ 1; 10 ], true); ("Port", ints [ 2; 10 ], true) ]);
  Alcotest.(check int) "crowded" 1 (Engine.relation_cardinal eng "Crowded");
  ignore (Engine.apply eng [ ("Port", ints [ 2; 10 ], false) ]);
  Alcotest.(check int) "no longer crowded" 0
    (Engine.relation_cardinal eng "Crowded")

(* ------------------------------------------------------------------ *)
(* Assignments, conditions, flattening, facts                          *)
(* ------------------------------------------------------------------ *)

let test_assign_and_cond () =
  let program =
    parse
      {|
      input relation R(x: int)
      output relation O(x: int, y: int)
      O(x, y) :- R(x), var y = x * x + 1, y < 20.
      |}
  in
  let eng = Engine.create program in
  ignore
    (Engine.apply eng
       [ ("R", ints [ 2 ], true); ("R", ints [ 3 ], true); ("R", ints [ 5 ], true) ]);
  Alcotest.check rows_testable "computed"
    [ ints [ 2; 5 ]; ints [ 3; 10 ] ]
    (sorted (Engine.relation_rows eng "O"));
  check_against_oracle eng program
    [ ("R", [ ints [ 2 ]; ints [ 3 ]; ints [ 5 ] ]) ]

let test_flatten () =
  let program =
    parse
      {|
      input relation R(x: int)
      output relation O(x: int, y: int)
      O(x, y) :- R(x), var ys = vec_push(vec_push(vec_empty(), x * 10), x * 20),
                 var y in ys.
      |}
  in
  let eng = Engine.create program in
  ignore (Engine.apply eng [ ("R", ints [ 1 ], true) ]);
  Alcotest.check rows_testable "flattened"
    [ ints [ 1; 10 ]; ints [ 1; 20 ] ]
    (sorted (Engine.relation_rows eng "O"));
  ignore (Engine.apply eng [ ("R", ints [ 1 ], false) ]);
  Alcotest.(check int) "retracted" 0 (Engine.relation_cardinal eng "O")

let test_facts () =
  let program =
    parse
      {|
      input relation R(x: int)
      output relation O(x: int, tag: string)
      O(0, "static").
      O(x, "dynamic") :- R(x).
      |}
  in
  let eng = Engine.create program in
  Alcotest.(check int) "fact present at init" 1 (Engine.relation_cardinal eng "O");
  ignore (Engine.apply eng [ ("R", ints [ 1 ], true) ]);
  Alcotest.(check int) "fact plus derived" 2 (Engine.relation_cardinal eng "O")

let test_fact_into_recursive_stratum () =
  let program =
    parse
      {|
      input relation E(a: int, b: int)
      output relation Reach(n: int)
      Reach(0).
      Reach(b) :- Reach(a), E(a, b).
      |}
  in
  let eng = Engine.create program in
  Alcotest.(check int) "seed fact" 1 (Engine.relation_cardinal eng "Reach");
  ignore (Engine.apply eng [ ("E", ints [ 0; 1 ], true) ]);
  Alcotest.(check int) "propagated" 2 (Engine.relation_cardinal eng "Reach")

(* ------------------------------------------------------------------ *)
(* Error paths and API behaviour                                       *)
(* ------------------------------------------------------------------ *)

let test_input_validation () =
  let program = parse reach_src in
  let eng = Engine.create program in
  let txn = Engine.transaction eng in
  (match Engine.insert txn "Label" (ints [ 1 ]) with
  | exception Engine.Error _ -> ()
  | () -> Alcotest.fail "writing a non-input relation must fail");
  (match Engine.insert txn "Edge" (ints [ 1 ]) with
  | exception Engine.Error _ -> ()
  | () -> Alcotest.fail "arity mismatch must fail");
  (match Engine.insert txn "Edge" (Row.intern [| Value.of_int 1; Value.of_string "x" |]) with
  | exception Engine.Error _ -> ()
  | () -> Alcotest.fail "type mismatch must fail");
  Engine.rollback txn;
  (* Rollback leaves the engine usable. *)
  let txn2 = Engine.transaction eng in
  Engine.insert txn2 "Edge" (ints [ 1; 2 ]);
  ignore (Engine.commit txn2)

let test_single_open_transaction () =
  let program = parse reach_src in
  let eng = Engine.create program in
  let _txn = Engine.transaction eng in
  match Engine.transaction eng with
  | exception Engine.Error _ -> ()
  | _ -> Alcotest.fail "two open transactions must fail"

let test_output_deltas_filter () =
  let program =
    parse
      {|
      input relation R(x: int)
      relation Mid(x: int)
      output relation O(x: int)
      Mid(x) :- R(x).
      O(x) :- Mid(x).
      |}
  in
  let eng = Engine.create program in
  let deltas = Engine.apply eng [ ("R", ints [ 1 ], true) ] in
  Alcotest.(check int) "all deltas reported" 3 (List.length deltas);
  let outs = Engine.output_deltas eng deltas in
  Alcotest.(check int) "only output relations" 1 (List.length outs);
  Alcotest.(check string) "the output" "O" (fst (List.hd outs))

(* ------------------------------------------------------------------ *)
(* A larger scenario mixing everything, oracle-checked                 *)
(* ------------------------------------------------------------------ *)

let test_mixed_program_oracle () =
  let program =
    parse
      {|
      input relation Link(a: int, b: int, up: bool)
      input relation Host(h: int, sw: int)
      relation Conn(a: int, b: int)
      relation Reach(a: int, b: int)
      output relation HostPairs(h1: int, h2: int)
      output relation Degree(a: int, n: int)
      Conn(a, b) :- Link(a, b, true).
      Conn(b, a) :- Link(a, b, true).
      Reach(a, b) :- Conn(a, b).
      Reach(a, c) :- Reach(a, b), Conn(b, c).
      HostPairs(h1, h2) :- Host(h1, s1), Host(h2, s2), Reach(s1, s2), h1 != h2.
      Degree(a, n) :- Conn(a, b), var n = count(b) group_by (a).
      |}
  in
  let eng = Engine.create program in
  let link a b up = Row.intern [| Value.of_int a; Value.of_int b; Value.VBool up |] in
  let inputs = ref ([] : (string * Row.t * bool) list) in
  let final_inputs () =
    (* Replay the net effect for the oracle. *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (rel, row, ins) ->
        let cur = try Hashtbl.find tbl rel with Not_found -> [] in
        let cur = List.filter (fun r -> not (Row.equal r row)) cur in
        Hashtbl.replace tbl rel (if ins then row :: cur else cur))
      (List.rev !inputs);
    Hashtbl.fold (fun rel rows acc -> (rel, rows) :: acc) tbl []
  in
  let step updates =
    inputs := List.rev_append updates !inputs;
    ignore (Engine.apply eng updates);
    check_against_oracle eng program (final_inputs ())
  in
  step
    [
      ("Link", link 1 2 true, true);
      ("Link", link 2 3 true, true);
      ("Host", ints [ 100; 1 ], true);
      ("Host", ints [ 101; 3 ], true);
    ];
  step [ ("Link", link 2 3 false, true) ]; (* a parallel down link *)
  step [ ("Link", link 2 3 true, false) ]; (* cut the up link *)
  step [ ("Link", link 3 1 true, true) ];  (* reconnect via a new link *)
  step [ ("Host", ints [ 100; 1 ], false) ]

let tests =
  [
    Alcotest.test_case "label basic" `Quick test_label_basic;
    Alcotest.test_case "label incremental delete" `Quick
      test_label_incremental_delete;
    Alcotest.test_case "label cycle deletion (DRed)" `Quick
      test_label_cycle_deletion;
    Alcotest.test_case "rederivation keeps alternate path" `Quick
      test_rederivation_keeps_alternate_path;
    Alcotest.test_case "insert+delete same txn" `Quick test_insert_delete_same_txn;
    Alcotest.test_case "duplicate insert ignored" `Quick
      test_duplicate_insert_ignored;
    Alcotest.test_case "join counting" `Quick test_join_counting;
    Alcotest.test_case "self join" `Quick test_self_join;
    Alcotest.test_case "negation basic" `Quick test_negation_basic;
    Alcotest.test_case "negation wildcard projection" `Quick
      test_negation_with_wildcard_projection;
    Alcotest.test_case "negation same txn" `Quick
      test_negation_same_txn_as_positive;
    Alcotest.test_case "aggregate count" `Quick test_aggregate_count;
    Alcotest.test_case "multiple aggregates rejected" `Quick
      test_aggregate_min_max_sum;
    Alcotest.test_case "aggregate sum updates" `Quick test_aggregate_sum_updates;
    Alcotest.test_case "aggregate downstream" `Quick test_aggregate_downstream;
    Alcotest.test_case "assign and cond" `Quick test_assign_and_cond;
    Alcotest.test_case "flatten" `Quick test_flatten;
    Alcotest.test_case "facts" `Quick test_facts;
    Alcotest.test_case "fact into recursive stratum" `Quick
      test_fact_into_recursive_stratum;
    Alcotest.test_case "input validation" `Quick test_input_validation;
    Alcotest.test_case "single open transaction" `Quick
      test_single_open_transaction;
    Alcotest.test_case "output delta filter" `Quick test_output_deltas_filter;
    Alcotest.test_case "mixed program vs oracle" `Quick test_mixed_program_oracle;
  ]
