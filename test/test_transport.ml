(* Tests for the plane-transport layer and the failure-handling driver:
   wire codec round-trips, deterministic fault injection, P4Runtime
   digest retransmission semantics, the controller's step core, per-
   controller stats, reconnect reconciliation, and the seeded
   fault-injection convergence runs (final switch state must be
   byte-identical to a fault-free run). *)

let mac = P4.Stdhdrs.mac_of_string
let bcast = mac "ff:ff:ff:ff:ff:ff"

let frame ~dst ~src =
  P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x1234L ~payload:"data"

let sync d = ignore (Nerpa.Controller.sync d.Snvs.controller)

let feed (d : Snvs.deployment) ~port src =
  ignore (P4.Switch.process d.switch ~in_port:port (frame ~dst:bcast ~src))

let add_ports d =
  ignore (Snvs.add_port d ~name:"p1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[]);
  ignore
    (Snvs.add_port d ~name:"p4" ~port:4 ~mode:"trunk" ~tag:0 ~trunks:[ 10; 20 ])

(* ---------------- transport primitives ---------------- *)

let test_direct_and_wire () =
  let echo = Transport.direct (fun x -> x * 2) in
  Alcotest.(check bool) "direct send" true (Transport.send echo 21 = Ok 42);
  Alcotest.(check bool) "direct connected" true
    (Transport.status echo = Transport.Connected);
  Alcotest.(check int) "no events" 0 (List.length (Transport.events echo));
  (* a wire link round-trips through strings; a poisoned codec surfaces
     as a transient error, not an exception *)
  let ok =
    Transport.wire ~encode_req:string_of_int
      ~decode_req:(fun s -> Ok (int_of_string s))
      ~encode_resp:string_of_int
      ~decode_resp:(fun s -> Ok (int_of_string s))
      (fun x -> x + 1)
  in
  Alcotest.(check bool) "wire send" true (Transport.send ok 41 = Ok 42);
  let bad =
    Transport.wire ~encode_req:string_of_int
      ~decode_req:(fun s -> Ok (int_of_string s))
      ~encode_resp:string_of_int
      ~decode_resp:(fun _ -> Error "corrupt")
      (fun x -> x + 1)
  in
  match Transport.send bad 1 with
  | Error (Transport.Transient (Transport.Codec msg)) ->
    Alcotest.(check bool) "decoder message kept" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "codec failure should be Transient Codec"

(* The stable error labels double as compact test tags. *)
let tag = function
  | Ok v -> Printf.sprintf "ok:%d" v
  | Error e -> Transport.error_to_string e

let test_faulty_determinism () =
  let run seed =
    let link, _ctl =
      Transport.faulty ~seed (Transport.direct (fun x -> x))
    in
    List.init 200 (fun i -> tag (Transport.send link i))
  in
  Alcotest.(check (list string)) "same seed, same schedule" (run 7) (run 7);
  let faults = List.filter (fun t -> String.sub t 0 3 <> "ok:") (run 7) in
  Alcotest.(check bool) "faults actually fire" true (List.length faults > 0);
  Alcotest.(check bool) "different seeds diverge" true (run 7 <> run 8)

let test_faulty_disconnect_heal () =
  let link, ctl =
    Transport.faulty ~seed:1 ~faults:Transport.no_faults
      (Transport.direct (fun x -> x))
  in
  Alcotest.(check bool) "starts clean" true (Transport.send link 1 = Ok 1);
  Transport.force_disconnect ctl ~down_for:3 ();
  Alcotest.(check bool) "down" true
    (Transport.status link = Transport.Disconnected);
  Alcotest.(check bool) "edge reported" true
    (Transport.events link = [ Transport.Disconnected ]);
  (* every send attempt while down counts toward the reconnect *)
  Alcotest.(check string) "closed 1" "closed/down" (tag (Transport.send link 2));
  Alcotest.(check string) "closed 2" "closed/down" (tag (Transport.send link 3));
  Alcotest.(check string) "closed 3" "closed/down" (tag (Transport.send link 4));
  Alcotest.(check bool) "back up" true (Transport.send link 5 = Ok 5);
  Alcotest.(check bool) "reconnect edge" true
    (Transport.events link = [ Transport.Connected ]);
  (* heal reconnects immediately *)
  Transport.force_disconnect ctl ~down_for:100 ();
  Transport.heal ctl;
  Alcotest.(check bool) "healed" true (Transport.send link 6 = Ok 6)

(* Regression: [heal] used to flip the whole fault schedule off as a
   side effect, so any workload that force-disconnected and healed ran
   fault-free for the rest of its life.  Injection must stay armed
   across a heal; only [set_faults_enabled] silences it. *)
let test_heal_keeps_faults_armed () =
  let faults =
    { Transport.drop = 1.0; duplicate = 0.; delay = 0.; disconnect = 0. }
  in
  let link, ctl =
    Transport.faulty ~seed:3 ~faults (Transport.direct (fun x -> x))
  in
  Alcotest.(check string) "drops before" "transient/injected-drop"
    (tag (Transport.send link 1));
  Transport.force_disconnect ctl ~down_for:50 ();
  Transport.heal ctl;
  Alcotest.(check string) "still drops after heal" "transient/injected-drop"
    (tag (Transport.send link 2));
  Transport.set_faults_enabled ctl false;
  Alcotest.(check bool) "quiet only when asked" true
    (Transport.send link 3 = Ok 3)

(* [send_many] on the in-process flavours degrades to serial sends:
   same results, same handler call order. *)
let test_send_many_order () =
  let seen = ref [] in
  let link =
    Transport.direct (fun x ->
        seen := x :: !seen;
        x + 100)
  in
  (match Transport.send_many link [ 1; 2; 3 ] with
  | [ Ok 101; Ok 102; Ok 103 ] -> ()
  | _ -> Alcotest.fail "send_many results mismatch");
  Alcotest.(check (list int)) "request order preserved" [ 1; 2; 3 ]
    (List.rev !seen);
  Alcotest.(check (list pass)) "empty batch" [] (Transport.send_many link [])

(* ---------------- wire codecs ---------------- *)

let sample_entry =
  {
    P4runtime.table_id = 3;
    matches =
      [ P4runtime.FmExact 5L; P4runtime.FmLpm (0xFF00L, 8);
        P4runtime.FmTernary (7L, 0x0FL); P4runtime.FmOptional (Some 9L);
        P4runtime.FmOptional None ];
    priority = 11;
    action_id = 2;
    action_args = [ 42L; -1L ];
  }

let test_p4_wire_codec () =
  let reqs =
    [ P4runtime.Wire.Write
        [ P4runtime.insert sample_entry; P4runtime.delete sample_entry;
          P4runtime.set_multicast ~group:10L ~ports:[ 1L; 2L ] ];
      P4runtime.Wire.Read_table 3; P4runtime.Wire.Read_groups;
      P4runtime.Wire.Poll_digests; P4runtime.Wire.Ack 7 ]
  in
  List.iter
    (fun r ->
      match P4runtime.Wire.(decode_request (encode_request r)) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error e -> Alcotest.failf "request decode failed: %s" e)
    reqs;
  let resps =
    [ P4runtime.Wire.Write_reply (Ok ());
      P4runtime.Wire.Write_reply (Error "duplicate entry");
      P4runtime.Wire.Table [ sample_entry ];
      P4runtime.Wire.Groups [ (10L, [ 1L; 2L ]); (20L, []) ];
      P4runtime.Wire.Digests
        [ { P4runtime.digest_id = 1; list_id = 4; entries = [ [ 1L; 2L ] ] } ];
      P4runtime.Wire.Acked; P4runtime.Wire.Error_reply "boom" ]
  in
  List.iter
    (fun r ->
      match P4runtime.Wire.(decode_response (encode_response r)) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error e -> Alcotest.failf "response decode failed: %s" e)
    resps;
  (* malformed input is an Error, not an exception *)
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (P4runtime.Wire.decode_request "not json"));
  Alcotest.(check bool) "unknown op rejected" true
    (Result.is_error (P4runtime.Wire.decode_request "{\"op\":\"nope\"}"))

let test_mgmt_wire_link () =
  let db = Ovsdb.Db.create Snvs.schema in
  let mon =
    Ovsdb.Db.add_monitor db
      (List.map
         (fun (t : Ovsdb.Schema.table) -> (t.tname, None))
         Snvs.schema.tables)
  in
  let link = Nerpa.Links.wire_mgmt db mon in
  ignore
    (Ovsdb.Db.insert_exn db "Port"
       [ ("name", Ovsdb.Datum.string "p1");
         ("port", Ovsdb.Datum.integer 1L);
         ("mode", Ovsdb.Datum.string "access");
         ("tag", Ovsdb.Datum.integer 10L);
         ("trunks", Ovsdb.Datum.set []) ]);
  match Transport.send link Nerpa.Links.Poll_monitor with
  | Ok (Nerpa.Links.Batches batches) ->
    let rows =
      List.concat_map (fun b -> try List.assoc "Port" b with Not_found -> [])
        batches
    in
    Alcotest.(check int) "row survives the wire" 1 (List.length rows);
    let _, upd = List.hd rows in
    let row = Option.get upd.Ovsdb.Db.after in
    Alcotest.(check bool) "column intact" true
      (List.assoc "name" row = Ovsdb.Datum.string "p1");
    (* drained: the next poll is empty *)
    (match Transport.send link Nerpa.Links.Poll_monitor with
    | Ok (Nerpa.Links.Batches []) -> ()
    | _ -> Alcotest.fail "expected empty second poll")
  | Ok (Nerpa.Links.Snapshot _) -> Alcotest.fail "poll answered with snapshot"
  | Ok _ -> Alcotest.fail "unexpected poll response"
  | Error _ -> Alcotest.fail "wire mgmt poll failed"

let test_wire_p4_deployment () =
  (* the full snvs stack over serialized-bytes links behaves exactly
     like the direct one *)
  let wire_msgs0 = Obs.counter_value "transport.wire.msgs" in
  let d = Snvs.deploy ~endpoint:Nerpa.Endpoint.wire () in
  add_ports d;
  sync d;
  feed d ~port:1 (mac "00:00:00:00:00:0a");
  sync d;
  Alcotest.(check int) "dmac learned over the wire" 1
    (P4.Switch.entry_count d.switch "dmac");
  Alcotest.(check bool) "flood group programmed" true
    (P4.Switch.mcast_group d.switch 10L <> None);
  Alcotest.(check bool) "wire messages counted" true
    (Obs.counter_value "transport.wire.msgs" > wire_msgs0)

(* ---------------- digest retransmission (P4Runtime server) --------- *)

let test_digest_retransmission () =
  let d = Snvs.deploy () in
  add_ports d;
  sync d;
  (* our own server on the same switch: the deployment's controller is
     not synced again, so it never consumes these digests *)
  let srv = P4runtime.attach d.switch in
  feed d ~port:1 (mac "00:00:00:00:00:0a");
  let l1 = P4runtime.stream_digests srv in
  Alcotest.(check int) "one list drained" 1 (List.length l1);
  let dl = List.hd l1 in
  (* unacked: the same list is redelivered *)
  let l2 = P4runtime.stream_digests srv in
  Alcotest.(check bool) "redelivered identically" true (l2 = [ dl ]);
  (* a new digest while unacked: old list first, new appended *)
  feed d ~port:2 (mac "00:00:00:00:00:0b");
  let l3 = P4runtime.stream_digests srv in
  Alcotest.(check int) "redelivered + new" 2 (List.length l3);
  Alcotest.(check bool) "oldest first" true (List.hd l3 = dl);
  let dl2 = List.nth l3 1 in
  Alcotest.(check bool) "fresh id" true
    (dl2.P4runtime.list_id > dl.P4runtime.list_id);
  (* ack releases exactly that list *)
  P4runtime.ack_digest_list srv ~list_id:dl.P4runtime.list_id;
  Alcotest.(check bool) "only the unacked one remains" true
    (P4runtime.stream_digests srv = [ dl2 ]);
  (* ack is idempotent *)
  P4runtime.ack_digest_list srv ~list_id:dl.P4runtime.list_id;
  P4runtime.ack_digest_list srv ~list_id:dl2.P4runtime.list_id;
  P4runtime.ack_digest_list srv ~list_id:dl2.P4runtime.list_id;
  Alcotest.(check bool) "queue empty after acks" true
    (P4runtime.stream_digests srv = [])

(* ---------------- the step core ---------------- *)

let learned_rows d =
  Dl.Engine.relation_rows (Nerpa.Controller.engine d.Snvs.controller)
    "LearnedMac"

let test_step_dedup_applies_once () =
  let d = Snvs.deploy () in
  add_ports d;
  sync d;
  let info = P4.P4info.of_program Snvs.p4 in
  let di = Option.get (P4.P4info.find_digest info "learned_mac") in
  let did = di.P4.P4info.digest_id in
  (* learned_mac fields are (port, vlan, mac) *)
  let dl =
    { P4runtime.digest_id = did; list_id = 42; entries = [ [ 1L; 10L; 0xAAL ] ] }
  in
  let dups0 = Obs.counter_value "nerpa.digest.duplicates" in
  let cmds1 =
    Nerpa.Controller.step d.controller
      (Nerpa.Controller.Step.Digest_lists ("snvs0", [ dl ]))
  in
  Alcotest.(check int) "row applied" 1 (List.length (learned_rows d));
  Alcotest.(check bool) "writes + ack commanded" true
    (List.exists
       (function Nerpa.Controller.Step.Write _ -> true | _ -> false)
       cmds1
    && List.mem (Nerpa.Controller.Step.Ack ("snvs0", 42)) cmds1);
  (* the same list redelivered: re-acked, applied exactly once *)
  let cmds2 =
    Nerpa.Controller.step d.controller
      (Nerpa.Controller.Step.Digest_lists ("snvs0", [ dl ]))
  in
  Alcotest.(check bool) "only a re-ack" true
    (cmds2 = [ Nerpa.Controller.Step.Ack ("snvs0", 42) ]);
  Alcotest.(check int) "still one row" 1 (List.length (learned_rows d));
  Alcotest.(check int) "duplicate counted" (dups0 + 1)
    (Obs.counter_value "nerpa.digest.duplicates")

let test_step_is_transport_free () =
  let d = Snvs.deploy () in
  (* a monitor batch handed straight to the step core commits the
     transaction and *returns* the write batch instead of sending it *)
  let uuid =
    Ovsdb.Db.insert_exn d.db "Port"
      [ ("name", Ovsdb.Datum.string "p1");
        ("port", Ovsdb.Datum.integer 1L);
        ("mode", Ovsdb.Datum.string "access");
        ("tag", Ovsdb.Datum.integer 10L);
        ("trunks", Ovsdb.Datum.set []) ]
  in
  let row = Option.get (Ovsdb.Db.get_row d.db "Port" uuid) in
  let batch =
    [ ("Port", [ (uuid, { Ovsdb.Db.before = None; after = Some row }) ]) ]
  in
  let cmds =
    Nerpa.Controller.step d.controller
      (Nerpa.Controller.Step.Monitor_batch batch)
  in
  let writes =
    List.concat_map
      (function Nerpa.Controller.Step.Write (_, us) -> us | _ -> [])
      cmds
  in
  Alcotest.(check bool) "write batch returned" true (writes <> []);
  Alcotest.(check int) "switch untouched by the core" 0
    (P4.Switch.entry_count d.switch "in_vlan");
  (* executing the returned batch (here: by hand) applies it *)
  let srv = P4runtime.attach d.switch in
  (match P4runtime.write srv writes with
  | Ok () -> ()
  | Error e -> Alcotest.failf "returned batch rejected: %s" e);
  Alcotest.(check bool) "applied by the driver" true
    (P4.Switch.entry_count d.switch "in_vlan" > 0);
  (* switch-up events request reconciliation *)
  let cmds =
    Nerpa.Controller.step d.controller
      (Nerpa.Controller.Step.Switch_up "snvs0")
  in
  Alcotest.(check bool) "reconcile on reconnect" true
    (cmds = [ Nerpa.Controller.Step.Reconcile "snvs0" ])

(* ---------------- per-controller stats ---------------- *)

let test_per_controller_stats () =
  let d1 = Snvs.deploy () in
  add_ports d1;
  sync d1;
  let d2 = Snvs.deploy () in
  let s1 = Nerpa.Controller.stats d1.controller in
  let s2 = Nerpa.Controller.stats d2.controller in
  Alcotest.(check bool) "first controller worked" true
    (s1.Nerpa.Controller.txns > 0 && s1.Nerpa.Controller.entries_written > 0);
  Alcotest.(check int) "second controller idle: txns" 0
    s2.Nerpa.Controller.txns;
  Alcotest.(check int) "second controller idle: entries" 0
    s2.Nerpa.Controller.entries_written;
  (* work on the second does not move the first *)
  ignore
    (Snvs.add_port d2 ~name:"q1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  sync d2;
  let s1' = Nerpa.Controller.stats d1.controller in
  Alcotest.(check bool) "first unchanged" true (s1 = s1');
  Alcotest.(check bool) "second counted its own" true
    ((Nerpa.Controller.stats d2.controller).Nerpa.Controller.txns > 0);
  (* stats are independent of Obs collection *)
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled true)
    (fun () ->
      Obs.set_enabled false;
      ignore
        (Snvs.add_port d2 ~name:"q2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
      sync d2;
      Alcotest.(check bool) "counts survive disabled collection" true
        ((Nerpa.Controller.stats d2.controller).Nerpa.Controller.entries_written
        > s2.Nerpa.Controller.entries_written))

(* ---------------- reconnect reconciliation ---------------- *)

let deploy_faulty ~seed ~faults () =
  let d =
    Snvs.deploy
      ~endpoint:
        (Nerpa.Endpoint.faulty_p4 ~seed ~faults
           (Nerpa.Endpoint.planes ~mgmt:Nerpa.Endpoint.plane_in_process
              ~p4_of:(fun _ -> Nerpa.Endpoint.plane_wire)))
      ()
  in
  (d, Option.get (Nerpa.Controller.p4_ctl d.controller "snvs0"))

let test_reconcile_after_reconnect () =
  let d, ctl = deploy_faulty ~seed:1 ~faults:Transport.no_faults () in
  ignore (Snvs.add_port d ~name:"p1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
  sync d;
  Alcotest.(check int) "two ports configured" 2
    (P4.Switch.entry_count d.switch "in_vlan");
  let rec0 = Obs.counter_value "nerpa.reconcile.count" in
  let corr0 = Obs.counter_value "nerpa.reconcile.corrections" in
  (* the switch goes away; a management change lands while it is down *)
  Transport.force_disconnect ctl ~down_for:2 ();
  ignore (Snvs.add_port d ~name:"p3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[]);
  sync d;
  (* the missed write was repaired by reconciliation on reconnect *)
  Alcotest.(check int) "third port present after reconnect" 3
    (P4.Switch.entry_count d.switch "in_vlan");
  Alcotest.(check bool) "reconcile ran" true
    (Obs.counter_value "nerpa.reconcile.count" > rec0);
  Alcotest.(check bool) "corrections written" true
    (Obs.counter_value "nerpa.reconcile.corrections" > corr0)

(* ---------------- fault-injection convergence ---------------- *)

(* Canonical byte dump of a switch's forwarding state: every table's
   entries (sorted) in the wire encoding, plus the multicast groups. *)
let dump_switch (sw : P4.Switch.t) : string =
  let srv = P4runtime.attach sw in
  let info = P4runtime.info srv in
  let entries =
    List.concat_map
      (fun ti -> P4runtime.read_table srv ~table_id:ti.P4.P4info.table_id)
      info.P4.P4info.tables
  in
  let groups =
    List.map
      (fun (g, ps) -> (g, List.sort Int64.compare ps))
      (P4runtime.multicast_groups srv)
  in
  P4runtime.Wire.encode_response
    (P4runtime.Wire.Table (List.sort compare entries))
  ^ "\n"
  ^ P4runtime.Wire.encode_response (P4runtime.Wire.Groups groups)

let host_a = mac "00:00:00:00:00:0a"
let host_b = mac "00:00:00:00:00:0b"
let host_c = mac "00:00:00:00:00:0c"

let in_vlan_id =
  lazy
    (let info = P4.P4info.of_program Snvs.p4 in
     let ti =
       List.find
         (fun ti -> ti.P4.P4info.table_name = "in_vlan")
         info.P4.P4info.tables
     in
     ti.P4.P4info.table_id)

let port_ready (d : Snvs.deployment) port =
  let srv = P4runtime.attach d.switch in
  List.exists
    (fun e ->
      match e.P4runtime.matches with
      | P4runtime.FmExact p :: _ -> p = Int64.of_int port
      | _ -> false)
    (P4runtime.read_table srv ~table_id:(Lazy.force in_vlan_id))

(* A frame sent before the port's [in_vlan] entry lands is classified
   on vlan 0 and learned there — state that depends on the fault
   schedule, never on the workload.  Real hosts keep talking until
   admitted; model that by feeding only once the port is programmed
   (each retry runs a sync, which also ticks a downed link toward
   reconnect and reconciliation). *)
let feed_ready (d : Snvs.deployment) ~port src =
  let rec wait n =
    if not (port_ready d port) then begin
      if n = 0 then Alcotest.fail "port never programmed";
      sync d;
      wait (n - 1)
    end
  in
  wait 100;
  feed d ~port src

(* The snvs MAC-learning workload: configuration churn interleaved with
   learning traffic and a MAC moving between ports.  [mid] runs between
   two learning phases — the fault schedules use it to force a
   disconnect while state is in flight. *)
let run_workload ?(mid = fun () -> ()) (d : Snvs.deployment) =
  add_ports d;
  sync d;
  feed_ready d ~port:1 host_a;
  sync d;
  feed_ready d ~port:2 host_b;
  sync d;
  mid ();
  feed_ready d ~port:3 host_c;
  sync d;
  ignore
    (Snvs.add_acl d ~priority:10 ~src:host_a ~src_mask:0xFFFFFFFFFFFFL
       ~dst:host_b ~dst_mask:0xFFFFFFFFFFFFL ~allow:false);
  sync d;
  (* MAC mobility: A moves from port 1 to port 2 *)
  feed_ready d ~port:2 host_a;
  sync d;
  ignore (Snvs.add_mirror d ~name:"m1" ~select_port:1 ~output_port:9);
  sync d

(* End-of-run convergence: silence the fault schedule, heal the links,
   let reconciliation repair the switch, and replay each host's current
   location once (a learning lost to a dropped digest recurs; an
   already-learned MAC is silent).  [heal] itself no longer disables
   injection — a healed link keeps faulting — so quiescence is asked
   for explicitly. *)
let converge (d : Snvs.deployment) (ctls : Transport.ctl list) =
  List.iter (fun ctl -> Transport.set_faults_enabled ctl false) ctls;
  List.iter Transport.heal ctls;
  sync d;
  feed_ready d ~port:2 host_a;
  feed_ready d ~port:2 host_b;
  feed_ready d ~port:3 host_c;
  sync d;
  Nerpa.Controller.reconcile d.controller "snvs0";
  dump_switch d.switch

let test_fault_injection_convergence () =
  (* the reference: the same workload over fault-free links *)
  let baseline =
    let d = Snvs.deploy () in
    run_workload d;
    converge d []
  in
  Alcotest.(check bool) "baseline has state" true
    (String.length baseline > 100);
  let faults =
    { Transport.drop = 0.15; duplicate = 0.12; delay = 0.10; disconnect = 0.05 }
  in
  let rec0 = Obs.counter_value "nerpa.reconcile.count" in
  let drops0 = Obs.counter_value "transport.faults.drops" in
  let disc0 = Obs.counter_value "transport.faults.disconnects" in
  List.iter
    (fun seed ->
      let d, ctl = deploy_faulty ~seed ~faults () in
      (* a mid-run hard disconnect on top of the random schedule *)
      run_workload ~mid:(fun () -> Transport.force_disconnect ctl ~down_for:6 ()) d;
      let dump = converge d [ ctl ] in
      Alcotest.(check string)
        (Printf.sprintf "seed %d converges to the fault-free state" seed)
        baseline dump)
    [ 11; 22; 33; 44; 55; 66; 77 ];
  Alcotest.(check bool) "reconciliation exercised" true
    (Obs.counter_value "nerpa.reconcile.count" > rec0);
  Alcotest.(check bool) "drops injected" true
    (Obs.counter_value "transport.faults.drops" > drops0);
  Alcotest.(check bool) "disconnects injected" true
    (Obs.counter_value "transport.faults.disconnects" > disc0)

(* ---------------- monitor resync ---------------- *)

let test_resync_snapshot () =
  let db = Ovsdb.Db.create Snvs.schema in
  let mon =
    Ovsdb.Db.add_monitor db
      (List.map
         (fun (t : Ovsdb.Schema.table) -> (t.tname, None))
         Snvs.schema.tables)
  in
  let link = Nerpa.Links.wire_mgmt db mon in
  ignore
    (Ovsdb.Db.insert_exn db "Port"
       [ ("name", Ovsdb.Datum.string "p1");
         ("port", Ovsdb.Datum.integer 1L);
         ("mode", Ovsdb.Datum.string "access");
         ("tag", Ovsdb.Datum.integer 10L);
         ("trunks", Ovsdb.Datum.set []) ]);
  match Transport.send link Nerpa.Links.Resync with
  | Ok (Nerpa.Links.Snapshot snap) ->
    Alcotest.(check int) "snapshot carries the row" 1
      (List.length (List.assoc "Port" snap));
    (* the queued batch was subsumed: a poll after resync is empty *)
    (match Transport.send link Nerpa.Links.Poll_monitor with
    | Ok (Nerpa.Links.Batches []) -> ()
    | _ -> Alcotest.fail "monitor should be drained by resync")
  | _ -> Alcotest.fail "resync should answer with a snapshot"

let deploy_faulty_mgmt ~seed ~faults () =
  let d =
    Snvs.deploy
      ~endpoint:
        (Nerpa.Endpoint.faulty_mgmt ~seed ~faults
           (Nerpa.Endpoint.planes ~mgmt:Nerpa.Endpoint.plane_wire
              ~p4_of:(fun _ -> Nerpa.Endpoint.plane_in_process)))
      ()
  in
  (d, Option.get (Nerpa.Controller.mgmt_ctl d.controller))

(* The resync differential: the same workload over a lossy management
   link — dropped and delayed monitor polls (delayed polls drain the
   monitor when replayed: true batch loss) plus a forced mid-stream
   disconnect — must end with switch state byte-identical to the
   fault-free run, and with *every* database row present in the engine:
   the old driver skipped failed polls and silently lost those
   transactions. *)
let test_mgmt_resync_differential () =
  let baseline =
    let d = Snvs.deploy () in
    run_workload d;
    converge d []
  in
  let faults =
    { Transport.drop = 0.15; duplicate = 0.10; delay = 0.15; disconnect = 0.05 }
  in
  let resync0 = Obs.counter_value "nerpa.resync.count" in
  List.iter
    (fun seed ->
      let d, ctl = deploy_faulty_mgmt ~seed ~faults () in
      (* kill the monitor stream mid-run: config landing while the link
         is down queues at the monitor; delayed replays lose it *)
      run_workload
        ~mid:(fun () -> Transport.force_disconnect ctl ~down_for:4 ())
        d;
      Transport.set_faults_enabled ctl false;
      Transport.heal ctl;
      (* a heal delivers still-delayed polls whose responses are
         discarded — loss with no error; nudge the driver exactly as a
         reconnect edge would *)
      Nerpa.Controller.mark_mgmt_dirty d.controller;
      sync d;
      feed_ready d ~port:2 host_a;
      feed_ready d ~port:2 host_b;
      feed_ready d ~port:3 host_c;
      sync d;
      Nerpa.Controller.reconcile d.controller "snvs0";
      Alcotest.(check string)
        (Printf.sprintf "mgmt seed %d converges to the fault-free state" seed)
        baseline (dump_switch d.switch);
      (* no transaction silently dropped: every management-plane row
         reached the engine despite the lost monitor batches *)
      let e = Nerpa.Controller.engine d.controller in
      List.iter
        (fun tbl ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d: all %s rows present" seed tbl)
            (Ovsdb.Db.row_count d.db tbl)
            (List.length (Dl.Engine.relation_rows e tbl)))
        [ "Port"; "Acl"; "Mirror"; "Vlan" ])
    [ 5; 17; 29 ];
  Alcotest.(check bool) "resync exercised" true
    (Obs.counter_value "nerpa.resync.count" > resync0)

let tests =
  [
    Alcotest.test_case "direct and wire links" `Quick test_direct_and_wire;
    Alcotest.test_case "faulty determinism" `Quick test_faulty_determinism;
    Alcotest.test_case "faulty disconnect and heal" `Quick
      test_faulty_disconnect_heal;
    Alcotest.test_case "heal keeps faults armed" `Quick
      test_heal_keeps_faults_armed;
    Alcotest.test_case "send_many order and results" `Quick
      test_send_many_order;
    Alcotest.test_case "p4runtime wire codec" `Quick test_p4_wire_codec;
    Alcotest.test_case "mgmt wire link" `Quick test_mgmt_wire_link;
    Alcotest.test_case "snvs over wire links" `Quick test_wire_p4_deployment;
    Alcotest.test_case "digest retransmission" `Quick
      test_digest_retransmission;
    Alcotest.test_case "digest dedup applies once" `Quick
      test_step_dedup_applies_once;
    Alcotest.test_case "step core is transport-free" `Quick
      test_step_is_transport_free;
    Alcotest.test_case "per-controller stats" `Quick test_per_controller_stats;
    Alcotest.test_case "reconcile after reconnect" `Quick
      test_reconcile_after_reconnect;
    Alcotest.test_case "fault-injection convergence" `Quick
      test_fault_injection_convergence;
    Alcotest.test_case "resync snapshot subsumes the monitor" `Quick
      test_resync_snapshot;
    Alcotest.test_case "mgmt resync differential" `Quick
      test_mgmt_resync_differential;
  ]
