(* Unit and property tests for the JSON codec. *)

let j_testable = Alcotest.testable Ovsdb.Json.pp Ovsdb.Json.equal

open Ovsdb

let test_parse_basics () =
  let cases =
    [
      ("null", Json.Null);
      ("true", Json.Bool true);
      ("false", Json.Bool false);
      ("42", Json.Int 42L);
      ("-7", Json.Int (-7L));
      ("3.5", Json.Float 3.5);
      ("1e3", Json.Float 1000.0);
      ({|"hello"|}, Json.String "hello");
      ({|"a\nb\"c\\d"|}, Json.String "a\nb\"c\\d");
      ("[]", Json.List []);
      ("[1, 2]", Json.List [ Json.Int 1L; Json.Int 2L ]);
      ("{}", Json.Obj []);
      ( {| {"a": 1, "b": [true, null]} |},
        Json.Obj
          [ ("a", Json.Int 1L); ("b", Json.List [ Json.Bool true; Json.Null ]) ] );
    ]
  in
  List.iter
    (fun (src, expected) ->
      Alcotest.check j_testable src expected (Json.of_string src))
    cases

let test_parse_unicode_escape () =
  Alcotest.check j_testable "ascii escape" (Json.String "A")
    (Json.of_string {|"A"|});
  Alcotest.check j_testable "two-byte utf8" (Json.String "\xc3\xa9")
    (Json.of_string {|"é"|})

let test_parse_errors () =
  List.iter
    (fun src ->
      match Json.of_string_opt src with
      | None -> ()
      | Some j ->
        Alcotest.failf "expected failure for %s, got %s" src (Json.to_string j))
    [ "{"; "[1,"; {|"unterminated|}; "tru"; "1 2"; "{\"a\" 1}"; "" ]

let test_print_escapes () =
  Alcotest.(check string) "escaped" {|"a\nb\"c"|}
    (Json.to_string (Json.String "a\nb\"c"));
  Alcotest.(check string) "float integral keeps point" "1.0"
    (Json.to_string (Json.Float 1.0))

(* Property: printing then parsing is the identity. *)
let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int (Int64.of_int i)) int;
              map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
            ]
        in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
              map
                (fun kvs ->
                  (* object keys must be unique for roundtrip equality *)
                  let seen = Hashtbl.create 4 in
                  Json.Obj
                    (List.filter
                       (fun (k, _) ->
                         if Hashtbl.mem seen k then false
                         else begin
                           Hashtbl.add seen k ();
                           true
                         end)
                       kvs))
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:printable (int_range 0 6)) (self (n / 2))));
            ]))

let prop_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"json print/parse roundtrip" gen_json
    (fun j -> Json.equal j (Json.of_string (Json.to_string j)))

let tests =
  [
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "unicode escapes" `Quick test_parse_unicode_escape;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print escapes" `Quick test_print_escapes;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
