(* Unit tests for the DL type checker and stratifier. *)

open Dl

let parse src = Parser.parse_program_exn src

let check_ok src =
  match Typecheck.check_program (parse src) with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "unexpected errors: %s" (String.concat "; " errs)

let check_fails ?(substring = "") src =
  match Typecheck.check_program (parse src) with
  | Ok () -> Alcotest.fail "expected a type error"
  | Error errs ->
    if substring <> "" then
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got: %s)" substring
           (String.concat "; " errs))
        true
        (List.exists
           (fun e ->
             let rec contains i =
               i + String.length substring <= String.length e
               && (String.sub e i (String.length substring) = substring
                  || contains (i + 1))
             in
             contains 0)
           errs)

let test_good_program () =
  check_ok
    {|
    input relation Edge(a: int, b: int)
    input relation GivenLabel(n: int, l: string)
    output relation Label(n: int, l: string)
    Label(n, l) :- GivenLabel(n, l).
    Label(n2, l) :- Label(n1, l), Edge(n1, n2).
    |}

let test_unknown_relation () =
  check_fails ~substring:"unknown relation"
    {|
    output relation O(x: int)
    O(x) :- Mystery(x).
    |}

let test_arity_mismatch () =
  check_fails ~substring:"arguments"
    {|
    input relation R(x: int, y: int)
    output relation O(x: int)
    O(x) :- R(x).
    |}

let test_column_type_mismatch () =
  check_fails
    {|
    input relation R(x: int)
    input relation S(x: string)
    output relation O(x: int)
    O(x) :- R(x), S(x).
    |}

let test_unbound_in_negation () =
  check_fails ~substring:"bound"
    {|
    input relation R(x: int)
    input relation S(x: int)
    output relation O(x: int)
    O(x) :- R(x), not S(y).
    |}

let test_unbound_head_var () =
  check_fails ~substring:"unbound"
    {|
    input relation R(x: int)
    output relation O(x: int, y: int)
    O(x, y) :- R(x).
    |}

let test_condition_not_bool () =
  check_fails ~substring:"boolean"
    {|
    input relation R(x: int)
    output relation O(x: int)
    O(x) :- R(x), x + 1.
    |}

let test_rebinding_rejected () =
  check_fails ~substring:"already bound"
    {|
    input relation R(x: int)
    output relation O(x: int)
    O(x) :- R(x), var x = 3.
    |}

let test_rule_into_input_rejected () =
  check_fails ~substring:"input"
    {|
    input relation R(x: int)
    input relation S(x: int)
    O(x) :- S(x).
    input relation O(x: int)
    |}

let test_agg_positions () =
  check_ok
    {|
    input relation R(x: int, y: int)
    output relation C(x: int, n: int)
    C(x, n) :- R(x, y), var n = count(y) group_by (x).
    |};
  check_fails ~substring:"last literal"
    {|
    input relation R(x: int, y: int)
    output relation C(x: int, n: int)
    C(x, n) :- R(x, y), var n = count(y) group_by (x), x > 0.
    |};
  (* Head may only use group variables and the aggregate output. *)
  check_fails ~substring:"unbound"
    {|
    input relation R(x: int, y: int)
    output relation C(x: int, n: int)
    C(y, n) :- R(x, y), var n = count(y) group_by (x).
    |}

let test_sum_needs_numeric () =
  check_fails ~substring:"sum"
    {|
    input relation R(x: int, s: string)
    output relation C(x: int, n: int)
    C(x, n) :- R(x, s), var n = sum(s) group_by (x).
    |}

let test_bit_width_arith () =
  check_fails
    {|
    input relation R(a: bit<8>, b: bit<16>)
    output relation O(x: bit<8>)
    O(c) :- R(a, b), var c = a + b.
    |};
  check_ok
    {|
    input relation R(a: bit<8>, b: bit<8>)
    output relation O(x: bit<8>)
    O(c) :- R(a, b), var c = a + b.
    |}

let test_duplicate_decl () =
  check_fails ~substring:"duplicate"
    {|
    input relation R(x: int)
    input relation R(y: string)
    |}

let test_bad_bit_width_decl () =
  check_fails ~substring:"width"
    {|
    input relation R(x: bit<65>)
    |}

(* --- lint --- *)

let test_lint_singleton_vars () =
  let p =
    parse
      {|
      input relation R(x: int, y: int)
      output relation O(x: int)
      O(x) :- R(x, y).
      O(x) :- R(x, _).
      O(x) :- R(x, _unused).
      |}
  in
  let warnings = Typecheck.lint p in
  Alcotest.(check int) "one warning" 1 (List.length warnings);
  Alcotest.(check bool) "names the variable" true
    (let w = List.hd warnings in
     let rec contains i =
       i + 10 <= String.length w
       && (String.sub w i 10 = "variable y" || contains (i + 1))
     in
     contains 0)

let test_lint_clean_program () =
  let p =
    parse
      {|
      input relation Edge(a: int, b: int)
      output relation Reach(a: int, b: int)
      Reach(a, b) :- Edge(a, b).
      Reach(a, c) :- Reach(a, b), Edge(b, c).
      |}
  in
  Alcotest.(check (list string)) "no warnings" [] (Typecheck.lint p)

(* --- stratification --- *)

let test_stratification_order () =
  let p =
    parse
      {|
      input relation Edge(a: int, b: int)
      relation Reach(a: int, b: int)
      output relation Unreach(a: int, b: int)
      input relation Node(n: int)
      Reach(a, b) :- Edge(a, b).
      Reach(a, c) :- Reach(a, b), Edge(b, c).
      Unreach(a, b) :- Node(a), Node(b), not Reach(a, b).
      |}
  in
  let strata = Stratify.stratify p in
  let index_of rel =
    let rec go i = function
      | [] -> Alcotest.failf "relation %s not in any stratum" rel
      | (s : Stratify.stratum) :: rest ->
        if List.mem rel s.relations then i else go (i + 1) rest
    in
    go 0 strata
  in
  Alcotest.(check bool) "Edge before Reach" true (index_of "Edge" < index_of "Reach");
  Alcotest.(check bool) "Reach before Unreach" true
    (index_of "Reach" < index_of "Unreach");
  let reach_stratum = List.nth strata (index_of "Reach") in
  Alcotest.(check bool) "Reach recursive" true reach_stratum.recursive;
  let unreach_stratum = List.nth strata (index_of "Unreach") in
  Alcotest.(check bool) "Unreach not recursive" false unreach_stratum.recursive

let test_unstratifiable_negation () =
  let p =
    parse
      {|
      input relation E(a: int)
      output relation P(a: int)
      output relation Q(a: int)
      P(a) :- E(a), not Q(a).
      Q(a) :- E(a), not P(a).
      |}
  in
  match Stratify.stratify p with
  | exception Stratify.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected Unstratifiable"

let test_unstratifiable_agg_cycle () =
  let p =
    parse
      {|
      input relation E(a: int)
      output relation P(a: int)
      P(n) :- P(a), var n = count(a) group_by (a).
      P(a) :- E(a).
      |}
  in
  match Stratify.stratify p with
  | exception Stratify.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected Unstratifiable"

let test_mutual_recursion_one_stratum () =
  let p =
    parse
      {|
      input relation E(a: int, b: int)
      output relation Even(a: int)
      output relation Odd(a: int)
      Even(0).
      Odd(b) :- Even(a), E(a, b).
      Even(b) :- Odd(a), E(a, b).
      |}
  in
  let strata = Stratify.stratify p in
  let s =
    List.find
      (fun (s : Stratify.stratum) -> List.mem "Even" s.relations)
      strata
  in
  Alcotest.(check bool) "Even and Odd share a stratum" true
    (List.mem "Odd" s.relations);
  Alcotest.(check bool) "recursive" true s.recursive

let tests =
  [
    Alcotest.test_case "well-typed program" `Quick test_good_program;
    Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "column type mismatch" `Quick test_column_type_mismatch;
    Alcotest.test_case "unbound var in negation" `Quick test_unbound_in_negation;
    Alcotest.test_case "unbound head var" `Quick test_unbound_head_var;
    Alcotest.test_case "non-boolean condition" `Quick test_condition_not_bool;
    Alcotest.test_case "rebinding rejected" `Quick test_rebinding_rejected;
    Alcotest.test_case "rules into inputs rejected" `Quick
      test_rule_into_input_rejected;
    Alcotest.test_case "aggregate placement" `Quick test_agg_positions;
    Alcotest.test_case "sum needs numeric" `Quick test_sum_needs_numeric;
    Alcotest.test_case "bit width arithmetic" `Quick test_bit_width_arith;
    Alcotest.test_case "duplicate declaration" `Quick test_duplicate_decl;
    Alcotest.test_case "bad bit width" `Quick test_bad_bit_width_decl;
    Alcotest.test_case "lint singleton vars" `Quick test_lint_singleton_vars;
    Alcotest.test_case "lint clean program" `Quick test_lint_clean_program;
    Alcotest.test_case "stratification order" `Quick test_stratification_order;
    Alcotest.test_case "unstratifiable negation" `Quick
      test_unstratifiable_negation;
    Alcotest.test_case "unstratifiable aggregate" `Quick
      test_unstratifiable_agg_cycle;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion_one_stratum;
  ]
