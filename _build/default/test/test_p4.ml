(* Tests for the mini-P4 data plane: packets, parsing, tables, actions,
   digests, multicast, and the behavioural switch pipeline. *)

open P4

(* ---------------- packets ---------------- *)

let test_packet_bits () =
  let p = Packet.create 4 in
  Packet.set_bits p ~bit_offset:4 ~width:12 0xABCL;
  Alcotest.(check int64) "read back" 0xABCL (Packet.get_bits p ~bit_offset:4 ~width:12);
  (* neighbours untouched *)
  Alcotest.(check int64) "prefix zero" 0L (Packet.get_bits p ~bit_offset:0 ~width:4);
  Alcotest.(check int64) "suffix zero" 0L (Packet.get_bits p ~bit_offset:16 ~width:16);
  Packet.set_bits p ~bit_offset:0 ~width:32 0xDEADBEEFL;
  Alcotest.(check int64) "full word" 0xDEADBEEFL
    (Packet.get_bits p ~bit_offset:0 ~width:32);
  Alcotest.check_raises "out of bounds"
    (Packet.Out_of_bounds "bits [24, 40) of a 4-byte packet") (fun () ->
      ignore (Packet.get_bits p ~bit_offset:24 ~width:16))

let test_packet_hex () =
  let p = Packet.of_hex "deadbeef" in
  Alcotest.(check string) "roundtrip" "deadbeef" (Packet.to_hex p);
  Alcotest.(check int64) "value" 0xdeadbeefL (Packet.get_bits p ~bit_offset:0 ~width:32)

let test_checksum () =
  (* RFC 1071 example: checksum of 0x0001 0xf203 0xf4f5 0xf6f7 *)
  let p = Packet.of_hex "0001f203f4f5f6f7" in
  Alcotest.(check int) "rfc1071" (lnot 0xddf2 land 0xffff)
    (Packet.internet_checksum p)

let test_mac_ip_strings () =
  Alcotest.(check int64) "mac" 0x0000112233445566L
    (Stdhdrs.mac_of_string "11:22:33:44:55:66");
  Alcotest.(check string) "mac back" "11:22:33:44:55:66"
    (Stdhdrs.mac_to_string 0x112233445566L);
  Alcotest.(check int64) "ip" 0xC0A80101L (Stdhdrs.ipv4_of_string "192.168.1.1");
  Alcotest.(check string) "ip back" "10.0.0.255" (Stdhdrs.ipv4_to_string 0x0A0000FFL)

(* ---------------- a small L2 program ---------------- *)

let l2_program : Program.t =
  let open Program in
  {
    name = "l2";
    headers = [ Stdhdrs.ethernet; Stdhdrs.vlan ];
    parser =
      {
        start = "start";
        states =
          [
            { sname = "start"; extracts = [ "ethernet" ];
              transition =
                Select
                  (Field ("ethernet", "ethertype"),
                   [ (Some Stdhdrs.ethertype_vlan, "parse_vlan"); (None, "done") ]) };
            { sname = "parse_vlan"; extracts = [ "vlan" ]; transition = Accept };
            { sname = "done"; extracts = []; transition = Accept };
          ];
      };
    actions =
      [
        { aname = "learn"; params = [];
          body = [ EmitDigest "mac_learn" ] };
        { aname = "noop"; params = []; body = [] };
        { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
        { aname = "flood"; params = [ ("group", 16) ];
          body = [ Multicast (EParam "group") ] };
        { aname = "drop"; params = []; body = [ Drop ] };
        { aname = "count_ip"; params = [];
          body = [ Count ("per_port", ERef (Meta "ingress_port")) ] };
      ];
    tables =
      [
        { tname = "smac";
          keys = [ { kref = Field ("ethernet", "src"); kind = Exact } ];
          actions = [ "noop"; "learn" ];
          default_action = ("learn", []);
          size = 1024 };
        { tname = "dmac";
          keys = [ { kref = Field ("ethernet", "dst"); kind = Exact } ];
          actions = [ "forward"; "flood"; "drop" ];
          default_action = ("flood", [ 1L ]);
          size = 1024 };
      ];
    digests =
      [ { dname = "mac_learn";
          dfields =
            [ ("mac", Field ("ethernet", "src")); ("port", Meta "ingress_port") ] } ];
    counters = [ { cname = "per_port"; cwidth = 16 } ];
    registers = [];
    ingress =
      Seq (ApplyTable "smac", Seq (ApplyTable "dmac", If (EValid "vlan", Nop, Nop)));
    egress = Nop;
  }

let mac = Stdhdrs.mac_of_string
let frame ~dst ~src = Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x1234L ~payload:"hello"

let test_typecheck_good () =
  match Program.typecheck l2_program with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "unexpected: %s" (String.concat "; " errs)

let test_typecheck_errors () =
  let bad_width =
    { l2_program with
      actions =
        { Program.aname = "bad"; params = [];
          body = [ Program.Assign (Program.Field ("ethernet", "dst"),
                                   Program.EConst (16, 1L)) ] }
        :: l2_program.actions }
  in
  Alcotest.(check bool) "assign width mismatch" true
    (Result.is_error (Program.typecheck bad_width));
  let bad_table =
    { l2_program with
      tables =
        [ { Program.tname = "t"; keys = [];
            actions = [ "missing" ]; default_action = ("missing", []); size = 8 } ] }
  in
  Alcotest.(check bool) "unknown action" true
    (Result.is_error (Program.typecheck bad_table));
  let bad_state =
    { l2_program with
      parser = { Program.start = "nowhere"; states = [] } }
  in
  Alcotest.(check bool) "unknown start state" true
    (Result.is_error (Program.typecheck bad_state))

let test_parse_deparse_roundtrip () =
  let sw = Switch.create ~ports:[ 1; 2; 3 ] l2_program in
  (* A frame through the default pipeline (flood to empty group 1 ->
     no outputs, but parse+deparse is exercised via a forward entry). *)
  let info = P4info.of_program l2_program in
  let srv = P4runtime.attach sw in
  ignore srv;
  ignore info;
  Switch.insert_entry sw "dmac"
    { Entry.matches = [ Entry.MExact (mac "aa:00:00:00:00:02") ];
      priority = 0; action = "forward"; args = [ 2L ] };
  let pkt = frame ~dst:(mac "aa:00:00:00:00:02") ~src:(mac "aa:00:00:00:00:01") in
  match Switch.process sw ~in_port:1 pkt with
  | [ (2, out) ] ->
    Alcotest.(check string) "byte-identical roundtrip" (Packet.to_hex pkt)
      (Packet.to_hex out)
  | outs -> Alcotest.failf "expected 1 output on port 2, got %d" (List.length outs)

let test_vlan_parse () =
  let sw = Switch.create l2_program in
  Switch.insert_entry sw "dmac"
    { Entry.matches = [ Entry.MExact 0x1L ]; priority = 0;
      action = "forward"; args = [ 7L ] };
  let pkt =
    Stdhdrs.vlan_frame ~dst:0x1L ~src:0x2L ~vid:42L ~ethertype:0x0800L ~payload:"xy"
  in
  match Switch.process sw ~in_port:3 pkt with
  | [ (7, out) ] ->
    (* the vlan tag survives the roundtrip *)
    Alcotest.(check int64) "tpid" Stdhdrs.ethertype_vlan
      (Packet.get_bits out ~bit_offset:96 ~width:16);
    Alcotest.(check int64) "vid" 42L (Packet.get_bits out ~bit_offset:116 ~width:12)
  | _ -> Alcotest.fail "vlan frame not forwarded"

let test_digest_and_learning () =
  let sw = Switch.create l2_program in
  let pkt = frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "aa:00:00:00:00:09") in
  ignore (Switch.process sw ~in_port:5 pkt);
  match Switch.take_digests sw with
  | [ { digest_name = "mac_learn"; values } ] ->
    Alcotest.(check int64) "mac field" (mac "aa:00:00:00:00:09")
      (List.assoc "mac" values);
    Alcotest.(check int64) "port field" 5L (List.assoc "port" values);
    Alcotest.(check int) "queue drained" 0 (List.length (Switch.take_digests sw))
  | ds -> Alcotest.failf "expected 1 digest, got %d" (List.length ds)

let test_multicast_flood () =
  let sw = Switch.create l2_program in
  Switch.set_mcast_group sw 1L [ 1L; 2L; 3L ];
  let pkt = frame ~dst:(mac "ff:ff:ff:ff:ff:ff") ~src:(mac "aa:00:00:00:00:01") in
  let outs = Switch.process sw ~in_port:2 pkt in
  let ports = List.sort Int.compare (List.map fst outs) in
  Alcotest.(check (list int)) "flooded to all but ingress" [ 1; 3 ] ports

let test_counters () =
  let sw = Switch.create l2_program in
  Switch.insert_entry sw "smac"
    { Entry.matches = [ Entry.MExact 5L ]; priority = 0;
      action = "noop"; args = [] };
  Switch.insert_entry sw "dmac"
    { Entry.matches = [ Entry.MExact 6L ]; priority = 0;
      action = "drop"; args = [] };
  ignore (Switch.process sw ~in_port:4 (frame ~dst:6L ~src:5L));
  (* counter untouched (count_ip not reachable in this program) *)
  Alcotest.(check int64) "counter zero" 0L (Switch.counter_value sw "per_port" 4L);
  let s = Switch.stats sw "dmac" in
  Alcotest.(check int) "dmac hit" 1 s.Switch.hits

let test_table_full () =
  let prog =
    { l2_program with
      tables =
        List.map
          (fun (t : Program.table) ->
            if t.tname = "dmac" then { t with size = 1 } else t)
          l2_program.tables }
  in
  let sw = Switch.create prog in
  let e v =
    { Entry.matches = [ Entry.MExact v ]; priority = 0;
      action = "drop"; args = [] }
  in
  Switch.insert_entry sw "dmac" (e 1L);
  (match Switch.insert_entry sw "dmac" (e 2L) with
  | exception Switch.Switch_error _ -> ()
  | () -> Alcotest.fail "expected table-full error");
  (* replacing the existing entry is fine *)
  Switch.insert_entry sw "dmac" { (e 1L) with action = "flood"; args = [ 1L ] }

(* ---------------- LPM and ternary semantics ---------------- *)

let lpm_program : Program.t =
  let open Program in
  {
    name = "router";
    headers = [ Stdhdrs.ethernet; Stdhdrs.ipv4 ];
    parser =
      {
        start = "start";
        states =
          [
            { sname = "start"; extracts = [ "ethernet" ];
              transition =
                Select
                  (Field ("ethernet", "ethertype"),
                   [ (Some Stdhdrs.ethertype_ipv4, "ip"); (None, "other") ]) };
            { sname = "ip"; extracts = [ "ipv4" ]; transition = Accept };
            { sname = "other"; extracts = []; transition = Accept };
          ];
      };
    actions =
      [
        { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
        { aname = "drop"; params = []; body = [ Drop ] };
      ];
    tables =
      [
        { tname = "routes";
          keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm } ];
          actions = [ "forward"; "drop" ];
          default_action = ("drop", []);
          size = 1024 };
        { tname = "acl";
          keys =
            [ { kref = Field ("ipv4", "src"); kind = Ternary };
              { kref = Field ("ipv4", "protocol"); kind = Optional } ];
          actions = [ "forward"; "drop" ];
          default_action = ("forward", [ 99L ]);
          size = 64 };
      ];
    digests = [];
    counters = [];
    registers = [];
    ingress = Seq (ApplyTable "acl", ApplyTable "routes");
    egress = Nop;
  }

let udp_to dst =
  Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L
    ~ip_src:(Stdhdrs.ipv4_of_string "10.0.0.1")
    ~ip_dst:(Stdhdrs.ipv4_of_string dst) ~src_port:1000L ~dst_port:53L
    ~payload:"q"

let test_lpm_longest_prefix_wins () =
  let sw = Switch.create lpm_program in
  let route prefix len port =
    Switch.insert_entry sw "routes"
      { Entry.matches = [ Entry.MLpm (Stdhdrs.ipv4_of_string prefix, len) ];
        priority = 0; action = "forward"; args = [ port ] }
  in
  route "10.0.0.0" 8 1L;
  route "10.1.0.0" 16 2L;
  route "10.1.2.0" 24 3L;
  let out_port dst =
    match Switch.process sw ~in_port:9 (udp_to dst) with
    | [ (p, _) ] -> p
    | [] -> -1
    | _ -> Alcotest.fail "multiple outputs"
  in
  Alcotest.(check int) "/8" 1 (out_port "10.9.9.9");
  Alcotest.(check int) "/16 beats /8" 2 (out_port "10.1.9.9");
  Alcotest.(check int) "/24 beats /16" 3 (out_port "10.1.2.9");
  Alcotest.(check int) "default drop" (-1) (out_port "11.0.0.1")

let test_ternary_priority () =
  let sw = Switch.create lpm_program in
  Switch.insert_entry sw "routes"
    { Entry.matches = [ Entry.MLpm (0L, 0) ]; priority = 0;
      action = "forward"; args = [ 5L ] };
  (* Low priority: drop everything from 10.0.0.0/8 (ternary mask). *)
  Switch.insert_entry sw "acl"
    { Entry.matches =
        [ Entry.MTernary (Stdhdrs.ipv4_of_string "10.0.0.0", 0xFF000000L);
          Entry.MAny ];
      priority = 1; action = "drop"; args = [] };
  (* High priority: allow UDP (protocol 17) from the same range. *)
  Switch.insert_entry sw "acl"
    { Entry.matches =
        [ Entry.MTernary (Stdhdrs.ipv4_of_string "10.0.0.0", 0xFF000000L);
          Entry.MExact 17L ];
      priority = 10; action = "forward"; args = [ 5L ] };
  match Switch.process sw ~in_port:1 (udp_to "8.8.8.8") with
  | [ (5, _) ] -> (
    (* UDP from 10/8 matches both acl entries; priority 10 must win. *)
    match Switch.process sw ~in_port:1 (udp_to "9.9.9.9") with
    | [ (5, _) ] -> ()
    | _ -> Alcotest.fail "default acl path broken")
  | _ -> Alcotest.fail "non-acl traffic broken"

let test_truncated_packet_rejected () =
  let sw = Switch.create lpm_program in
  let tiny = Packet.of_hex "001122" in
  Alcotest.(check int) "truncated frame dropped" 0
    (List.length (Switch.process sw ~in_port:1 tiny))

(* ---------------- registers: a stateful rate limiter ---------------- *)

(* A program using v1model-style registers: it counts packets per
   source MAC in a register array and drops once a source exceeds a
   budget of 3 packets — all in the data plane, no controller. *)
let limiter_program : Program.t =
  let open Program in
  {
    name = "limiter";
    headers = [ Stdhdrs.ethernet ];
    parser =
      { start = "s";
        states = [ { sname = "s"; extracts = [ "ethernet" ]; transition = Accept } ] };
    actions =
      [
        { aname = "police"; params = [];
          body =
            [
              (* seen = reg[src]; reg[src] = seen + 1; drop if seen >= 3 *)
              RegRead (Meta "tmp0", "seen", ERef (Field ("ethernet", "src")));
              RegWrite
                ( "seen",
                  ERef (Field ("ethernet", "src")),
                  EBin (Add, ERef (Meta "tmp0"), EConst (16, 1L)) );
            ] };
        { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
      ];
    tables =
      [
        { tname = "police_t"; keys = []; actions = [ "police" ];
          default_action = ("police", []); size = 1 };
        { tname = "fwd";
          keys = [ { kref = Field ("ethernet", "dst"); kind = Exact } ];
          actions = [ "forward" ];
          default_action = ("forward", [ 2L ]);
          size = 16 };
      ];
    digests = []; counters = [];
    registers = [ { rname = "seen"; rwidth = 16 } ];
    ingress =
      Seq
        ( ApplyTable "police_t",
          If
            ( EBin (Ge, ERef (Meta "tmp0"), EConst (16, 3L)),
              Nop,
              ApplyTable "fwd" ) );
    egress = Nop;
  }

let test_registers_rate_limit () =
  let sw = Switch.create limiter_program in
  let pkt = frame ~dst:1L ~src:42L in
  let deliveries =
    List.init 5 (fun _ -> List.length (Switch.process sw ~in_port:1 pkt))
  in
  (* the first three packets flow; the budget then cuts the source off *)
  Alcotest.(check (list int)) "first 3 pass, rest dropped" [ 1; 1; 1; 0; 0 ]
    deliveries;
  Alcotest.(check int64) "register counted" 5L (Switch.register_value sw "seen" 42L);
  (* another source has its own budget *)
  Alcotest.(check int) "other source unaffected" 1
    (List.length (Switch.process sw ~in_port:1 (frame ~dst:1L ~src:43L)));
  (* the control plane can reset the budget *)
  Switch.register_write sw "seen" 42L 0L;
  Alcotest.(check int) "reset restores service" 1
    (List.length (Switch.process sw ~in_port:1 pkt))

let test_register_typecheck () =
  let bad_width =
    { limiter_program with
      actions =
        { Program.aname = "bad"; params = [];
          body = [ Program.RegWrite ("seen",
                                     Program.EConst (16, 0L),
                                     Program.EConst (8, 0L)) ] }
        :: limiter_program.actions }
  in
  Alcotest.(check bool) "regwrite width mismatch" true
    (Result.is_error (Program.typecheck bad_width));
  let unknown =
    { limiter_program with
      actions =
        { Program.aname = "bad"; params = [];
          body = [ Program.RegRead (Program.Meta "tmp0", "nope",
                                    Program.EConst (16, 0L)) ] }
        :: limiter_program.actions }
  in
  Alcotest.(check bool) "unknown register" true
    (Result.is_error (Program.typecheck unknown))

(* ---------------- P4Info ---------------- *)

let test_p4info () =
  let info = P4info.of_program l2_program in
  Alcotest.(check int) "tables" 2 (List.length info.tables);
  let dmac = Option.get (P4info.find_table info "dmac") in
  Alcotest.(check (list string)) "key names" [ "ethernet.dst" ] dmac.key_names;
  Alcotest.(check (list int)) "key widths" [ 48 ] dmac.key_widths;
  (* ids are stable across constructions *)
  let info2 = P4info.of_program l2_program in
  let dmac2 = Option.get (P4info.find_table info2 "dmac") in
  Alcotest.(check int) "stable ids" dmac.table_id dmac2.table_id;
  Alcotest.(check bool) "id lookup" true
    (P4info.find_table_by_id info dmac.table_id = Some dmac);
  let learn = Option.get (P4info.find_digest info "mac_learn") in
  Alcotest.(check (list int)) "digest widths" [ 48; 16 ] learn.field_widths

(* ---------------- P4Runtime ---------------- *)

let test_p4runtime_write_read () =
  let sw = Switch.create l2_program in
  let srv = P4runtime.attach sw in
  let info = P4runtime.info srv in
  let e =
    P4runtime.entry info ~table:"dmac"
      ~matches:[ P4runtime.FmExact 0xAAL ]
      ~action:"forward" ~args:[ 3L ] ()
  in
  P4runtime.write_exn srv [ P4runtime.insert e ];
  Alcotest.(check int) "entry installed" 1 (Switch.entry_count sw "dmac");
  (* duplicate insert fails *)
  Alcotest.(check bool) "duplicate insert" true
    (Result.is_error (P4runtime.write srv [ P4runtime.insert e ]));
  (* modify changes the action args *)
  P4runtime.write_exn srv [ P4runtime.modify { e with action_args = [ 4L ] } ];
  (match P4runtime.read_table srv ~table_id:e.P4runtime.table_id with
  | [ e' ] -> Alcotest.(check bool) "modified" true (e'.P4runtime.action_args = [ 4L ])
  | _ -> Alcotest.fail "read back");
  P4runtime.write_exn srv [ P4runtime.delete e ];
  Alcotest.(check int) "deleted" 0 (Switch.entry_count sw "dmac");
  (* modify of a missing entry fails *)
  Alcotest.(check bool) "modify missing" true
    (Result.is_error (P4runtime.write srv [ P4runtime.modify e ]))

let test_p4runtime_batch_atomicity () =
  let sw = Switch.create l2_program in
  let srv = P4runtime.attach sw in
  let info = P4runtime.info srv in
  let e v =
    P4runtime.entry info ~table:"dmac" ~matches:[ P4runtime.FmExact v ]
      ~action:"forward" ~args:[ 3L ] ()
  in
  (* Second update is invalid (wrong arity): the first must roll back. *)
  let bad = { (e 2L) with P4runtime.action_args = [] } in
  (match P4runtime.write srv [ P4runtime.insert (e 1L); P4runtime.insert bad ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected batch failure");
  Alcotest.(check int) "rolled back" 0 (Switch.entry_count sw "dmac")

let test_p4runtime_digest_stream () =
  let sw = Switch.create l2_program in
  let srv = P4runtime.attach sw in
  ignore (Switch.process sw ~in_port:1 (frame ~dst:9L ~src:7L));
  ignore (Switch.process sw ~in_port:2 (frame ~dst:9L ~src:8L));
  (match P4runtime.stream_digests srv with
  | [ dl ] ->
    Alcotest.(check int) "two entries batched" 2 (List.length dl.P4runtime.entries);
    Alcotest.(check int) "unacked" 1 (List.length (P4runtime.unacked_digests srv));
    P4runtime.ack_digest_list srv ~list_id:dl.P4runtime.list_id;
    Alcotest.(check int) "acked" 0 (List.length (P4runtime.unacked_digests srv))
  | dls -> Alcotest.failf "expected 1 digest list, got %d" (List.length dls));
  Alcotest.(check int) "stream drained" 0 (List.length (P4runtime.stream_digests srv))

let test_p4runtime_multicast () =
  let sw = Switch.create l2_program in
  let srv = P4runtime.attach sw in
  P4runtime.write_exn srv [ P4runtime.set_multicast ~group:1L ~ports:[ 1L; 2L ] ];
  Alcotest.(check bool) "group set" true
    (Switch.mcast_group sw 1L = Some [ 1L; 2L ])

let tests =
  [
    Alcotest.test_case "packet bit fields" `Quick test_packet_bits;
    Alcotest.test_case "packet hex" `Quick test_packet_hex;
    Alcotest.test_case "internet checksum" `Quick test_checksum;
    Alcotest.test_case "mac/ip strings" `Quick test_mac_ip_strings;
    Alcotest.test_case "typecheck good program" `Quick test_typecheck_good;
    Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors;
    Alcotest.test_case "parse/deparse roundtrip" `Quick test_parse_deparse_roundtrip;
    Alcotest.test_case "vlan parsing" `Quick test_vlan_parse;
    Alcotest.test_case "digest emission" `Quick test_digest_and_learning;
    Alcotest.test_case "multicast flood" `Quick test_multicast_flood;
    Alcotest.test_case "counters and stats" `Quick test_counters;
    Alcotest.test_case "table capacity" `Quick test_table_full;
    Alcotest.test_case "registers rate limit" `Quick test_registers_rate_limit;
    Alcotest.test_case "register typecheck" `Quick test_register_typecheck;
    Alcotest.test_case "lpm longest prefix" `Quick test_lpm_longest_prefix_wins;
    Alcotest.test_case "ternary priority" `Quick test_ternary_priority;
    Alcotest.test_case "truncated packet" `Quick test_truncated_packet_rejected;
    Alcotest.test_case "p4info" `Quick test_p4info;
    Alcotest.test_case "p4runtime write/read" `Quick test_p4runtime_write_read;
    Alcotest.test_case "p4runtime batch atomicity" `Quick
      test_p4runtime_batch_atomicity;
    Alcotest.test_case "p4runtime digest stream" `Quick test_p4runtime_digest_stream;
    Alcotest.test_case "p4runtime multicast" `Quick test_p4runtime_multicast;
  ]
