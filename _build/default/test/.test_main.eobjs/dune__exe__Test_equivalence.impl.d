test/test_equivalence.ml: Alcotest Array Baseline Dl Int64 List Nerpa Option Ovsdb P4 Printf Random Snvs String
