test/test_l3router.ml: Alcotest Dl Int L3router List Nerpa P4 Printf
