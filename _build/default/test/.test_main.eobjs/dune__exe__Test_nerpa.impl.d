test/test_nerpa.ml: Alcotest Array Ast Dl Dtype Int List Nerpa Option Ovsdb P4 P4runtime Parser Snvs String Value
