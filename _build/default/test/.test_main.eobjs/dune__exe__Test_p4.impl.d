test/test_p4.ml: Alcotest Entry Int List Option P4 P4info P4runtime Packet Program Result Stdhdrs String Switch
