test/test_dl_props.ml: Array Ast Dl Engine Hashtbl List Naive Parser QCheck2 QCheck_alcotest Row Value Zset
