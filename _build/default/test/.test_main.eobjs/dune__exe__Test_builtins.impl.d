test/test_builtins.ml: Alcotest Array Builtins Dl Dtype Engine List Parser Printf Row Value
