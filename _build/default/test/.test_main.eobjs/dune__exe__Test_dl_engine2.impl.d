test/test_dl_engine2.ml: Alcotest Array Buffer Builtins Dl Engine List Parser Printf Row String Value Zset
