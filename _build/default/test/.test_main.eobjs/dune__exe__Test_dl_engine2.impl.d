test/test_dl_engine2.ml: Alcotest Array Buffer Dl Engine List Parser Printf Value Zset
