test/test_p4_props.ml: Int64 List Ovsdb P4 QCheck2 QCheck_alcotest
