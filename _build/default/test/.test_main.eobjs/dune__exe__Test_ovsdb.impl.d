test/test_ovsdb.ml: Alcotest Atom Datum Db Json List Option Otype Ovsdb Result Rpc Schema String Uuid
