test/test_baseline.ml: Alcotest Baseline Char Incr Int Int64 List Nerpa Ofp4 P4 Printf Random Snvs String
