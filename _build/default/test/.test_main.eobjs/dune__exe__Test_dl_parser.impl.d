test/test_dl_parser.ml: Alcotest Array Ast Dl Dtype Format List Option Parser String Value
