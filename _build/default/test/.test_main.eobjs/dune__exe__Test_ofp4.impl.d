test/test_ofp4.ml: Alcotest Compile Int Int64 List Ofp4 Openflow P4 Random Snvs String
