test/test_dl_engine.ml: Alcotest Array Ast Dl Engine Format Hashtbl List Naive Parser Printf Row Typecheck Value Zset
