test/test_obs.ml: Alcotest Array Obs String
