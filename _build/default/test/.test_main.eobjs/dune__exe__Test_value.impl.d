test/test_value.ml: Alcotest Dl Dtype Format List Option Value
