test/test_zset.ml: Alcotest Array Dl List Row Value Zset
