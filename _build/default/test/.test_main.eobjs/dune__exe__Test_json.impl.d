test/test_json.ml: Alcotest Hashtbl Int64 Json List Ovsdb QCheck2 QCheck_alcotest
