test/test_dl_typecheck.ml: Alcotest Dl List Parser Printf Stratify String Typecheck
