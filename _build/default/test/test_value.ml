(* Unit tests for Dl.Value and Dl.Dtype. *)

open Dl

let v_testable = Alcotest.testable Value.pp Value.equal

let test_bit_masking () =
  Alcotest.check v_testable "mask to width" (Value.bit 4 0x5L) (Value.bit 4 0xF5L);
  Alcotest.check v_testable "width 64 unchanged"
    (Value.VBit (64, -1L)) (Value.bit 64 (-1L));
  Alcotest.check_raises "width 0 rejected"
    (Invalid_argument "Value.bit: width out of range") (fun () ->
      ignore (Value.bit 0 1L))

let test_compare_total_order () =
  let values =
    [ Value.VBool false; Value.VBool true; Value.of_int 1; Value.bit 8 3L;
      Value.of_string "a"; Value.VTuple [| Value.of_int 1 |];
      Value.VOption None; Value.VOption (Some (Value.of_int 1));
      Value.VVec [ Value.of_int 2 ]; Value.VMap [ (Value.of_int 1, Value.of_int 2) ] ]
  in
  (* Reflexivity and antisymmetry on a cross product. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetric" true (c1 = -c2 || (c1 = 0 && c2 = 0)))
        values;
      Alcotest.(check int) "reflexive" 0 (Value.compare a a))
    values

let test_compare_int_vs_bit () =
  (* Ints and bit vectors are distinct values even with equal payloads. *)
  Alcotest.(check bool) "int <> bit" false
    (Value.equal (Value.of_int 5) (Value.bit 8 5L));
  Alcotest.(check bool) "bit widths distinguish" false
    (Value.equal (Value.bit 8 5L) (Value.bit 9 5L))

let test_map_ops () =
  let m =
    Value.map_insert (Value.of_int 2) (Value.of_string "b")
      (Value.map_insert (Value.of_int 1) (Value.of_string "a") [])
  in
  Alcotest.check v_testable "find existing"
    (Value.of_string "a")
    (Option.get (Value.map_find (Value.of_int 1) m));
  Alcotest.(check bool) "find missing" true
    (Value.map_find (Value.of_int 3) m = None);
  let m' = Value.map_insert (Value.of_int 1) (Value.of_string "z") m in
  Alcotest.check v_testable "overwrite"
    (Value.of_string "z")
    (Option.get (Value.map_find (Value.of_int 1) m'));
  Alcotest.(check int) "overwrite keeps size" 2 (List.length m');
  Alcotest.(check int) "remove" 1
    (List.length (Value.map_remove (Value.of_int 1) m'))

let test_map_sorted_invariant () =
  let m =
    List.fold_left
      (fun m i -> Value.map_insert (Value.of_int i) (Value.of_int (i * 10)) m)
      [] [ 5; 1; 3; 2; 4 ]
  in
  let keys = List.map (fun (k, _) -> k) m in
  Alcotest.(check bool) "keys sorted" true
    (List.sort Value.compare keys = keys)

let test_pp_roundtrippable_forms () =
  Alcotest.(check string) "bit" "12'd255" (Value.to_string (Value.bit 12 255L));
  Alcotest.(check string) "tuple" "(1, true)"
    (Value.to_string (Value.VTuple [| Value.of_int 1; Value.VBool true |]));
  Alcotest.(check string) "string quoted" "\"x\\\"y\""
    (Value.to_string (Value.of_string "x\"y"))

let test_dtype_check () =
  let open Dtype in
  Alcotest.(check bool) "bit width match" true (check (TBit 4) (Value.bit 4 1L));
  Alcotest.(check bool) "bit width mismatch" false (check (TBit 4) (Value.bit 5 1L));
  Alcotest.(check bool) "tuple" true
    (check (TTuple [ TInt; TBool ])
       (Value.VTuple [| Value.of_int 1; Value.VBool true |]));
  Alcotest.(check bool) "tuple arity" false
    (check (TTuple [ TInt ]) (Value.VTuple [| Value.of_int 1; Value.VBool true |]));
  Alcotest.(check bool) "vec elements" false
    (check (TVec TInt) (Value.VVec [ Value.of_int 1; Value.VBool true ]));
  Alcotest.(check bool) "option none always fits" true
    (check (TOption TString) (Value.VOption None))

let test_dtype_default () =
  let open Dtype in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Format.asprintf "default inhabits %a" pp t)
        true
        (check t (default t)))
    [ TBool; TInt; TBit 7; TString; TTuple [ TInt; TBool ]; TOption TInt;
      TVec TString; TMap (TInt, TBool) ]

let test_dtype_unify () =
  let open Dtype in
  Alcotest.(check bool) "any unifies" true
    (unify (TVec TAny) (TVec TInt) = Some (TVec TInt));
  Alcotest.(check bool) "mismatch fails" true (unify TInt TBool = None);
  Alcotest.(check bool) "bit widths" true (unify (TBit 3) (TBit 4) = None)

let tests =
  [
    Alcotest.test_case "bit masking" `Quick test_bit_masking;
    Alcotest.test_case "total order" `Quick test_compare_total_order;
    Alcotest.test_case "int vs bit" `Quick test_compare_int_vs_bit;
    Alcotest.test_case "map operations" `Quick test_map_ops;
    Alcotest.test_case "map sorted invariant" `Quick test_map_sorted_invariant;
    Alcotest.test_case "pretty printing" `Quick test_pp_roundtrippable_forms;
    Alcotest.test_case "dtype check" `Quick test_dtype_check;
    Alcotest.test_case "dtype default" `Quick test_dtype_default;
    Alcotest.test_case "dtype unify" `Quick test_dtype_unify;
  ]
