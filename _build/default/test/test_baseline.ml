(* Tests for the imperative baselines, including the differential tests
   that pin them to the declarative implementations they are compared
   against in the benchmarks. *)

let sorted_pairs l =
  List.sort (fun (a1, b1) (a2, b2) ->
      let c = Int.compare a1 a2 in
      if c <> 0 then c else String.compare b1 b2)
    l

(* ---------------- label baselines ---------------- *)

let test_full_recompute_basic () =
  let labels =
    Baseline.Label_baseline.full_recompute
      ~edges:[ (1, 2); (2, 3); (4, 5) ]
      ~given:[ (1, "red") ]
  in
  Alcotest.(check (list (pair int string)))
    "reachable labels"
    [ (1, "red"); (2, "red"); (3, "red") ]
    (sorted_pairs labels)

let test_incr_matches_full_on_random_traces () =
  (* Random edge/label updates; after every step the hand-incremental
     state must equal a from-scratch recompute. *)
  let r = Random.State.make [| 7 |] in
  for _trial = 0 to 30 do
    let incr = Baseline.Label_baseline.Incr.create () in
    let edges = ref [] and given = ref [] in
    for _step = 0 to 40 do
      let a = Random.State.int r 6 and b = Random.State.int r 6 in
      (match Random.State.int r 4 with
      | 0 ->
        if a <> b && not (List.mem (a, b) !edges) then begin
          edges := (a, b) :: !edges;
          Baseline.Label_baseline.Incr.add_edge incr a b
        end
      | 1 ->
        if List.mem (a, b) !edges then begin
          edges := List.filter (fun e -> e <> (a, b)) !edges;
          Baseline.Label_baseline.Incr.remove_edge incr a b
        end
      | 2 ->
        let l = String.make 1 (Char.chr (Char.code 'x' + (b mod 3))) in
        if not (List.mem (a, l) !given) then begin
          given := (a, l) :: !given;
          Baseline.Label_baseline.Incr.add_given incr a l
        end
      | _ ->
        (match !given with
        | (n, l) :: rest ->
          given := rest;
          Baseline.Label_baseline.Incr.remove_given incr n l
        | [] -> ()));
      let expected =
        sorted_pairs
          (Baseline.Label_baseline.full_recompute ~edges:!edges ~given:!given)
      in
      let actual = sorted_pairs (Baseline.Label_baseline.Incr.labels incr) in
      if expected <> actual then
        Alcotest.failf "divergence: expected %d facts, got %d"
          (List.length expected) (List.length actual)
    done
  done

let test_incr_cycle_deletion () =
  let open Baseline.Label_baseline in
  let incr = Incr.create () in
  Incr.add_given incr 1 "c";
  Incr.add_edge incr 1 2;
  Incr.add_edge incr 2 3;
  Incr.add_edge incr 3 2;
  Alcotest.(check bool) "cycle labelled" true (Incr.has_label incr 3 "c");
  Incr.remove_edge incr 1 2;
  Alcotest.(check bool) "cycle dies without support" false
    (Incr.has_label incr 2 "c" || Incr.has_label incr 3 "c");
  Alcotest.(check bool) "seed survives" true (Incr.has_label incr 1 "c")

(* ---------------- snvs imperative vs Nerpa ---------------- *)

let entry_set sw table =
  List.sort compare
    (List.map
       (fun (e : P4.Entry.t) -> (e.matches, e.priority, e.action, e.args))
       (P4.Switch.table_entries sw table))

let test_snvs_imperative_equivalence () =
  (* Drive the SAME configuration through the Nerpa controller and the
     imperative recompute controller; the data planes must agree. *)
  let d = Snvs.deploy () in
  ignore (Snvs.add_port d ~name:"p1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p2" ~port:2 ~mode:"access" ~tag:20 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"p4" ~port:4 ~mode:"trunk" ~tag:0 ~trunks:[ 10; 20 ]);
  ignore (Snvs.add_mirror d ~name:"m" ~select_port:1 ~output_port:9);
  ignore
    (Snvs.add_acl d ~priority:5 ~src:1L ~src_mask:(-1L) ~dst:2L ~dst_mask:(-1L)
       ~allow:false);
  ignore (Nerpa.Controller.sync d.controller);
  let sw2 = P4.Switch.create ~name:"imperative" Snvs.p4 in
  let inst = Baseline.Snvs_imperative.fresh_installed () in
  let cfg =
    {
      Baseline.Snvs_imperative.ports =
        [
          { port = 1; mode = `Access; tag = 10; trunks = [] };
          { port = 2; mode = `Access; tag = 20; trunks = [] };
          { port = 4; mode = `Trunk; tag = 0; trunks = [ 10; 20 ] };
        ];
      mirrors = [ { select_port = 1; output_port = 9 } ];
      acls =
        [ { prio = 5; src = 1L; src_mask = -1L; dst = 2L; dst_mask = -1L;
            allow = false } ];
      no_flood_vlans = [];
      macs = [];
    }
  in
  ignore (Baseline.Snvs_imperative.reconcile inst sw2 cfg);
  List.iter
    (fun table ->
      Alcotest.(check bool)
        (Printf.sprintf "table %s agrees" table)
        true
        (entry_set d.switch table = entry_set sw2 table))
    [ "in_vlan"; "out_vlan"; "mirror"; "acl"; "dmac" ];
  (* multicast groups agree *)
  List.iter
    (fun vlan ->
      Alcotest.(check bool)
        (Printf.sprintf "group %d agrees" vlan)
        true
        (P4.Switch.mcast_group d.switch (Int64.of_int vlan)
        = P4.Switch.mcast_group sw2 (Int64.of_int vlan)))
    [ 10; 20 ]

let test_snvs_imperative_incremental_diff () =
  (* reconcile applies only the difference on the second call *)
  let sw = P4.Switch.create Snvs.p4 in
  let inst = Baseline.Snvs_imperative.fresh_installed () in
  let cfg =
    { Baseline.Snvs_imperative.empty_config with
      ports = [ { port = 1; mode = `Access; tag = 10; trunks = [] } ] }
  in
  let n1 = Baseline.Snvs_imperative.reconcile inst sw cfg in
  Alcotest.(check bool) "initial install" true (n1 > 0);
  let n2 = Baseline.Snvs_imperative.reconcile inst sw cfg in
  Alcotest.(check int) "no-op reconcile" 0 n2;
  let cfg2 =
    { cfg with
      Baseline.Snvs_imperative.ports =
        { port = 2; mode = `Access; tag = 10; trunks = [] } :: cfg.ports }
  in
  let n3 = Baseline.Snvs_imperative.reconcile inst sw cfg2 in
  Alcotest.(check bool) "incremental diff small" true (n3 >= 1 && n3 <= 3)

(* ---------------- load balancer baseline ---------------- *)

let test_lb_imperative () =
  let lb = Baseline.Lb_imperative.create () in
  Baseline.Lb_imperative.add_lb lb ~vip:1L ~backends:[ 10L; 11L; 12L ];
  Baseline.Lb_imperative.add_lb lb ~vip:2L ~backends:[ 20L ];
  Alcotest.(check int) "entries" 4 (Baseline.Lb_imperative.entry_count lb);
  Alcotest.(check int) "lookup" 3
    (List.length (Baseline.Lb_imperative.lookup lb ~vip:1L));
  Baseline.Lb_imperative.add_lb lb ~vip:1L ~backends:[ 10L ];
  Alcotest.(check int) "replace shrinks" 2 (Baseline.Lb_imperative.entry_count lb);
  Baseline.Lb_imperative.remove_lb lb ~vip:1L;
  Baseline.Lb_imperative.remove_lb lb ~vip:1L;
  Alcotest.(check int) "remove idempotent" 1 (Baseline.Lb_imperative.entry_count lb)

(* ---------------- Fig. 3 model ---------------- *)

let test_frag_snapshots_monotone () =
  let snaps =
    List.init 12 (fun k -> Baseline.Frag_controller.snapshot (k + 1))
  in
  let rec check_monotone = function
    | (a : Baseline.Frag_controller.snapshot)
      :: (b : Baseline.Frag_controller.snapshot) :: rest ->
      Alcotest.(check bool) "loc grows" true (b.controller_loc > a.controller_loc);
      Alcotest.(check bool) "fragments grow" true
        (b.fragment_sites > a.fragment_sites);
      Alcotest.(check bool) "rules grow slower" true
        (b.nerpa_rules - a.nerpa_rules < b.fragment_sites - a.fragment_sites + 1);
      check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone snaps;
  (* the materialised flow program agrees with the arithmetic *)
  let prog = Baseline.Frag_controller.materialise 12 in
  let snap = Baseline.Frag_controller.snapshot 12 in
  Alcotest.(check int) "materialised fragments" snap.fragment_sites
    (Ofp4.Openflow.fragment_count prog)

let tests =
  [
    Alcotest.test_case "label full recompute" `Quick test_full_recompute_basic;
    Alcotest.test_case "hand-incremental = full (random)" `Quick
      test_incr_matches_full_on_random_traces;
    Alcotest.test_case "hand-incremental cycle deletion" `Quick
      test_incr_cycle_deletion;
    Alcotest.test_case "snvs imperative = nerpa" `Quick
      test_snvs_imperative_equivalence;
    Alcotest.test_case "snvs imperative diffing" `Quick
      test_snvs_imperative_incremental_diff;
    Alcotest.test_case "lb imperative" `Quick test_lb_imperative;
    Alcotest.test_case "fig3 snapshots" `Quick test_frag_snapshots_monotone;
  ]
