(* Property-based tests for the data plane and management plane:
   - switch table lookup (hash-indexed fast path) agrees with a naive
     reference ranking;
   - OVSDB transactions are atomic under random operation batches and
     never violate unique indexes. *)

(* ------------------------------------------------------------------ *)
(* Table lookup vs a naive reference                                   *)
(* ------------------------------------------------------------------ *)

let lookup_program : P4.Program.t =
  let open P4.Program in
  {
    name = "lookup";
    headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
    parser =
      { start = "s";
        states = [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ]; transition = Accept } ] };
    actions =
      [ { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
        { aname = "drop"; params = []; body = [ Drop ] } ];
    tables =
      [
        { tname = "mixed";
          keys =
            [ { kref = Field ("ipv4", "dst"); kind = Lpm };
              { kref = Field ("ipv4", "protocol"); kind = Ternary } ];
          actions = [ "forward"; "drop" ];
          default_action = ("drop", []); size = 4096 };
        { tname = "exact";
          keys = [ { kref = Field ("ipv4", "src"); kind = Exact } ];
          actions = [ "forward"; "drop" ];
          default_action = ("drop", []); size = 4096 };
      ];
    digests = []; counters = []; registers = [];
    ingress = ApplyTable "mixed";
    egress = Nop;
  }

(* The specification: among matching entries, longest total LPM prefix
   first, then highest priority.  Ties between distinct entries are
   genuinely ambiguous (as on real targets), so the reference returns
   the whole set of maximal-rank winners. *)
let reference_winners (entries : P4.Entry.t list) ~(widths : int list)
    (values : int64 list) : P4.Entry.t list =
  let matching =
    List.filter
      (fun (e : P4.Entry.t) ->
        List.for_all2
          (fun (w, mv) v -> P4.Entry.match_value_matches ~width:w mv v)
          (List.combine widths e.matches)
          values)
      entries
  in
  let rank (e : P4.Entry.t) = (P4.Entry.lpm_length e, e.priority) in
  match matching with
  | [] -> []
  | _ ->
    let best = List.fold_left (fun b e -> max b (rank e)) (min_int, min_int) matching in
    List.filter (fun e -> rank e = best) matching

let gen_mixed_entry =
  QCheck2.Gen.(
    let* dst = int_range 0 15 in
    let* plen = oneofl [ 0; 28; 30; 32 ] in
    let* proto_v = int_range 0 3 in
    let* proto_m = oneofl [ 0L; 3L ] in
    let* prio = int_range 0 3 in
    let* port = int_range 1 9 in
    return
      {
        P4.Entry.matches =
          [ P4.Entry.MLpm (Int64.of_int dst, plen);
            P4.Entry.MTernary (Int64.of_int proto_v, proto_m) ];
        priority = prio;
        action = "forward";
        args = [ Int64.of_int port ];
      })

let prop_mixed_lookup =
  QCheck2.Test.make ~count:200 ~name:"switch lookup = reference (lpm+ternary)"
    QCheck2.Gen.(
      pair (list_size (int_range 0 12) gen_mixed_entry)
        (list_size (int_range 1 12) (pair (int_range 0 15) (int_range 0 3))))
    (fun (entries, probes) ->
      let sw = P4.Switch.create lookup_program in
      (* Deduplicate by match part, as insert_entry replaces. *)
      let installed =
        List.fold_left
          (fun acc (e : P4.Entry.t) ->
            P4.Switch.insert_entry sw "mixed" e;
            e :: List.filter (fun e' -> not (P4.Entry.same_match e e')) acc)
          [] entries
      in
      List.for_all
        (fun (dst, proto) ->
          let values = [ Int64.of_int dst; Int64.of_int proto ] in
          let winners = reference_winners installed ~widths:[ 32; 8 ] values in
          (* probe through the data path: build a packet *)
          let pkt =
            P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L
              ~ip_src:9L ~ip_dst:(Int64.of_int dst) ~src_port:1L ~dst_port:2L
              ~payload:""
          in
          P4.Packet.set_bits pkt ~bit_offset:(14 * 8 + 72) ~width:8
            (Int64.of_int proto);
          let outs = P4.Switch.process sw ~in_port:1 pkt in
          match winners, outs with
          | [], [] -> true
          | _ :: _, [ (p, _) ] ->
            List.exists
              (fun (e : P4.Entry.t) -> e.args = [ Int64.of_int p ])
              winners
          | _ -> false)
        probes)

(* ------------------------------------------------------------------ *)
(* OVSDB atomicity under random batches                                *)
(* ------------------------------------------------------------------ *)

let tiny_schema =
  Ovsdb.Schema.make ~name:"Prop" ~version:"1"
    [
      Ovsdb.Schema.table "T"
        ~indexes:[ [ "k" ] ]
        [
          Ovsdb.Schema.column "k" (Ovsdb.Otype.scalar Ovsdb.Otype.AInteger);
          Ovsdb.Schema.column "v"
            Ovsdb.Otype.
              {
                key = base ~min_int:(Some 0L) ~max_int:(Some 100L) AInteger;
                value = None;
                min = 1;
                max = Limit 1;
              };
        ];
    ]

type prop_op = PIns of int * int | PDel of int | PUpd of int * int | PMut of int

let gen_batch =
  QCheck2.Gen.(
    list_size (int_range 1 6)
      (oneof
         [
           map2 (fun k v -> PIns (k, v)) (int_range 0 5) (int_range 0 120);
           map (fun k -> PDel k) (int_range 0 5);
           map2 (fun k v -> PUpd (k, v)) (int_range 0 5) (int_range 0 120);
           map (fun k -> PMut k) (int_range 0 5);
         ]))

let to_db_op = function
  | PIns (k, v) ->
    Ovsdb.Db.Insert
      { table = "T";
        row = [ ("k", Ovsdb.Datum.integer (Int64.of_int k));
                ("v", Ovsdb.Datum.integer (Int64.of_int v)) ];
        uuid = None }
  | PDel k ->
    Ovsdb.Db.Delete
      { table = "T";
        where = [ Ovsdb.Db.eq "k" (Ovsdb.Datum.integer (Int64.of_int k)) ] }
  | PUpd (k, v) ->
    Ovsdb.Db.Update
      { table = "T";
        where = [ Ovsdb.Db.eq "k" (Ovsdb.Datum.integer (Int64.of_int k)) ];
        row = [ ("v", Ovsdb.Datum.integer (Int64.of_int v)) ] }
  | PMut k ->
    Ovsdb.Db.Mutate
      { table = "T";
        where = [ Ovsdb.Db.eq "k" (Ovsdb.Datum.integer (Int64.of_int k)) ];
        mutations =
          [ { Ovsdb.Db.mcolumn = "v"; mop = Ovsdb.Db.MAdd;
              marg = Ovsdb.Datum.integer 50L } ] }

let snapshot db =
  Ovsdb.Db.fold_rows db "T"
    (fun _ row acc ->
      ( Ovsdb.Datum.as_integer (Ovsdb.Db.column_value row "k"),
        Ovsdb.Datum.as_integer (Ovsdb.Db.column_value row "v") )
      :: acc)
    []
  |> List.sort compare

let unique_keys_ok db =
  let keys = List.map fst (snapshot db) in
  List.length keys = List.length (List.sort_uniq compare keys)

let prop_ovsdb_atomicity =
  QCheck2.Test.make ~count:200 ~name:"ovsdb batches atomic + unique index held"
    QCheck2.Gen.(list_size (int_range 1 8) gen_batch)
    (fun batches ->
      let db = Ovsdb.Db.create tiny_schema in
      List.for_all
        (fun batch ->
          let before = snapshot db in
          match Ovsdb.Db.transact db (List.map to_db_op batch) with
          | Ok _ -> unique_keys_ok db
          | Error _ ->
            (* failed batches must leave no trace *)
            snapshot db = before && unique_keys_ok db)
        batches)

let suite =
  List.map QCheck_alcotest.to_alcotest [ prop_mixed_lookup; prop_ovsdb_atomicity ]
