(* Unit tests for the OVSDB substrate: datum codec, schema validation,
   transactions, constraints, monitors, and the JSON-RPC layer. *)

open Ovsdb

let datum_testable = Alcotest.testable Datum.pp Datum.equal

(* A small schema used throughout: ports with VLANs plus a stats table. *)
let port_schema =
  Schema.make ~name:"TestDB" ~version:"1.0.0"
    [
      Schema.table "Port"
        ~indexes:[ [ "name" ] ]
        [
          Schema.column "name" (Otype.scalar Otype.AString);
          Schema.column "vlan"
            (Otype.
               {
                 key = base ~min_int:(Some 0L) ~max_int:(Some 4095L) AInteger;
                 value = None;
                 min = 1;
                 max = Limit 1;
               });
          Schema.column "trunk" (Otype.set (Otype.base Otype.AInteger));
          Schema.column "options"
            (Otype.map (Otype.base Otype.AString) (Otype.base Otype.AString));
          Schema.column "kind" (Otype.string_enum [ "access"; "trunk" ]);
        ];
      Schema.table "Mirror"
        [
          Schema.column "name" (Otype.scalar Otype.AString);
          Schema.column "port"
            Otype.
              {
                key = base ~ref_table:(Some "Port") AUuid;
                value = None;
                min = 0;
                max = Limit 1;
              };
        ];
    ]

let mk_port ?(vlan = 10L) ?(kind = "access") name =
  [
    ("name", Datum.string name);
    ("vlan", Datum.integer vlan);
    ("kind", Datum.string kind);
  ]

(* ---------------- datum ---------------- *)

let test_datum_canonicalisation () =
  let a = Datum.set [ Atom.Integer 3L; Atom.Integer 1L; Atom.Integer 3L ] in
  let b = Datum.set [ Atom.Integer 1L; Atom.Integer 3L ] in
  Alcotest.check datum_testable "sets canonicalise" b a;
  let m1 = Datum.map [ (Atom.String "b", Atom.Integer 2L); (Atom.String "a", Atom.Integer 1L) ] in
  (match m1 with
  | Datum.Map ((Atom.String "a", _) :: _) -> ()
  | _ -> Alcotest.fail "map not sorted");
  Alcotest.(check bool) "scalar accessor" true
    (Datum.as_integer (Datum.integer 7L) = Some 7L);
  Alcotest.(check bool) "scalar accessor fails on set" true
    (Datum.as_integer (Datum.set [ Atom.Integer 1L; Atom.Integer 2L ]) = None)

let test_datum_json_roundtrip () =
  let samples =
    [
      Datum.integer 5L;
      Datum.string "x";
      Datum.boolean true;
      Datum.real 2.5;
      Datum.uuid (Uuid.fresh ());
      Datum.set [ Atom.Integer 1L; Atom.Integer 2L ];
      Datum.empty_set;
      Datum.map [ (Atom.String "k", Atom.String "v") ];
      Datum.empty_map;
    ]
  in
  List.iter
    (fun d ->
      match Datum.of_json (Json.of_string (Json.to_string (Datum.to_json d))) with
      | Ok d' -> Alcotest.check datum_testable (Datum.to_string d) d d'
      | Error e -> Alcotest.fail e)
    samples

let test_otype_check () =
  let vlan_ty =
    Otype.
      {
        key = base ~min_int:(Some 0L) ~max_int:(Some 4095L) AInteger;
        value = None;
        min = 1;
        max = Limit 1;
      }
  in
  Alcotest.(check bool) "in range" true
    (Otype.check vlan_ty (Datum.integer 100L) = Ok ());
  Alcotest.(check bool) "above range" true
    (Result.is_error (Otype.check vlan_ty (Datum.integer 5000L)));
  Alcotest.(check bool) "wrong type" true
    (Result.is_error (Otype.check vlan_ty (Datum.string "x")));
  Alcotest.(check bool) "missing scalar" true
    (Result.is_error (Otype.check vlan_ty Datum.empty_set));
  let enum_ty = Otype.string_enum [ "a"; "b" ] in
  Alcotest.(check bool) "enum ok" true (Otype.check enum_ty (Datum.string "a") = Ok ());
  Alcotest.(check bool) "enum bad" true
    (Result.is_error (Otype.check enum_ty (Datum.string "z")));
  let bounded = Otype.set ~max:(Otype.Limit 2) (Otype.base Otype.AInteger) in
  Alcotest.(check bool) "cardinality" true
    (Result.is_error
       (Otype.check bounded
          (Datum.set [ Atom.Integer 1L; Atom.Integer 2L; Atom.Integer 3L ])))

(* ---------------- schema ---------------- *)

let test_schema_validation () =
  Alcotest.(check bool) "good schema" true (Schema.validate port_schema = Ok ());
  let dup =
    Schema.make ~name:"D" ~version:"1"
      [ Schema.table "T" [ Schema.column "a" (Otype.scalar Otype.AInteger) ];
        Schema.table "T" [ Schema.column "a" (Otype.scalar Otype.AInteger) ] ]
  in
  Alcotest.(check bool) "duplicate table" true (Result.is_error (Schema.validate dup));
  let bad_index =
    Schema.make ~name:"D" ~version:"1"
      [ Schema.table "T" ~indexes:[ [ "nope" ] ]
          [ Schema.column "a" (Otype.scalar Otype.AInteger) ] ]
  in
  Alcotest.(check bool) "bad index" true
    (Result.is_error (Schema.validate bad_index));
  let bad_ref =
    Schema.make ~name:"D" ~version:"1"
      [ Schema.table "T"
          [ Schema.column "r"
              Otype.
                { key = base ~ref_table:(Some "Missing") AUuid;
                  value = None; min = 0; max = Limit 1 } ] ]
  in
  Alcotest.(check bool) "bad ref" true (Result.is_error (Schema.validate bad_ref))

(* ---------------- transactions ---------------- *)

let test_insert_select () =
  let db = Db.create port_schema in
  let u1 = Db.insert_exn db "Port" (mk_port "p1") in
  let _u2 = Db.insert_exn db "Port" (mk_port ~vlan:20L "p2") in
  Alcotest.(check int) "two rows" 2 (Db.row_count db "Port");
  let row = Option.get (Db.get_row db "Port" u1) in
  Alcotest.check datum_testable "stored name" (Datum.string "p1")
    (Db.column_value row "name");
  Alcotest.check datum_testable "default trunk" Datum.empty_set
    (Db.column_value row "trunk");
  (* select with condition *)
  match Db.transact_exn db [ Db.Select { table = "Port"; where = [ Db.eq "vlan" (Datum.integer 20L) ]; columns = Some [ "name" ] } ] with
  | [ Db.RRows [ (_, row) ] ] ->
    Alcotest.check datum_testable "selected" (Datum.string "p2")
      (Db.column_value row "name");
    Alcotest.(check int) "projected" 1 (List.length row)
  | _ -> Alcotest.fail "unexpected select result"

let test_atomicity () =
  let db = Db.create port_schema in
  (* Second op violates the vlan range: the whole txn must roll back. *)
  let result =
    Db.transact db
      [
        Db.Insert { table = "Port"; row = mk_port "a"; uuid = None };
        Db.Insert { table = "Port"; row = mk_port ~vlan:9999L "b"; uuid = None };
      ]
  in
  Alcotest.(check bool) "txn failed" true (Result.is_error result);
  Alcotest.(check int) "nothing committed" 0 (Db.row_count db "Port")

let test_unique_index () =
  let db = Db.create port_schema in
  ignore (Db.insert_exn db "Port" (mk_port "p1"));
  (match Db.insert db "Port" (mk_port "p1") with
  | Error msg ->
    Alcotest.(check bool) "mentions index" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "duplicate name accepted");
  Alcotest.(check int) "only one row" 1 (Db.row_count db "Port");
  (* Updating into a collision must also fail and roll back. *)
  ignore (Db.insert_exn db "Port" (mk_port "p2"));
  let r =
    Db.transact db
      [ Db.Update { table = "Port";
                    where = [ Db.eq "name" (Datum.string "p2") ];
                    row = [ ("name", Datum.string "p1") ] } ]
  in
  Alcotest.(check bool) "update collision rejected" true (Result.is_error r)

let test_update_and_mutate () =
  let db = Db.create port_schema in
  ignore (Db.insert_exn db "Port" (mk_port "p1"));
  (match
     Db.transact_exn db
       [ Db.Update { table = "Port";
                     where = [ Db.eq "name" (Datum.string "p1") ];
                     row = [ ("vlan", Datum.integer 42L) ] } ]
   with
  | [ Db.RCount 1 ] -> ()
  | _ -> Alcotest.fail "update count");
  (* Mutations: arithmetic and set insertion. *)
  ignore
    (Db.transact_exn db
       [ Db.Mutate { table = "Port";
                     where = [];
                     mutations =
                       [ { Db.mcolumn = "vlan"; mop = Db.MAdd; marg = Datum.integer 1L };
                         { Db.mcolumn = "trunk"; mop = Db.MInsert;
                           marg = Datum.set [ Atom.Integer 5L; Atom.Integer 7L ] } ] } ]);
  let _, row = List.hd (Db.fold_rows db "Port" (fun u r acc -> (u, r) :: acc) []) in
  Alcotest.check datum_testable "vlan mutated" (Datum.integer 43L)
    (Db.column_value row "vlan");
  Alcotest.check datum_testable "trunk extended"
    (Datum.set [ Atom.Integer 5L; Atom.Integer 7L ])
    (Db.column_value row "trunk");
  (* Mutation overflowing the constraint rolls back. *)
  let r =
    Db.transact db
      [ Db.Mutate { table = "Port"; where = [];
                    mutations = [ { Db.mcolumn = "vlan"; mop = Db.MAdd;
                                    marg = Datum.integer 100000L } ] } ]
  in
  Alcotest.(check bool) "constraint after mutation" true (Result.is_error r);
  Alcotest.check datum_testable "rolled back" (Datum.integer 43L)
    (Db.column_value
       (snd (List.hd (Db.fold_rows db "Port" (fun u r acc -> (u, r) :: acc) [])))
       "vlan")

let test_delete_and_conditions () =
  let db = Db.create port_schema in
  ignore (Db.insert_exn db "Port" (mk_port ~vlan:1L "a"));
  ignore (Db.insert_exn db "Port" (mk_port ~vlan:2L "b"));
  ignore (Db.insert_exn db "Port" (mk_port ~vlan:3L "c"));
  (match
     Db.transact_exn db
       [ Db.Delete { table = "Port";
                     where = [ { Db.ccolumn = "vlan"; cop = Db.Le;
                                 carg = Datum.integer 2L } ] } ]
   with
  | [ Db.RCount 2 ] -> ()
  | _ -> Alcotest.fail "delete count");
  Alcotest.(check int) "one left" 1 (Db.row_count db "Port")

let test_immutable_column () =
  let schema =
    Schema.make ~name:"D" ~version:"1"
      [ Schema.table "T"
          [ Schema.column ~mutable_:false "fixed" (Otype.scalar Otype.AString);
            Schema.column "free" (Otype.scalar Otype.AString) ] ]
  in
  let db = Db.create schema in
  ignore (Db.insert_exn db "T" [ ("fixed", Datum.string "x") ]);
  let r =
    Db.transact db
      [ Db.Update { table = "T"; where = []; row = [ ("fixed", Datum.string "y") ] } ]
  in
  Alcotest.(check bool) "immutable rejected" true (Result.is_error r)

let test_referential_integrity () =
  let db = Db.create port_schema in
  let missing = Uuid.fresh () in
  let r =
    Db.transact db
      [ Db.Insert { table = "Mirror";
                    row = [ ("name", Datum.string "m");
                            ("port", Datum.uuid missing) ];
                    uuid = None } ]
  in
  Alcotest.(check bool) "dangling ref rejected" true (Result.is_error r);
  let port = Db.insert_exn db "Port" (mk_port "p") in
  let r =
    Db.transact db
      [ Db.Insert { table = "Mirror";
                    row = [ ("name", Datum.string "m");
                            ("port", Datum.uuid port) ];
                    uuid = None } ]
  in
  Alcotest.(check bool) "valid ref accepted" true (Result.is_ok r)

(* ---------------- monitors ---------------- *)

let test_monitor_stream () =
  let db = Db.create port_schema in
  ignore (Db.insert_exn db "Port" (mk_port "pre"));
  let mon = Db.add_monitor db [ ("Port", None) ] in
  (* initial snapshot *)
  (match Db.poll mon with
  | [ [ ("Port", [ (_, { Db.before = None; after = Some _ }) ]) ] ] -> ()
  | batches -> Alcotest.failf "unexpected initial batch (%d)" (List.length batches));
  (* one batch per transaction, batching multiple ops *)
  ignore
    (Db.transact_exn db
       [ Db.Insert { table = "Port"; row = mk_port "a"; uuid = None };
         Db.Insert { table = "Port"; row = mk_port "b"; uuid = None } ]);
  ignore
    (Db.transact_exn db
       [ Db.Update { table = "Port";
                     where = [ Db.eq "name" (Datum.string "a") ];
                     row = [ ("vlan", Datum.integer 99L) ] } ]);
  (match Db.poll mon with
  | [ batch1; batch2 ] ->
    (match batch1 with
    | [ ("Port", rows) ] -> Alcotest.(check int) "two inserts batched" 2 (List.length rows)
    | _ -> Alcotest.fail "batch1 shape");
    (match batch2 with
    | [ ("Port", [ (_, { Db.before = Some old_row; after = Some new_row }) ]) ] ->
      Alcotest.check datum_testable "old value" (Datum.integer 10L)
        (Db.column_value old_row "vlan");
      Alcotest.check datum_testable "new value" (Datum.integer 99L)
        (Db.column_value new_row "vlan")
    | _ -> Alcotest.fail "batch2 shape")
  | batches -> Alcotest.failf "expected 2 batches, got %d" (List.length batches));
  Alcotest.(check int) "queue drained" 0 (List.length (Db.poll mon));
  (* failed transactions produce no updates *)
  ignore
    (Db.transact db
       [ Db.Insert { table = "Port"; row = mk_port ~vlan:9999L "x"; uuid = None } ]);
  Alcotest.(check int) "no updates from failed txn" 0 (List.length (Db.poll mon));
  (* deletes appear with before-only *)
  ignore
    (Db.transact_exn db
       [ Db.Delete { table = "Port"; where = [ Db.eq "name" (Datum.string "b") ] } ]);
  (match Db.poll mon with
  | [ [ ("Port", [ (_, { Db.before = Some _; after = None }) ]) ] ] -> ()
  | _ -> Alcotest.fail "delete batch shape");
  Db.cancel_monitor db mon;
  ignore (Db.transact_exn db [ Db.Insert { table = "Port"; row = mk_port "z"; uuid = None } ]);
  Alcotest.(check int) "cancelled monitor silent" 0 (List.length (Db.poll mon))

let test_monitor_select_flags () =
  let db = Db.create port_schema in
  ignore (Db.insert_exn db "Port" (mk_port "pre"));
  (* inserts only, no initial snapshot *)
  let mon =
    Db.add_monitor
      ~select:{ Db.s_initial = false; s_insert = true; s_delete = false;
                s_modify = false }
      db [ ("Port", None) ]
  in
  Alcotest.(check int) "no initial batch" 0 (List.length (Db.poll mon));
  ignore (Db.insert_exn db "Port" (mk_port "a"));
  Alcotest.(check int) "insert delivered" 1 (List.length (Db.poll mon));
  ignore
    (Db.transact_exn db
       [ Db.Update { table = "Port";
                     where = [ Db.eq "name" (Datum.string "a") ];
                     row = [ ("vlan", Datum.integer 42L) ] } ]);
  Alcotest.(check int) "modify suppressed" 0 (List.length (Db.poll mon));
  ignore
    (Db.transact_exn db
       [ Db.Delete { table = "Port"; where = [ Db.eq "name" (Datum.string "a") ] } ]);
  Alcotest.(check int) "delete suppressed" 0 (List.length (Db.poll mon));
  (* deletes only *)
  let mon2 =
    Db.add_monitor
      ~select:{ Db.s_initial = false; s_insert = false; s_delete = true;
                s_modify = false }
      db [ ("Port", None) ]
  in
  ignore (Db.insert_exn db "Port" (mk_port "b"));
  ignore
    (Db.transact_exn db
       [ Db.Delete { table = "Port"; where = [ Db.eq "name" (Datum.string "b") ] } ]);
  match Db.poll mon2 with
  | [ [ ("Port", [ (_, { Db.before = Some _; after = None }) ]) ] ] -> ()
  | batches -> Alcotest.failf "expected only the delete, got %d batches"
                 (List.length batches)

let test_monitor_column_filter () =
  let db = Db.create port_schema in
  let mon = Db.add_monitor db [ ("Port", Some [ "name" ]) ] in
  ignore (Db.insert_exn db "Port" (mk_port "a"));
  match Db.poll mon with
  | [ [ ("Port", [ (_, { Db.after = Some row; _ }) ]) ] ] ->
    Alcotest.(check int) "only filtered column" 1 (List.length row);
    Alcotest.(check bool) "it is name" true (List.mem_assoc "name" row)
  | _ -> Alcotest.fail "unexpected batch"

(* ---------------- JSON-RPC ---------------- *)

let test_rpc_end_to_end () =
  let db = Db.create port_schema in
  let srv = Rpc.serve db in
  (* get_schema *)
  let resp = Rpc.handle srv (Rpc.request ~id:1 ~meth:"get_schema" ~params:(Json.List [ Json.String "TestDB" ])) in
  let j = Json.of_string resp in
  (match Json.member "result" j with
  | Some (Json.Obj fields) ->
    Alcotest.(check bool) "schema has tables" true (List.mem_assoc "tables" fields)
  | _ -> Alcotest.fail "get_schema failed");
  (* monitor, then transact over the wire, then poll notifications *)
  let mon_req = Rpc.monitor_request ~id:2 ~db:"TestDB" ~mon_id:"m1" [ ("Port", None) ] in
  ignore (Rpc.handle srv mon_req);
  let txn_req =
    Rpc.transact_request ~id:3 ~db:"TestDB"
      [ Rpc.insert_op ~table:"Port" (mk_port "wire-port") ]
  in
  let resp = Json.of_string (Rpc.handle srv txn_req) in
  (match Json.member "result" resp with
  | Some (Json.List [ Json.Obj fields ]) ->
    Alcotest.(check bool) "insert returned uuid" true (List.mem_assoc "uuid" fields)
  | _ -> Alcotest.fail "transact failed");
  (match Rpc.poll_notifications srv "m1" with
  | [ update ] ->
    let j = Json.of_string update in
    (match Json.member "method" j with
    | Some (Json.String "update") -> ()
    | _ -> Alcotest.fail "not an update notification")
  | l -> Alcotest.failf "expected 1 notification, got %d" (List.length l));
  (* named-uuid: a mirror referencing a port inserted in the same txn *)
  let txn_req =
    Rpc.transact_request ~id:4 ~db:"TestDB"
      [
        Rpc.insert_op ~uuid_name:"p" ~table:"Port" (mk_port "p9");
        Json.Obj
          [ ("op", Json.String "insert");
            ("table", Json.String "Mirror");
            ("row",
             Json.Obj
               [ ("name", Json.String "m9");
                 ("port", Json.List [ Json.String "named-uuid"; Json.String "p" ]) ]) ];
      ]
  in
  let resp = Json.of_string (Rpc.handle srv txn_req) in
  (match Json.member "result" resp with
  | Some (Json.List [ _; Json.Obj fields ]) ->
    Alcotest.(check bool) "mirror inserted" true (List.mem_assoc "uuid" fields)
  | _ -> Alcotest.fail "named-uuid transact failed");
  Alcotest.(check int) "mirror row exists" 1 (Db.row_count db "Mirror");
  (* error paths *)
  let resp = Json.of_string (Rpc.handle srv {|{"id": 5, "method": "nope", "params": []}|}) in
  (match Json.member "error" resp with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "unknown method must error");
  let resp = Json.of_string (Rpc.handle srv "not json at all") in
  match Json.member "error" resp with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "bad json must error"

let test_rpc_monitor_select () =
  let db = Db.create port_schema in
  let srv = Rpc.serve db in
  ignore (Db.insert_exn db "Port" (mk_port "pre"));
  (* a monitor asking for deletes only, no initial contents *)
  let req =
    {|{"id": 1, "method": "monitor", "params": ["TestDB", "sel", {"Port": {"select": {"initial": false, "insert": false, "delete": true, "modify": false}}}]}|}
  in
  let resp = Json.of_string (Rpc.handle srv req) in
  (match Json.member "result" resp with
  | Some (Json.Obj []) -> ()
  | Some j -> Alcotest.failf "expected empty initial contents, got %s" (Json.to_string j)
  | None -> Alcotest.fail "monitor failed");
  ignore (Db.insert_exn db "Port" (mk_port "a"));
  Alcotest.(check int) "insert suppressed" 0
    (List.length (Rpc.poll_notifications srv "sel"));
  ignore
    (Db.transact_exn db
       [ Db.Delete { table = "Port"; where = [ Db.eq "name" (Datum.string "a") ] } ]);
  Alcotest.(check int) "delete delivered" 1
    (List.length (Rpc.poll_notifications srv "sel"))

let tests =
  [
    Alcotest.test_case "datum canonicalisation" `Quick test_datum_canonicalisation;
    Alcotest.test_case "datum json roundtrip" `Quick test_datum_json_roundtrip;
    Alcotest.test_case "otype checking" `Quick test_otype_check;
    Alcotest.test_case "schema validation" `Quick test_schema_validation;
    Alcotest.test_case "insert and select" `Quick test_insert_select;
    Alcotest.test_case "atomicity" `Quick test_atomicity;
    Alcotest.test_case "unique index" `Quick test_unique_index;
    Alcotest.test_case "update and mutate" `Quick test_update_and_mutate;
    Alcotest.test_case "delete and conditions" `Quick test_delete_and_conditions;
    Alcotest.test_case "immutable column" `Quick test_immutable_column;
    Alcotest.test_case "referential integrity" `Quick test_referential_integrity;
    Alcotest.test_case "monitor stream" `Quick test_monitor_stream;
    Alcotest.test_case "monitor select flags" `Quick test_monitor_select_flags;
    Alcotest.test_case "monitor column filter" `Quick test_monitor_column_filter;
    Alcotest.test_case "json-rpc end to end" `Quick test_rpc_end_to_end;
    Alcotest.test_case "json-rpc monitor select" `Quick test_rpc_monitor_select;
  ]
