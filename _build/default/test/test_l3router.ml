(* End-to-end tests for the L3 router application: exercises the LPM
   and Optional codegen/bridge paths, negation against OVSDB inputs,
   TTL arithmetic in actions, counters, and multi-switch deployments. *)

let ip = P4.Stdhdrs.ipv4_of_string
let mac = P4.Stdhdrs.mac_of_string

let udp_to ?(ttl = 64L) d dst =
  let pkt =
    P4.Stdhdrs.udp_packet ~eth_dst:(mac "02:00:00:00:00:aa")
      ~eth_src:(mac "02:00:00:00:00:bb") ~ip_src:(ip "192.168.0.1")
      ~ip_dst:(ip dst) ~src_port:1000L ~dst_port:53L ~payload:"q"
  in
  (* patch the TTL for the TTL tests *)
  P4.Packet.set_bits pkt ~bit_offset:(14 * 8 + 64) ~width:8 ttl;
  ignore d;
  pkt

let out_ports outs = List.sort Int.compare (List.map fst outs)

let std_deploy () =
  let d = L3router.deploy () in
  L3router.add_neighbor d ~ip:(ip "10.0.0.254") ~mac:(mac "02:00:00:00:01:01")
    ~port:1;
  L3router.add_neighbor d ~ip:(ip "10.1.0.254") ~mac:(mac "02:00:00:00:01:02")
    ~port:2;
  L3router.add_route d ~prefix:(ip "10.0.0.0") ~plen:8
    ~nexthop:(ip "10.0.0.254");
  L3router.add_route d ~prefix:(ip "10.1.0.0") ~plen:16
    ~nexthop:(ip "10.1.0.254");
  ignore (L3router.sync d);
  d

let test_lpm_end_to_end () =
  let d = std_deploy () in
  let sw = L3router.switch d "r0" in
  (* /16 wins over /8 *)
  (match P4.Switch.process sw ~in_port:9 (udp_to d "10.1.2.3") with
  | [ (2, pkt) ] ->
    (* next-hop MAC rewritten *)
    Alcotest.(check int64) "dmac rewritten" (mac "02:00:00:00:01:02")
      (P4.Packet.get_bits pkt ~bit_offset:0 ~width:48);
    (* TTL decremented *)
    Alcotest.(check int64) "ttl decremented" 63L
      (P4.Packet.get_bits pkt ~bit_offset:(14 * 8 + 64) ~width:8)
  | outs -> Alcotest.failf "expected port 2, got %d outputs" (List.length outs));
  (match P4.Switch.process sw ~in_port:9 (udp_to d "10.9.9.9") with
  | [ (1, _) ] -> ()
  | _ -> Alcotest.fail "/8 route broken");
  (* no route: dropped *)
  Alcotest.(check int) "default drop" 0
    (List.length (P4.Switch.process sw ~in_port:9 (udp_to d "11.0.0.1")));
  (* counters incremented *)
  Alcotest.(check int64) "counter port 2" 1L
    (P4.Switch.counter_value sw "forwarded" 2L)

let test_route_deletion_falls_back () =
  let d = std_deploy () in
  let sw = L3router.switch d "r0" in
  L3router.del_route d ~prefix:(ip "10.1.0.0") ~plen:16;
  ignore (L3router.sync d);
  match P4.Switch.process sw ~in_port:9 (udp_to d "10.1.2.3") with
  | [ (1, _) ] -> () (* now takes the /8 *)
  | _ -> Alcotest.fail "fallback to /8 failed"

let test_unresolved_nexthop () =
  let d = L3router.deploy () in
  L3router.add_route d ~prefix:(ip "10.0.0.0") ~plen:8
    ~nexthop:(ip "10.0.0.254");
  ignore (L3router.sync d);
  let eng = Nerpa.Controller.engine d.controller in
  (* the route is reported unresolved and not installed *)
  Alcotest.(check int) "unresolved" 1
    (Dl.Engine.relation_cardinal eng "UnresolvedRoute");
  Alcotest.(check int) "not installed" 0
    (P4.Switch.entry_count (L3router.switch d "r0") "routes");
  (* resolving the neighbor installs it and clears the report *)
  L3router.add_neighbor d ~ip:(ip "10.0.0.254") ~mac:1L ~port:1;
  ignore (L3router.sync d);
  Alcotest.(check int) "resolved" 0
    (Dl.Engine.relation_cardinal eng "UnresolvedRoute");
  Alcotest.(check int) "installed" 1
    (P4.Switch.entry_count (L3router.switch d "r0") "routes");
  (* removing the neighbor retracts the route again *)
  L3router.del_neighbor d ~ip:(ip "10.0.0.254");
  ignore (L3router.sync d);
  Alcotest.(check int) "retracted" 0
    (P4.Switch.entry_count (L3router.switch d "r0") "routes")

let test_optional_protocol_filter () =
  let d = std_deploy () in
  let sw = L3router.switch d "r0" in
  (* deny UDP (protocol 17) *)
  L3router.set_protocol d ~protocol:17 ~allow:false;
  ignore (L3router.sync d);
  Alcotest.(check int) "udp denied" 0
    (List.length (P4.Switch.process sw ~in_port:9 (udp_to d "10.1.2.3")));
  (* other protocols still flow: patch the protocol byte to TCP *)
  let pkt = udp_to d "10.1.2.3" in
  P4.Packet.set_bits pkt ~bit_offset:(14 * 8 + 72) ~width:8 6L;
  Alcotest.(check int) "tcp unaffected" 1
    (List.length (P4.Switch.process sw ~in_port:9 pkt))

let test_ttl_zero_dropped () =
  let d = std_deploy () in
  let sw = L3router.switch d "r0" in
  Alcotest.(check int) "ttl 0 dropped" 0
    (List.length (P4.Switch.process sw ~in_port:9 (udp_to ~ttl:0L d "10.1.2.3")));
  Alcotest.(check int) "ttl 1 forwarded" 1
    (List.length (P4.Switch.process sw ~in_port:9 (udp_to ~ttl:1L d "10.1.2.3")))

let test_non_ip_rejected () =
  let d = std_deploy () in
  let sw = L3router.switch d "r0" in
  let arp_frame =
    P4.Stdhdrs.ethernet_frame ~dst:(-1L) ~src:1L
      ~ethertype:P4.Stdhdrs.ethertype_arp ~payload:"xxxx"
  in
  Alcotest.(check int) "non-ip rejected by parser" 0
    (List.length (P4.Switch.process sw ~in_port:9 arp_frame))

let test_multi_switch_deployment () =
  (* The same program and the same entries land on every switch. *)
  let d = L3router.deploy ~switch_names:[ "r0"; "r1"; "r2" ] () in
  L3router.add_neighbor d ~ip:(ip "10.0.0.254") ~mac:7L ~port:1;
  L3router.add_route d ~prefix:(ip "10.0.0.0") ~plen:8
    ~nexthop:(ip "10.0.0.254");
  ignore (L3router.sync d);
  List.iter
    (fun name ->
      Alcotest.(check int)
        (Printf.sprintf "%s has the route" name)
        1
        (P4.Switch.entry_count (L3router.switch d name) "routes"))
    [ "r0"; "r1"; "r2" ];
  (* and a deletion retracts everywhere *)
  L3router.del_route d ~prefix:(ip "10.0.0.0") ~plen:8;
  ignore (L3router.sync d);
  List.iter
    (fun name ->
      Alcotest.(check int)
        (Printf.sprintf "%s retracted" name)
        0
        (P4.Switch.entry_count (L3router.switch d name) "routes"))
    [ "r0"; "r1"; "r2" ]

let test_codegen_lpm_optional_layout () =
  let g = Nerpa.Codegen.generate ~schema:L3router.schema ~p4:L3router.p4 in
  let find name =
    List.find (fun (d : Dl.Ast.rel_decl) -> d.rname = name) g.decls
  in
  let routes = find "RoutesRouteTo" in
  Alcotest.(check (list string)) "lpm layout"
    [ "ipv4_dst"; "ipv4_dst_plen"; "port"; "dmac" ]
    (List.map fst routes.cols);
  let filt = find "ProtocolFilterDeny" in
  Alcotest.(check bool) "optional layout" true
    (Dl.Dtype.equal
       (List.assoc "ipv4_protocol" filt.cols)
       (Dl.Dtype.TOption (Dl.Dtype.TBit 8)))

let tests =
  [
    Alcotest.test_case "lpm end to end" `Quick test_lpm_end_to_end;
    Alcotest.test_case "route deletion falls back" `Quick
      test_route_deletion_falls_back;
    Alcotest.test_case "unresolved nexthop" `Quick test_unresolved_nexthop;
    Alcotest.test_case "optional protocol filter" `Quick
      test_optional_protocol_filter;
    Alcotest.test_case "ttl zero dropped" `Quick test_ttl_zero_dropped;
    Alcotest.test_case "non-ip rejected" `Quick test_non_ip_rejected;
    Alcotest.test_case "multi-switch deployment" `Quick
      test_multi_switch_deployment;
    Alcotest.test_case "codegen lpm/optional layout" `Quick
      test_codegen_lpm_optional_layout;
  ]
