(* Unit tests for the DL lexer and parser. *)

open Dl

let parse src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_decls () =
  let p =
    parse
      {|
      input relation Port(id: bit<32>, vlan: bit<12>, trunk: bool)
      output relation InVlan(port: bit<32>, vlan: bit<12>)
      relation Internal(x: int, name: string, t: (int, bool),
                        v: vec<string>, o: option<int>, m: map<int, string>)
      |}
  in
  Alcotest.(check int) "three decls" 3 (List.length p.Ast.decls);
  let port = Option.get (Ast.find_decl p "Port") in
  Alcotest.(check bool) "input role" true (port.role = Ast.Input);
  Alcotest.(check int) "arity" 3 (Ast.arity port);
  let internal = Option.get (Ast.find_decl p "Internal") in
  Alcotest.(check bool) "internal role" true (internal.role = Ast.Internal);
  let _, tuple_ty = List.nth internal.cols 2 in
  Alcotest.(check bool) "tuple type" true
    (Dtype.equal tuple_ty (Dtype.TTuple [ Dtype.TInt; Dtype.TBool ]))

let test_rules () =
  let p =
    parse
      {|
      input relation Edge(a: int, b: int)
      input relation GivenLabel(n: int, l: string)
      output relation Label(n: int, l: string)
      Label(n, l) :- GivenLabel(n, l).
      Label(n2, l) :- Label(n1, l), Edge(n1, n2).
      |}
  in
  Alcotest.(check int) "two rules" 2 (List.length p.Ast.rules);
  let r = List.nth p.Ast.rules 1 in
  Alcotest.(check string) "head rel" "Label" r.Ast.head.hrel;
  Alcotest.(check int) "two body literals" 2 (List.length r.Ast.body)

let test_literal_kinds () =
  let p =
    parse
      {|
      input relation R(x: int, y: int)
      input relation S(x: int)
      output relation T(x: int, y: int)
      output relation C(x: int, n: int)
      T(x, z) :- R(x, y), not S(x), y > 2, var z = y * 2.
      C(x, n) :- R(x, y), var n = count(y) group_by (x).
      T(x, v) :- R(x, _), var vs = vec_push(vec_push(vec_empty(), 1), 2),
                 var v in vs.
      |}
  in
  let r1 = List.nth p.Ast.rules 0 in
  (match r1.Ast.body with
  | [ Ast.LAtom _; Ast.LNeg _; Ast.LCond _; Ast.LAssign _ ] -> ()
  | _ -> Alcotest.fail "unexpected literal shapes in rule 1");
  let r2 = List.nth p.Ast.rules 1 in
  (match r2.Ast.body with
  | [ Ast.LAtom _; Ast.LAgg g ] ->
    Alcotest.(check string) "agg func" "count" g.agg_func;
    Alcotest.(check (list string)) "group vars" [ "x" ] g.agg_by
  | _ -> Alcotest.fail "unexpected literal shapes in rule 2");
  let r3 = List.nth p.Ast.rules 2 in
  (match r3.Ast.body with
  | [ Ast.LAtom _; Ast.LAssign _; Ast.LFlat _ ] -> ()
  | _ -> Alcotest.fail "unexpected literal shapes in rule 3")

let test_constants () =
  let p =
    parse
      {|
      input relation K(b: bit<8>, h: bit<16>, bin: bit<4>, s: string,
                       t: bool, i: int)
      output relation O(x: int)
      O(1) :- K(8'd255, 16'hBEEF, 4'b1010, "hi\n", true, -3).
      |}
  in
  let r = List.hd p.Ast.rules in
  match r.Ast.body with
  | [ Ast.LAtom a ] ->
    let const i =
      match a.args.(i) with Ast.PConst c -> c | _ -> Alcotest.fail "not const"
    in
    Alcotest.(check bool) "dec bits" true (Value.equal (const 0) (Value.bit 8 255L));
    Alcotest.(check bool) "hex bits" true
      (Value.equal (const 1) (Value.bit 16 0xBEEFL));
    Alcotest.(check bool) "bin bits" true (Value.equal (const 2) (Value.bit 4 0b1010L));
    Alcotest.(check bool) "string escape" true
      (Value.equal (const 3) (Value.of_string "hi\n"));
    Alcotest.(check bool) "bool" true (Value.equal (const 4) (Value.VBool true));
    Alcotest.(check bool) "negative int" true
      (Value.equal (const 5) (Value.of_int (-3)))
  | _ -> Alcotest.fail "unexpected body"

let test_int_to_bit_coercion () =
  let p =
    parse
      {|
      input relation Port(id: bit<32>)
      output relation Out(id: bit<32>)
      Out(5) :- Port(7).
      |}
  in
  let r = List.hd p.Ast.rules in
  (match r.Ast.head.hargs.(0) with
  | Ast.EConst c ->
    Alcotest.(check bool) "head coerced" true (Value.equal c (Value.bit 32 5L))
  | _ -> Alcotest.fail "head not const");
  match r.Ast.body with
  | [ Ast.LAtom a ] -> (
    match a.args.(0) with
    | Ast.PConst c ->
      Alcotest.(check bool) "pattern coerced" true (Value.equal c (Value.bit 32 7L))
    | _ -> Alcotest.fail "pattern not const")
  | _ -> Alcotest.fail "unexpected body"

let test_expression_precedence () =
  let p =
    parse
      {|
      input relation R(x: int)
      output relation O(x: int)
      O(y) :- R(x), var y = 1 + x * 2 - 3.
      O(y) :- R(x), var y = if (x > 0 and x < 10) x else 0 - x.
      |}
  in
  (* 1 + x * 2 - 3 must parse as (1 + (x * 2)) - 3 *)
  let r = List.hd p.Ast.rules in
  (match r.Ast.body with
  | [ _; Ast.LAssign (_, Ast.ECall ("-", [ Ast.ECall ("+", [ _; Ast.ECall ("*", _) ]); _ ])) ] ->
    ()
  | _ -> Alcotest.fail "precedence wrong");
  ignore p

let test_comments_and_errors () =
  let p =
    parse
      {|
      // line comment
      input relation R(x: int) /* block
         comment */
      output relation O(x: int)
      O(x) :- R(x).
      |}
  in
  Alcotest.(check int) "rules survive comments" 1 (List.length p.Ast.rules);
  (match Parser.parse_program "input relation R(" with
  | Error msg ->
    Alcotest.(check bool) "error mentions position" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected parse error");
  match Parser.parse_program "output relation O(x: int) O(x) :- R(x)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing dot must fail"

let test_pp_parse_roundtrip () =
  let src =
    {|
    input relation Edge(a: int, b: int)
    output relation Reach(a: int, b: int)
    Reach(a, b) :- Edge(a, b).
    Reach(a, c) :- Reach(a, b), Edge(b, c).
    |}
  in
  let p = parse src in
  let printed = Format.asprintf "%a" Ast.pp_program p in
  let p2 = parse printed in
  Alcotest.(check int) "decls preserved" (List.length p.Ast.decls)
    (List.length p2.Ast.decls);
  Alcotest.(check int) "rules preserved" (List.length p.Ast.rules)
    (List.length p2.Ast.rules)

let tests =
  [
    Alcotest.test_case "declarations" `Quick test_decls;
    Alcotest.test_case "rules" `Quick test_rules;
    Alcotest.test_case "literal kinds" `Quick test_literal_kinds;
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "int->bit coercion" `Quick test_int_to_bit_coercion;
    Alcotest.test_case "expression precedence" `Quick test_expression_precedence;
    Alcotest.test_case "comments and errors" `Quick test_comments_and_errors;
    Alcotest.test_case "pp/parse roundtrip" `Quick test_pp_parse_roundtrip;
  ]
