(* Unit tests for the observability subsystem: nearest-rank percentile
   correctness against known quantiles, registry behaviour, the global
   kill switch, and the JSON rendering. *)

let check_float msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

(* ---------------- percentile_of_sorted ---------------- *)

let test_percentile_known_quantiles () =
  (* 1..100: nearest-rank pN is exactly N *)
  let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50 of 1..100" 50.0 (Obs.Histogram.percentile_of_sorted a 0.50);
  check_float "p90 of 1..100" 90.0 (Obs.Histogram.percentile_of_sorted a 0.90);
  check_float "p99 of 1..100" 99.0 (Obs.Histogram.percentile_of_sorted a 0.99);
  check_float "p100 of 1..100" 100.0 (Obs.Histogram.percentile_of_sorted a 1.0);
  (* p=0 clamps to the first rank *)
  check_float "p0 of 1..100" 1.0 (Obs.Histogram.percentile_of_sorted a 0.0)

let test_percentile_small_samples () =
  (* The bug the shared implementation fixes: floor(p*n) indexing gave
     p50 of [1.; 2.] = 2.; nearest rank ceil(0.5 * 2) = 1 gives 1. *)
  check_float "p50 of [1;2]" 1.0
    (Obs.Histogram.percentile_of_sorted [| 1.0; 2.0 |] 0.50);
  check_float "p51 of [1;2]" 2.0
    (Obs.Histogram.percentile_of_sorted [| 1.0; 2.0 |] 0.51);
  check_float "p50 of [7]" 7.0 (Obs.Histogram.percentile_of_sorted [| 7.0 |] 0.5);
  check_float "p50 of [1;2;3]" 2.0
    (Obs.Histogram.percentile_of_sorted [| 1.0; 2.0; 3.0 |] 0.50);
  check_float "empty" 0.0 (Obs.Histogram.percentile_of_sorted [||] 0.5)

let test_histogram_stats () =
  Obs.reset ();
  let h = Obs.Histogram.create ~unit_:"us" "test.hist.stats" in
  for i = 1 to 100 do
    Obs.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  check_float "sum" 5050.0 (Obs.Histogram.sum h);
  check_float "mean" 50.5 (Obs.Histogram.mean h);
  check_float "min" 1.0 (Obs.Histogram.min_value h);
  check_float "max" 100.0 (Obs.Histogram.max_value h);
  check_float "p50" 50.0 (Obs.Histogram.percentile h 0.50);
  check_float "p99" 99.0 (Obs.Histogram.percentile h 0.99)

(* ---------------- counters, gauges, registry ---------------- *)

let test_counter_and_registry () =
  Obs.reset ();
  let c = Obs.Counter.create "test.counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Obs.Counter.value c);
  Alcotest.(check int) "by name" 5 (Obs.counter_value "test.counter");
  Alcotest.(check int) "absent name" 0 (Obs.counter_value "test.no.such");
  (* find-or-create returns the same underlying counter *)
  let c' = Obs.Counter.create "test.counter" in
  Obs.Counter.incr c';
  Alcotest.(check int) "shared" 6 (Obs.Counter.value c);
  (* name collisions across kinds are rejected *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Obs: test.counter is registered as a counter, not a histogram")
    (fun () -> ignore (Obs.Histogram.create "test.counter"));
  let g = Obs.Gauge.create "test.gauge" in
  Obs.Gauge.set g 2.5;
  check_float "gauge" 2.5 (Obs.gauge_value "test.gauge")

let test_kill_switch () =
  Obs.reset ();
  let c = Obs.Counter.create "test.gated.counter" in
  let h = Obs.Histogram.create "test.gated.hist" in
  Obs.set_enabled false;
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Histogram.observe h 1.0;
  let r = Obs.span "test.gated.span" (fun () -> 42) in
  Obs.set_enabled true;
  Alcotest.(check int) "span still runs f" 42 r;
  Alcotest.(check int) "counter gated" 0 (Obs.Counter.value c);
  Alcotest.(check int) "hist gated" 0 (Obs.Histogram.count h);
  Alcotest.(check int) "gated span not recorded" 0
    (Obs.counter_value "test.gated.span");
  (* re-enabled: everything records again *)
  Obs.Counter.incr c;
  ignore (Obs.span "test.enabled.span" (fun () -> ()));
  Alcotest.(check int) "counter live" 1 (Obs.Counter.value c);
  (match Obs.find_histogram "test.enabled.span" with
  | Some h -> Alcotest.(check int) "span recorded" 1 (Obs.Histogram.count h)
  | None -> Alcotest.fail "span histogram not registered")

let test_span_records_on_raise () =
  Obs.reset ();
  (try Obs.span "test.raising.span" (fun () -> failwith "boom")
   with Failure _ -> ());
  match Obs.find_histogram "test.raising.span" with
  | Some h ->
    Alcotest.(check int) "recorded despite raise" 1 (Obs.Histogram.count h)
  | None -> Alcotest.fail "span histogram not registered"

let test_reset () =
  let c = Obs.Counter.create "test.reset.counter" in
  let h = Obs.Histogram.create "test.reset.hist" in
  Obs.Counter.add c 7;
  Obs.Histogram.observe h 3.0;
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
  Alcotest.(check int) "hist zeroed" 0 (Obs.Histogram.count h);
  check_float "hist max zeroed" 0.0 (Obs.Histogram.max_value h);
  (* handles stay usable after reset *)
  Obs.Counter.incr c;
  Alcotest.(check int) "counter live after reset" 1 (Obs.Counter.value c)

let test_render_json () =
  Obs.reset ();
  let c = Obs.Counter.create "test.json.counter" in
  Obs.Counter.add c 3;
  let h = Obs.Histogram.create "test.json.hist" in
  Obs.Histogram.observe h 2.0;
  let s = Obs.render_json () in
  Alcotest.(check bool) "one line" false (String.contains s '\n');
  Alcotest.(check bool) "object" true
    (String.length s >= 2 && s.[0] = '{' && s.[String.length s - 1] = '}');
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter value" true
    (contains "\"test.json.counter\":3");
  Alcotest.(check bool) "hist object" true (contains "\"count\":1");
  Alcotest.(check bool) "no inf/nan leakage" false
    (contains "inf" || contains "nan")

let tests =
  [
    Alcotest.test_case "percentile: known quantiles" `Quick
      test_percentile_known_quantiles;
    Alcotest.test_case "percentile: small samples" `Quick
      test_percentile_small_samples;
    Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
    Alcotest.test_case "counter + registry" `Quick test_counter_and_registry;
    Alcotest.test_case "kill switch" `Quick test_kill_switch;
    Alcotest.test_case "span records on raise" `Quick
      test_span_records_on_raise;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "render_json" `Quick test_render_json;
  ]
