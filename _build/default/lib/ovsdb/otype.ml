(* The OVSDB type system (RFC 7047 §3.2): atomic types with optional
   constraints, and column types that are sets or maps of atoms with
   cardinality bounds.  A scalar column is a set with min = max = 1. *)

type atomic = AInteger | AReal | ABoolean | AString | AUuid

type base = {
  typ : atomic;
  enum : Atom.t list option;       (* allowed values, if constrained *)
  min_int : int64 option;          (* integer range constraint *)
  max_int : int64 option;
  ref_table : string option;       (* for uuid: the referenced table *)
}

type cardinality = Limit of int | Unlimited

type t = {
  key : base;
  value : base option;             (* present for map columns *)
  min : int;                       (* 0 or 1 *)
  max : cardinality;               (* >= min *)
}

let base ?(enum = None) ?(min_int = None) ?(max_int = None) ?(ref_table = None)
    typ =
  { typ; enum; min_int; max_int; ref_table }

(** A scalar column: exactly one atom. *)
let scalar typ = { key = base typ; value = None; min = 1; max = Limit 1 }

(** An optional scalar: zero or one atom. *)
let optional typ = { key = base typ; value = None; min = 0; max = Limit 1 }

(** A set of atoms with the given bounds (default unbounded). *)
let set ?(min = 0) ?(max = Unlimited) b = { key = b; value = None; min; max }

(** A map from [k] atoms to [v] atoms. *)
let map ?(min = 0) ?(max = Unlimited) k v =
  { key = k; value = Some v; min; max }

(** An enum-of-strings scalar. *)
let string_enum values =
  {
    key = base ~enum:(Some (List.map (fun s -> Atom.String s) values)) AString;
    value = None;
    min = 1;
    max = Limit 1;
  }

let atomic_name = function
  | AInteger -> "integer"
  | AReal -> "real"
  | ABoolean -> "boolean"
  | AString -> "string"
  | AUuid -> "uuid"

let atomic_of_name = function
  | "integer" -> Some AInteger
  | "real" -> Some AReal
  | "boolean" -> Some ABoolean
  | "string" -> Some AString
  | "uuid" -> Some AUuid
  | _ -> None

(** Does [a] inhabit base type [b]? *)
let check_atom (b : base) (a : Atom.t) : (unit, string) result =
  let type_ok =
    match b.typ, a with
    | AInteger, Atom.Integer _
    | AReal, Atom.Real _
    | ABoolean, Atom.Boolean _
    | AString, Atom.String _
    | AUuid, Atom.Uuid _ -> true
    | _ -> false
  in
  if not type_ok then
    Error
      (Printf.sprintf "expected %s, got %s" (atomic_name b.typ)
         (Atom.to_string a))
  else
    let enum_ok =
      match b.enum with
      | None -> true
      | Some allowed -> List.exists (Atom.equal a) allowed
    in
    if not enum_ok then Error (Printf.sprintf "%s not in enum" (Atom.to_string a))
    else
      match a, b.min_int, b.max_int with
      | Atom.Integer i, Some lo, _ when i < lo -> Error "integer below minimum"
      | Atom.Integer i, _, Some hi when i > hi -> Error "integer above maximum"
      | _ -> Ok ()

(** Validate a datum against the column type. *)
let check (t : t) (d : Datum.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let card_ok n =
    if n < t.min then Error (Printf.sprintf "fewer than %d elements" t.min)
    else
      match t.max with
      | Unlimited -> Ok ()
      | Limit m ->
        if n > m then Error (Printf.sprintf "more than %d elements" m) else Ok ()
  in
  match d, t.value with
  | Datum.Set atoms, None ->
    let* () = card_ok (List.length atoms) in
    List.fold_left
      (fun acc a ->
        let* () = acc in
        check_atom t.key a)
      (Ok ()) atoms
  | Datum.Map pairs, Some vt ->
    let* () = card_ok (List.length pairs) in
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        let* () = check_atom t.key k in
        check_atom vt v)
      (Ok ()) pairs
  | Datum.Set _, Some _ -> Error "expected a map datum"
  | Datum.Map _, None -> Error "expected a set datum"

(** The default datum for a column (what [insert] fills in when the
    column is omitted): the empty set/map, or the type's zero value for
    scalar columns. *)
let default (t : t) : Datum.t =
  if t.min = 0 then (match t.value with None -> Datum.Set [] | Some _ -> Datum.Map [])
  else
    let zero : Atom.t =
      match t.key.enum with
      | Some (a :: _) -> a
      | _ -> (
        match t.key.typ with
        | AInteger -> Atom.Integer 0L
        | AReal -> Atom.Real 0.0
        | ABoolean -> Atom.Boolean false
        | AString -> Atom.String ""
        | AUuid -> Atom.Uuid Uuid.nil)
    in
    Datum.Set [ zero ]

(* ---------------- JSON (de)serialisation of the type itself -------- *)

let base_to_json (b : base) : Json.t =
  let fields = [ ("type", Json.String (atomic_name b.typ)) ] in
  let fields =
    match b.enum with
    | None -> fields
    | Some atoms ->
      fields
      @ [ ("enum", Json.List [ Json.String "set";
                               Json.List (List.map Atom.to_json atoms) ]) ]
  in
  let fields =
    match b.ref_table with
    | None -> fields
    | Some t -> fields @ [ ("refTable", Json.String t) ]
  in
  match fields with
  | [ ("type", j) ] -> j (* shorthand used by real OVSDB schemas *)
  | fields -> Json.Obj fields

let to_json (t : t) : Json.t =
  match t.value, t.min, t.max with
  | None, 1, Limit 1 -> base_to_json t.key
  | _ ->
    let fields = [ ("key", base_to_json t.key) ] in
    let fields =
      match t.value with
      | None -> fields
      | Some v -> fields @ [ ("value", base_to_json v) ]
    in
    let fields = fields @ [ ("min", Json.Int (Int64.of_int t.min)) ] in
    let fields =
      fields
      @ [ ("max",
           match t.max with
           | Unlimited -> Json.String "unlimited"
           | Limit m -> Json.Int (Int64.of_int m)) ]
    in
    Json.Obj fields
