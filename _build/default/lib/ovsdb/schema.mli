(** Database schemas: named tables with typed columns, uniqueness
    indexes, and immutable-column markers (RFC 7047 §3.1). *)

type column = {
  cname : string;
  ctype : Otype.t;
  mutable_ : bool;  (** updatable after insert? *)
}

type table = {
  tname : string;
  columns : column list;
  indexes : string list list;  (** each inner list: a unique key *)
  is_root : bool;
}

type t = { name : string; version : string; tables : table list }

val column : ?mutable_:bool -> string -> Otype.t -> column
val table : ?indexes:string list list -> ?is_root:bool -> string -> column list -> table
val make : name:string -> version:string -> table list -> t

val find_table : t -> string -> table option
val find_column : table -> string -> column option

val validate : t -> (unit, string list) result
(** Internal consistency: unique names, indexes over existing columns,
    reference targets that exist, no reserved column names. *)

val to_json : t -> Json.t
(** The schema as served by the [get_schema] RPC. *)
