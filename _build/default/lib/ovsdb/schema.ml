(* Database schemas: named tables with typed columns, uniqueness
   indexes, and immutable-column markers. *)

type column = {
  cname : string;
  ctype : Otype.t;
  mutable_ : bool;       (* updatable after insert? *)
}

type table = {
  tname : string;
  columns : column list;
  indexes : string list list;  (* each inner list: columns forming a unique key *)
  is_root : bool;              (* root tables are not garbage collected *)
}

type t = {
  name : string;
  version : string;
  tables : table list;
}

let column ?(mutable_ = true) cname ctype = { cname; ctype; mutable_ }

let table ?(indexes = []) ?(is_root = true) tname columns =
  { tname; columns; indexes; is_root }

let make ~name ~version tables = { name; version; tables }

let find_table (s : t) name =
  List.find_opt (fun tbl -> String.equal tbl.tname name) s.tables

let find_column (tbl : table) name =
  List.find_opt (fun c -> String.equal c.cname name) tbl.columns

(** Validate internal consistency: unique table/column names, indexes
    referring to existing columns. *)
let validate (s : t) : (unit, string list) result =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let seen_tables = Hashtbl.create 8 in
  List.iter
    (fun tbl ->
      if Hashtbl.mem seen_tables tbl.tname then err "duplicate table %s" tbl.tname;
      Hashtbl.add seen_tables tbl.tname ();
      let seen_cols = Hashtbl.create 8 in
      List.iter
        (fun c ->
          if Hashtbl.mem seen_cols c.cname then
            err "duplicate column %s.%s" tbl.tname c.cname;
          Hashtbl.add seen_cols c.cname ();
          if String.equal c.cname "_uuid" then
            err "%s: _uuid is a reserved column name" tbl.tname)
        tbl.columns;
      List.iter
        (fun index ->
          if index = [] then err "%s: empty index" tbl.tname;
          List.iter
            (fun cname ->
              if find_column tbl cname = None then
                err "%s: index over unknown column %s" tbl.tname cname)
            index)
        tbl.indexes;
      (* Reference targets must exist. *)
      List.iter
        (fun c ->
          match c.ctype.Otype.key.ref_table with
          | Some target when not (Hashtbl.mem seen_tables target)
                             && find_table s target = None ->
            err "%s.%s references unknown table %s" tbl.tname c.cname target
          | _ -> ())
        tbl.columns)
    s.tables;
  match !errors with [] -> Ok () | e -> Error (List.rev e)

(** The schema in OVSDB JSON form (RFC 7047 §3.1), as served by the
    get_schema RPC. *)
let to_json (s : t) : Json.t =
  let column_json (c : column) =
    let fields = [ ("type", Otype.to_json c.ctype) ] in
    let fields =
      if c.mutable_ then fields else fields @ [ ("mutable", Json.Bool false) ]
    in
    Json.Obj fields
  in
  let table_json (tbl : table) =
    let fields =
      [ ("columns",
         Json.Obj (List.map (fun c -> (c.cname, column_json c)) tbl.columns)) ]
    in
    let fields =
      if tbl.indexes = [] then fields
      else
        fields
        @ [ ("indexes",
             Json.List
               (List.map
                  (fun ix -> Json.List (List.map (fun c -> Json.String c) ix))
                  tbl.indexes)) ]
    in
    let fields = fields @ [ ("isRoot", Json.Bool tbl.is_root) ] in
    Json.Obj fields
  in
  Json.Obj
    [
      ("name", Json.String s.name);
      ("version", Json.String s.version);
      ("tables", Json.Obj (List.map (fun t -> (t.tname, table_json t)) s.tables));
    ]
