lib/ovsdb/rpc.mli: Datum Db Json
