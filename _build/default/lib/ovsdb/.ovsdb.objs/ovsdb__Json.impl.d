lib/ovsdb/json.ml: Buffer Char Float Format Int64 List Printf String
