lib/ovsdb/datum.mli: Atom Format Json Uuid
