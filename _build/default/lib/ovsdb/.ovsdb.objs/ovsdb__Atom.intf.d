lib/ovsdb/atom.mli: Format Json Uuid
