lib/ovsdb/db.ml: Atom Datum Float Format Hashtbl Int64 List Option Otype Schema String Uuid
