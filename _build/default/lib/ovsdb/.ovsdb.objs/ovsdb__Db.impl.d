lib/ovsdb/db.ml: Atom Datum Float Format Hashtbl Int64 List Obs Option Otype Schema String Uuid
