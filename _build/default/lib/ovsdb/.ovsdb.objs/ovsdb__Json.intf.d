lib/ovsdb/json.mli: Format
