lib/ovsdb/schema.ml: Format Hashtbl Json List Otype String
