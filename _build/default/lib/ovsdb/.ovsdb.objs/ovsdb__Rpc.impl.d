lib/ovsdb/rpc.ml: Datum Db Format Hashtbl Int64 Json List Option Printf Schema Uuid
