lib/ovsdb/db.mli: Datum Hashtbl Schema Uuid
