lib/ovsdb/uuid.ml: Format Hashtbl Printf String
