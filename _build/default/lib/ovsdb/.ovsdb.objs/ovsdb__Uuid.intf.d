lib/ovsdb/uuid.mli: Format
