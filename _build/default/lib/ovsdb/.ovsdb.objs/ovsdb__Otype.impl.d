lib/ovsdb/otype.ml: Atom Datum Int64 Json List Printf Result Uuid
