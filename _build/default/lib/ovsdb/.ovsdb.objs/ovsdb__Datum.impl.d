lib/ovsdb/datum.ml: Atom Format Json List Result
