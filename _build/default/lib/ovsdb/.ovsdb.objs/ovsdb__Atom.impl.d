lib/ovsdb/atom.ml: Bool Float Format Int Int64 Json Printf String Uuid
