lib/ovsdb/schema.mli: Json Otype
