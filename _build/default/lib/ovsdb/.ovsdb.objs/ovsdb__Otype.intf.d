lib/ovsdb/otype.mli: Atom Datum Json
