(** Row identifiers in the canonical 8-4-4-4-12 textual form.

    Real OVSDB uses RFC 4122 UUIDs; these are generated from a
    process-local counter mixed with a seed, which keeps test output
    reproducible while preserving uniqueness and format. *)

type t = private string

val fresh : unit -> t
(** A UUID unique within the process. *)

val of_string_opt : string -> t option
(** Validate and adopt a canonical textual form. *)

val nil : t
(** The all-zero UUID (the default for required uuid columns). *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
