(* A small self-contained JSON implementation (yojson is not available
   in this environment).  Covers everything the OVSDB wire protocol
   needs: parsing, printing, and a few accessor helpers. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------------- printing ---------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf (j : t) =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (Int64.to_string i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_string buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

type parser_state = { src : string; mutable pos : int }

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let error st fmt =
  Format.kasprintf
    (fun s -> raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos s)))
    fmt

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek_char st with
  | Some c' when c = c' -> st.pos <- st.pos + 1
  | Some c' -> error st "expected %C, found %C" c c'
  | None -> error st "expected %C, found end of input" c

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some c -> c
  | None -> error st "bad \\u escape %s" s

let utf8_encode buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then error st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      if st.pos >= String.length st.src then error st "unterminated escape";
      let e = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | 'r' -> Buffer.add_char buf '\r'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'u' -> utf8_encode buf (parse_hex4 st)
      | c -> error st "bad escape \\%c" c);
      go ()
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

let rec parse_value st : t =
  skip_ws st;
  match peek_char st with
  | None -> error st "unexpected end of input"
  | Some '"' ->
    st.pos <- st.pos + 1;
    String (parse_string_body st)
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek_char st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        expect st '"';
        let k = parse_string_body st in
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> error st "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek_char st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> error st "expected , or ] in array"
      in
      List (items [])
    end
  | Some 't' ->
    if st.pos + 4 <= String.length st.src && String.sub st.src st.pos 4 = "true"
    then begin
      st.pos <- st.pos + 4;
      Bool true
    end
    else error st "bad literal"
  | Some 'f' ->
    if st.pos + 5 <= String.length st.src && String.sub st.src st.pos 5 = "false"
    then begin
      st.pos <- st.pos + 5;
      Bool false
    end
    else error st "bad literal"
  | Some 'n' ->
    if st.pos + 4 <= String.length st.src && String.sub st.src st.pos 4 = "null"
    then begin
      st.pos <- st.pos + 4;
      Null
    end
    else error st "bad literal"
  | Some c when c = '-' || (c >= '0' && c <= '9') ->
    let start = st.pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while st.pos < String.length st.src && is_num st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
    let text = String.sub st.src start (st.pos - start) in
    if String.contains text '.' || String.contains text 'e'
       || String.contains text 'E' then
      (match float_of_string_opt text with
      | Some f -> Float f
      | None -> error st "bad number %s" text)
    else (
      match Int64.of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error st "bad number %s" text))
  | Some c -> error st "unexpected character %C" c

(** Parse a complete JSON document; trailing garbage is an error. *)
let of_string (s : string) : t =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_exn = function
  | List l -> l
  | j -> raise (Parse_error ("expected array, got " ^ to_string j))

let to_string_exn = function
  | String s -> s
  | j -> raise (Parse_error ("expected string, got " ^ to_string j))

let to_int_exn = function
  | Int i -> i
  | j -> raise (Parse_error ("expected integer, got " ^ to_string j))

let equal (a : t) (b : t) = a = b

let rec pp fmt (j : t) =
  match j with
  | Null | Bool _ | Int _ | Float _ | String _ ->
    Format.pp_print_string fmt (to_string j)
  | List l ->
    Format.fprintf fmt "[@[<hv>%a@]]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
      l
  | Obj fields ->
    let pp_field f (k, v) = Format.fprintf f "%S: %a" k pp v in
    Format.fprintf fmt "{@[<hv>%a@]}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp_field)
      fields
