(* Row identifiers.  Real OVSDB uses RFC-4122 UUIDs; this implementation
   generates them deterministically from a per-process counter mixed
   with a seed, which keeps test output reproducible while preserving
   the uniqueness and textual format that the protocol relies on. *)

type t = string (* canonical 8-4-4-4-12 lower-case hex form *)

let counter = ref 0

let format_parts a b c d e = Printf.sprintf "%08x-%04x-%04x-%04x-%012x" a b c d e

(** A fresh UUID, unique within the process. *)
let fresh () : t =
  incr counter;
  let n = !counter in
  let h = Hashtbl.hash (n, "nerpa-ovsdb") in
  format_parts (h land 0xffffffff) (n lsr 16 land 0xffff) (n land 0xffff)
    ((h lsr 8) land 0xffff)
    (n land 0xffffffffffff)

(** Parse the canonical textual form. *)
let of_string_opt (s : string) : t option =
  let ok =
    String.length s = 36
    && String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
         s
    && s.[8] = '-' && s.[13] = '-' && s.[18] = '-' && s.[23] = '-'
  in
  if ok then Some s else None

(** The all-zero UUID, used as the default for required uuid columns. *)
let nil : t = "00000000-0000-0000-0000-000000000000"

let to_string (u : t) = u
let equal = String.equal
let compare = String.compare
let pp fmt u = Format.pp_print_string fmt u
