(** A small self-contained JSON implementation covering everything the
    OVSDB wire protocol needs: parsing, printing, and a few accessors. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering with proper string escaping. *)

val of_string : string -> t
(** Parse a complete document; trailing garbage is an error.
    @raise Parse_error with an offset-annotated message. *)

val of_string_opt : string -> t option

val member : string -> t -> t option
(** Field lookup on objects ([None] on non-objects). *)

val to_list_exn : t -> t list
val to_string_exn : t -> string
val to_int_exn : t -> int64
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Multi-line pretty form (for diagnostics; not canonical). *)
