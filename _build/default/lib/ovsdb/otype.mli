(** The OVSDB type system (RFC 7047 §3.2): atomic types with optional
    constraints, and column types that are sets or maps of atoms with
    cardinality bounds.  A scalar column is a set with min = max = 1. *)

type atomic = AInteger | AReal | ABoolean | AString | AUuid

type base = {
  typ : atomic;
  enum : Atom.t list option;   (** allowed values, if constrained *)
  min_int : int64 option;      (** integer range constraint *)
  max_int : int64 option;
  ref_table : string option;   (** for uuid: the referenced table *)
}

type cardinality = Limit of int | Unlimited

type t = {
  key : base;
  value : base option;  (** present for map columns *)
  min : int;
  max : cardinality;
}

val base :
  ?enum:Atom.t list option ->
  ?min_int:int64 option ->
  ?max_int:int64 option ->
  ?ref_table:string option ->
  atomic ->
  base

val scalar : atomic -> t
(** Exactly one atom. *)

val optional : atomic -> t
(** Zero or one atom. *)

val set : ?min:int -> ?max:cardinality -> base -> t
val map : ?min:int -> ?max:cardinality -> base -> base -> t
val string_enum : string list -> t

val atomic_name : atomic -> string
val atomic_of_name : string -> atomic option

val check_atom : base -> Atom.t -> (unit, string) result
val check : t -> Datum.t -> (unit, string) result
(** Validate a datum: shape, cardinality, per-atom constraints. *)

val default : t -> Datum.t
(** What [insert] fills in for an omitted column. *)

val to_json : t -> Json.t
