(** Column values: a sorted set of atoms or a sorted map of atom pairs.
    A scalar column stores a singleton set, following RFC 7047.
    Sorting canonicalises values so that structural equality is
    semantic equality. *)

type t =
  | Set of Atom.t list            (** sorted, duplicate-free *)
  | Map of (Atom.t * Atom.t) list (** sorted by key, duplicate-free keys *)

(** {1 Constructors (canonicalising)} *)

val set : Atom.t list -> t
val map : (Atom.t * Atom.t) list -> t
val scalar : Atom.t -> t
val integer : int64 -> t
val string : string -> t
val boolean : bool -> t
val real : float -> t
val uuid : Uuid.t -> t
val empty_set : t
val empty_map : t

(** {1 Accessors} *)

val as_scalar : t -> Atom.t option
(** The single atom of a singleton set; [None] otherwise. *)

val as_integer : t -> int64 option
val as_string : t -> string option
val as_boolean : t -> bool option
val as_uuid : t -> Uuid.t option
val as_set : t -> Atom.t list option
val as_map : t -> (Atom.t * Atom.t) list option

val compare : t -> t -> int
val equal : t -> t -> bool
val contains : t -> Atom.t -> bool
val size : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Wire encoding (RFC 7047 §5.1)}

    A scalar is its bare atom, a set is [["set", [...]]], a map is
    [["map", [[k, v], ...]]]. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
