(** OVSDB atoms: the scalar values stored in database columns. *)

type t =
  | Integer of int64
  | Real of float
  | Boolean of bool
  | String of string
  | Uuid of Uuid.t

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Scalars are bare JSON values; UUIDs are tagged ["uuid", "..."] pairs. *)

val of_json : Json.t -> (t, string) result
(** Note: ["named-uuid", ...] references are rejected here — they must
    be resolved by the transaction processor (see {!Rpc}). *)
