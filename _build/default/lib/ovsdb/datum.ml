(* Column values: a sorted set of atoms or a sorted map of atom pairs.
   A scalar column stores a singleton set.  Sorting canonicalises
   values so that structural equality is semantic equality. *)

type t =
  | Set of Atom.t list            (* sorted, duplicate-free *)
  | Map of (Atom.t * Atom.t) list (* sorted by key, duplicate-free keys *)

let set atoms = Set (List.sort_uniq Atom.compare atoms)

let map pairs =
  let sorted =
    List.sort_uniq (fun (k1, _) (k2, _) -> Atom.compare k1 k2) pairs
  in
  Map sorted

let scalar a = Set [ a ]
let integer i = scalar (Atom.Integer i)
let string s = scalar (Atom.String s)
let boolean b = scalar (Atom.Boolean b)
let real f = scalar (Atom.Real f)
let uuid u = scalar (Atom.Uuid u)
let empty_set = Set []
let empty_map = Map []

(** The single atom of a scalar datum. *)
let as_scalar = function
  | Set [ a ] -> Some a
  | Set _ | Map _ -> None

let as_integer d =
  match as_scalar d with Some (Atom.Integer i) -> Some i | _ -> None

let as_string d =
  match as_scalar d with Some (Atom.String s) -> Some s | _ -> None

let as_boolean d =
  match as_scalar d with Some (Atom.Boolean b) -> Some b | _ -> None

let as_uuid d = match as_scalar d with Some (Atom.Uuid u) -> Some u | _ -> None

let as_set = function Set atoms -> Some atoms | Map _ -> None
let as_map = function Map pairs -> Some pairs | Set _ -> None

let compare (a : t) (b : t) =
  match a, b with
  | Set x, Set y -> List.compare Atom.compare x y
  | Map x, Map y ->
    List.compare
      (fun (k1, v1) (k2, v2) ->
        let c = Atom.compare k1 k2 in
        if c <> 0 then c else Atom.compare v1 v2)
      x y
  | Set _, Map _ -> -1
  | Map _, Set _ -> 1

let equal a b = compare a b = 0

let contains (d : t) (a : Atom.t) =
  match d with
  | Set atoms -> List.exists (Atom.equal a) atoms
  | Map pairs -> List.exists (fun (k, _) -> Atom.equal a k) pairs

let size = function Set l -> List.length l | Map l -> List.length l

let pp fmt = function
  | Set [ a ] -> Atom.pp fmt a
  | Set atoms ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Atom.pp)
      atoms
  | Map pairs ->
    let pp_pair f (k, v) = Format.fprintf f "%a=%a" Atom.pp k Atom.pp v in
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_pair)
      pairs

let to_string d = Format.asprintf "%a" pp d

(* Wire encoding (RFC 7047 §5.1): a scalar is its bare atom; a set is
   ["set", [atoms]]; a map is ["map", [[k, v], ...]]. *)

let to_json : t -> Json.t = function
  | Set [ a ] -> Atom.to_json a
  | Set atoms -> Json.List [ Json.String "set"; Json.List (List.map Atom.to_json atoms) ]
  | Map pairs ->
    Json.List
      [ Json.String "map";
        Json.List
          (List.map
             (fun (k, v) -> Json.List [ Atom.to_json k; Atom.to_json v ])
             pairs) ]

let of_json (j : Json.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let atoms_of l =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* a = Atom.of_json x in
        Ok (a :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  match j with
  | Json.List [ Json.String "set"; Json.List l ] ->
    let* atoms = atoms_of l in
    Ok (set atoms)
  | Json.List [ Json.String "map"; Json.List l ] ->
    let* pairs =
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          match x with
          | Json.List [ k; v ] ->
            let* k = Atom.of_json k in
            let* v = Atom.of_json v in
            Ok ((k, v) :: acc)
          | j -> Error ("bad map entry: " ^ Json.to_string j))
        (Ok []) l
      |> Result.map List.rev
    in
    Ok (map pairs)
  | j ->
    let* a = Atom.of_json j in
    Ok (scalar a)
