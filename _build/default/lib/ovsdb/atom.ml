(* OVSDB atoms: the scalar values stored in database columns. *)

type t =
  | Integer of int64
  | Real of float
  | Boolean of bool
  | String of string
  | Uuid of Uuid.t

let compare (a : t) (b : t) =
  let tag = function
    | Integer _ -> 0
    | Real _ -> 1
    | Boolean _ -> 2
    | String _ -> 3
    | Uuid _ -> 4
  in
  match a, b with
  | Integer x, Integer y -> Int64.compare x y
  | Real x, Real y -> Float.compare x y
  | Boolean x, Boolean y -> Bool.compare x y
  | String x, String y -> String.compare x y
  | Uuid x, Uuid y -> Uuid.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let to_string = function
  | Integer i -> Int64.to_string i
  | Real f -> Printf.sprintf "%g" f
  | Boolean b -> string_of_bool b
  | String s -> Printf.sprintf "%S" s
  | Uuid u -> Uuid.to_string u

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* The OVSDB wire encoding: scalars are bare JSON values, UUIDs are
   tagged pairs ["uuid", "..."]. *)

let to_json : t -> Json.t = function
  | Integer i -> Json.Int i
  | Real f -> Json.Float f
  | Boolean b -> Json.Bool b
  | String s -> Json.String s
  | Uuid u -> Json.List [ Json.String "uuid"; Json.String (Uuid.to_string u) ]

let of_json (j : Json.t) : (t, string) result =
  match j with
  | Json.Int i -> Ok (Integer i)
  | Json.Float f -> Ok (Real f)
  | Json.Bool b -> Ok (Boolean b)
  | Json.String s -> Ok (String s)
  | Json.List [ Json.String "uuid"; Json.String u ] -> (
    match Uuid.of_string_opt u with
    | Some u -> Ok (Uuid u)
    | None -> Error (Printf.sprintf "bad uuid %S" u))
  | Json.List [ Json.String "named-uuid"; Json.String _ ] ->
    Error "named-uuid must be resolved by the transaction processor"
  | j -> Error ("not an atom: " ^ Json.to_string j)
