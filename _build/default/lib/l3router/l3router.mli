(** l3router — a second application on the Nerpa stack: a static IPv4
    router with longest-prefix-match routes, next-hop MAC rewrite and
    TTL decrement, an optional-match protocol filter, and per-port
    counters.  It exercises the generated-schema features snvs does not
    (LPM keys, Optional keys, multi-parameter actions) and multi-switch
    deployments. *)

val schema : Ovsdb.Schema.t
(** StaticRoute, Neighbor and ProtocolFilter tables. *)

val p4 : P4.Program.t
val rules : string

type deployment = {
  db : Ovsdb.Db.t;
  switches : (string * P4.Switch.t) list;
  controller : Nerpa.Controller.t;
}

val deploy : ?switch_names:string list -> unit -> deployment
(** Deploy across several switches, all running the same program. *)

val switch : deployment -> string -> P4.Switch.t
(** @raise Not_found for unknown switch names. *)

val add_route : deployment -> prefix:int64 -> plen:int -> nexthop:int64 -> unit
val del_route : deployment -> prefix:int64 -> plen:int -> unit
val add_neighbor : deployment -> ip:int64 -> mac:int64 -> port:int -> unit
val del_neighbor : deployment -> ip:int64 -> unit
val set_protocol : deployment -> protocol:int -> allow:bool -> unit

val sync : deployment -> int
(** Shorthand for [Nerpa.Controller.sync]. *)
