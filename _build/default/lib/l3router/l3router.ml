(* l3router — a second application built on the Nerpa stack (the paper
   plans "bottom-up implementations of increasingly complex network
   programs"; this is the next step after snvs).

   A static IPv4 router: longest-prefix-match routes with next-hop MAC
   rewrite and TTL decrement, an optional-match protocol filter, and
   per-port packet counters.  Compared with snvs it exercises the parts
   of the generated schema snvs does not: LPM keys (prefix-length
   columns), Optional keys, multi-column action parameters, and
   deployments spanning several switches running the same program. *)

(* ---------------- management plane ---------------- *)

let schema : Ovsdb.Schema.t =
  let open Ovsdb in
  Schema.make ~name:"l3router" ~version:"1.0.0"
    [
      Schema.table "StaticRoute"
        ~indexes:[ [ "prefix"; "plen" ] ]
        [
          Schema.column "prefix" (Otype.scalar Otype.AInteger);
          Schema.column "plen"
            Otype.
              {
                key = base ~min_int:(Some 0L) ~max_int:(Some 32L) AInteger;
                value = None;
                min = 1;
                max = Limit 1;
              };
          Schema.column "nexthop" (Otype.scalar Otype.AInteger);
        ];
      Schema.table "Neighbor"
        ~indexes:[ [ "ip" ] ]
        [
          Schema.column "ip" (Otype.scalar Otype.AInteger);
          Schema.column "mac" (Otype.scalar Otype.AInteger);
          Schema.column "port" (Otype.scalar Otype.AInteger);
        ];
      Schema.table "ProtocolFilter"
        [
          Schema.column "protocol" (Otype.scalar Otype.AInteger);
          Schema.column "allow" (Otype.scalar Otype.ABoolean);
        ];
    ]

(* ---------------- data plane ---------------- *)

let p4 : P4.Program.t =
  let open P4.Program in
  {
    name = "l3router";
    headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
    parser =
      {
        start = "start";
        states =
          [
            {
              sname = "start";
              extracts = [ "ethernet" ];
              transition =
                Select
                  ( Field ("ethernet", "ethertype"),
                    [ (Some P4.Stdhdrs.ethertype_ipv4, "ip"); (None, "other") ] );
            };
            { sname = "ip"; extracts = [ "ipv4" ]; transition = Accept };
            (* non-IP traffic is rejected by this router *)
            { sname = "other"; extracts = []; transition = Reject };
          ];
      };
    actions =
      [
        { aname = "allow"; params = []; body = [] };
        { aname = "deny"; params = []; body = [ Drop ] };
        { aname = "drop"; params = []; body = [ Drop ] };
        (* Route hit: rewrite the destination MAC, decrement TTL,
           count, and forward. *)
        { aname = "route_to"; params = [ ("port", 16); ("dmac", 48) ];
          body =
            [
              Assign (Field ("ethernet", "dst"), EParam "dmac");
              Assign
                ( Field ("ipv4", "ttl"),
                  EBin (Sub, ERef (Field ("ipv4", "ttl")), EConst (8, 1L)) );
              Count ("forwarded", EParam "port");
              Forward (EParam "port");
            ] };
      ];
    tables =
      [
        { tname = "ttl_check"; keys = []; actions = [ "drop" ];
          default_action = ("drop", []); size = 1 };
        { tname = "protocol_filter";
          keys = [ { kref = Field ("ipv4", "protocol"); kind = Optional } ];
          actions = [ "allow"; "deny" ];
          default_action = ("allow", []);
          size = 256 };
        { tname = "routes";
          keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm } ];
          actions = [ "route_to"; "drop" ];
          default_action = ("drop", []);
          size = 65536 };
      ];
    digests = [];
    counters = [ { cname = "forwarded"; cwidth = 16 } ];
    registers = [];
    ingress =
      Seq
        ( If
            ( EBin (Eq, ERef (Field ("ipv4", "ttl")), EConst (8, 0L)),
              ApplyTable "ttl_check",
              Nop ),
          Seq (ApplyTable "protocol_filter", ApplyTable "routes") );
    egress = Nop;
  }

(* ---------------- control plane ---------------- *)

(* Generated relations used below:
     StaticRoute(_uuid, prefix, plen, nexthop)
     Neighbor(_uuid, ip, mac, port)
     ProtocolFilter(_uuid, protocol, allow)
     RoutesRouteTo(ipv4_dst: bit<32>, ipv4_dst_plen: int,
                   port: bit<16>, dmac: bit<48>)
     ProtocolFilterAllow(protocol: option<bit<8>>)
     ProtocolFilterDeny(protocol: option<bit<8>>)                    *)
let rules : string =
  {|
  // A route is installable when its next hop resolves to a neighbor.
  RoutesRouteTo(int2bit(32, prefix), plen, int2bit(16, port), int2bit(48, mac)) :-
    StaticRoute(_, prefix, plen, nh),
    Neighbor(_, nh, mac, port).

  // Protocol filtering; the optional key matches one protocol.
  ProtocolFilterDeny(some(int2bit(8, proto))) :-
    ProtocolFilter(_, proto, false).
  ProtocolFilterAllow(some(int2bit(8, proto))) :-
    ProtocolFilter(_, proto, true).

  // Routes whose next hop is unresolved, for monitoring.
  output relation UnresolvedRoute(prefix: int, plen: int, nexthop: int)
  UnresolvedRoute(prefix, plen, nh) :-
    StaticRoute(_, prefix, plen, nh),
    not Neighbor(_, nh, _, _).
  |}

(* ---------------- convenience API ---------------- *)

type deployment = {
  db : Ovsdb.Db.t;
  switches : (string * P4.Switch.t) list;
  controller : Nerpa.Controller.t;
}

(** Deploy the router across [switch_names] switches, all running the
    same program (the paper's single-program prototype assumption). *)
let deploy ?(switch_names = [ "r0" ]) () : deployment =
  let db = Ovsdb.Db.create schema in
  let switches =
    List.map (fun n -> (n, P4.Switch.create ~name:n p4)) switch_names
  in
  let controller = Nerpa.Controller.create ~db ~p4 ~rules ~switches () in
  { db; switches; controller }

let switch d name = List.assoc name d.switches

let add_route (d : deployment) ~prefix ~plen ~nexthop : unit =
  ignore
    (Ovsdb.Db.insert_exn d.db "StaticRoute"
       [
         ("prefix", Ovsdb.Datum.integer prefix);
         ("plen", Ovsdb.Datum.integer (Int64.of_int plen));
         ("nexthop", Ovsdb.Datum.integer nexthop);
       ])

let del_route (d : deployment) ~prefix ~plen : unit =
  ignore
    (Ovsdb.Db.transact_exn d.db
       [
         Ovsdb.Db.Delete
           {
             table = "StaticRoute";
             where =
               [
                 Ovsdb.Db.eq "prefix" (Ovsdb.Datum.integer prefix);
                 Ovsdb.Db.eq "plen" (Ovsdb.Datum.integer (Int64.of_int plen));
               ];
           };
       ])

let add_neighbor (d : deployment) ~ip ~mac ~port : unit =
  ignore
    (Ovsdb.Db.insert_exn d.db "Neighbor"
       [
         ("ip", Ovsdb.Datum.integer ip);
         ("mac", Ovsdb.Datum.integer mac);
         ("port", Ovsdb.Datum.integer (Int64.of_int port));
       ])

let del_neighbor (d : deployment) ~ip : unit =
  ignore
    (Ovsdb.Db.transact_exn d.db
       [
         Ovsdb.Db.Delete
           { table = "Neighbor";
             where = [ Ovsdb.Db.eq "ip" (Ovsdb.Datum.integer ip) ] };
       ])

let set_protocol (d : deployment) ~protocol ~allow : unit =
  ignore
    (Ovsdb.Db.insert_exn d.db "ProtocolFilter"
       [
         ("protocol", Ovsdb.Datum.integer (Int64.of_int protocol));
         ("allow", Ovsdb.Datum.boolean allow);
       ])

let sync (d : deployment) = Nerpa.Controller.sync d.controller
