(** Hand-written lexer for the DL surface syntax. *)

type token =
  | IDENT of string          (** lower-case: variables, functions *)
  | UIDENT of string         (** upper-case: relation names *)
  | INT of int64
  | FLOAT of float
  | BITLIT of int * int64    (** [12'd34] / [8'hFF] / [4'b1010] literals *)
  | STRING of string
  | KW of string
  | SYM of string
  | EOF

type lexeme = { tok : token; line : int; col : int }

exception Lex_error of string

val keywords : string list

val tokenize : string -> lexeme list
(** Tokenise a whole source text, handling [//] and [/* */] comments,
    string escapes and the numeric literal forms.  Always ends with an
    [EOF] lexeme.
    @raise Lex_error with a line/column-annotated message. *)

val token_to_string : token -> string
