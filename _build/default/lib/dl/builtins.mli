(** Builtin functions of the DL expression language: runtime semantics,
    typing rules, and the aggregate function library used by
    [group_by].

    Operators are named by their symbol (["+"], ["=="], ["&&"],
    ["<<"], ...); functions by name (["vec_push"], ["map_get"],
    ["bit_slice"], ["hash32"], ...).  See the implementation for the
    complete catalogue — each has a typing rule in {!result_type} and a
    unit test in [test/test_builtins.ml]. *)

exception Eval_error of string

val result_type : string -> Dtype.t list -> (Dtype.t, string) result
(** Result type of applying a builtin to arguments of the given types.
    Builtins whose width depends on a constant argument ([int2bit],
    [zext], [bit_slice], [tuple_nth]) are refined by the type checker
    and report [TAny] here. *)

val eval : string -> Value.t list -> Value.t
(** Evaluate a builtin.  Assumes a type-checked program; residual
    dynamic errors (division by zero, out-of-range slices) raise
    {!Eval_error}. *)

(** {1 Aggregates} *)

val agg_names : string list
(** [count], [count_distinct], [sum], [min], [max], [avg],
    [collect_vec], [collect_set]. *)

val agg_result_type : string -> Dtype.t -> (Dtype.t, string) result

val agg_eval : string -> (Value.t * int) list -> Value.t
(** Evaluate an aggregate over a non-empty group given as sorted
    (value, multiplicity) pairs with positive multiplicities. *)
