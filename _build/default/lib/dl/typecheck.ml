(* Static checking of DL programs.

   Verifies, before any evaluation:
   - relation declarations are unique and well-formed;
   - every atom refers to a declared relation with the right arity;
   - variables obey the left-to-right binding discipline (negated atoms,
     conditions and aggregate bodies use only bound variables);
   - expressions are well-typed against the builtin signatures;
   - heads of rules produce values of the declared column types;
   - no rule writes into an [Input] relation and facts target inputs or
     internals only through rules. *)

type env = (string * Dtype.t) list

let lookup env v = List.assoc_opt v env

let rec type_of_expr (env : env) (e : Ast.expr) : (Dtype.t, string) result =
  match e with
  | Ast.EVar v -> (
    match lookup env v with
    | Some t -> Ok t
    | None -> Error (Printf.sprintf "unbound variable %s" v))
  | Ast.EConst c -> Ok (Dtype.of_value c)
  | Ast.ETuple es ->
    let rec go acc = function
      | [] -> Ok (Dtype.TTuple (List.rev acc))
      | e :: rest -> (
        match type_of_expr env e with
        | Ok t -> go (t :: acc) rest
        | Error _ as err -> err)
    in
    go [] es
  | Ast.EIf (c, t, e) -> (
    match type_of_expr env c with
    | Error _ as err -> err
    | Ok ct ->
      if not (Dtype.equal ct Dtype.TBool) then
        Error "if condition must be boolean"
      else (
        match type_of_expr env t, type_of_expr env e with
        | Ok tt, Ok et -> (
          match Dtype.unify tt et with
          | Some u -> Ok u
          | None ->
            Error
              (Printf.sprintf "if branches have different types %s / %s"
                 (Dtype.to_string tt) (Dtype.to_string et)))
        | Error msg, _ | _, Error msg -> Error msg))
  | Ast.ECall (f, args) -> (
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | a :: rest -> (
        match type_of_expr env a with
        | Ok t -> go (t :: acc) rest
        | Error _ as err -> err)
    in
    match go [] args with
    | Error _ as err -> err
    | Ok arg_types -> (
      (* Width-returning builtins whose result depends on a constant
         argument are refined here. *)
      match f, args, arg_types with
      | "int2bit", [ Ast.EConst (Value.VInt w); _ ], _ ->
        Ok (Dtype.TBit (Int64.to_int w))
      | "zext", [ _; Ast.EConst (Value.VInt w) ], _ ->
        Ok (Dtype.TBit (Int64.to_int w))
      | ( "bit_slice",
          [ _; Ast.EConst (Value.VInt hi); Ast.EConst (Value.VInt lo) ],
          Dtype.TBit _ :: _ ) ->
        let width = Int64.to_int hi - Int64.to_int lo + 1 in
        if width < 1 then Error "bit_slice: hi < lo" else Ok (Dtype.TBit width)
      | "tuple_nth", [ _; Ast.EConst (Value.VInt i) ], [ Dtype.TTuple ts; _ ] ->
        let i = Int64.to_int i in
        if i < 0 || i >= List.length ts then Error "tuple_nth: index out of bounds"
        else Ok (List.nth ts i)
      | _ -> Builtins.result_type f arg_types))

let check_bound env e =
  let unbound =
    List.filter (fun v -> lookup env v = None) (Ast.expr_vars e)
  in
  match unbound with
  | [] -> Ok ()
  | v :: _ -> Error (Printf.sprintf "unbound variable %s" v)

(* Bind the variables of a positive atom, checking types. *)
let bind_atom (program : Ast.program) (env : env) (a : Ast.atom) :
    (env, string) result =
  match Ast.find_decl program a.rel with
  | None -> Error (Printf.sprintf "unknown relation %s" a.rel)
  | Some decl ->
    if Array.length a.args <> Ast.arity decl then
      Error
        (Printf.sprintf "%s expects %d arguments, got %d" a.rel
           (Ast.arity decl) (Array.length a.args))
    else
      let cols = Array.of_list decl.cols in
      let rec go env i =
        if i >= Array.length a.args then Ok env
        else
          let _, col_ty = cols.(i) in
          match a.args.(i) with
          | Ast.PWild -> go env (i + 1)
          | Ast.PConst c ->
            if Dtype.check col_ty c then go env (i + 1)
            else
              Error
                (Printf.sprintf "%s: constant %s does not have type %s" a.rel
                   (Value.to_string c) (Dtype.to_string col_ty))
          | Ast.PVar v -> (
            match lookup env v with
            | None -> go ((v, col_ty) :: env) (i + 1)
            | Some t ->
              if Dtype.equal t col_ty then go env (i + 1)
              else
                Error
                  (Printf.sprintf
                     "%s: variable %s has type %s but column expects %s" a.rel
                     v (Dtype.to_string t) (Dtype.to_string col_ty)))
      in
      go env 0

(* Check a negated atom: all variables must already be bound. *)
let check_neg_atom (program : Ast.program) (env : env) (a : Ast.atom) :
    (unit, string) result =
  match Ast.find_decl program a.rel with
  | None -> Error (Printf.sprintf "unknown relation %s" a.rel)
  | Some decl ->
    if Array.length a.args <> Ast.arity decl then
      Error (Printf.sprintf "not %s: arity mismatch" a.rel)
    else
      let unbound =
        List.filter (fun v -> lookup env v = None) (Ast.pattern_vars a.args)
      in
      (match unbound with
      | v :: _ ->
        Error
          (Printf.sprintf
             "not %s: variable %s must be bound by a positive literal" a.rel v)
      | [] ->
        let cols = Array.of_list decl.cols in
        let rec go i =
          if i >= Array.length a.args then Ok ()
          else
            match a.args.(i) with
            | Ast.PWild | Ast.PVar _ -> go (i + 1)
            | Ast.PConst c ->
              if Dtype.check (snd cols.(i)) c then go (i + 1)
              else Error (Printf.sprintf "not %s: constant type mismatch" a.rel)
        in
        go 0)

let check_rule (program : Ast.program) (rule : Ast.rule) : (unit, string) result
    =
  let ( let* ) = Result.bind in
  let rec go_body env agg_seen = function
    | [] -> Ok (env, agg_seen)
    | lit :: rest ->
      let* () =
        if agg_seen <> None then
          Error "an aggregate literal must be the last literal of the body"
        else Ok ()
      in
      (match lit with
      | Ast.LAtom a ->
        let* env = bind_atom program env a in
        go_body env agg_seen rest
      | Ast.LNeg a ->
        let* () = check_neg_atom program env a in
        go_body env agg_seen rest
      | Ast.LCond e ->
        let* () = check_bound env e in
        let* t = type_of_expr env e in
        if Dtype.equal t Dtype.TBool then go_body env agg_seen rest
        else Error "condition literal must be boolean"
      | Ast.LAssign (v, e) ->
        let* () =
          if lookup env v <> None then
            Error (Printf.sprintf "variable %s is already bound" v)
          else Ok ()
        in
        let* () = check_bound env e in
        let* t = type_of_expr env e in
        go_body ((v, t) :: env) agg_seen rest
      | Ast.LFlat (v, e) ->
        let* () =
          if lookup env v <> None then
            Error (Printf.sprintf "variable %s is already bound" v)
          else Ok ()
        in
        let* () = check_bound env e in
        let* t = type_of_expr env e in
        (match t with
        | Dtype.TVec elt -> go_body ((v, elt) :: env) agg_seen rest
        | _ -> Error "flatten literal requires a vec<_> expression")
      | Ast.LAgg g ->
        let* () = check_bound env g.agg_expr in
        let* elt_ty = type_of_expr env g.agg_expr in
        let* res_ty = Builtins.agg_result_type g.agg_func elt_ty in
        let* () =
          if lookup env g.agg_out <> None then
            Error (Printf.sprintf "variable %s is already bound" g.agg_out)
          else Ok ()
        in
        let* by_env =
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              match lookup env v with
              | Some t -> Ok ((v, t) :: acc)
              | None ->
                Error (Printf.sprintf "group_by variable %s is unbound" v))
            (Ok []) g.agg_by
        in
        go_body ((g.agg_out, res_ty) :: by_env) (Some g) rest)
  in
  let* env, _agg = go_body [] None rule.body in
  (* Head. *)
  let h = rule.head in
  match Ast.find_decl program h.hrel with
  | None -> Error (Printf.sprintf "unknown relation %s in head" h.hrel)
  | Some decl ->
    let* () =
      if decl.role = Ast.Input && rule.body <> [] then
        Error (Printf.sprintf "rules may not write input relation %s" h.hrel)
      else Ok ()
    in
    if Array.length h.hargs <> Ast.arity decl then
      Error (Printf.sprintf "head %s: arity mismatch" h.hrel)
    else
      let cols = Array.of_list decl.cols in
      let rec go i =
        if i >= Array.length h.hargs then Ok ()
        else
          let* () = check_bound env h.hargs.(i) in
          let* t = type_of_expr env h.hargs.(i) in
          let _, col_ty = cols.(i) in
          match Dtype.unify t col_ty with
          | Some _ -> go (i + 1)
          | None ->
            Error
              (Printf.sprintf "head %s column %d: expected %s, got %s" h.hrel i
                 (Dtype.to_string col_ty) (Dtype.to_string t))
      in
      go 0

(* Variable occurrence counting across a rule, for the lint pass. *)
let rule_var_occurrences (rule : Ast.rule) : (string, int) Hashtbl.t =
  let occ = Hashtbl.create 16 in
  let bump v =
    Hashtbl.replace occ v (1 + Option.value ~default:0 (Hashtbl.find_opt occ v))
  in
  let pat = function Ast.PVar v -> bump v | Ast.PConst _ | Ast.PWild -> () in
  let expr e = List.iter bump (Ast.expr_vars e) in
  List.iter
    (function
      | Ast.LAtom a | Ast.LNeg a -> Array.iter pat a.args
      | Ast.LCond e -> expr e
      | Ast.LAssign (v, e) ->
        bump v;
        expr e
      | Ast.LFlat (v, e) ->
        bump v;
        expr e
      | Ast.LAgg g ->
        bump g.agg_out;
        expr g.agg_expr;
        List.iter bump g.agg_by)
    rule.body;
  Array.iter expr rule.head.hargs;
  occ

(** Lint pass: non-fatal warnings for likely authoring mistakes.
    Currently: variables occurring exactly once in a rule — in Datalog
    these are almost always typos and should be written [_]. *)
let lint (program : Ast.program) : string list =
  List.concat_map
    (fun (rule : Ast.rule) ->
      let occ = rule_var_occurrences rule in
      Hashtbl.fold
        (fun v n acc ->
          if n = 1 && not (String.length v > 0 && v.[0] = '_') then
            Format.asprintf
              "variable %s occurs only once in rule %a (use _ if intended)" v
              Ast.pp_rule rule
            :: acc
          else acc)
        occ [])
    program.rules

(** Check a whole program; returns all errors found, each prefixed with
    the offending declaration or rule. *)
let check_program (program : Ast.program) : (unit, string list) result =
  let errors = ref [] in
  let add_error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Declarations: unique names, positive bit widths. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.rel_decl) ->
      if Hashtbl.mem seen d.rname then
        add_error "duplicate relation declaration %s" d.rname
      else Hashtbl.add seen d.rname ();
      let rec check_ty = function
        | Dtype.TBit w when w < 1 || w > 64 ->
          add_error "%s: bit width %d out of range [1, 64]" d.rname w
        | Dtype.TTuple ts -> List.iter check_ty ts
        | Dtype.TOption t | Dtype.TVec t -> check_ty t
        | Dtype.TMap (k, v) -> check_ty k; check_ty v
        | Dtype.TStruct (_, fs) -> List.iter (fun (_, t) -> check_ty t) fs
        | Dtype.TEnum (_, cs) ->
          List.iter (fun (_, ts) -> List.iter check_ty ts) cs
        | Dtype.TBool | Dtype.TInt | Dtype.TBit _ | Dtype.TString
        | Dtype.TDouble | Dtype.TAny -> ()
      in
      List.iter (fun (_, t) -> check_ty t) d.cols;
      if d.cols = [] then add_error "%s: relations must have at least one column" d.rname)
    program.decls;
  (* Rules. *)
  List.iter
    (fun rule ->
      match check_rule program rule with
      | Ok () -> ()
      | Error msg ->
        add_error "in rule %s: %s" (Format.asprintf "%a" Ast.pp_rule rule) msg)
    program.rules;
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)
