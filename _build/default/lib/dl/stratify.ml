(* Stratification: order relations into strata so that every stratum
   only reads from strictly earlier strata, except for positive
   recursion which stays inside one stratum.

   A stratum is a strongly-connected component of the relation
   dependency graph (edges from body relations to head relations).
   Negation and aggregation inside an SCC are rejected — they are
   non-monotonic and have no stratified semantics. *)

type stratum = {
  relations : string list;      (* relations defined in this stratum *)
  rules : Ast.rule list;        (* rules whose head is in this stratum *)
  recursive : bool;             (* true if the SCC contains a cycle *)
}

type t = stratum list

exception Unstratifiable of string

(* Tarjan's strongly-connected-components algorithm.  Returns the SCCs
   in reverse topological order (consumers before producers), which we
   reverse at the end. *)
let tarjan (nodes : string list) (succs : string -> string list) :
    string list list =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* Tarjan emits SCCs in reverse topological order of the condensation
     when edges point from dependency to dependent; our edges point from
     body (dependency) to head (dependent), so [!sccs] is already
     topologically sorted producers-first. *)
  !sccs

(** Stratify [program].  Raises [Unstratifiable] if a negation or an
    aggregation occurs inside a recursive SCC. *)
let stratify (program : Ast.program) : t =
  let rel_names = List.map (fun (d : Ast.rel_decl) -> d.rname) program.decls in
  (* Edges: body relation -> head relation, labelled with polarity. *)
  let edges = Hashtbl.create 64 in
  let add_edge src dst polarity =
    let existing = Hashtbl.find_all edges src in
    if not (List.mem (dst, polarity) existing) then
      Hashtbl.add edges src (dst, polarity)
  in
  List.iter
    (fun (rule : Ast.rule) ->
      List.iter
        (fun (rel, pol) -> add_edge rel rule.head.hrel pol)
        (Ast.body_dependencies rule))
    program.rules;
  let succs v = List.map fst (Hashtbl.find_all edges v) in
  let sccs = tarjan rel_names succs in
  (* Assign each relation its SCC id. *)
  let scc_of = Hashtbl.create 64 in
  List.iteri
    (fun i scc -> List.iter (fun r -> Hashtbl.replace scc_of r i) scc)
    sccs;
  (* Reject negative edges within an SCC. *)
  Hashtbl.iter
    (fun src (dst, pol) ->
      if pol = `Neg && Hashtbl.find scc_of src = Hashtbl.find scc_of dst then
        raise
          (Unstratifiable
             (Printf.sprintf
                "negation or aggregation of %s feeds back into its own \
                 recursive component (via %s)"
                src dst)))
    edges;
  (* Build strata in topological order. *)
  let rules_of_head = Hashtbl.create 64 in
  List.iter
    (fun (rule : Ast.rule) -> Hashtbl.add rules_of_head rule.head.hrel rule)
    program.rules;
  List.mapi
    (fun i scc ->
      let rules =
        List.concat_map (fun r -> List.rev (Hashtbl.find_all rules_of_head r)) scc
      in
      let recursive =
        (* An SCC is recursive if it has >1 relation or a self-loop. *)
        List.length scc > 1
        || (match scc with
           | [ r ] ->
             List.exists
               (fun (dst, _) -> Hashtbl.find_opt scc_of dst = Some i
                                && String.equal dst r)
               (Hashtbl.find_all edges r)
           | _ -> false)
      in
      { relations = scc; rules; recursive })
    sccs

let pp fmt (strata : t) =
  List.iteri
    (fun i s ->
      Format.fprintf fmt "stratum %d%s: %s (%d rules)@." i
        (if s.recursive then " (recursive)" else "")
        (String.concat ", " s.relations)
        (List.length s.rules))
    strata
