(* Z-sets: finite maps from rows to non-zero integer weights.

   Z-sets are the currency of incremental computation: a relation's
   contents is a Z-set with positive weights, and a change (delta) is a
   Z-set whose positive weights are insertions and negative weights are
   deletions.  All operations maintain the invariant that no row maps to
   weight zero. *)

type t = int Row.Map.t

let empty : t = Row.Map.empty
let is_empty = Row.Map.is_empty

(** Weight of [row] ([0] if absent). *)
let weight (z : t) row = match Row.Map.find_opt row z with Some w -> w | None -> 0

(** [add z row w] adds weight [w] to [row], dropping it if the result is 0. *)
let add (z : t) row w : t =
  if w = 0 then z
  else
    Row.Map.update row
      (function
        | None -> Some w
        | Some w' -> if w + w' = 0 then None else Some (w + w'))
      z

let singleton row w : t = if w = 0 then empty else Row.Map.singleton row w
let of_list l : t = List.fold_left (fun z (row, w) -> add z row w) empty l
let of_rows l : t = List.fold_left (fun z row -> add z row 1) empty l
let to_list (z : t) = Row.Map.bindings z

(** Number of distinct rows present (regardless of weight). *)
let cardinal = Row.Map.cardinal

let fold f (z : t) acc = Row.Map.fold f z acc
let iter f (z : t) = Row.Map.iter f z

(** Pointwise sum of weights. *)
let union (a : t) (b : t) : t = fold (fun row w acc -> add acc row w) b a

(** Pointwise difference [a - b]. *)
let diff (a : t) (b : t) : t = fold (fun row w acc -> add acc row (-w)) b a

(** Negate every weight. *)
let neg (z : t) : t = Row.Map.map (fun w -> -w) z

(** Multiply every weight by [k]. *)
let scale k (z : t) : t =
  if k = 0 then empty else Row.Map.map (fun w -> w * k) z

(** Rows with positive weight, each mapped to weight 1 (set view). *)
let distinct (z : t) : t =
  Row.Map.filter_map (fun _ w -> if w > 0 then Some 1 else None) z

(** All rows with positive weight. *)
let support (z : t) : Row.t list =
  fold (fun row w acc -> if w > 0 then row :: acc else acc) z []

let filter f (z : t) : t = Row.Map.filter (fun row w -> f row w) z

(** Transform each row; weights of colliding images are summed. *)
let map_rows f (z : t) : t = fold (fun row w acc -> add acc (f row) w) z empty

let equal (a : t) (b : t) = Row.Map.equal Int.equal a b

let pp fmt (z : t) =
  let pp_entry f (row, w) = Format.fprintf f "%a:%+d" Row.pp row w in
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_entry)
    (to_list z)

let to_string z = Format.asprintf "%a" pp z
