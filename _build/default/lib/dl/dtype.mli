(** Types of the DL language, mirroring DDlog's core. *)

type t =
  | TBool
  | TInt          (** signed 64-bit mathematical integer *)
  | TBit of int   (** [bit<N>], [1 <= N <= 64] *)
  | TString
  | TTuple of t list
  | TOption of t
  | TVec of t
  | TMap of t * t
  | TStruct of string * (string * t) list
  | TEnum of string * (string * t list) list
  | TDouble
  | TAny
      (** bottom placeholder used by the type checker for empty
          collections and wildcards *)

val equal : t -> t -> bool

val unify : t -> t -> t option
(** The most specific type compatible with both, treating [TAny] as a
    wildcard; [None] if incompatible. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val check : t -> Value.t -> bool
(** Does the value inhabit the type? *)

val default : t -> Value.t
(** A canonical inhabitant of the type. *)

val of_value : Value.t -> t
(** The value's type, reconstructed structurally. *)
