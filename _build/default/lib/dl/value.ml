(* Runtime values of the DL language.

   Every value that can be stored in a relation or manipulated by rule
   expressions is represented by [t].  Values are immutable and have a
   total structural order, which is what lets them serve as keys of
   Z-sets and relation indexes. *)

type t =
  | VBool of bool
  | VInt of int64                     (* signed 64-bit integer *)
  | VBit of int * int64               (* [VBit (w, v)]: bit<w>, v masked to w bits, 1 <= w <= 64 *)
  | VString of string
  | VTuple of t array
  | VOption of t option
  | VVec of t list
  | VMap of (t * t) list              (* association list sorted by key *)
  | VStruct of string * (string * t) array   (* struct type name, fields in declaration order *)
  | VEnum of string * string * t array       (* enum type name, constructor, payload *)
  | VDouble of float

(** Mask [v] to the low [w] bits. *)
let mask_bits w v =
  if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

(** Smart constructor for [VBit] that enforces the width invariant. *)
let bit w v =
  if w < 1 || w > 64 then invalid_arg "Value.bit: width out of range";
  VBit (w, mask_bits w v)

let of_bool b = VBool b
let of_int i = VInt (Int64.of_int i)
let of_int64 i = VInt i
let of_string s = VString s

let tag_order = function
  | VBool _ -> 0
  | VInt _ -> 1
  | VBit _ -> 2
  | VString _ -> 3
  | VTuple _ -> 4
  | VOption _ -> 5
  | VVec _ -> 6
  | VMap _ -> 7
  | VStruct _ -> 8
  | VEnum _ -> 9
  | VDouble _ -> 10

let rec compare a b =
  match a, b with
  | VBool x, VBool y -> Bool.compare x y
  | VInt x, VInt y -> Int64.compare x y
  | VBit (wx, x), VBit (wy, y) ->
    let c = Int.compare wx wy in
    if c <> 0 then c else Int64.compare x y
  | VString x, VString y -> String.compare x y
  | VTuple x, VTuple y -> compare_arrays x y
  | VOption x, VOption y -> Option.compare compare x y
  | VVec x, VVec y -> List.compare compare x y
  | VMap x, VMap y -> List.compare (fun (k1, v1) (k2, v2) ->
      let c = compare k1 k2 in
      if c <> 0 then c else compare v1 v2) x y
  | VStruct (nx, fx), VStruct (ny, fy) ->
    let c = String.compare nx ny in
    if c <> 0 then c
    else
      let cmp_field (n1, v1) (n2, v2) =
        let c = String.compare n1 n2 in
        if c <> 0 then c else compare v1 v2
      in
      compare_arrays_with cmp_field fx fy
  | VEnum (nx, cx, px), VEnum (ny, cy, py) ->
    let c = String.compare nx ny in
    if c <> 0 then c
    else
      let c = String.compare cx cy in
      if c <> 0 then c else compare_arrays px py
  | VDouble x, VDouble y -> Float.compare x y
  | ( (VBool _ | VInt _ | VBit _ | VString _ | VTuple _
      | VOption _ | VVec _ | VMap _ | VStruct _ | VEnum _ | VDouble _), _ ) ->
    Int.compare (tag_order a) (tag_order b)

and compare_arrays x y = compare_arrays_with compare x y

and compare_arrays_with : 'a. ('a -> 'a -> int) -> 'a array -> 'a array -> int =
  fun cmp x y ->
  let lx = Array.length x and ly = Array.length y in
  let c = Int.compare lx ly in
  if c <> 0 then c
  else
    let rec go i =
      if i >= lx then 0
      else
        let c = cmp x.(i) y.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let rec hash v =
  match v with
  | VBool b -> if b then 1 else 2
  | VInt i -> Int64.to_int i * 0x9e3779b1
  | VBit (w, i) -> (w + 31) * (Int64.to_int i * 0x85ebca77)
  | VString s -> Hashtbl.hash s
  | VTuple a -> Array.fold_left (fun acc x -> (acc * 31) + hash x) 5 a
  | VOption None -> 7
  | VOption (Some x) -> 11 + hash x
  | VVec l -> List.fold_left (fun acc x -> (acc * 31) + hash x) 13 l
  | VMap l ->
    List.fold_left (fun acc (k, x) -> (acc * 31) + hash k + (hash x * 17)) 17 l
  | VStruct (n, fs) ->
    Array.fold_left (fun acc (_, x) -> (acc * 31) + hash x) (Hashtbl.hash n) fs
  | VEnum (n, c, p) ->
    Array.fold_left (fun acc x -> (acc * 31) + hash x)
      (Hashtbl.hash n + (Hashtbl.hash c * 3)) p
  | VDouble f -> Hashtbl.hash f * 19

let rec pp fmt v =
  match v with
  | VBool b -> Format.pp_print_bool fmt b
  | VInt i -> Format.fprintf fmt "%Ld" i
  | VBit (w, i) -> Format.fprintf fmt "%d'd%Lu" w i
  | VString s -> Format.fprintf fmt "%S" s
  | VTuple a ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_array
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp) a
  | VOption None -> Format.pp_print_string fmt "None"
  | VOption (Some x) -> Format.fprintf fmt "Some(%a)" pp x
  | VVec l ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp) l
  | VMap l ->
    let pp_pair f (k, x) = Format.fprintf f "%a -> %a" pp k pp x in
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_pair) l
  | VStruct (n, fs) ->
    let pp_field f (fn, x) = Format.fprintf f "%s = %a" fn pp x in
    Format.fprintf fmt "%s{%a}" n
      (Format.pp_print_seq
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_field)
      (Array.to_seq fs)
  | VDouble f -> Format.fprintf fmt "%g" f
  | VEnum (_, c, [||]) -> Format.pp_print_string fmt c
  | VEnum (_, c, p) ->
    Format.fprintf fmt "%s(%a)" c
      (Format.pp_print_seq
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
      (Array.to_seq p)

let to_string v = Format.asprintf "%a" pp v

(** Extractors used by builtins and the planes' bridge code.  They raise
    [Invalid_argument] on a type mismatch, which the type checker rules
    out for well-typed programs. *)

let as_bool = function
  | VBool b -> b
  | v -> invalid_arg ("Value.as_bool: " ^ to_string v)

let as_int = function
  | VInt i -> i
  | VBit (_, i) -> i
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_bit = function
  | VBit (w, i) -> (w, i)
  | v -> invalid_arg ("Value.as_bit: " ^ to_string v)

let as_string = function
  | VString s -> s
  | v -> invalid_arg ("Value.as_string: " ^ to_string v)

let as_double = function
  | VDouble f -> f
  | v -> invalid_arg ("Value.as_double: " ^ to_string v)

let as_vec = function
  | VVec l -> l
  | v -> invalid_arg ("Value.as_vec: " ^ to_string v)

let as_map = function
  | VMap l -> l
  | v -> invalid_arg ("Value.as_map: " ^ to_string v)

let as_option = function
  | VOption o -> o
  | v -> invalid_arg ("Value.as_option: " ^ to_string v)

let as_tuple = function
  | VTuple a -> a
  | v -> invalid_arg ("Value.as_tuple: " ^ to_string v)

(** Map insertion preserving the sorted-association-list invariant. *)
let map_insert k v l =
  let rec go = function
    | [] -> [ (k, v) ]
    | ((k', _) as p) :: rest ->
      let c = compare k k' in
      if c < 0 then (k, v) :: p :: rest
      else if c = 0 then (k, v) :: rest
      else p :: go rest
  in
  go l

let map_find k l =
  let rec go = function
    | [] -> None
    | (k', v) :: rest ->
      let c = compare k k' in
      if c = 0 then Some v else if c < 0 then None else go rest
  in
  go l

let map_remove k l = List.filter (fun (k', _) -> not (equal k k')) l

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
