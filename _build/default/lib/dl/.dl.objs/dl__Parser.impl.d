lib/dl/parser.ml: Array Ast Builtins Dtype Format Int64 Lexer List Printf String Value
