lib/dl/dtype.ml: Array Format List Option String Value
