lib/dl/row.mli: Format Hashtbl Map Set Value
