lib/dl/stratify.ml: Ast Format Hashtbl List Printf String
