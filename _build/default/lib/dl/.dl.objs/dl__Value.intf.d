lib/dl/value.mli: Format Map Set
