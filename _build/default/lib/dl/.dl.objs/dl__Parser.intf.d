lib/dl/parser.mli: Ast
