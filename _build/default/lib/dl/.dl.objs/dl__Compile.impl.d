lib/dl/compile.ml: Array Ast Builtins List Value
