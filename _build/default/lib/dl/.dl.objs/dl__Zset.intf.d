lib/dl/zset.mli: Format Row
