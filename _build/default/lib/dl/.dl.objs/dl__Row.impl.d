lib/dl/row.ml: Array Format Hashtbl Map Set Value
