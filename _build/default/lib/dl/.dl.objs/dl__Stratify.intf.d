lib/dl/stratify.mli: Ast Format
