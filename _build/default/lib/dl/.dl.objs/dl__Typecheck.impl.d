lib/dl/typecheck.ml: Array Ast Builtins Dtype Format Hashtbl Int64 List Option Printf Result String Value
