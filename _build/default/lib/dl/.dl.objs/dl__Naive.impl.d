lib/dl/naive.ml: Array Ast Builtins Hashtbl List Row Stratify Value
