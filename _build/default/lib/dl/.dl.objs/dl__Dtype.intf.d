lib/dl/dtype.mli: Format Value
