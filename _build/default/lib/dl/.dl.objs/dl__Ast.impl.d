lib/dl/ast.ml: Array Dtype Format List String Value
