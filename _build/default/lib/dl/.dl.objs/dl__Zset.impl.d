lib/dl/zset.ml: Format Int List Row
