lib/dl/ast.mli: Dtype Format Value
