lib/dl/naive.mli: Ast Hashtbl Row
