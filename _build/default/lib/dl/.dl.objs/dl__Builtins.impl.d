lib/dl/builtins.ml: Array Dtype Float Format Int64 List String Value
