lib/dl/lexer.mli:
