lib/dl/builtins.mli: Dtype Value
