lib/dl/value.ml: Array Bool Float Format Hashtbl Int Int64 List Map Option Set String
