lib/dl/engine.mli: Ast Row Value Zset
