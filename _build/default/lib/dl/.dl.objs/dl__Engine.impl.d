lib/dl/engine.ml: Array Ast Builtins Compile Dtype Format Hashtbl List Row Store Stratify String Typecheck Value Zset
