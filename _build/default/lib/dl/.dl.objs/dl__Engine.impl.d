lib/dl/engine.ml: Array Ast Builtins Compile Dtype Format Hashtbl Int List Obs Printf Row Store Stratify String Typecheck Value Zset
