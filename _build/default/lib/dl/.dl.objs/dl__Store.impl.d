lib/dl/store.ml: Array Ast Int List Printf Row Zset
