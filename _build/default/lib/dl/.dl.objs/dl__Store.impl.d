lib/dl/store.ml: Array Ast Int List Obs Printf Row Zset
