lib/dl/typecheck.mli: Ast Dtype
