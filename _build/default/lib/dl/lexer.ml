(* Hand-written lexer for the DL surface syntax. *)

type token =
  | IDENT of string          (* lower-case: variables, functions *)
  | UIDENT of string         (* upper-case: relation names *)
  | INT of int64
  | FLOAT of float
  | BITLIT of int * int64    (* width'd / width'h / width'b literals *)
  | STRING of string
  | KW of string             (* keyword *)
  | SYM of string            (* punctuation / operator *)
  | EOF

type lexeme = { tok : token; line : int; col : int }

exception Lex_error of string

let keywords =
  [ "input"; "output"; "relation"; "not"; "and"; "or"; "var"; "in";
    "group_by"; "if"; "else"; "true"; "false"; "bool"; "string"; "int";
    "double"; "bit"; "vec"; "option"; "map" ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize (src : string) : lexeme list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let out = ref [] in
  let emit tok pos = out := { tok; line = !line; col = pos - !bol + 1 } :: !out in
  let error pos fmt =
    Format.kasprintf
      (fun s ->
        raise
          (Lex_error
             (Printf.sprintf "line %d, column %d: %s" !line (pos - !bol + 1) s)))
      fmt
  in
  let rec go i =
    if i >= n then emit EOF i
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        incr line;
        bol := i + 1;
        go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then error i "unterminated comment"
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then begin incr line; bol := j + 1 end;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '"' ->
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then error i "unterminated string"
          else
            match src.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
              (match src.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | '\\' -> Buffer.add_char buf '\\'
              | '"' -> Buffer.add_char buf '"'
              | c -> error j "bad escape \\%c" c);
              scan (j + 2)
            | c ->
              Buffer.add_char buf c;
              scan (j + 1)
        in
        let j = scan (i + 1) in
        emit (STRING (Buffer.contents buf)) i;
        go j
      | c when is_digit c ->
        (* A '.' continues the number only when a digit follows, so that
           "3." ends a rule rather than reading a float. *)
        let rec scan j =
          if j < n && (is_hex src.[j] || src.[j] = 'x') then scan (j + 1)
          else if j + 1 < n && src.[j] = '.' && is_digit src.[j + 1] then
            scan (j + 2)
          else j
        in
        let j = scan i in
        let text = String.sub src i (j - i) in
        (* width'base forms: 12'd34, 8'hFF, 4'b1010 *)
        if j < n && src.[j] = '\'' then begin
          let width =
            match int_of_string_opt text with
            | Some w when w >= 1 && w <= 64 -> w
            | _ -> error i "bad bit width %s" text
          in
          if j + 1 >= n then error j "unterminated bit literal";
          let base = src.[j + 1] in
          let rec scan2 k =
            if k < n && (is_hex src.[k] || src.[k] = '_') then scan2 (k + 1) else k
          in
          let k = scan2 (j + 2) in
          let digits =
            String.concat ""
              (String.split_on_char '_' (String.sub src (j + 2) (k - j - 2)))
          in
          if digits = "" then error j "empty bit literal";
          let value =
            match base with
            | 'd' -> Int64.of_string digits
            | 'h' -> Int64.of_string ("0x" ^ digits)
            | 'b' -> Int64.of_string ("0b" ^ digits)
            | c -> error j "bad bit literal base '%c'" c
          in
          emit (BITLIT (width, value)) i;
          go k
        end
        else if String.contains text '.' then begin
          match float_of_string_opt text with
          | Some f ->
            emit (FLOAT f) i;
            go j
          | None -> error i "bad number %s" text
        end
        else begin
          match Int64.of_string_opt text with
          | Some v ->
            emit (INT v) i;
            go j
          | None -> error i "bad number %s" text
        end
      | c when is_alpha c ->
        let rec scan j = if j < n && is_alnum src.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub src i (j - i) in
        let tok =
          if List.mem word keywords then KW word
          else if c >= 'A' && c <= 'Z' then UIDENT word
          else IDENT word
        in
        emit tok i;
        go j
      | _ ->
        let sym2 = if i + 1 < n then String.sub src i 2 else "" in
        let two =
          List.mem sym2 [ ":-"; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "->" ]
        in
        if two then begin
          emit (SYM sym2) i;
          go (i + 2)
        end
        else begin
          (match c with
          | '(' | ')' | ',' | '.' | ':' | '=' | '<' | '>' | '+' | '-' | '*'
          | '/' | '%' | '&' | '|' | '^' | '~' | '_' | '[' | ']' | '{' | '}' ->
            emit (SYM (String.make 1 c)) i
          | _ -> error i "unexpected character %C" c);
          go (i + 1)
        end
  in
  go 0;
  List.rev !out

let token_to_string = function
  | IDENT s | UIDENT s -> s
  | INT i -> Int64.to_string i
  | FLOAT f -> string_of_float f
  | BITLIT (w, v) -> Printf.sprintf "%d'd%Ld" w v
  | STRING s -> Printf.sprintf "%S" s
  | KW s -> s
  | SYM s -> s
  | EOF -> "<eof>"
