(* Recursive-descent parser for the DL surface syntax.

   Grammar sketch (see README for the full reference):

     program  := (decl | rule)*
     decl     := ["input" | "output"] "relation" UIdent "(" cols ")"
     col      := ident ":" type
     type     := bool | int | string | bit<N> | vec<t> | option<t>
               | map<t, t> | (t, t, ...)
     rule     := head [":-" literal ("," literal)*] "."
     head     := UIdent "(" expr* ")"
     literal  := UIdent "(" pat* ")"
               | "not" UIdent "(" pat* ")"
               | "var" ident "=" agg "(" expr ")" "group_by" "(" ident* ")"
               | "var" ident "=" expr
               | "var" ident "in" expr
               | expr                                  (condition)
     pat      := "_" | ident | const

   Relation names are capitalised; variables and functions are
   lower-case.  Integer constants in patterns and head positions are
   automatically coerced to the column's bit<N> type. *)

exception Parse_error of string

type state = { mutable toks : Lexer.lexeme list }

let error (lx : Lexer.lexeme) fmt =
  Format.kasprintf
    (fun s ->
      raise
        (Parse_error (Printf.sprintf "line %d, column %d: %s" lx.line lx.col s)))
    fmt

let peek st = match st.toks with [] -> assert false | lx :: _ -> lx

let advance st =
  match st.toks with
  | [] -> assert false
  | lx :: rest ->
    (match lx.tok with Lexer.EOF -> () | _ -> st.toks <- rest);
    lx

let expect_sym st s =
  (* Split ">>" when a single ">" is expected, so that nested type
     arguments like vec<bit<32>> parse (the classic C++ problem). *)
  (match s, st.toks with
  | ">", ({ tok = Lexer.SYM ">>"; _ } as lx) :: rest ->
    st.toks <- { lx with tok = Lexer.SYM ">" } :: { lx with tok = Lexer.SYM ">" } :: rest
  | _ -> ());
  let lx = advance st in
  match lx.tok with
  | Lexer.SYM s' when String.equal s s' -> ()
  | t -> error lx "expected %s, found %s" s (Lexer.token_to_string t)

let expect_kw st s =
  let lx = advance st in
  match lx.tok with
  | Lexer.KW s' when String.equal s s' -> ()
  | t -> error lx "expected %s, found %s" s (Lexer.token_to_string t)

let accept_sym st s =
  match (peek st).tok with
  | Lexer.SYM s' when String.equal s s' ->
    ignore (advance st);
    true
  | _ -> false

let accept_kw st s =
  match (peek st).tok with
  | Lexer.KW s' when String.equal s s' ->
    ignore (advance st);
    true
  | _ -> false

let ident st =
  let lx = advance st in
  match lx.tok with
  | Lexer.IDENT s -> s
  | t -> error lx "expected identifier, found %s" (Lexer.token_to_string t)

let uident st =
  let lx = advance st in
  match lx.tok with
  | Lexer.UIDENT s -> s
  | t -> error lx "expected relation name, found %s" (Lexer.token_to_string t)

(* ---------------- types ---------------- *)

let rec parse_type st : Dtype.t =
  let lx = advance st in
  match lx.tok with
  | Lexer.KW "bool" -> Dtype.TBool
  | Lexer.KW "int" -> Dtype.TInt
  | Lexer.KW "double" -> Dtype.TDouble
  | Lexer.KW "string" -> Dtype.TString
  | Lexer.KW "bit" ->
    expect_sym st "<";
    let w =
      let lx = advance st in
      match lx.tok with
      | Lexer.INT w -> Int64.to_int w
      | t -> error lx "expected bit width, found %s" (Lexer.token_to_string t)
    in
    expect_sym st ">";
    Dtype.TBit w
  | Lexer.KW "vec" ->
    expect_sym st "<";
    let t = parse_type st in
    expect_sym st ">";
    Dtype.TVec t
  | Lexer.KW "option" ->
    expect_sym st "<";
    let t = parse_type st in
    expect_sym st ">";
    Dtype.TOption t
  | Lexer.KW "map" ->
    expect_sym st "<";
    let k = parse_type st in
    expect_sym st ",";
    let v = parse_type st in
    expect_sym st ">";
    Dtype.TMap (k, v)
  | Lexer.SYM "(" ->
    let rec go acc =
      let t = parse_type st in
      if accept_sym st "," then go (t :: acc)
      else begin
        expect_sym st ")";
        List.rev (t :: acc)
      end
    in
    (match go [] with
    | [ t ] -> t
    | ts -> Dtype.TTuple ts)
  | t -> error lx "expected a type, found %s" (Lexer.token_to_string t)

(* ---------------- expressions ---------------- *)

let const_of_token st =
  let lx = advance st in
  match lx.tok with
  | Lexer.INT v -> Value.VInt v
  | Lexer.FLOAT f -> Value.VDouble f
  | Lexer.BITLIT (w, v) -> Value.bit w v
  | Lexer.STRING s -> Value.VString s
  | Lexer.KW "true" -> Value.VBool true
  | Lexer.KW "false" -> Value.VBool false
  | t -> error lx "expected a constant, found %s" (Lexer.token_to_string t)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "or" || accept_sym st "||" then
    Ast.ECall ("||", [ lhs; parse_or st ])
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "and" || accept_sym st "&&" then
    Ast.ECall ("&&", [ lhs; parse_and st ])
  else lhs

and parse_not st =
  if accept_kw st "not" then Ast.ECall ("not", [ parse_not st ])
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_bitor st in
  let op =
    match (peek st).tok with
    | Lexer.SYM (("==" | "!=" | "<" | "<=" | ">" | ">=") as s) -> Some s
    | _ -> None
  in
  match op with
  | Some s ->
    ignore (advance st);
    Ast.ECall (s, [ lhs; parse_bitor st ])
  | None -> lhs

and parse_bitor st =
  let lhs = parse_bitxor st in
  if accept_sym st "|" then Ast.ECall ("|", [ lhs; parse_bitor st ]) else lhs

and parse_bitxor st =
  let lhs = parse_bitand st in
  if accept_sym st "^" then Ast.ECall ("^", [ lhs; parse_bitxor st ]) else lhs

and parse_bitand st =
  let lhs = parse_shift st in
  if accept_sym st "&" then Ast.ECall ("&", [ lhs; parse_bitand st ]) else lhs

and parse_shift st =
  let lhs = parse_add st in
  match (peek st).tok with
  | Lexer.SYM (("<<" | ">>") as s) ->
    ignore (advance st);
    Ast.ECall (s, [ lhs; parse_add st ])
  | _ -> lhs

and parse_add st =
  let lhs = parse_mul st in
  let rec go lhs =
    match (peek st).tok with
    | Lexer.SYM (("+" | "-") as s) ->
      ignore (advance st);
      go (Ast.ECall (s, [ lhs; parse_mul st ]))
    | _ -> lhs
  in
  go lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec go lhs =
    match (peek st).tok with
    | Lexer.SYM (("*" | "/" | "%") as s) ->
      ignore (advance st);
      go (Ast.ECall (s, [ lhs; parse_unary st ]))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  if accept_sym st "-" then Ast.ECall ("neg", [ parse_unary st ])
  else if accept_sym st "~" then Ast.ECall ("~", [ parse_unary st ])
  else parse_primary st

and parse_primary st =
  let lx = peek st in
  match lx.tok with
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.BITLIT _ | Lexer.STRING _
  | Lexer.KW "true" | Lexer.KW "false" ->
    Ast.EConst (const_of_token st)
  | Lexer.KW "if" ->
    ignore (advance st);
    expect_sym st "(";
    let c = parse_expr st in
    expect_sym st ")";
    let t = parse_expr st in
    expect_kw st "else";
    let e = parse_expr st in
    Ast.EIf (c, t, e)
  | Lexer.SYM "(" ->
    ignore (advance st);
    let rec go acc =
      let e = parse_expr st in
      if accept_sym st "," then go (e :: acc)
      else begin
        expect_sym st ")";
        List.rev (e :: acc)
      end
    in
    (match go [] with [ e ] -> e | es -> Ast.ETuple es)
  | Lexer.IDENT name ->
    ignore (advance st);
    if accept_sym st "(" then begin
      if accept_sym st ")" then Ast.ECall (name, [])
      else
        let rec go acc =
          let e = parse_expr st in
          if accept_sym st "," then go (e :: acc)
          else begin
            expect_sym st ")";
            List.rev (e :: acc)
          end
        in
        Ast.ECall (name, go [])
    end
    else Ast.EVar name
  | t -> error lx "expected an expression, found %s" (Lexer.token_to_string t)

(* ---------------- patterns, atoms, literals ---------------- *)

let parse_pattern st : Ast.pattern =
  let lx = peek st in
  match lx.tok with
  | Lexer.SYM "_" | Lexer.IDENT "_" ->
    ignore (advance st);
    Ast.PWild
  | Lexer.IDENT v ->
    ignore (advance st);
    Ast.PVar v
  | Lexer.SYM "-" ->
    ignore (advance st);
    (match (advance st).tok with
    | Lexer.INT v -> Ast.PConst (Value.VInt (Int64.neg v))
    | t -> error lx "expected a number after -, found %s" (Lexer.token_to_string t))
  | _ -> Ast.PConst (const_of_token st)

let parse_atom st rel : Ast.atom =
  expect_sym st "(";
  if accept_sym st ")" then { Ast.rel; args = [||] }
  else
    let rec go acc =
      let p = parse_pattern st in
      if accept_sym st "," then go (p :: acc)
      else begin
        expect_sym st ")";
        List.rev (p :: acc)
      end
    in
    { Ast.rel; args = Array.of_list (go []) }

let parse_literal st : Ast.literal =
  let lx = peek st in
  match lx.tok with
  | Lexer.KW "not" when (match st.toks with
                         | _ :: { tok = Lexer.UIDENT _; _ } :: _ -> true
                         | _ -> false) ->
    ignore (advance st);
    let rel = uident st in
    Ast.LNeg (parse_atom st rel)
  | Lexer.UIDENT rel ->
    ignore (advance st);
    Ast.LAtom (parse_atom st rel)
  | Lexer.KW "var" ->
    ignore (advance st);
    let v = ident st in
    if accept_kw st "in" then Ast.LFlat (v, parse_expr st)
    else begin
      expect_sym st "=";
      let e = parse_expr st in
      (* Aggregate form: f(e) group_by (vars) *)
      if accept_kw st "group_by" then begin
        match e with
        | Ast.ECall (f, [ arg ]) when List.mem f Builtins.agg_names ->
          expect_sym st "(";
          let by =
            if accept_sym st ")" then []
            else
              let rec go acc =
                let v = ident st in
                if accept_sym st "," then go (v :: acc)
                else begin
                  expect_sym st ")";
                  List.rev (v :: acc)
                end
              in
              go []
          in
          Ast.LAgg { agg_out = v; agg_func = f; agg_expr = arg; agg_by = by }
        | _ -> error lx "group_by must follow an aggregate call"
      end
      else Ast.LAssign (v, e)
    end
  | _ -> Ast.LCond (parse_expr st)

let parse_head st : Ast.atom_expr =
  let rel = uident st in
  expect_sym st "(";
  if accept_sym st ")" then { Ast.hrel = rel; hargs = [||] }
  else
    let rec go acc =
      let e = parse_expr st in
      if accept_sym st "," then go (e :: acc)
      else begin
        expect_sym st ")";
        List.rev (e :: acc)
      end
    in
    { Ast.hrel = rel; hargs = Array.of_list (go []) }

(* ---------------- declarations, rules, program ---------------- *)

let parse_decl st role : Ast.rel_decl =
  expect_kw st "relation";
  let name = uident st in
  expect_sym st "(";
  let rec go acc =
    let cname = ident st in
    expect_sym st ":";
    let ty = parse_type st in
    if accept_sym st "," then go ((cname, ty) :: acc)
    else begin
      expect_sym st ")";
      List.rev ((cname, ty) :: acc)
    end
  in
  let cols = go [] in
  { Ast.rname = name; role; cols }

let parse_rule st : Ast.rule =
  let head = parse_head st in
  if accept_sym st "." then { Ast.head; body = [] }
  else begin
    expect_sym st ":-";
    let rec go acc =
      let l = parse_literal st in
      if accept_sym st "," then go (l :: acc)
      else begin
        expect_sym st ".";
        List.rev (l :: acc)
      end
    in
    { Ast.head; body = go [] }
  end

(* Coerce plain integer constants to bit<N> where the declared column
   type requires it, so that users can write Port(1, v) instead of
   Port(32'd1, v). *)
let coerce_program (p : Ast.program) : Ast.program =
  let col_types rel =
    match List.find_opt (fun (d : Ast.rel_decl) -> d.rname = rel) p.decls with
    | Some d -> Some (Array.of_list (List.map snd d.cols))
    | None -> None
  in
  let coerce_const ty (v : Value.t) =
    match ty, v with
    | Dtype.TBit w, Value.VInt i -> Value.bit w i
    | _ -> v
  in
  let coerce_pat ty = function
    | Ast.PConst c -> Ast.PConst (coerce_const ty c)
    | p -> p
  in
  let coerce_atom (a : Ast.atom) =
    match col_types a.rel with
    | Some tys when Array.length tys = Array.length a.args ->
      { a with args = Array.mapi (fun i p -> coerce_pat tys.(i) p) a.args }
    | _ -> a
  in
  let rec coerce_expr ty = function
    | Ast.EConst c -> Ast.EConst (coerce_const ty c)
    | Ast.EIf (c, t, e) -> Ast.EIf (c, coerce_expr ty t, coerce_expr ty e)
    | e -> e
  in
  let coerce_head (h : Ast.atom_expr) =
    match col_types h.hrel with
    | Some tys when Array.length tys = Array.length h.hargs ->
      { h with hargs = Array.mapi (fun i e -> coerce_expr tys.(i) e) h.hargs }
    | _ -> h
  in
  let coerce_lit = function
    | Ast.LAtom a -> Ast.LAtom (coerce_atom a)
    | Ast.LNeg a -> Ast.LNeg (coerce_atom a)
    | l -> l
  in
  let rules =
    List.map
      (fun (r : Ast.rule) ->
        { Ast.head = coerce_head r.head; body = List.map coerce_lit r.body })
      p.rules
  in
  { p with rules }

(** Parse a complete program from source text. *)
let parse_program (src : string) : (Ast.program, string) result =
  try
    let st = { toks = Lexer.tokenize src } in
    let decls = ref [] and rules = ref [] in
    let rec go () =
      match (peek st).tok with
      | Lexer.EOF -> ()
      | Lexer.KW "input" ->
        ignore (advance st);
        decls := parse_decl st Ast.Input :: !decls;
        go ()
      | Lexer.KW "output" ->
        ignore (advance st);
        decls := parse_decl st Ast.Output :: !decls;
        go ()
      | Lexer.KW "relation" ->
        decls := parse_decl st Ast.Internal :: !decls;
        go ()
      | _ ->
        rules := parse_rule st :: !rules;
        go ()
    in
    go ();
    Ok
      (coerce_program
         { Ast.decls = List.rev !decls; rules = List.rev !rules })
  with
  | Parse_error msg -> Error msg
  | Lexer.Lex_error msg -> Error msg

(** Parse, failing loudly; for embedded programs known to be valid. *)
let parse_program_exn src =
  match parse_program src with
  | Ok p -> p
  | Error msg -> raise (Parse_error msg)
