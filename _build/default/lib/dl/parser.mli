(** Recursive-descent parser for the DL surface syntax.

    Grammar sketch (see the README for the full reference):
    {v
    program  := (decl | rule)*
    decl     := ["input" | "output"] "relation" UIdent "(" col: type, ... ")"
    type     := bool | int | double | string | bit<N> | vec<t>
              | option<t> | map<k, v> | (t, t, ...)
    rule     := Head(expr, ...) [":-" literal, ...] "."
    literal  := Atom(pat, ...) | not Atom(pat, ...) | var x = expr
              | var x in expr | var x = agg(e) group_by (v, ...) | expr
    v}
    Relation names are capitalised, variables and functions lower-case.
    Plain integer constants in body patterns and head positions are
    coerced to the column's [bit<N>] type. *)

exception Parse_error of string

val parse_program : string -> (Ast.program, string) result
(** Parse a complete program from source text; the error message
    carries a line/column position. *)

val parse_program_exn : string -> Ast.program
(** Like {!parse_program} but raises {!Parse_error}; for embedded
    programs known to be valid. *)
