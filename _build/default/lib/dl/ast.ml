(* Abstract syntax of DL programs (surface form, before compilation).

   Conventions, following Datalog practice:
   - relation names are capitalised, variables are lower-case;
   - variables bind left-to-right within a rule body;
   - a negated atom and a condition may only mention bound variables;
   - an aggregate literal must be the last literal of its rule body. *)

type expr =
  | EVar of string
  | EConst of Value.t
  | ECall of string * expr list      (* builtin function or operator *)
  | ETuple of expr list
  | EIf of expr * expr * expr

type pattern =
  | PVar of string
  | PConst of Value.t
  | PWild

type literal =
  | LAtom of atom                        (* positive occurrence *)
  | LNeg of atom                         (* negated occurrence *)
  | LCond of expr                        (* boolean guard *)
  | LAssign of string * expr             (* var v = e *)
  | LFlat of string * expr               (* var v in e, e : vec<_> — flattening *)
  | LAgg of agg                          (* var v = f(e) group_by (x, y) *)

and atom = { rel : string; args : pattern array }

and agg = {
  agg_out : string;       (* variable receiving the aggregate result *)
  agg_func : string;      (* count, sum, min, max, avg, collect_vec, collect_set *)
  agg_expr : expr;        (* expression aggregated over the group *)
  agg_by : string list;   (* grouping variables; only these survive the literal *)
}

type rule = { head : atom_expr; body : literal list }

(* Head atoms carry expressions, not patterns: the head may compute. *)
and atom_expr = { hrel : string; hargs : expr array }

type role = Input | Output | Internal

type rel_decl = {
  rname : string;
  role : role;
  cols : (string * Dtype.t) list;
}

type program = { decls : rel_decl list; rules : rule list }

let arity decl = List.length decl.cols

let find_decl program name =
  List.find_opt (fun d -> String.equal d.rname name) program.decls

(** Variables mentioned by a pattern array, in order of appearance. *)
let pattern_vars (args : pattern array) =
  Array.to_list args
  |> List.filter_map (function PVar v -> Some v | PConst _ | PWild -> None)

let rec expr_vars = function
  | EVar v -> [ v ]
  | EConst _ -> []
  | ECall (_, es) | ETuple es -> List.concat_map expr_vars es
  | EIf (c, t, e) -> expr_vars c @ expr_vars t @ expr_vars e

(** Relations read by a rule body, with the polarity of the dependency:
    [`Pos] for plain atoms, [`Neg] for negated atoms.  Aggregation is
    reported as [`Neg] too because, like negation, it must be stratified
    below its consumers. *)
let body_dependencies rule =
  let deps =
    List.filter_map
      (function
        | LAtom a -> Some (a.rel, `Pos)
        | LNeg a -> Some (a.rel, `Neg)
        | LCond _ | LAssign _ | LFlat _ | LAgg _ -> None)
      rule.body
  in
  let has_agg = List.exists (function LAgg _ -> true | _ -> false) rule.body in
  if has_agg then List.map (fun (r, _) -> (r, `Neg)) deps else deps

(* Pretty-printing, mostly for error messages and the LoC experiment. *)

let rec pp_expr fmt = function
  | EVar v -> Format.pp_print_string fmt v
  | EConst c -> Value.pp fmt c
  | ECall (f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_expr)
      args
  | ETuple es ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_expr)
      es
  | EIf (c, t, e) ->
    Format.fprintf fmt "if %a then %a else %a" pp_expr c pp_expr t pp_expr e

let pp_pattern fmt = function
  | PVar v -> Format.pp_print_string fmt v
  | PConst c -> Value.pp fmt c
  | PWild -> Format.pp_print_string fmt "_"

let pp_atom fmt a =
  Format.fprintf fmt "%s(%a)" a.rel
    (Format.pp_print_seq
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_pattern)
    (Array.to_seq a.args)

let pp_literal fmt = function
  | LAtom a -> pp_atom fmt a
  | LNeg a -> Format.fprintf fmt "not %a" pp_atom a
  | LCond e -> pp_expr fmt e
  | LAssign (v, e) -> Format.fprintf fmt "var %s = %a" v pp_expr e
  | LFlat (v, e) -> Format.fprintf fmt "var %s in %a" v pp_expr e
  | LAgg g ->
    Format.fprintf fmt "var %s = %s(%a) group_by (%a)" g.agg_out g.agg_func
      pp_expr g.agg_expr
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         Format.pp_print_string)
      g.agg_by

let pp_rule fmt r =
  let pp_head fmt h =
    Format.fprintf fmt "%s(%a)" h.hrel
      (Format.pp_print_seq
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_expr)
      (Array.to_seq h.hargs)
  in
  match r.body with
  | [] -> Format.fprintf fmt "%a." pp_head r.head
  | body ->
    Format.fprintf fmt "%a :- %a." pp_head r.head
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_literal)
      body

let pp_decl fmt d =
  let role =
    match d.role with Input -> "input " | Output -> "output " | Internal -> ""
  in
  let pp_col f (n, t) = Format.fprintf f "%s: %a" n Dtype.pp t in
  Format.fprintf fmt "%srelation %s(%a)" role d.rname
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_col)
    d.cols

let pp_program fmt p =
  List.iter (fun d -> Format.fprintf fmt "%a@." pp_decl d) p.decls;
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_rule r) p.rules
