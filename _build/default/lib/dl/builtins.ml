(* Builtin functions of the DL expression language: their runtime
   semantics ([eval]) and typing rules ([result_type]), plus the
   aggregate function library used by [group_by] literals. *)

let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* Typing                                                              *)
(* ------------------------------------------------------------------ *)

(** [result_type f arg_types] is the result type of applying builtin [f]
    to arguments of the given types, or an error message. *)
let result_type (f : string) (args : Dtype.t list) : (Dtype.t, string) result =
  let open Dtype in
  let arith () =
    match args with
    | [ TInt; TInt ] -> Ok TInt
    | [ TDouble; TDouble ] -> Ok TDouble
    | [ TBit w1; TBit w2 ] when w1 = w2 -> Ok (TBit w1)
    | _ -> err "%s: expected two ints, doubles or equal-width bit vectors" f
  in
  let cmp () =
    match args with
    | [ a; b ] -> (
      match unify a b with
      | Some _ -> Ok TBool
      | None -> err "%s: cannot compare %s with %s" f (to_string a) (to_string b))
    | _ -> err "%s: expected two arguments" f
  in
  let boolop n =
    if List.length args = n && List.for_all (equal TBool) args then Ok TBool
    else err "%s: expected %d boolean argument(s)" f n
  in
  let bitop () =
    match args with
    | [ TBit w1; TBit w2 ] when w1 = w2 -> Ok (TBit w1)
    | _ -> err "%s: expected two equal-width bit vectors" f
  in
  match f, args with
  | ("+" | "-" | "*" | "/" | "%"), _ -> (
    match f, args with
    | "+", [ TString; TString ] -> Ok TString
    | _ -> arith ())
  | ("==" | "!=" | "<" | "<=" | ">" | ">="), _ -> cmp ()
  | "&&", _ | "||", _ -> boolop 2
  | "not", _ -> boolop 1
  | "neg", [ TInt ] -> Ok TInt
  | "neg", [ TDouble ] -> Ok TDouble
  | "neg", [ TBit w ] -> Ok (TBit w)
  | ("&" | "|" | "^"), _ -> bitop ()
  | ("<<" | ">>"), [ TBit w; TInt ] -> Ok (TBit w)
  | ("<<" | ">>"), [ TBit w1; TBit w2 ] when w1 = w2 -> Ok (TBit w1)
  | "~", [ TBit w ] -> Ok (TBit w)
  | "min", [ a; b ] | "max", [ a; b ] -> (
    match Dtype.unify a b with
    | Some t -> Ok t
    | None -> err "%s: mismatched argument types" f)
  | "abs", [ TInt ] -> Ok TInt
  | "abs", [ TDouble ] -> Ok TDouble
  | "int2double", [ TInt ] -> Ok TDouble
  | "double2int", [ TDouble ] -> Ok TInt
  | "sqrt", [ TDouble ] -> Ok TDouble
  | "hash32", [ _ ] -> Ok (TBit 32)
  | "hash64", [ _ ] -> Ok (TBit 64)
  | "to_string", [ _ ] -> Ok TString
  | "string_len", [ TString ] -> Ok TInt
  | "string_contains", [ TString; TString ] -> Ok TBool
  | "string_starts_with", [ TString; TString ] -> Ok TBool
  | "substr", [ TString; TInt; TInt ] -> Ok TString
  | "string_to_upper", [ TString ] | "string_to_lower", [ TString ] -> Ok TString
  | "string_join", [ TVec TString; TString ] -> Ok TString
  | "parse_int", [ TString ] -> Ok (TOption TInt)
  | "bit2int", [ TBit _ ] -> Ok TInt
  | "int2bit", [ TInt; TInt ] -> Ok TAny (* width checked at eval; refined by to_bit *)
  | "zext", [ TBit _; TInt ] -> Ok TAny
  | "bit_slice", [ TBit _; TInt; TInt ] -> Ok TAny
  | "concat_bits", [ TBit w1; TBit w2 ] when w1 + w2 <= 64 -> Ok (TBit (w1 + w2))
  | "vec_len", [ TVec _ ] -> Ok TInt
  | "vec_contains", [ TVec t; t' ] -> (
    match Dtype.unify t t' with
    | Some _ -> Ok TBool
    | None -> err "vec_contains: element type mismatch")
  | "vec_push", [ TVec t; t' ] -> (
    match Dtype.unify t t' with
    | Some u -> Ok (TVec u)
    | None -> err "vec_push: element type mismatch")
  | "vec_concat", [ TVec t; TVec t' ] -> (
    match Dtype.unify t t' with
    | Some u -> Ok (TVec u)
    | None -> err "vec_concat: element type mismatch")
  | "vec_nth", [ TVec t; TInt ] -> Ok (TOption t)
  | "vec_sort", [ TVec t ] -> Ok (TVec t)
  | "vec_empty", [] -> Ok (TVec TAny)
  | "map_empty", [] -> Ok (TMap (TAny, TAny))
  | "map_get", [ TMap (k, v); k' ] -> (
    match Dtype.unify k k' with
    | Some _ -> Ok (TOption v)
    | None -> err "map_get: key type mismatch")
  | "map_contains", [ TMap (k, _); k' ] -> (
    match Dtype.unify k k' with
    | Some _ -> Ok TBool
    | None -> err "map_contains: key type mismatch")
  | "map_insert", [ TMap (k, v); k'; v' ] -> (
    match Dtype.unify k k', Dtype.unify v v' with
    | Some ku, Some vu -> Ok (TMap (ku, vu))
    | _ -> err "map_insert: type mismatch")
  | "map_size", [ TMap _ ] -> Ok TInt
  | "some", [ t ] -> Ok (TOption t)
  | "none", [] -> Ok (TOption TAny)
  | "is_some", [ TOption _ ] -> Ok TBool
  | "is_none", [ TOption _ ] -> Ok TBool
  | "unwrap_or", [ TOption t; t' ] -> (
    match Dtype.unify t t' with
    | Some u -> Ok u
    | None -> err "unwrap_or: type mismatch")
  | "tuple_nth", [ TTuple ts; TInt ] ->
    (* index must be a constant; the type checker special-cases this *)
    (match ts with [] -> err "tuple_nth: empty tuple" | t :: _ -> Ok t)
  | _ -> err "unknown builtin %s/%d" f (List.length args)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

exception Eval_error of string

let eval_err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(** Evaluate builtin [f] on argument values.  Assumes the program has
    been type checked; residual dynamic errors (division by zero,
    unknown builtin) raise [Eval_error]. *)
let eval (f : string) (args : Value.t list) : Value.t =
  let open Value in
  match f, args with
  | "+", [ VInt a; VInt b ] -> VInt (Int64.add a b)
  | "+", [ VDouble a; VDouble b ] -> VDouble (a +. b)
  | "-", [ VDouble a; VDouble b ] -> VDouble (a -. b)
  | "*", [ VDouble a; VDouble b ] -> VDouble (a *. b)
  | "/", [ VDouble a; VDouble b ] -> VDouble (a /. b)
  | "neg", [ VDouble a ] -> VDouble (-.a)
  | "abs", [ VDouble a ] -> VDouble (Float.abs a)
  | "int2double", [ VInt a ] -> VDouble (Int64.to_float a)
  | "double2int", [ VDouble a ] -> VInt (Int64.of_float a)
  | "sqrt", [ VDouble a ] -> VDouble (Float.sqrt a)
  | "+", [ VBit (w, a); VBit (_, b) ] -> bit w (Int64.add a b)
  | "+", [ VString a; VString b ] -> VString (a ^ b)
  | "-", [ VInt a; VInt b ] -> VInt (Int64.sub a b)
  | "-", [ VBit (w, a); VBit (_, b) ] -> bit w (Int64.sub a b)
  | "*", [ VInt a; VInt b ] -> VInt (Int64.mul a b)
  | "*", [ VBit (w, a); VBit (_, b) ] -> bit w (Int64.mul a b)
  | "/", [ VInt _; VInt 0L ] -> eval_err "division by zero"
  | "/", [ VInt a; VInt b ] -> VInt (Int64.div a b)
  | "/", [ VBit (_, _); VBit (_, 0L) ] -> eval_err "division by zero"
  | "/", [ VBit (w, a); VBit (_, b) ] -> bit w (Int64.unsigned_div a b)
  | "%", [ VInt _; VInt 0L ] -> eval_err "modulo by zero"
  | "%", [ VInt a; VInt b ] -> VInt (Int64.rem a b)
  | "%", [ VBit (_, _); VBit (_, 0L) ] -> eval_err "modulo by zero"
  | "%", [ VBit (w, a); VBit (_, b) ] -> bit w (Int64.unsigned_rem a b)
  | "==", [ a; b ] -> VBool (Value.equal a b)
  | "!=", [ a; b ] -> VBool (not (Value.equal a b))
  | "<", [ a; b ] -> VBool (Value.compare a b < 0)
  | "<=", [ a; b ] -> VBool (Value.compare a b <= 0)
  | ">", [ a; b ] -> VBool (Value.compare a b > 0)
  | ">=", [ a; b ] -> VBool (Value.compare a b >= 0)
  | "&&", [ VBool a; VBool b ] -> VBool (a && b)
  | "||", [ VBool a; VBool b ] -> VBool (a || b)
  | "not", [ VBool a ] -> VBool (not a)
  | "neg", [ VInt a ] -> VInt (Int64.neg a)
  | "neg", [ VBit (w, a) ] -> bit w (Int64.neg a)
  | "&", [ VBit (w, a); VBit (_, b) ] -> VBit (w, Int64.logand a b)
  | "|", [ VBit (w, a); VBit (_, b) ] -> VBit (w, Int64.logor a b)
  | "^", [ VBit (w, a); VBit (_, b) ] -> VBit (w, Int64.logxor a b)
  | "<<", [ VBit (w, a); VInt s ] -> bit w (Int64.shift_left a (Int64.to_int s))
  | "<<", [ VBit (w, a); VBit (_, s) ] -> bit w (Int64.shift_left a (Int64.to_int s))
  | ">>", [ VBit (w, a); VInt s ] ->
    bit w (Int64.shift_right_logical a (Int64.to_int s))
  | ">>", [ VBit (w, a); VBit (_, s) ] ->
    bit w (Int64.shift_right_logical a (Int64.to_int s))
  | "~", [ VBit (w, a) ] -> bit w (Int64.lognot a)
  | "min", [ a; b ] -> if Value.compare a b <= 0 then a else b
  | "max", [ a; b ] -> if Value.compare a b >= 0 then a else b
  | "abs", [ VInt a ] -> VInt (Int64.abs a)
  | "hash32", [ v ] -> bit 32 (Int64.of_int (Value.hash v land 0xffffffff))
  | "hash64", [ v ] -> bit 64 (Int64.of_int (Value.hash v))
  | "to_string", [ v ] -> (
    match v with VString s -> VString s | v -> VString (Value.to_string v))
  | "string_len", [ VString s ] -> of_int (String.length s)
  | "string_contains", [ VString s; VString sub ] ->
    let n = String.length sub in
    let rec go i =
      if i + n > String.length s then false
      else if String.sub s i n = sub then true
      else go (i + 1)
    in
    VBool (go 0)
  | "string_starts_with", [ VString s; VString p ] ->
    VBool
      (String.length p <= String.length s
      && String.sub s 0 (String.length p) = p)
  | "substr", [ VString s; VInt start; VInt len ] ->
    let start = Int64.to_int start and len = Int64.to_int len in
    let start = max 0 (min start (String.length s)) in
    let len = max 0 (min len (String.length s - start)) in
    VString (String.sub s start len)
  | "string_to_upper", [ VString s ] -> VString (String.uppercase_ascii s)
  | "string_to_lower", [ VString s ] -> VString (String.lowercase_ascii s)
  | "string_join", [ VVec parts; VString sep ] ->
    VString (String.concat sep (List.map Value.as_string parts))
  | "parse_int", [ VString s ] -> (
    match Int64.of_string_opt s with
    | Some i -> VOption (Some (VInt i))
    | None -> VOption None)
  | "bit2int", [ VBit (_, v) ] -> VInt v
  | "int2bit", [ VInt w; VInt v ] -> bit (Int64.to_int w) v
  | "zext", [ VBit (_, v); VInt w ] -> bit (Int64.to_int w) v
  | "bit_slice", [ VBit (_, v); VInt hi; VInt lo ] ->
    let hi = Int64.to_int hi and lo = Int64.to_int lo in
    if hi < lo then eval_err "bit_slice: hi < lo"
    else bit (hi - lo + 1) (Int64.shift_right_logical v lo)
  | "concat_bits", [ VBit (w1, a); VBit (w2, b) ] ->
    bit (w1 + w2) (Int64.logor (Int64.shift_left a w2) b)
  | "vec_len", [ VVec l ] -> of_int (List.length l)
  | "vec_contains", [ VVec l; v ] -> VBool (List.exists (Value.equal v) l)
  | "vec_push", [ VVec l; v ] -> VVec (l @ [ v ])
  | "vec_concat", [ VVec a; VVec b ] -> VVec (a @ b)
  | "vec_nth", [ VVec l; VInt i ] -> VOption (List.nth_opt l (Int64.to_int i))
  | "vec_sort", [ VVec l ] -> VVec (List.sort Value.compare l)
  | "vec_empty", [] -> VVec []
  | "map_empty", [] -> VMap []
  | "map_get", [ VMap m; k ] -> VOption (Value.map_find k m)
  | "map_contains", [ VMap m; k ] -> VBool (Value.map_find k m <> None)
  | "map_insert", [ VMap m; k; v ] -> VMap (Value.map_insert k v m)
  | "map_size", [ VMap m ] -> of_int (List.length m)
  | "some", [ v ] -> VOption (Some v)
  | "none", [] -> VOption None
  | "is_some", [ VOption o ] -> VBool (o <> None)
  | "is_none", [ VOption o ] -> VBool (o = None)
  | "unwrap_or", [ VOption (Some v); _ ] -> v
  | "unwrap_or", [ VOption None; d ] -> d
  | "tuple_nth", [ VTuple t; VInt i ] ->
    let i = Int64.to_int i in
    if i < 0 || i >= Array.length t then eval_err "tuple_nth: out of bounds"
    else t.(i)
  | _ ->
    eval_err "builtin %s applied to (%s)" f
      (String.concat ", " (List.map Value.to_string args))

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let agg_names = [ "count"; "count_distinct"; "sum"; "min"; "max"; "avg";
                  "collect_vec"; "collect_set" ]

(** Result type of aggregate [f] over elements of type [t]. *)
let agg_result_type (f : string) (t : Dtype.t) : (Dtype.t, string) result =
  match f, t with
  | "count", _ | "count_distinct", _ -> Ok Dtype.TInt
  | "sum", Dtype.TInt -> Ok Dtype.TInt
  | "sum", Dtype.TBit w -> Ok (Dtype.TBit w)
  | "sum", Dtype.TDouble -> Ok Dtype.TDouble
  | "sum", _ -> err "sum: expected int, double or bit elements"
  | ("min" | "max"), t -> Ok t
  | "avg", Dtype.TInt -> Ok Dtype.TInt
  | "avg", Dtype.TDouble -> Ok Dtype.TDouble
  | "avg", _ -> err "avg: expected int or double elements"
  | ("collect_vec" | "collect_set"), t -> Ok (Dtype.TVec t)
  | _ -> err "unknown aggregate function %s" f

(** Evaluate aggregate [f] over a group given as a multiset of
    (value, multiplicity) pairs with positive multiplicities, sorted by
    value.  The group is guaranteed non-empty. *)
let agg_eval (f : string) (group : (Value.t * int) list) : Value.t =
  let open Value in
  match f with
  | "count" ->
    of_int (List.fold_left (fun acc (_, m) -> acc + m) 0 group)
  | "count_distinct" -> of_int (List.length group)
  | "sum" -> (
    match group with
    | (VDouble _, _) :: _ ->
      VDouble
        (List.fold_left
           (fun acc (v, m) -> acc +. (Value.as_double v *. float_of_int m))
           0.0 group)
    | (VBit (w, _), _) :: _ ->
      let total =
        List.fold_left
          (fun acc (v, m) ->
            Int64.add acc (Int64.mul (snd (Value.as_bit v)) (Int64.of_int m)))
          0L group
      in
      bit w total
    | _ ->
      VInt
        (List.fold_left
           (fun acc (v, m) ->
             Int64.add acc (Int64.mul (Value.as_int v) (Int64.of_int m)))
           0L group))
  | "min" -> fst (List.hd group)
  | "max" -> fst (List.nth group (List.length group - 1))
  | "avg" -> (
    match group with
    | (VDouble _, _) :: _ ->
      let total, n =
        List.fold_left
          (fun (acc, n) (v, m) ->
            (acc +. (Value.as_double v *. float_of_int m), n + m))
          (0.0, 0) group
      in
      VDouble (total /. float_of_int n)
    | _ ->
    let total, n =
      List.fold_left
        (fun (acc, n) (v, m) ->
          (Int64.add acc (Int64.mul (Value.as_int v) (Int64.of_int m)), n + m))
        (0L, 0) group
    in
    VInt (Int64.div total (Int64.of_int n)))
  | "collect_vec" ->
    VVec
      (List.concat_map (fun (v, m) -> List.init m (fun _ -> v)) group)
  | "collect_set" -> VVec (List.map fst group)
  | _ -> eval_err "unknown aggregate function %s" f
