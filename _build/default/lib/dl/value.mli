(** Runtime values of the DL language.

    Every value that can be stored in a relation or manipulated by rule
    expressions.  Values are immutable and totally ordered, which lets
    them serve as keys of Z-sets and relation indexes. *)

type t =
  | VBool of bool
  | VInt of int64  (** signed 64-bit mathematical integer *)
  | VBit of int * int64
      (** [VBit (w, v)]: a [bit<w>] vector, [v] masked to [w] bits,
          [1 <= w <= 64] *)
  | VString of string
  | VTuple of t array
  | VOption of t option
  | VVec of t list
  | VMap of (t * t) list  (** association list sorted by key *)
  | VStruct of string * (string * t) array
      (** struct type name, fields in declaration order *)
  | VEnum of string * string * t array
      (** enum type name, constructor, payload *)
  | VDouble of float

val mask_bits : int -> int64 -> int64
(** [mask_bits w v] keeps the low [w] bits of [v]. *)

val bit : int -> int64 -> t
(** [bit w v] is [VBit (w, v)] with [v] masked to [w] bits.
    @raise Invalid_argument if [w] is outside [1, 64]. *)

val of_bool : bool -> t
val of_int : int -> t
val of_int64 : int64 -> t
val of_string : string -> t

val compare : t -> t -> int
(** Total structural order over values. *)

val compare_arrays : t array -> t array -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Extractors}

    These raise [Invalid_argument] on a tag mismatch; the DL type
    checker rules such mismatches out for well-typed programs. *)

val as_bool : t -> bool
val as_int : t -> int64
(** [as_int] accepts both [VInt] and [VBit] payloads. *)

val as_bit : t -> int * int64
val as_string : t -> string
val as_double : t -> float
val as_vec : t -> t list
val as_map : t -> (t * t) list
val as_option : t -> t option
val as_tuple : t -> t array

(** {1 Sorted-association-list map helpers} *)

val map_insert : t -> t -> (t * t) list -> (t * t) list
val map_find : t -> (t * t) list -> t option
val map_remove : t -> (t * t) list -> (t * t) list

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
