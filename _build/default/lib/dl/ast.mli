(** Abstract syntax of DL programs (surface form, before compilation).

    Conventions, following Datalog practice: relation names are
    capitalised and variables lower-case; variables bind left-to-right
    within a rule body; negated atoms and conditions may only mention
    bound variables; an aggregate literal must be the last literal of
    its body. *)

type expr =
  | EVar of string
  | EConst of Value.t
  | ECall of string * expr list  (** builtin function or operator *)
  | ETuple of expr list
  | EIf of expr * expr * expr

type pattern = PVar of string | PConst of Value.t | PWild

type literal =
  | LAtom of atom               (** positive occurrence *)
  | LNeg of atom                (** negated occurrence *)
  | LCond of expr               (** boolean guard *)
  | LAssign of string * expr    (** var v = e *)
  | LFlat of string * expr      (** var v in e — flattening over a vec *)
  | LAgg of agg                 (** var v = f(e) group_by (xs) *)

and atom = { rel : string; args : pattern array }

and agg = {
  agg_out : string;
  agg_func : string;
  agg_expr : expr;
  agg_by : string list;  (** only these survive past the literal *)
}

type rule = { head : atom_expr; body : literal list }

and atom_expr = { hrel : string; hargs : expr array }
(** Heads carry expressions, not patterns: the head may compute. *)

type role = Input | Output | Internal

type rel_decl = {
  rname : string;
  role : role;
  cols : (string * Dtype.t) list;
}

type program = { decls : rel_decl list; rules : rule list }

val arity : rel_decl -> int
val find_decl : program -> string -> rel_decl option
val pattern_vars : pattern array -> string list
val expr_vars : expr -> string list

val body_dependencies : rule -> (string * [ `Pos | `Neg ]) list
(** Relations read by a rule with dependency polarity; aggregation
    reports all its dependencies as [`Neg] since, like negation, it
    must be stratified below its consumers. *)

(** {1 Pretty-printing} *)

val pp_expr : Format.formatter -> expr -> unit
val pp_pattern : Format.formatter -> pattern -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_decl : Format.formatter -> rel_decl -> unit
val pp_program : Format.formatter -> program -> unit
