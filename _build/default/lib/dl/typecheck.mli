(** Static checking of DL programs.

    Verifies, before any evaluation: declarations are unique and
    well-formed; atoms refer to declared relations with the right
    arity; variables obey the left-to-right binding discipline (negated
    atoms, conditions and aggregate bodies use only bound variables);
    expressions are well-typed against the builtin signatures; heads
    produce values of the declared column types; and rules with bodies
    never write input relations. *)

val type_of_expr :
  (string * Dtype.t) list -> Ast.expr -> (Dtype.t, string) result
(** Type of an expression under a variable typing environment. *)

val check_rule : Ast.program -> Ast.rule -> (unit, string) result

val check_program : Ast.program -> (unit, string list) result
(** Check a whole program, collecting every error found. *)

val lint : Ast.program -> string list
(** Non-fatal warnings for likely authoring mistakes: currently,
    variables occurring exactly once in a rule (almost always typos in
    Datalog; write [_] or an [_]-prefixed name when intended). *)
