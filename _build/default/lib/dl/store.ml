(* Mutable storage for one relation: the set of visible rows, their
   derivation counts, and hash indexes over column subsets.

   For input relations a visible row always has count 1.  For computed
   relations in non-recursive strata the count is the number of
   derivations (counting-based incremental view maintenance); a row is
   visible iff its count is positive.  Relations in recursive strata use
   set semantics and keep all counts at 1. *)

type index = {
  positions : int array;                 (* column positions forming the key *)
  table : Row.t list ref Row.Tbl.t;      (* key sub-row -> visible rows *)
}

type t = {
  decl : Ast.rel_decl;
  mutable counts : int Row.Map.t;        (* visible rows -> derivation count > 0 *)
  mutable indexes : index list;
}

let create (decl : Ast.rel_decl) = { decl; counts = Row.Map.empty; indexes = [] }

let name t = t.decl.rname
let arity t = Ast.arity t.decl
let mem t row = Row.Map.mem row t.counts
let count t row = match Row.Map.find_opt row t.counts with Some c -> c | None -> 0
let cardinal t = Row.Map.cardinal t.counts
let iter f t = Row.Map.iter (fun row _ -> f row) t.counts
let fold f t acc = Row.Map.fold (fun row _ acc -> f row acc) t.counts acc
let rows t = Row.Map.fold (fun row _ acc -> row :: acc) t.counts []
let to_zset t : Zset.t = Row.Map.map (fun _ -> 1) t.counts

(* Both [index_add] and [index_remove] project the row on
   [idx.positions] to recompute the bucket key, so they are only
   correct if the positions are ascending, duplicate-free and within
   the relation's arity — otherwise the removal projects a *different*
   malformed key than a caller-supplied lookup key and the bucket
   leaks stale rows.  [ensure_index] canonicalises and validates
   positions so every [index] in [t.indexes] satisfies the invariant. *)
let index_add idx row =
  let key = Row.project row idx.positions in
  match Row.Tbl.find_opt idx.table key with
  | Some bucket -> bucket := row :: !bucket
  | None -> Row.Tbl.add idx.table key (ref [ row ])

let index_remove idx row =
  let key = Row.project row idx.positions in
  match Row.Tbl.find_opt idx.table key with
  | Some bucket ->
    bucket := List.filter (fun r -> not (Row.equal r row)) !bucket;
    if !bucket = [] then Row.Tbl.remove idx.table key
  | None -> ()

(* Visibility transitions: update every index when a row appears or
   disappears from the visible set. *)
let on_appear t row = List.iter (fun idx -> index_add idx row) t.indexes
let on_disappear t row = List.iter (fun idx -> index_remove idx row) t.indexes

(** [add_derivations t row dcount] adds [dcount] to the derivation count
    of [row] and returns the visibility change: [+1] if the row became
    visible, [-1] if it disappeared, [0] otherwise. *)
let add_derivations t row dcount =
  if dcount = 0 then 0
  else
    let old_count = count t row in
    let new_count = old_count + dcount in
    if new_count < 0 then
      invalid_arg
        (Printf.sprintf "Store.add_derivations: negative count for %s%s"
           (name t) (Row.to_string row));
    if new_count = 0 then begin
      t.counts <- Row.Map.remove row t.counts;
      if old_count > 0 then begin on_disappear t row; -1 end else 0
    end
    else begin
      t.counts <- Row.Map.add row new_count t.counts;
      if old_count = 0 then begin on_appear t row; 1 end else 0
    end

(** Set-semantics insertion; returns [true] if the row was new. *)
let set_insert t row =
  if mem t row then false
  else begin
    t.counts <- Row.Map.add row 1 t.counts;
    on_appear t row;
    true
  end

(** Set-semantics removal; returns [true] if the row was present. *)
let set_remove t row =
  if mem t row then begin
    t.counts <- Row.Map.remove row t.counts;
    on_disappear t row;
    true
  end
  else false

let m_index_builds = Obs.Counter.create "dl.store.index_builds"

(** [ensure_index t positions] finds or builds the index keyed on the
    given column positions (sorted ascending and deduplicated for
    canonicalisation).
    @raise Invalid_argument if a position is outside the relation's
    arity — projecting such a key would either crash or silently build
    an index that can never match a lookup. *)
let ensure_index t (positions : int array) : index =
  let arity = Ast.arity t.decl in
  Array.iter
    (fun p ->
      if p < 0 || p >= arity then
        invalid_arg
          (Printf.sprintf
             "Store.ensure_index: position %d out of range for %s (arity %d)"
             p (name t) arity))
    positions;
  let positions =
    Array.of_list (List.sort_uniq Int.compare (Array.to_list positions))
  in
  match
    List.find_opt (fun idx -> idx.positions = positions) t.indexes
  with
  | Some idx -> idx
  | None ->
    Obs.Counter.incr m_index_builds;
    let idx = { positions; table = Row.Tbl.create 64 } in
    iter (fun row -> index_add idx row) t;
    t.indexes <- idx :: t.indexes;
    idx

(** Visible rows whose projection on [idx.positions] equals [key]. *)
let index_lookup idx (key : Row.t) : Row.t list =
  match Row.Tbl.find_opt idx.table key with Some b -> !b | None -> []

(** Rough memory footprint in stored rows, counting index duplication;
    used by the RAM-overhead experiment. *)
let footprint t =
  cardinal t * (1 + List.length t.indexes)
