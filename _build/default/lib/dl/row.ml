(* A row (fact) of a relation: a fixed-arity array of values. *)

type t = Value.t array

let compare = Value.compare_arrays
let equal a b = compare a b = 0
let hash (r : t) = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 r

let pp fmt (r : t) =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Value.pp)
    (Array.to_seq r)

let to_string r = Format.asprintf "%a" pp r

(** [project r positions] extracts the sub-row at the given column
    positions, used as an index key. *)
let project (r : t) (positions : int array) : t =
  Array.map (fun i -> r.(i)) positions

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Hash = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hash)
