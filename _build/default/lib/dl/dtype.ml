(* Types of the DL language.

   The type language mirrors DDlog's core: booleans, mathematical
   integers, fixed-width bit vectors, strings, tuples, options, vectors,
   maps, structs and tagged unions.  [TAny] is the bottom placeholder
   used by the type checker for empty collections and wildcards. *)

type t =
  | TBool
  | TInt
  | TBit of int
  | TString
  | TTuple of t list
  | TOption of t
  | TVec of t
  | TMap of t * t
  | TStruct of string * (string * t) list
  | TEnum of string * (string * t list) list
  | TDouble
  | TAny

let rec equal a b =
  match a, b with
  | TBool, TBool | TInt, TInt | TString, TString | TAny, TAny
  | TDouble, TDouble -> true
  | TBit x, TBit y -> x = y
  | TTuple x, TTuple y -> List.equal equal x y
  | TOption x, TOption y -> equal x y
  | TVec x, TVec y -> equal x y
  | TMap (kx, vx), TMap (ky, vy) -> equal kx ky && equal vx vy
  | TStruct (nx, fx), TStruct (ny, fy) ->
    String.equal nx ny
    && List.equal (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal t1 t2) fx fy
  | TEnum (nx, cx), TEnum (ny, cy) ->
    String.equal nx ny
    && List.equal
         (fun (n1, ts1) (n2, ts2) -> String.equal n1 n2 && List.equal equal ts1 ts2)
         cx cy
  | ( (TBool | TInt | TBit _ | TString | TTuple _ | TOption _
      | TVec _ | TMap _ | TStruct _ | TEnum _ | TDouble | TAny), _ ) -> false

(** [unify a b] is the most specific type compatible with both, treating
    [TAny] as a wildcard.  Returns [None] if the types are incompatible. *)
let rec unify a b =
  match a, b with
  | TAny, t | t, TAny -> Some t
  | TTuple x, TTuple y when List.length x = List.length y ->
    let rec go acc = function
      | [], [] -> Some (TTuple (List.rev acc))
      | tx :: xs, ty :: ys -> (
        match unify tx ty with
        | Some t -> go (t :: acc) (xs, ys)
        | None -> None)
      | _ -> None
    in
    go [] (x, y)
  | TOption x, TOption y -> Option.map (fun t -> TOption t) (unify x y)
  | TVec x, TVec y -> Option.map (fun t -> TVec t) (unify x y)
  | TMap (kx, vx), TMap (ky, vy) -> (
    match unify kx ky, unify vx vy with
    | Some k, Some v -> Some (TMap (k, v))
    | _ -> None)
  | _ -> if equal a b then Some a else None

let rec pp fmt t =
  match t with
  | TBool -> Format.pp_print_string fmt "bool"
  | TInt -> Format.pp_print_string fmt "int"
  | TBit w -> Format.fprintf fmt "bit<%d>" w
  | TString -> Format.pp_print_string fmt "string"
  | TTuple ts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp) ts
  | TOption t -> Format.fprintf fmt "option<%a>" pp t
  | TVec t -> Format.fprintf fmt "vec<%a>" pp t
  | TMap (k, v) -> Format.fprintf fmt "map<%a, %a>" pp k pp v
  | TStruct (n, _) -> Format.pp_print_string fmt n
  | TEnum (n, _) -> Format.pp_print_string fmt n
  | TDouble -> Format.pp_print_string fmt "double"
  | TAny -> Format.pp_print_string fmt "'any"

let to_string t = Format.asprintf "%a" pp t

(** [check t v] holds when value [v] inhabits type [t]. *)
let rec check t (v : Value.t) =
  match t, v with
  | TAny, _ -> true
  | TBool, VBool _ -> true
  | TInt, VInt _ -> true
  | TDouble, VDouble _ -> true
  | TBit w, VBit (w', _) -> w = w'
  | TString, VString _ -> true
  | TTuple ts, VTuple vs ->
    List.length ts = Array.length vs
    && List.for_all2 check ts (Array.to_list vs)
  | TOption _, VOption None -> true
  | TOption t, VOption (Some x) -> check t x
  | TVec t, VVec l -> List.for_all (check t) l
  | TMap (kt, vt), VMap l -> List.for_all (fun (k, x) -> check kt k && check vt x) l
  | TStruct (n, fs), VStruct (n', fvs) ->
    String.equal n n'
    && List.length fs = Array.length fvs
    && List.for_all2
         (fun (fn, ft) (fn', fv) -> String.equal fn fn' && check ft fv)
         fs (Array.to_list fvs)
  | TEnum (n, cs), VEnum (n', c, payload) ->
    String.equal n n'
    && (match List.assoc_opt c cs with
       | Some ts ->
         List.length ts = Array.length payload
         && List.for_all2 check ts (Array.to_list payload)
       | None -> false)
  | ( (TBool | TInt | TBit _ | TString | TTuple _ | TOption _
      | TVec _ | TMap _ | TStruct _ | TEnum _ | TDouble), _ ) -> false

(** A canonical inhabitant of each type, used to initialise fields. *)
let rec default t : Value.t =
  match t with
  | TBool -> VBool false
  | TInt -> VInt 0L
  | TDouble -> VDouble 0.0
  | TBit w -> VBit (w, 0L)
  | TString -> VString ""
  | TTuple ts -> VTuple (Array.of_list (List.map default ts))
  | TOption _ -> VOption None
  | TVec _ -> VVec []
  | TMap _ -> VMap []
  | TStruct (n, fs) ->
    VStruct (n, Array.of_list (List.map (fun (fn, ft) -> (fn, default ft)) fs))
  | TEnum (n, cs) -> (
    match cs with
    | (c, ts) :: _ -> VEnum (n, c, Array.of_list (List.map default ts))
    | [] -> invalid_arg "Dtype.default: empty enum")
  | TAny -> VTuple [||]

(** Type of the value, reconstructed structurally (structs and enums keep
    only their name; field/constructor info is not recoverable). *)
let rec of_value (v : Value.t) =
  match v with
  | VBool _ -> TBool
  | VInt _ -> TInt
  | VDouble _ -> TDouble
  | VBit (w, _) -> TBit w
  | VString _ -> TString
  | VTuple a -> TTuple (List.map of_value (Array.to_list a))
  | VOption None -> TOption TAny
  | VOption (Some x) -> TOption (of_value x)
  | VVec [] -> TVec TAny
  | VVec (x :: _) -> TVec (of_value x)
  | VMap [] -> TMap (TAny, TAny)
  | VMap ((k, x) :: _) -> TMap (of_value k, of_value x)
  | VStruct (n, fs) ->
    TStruct (n, List.map (fun (fn, fv) -> (fn, of_value fv)) (Array.to_list fs))
  | VEnum (n, c, p) ->
    TEnum (n, [ (c, List.map of_value (Array.to_list p)) ])
