(** Rows (facts) of a relation: fixed-arity arrays of values. *)

type t = Value.t array

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val project : t -> int array -> t
(** [project r positions] extracts the sub-row at the given column
    positions (used as an index key). *)

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
