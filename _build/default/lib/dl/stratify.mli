(** Stratification: order relations into strata so that every stratum
    only reads from strictly earlier strata, except for positive
    recursion which stays inside one stratum.

    A stratum is a strongly-connected component of the relation
    dependency graph.  Negation and aggregation inside an SCC have no
    stratified semantics and are rejected. *)

type stratum = {
  relations : string list;  (** relations defined in this stratum *)
  rules : Ast.rule list;    (** rules whose head is in this stratum *)
  recursive : bool;         (** the SCC contains a cycle *)
}

type t = stratum list

exception Unstratifiable of string

val stratify : Ast.program -> t
(** Strata in dependency order (producers first).
    @raise Unstratifiable on negation or aggregation within an SCC. *)

val pp : Format.formatter -> t -> unit
