(** A deliberately simple, non-incremental reference evaluator.

    It shares only the AST, value and builtin modules with the
    incremental engine and recomputes every stratum to a fixpoint from
    scratch by brute force.  Its purpose is differential testing: for
    any program and input database, {!Engine}'s visible relations must
    coincide with this evaluator's result. *)

type db = (string, Row.Set.t) Hashtbl.t

val get : db -> string -> Row.Set.t
(** Contents of a relation (empty if absent). *)

val run : Ast.program -> (string * Row.t list) list -> db
(** Evaluate the program over the given input rows and return the full
    contents of every relation. *)
