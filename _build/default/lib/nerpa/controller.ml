(* The Nerpa controller: the state-synchronisation loop tying the three
   planes together (Fig. 4 of the paper).

   Responsibilities:
   - subscribe to the management database and convert its per-transaction
     monitor batches into DL transactions;
   - commit each transaction to the incremental engine and translate the
     resulting *output deltas* into P4Runtime write batches (deletes
     first, so that re-keyed entries modify cleanly);
   - drain data-plane digests, feed them back as DL input insertions,
     and iterate to quiescence (the feedback loop, e.g. MAC learning);
   - maintain multicast group membership from the MulticastGroup
     relation. *)

open Dl

exception Controller_error of string

let error fmt = Format.kasprintf (fun s -> raise (Controller_error s)) fmt

type stats = {
  mutable txns : int;             (* DL transactions committed *)
  mutable entries_written : int;  (* table entries inserted/deleted *)
  mutable digests_consumed : int;
  mutable groups_updated : int;
}

type t = {
  db : Ovsdb.Db.t;
  monitor : Ovsdb.Db.monitor;
  engine : Engine.t;
  program : Ast.program;
  mappings : Codegen.mapping list;
  input_rel_of_table : (string * Ast.rel_decl) list; (* OVSDB table -> decl *)
  digest_rel_of_name : (string * Ast.rel_decl) list; (* digest name -> decl *)
  switches : (string * P4runtime.server) list;
  (* digest relation -> key column indices for last-writer-wins
     replacement (e.g. MAC mobility: a newly learned (vlan, mac)
     retracts the previous port binding) *)
  digest_replace : (string * int list) list;
  stats : stats;
}

(** Build a controller from the three plane descriptions.  [rules] is
    the user-written DL program text (rules plus optional internal
    relation declarations); everything else is generated. *)
let create ?(digest_replace = []) ~(db : Ovsdb.Db.t) ~(p4 : P4.Program.t)
    ~(rules : string) ~(switches : (string * P4.Switch.t) list) () : t =
  let schema = db.Ovsdb.Db.schema in
  let generated = Codegen.generate ~schema ~p4 in
  let user =
    match Parser.parse_program rules with
    | Ok p -> p
    | Error msg -> error "rules do not parse: %s" msg
  in
  let program = Codegen.assemble generated user in
  let engine = Engine.create program in
  let monitor =
    Ovsdb.Db.add_monitor db
      (List.map (fun (t : Ovsdb.Schema.table) -> (t.tname, None)) schema.tables)
  in
  let input_rel_of_table =
    List.map
      (fun (t : Ovsdb.Schema.table) ->
        match Ast.find_decl program (Codegen.camel t.tname) with
        | Some d -> (t.tname, d)
        | None -> error "missing generated relation for table %s" t.tname)
      schema.tables
  in
  let digest_rel_of_name =
    List.map
      (fun (dname, rname) ->
        match Ast.find_decl program rname with
        | Some d -> (dname, d)
        | None -> error "missing generated relation for digest %s" dname)
      generated.digest_rels
  in
  let digest_replace =
    List.map
      (fun (dname, key_cols) ->
        match List.assoc_opt dname digest_rel_of_name with
        | None -> error "digest_replace: unknown digest %s" dname
        | Some decl ->
          let index_of c =
            let rec go i = function
              | [] -> error "digest_replace: %s has no column %s" dname c
              | (name, _) :: rest -> if String.equal name c then i else go (i + 1) rest
            in
            go 0 decl.Ast.cols
          in
          (decl.Ast.rname, List.map index_of key_cols))
      digest_replace
  in
  {
    db;
    monitor;
    engine;
    program;
    mappings = generated.mappings;
    input_rel_of_table;
    digest_rel_of_name;
    switches = List.map (fun (n, sw) -> (n, P4runtime.attach sw)) switches;
    digest_replace;
    stats = { txns = 0; entries_written = 0; digests_consumed = 0; groups_updated = 0 };
  }

(* ---------------- pushing output deltas to the data plane ----------- *)

let push_deltas (t : t) (deltas : (string * Zset.t) list) : unit =
  let outputs = Engine.output_deltas t.engine deltas in
  if outputs <> [] then begin
    (* Multicast groups: recompute the membership of touched groups from
       the engine's full relation contents. *)
    let mcast_updates =
      match List.assoc_opt "MulticastGroup" outputs with
      | None -> []
      | Some dz ->
        let touched =
          Zset.fold
            (fun row _ acc ->
              let g = Bridge.as_bit_value row.(0) in
              if List.mem g acc then acc else g :: acc)
            dz []
        in
        List.map
          (fun g ->
            let ports =
              List.map
                (fun row -> Bridge.as_bit_value row.(1))
                (Engine.query t.engine "MulticastGroup" ~positions:[ 0 ]
                   ~key:[ Value.bit 16 g ])
            in
            t.stats.groups_updated <- t.stats.groups_updated + 1;
            P4runtime.set_multicast ~group:g ~ports:(List.sort Int64.compare ports))
          touched
    in
    List.iter
      (fun (swname, srv) ->
        let info = P4runtime.info srv in
        (* Deletions first so that an entry whose action arguments
           changed is removed before its replacement is inserted. *)
        let dels = ref [] and inss = ref [] in
        List.iter
          (fun (rel, dz) ->
            match List.find_opt (fun (m : Codegen.mapping) -> m.rel_name = rel) t.mappings with
            | None -> () (* MulticastGroup handled above *)
            | Some m ->
              Zset.iter
                (fun row w ->
                  let entry = Bridge.entry_of_row info m row in
                  if w > 0 then inss := P4runtime.insert entry :: !inss
                  else dels := P4runtime.delete entry :: !dels)
                dz)
          outputs;
        let updates = List.rev !dels @ List.rev !inss @ mcast_updates in
        if updates <> [] then begin
          (match P4runtime.write srv updates with
          | Ok () -> ()
          | Error msg -> error "switch %s rejected updates: %s" swname msg);
          t.stats.entries_written <-
            t.stats.entries_written + List.length !dels + List.length !inss
        end)
      t.switches
  end

(* ---------------- management plane -> engine ---------------- *)

let apply_monitor_batch (t : t) (batch : Ovsdb.Db.table_updates) : unit =
  let txn = Engine.transaction t.engine in
  List.iter
    (fun (table, rows) ->
      match List.assoc_opt table t.input_rel_of_table with
      | None -> ()
      | Some decl ->
        List.iter
          (fun (uuid, (upd : Ovsdb.Db.row_update)) ->
            (match upd.before with
            | Some row ->
              Engine.delete txn decl.Ast.rname (Bridge.row_of_ovsdb decl uuid row)
            | None -> ());
            match upd.after with
            | Some row ->
              Engine.insert txn decl.Ast.rname (Bridge.row_of_ovsdb decl uuid row)
            | None -> ())
          rows)
    batch;
  let deltas = Engine.commit txn in
  t.stats.txns <- t.stats.txns + 1;
  push_deltas t deltas

(* ---------------- data plane -> engine (feedback loop) -------------- *)

let consume_digests (t : t) : bool =
  let any = ref false in
  List.iter
    (fun (_, srv) ->
      let info = P4runtime.info srv in
      List.iter
        (fun (dl : P4runtime.digest_list) ->
          let dinfo =
            match P4.P4info.find_digest_by_id info dl.digest_id with
            | Some d -> d
            | None -> error "unknown digest id %d" dl.digest_id
          in
          match List.assoc_opt dinfo.digest_name t.digest_rel_of_name with
          | None -> P4runtime.ack_digest_list srv ~list_id:dl.list_id
          | Some decl ->
            let txn = Engine.transaction t.engine in
            let replace_keys = List.assoc_opt decl.Ast.rname t.digest_replace in
            List.iter
              (fun values ->
                let row = Bridge.row_of_digest decl values in
                (match replace_keys with
                | None -> ()
                | Some idxs ->
                  (* last-writer-wins: retract rows agreeing on the keys *)
                  List.iter
                    (fun old ->
                      if
                        (not (Row.equal old row))
                        && List.for_all
                             (fun i -> Value.equal old.(i) row.(i))
                             idxs
                      then Engine.delete txn decl.Ast.rname old)
                    (Engine.relation_rows t.engine decl.Ast.rname));
                Engine.insert txn decl.Ast.rname row;
                t.stats.digests_consumed <- t.stats.digests_consumed + 1)
              dl.entries;
            let deltas = Engine.commit txn in
            t.stats.txns <- t.stats.txns + 1;
            P4runtime.ack_digest_list srv ~list_id:dl.list_id;
            any := true;
            push_deltas t deltas)
        (P4runtime.stream_digests srv))
    t.switches;
  !any

(* ---------------- the synchronisation loop ---------------- *)

(** Process all pending management-plane changes and data-plane digests
    until the system is quiescent.  Returns the number of DL
    transactions committed during this call. *)
let sync (t : t) : int =
  let before = t.stats.txns in
  let rec loop fuel =
    if fuel = 0 then error "sync did not quiesce (feedback loop?)";
    let batches = Ovsdb.Db.poll t.monitor in
    List.iter (apply_monitor_batch t) batches;
    let digests = consume_digests t in
    if batches <> [] || digests then loop (fuel - 1)
  in
  loop 1000;
  t.stats.txns - before

(** Direct access to the engine, for inspection in tests and examples. *)
let engine (t : t) = t.engine

let stats (t : t) = t.stats

(** Pre-flight report: output relations no rule writes and digest
    relations no rule reads — usually authoring mistakes. *)
let preflight (t : t) : string list =
  let written rel =
    List.exists (fun (r : Ast.rule) -> String.equal r.head.hrel rel)
      t.program.rules
  in
  let read rel =
    List.exists
      (fun (r : Ast.rule) ->
        List.exists (fun (dep, _) -> String.equal dep rel)
          (Ast.body_dependencies r))
      t.program.rules
  in
  List.filter_map
    (fun (d : Ast.rel_decl) ->
      match d.role with
      | Ast.Output
        when (not (written d.rname))
             && not
                  (List.exists
                     (fun (m : Codegen.mapping) ->
                       String.equal m.rel_name d.rname && m.is_default)
                     t.mappings) ->
        Some (Printf.sprintf "output relation %s has no rules" d.rname)
      | Ast.Input
        when List.exists (fun (_, dd) -> dd == d) t.digest_rel_of_name
             && not (read d.rname) ->
        Some (Printf.sprintf "digest relation %s is never read" d.rname)
      | _ -> None)
    t.program.decls
