(** The Nerpa controller: the state-synchronisation loop tying the
    three planes together (Fig. 4 of the paper).

    It converts OVSDB monitor batches into DL transactions, translates
    engine output deltas into atomic P4Runtime write batches (deletions
    first, so re-keyed entries modify cleanly), maintains multicast
    groups from the [MulticastGroup] relation, and feeds data-plane
    digests back as DL input insertions until the system quiesces. *)

exception Controller_error of string

type stats = {
  txns : int;             (** DL transactions committed *)
  entries_written : int;  (** table entries inserted/deleted *)
  digests_consumed : int;
  groups_updated : int;
}
(** An immutable snapshot of the controller counters.  The counts live
    in the process-global {!Obs} registry under [nerpa.*] names, so
    they aggregate across controllers in one process and read as zero
    while collection is disabled. *)

type t

val create :
  ?digest_replace:(string * string list) list ->
  ?max_iterations:int ->
  db:Ovsdb.Db.t ->
  p4:P4.Program.t ->
  rules:string ->
  switches:(string * P4.Switch.t) list ->
  unit ->
  t
(** Build a controller: generate the relation schema from [db]'s schema
    and [p4], parse the user [rules] text, create the engine, subscribe
    a monitor, and attach a P4Runtime server to every switch (all run
    the same program, as in the paper's prototype).

    [digest_replace] gives last-writer-wins semantics to digest
    relations: [(digest, key_columns)] makes a newly inserted digest
    row retract previous rows agreeing on the key columns — e.g. MAC
    mobility, where a (vlan, mac) binding moves between ports.

    [max_iterations] (default [1000]) bounds the {!sync} feedback loop:
    the number of poll-commit-push iterations allowed before sync gives
    up and reports the still-changing relations.
    @raise Controller_error on parse errors, schema mismatches, or a
    non-positive [max_iterations]. *)

val sync : t -> int
(** Process all pending management-plane changes and data-plane digests
    until quiescent; returns the number of DL transactions committed.
    @raise Controller_error if a switch rejects updates, or if the
    feedback loop is still producing changes after [max_iterations]
    iterations — the error message reports the fuel spent and the
    names and delta cardinalities of the relations that were still
    changing in the last iteration. *)

val engine : t -> Dl.Engine.t
(** The underlying engine, for inspection. *)

val stats : t -> stats
(** Snapshot the [nerpa.*] counters from the {!Obs} registry. *)

val preflight : t -> string list
(** Authoring lint: output relations no rule writes (except those bound
    to a table's default action) and digest relations no rule reads. *)
