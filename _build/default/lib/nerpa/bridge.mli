(** Data conversion between the three planes — the generated
    replacement for a traditional SDN stack's hand-written glue. *)

exception Conversion_error of string

val datum_to_value : Dl.Dtype.t -> Ovsdb.Datum.t -> Dl.Value.t
(** Convert an OVSDB datum to the DL value of the generated column
    type.  @raise Conversion_error on shape mismatches. *)

val row_of_ovsdb :
  Dl.Ast.rel_decl -> Ovsdb.Uuid.t -> Ovsdb.Db.row -> Dl.Row.t
(** One management-plane row as an input row of its generated relation
    (whose first column is the row UUID). *)

val as_bit_value : Dl.Value.t -> int64
(** The payload of a [bit<N>] (or int) value. *)

val entry_of_row :
  P4.P4info.t -> Codegen.mapping -> Dl.Row.t -> P4runtime.table_entry
(** Convert an output-relation row into a P4Runtime table entry,
    following the column layout recorded at generation time. *)

val row_of_digest : Dl.Ast.rel_decl -> int64 list -> Dl.Row.t
(** Convert one digest-list entry into an input row of the generated
    digest relation. *)
