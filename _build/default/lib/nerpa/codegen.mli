(** Relation-schema generation: the heart of Nerpa's co-design story.

    The control plane's DL relations are {e derived} rather than
    written by hand: every OVSDB table becomes an input relation (§4.2
    of the paper), every P4 match-action table becomes one output
    relation per installable action (the pure-relational encoding of
    the paper's action sum types), every P4 digest becomes an input
    relation (the feedback loop), and a [MulticastGroup] output
    relation is always provided for programming replication groups. *)

val camel : string -> string
(** ["in_vlan"] → ["InVlan"]; already-capitalised names pass through. *)

(** How an output relation's columns map back onto a P4 table entry. *)
type mapping = {
  rel_name : string;
  table_name : string;
  action_name : string;
  key_specs : (P4.Program.match_kind * int) list;
      (** per key: (match kind, width); LPM and ternary keys consume one
          extra column (prefix length / mask) *)
  has_priority : bool;
      (** tables with ternary keys gain a [priority: int] column *)
  param_widths : int list;
  is_default : bool;  (** this action is the table's miss behaviour *)
}

type generated = {
  decls : Dl.Ast.rel_decl list;
  mappings : mapping list;
  digest_rels : (string * string) list;  (** digest name → relation name *)
}

val input_decls_of_schema : Ovsdb.Schema.t -> Dl.Ast.rel_decl list
(** One input relation per management table, with a leading [_uuid]
    column; OVSDB column types map to [int]/[double]/[bool]/[string],
    optional columns to [option<_>], sets to [vec<_>], maps to
    [map<_,_>]. *)

val output_decls_of_p4 :
  P4.Program.t -> (Dl.Ast.rel_decl * mapping) list
(** One output relation per (table, installable action), laid out as
    key columns (with [_plen]/[_mask] companions), then [priority] for
    ternary tables, then one [bit<w>] column per action parameter. *)

val digest_decls_of_p4 : P4.Program.t -> (Dl.Ast.rel_decl * string) list

val multicast_decl : Dl.Ast.rel_decl
(** [MulticastGroup(group: bit<16>, port: bit<16>)]. *)

val generate : schema:Ovsdb.Schema.t -> p4:P4.Program.t -> generated
(** The full control-plane schema derived from the two other planes. *)

val decls_text : generated -> string
(** The generated declarations as DL source text (they parse back). *)

val assemble : generated -> Dl.Ast.program -> Dl.Ast.program
(** Combine the generated declarations with the user-written rules
    program; redeclarations are caught by the engine's type checker. *)
