lib/nerpa/codegen.mli: Dl Ovsdb P4
