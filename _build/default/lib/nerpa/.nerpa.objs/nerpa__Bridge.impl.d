lib/nerpa/bridge.ml: Array Ast Codegen Dl Dtype Format Int64 List Ovsdb P4 P4runtime Row String Value
