lib/nerpa/controller.ml: Array Ast Bridge Codegen Dl Engine Format Int64 List Ovsdb P4 P4runtime Parser Printf Row String Value Zset
