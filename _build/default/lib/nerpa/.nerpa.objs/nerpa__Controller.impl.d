lib/nerpa/controller.ml: Array Ast Bridge Codegen Dl Engine Format Int64 List Obs Ovsdb P4 P4runtime Parser Printf Row String Value Zset
