lib/nerpa/bridge.mli: Codegen Dl Ovsdb P4 P4runtime
