lib/nerpa/codegen.ml: Ast Dl Dtype Format List Ovsdb P4 String
