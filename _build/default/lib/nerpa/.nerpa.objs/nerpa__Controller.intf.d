lib/nerpa/controller.mli: Dl Ovsdb P4
