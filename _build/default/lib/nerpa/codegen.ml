(* Relation-schema generation: the heart of Nerpa's co-design story.

   The control plane's DL relations are *derived* from the other two
   planes rather than written by hand:
   - every OVSDB table becomes an input relation (§4.2 of the paper);
   - every P4 match-action table becomes one output relation per
     installable action (the pure-relational encoding of the paper's
     action sum type);
   - every P4 digest becomes an input relation (the feedback loop);
   - a MulticastGroup output relation is always provided for programming
     replication groups.

   The same generation records a [mapping] used by the bridge to convert
   relation deltas back into P4Runtime writes, and the declarations can
   be printed as DL source text for documentation and the LoC
   experiment. *)

open Dl

(* "in_vlan" -> "InVlan"; "Port" -> "Port" *)
let camel (s : string) : string =
  String.split_on_char '_' s
  |> List.filter (fun part -> part <> "")
  |> List.map String.capitalize_ascii
  |> String.concat ""

(* "ethernet.dst" -> "ethernet_dst"; "meta.vlan_id" -> "vlan_id" *)
let sanitize_ref (r : P4.Program.fref) : string =
  match r with
  | P4.Program.Field (h, f) -> h ^ "_" ^ f
  | P4.Program.Meta m -> m

let dl_keywords =
  [ "input"; "output"; "relation"; "not"; "and"; "or"; "var"; "in";
    "group_by"; "if"; "else"; "true"; "false"; "bool"; "string"; "int";
    "double"; "bit"; "vec"; "option"; "map" ]

let sanitize_col (s : string) : string =
  let s = String.uncapitalize_ascii s in
  if List.mem s dl_keywords then s ^ "_" else s

(* ---------------- OVSDB -> input relations ---------------- *)

let base_type (b : Ovsdb.Otype.base) : Dtype.t =
  match b.Ovsdb.Otype.typ with
  | Ovsdb.Otype.AInteger -> Dtype.TInt
  | Ovsdb.Otype.AReal -> Dtype.TDouble
  | Ovsdb.Otype.ABoolean -> Dtype.TBool
  | Ovsdb.Otype.AString -> Dtype.TString
  | Ovsdb.Otype.AUuid -> Dtype.TString

let column_type (t : Ovsdb.Otype.t) : Dtype.t =
  let key = base_type t.Ovsdb.Otype.key in
  match t.Ovsdb.Otype.value with
  | Some v -> Dtype.TMap (key, base_type v)
  | None -> (
    match t.Ovsdb.Otype.min, t.Ovsdb.Otype.max with
    | 1, Ovsdb.Otype.Limit 1 -> key
    | 0, Ovsdb.Otype.Limit 1 -> Dtype.TOption key
    | _ -> Dtype.TVec key)

(** One input relation per management-plane table, keyed by row UUID. *)
let input_decls_of_schema (schema : Ovsdb.Schema.t) : Ast.rel_decl list =
  List.map
    (fun (tbl : Ovsdb.Schema.table) ->
      {
        Ast.rname = camel tbl.tname;
        role = Ast.Input;
        cols =
          ("_uuid", Dtype.TString)
          :: List.map
               (fun (c : Ovsdb.Schema.column) ->
                 (sanitize_col c.cname, column_type c.ctype))
               tbl.columns;
      })
    schema.tables

(* ---------------- P4 tables -> output relations ---------------- *)

(** How an output relation's columns map back onto a P4 table entry. *)
type mapping = {
  rel_name : string;
  table_name : string;
  action_name : string;
  (* per key: (match kind, width); Lpm and Ternary keys consume one
     extra column (prefix length / mask) *)
  key_specs : (P4.Program.match_kind * int) list;
  has_priority : bool;
  param_widths : int list;
  is_default : bool;   (* this action is the table's miss behaviour *)
}

let key_columns (prog : P4.Program.t) (k : P4.Program.key) :
    (string * Dtype.t) list =
  let name = sanitize_col (sanitize_ref k.kref) in
  let width =
    match P4.Program.ref_width prog k.kref with
    | Ok w -> w
    | Error e -> invalid_arg e
  in
  match k.kind with
  | P4.Program.Exact -> [ (name, Dtype.TBit width) ]
  | P4.Program.Lpm -> [ (name, Dtype.TBit width); (name ^ "_plen", Dtype.TInt) ]
  | P4.Program.Ternary ->
    [ (name, Dtype.TBit width); (name ^ "_mask", Dtype.TBit width) ]
  | P4.Program.Optional -> [ (name, Dtype.TOption (Dtype.TBit width)) ]

(** One output relation per (table, installable action). *)
let output_decls_of_p4 (prog : P4.Program.t) :
    (Ast.rel_decl * mapping) list =
  List.concat_map
    (fun (tbl : P4.Program.table) ->
      let has_priority =
        List.exists (fun (k : P4.Program.key) -> k.kind = P4.Program.Ternary)
          tbl.keys
      in
      List.filter_map
        (fun aname ->
          match P4.Program.find_action prog aname with
          | None -> None
          | Some action ->
            let key_cols = List.concat_map (key_columns prog) tbl.keys in
            let param_cols =
              List.map
                (fun (pname, w) -> (sanitize_col pname, Dtype.TBit w))
                action.params
            in
            let prio_cols = if has_priority then [ ("priority", Dtype.TInt) ] else [] in
            let cols = key_cols @ prio_cols @ param_cols in
            if cols = [] then None (* keyless, parameterless: nothing to program *)
            else
              Some
                ( {
                    Ast.rname = camel tbl.tname ^ camel aname;
                    role = Ast.Output;
                    cols;
                  },
                  {
                    rel_name = camel tbl.tname ^ camel aname;
                    table_name = tbl.tname;
                    action_name = aname;
                    key_specs =
                      List.map
                        (fun (k : P4.Program.key) ->
                          ( k.kind,
                            match P4.Program.ref_width prog k.kref with
                            | Ok w -> w
                            | Error e -> invalid_arg e ))
                        tbl.keys;
                    has_priority;
                    param_widths = List.map snd action.params;
                    is_default = String.equal aname (fst tbl.default_action);
                  } ))
        tbl.actions)
    prog.tables

(** One input relation per digest (the data-plane feedback loop). *)
let digest_decls_of_p4 (prog : P4.Program.t) : (Ast.rel_decl * string) list =
  List.map
    (fun (d : P4.Program.digest) ->
      ( {
          Ast.rname = camel d.dname;
          role = Ast.Input;
          cols =
            List.map
              (fun (fname, r) ->
                let w =
                  match P4.Program.ref_width prog r with
                  | Ok w -> w
                  | Error e -> invalid_arg e
                in
                (sanitize_col fname, Dtype.TBit w))
              d.dfields;
        },
        d.dname ))
    prog.digests

(** The always-present replication-group output relation. *)
let multicast_decl : Ast.rel_decl =
  {
    Ast.rname = "MulticastGroup";
    role = Ast.Output;
    cols = [ ("group", Dtype.TBit 16); ("port", Dtype.TBit 16) ];
  }

(* ---------------- assembly ---------------- *)

type generated = {
  decls : Ast.rel_decl list;
  mappings : mapping list;
  digest_rels : (string * string) list; (* digest name -> relation name *)
}

(** Generate the full control-plane schema from the two other planes. *)
let generate ~(schema : Ovsdb.Schema.t) ~(p4 : P4.Program.t) : generated =
  let inputs = input_decls_of_schema schema in
  let outputs = output_decls_of_p4 p4 in
  let digests = digest_decls_of_p4 p4 in
  {
    decls =
      inputs @ List.map fst digests @ List.map fst outputs @ [ multicast_decl ];
    mappings = List.map snd outputs;
    digest_rels = List.map (fun (d, n) -> (n, d.Ast.rname)) digests;
  }

(** The generated declarations as DL source text, as Nerpa's tooling
    would emit into the program skeleton. *)
let decls_text (g : generated) : string =
  String.concat "\n"
    (List.map (fun d -> Format.asprintf "%a" Ast.pp_decl d) g.decls)

(** Combine generated declarations with the user-written rules program.
    The user text may declare additional internal relations but must not
    redeclare generated ones (checked by the engine's type checker). *)
let assemble (g : generated) (user : Ast.program) : Ast.program =
  { Ast.decls = g.decls @ user.decls; rules = user.rules }
