lib/ofp4/compile.mli: Openflow P4
