lib/ofp4/openflow.mli:
