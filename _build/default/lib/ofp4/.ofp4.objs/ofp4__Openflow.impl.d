lib/ofp4/openflow.ml: Int Int64 List Option Printf String
