lib/ofp4/compile.ml: Format Int64 List Openflow P4 Printf
