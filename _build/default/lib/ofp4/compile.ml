(* The p4c-of analog: compile a mini-P4 program plus its current table
   entries into an OpenFlow flow pipeline.

   Supported program class: ingress pipelines that are a sequence of
   table applications (Seq/ApplyTable/Nop); each entry becomes one or
   more flows and each table gets a goto to the next applied table.
   Actions compile as:

     Forward e    -> output
     Multicast e  -> group
     Drop         -> drop (no goto)
     EmitDigest d -> controller(d)
     Assign       -> set_field (constant or parameter expressions only)
     SetValid     -> push_vlan (vlan header only), SetInvalid -> pop_vlan

   Richer control flow (If) and computed expressions are out of scope,
   as for the real ofp4 prototype; [compile] reports them as errors. *)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* The linear sequence of tables applied by a control. *)
let rec table_sequence (c : P4.Program.control) : string list =
  match c with
  | P4.Program.Nop -> []
  | P4.Program.Seq (a, b) -> table_sequence a @ table_sequence b
  | P4.Program.ApplyTable t -> [ t ]
  | P4.Program.If _ -> unsupported "conditional control flow"

let ref_name (r : P4.Program.fref) =
  match r with
  | P4.Program.Field (h, f) -> h ^ "." ^ f
  | P4.Program.Meta m -> "meta." ^ m

(* Evaluate an action expression to a constant, given parameter values. *)
let rec const_expr (params : (string * int64) list) (e : P4.Program.expr) : int64
    =
  match e with
  | P4.Program.EConst (_, v) -> v
  | P4.Program.EParam p -> (
    match List.assoc_opt p params with
    | Some v -> v
    | None -> unsupported "unbound parameter %s" p)
  | P4.Program.EBin (P4.Program.Add, a, b) ->
    Int64.add (const_expr params a) (const_expr params b)
  | _ -> unsupported "non-constant expression in action"

(* Compile one P4 action invocation into OpenFlow actions. *)
let compile_action (prog : P4.Program.t) ~(aname : string) ~(args : int64 list)
    ~(next : int option) : Openflow.action list =
  let action =
    match P4.Program.find_action prog aname with
    | Some a -> a
    | None -> unsupported "unknown action %s" aname
  in
  let params = List.map2 (fun (n, _) v -> (n, v)) action.params args in
  let acts = ref [] in
  let dropped = ref false in
  List.iter
    (fun prim ->
      match prim with
      | P4.Program.Forward e ->
        acts :=
          Openflow.SetField (Openflow.reg_has_dest, 1L)
          :: Openflow.SetField (Openflow.reg_egress, const_expr params e)
          :: !acts
      | P4.Program.Multicast e ->
        acts :=
          Openflow.SetField (Openflow.reg_mcast, const_expr params e) :: !acts
      | P4.Program.Drop -> dropped := true
      | P4.Program.EmitDigest d -> acts := Openflow.ToController d :: !acts
      | P4.Program.Assign (r, e) ->
        acts := Openflow.SetField (ref_name r, const_expr params e) :: !acts
      | P4.Program.SetValid "vlan" -> acts := Openflow.PushVlan :: !acts
      | P4.Program.SetInvalid "vlan" -> acts := Openflow.PopVlan :: !acts
      | P4.Program.SetValid h | P4.Program.SetInvalid h ->
        unsupported "header stack op on %s" h
      | P4.Program.CloneTo e ->
        (* mirroring compiles to an extra output *)
        acts := Openflow.Output (const_expr params e) :: !acts
      | P4.Program.Count _ -> () (* counters are implicit per-flow in OF *)
      | P4.Program.RegWrite _ | P4.Program.RegRead _ ->
        unsupported "stateful registers")
    (List.rev action.body |> List.rev);
  let base = List.rev !acts in
  if !dropped then base @ [ Openflow.SetField (Openflow.reg_dropped, 1L) ]
  else
    match next with Some t -> base @ [ Openflow.Goto t ] | None -> base

let compile_match (prog : P4.Program.t) (tbl : P4.Program.table)
    (matches : P4.Entry.match_value list) : Openflow.field_match list =
  List.concat
    (List.map2
       (fun (k : P4.Program.key) mv ->
         let width =
           match P4.Program.ref_width prog k.kref with
           | Ok w -> w
           | Error e -> unsupported "%s" e
         in
         let name = ref_name k.kref in
         match mv with
         | P4.Entry.MExact v -> [ { Openflow.mfield = name; mvalue = v; mmask = None } ]
         | P4.Entry.MLpm (v, len) ->
           [ { Openflow.mfield = name; mvalue = v;
               mmask = Some (P4.Entry.mask_of_prefix ~width ~prefix_len:len) } ]
         | P4.Entry.MTernary (v, m) ->
           [ { Openflow.mfield = name; mvalue = v; mmask = Some m } ]
         | P4.Entry.MAny -> [])
       tbl.keys matches)

(** Compile [switch]'s program and installed entries into a flow
    pipeline.  Each P4 table maps to one OpenFlow table, in application
    order; cookies record which table/entry produced each flow. *)
let compile (sw : P4.Switch.t) : Openflow.t =
  let prog = sw.P4.Switch.program in
  let sequence = table_sequence prog.ingress @ table_sequence prog.egress in
  let out = Openflow.create () in
  List.iteri
    (fun idx tname ->
      let tbl =
        match P4.Program.find_table prog tname with
        | Some t -> t
        | None -> unsupported "unknown table %s" tname
      in
      let next = if idx + 1 < List.length sequence then Some (idx + 1) else None in
      (* entries *)
      List.iter
        (fun (e : P4.Entry.t) ->
          let lpm_bonus = P4.Entry.lpm_length e in
          Openflow.add_flow out
            {
              Openflow.table_id = idx;
              priority = 1 + e.priority + lpm_bonus;
              matches = compile_match prog tbl e.matches;
              actions = compile_action prog ~aname:e.action ~args:e.args ~next;
              cookie = Printf.sprintf "%s/%s" tname e.action;
            })
        (P4.Switch.table_entries sw tname);
      (* table-miss flow: the default action at priority 0 *)
      let dname, dargs = tbl.default_action in
      Openflow.add_flow out
        {
          Openflow.table_id = idx;
          priority = 0;
          matches = [];
          actions = compile_action prog ~aname:dname ~args:dargs ~next;
          cookie = Printf.sprintf "%s/default:%s" tname dname;
        })
    sequence;
  out
