(** The p4c-of analog: compile a mini-P4 program plus its installed
    table entries into an OpenFlow flow pipeline.

    Supported program class (as for the real ofp4 prototype, a subset):
    pipelines that are a sequence of table applications; constant or
    parameter action expressions; VLAN as the only header-stack
    operation.  Forwarding primitives compile to the OVS register idiom
    so later tables can override earlier decisions exactly as in the
    v1model (see {!Openflow.eval}).

    One documented semantic difference: a dropped packet stops at the
    dropping table instead of traversing the rest of the pipeline, so
    digests after a drop are not emitted. *)

exception Unsupported of string

val table_sequence : P4.Program.control -> string list
(** The linear table application order of a control.
    @raise Unsupported on conditional control flow. *)

val compile : P4.Switch.t -> Openflow.t
(** Compile the switch's program and current entries.  Each P4 table
    maps to one OpenFlow table in application order; every entry
    becomes a flow (priority = 1 + entry priority + total LPM prefix
    length) and every table gets a priority-0 miss flow running its
    default action.  Cookies record the producing table/action. *)
