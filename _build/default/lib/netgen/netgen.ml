(* Deterministic workload and topology generators used by the examples,
   tests and benchmarks.  Everything is seeded explicitly so results
   are reproducible run to run. *)

type rng = Random.State.t

let rng seed = Random.State.make [| seed; 0x6e657270 |]

(* ---------------- graphs ---------------- *)

(** A simple chain 0 -> 1 -> ... -> n-1. *)
let chain n : (int * int) list = List.init (max 0 (n - 1)) (fun i -> (i, i + 1))

(** A ring of n nodes. *)
let ring n : (int * int) list =
  if n < 2 then [] else List.init n (fun i -> (i, (i + 1) mod n))

(** [random_graph ~nodes ~edges ~seed] draws distinct directed edges
    uniformly (no self-loops). *)
let random_graph ~nodes ~edges ~seed : (int * int) list =
  let r = rng seed in
  let seen = Hashtbl.create (2 * edges) in
  let result = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length seen < edges && !attempts < edges * 50 do
    incr attempts;
    let a = Random.State.int r nodes and b = Random.State.int r nodes in
    if a <> b && not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.add seen (a, b) ();
      result := (a, b) :: !result
    end
  done;
  List.rev !result

(** A two-level leaf/spine fabric: [spines] core nodes, [leaves] edge
    nodes, every leaf connected to every spine (both directions).
    Spines are numbered [0, spines); leaves follow. *)
let leaf_spine ~spines ~leaves : (int * int) list =
  List.concat
    (List.init leaves (fun l ->
         List.concat
           (List.init spines (fun s -> [ (spines + l, s); (s, spines + l) ]))))

(* ---------------- snvs port configurations ---------------- *)

type port_plan = {
  pp_name : string;
  pp_port : int;
  pp_mode : string;    (* "access" | "trunk" *)
  pp_tag : int;
  pp_trunks : int list;
}

(** [ports ~n ~vlans ~trunk_every ~seed] plans [n] ports spread over
    [vlans] VLANs, every [trunk_every]-th port a trunk carrying all the
    VLANs. *)
let ports ?(vlans = 8) ?(trunk_every = 16) ~n () : port_plan list =
  List.init n (fun i ->
      if trunk_every > 0 && i mod trunk_every = trunk_every - 1 then
        {
          pp_name = Printf.sprintf "trunk%d" i;
          pp_port = i + 1;
          pp_mode = "trunk";
          pp_tag = 0;
          pp_trunks = List.init vlans (fun v -> 10 + v);
        }
      else
        {
          pp_name = Printf.sprintf "port%d" i;
          pp_port = i + 1;
          pp_mode = "access";
          pp_tag = 10 + (i mod vlans);
          pp_trunks = [];
        })

(* ---------------- configuration-change streams ---------------- *)

type change =
  | AddPort of port_plan
  | DelPort of string
  | AddAcl of { prio : int; src : int64; dst : int64; allow : bool }
  | DelAcl of int (* priority *)
  | SetMirror of { select_port : int; output_port : int }

(** A stream of [n] small configuration changes against a network of
    [base] ports, in the style of §2.1 (Robotron: a dozen small changes
    per device per week).  Deletions target previously added entities so
    the stream is always valid. *)
let change_stream ~base ~n ~seed : change list =
  let r = rng seed in
  let next_port = ref (base + 1) in
  let live_extra = ref [] in
  let next_acl = ref 1000 in
  let live_acls = ref [] in
  List.init n (fun _ ->
      match Random.State.int r 5 with
      | 0 ->
        let i = !next_port in
        incr next_port;
        let p =
          {
            pp_name = Printf.sprintf "xport%d" i;
            pp_port = i;
            pp_mode = "access";
            pp_tag = 10 + (i mod 8);
            pp_trunks = [];
          }
        in
        live_extra := p.pp_name :: !live_extra;
        AddPort p
      | 1 when !live_extra <> [] ->
        let name = List.hd !live_extra in
        live_extra := List.tl !live_extra;
        DelPort name
      | 2 ->
        let prio = !next_acl in
        incr next_acl;
        live_acls := prio :: !live_acls;
        AddAcl
          {
            prio;
            src = Int64.of_int (Random.State.int r 1000);
            dst = Int64.of_int (Random.State.int r 1000);
            allow = Random.State.bool r;
          }
      | 3 when !live_acls <> [] ->
        let prio = List.hd !live_acls in
        live_acls := List.tl !live_acls;
        DelAcl prio
      | _ ->
        SetMirror
          {
            select_port = 1 + Random.State.int r (max 1 base);
            output_port = 1 + Random.State.int r (max 1 base);
          })

(* ---------------- load balancers ---------------- *)

type lb_plan = { lb_name : string; lb_vip : int64; lb_backends : int64 list }

(** [lbs ~n ~backends ~seed]: [n] load balancers with [backends] backends
    each, VIPs and backends drawn from distinct address ranges. *)
let lbs ~n ~backends ~seed : lb_plan list =
  let r = rng seed in
  List.init n (fun i ->
      {
        lb_name = Printf.sprintf "lb%d" i;
        lb_vip = Int64.of_int (0x0A000000 + i);
        lb_backends =
          List.init backends (fun _ ->
              Int64.of_int (0xC0A80000 + Random.State.int r 0xFFFF));
      })

(* ---------------- MAC traffic ---------------- *)

(** [mac_hosts ~n] deterministic host MACs. *)
let mac_hosts ~n : int64 list =
  List.init n (fun i -> Int64.of_int (0x020000000000 + i))
