(** Deterministic workload and topology generators used by the
    examples, tests and benchmarks.  Everything is seeded explicitly so
    results reproduce run to run. *)

type rng = Random.State.t

val rng : int -> rng

(** {1 Graphs} *)

val chain : int -> (int * int) list
(** 0 → 1 → ... → n-1. *)

val ring : int -> (int * int) list

val random_graph : nodes:int -> edges:int -> seed:int -> (int * int) list
(** Distinct directed edges drawn uniformly, no self-loops. *)

val leaf_spine : spines:int -> leaves:int -> (int * int) list
(** A two-level fabric, every leaf connected to every spine in both
    directions; spines are numbered first. *)

(** {1 snvs port plans} *)

type port_plan = {
  pp_name : string;
  pp_port : int;
  pp_mode : string;  (** "access" or "trunk" *)
  pp_tag : int;
  pp_trunks : int list;
}

val ports : ?vlans:int -> ?trunk_every:int -> n:int -> unit -> port_plan list
(** [n] ports spread over [vlans] VLANs; every [trunk_every]-th port is
    a trunk carrying all of them (0 disables trunks). *)

(** {1 Configuration-change streams (§2.1)} *)

type change =
  | AddPort of port_plan
  | DelPort of string
  | AddAcl of { prio : int; src : int64; dst : int64; allow : bool }
  | DelAcl of int
  | SetMirror of { select_port : int; output_port : int }

val change_stream : base:int -> n:int -> seed:int -> change list
(** [n] small valid changes against a network of [base] ports;
    deletions always target previously added entities. *)

(** {1 Load balancers} *)

type lb_plan = { lb_name : string; lb_vip : int64; lb_backends : int64 list }

val lbs : n:int -> backends:int -> seed:int -> lb_plan list

(** {1 Hosts} *)

val mac_hosts : n:int -> int64 list
