(** The graph-labelling baselines from §1 of the paper: the
    tens-of-lines full recompute and a hand-written incremental
    implementation (semi-naive insertions, DRed deletions) — the kind
    of code the paper reports took thousands of lines and several
    releases to debug in production. *)

val full_recompute :
  edges:(int * int) list -> given:(int * string) list -> (int * string) list
(** Labels reachable along edges from the seed facts, recomputed from
    scratch by worklist propagation. *)

module Incr : sig
  type t

  val create : unit -> t
  val labels : t -> (int * string) list
  val has_label : t -> int -> string -> bool
  val add_given : t -> int -> string -> unit
  val add_edge : t -> int -> int -> unit
  val remove_edge : t -> int -> int -> unit
  val remove_given : t -> int -> string -> unit
end
