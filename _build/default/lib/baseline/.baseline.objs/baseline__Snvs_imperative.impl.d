lib/baseline/snvs_imperative.ml: Hashtbl Int64 List P4 Printf
