lib/baseline/label_baseline.ml: Hashtbl Int List Option Queue String
