lib/baseline/frag_controller.ml: Int Int64 List Ofp4 Printf
