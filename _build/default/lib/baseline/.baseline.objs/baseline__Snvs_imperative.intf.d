lib/baseline/snvs_imperative.mli: P4
