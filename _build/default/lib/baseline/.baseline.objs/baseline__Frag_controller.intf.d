lib/baseline/frag_controller.mli: Ofp4
