lib/baseline/label_baseline.mli:
