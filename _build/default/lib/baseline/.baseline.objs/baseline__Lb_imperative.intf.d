lib/baseline/lb_imperative.mli:
