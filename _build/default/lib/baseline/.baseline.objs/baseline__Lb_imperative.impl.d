lib/baseline/lb_imperative.ml: Hashtbl List Option
