(* The C-style load-balancer controller of §2.2: direct hash tables,
   no change tracking, no indexes — the implementation that *wins* the
   cold-start-then-delete benchmark against the automatically
   incremental engine (the paper reports DDlog at 2x CPU / 5x RAM on
   this worst case). *)

type backend = int64 (* backend address *)

type t = {
  (* vip -> buckets: exactly the data plane needs, nothing else *)
  entries : (int64, (int * backend) list) Hashtbl.t;
  mutable entry_count : int;
}

let create () : t = { entries = Hashtbl.create 64; entry_count = 0 }

let bucket_of (b : backend) : int = Hashtbl.hash b land 0xffff

(** Install a load balancer: one bucket entry per backend. *)
let add_lb (t : t) ~(vip : int64) ~(backends : backend list) : unit =
  let buckets = List.map (fun b -> (bucket_of b, b)) backends in
  (match Hashtbl.find_opt t.entries vip with
  | Some old -> t.entry_count <- t.entry_count - List.length old
  | None -> ());
  Hashtbl.replace t.entries vip buckets;
  t.entry_count <- t.entry_count + List.length buckets

(** Remove a load balancer and all its entries. *)
let remove_lb (t : t) ~(vip : int64) : unit =
  match Hashtbl.find_opt t.entries vip with
  | Some old ->
    t.entry_count <- t.entry_count - List.length old;
    Hashtbl.remove t.entries vip
  | None -> ()

let entry_count (t : t) = t.entry_count

let lookup (t : t) ~(vip : int64) : (int * backend) list =
  Option.value ~default:[] (Hashtbl.find_opt t.entries vip)

(** Rough stored-tuple footprint, comparable to [Dl.Engine.footprint]. *)
let footprint (t : t) = t.entry_count + Hashtbl.length t.entries
