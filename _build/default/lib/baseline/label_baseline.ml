(* The graph-labelling baselines from §1 of the paper.

   [full_recompute] is the "tens of lines of Java" version: a plain
   worklist propagation that recomputes every label from scratch.

   [Incr] is the hand-written incremental version — the one the paper
   reports took thousands of lines and several releases to debug in
   production.  Insertions propagate semi-naively; deletions use
   over-delete / re-derive (DRed).  Even this cut-down version is
   several times the code of the three DL rules it replaces, and its
   first draft here had exactly the class of support-counting bug the
   paper warns about — which is the point. *)

module Pair = struct
  type t = int * string

  let equal (a1, b1) (a2, b2) = Int.equal a1 a2 && String.equal b1 b2
  let hash (a, b) = (a * 31) + Hashtbl.hash b
end

module PairTbl = Hashtbl.Make (Pair)

(* ------------------------------------------------------------------ *)
(* Full recompute                                                      *)
(* ------------------------------------------------------------------ *)

(** Labels reachable along edges from the given seed facts: the
    straightforward worklist version. *)
let full_recompute ~(edges : (int * int) list)
    ~(given : (int * string) list) : (int * string) list =
  let succs = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace succs a
        (b :: Option.value ~default:[] (Hashtbl.find_opt succs a)))
    edges;
  let labels = PairTbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun fact ->
      if not (PairTbl.mem labels fact) then begin
        PairTbl.replace labels fact ();
        Queue.add fact queue
      end)
    given;
  while not (Queue.is_empty queue) do
    let n, l = Queue.pop queue in
    List.iter
      (fun m ->
        if not (PairTbl.mem labels (m, l)) then begin
          PairTbl.replace labels (m, l) ();
          Queue.add (m, l) queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt succs n))
  done;
  PairTbl.fold (fun fact () acc -> fact :: acc) labels []

(* ------------------------------------------------------------------ *)
(* Hand-written incremental maintenance (semi-naive + DRed)            *)
(* ------------------------------------------------------------------ *)

module Incr = struct
  type t = {
    succs : (int, int list) Hashtbl.t;
    preds : (int, int list) Hashtbl.t;
    given : unit PairTbl.t;
    labels : unit PairTbl.t;
    (* instrumentation: facts touched by the last update *)
    mutable touched : int;
  }

  let create () =
    {
      succs = Hashtbl.create 64;
      preds = Hashtbl.create 64;
      given = PairTbl.create 64;
      labels = PairTbl.create 64;
      touched = 0;
    }

  let labels t = PairTbl.fold (fun fact () acc -> fact :: acc) t.labels []
  let has_label t n l = PairTbl.mem t.labels (n, l)
  let adj tbl k = Option.value ~default:[] (Hashtbl.find_opt tbl k)

  (* Semi-naive insertion: propagate a new fact to successors. *)
  let rec propagate_add t ((n, l) as fact) =
    if not (PairTbl.mem t.labels fact) then begin
      PairTbl.replace t.labels fact ();
      t.touched <- t.touched + 1;
      List.iter (fun m -> propagate_add t (m, l)) (adj t.succs n)
    end

  let add_given t n l =
    if not (PairTbl.mem t.given (n, l)) then begin
      PairTbl.replace t.given (n, l) ();
      propagate_add t (n, l)
    end

  let add_edge t a b =
    if not (List.mem b (adj t.succs a)) then begin
      Hashtbl.replace t.succs a (b :: adj t.succs a);
      Hashtbl.replace t.preds b (a :: adj t.preds b);
      PairTbl.iter
        (fun (n, l) () -> if n = a then propagate_add t (b, l))
        (PairTbl.copy t.labels)
    end

  (* DRed deletion: over-delete the entire affected cone, then
     re-derive survivors from live support. *)
  let overdelete_and_rederive t (seeds : (int * string) list) =
    let dead = PairTbl.create 16 in
    let queue = Queue.create () in
    let kill fact =
      if PairTbl.mem t.labels fact && not (PairTbl.mem dead fact) then begin
        PairTbl.replace dead fact ();
        Queue.add fact queue
      end
    in
    List.iter kill seeds;
    while not (Queue.is_empty queue) do
      let n, l = Queue.pop queue in
      List.iter (fun m -> kill (m, l)) (adj t.succs n)
    done;
    PairTbl.iter
      (fun fact () ->
        PairTbl.remove t.labels fact;
        t.touched <- t.touched + 1)
      dead;
    (* re-derivation to a fixpoint: a dead fact comes back if it is
       given or some live predecessor carries the label; propagation
       then revives its own downstream cone. *)
    let changed = ref true in
    while !changed do
      changed := false;
      PairTbl.iter
        (fun ((n, l) as fact) () ->
          if not (PairTbl.mem t.labels fact) then
            let supported =
              PairTbl.mem t.given fact
              || List.exists (fun p -> PairTbl.mem t.labels (p, l)) (adj t.preds n)
            in
            if supported then begin
              propagate_add t fact;
              changed := true
            end)
        dead
    done

  let remove_edge t a b =
    if List.mem b (adj t.succs a) then begin
      Hashtbl.replace t.succs a (List.filter (fun x -> x <> b) (adj t.succs a));
      Hashtbl.replace t.preds b (List.filter (fun x -> x <> a) (adj t.preds b));
      let seeds = ref [] in
      PairTbl.iter
        (fun (n, l) () ->
          if n = a && PairTbl.mem t.labels (b, l) then seeds := (b, l) :: !seeds)
        t.labels;
      if !seeds <> [] then overdelete_and_rederive t !seeds
    end

  let remove_given t n l =
    if PairTbl.mem t.given (n, l) then begin
      PairTbl.remove t.given (n, l);
      overdelete_and_rederive t [ (n, l) ]
    end
end
