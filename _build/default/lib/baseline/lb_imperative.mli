(** The C-style load-balancer controller of §2.2: bare hash tables, no
    change tracking, no indexes — the implementation that wins the
    cold-start-then-delete benchmark against the automatically
    incremental engine. *)

type backend = int64

type t

val create : unit -> t
val bucket_of : backend -> int

val add_lb : t -> vip:int64 -> backends:backend list -> unit
(** Install (or replace) a load balancer: one bucket entry per backend. *)

val remove_lb : t -> vip:int64 -> unit
val entry_count : t -> int
val lookup : t -> vip:int64 -> (int * backend) list

val footprint : t -> int
(** Stored-tuple count comparable to [Dl.Engine.footprint]. *)
