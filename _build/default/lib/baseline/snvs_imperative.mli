(** The traditional-SDN baseline for snvs: a hand-written,
    non-incremental controller.  On every configuration change it
    recomputes the entire desired data-plane state from the full
    management snapshot and reconciles the switch against it — correct
    and simple, but O(network) per change instead of O(change). *)

type port_cfg = {
  port : int;
  mode : [ `Access | `Trunk ];
  tag : int;
  trunks : int list;
}

type mirror_cfg = { select_port : int; output_port : int }

type acl_cfg = {
  prio : int;
  src : int64;
  src_mask : int64;
  dst : int64;
  dst_mask : int64;
  allow : bool;
}

type learned = { l_port : int; l_vlan : int; l_mac : int64 }

type config = {
  ports : port_cfg list;
  mirrors : mirror_cfg list;
  acls : acl_cfg list;
  no_flood_vlans : int list;
  macs : learned list;
}

val empty_config : config

type desired
(** The complete computed data-plane state (all table entry sets plus
    multicast groups). *)

val compute : config -> desired
(** Recompute everything from scratch; mirrors exactly what the DL
    rules compute (the equivalence is tested). *)

type installed

val fresh_installed : unit -> installed

val reconcile : installed -> P4.Switch.t -> config -> int
(** Recompute and push the diff against the last reconciled state;
    returns the number of switch updates applied.  Cost is dominated by
    [compute] plus a full diff — both proportional to the network. *)
