(* The traditional-SDN baseline for snvs: a hand-written,
   NON-incremental controller in the style the paper argues against
   (§1, §2.2).  On every configuration change it recomputes the entire
   desired data-plane state from the full management snapshot and
   reconciles the switch against it — correct, simple, and O(network)
   per change instead of O(change). *)

type port_cfg = {
  port : int;
  mode : [ `Access | `Trunk ];
  tag : int;
  trunks : int list;
}

type mirror_cfg = { select_port : int; output_port : int }

type acl_cfg = {
  prio : int;
  src : int64;
  src_mask : int64;
  dst : int64;
  dst_mask : int64;
  allow : bool;
}

type learned = { l_port : int; l_vlan : int; l_mac : int64 }

type config = {
  ports : port_cfg list;
  mirrors : mirror_cfg list;
  acls : acl_cfg list;
  no_flood_vlans : int list;
  macs : learned list;
}

let empty_config =
  { ports = []; mirrors = []; acls = []; no_flood_vlans = []; macs = [] }

(* The desired state: every table's full entry set plus multicast
   groups.  This mirrors exactly what the DL rules compute, written the
   traditional way. *)
type desired = {
  in_vlan : (string * P4.Entry.t) list;
  out_vlan : (string * P4.Entry.t) list;
  mirror : (string * P4.Entry.t) list;
  acl : (string * P4.Entry.t) list;
  smac : (string * P4.Entry.t) list;
  dmac : (string * P4.Entry.t) list;
  groups : (int64 * int64 list) list;
}

let exact v = P4.Entry.MExact v

let entry matches action args : P4.Entry.t =
  { P4.Entry.matches; priority = 0; action; args }

(** Recompute the complete desired data-plane state from scratch. *)
let compute (cfg : config) : desired =
  let in_vlan = ref [] and out_vlan = ref [] and groups = ref [] in
  let add_member vlan port =
    if not (List.mem vlan cfg.no_flood_vlans) then begin
      let v = Int64.of_int vlan in
      let existing = try List.assoc v !groups with Not_found -> [] in
      groups := (v, Int64.of_int port :: existing) :: List.remove_assoc v !groups
    end
  in
  List.iter
    (fun p ->
      match p.mode with
      | `Access ->
        in_vlan :=
          ( Printf.sprintf "in_vlan/access/%d" p.port,
            entry [ exact (Int64.of_int p.port); exact 0L ] "set_vlan"
              [ Int64.of_int p.tag ] )
          :: !in_vlan;
        add_member p.tag p.port
      | `Trunk ->
        List.iter
          (fun v ->
            in_vlan :=
              ( Printf.sprintf "in_vlan/trunk/%d/%d" p.port v,
                entry [ exact (Int64.of_int p.port); exact (Int64.of_int v) ]
                  "keep_tag" [] )
              :: !in_vlan;
            out_vlan :=
              ( Printf.sprintf "out_vlan/%d/%d" p.port v,
                entry [ exact (Int64.of_int p.port); exact (Int64.of_int v) ]
                  "output_tagged" [] )
              :: !out_vlan;
            add_member v p.port)
          p.trunks)
    cfg.ports;
  let mirror =
    List.map
      (fun m ->
        ( Printf.sprintf "mirror/%d" m.select_port,
          entry [ exact (Int64.of_int m.select_port) ] "clone_to"
            [ Int64.of_int m.output_port ] ))
      cfg.mirrors
  in
  let acl =
    let m48 v = Int64.logand v 0xFFFFFFFFFFFFL in
    List.map
      (fun a ->
        ( Printf.sprintf "acl/%d" a.prio,
          {
            P4.Entry.matches =
              [ P4.Entry.MTernary (m48 a.src, m48 a.src_mask);
                P4.Entry.MTernary (m48 a.dst, m48 a.dst_mask) ];
            priority = a.prio;
            action = (if a.allow then "allow" else "deny");
            args = [];
          } ))
      cfg.acls
  in
  (* latest learning wins per (vlan, mac) — same semantics as the DL
     controller's digest replacement *)
  let latest = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace latest (l.l_vlan, l.l_mac) l.l_port) cfg.macs;
  let smac = ref [] and dmac = ref [] in
  Hashtbl.iter
    (fun (vlan, mac) port ->
      smac :=
        ( Printf.sprintf "smac/%d/%Ld/%d" vlan mac port,
          entry
            [ exact (Int64.of_int vlan); exact mac; exact (Int64.of_int port) ]
            "noop" [] )
        :: !smac;
      dmac :=
        ( Printf.sprintf "dmac/%d/%Ld" vlan mac,
          entry [ exact (Int64.of_int vlan); exact mac ] "forward"
            [ Int64.of_int port ] )
        :: !dmac)
    latest;
  {
    in_vlan = !in_vlan;
    out_vlan = !out_vlan;
    mirror;
    acl;
    smac = !smac;
    dmac = !dmac;
    groups = List.map (fun (g, ps) -> (g, List.sort Int64.compare ps)) !groups;
  }

(* Reconciliation: diff the freshly computed desired state against what
   was installed last time and apply the difference to the switch. *)
type installed = { mutable last : desired }

let fresh_installed () =
  {
    last =
      { in_vlan = []; out_vlan = []; mirror = []; acl = []; smac = [];
        dmac = []; groups = [] };
  }

let diff_table (sw : P4.Switch.t) table old_entries new_entries =
  let changed = ref 0 in
  let old_tbl = Hashtbl.create (List.length old_entries) in
  List.iter (fun (k, e) -> Hashtbl.replace old_tbl k e) old_entries;
  let new_tbl = Hashtbl.create (List.length new_entries) in
  List.iter (fun (k, e) -> Hashtbl.replace new_tbl k e) new_entries;
  List.iter
    (fun (k, e) ->
      if not (Hashtbl.mem new_tbl k) then begin
        P4.Switch.delete_entry sw table e;
        incr changed
      end)
    old_entries;
  List.iter
    (fun (k, e) ->
      match Hashtbl.find_opt old_tbl k with
      | Some e' when e' = e -> ()
      | _ ->
        P4.Switch.insert_entry sw table e;
        incr changed)
    new_entries;
  !changed

(** Recompute everything and push the diff; returns the number of
    switch updates applied.  The cost is dominated by [compute] plus the
    full diff — both proportional to the network, not the change. *)
let reconcile (inst : installed) (sw : P4.Switch.t) (cfg : config) : int =
  let d = compute cfg in
  let n =
    diff_table sw "in_vlan" inst.last.in_vlan d.in_vlan
    + diff_table sw "out_vlan" inst.last.out_vlan d.out_vlan
    + diff_table sw "mirror" inst.last.mirror d.mirror
    + diff_table sw "acl" inst.last.acl d.acl
    + diff_table sw "smac" inst.last.smac d.smac
    + diff_table sw "dmac" inst.last.dmac d.dmac
  in
  let g = ref 0 in
  List.iter
    (fun (grp, ports) ->
      if List.assoc_opt grp inst.last.groups <> Some ports then begin
        P4.Switch.set_mcast_group sw grp ports;
        incr g
      end)
    d.groups;
  List.iter
    (fun (grp, _) ->
      if not (List.mem_assoc grp d.groups) then begin
        P4.Switch.set_mcast_group sw grp [];
        incr g
      end)
    inst.last.groups;
  inst.last <- d;
  n + !g
