(** The Fig. 3 model: a traditional OpenFlow controller whose features
    each scatter flow fragments across the pipeline tables, versus the
    Nerpa encoding of the same features as declarative rules.  The
    per-feature costs are calibrated against this repository's own snvs
    implementations (see the implementation header). *)

type feature = {
  fname : string;
  fragments_per_table : (int * int) list;
      (** (pipeline table id, flow templates scattered there) *)
  imperative_loc : int;
  nerpa_rules : int;
}

val catalogue : feature list
(** Twelve features, loosely the order OVN gained them. *)

type snapshot = {
  features : int;
  controller_loc : int;
  fragment_sites : int;
  tables_touched : int;
  nerpa_rules : int;
}

val snapshot : int -> snapshot
(** The codebase state after enabling the first [k] features, including
    the fixed framework cost. *)

val materialise : int -> Ofp4.Openflow.t
(** The fragments of the first [k] features as a real flow program
    (one representative flow per template), so scattering is measured
    on an actual flow table rather than by arithmetic. *)
