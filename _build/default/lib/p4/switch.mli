(** The behavioural model: a software switch that executes a mini-P4
    program, in the role BMv2 plays in the paper's prototype.

    Packet life cycle (v1model-like): parse → ingress control →
    replication (unicast / multicast / clones) → egress control per
    copy → deparse.  The switch also holds the control-plane-visible
    state: table entries, multicast groups, counters, and the queue of
    emitted digests. *)

exception Switch_error of string

type t = {
  program : Program.t;
  name : string;
  ports : int list;
  tables : (string, table_state) Hashtbl.t;
  mutable mcast_groups : (int64 * int64 list) list;
  counters : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  registers : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  mutable digest_queue : digest_msg list;
  mutable packets_in : int;
  mutable packets_out : int;
}

and table_state

and digest_msg = { digest_name : string; values : (string * int64) list }

val create : ?name:string -> ?ports:int list -> Program.t -> t
(** Instantiate a switch running [program].
    @raise Switch_error if the program does not type-check. *)

(** {1 Control-plane operations} *)

val insert_entry : t -> string -> Entry.t -> unit
(** Install an entry; replaces an existing entry with the same match
    part.  Validates match kinds, the action and its arity against the
    program, and the table's declared capacity.
    @raise Switch_error on any violation. *)

val delete_entry : t -> string -> Entry.t -> unit
(** Remove the entry with the same match part, if present. *)

val find_same_match : t -> string -> Entry.t -> Entry.t option
(** The installed entry with the same match part, if any (O(1)). *)

val table_entries : t -> string -> Entry.t list
val entry_count : t -> string -> int

val set_mcast_group : t -> int64 -> int64 list -> unit
(** Define the replica port list of a multicast group; an empty list
    removes the group. *)

val mcast_group : t -> int64 -> int64 list option

val take_digests : t -> digest_msg list
(** Drain queued digests, oldest first. *)

val counter_value : t -> string -> int64 -> int64
(** Current value of a counter cell.
    @raise Switch_error on unknown counters. *)

val register_value : t -> string -> int64 -> int64
(** Current value of a register cell (0 if never written). *)

val register_write : t -> string -> int64 -> int64 -> unit
(** Control-plane write to a register cell. *)

(** {1 The data path} *)

val process : t -> in_port:int -> Packet.t -> (int * Packet.t) list
(** Inject a packet; returns the (port, packet) copies the switch
    emits.  A parser reject or a [Drop] verdict yields no output; a
    [Drop] is sticky and suppresses clones too.  Digests emitted during
    processing are queued on the switch. *)

(** {1 Introspection} *)

type table_stats = { entries : int; hits : int; misses : int }

val stats : t -> string -> table_stats
