(* P4Info: the reflection data the control plane uses to address data
   plane objects numerically, mirroring the p4info.proto file that p4c
   emits.  IDs are derived deterministically from object names so that
   independently-created switches running the same program agree. *)

type table_info = {
  table_id : int;
  table_name : string;
  key_names : string list;
  key_widths : int list;
  key_kinds : Program.match_kind list;
  action_names : string list;
}

type action_info = {
  action_id : int;
  action_name : string;
  param_names : string list;
  param_widths : int list;
}

type digest_info = {
  digest_id : int;
  digest_name : string;
  field_names : string list;
  field_widths : int list;
}

type t = {
  program_name : string;
  tables : table_info list;
  actions : action_info list;
  digests : digest_info list;
}

(* Stable id: hash of kind and name, folded into 24 bits with an 8-bit
   kind prefix, the same scheme p4c uses. *)
let make_id ~kind name =
  let prefix =
    match kind with `Table -> 0x02 | `Action -> 0x01 | `Digest -> 0x17
  in
  (prefix lsl 24) lor (Hashtbl.hash (kind, name) land 0xffffff)

let width_exn p r =
  match Program.ref_width p r with
  | Ok w -> w
  | Error e -> invalid_arg e

(** Derive the P4Info of a program. *)
let of_program (p : Program.t) : t =
  {
    program_name = p.name;
    tables =
      List.map
        (fun (tbl : Program.table) ->
          {
            table_id = make_id ~kind:`Table tbl.tname;
            table_name = tbl.tname;
            key_names = List.map (fun (k : Program.key) -> Program.ref_to_string k.kref) tbl.keys;
            key_widths = List.map (fun (k : Program.key) -> width_exn p k.kref) tbl.keys;
            key_kinds = List.map (fun (k : Program.key) -> k.kind) tbl.keys;
            action_names = tbl.actions;
          })
        p.tables;
    actions =
      List.map
        (fun (a : Program.action) ->
          {
            action_id = make_id ~kind:`Action a.aname;
            action_name = a.aname;
            param_names = List.map fst a.params;
            param_widths = List.map snd a.params;
          })
        p.actions;
    digests =
      List.map
        (fun (d : Program.digest) ->
          {
            digest_id = make_id ~kind:`Digest d.dname;
            digest_name = d.dname;
            field_names = List.map fst d.dfields;
            field_widths = List.map (fun (_, r) -> width_exn p r) d.dfields;
          })
        p.digests;
  }

let find_table (info : t) name =
  List.find_opt (fun t -> String.equal t.table_name name) info.tables

let find_table_by_id (info : t) id =
  List.find_opt (fun t -> t.table_id = id) info.tables

let find_action (info : t) name =
  List.find_opt (fun a -> String.equal a.action_name name) info.actions

let find_action_by_id (info : t) id =
  List.find_opt (fun a -> a.action_id = id) info.actions

let find_digest (info : t) name =
  List.find_opt (fun d -> String.equal d.digest_name name) info.digests

let find_digest_by_id (info : t) id =
  List.find_opt (fun d -> d.digest_id = id) info.digests
