(* Standard protocol headers and packet constructors used by the
   example programs and the test suites.  Field layouts follow the wire
   formats exactly, so packets built here are real Ethernet frames. *)

let ethernet : Program.header =
  {
    hname = "ethernet";
    fields =
      [ { fname = "dst"; fwidth = 48 };
        { fname = "src"; fwidth = 48 };
        { fname = "ethertype"; fwidth = 16 } ];
  }

(* 802.1Q tag. *)
let vlan : Program.header =
  {
    hname = "vlan";
    fields =
      [ { fname = "pcp"; fwidth = 3 };
        { fname = "dei"; fwidth = 1 };
        { fname = "vid"; fwidth = 12 };
        { fname = "ethertype"; fwidth = 16 } ];
  }

let ipv4 : Program.header =
  {
    hname = "ipv4";
    fields =
      [ { fname = "version"; fwidth = 4 };
        { fname = "ihl"; fwidth = 4 };
        { fname = "dscp"; fwidth = 6 };
        { fname = "ecn"; fwidth = 2 };
        { fname = "total_len"; fwidth = 16 };
        { fname = "identification"; fwidth = 16 };
        { fname = "flags"; fwidth = 3 };
        { fname = "frag_offset"; fwidth = 13 };
        { fname = "ttl"; fwidth = 8 };
        { fname = "protocol"; fwidth = 8 };
        { fname = "checksum"; fwidth = 16 };
        { fname = "src"; fwidth = 32 };
        { fname = "dst"; fwidth = 32 } ];
  }

let arp : Program.header =
  {
    hname = "arp";
    fields =
      [ { fname = "htype"; fwidth = 16 };
        { fname = "ptype"; fwidth = 16 };
        { fname = "hlen"; fwidth = 8 };
        { fname = "plen"; fwidth = 8 };
        { fname = "oper"; fwidth = 16 };
        { fname = "sha"; fwidth = 48 };
        { fname = "spa"; fwidth = 32 };
        { fname = "tha"; fwidth = 48 };
        { fname = "tpa"; fwidth = 32 } ];
  }

let udp : Program.header =
  {
    hname = "udp";
    fields =
      [ { fname = "src_port"; fwidth = 16 };
        { fname = "dst_port"; fwidth = 16 };
        { fname = "len"; fwidth = 16 };
        { fname = "checksum"; fwidth = 16 } ];
  }

let ethertype_vlan = 0x8100L
let ethertype_ipv4 = 0x0800L
let ethertype_arp = 0x0806L

(* ---------------- MAC / IP convenience ---------------- *)

(** Parse "aa:bb:cc:dd:ee:ff" into a 48-bit value. *)
let mac_of_string (s : string) : int64 =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then invalid_arg ("bad mac " ^ s);
  List.fold_left
    (fun acc p ->
      match int_of_string_opt ("0x" ^ p) with
      | Some b when b >= 0 && b < 256 ->
        Int64.logor (Int64.shift_left acc 8) (Int64.of_int b)
      | _ -> invalid_arg ("bad mac " ^ s))
    0L parts

let mac_to_string (m : int64) : string =
  String.concat ":"
    (List.init 6 (fun i ->
         Printf.sprintf "%02Lx"
           (Int64.logand (Int64.shift_right_logical m (8 * (5 - i))) 0xffL)))

(** Parse dotted-quad IPv4 into a 32-bit value. *)
let ipv4_of_string (s : string) : int64 =
  let parts = String.split_on_char '.' s in
  if List.length parts <> 4 then invalid_arg ("bad ipv4 " ^ s);
  List.fold_left
    (fun acc p ->
      match int_of_string_opt p with
      | Some b when b >= 0 && b < 256 ->
        Int64.logor (Int64.shift_left acc 8) (Int64.of_int b)
      | _ -> invalid_arg ("bad ipv4 " ^ s))
    0L parts

let ipv4_to_string (ip : int64) : string =
  String.concat "."
    (List.init 4 (fun i ->
         Int64.to_string
           (Int64.logand (Int64.shift_right_logical ip (8 * (3 - i))) 0xffL)))

(* ---------------- packet constructors ---------------- *)

(** A plain Ethernet frame with the given payload. *)
let ethernet_frame ~dst ~src ~ethertype ~payload : Packet.t =
  let hdr = Packet.create 14 in
  Packet.set_bits hdr ~bit_offset:0 ~width:48 dst;
  Packet.set_bits hdr ~bit_offset:48 ~width:48 src;
  Packet.set_bits hdr ~bit_offset:96 ~width:16 ethertype;
  Packet.concat hdr (Packet.of_string payload)

(** An 802.1Q-tagged frame. *)
let vlan_frame ~dst ~src ~vid ~ethertype ~payload : Packet.t =
  let hdr = Packet.create 18 in
  Packet.set_bits hdr ~bit_offset:0 ~width:48 dst;
  Packet.set_bits hdr ~bit_offset:48 ~width:48 src;
  Packet.set_bits hdr ~bit_offset:96 ~width:16 ethertype_vlan;
  (* pcp 0, dei 0 *)
  Packet.set_bits hdr ~bit_offset:116 ~width:12 vid;
  Packet.set_bits hdr ~bit_offset:128 ~width:16 ethertype;
  Packet.concat hdr (Packet.of_string payload)

(** An IPv4/UDP datagram inside an Ethernet frame, with correct header
    checksum. *)
let udp_packet ~eth_dst ~eth_src ~ip_src ~ip_dst ~src_port ~dst_port ~payload :
    Packet.t =
  let udp_len = 8 + String.length payload in
  let total_len = 20 + udp_len in
  let ip = Packet.create 20 in
  Packet.set_bits ip ~bit_offset:0 ~width:4 4L;   (* version *)
  Packet.set_bits ip ~bit_offset:4 ~width:4 5L;   (* ihl *)
  Packet.set_bits ip ~bit_offset:16 ~width:16 (Int64.of_int total_len);
  Packet.set_bits ip ~bit_offset:64 ~width:8 64L; (* ttl *)
  Packet.set_bits ip ~bit_offset:72 ~width:8 17L; (* protocol = UDP *)
  Packet.set_bits ip ~bit_offset:96 ~width:32 ip_src;
  Packet.set_bits ip ~bit_offset:128 ~width:32 ip_dst;
  let csum = Packet.internet_checksum ip in
  Packet.set_bits ip ~bit_offset:80 ~width:16 (Int64.of_int csum);
  let udp = Packet.create 8 in
  Packet.set_bits udp ~bit_offset:0 ~width:16 src_port;
  Packet.set_bits udp ~bit_offset:16 ~width:16 dst_port;
  Packet.set_bits udp ~bit_offset:32 ~width:16 (Int64.of_int udp_len);
  ethernet_frame ~dst:eth_dst ~src:eth_src ~ethertype:ethertype_ipv4
    ~payload:
      (Packet.to_string (Packet.concat ip (Packet.concat udp (Packet.of_string payload))))
