lib/p4/entry.mli: Format
