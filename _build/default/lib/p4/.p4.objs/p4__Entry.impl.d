lib/p4/entry.ml: Format Int64 List Printf String
