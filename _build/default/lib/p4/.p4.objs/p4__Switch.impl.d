lib/p4/switch.ml: Bytes Entry Format Hashtbl Int64 List Option Packet Program String
