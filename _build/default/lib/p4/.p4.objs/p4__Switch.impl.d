lib/p4/switch.ml: Bytes Entry Format Hashtbl Int64 List Obs Option Packet Printf Program String
