lib/p4/packet.ml: Bytes Char Format Int64 Printf String
