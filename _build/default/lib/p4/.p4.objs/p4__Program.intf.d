lib/p4/program.mli:
