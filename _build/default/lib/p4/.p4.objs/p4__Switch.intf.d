lib/p4/switch.mli: Entry Hashtbl Packet Program
