lib/p4/p4info.mli: Program
