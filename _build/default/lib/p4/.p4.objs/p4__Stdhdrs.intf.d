lib/p4/stdhdrs.mli: Packet Program
