lib/p4/p4info.ml: Hashtbl List Program String
