lib/p4/stdhdrs.ml: Int64 List Packet Printf Program String
