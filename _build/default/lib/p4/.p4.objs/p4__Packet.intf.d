lib/p4/packet.mli: Bytes Format
