lib/p4/program.ml: Hashtbl List Printf Result String
