(** Raw packets: byte buffers with big-endian bit-field accessors.

    The behavioural model parses real bytes into header instances and
    re-serialises them on the way out, so tests can exercise exact wire
    formats (Ethernet, 802.1Q, IPv4, ...). *)

type t

exception Out_of_bounds of string

val of_bytes : Bytes.t -> t
val to_bytes : t -> Bytes.t
val of_string : string -> t
val to_string : t -> string
val length : t -> int
val equal : t -> t -> bool

val create : int -> t
(** A zero-filled packet of [n] bytes. *)

val get_bits : t -> bit_offset:int -> width:int -> int64
(** Read [width] (≤ 64) bits starting at absolute [bit_offset] — bit 0
    is the most significant bit of byte 0 — right-aligned.
    @raise Out_of_bounds when the range leaves the buffer. *)

val set_bits : t -> bit_offset:int -> width:int -> int64 -> unit
(** Write [width] bits of a right-aligned value at [bit_offset]. *)

val drop_bytes : t -> int -> t
(** The bytes from a byte offset to the end (the payload after parsed
    headers). *)

val concat : t -> t -> t

val internet_checksum : t -> int
(** RFC 1071 checksum over the whole buffer. *)

val pp : Format.formatter -> t -> unit
val to_hex : t -> string
val of_hex : string -> t
(** Inverse of [to_hex]; spaces are ignored.
    @raise Invalid_argument on malformed input. *)
