(** P4Info: the reflection data the control plane uses to address
    data-plane objects numerically, mirroring the p4info.proto that p4c
    emits.  IDs derive deterministically from object names, so
    independently created switches running the same program agree. *)

type table_info = {
  table_id : int;
  table_name : string;
  key_names : string list;
  key_widths : int list;
  key_kinds : Program.match_kind list;
  action_names : string list;
}

type action_info = {
  action_id : int;
  action_name : string;
  param_names : string list;
  param_widths : int list;
}

type digest_info = {
  digest_id : int;
  digest_name : string;
  field_names : string list;
  field_widths : int list;
}

type t = {
  program_name : string;
  tables : table_info list;
  actions : action_info list;
  digests : digest_info list;
}

val of_program : Program.t -> t

val find_table : t -> string -> table_info option
val find_table_by_id : t -> int -> table_info option
val find_action : t -> string -> action_info option
val find_action_by_id : t -> int -> action_info option
val find_digest : t -> string -> digest_info option
val find_digest_by_id : t -> int -> digest_info option
