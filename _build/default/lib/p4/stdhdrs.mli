(** Standard protocol headers and packet constructors.  Field layouts
    follow the wire formats exactly, so packets built here are real
    Ethernet frames. *)

val ethernet : Program.header

val vlan : Program.header
(** The 802.1Q tag. *)

val ipv4 : Program.header
val arp : Program.header
val udp : Program.header

val ethertype_vlan : int64
val ethertype_ipv4 : int64
val ethertype_arp : int64

(** {1 Address helpers} *)

val mac_of_string : string -> int64
(** ["aa:bb:cc:dd:ee:ff"] → 48-bit value.
    @raise Invalid_argument on malformed input. *)

val mac_to_string : int64 -> string

val ipv4_of_string : string -> int64
(** Dotted quad → 32-bit value. *)

val ipv4_to_string : int64 -> string

(** {1 Packet constructors} *)

val ethernet_frame :
  dst:int64 -> src:int64 -> ethertype:int64 -> payload:string -> Packet.t

val vlan_frame :
  dst:int64 -> src:int64 -> vid:int64 -> ethertype:int64 -> payload:string ->
  Packet.t
(** An 802.1Q-tagged frame ([ethertype] is the inner protocol). *)

val udp_packet :
  eth_dst:int64 ->
  eth_src:int64 ->
  ip_src:int64 ->
  ip_dst:int64 ->
  src_port:int64 ->
  dst_port:int64 ->
  payload:string ->
  Packet.t
(** An IPv4/UDP datagram with a correct IP header checksum. *)
