(* The behavioural model: a software switch that executes a mini-P4
   program, in the role BMv2 plays in the paper's prototype.

   Packet life cycle (v1model-like):
     parse -> ingress control -> replication (unicast / multicast /
     clones) -> egress control per copy -> deparse.

   The switch also maintains the control-plane-visible state: table
   entries, multicast groups, counters, and the queue of emitted
   digests. *)

exception Switch_error of string

let error fmt = Format.kasprintf (fun s -> raise (Switch_error s)) fmt

(* Observability (metric names are a public contract, see README).
   Per-table hit/miss counters are registered as p4.table.<name>.hits
   and .misses when the switch is created, so they aggregate across
   switches running the same program. *)
let m_packets_in = Obs.Counter.create "p4.packets_in"
let m_packets_out = Obs.Counter.create "p4.packets_out"
let m_digests = Obs.Counter.create "p4.digests"

(* ---------------- per-packet execution state ---------------- *)

type pkt_state = {
  mutable fields : (string * string, int64) Hashtbl.t; (* header.field values *)
  mutable valid : (string, unit) Hashtbl.t;            (* valid headers *)
  mutable meta : (string, int64) Hashtbl.t;
  mutable payload : Packet.t;                          (* unparsed remainder *)
  mutable dropped : bool;
  mutable clones : int64 list;                         (* mirror ports *)
}

type digest_msg = { digest_name : string; values : (string * int64) list }

(* ---------------- table state ---------------- *)

(* Entries are stored keyed by their match part (matches + priority), so
   that insert / modify / delete and duplicate checks are O(1) even for
   tables with tens of thousands of entries. *)
type table_state = {
  table : Program.table;
  key_widths : int list;
  entries : (Entry.match_value list * int, Entry.t) Hashtbl.t;
  (* exact-only tables additionally get a hash index from looked-up key
     values to the entry, for O(1) data-path lookups *)
  exact_index : (int64 list, Entry.t) Hashtbl.t option;
  mutable hits : int;
  mutable misses : int;
  obs_hits : Obs.Counter.t;
  obs_misses : Obs.Counter.t;
}

type t = {
  program : Program.t;
  name : string;                       (* switch instance name *)
  ports : int list;                    (* physical ports *)
  tables : (string, table_state) Hashtbl.t;
  mutable mcast_groups : (int64 * int64 list) list;  (* group -> ports *)
  counters : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  registers : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  mutable digest_queue : digest_msg list;             (* newest first *)
  mutable packets_in : int;
  mutable packets_out : int;
}

let create ?(name = "sw0") ?(ports = []) (program : Program.t) : t =
  (match Program.typecheck program with
  | Ok () -> ()
  | Error errs ->
    error "program %s does not type-check: %s" program.name
      (String.concat "; " errs));
  let tables = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Program.table) ->
      let key_widths =
        List.map
          (fun (k : Program.key) ->
            match Program.ref_width program k.kref with
            | Ok w -> w
            | Error e -> error "%s" e)
          tbl.keys
      in
      let all_exact =
        tbl.keys <> []
        && List.for_all (fun (k : Program.key) -> k.kind = Program.Exact) tbl.keys
      in
      Hashtbl.add tables tbl.tname
        {
          table = tbl;
          key_widths;
          entries = Hashtbl.create 64;
          exact_index = (if all_exact then Some (Hashtbl.create 64) else None);
          hits = 0;
          misses = 0;
          obs_hits =
            Obs.Counter.create (Printf.sprintf "p4.table.%s.hits" tbl.tname);
          obs_misses =
            Obs.Counter.create (Printf.sprintf "p4.table.%s.misses" tbl.tname);
        })
    program.tables;
  let counters = Hashtbl.create 4 in
  List.iter
    (fun (c : Program.counter) -> Hashtbl.add counters c.cname (Hashtbl.create 16))
    program.counters;
  let registers = Hashtbl.create 4 in
  List.iter
    (fun (r : Program.register) -> Hashtbl.add registers r.rname (Hashtbl.create 16))
    program.registers;
  {
    program;
    name;
    ports;
    tables;
    mcast_groups = [];
    counters;
    registers;
    digest_queue = [];
    packets_in = 0;
    packets_out = 0;
  }

let table_state sw name =
  match Hashtbl.find_opt sw.tables name with
  | Some ts -> ts
  | None -> error "switch %s: no table %s" sw.name name

(* ---------------- control-plane operations ---------------- *)

let validate_entry sw (ts : table_state) (e : Entry.t) =
  if List.length e.matches <> List.length ts.table.keys then
    error "table %s: expected %d match fields, got %d" ts.table.tname
      (List.length ts.table.keys) (List.length e.matches);
  List.iteri
    (fun i (k : Program.key) ->
      let mv = List.nth e.matches i in
      match k.kind, mv with
      | Program.Exact, Entry.MExact _
      | Program.Lpm, Entry.MLpm _
      | Program.Ternary, (Entry.MTernary _ | Entry.MExact _)
      | Program.Optional, (Entry.MExact _ | Entry.MAny) -> ()
      | _ ->
        error "table %s: match kind mismatch on key %d" ts.table.tname i)
    ts.table.keys;
  if not (List.mem e.action ts.table.actions) then
    error "table %s: action %s not allowed" ts.table.tname e.action;
  match Program.find_action sw.program e.action with
  | None -> error "unknown action %s" e.action
  | Some a ->
    if List.length a.params <> List.length e.args then
      error "action %s: expected %d args, got %d" e.action
        (List.length a.params) (List.length e.args)

let exact_key (e : Entry.t) =
  List.map
    (function Entry.MExact v -> v | _ -> error "exact_key on non-exact entry")
    e.matches

let match_key (e : Entry.t) = (e.Entry.matches, e.Entry.priority)

(** Install a table entry; replaces an existing entry with the same
    match part. *)
let insert_entry sw table (e : Entry.t) : unit =
  let ts = table_state sw table in
  validate_entry sw ts e;
  if Hashtbl.length ts.entries >= ts.table.size
     && not (Hashtbl.mem ts.entries (match_key e)) then
    error "table %s is full (%d entries)" table ts.table.size;
  Hashtbl.replace ts.entries (match_key e) e;
  match ts.exact_index with
  | Some idx -> Hashtbl.replace idx (exact_key e) e
  | None -> ()

(** Remove the entry with the same match part, if any. *)
let delete_entry sw table (e : Entry.t) : unit =
  let ts = table_state sw table in
  Hashtbl.remove ts.entries (match_key e);
  match ts.exact_index with
  | Some idx -> Hashtbl.remove idx (exact_key e)
  | None -> ()

let table_entries sw table =
  Hashtbl.fold (fun _ e acc -> e :: acc) (table_state sw table).entries []

(** Is an entry with the same match part installed? *)
let find_same_match sw table (e : Entry.t) : Entry.t option =
  Hashtbl.find_opt (table_state sw table).entries (match_key e)

let entry_count sw table = Hashtbl.length (table_state sw table).entries

let set_mcast_group sw group ports =
  (* an empty replica list removes the group: Some [] is unrepresentable *)
  sw.mcast_groups <-
    (if ports = [] then List.remove_assoc group sw.mcast_groups
     else (group, ports) :: List.remove_assoc group sw.mcast_groups)

let mcast_group sw group = List.assoc_opt group sw.mcast_groups

(** Drain queued digests, oldest first. *)
let take_digests sw : digest_msg list =
  let ds = List.rev sw.digest_queue in
  sw.digest_queue <- [];
  ds

let counter_value sw name index =
  match Hashtbl.find_opt sw.counters name with
  | None -> error "no counter %s" name
  | Some tbl -> Option.value ~default:0L (Hashtbl.find_opt tbl index)

(** Current value of a register cell (0 if never written). *)
let register_value sw name index =
  match Hashtbl.find_opt sw.registers name with
  | None -> error "no register %s" name
  | Some tbl -> Option.value ~default:0L (Hashtbl.find_opt tbl index)

(** Control-plane write to a register cell. *)
let register_write sw name index v =
  match Hashtbl.find_opt sw.registers name with
  | None -> error "no register %s" name
  | Some tbl -> Hashtbl.replace tbl index v

(* ---------------- expression evaluation ---------------- *)

let mask w v = if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

let read_ref sw (st : pkt_state) (r : Program.fref) : int64 =
  match r with
  | Program.Field (h, f) -> (
    match Hashtbl.find_opt st.fields (h, f) with
    | Some v -> v
    | None ->
      if Hashtbl.mem st.valid h then
        error "switch %s: field %s.%s unset" sw.name h f
      else 0L (* reading a field of an invalid header yields 0, as BMv2 *))
  | Program.Meta m -> Option.value ~default:0L (Hashtbl.find_opt st.meta m)

let ref_width_exn sw r =
  match Program.ref_width sw.program r with
  | Ok w -> w
  | Error e -> error "%s" e

let write_ref sw (st : pkt_state) (r : Program.fref) (v : int64) : unit =
  match r with
  | Program.Field (h, f) ->
    let w = ref_width_exn sw r in
    Hashtbl.replace st.fields (h, f) (mask w v)
  | Program.Meta m ->
    let w = ref_width_exn sw r in
    Hashtbl.replace st.meta m (mask w v)

let rec eval sw (st : pkt_state) (params : (string * int64) list)
    (e : Program.expr) : int64 =
  match e with
  | Program.EConst (w, v) -> mask w v
  | Program.ERef r -> read_ref sw st r
  | Program.EParam p -> (
    match List.assoc_opt p params with
    | Some v -> v
    | None -> error "unbound action parameter %s" p)
  | Program.EValid h -> if Hashtbl.mem st.valid h then 1L else 0L
  | Program.ENot e -> if eval sw st params e = 0L then 1L else 0L
  | Program.EBin (op, a, b) -> (
    let va = eval sw st params a and vb = eval sw st params b in
    let bool_of c = if c then 1L else 0L in
    match op with
    | Program.Add -> Int64.add va vb
    | Program.Sub -> Int64.sub va vb
    | Program.And -> Int64.logand va vb
    | Program.Or -> Int64.logor va vb
    | Program.Xor -> Int64.logxor va vb
    | Program.Shl -> Int64.shift_left va (Int64.to_int vb)
    | Program.Shr -> Int64.shift_right_logical va (Int64.to_int vb)
    | Program.Eq -> bool_of (Int64.equal va vb)
    | Program.Ne -> bool_of (not (Int64.equal va vb))
    | Program.Lt -> bool_of (Int64.unsigned_compare va vb < 0)
    | Program.Gt -> bool_of (Int64.unsigned_compare va vb > 0)
    | Program.Le -> bool_of (Int64.unsigned_compare va vb <= 0)
    | Program.Ge -> bool_of (Int64.unsigned_compare va vb >= 0)
    | Program.BoolAnd -> bool_of (va <> 0L && vb <> 0L)
    | Program.BoolOr -> bool_of (va <> 0L || vb <> 0L))

(* ---------------- actions ---------------- *)

let run_action sw (st : pkt_state) (a : Program.action) (args : int64 list) :
    unit =
  let params = List.map2 (fun (n, w) v -> (n, mask w v)) a.params args in
  List.iter
    (fun prim ->
      match prim with
      | Program.Assign (r, e) -> write_ref sw st r (eval sw st params e)
      | Program.SetValid h ->
        Hashtbl.replace st.valid h ();
        (* initialise missing fields to zero *)
        (match Program.find_header sw.program h with
        | Some hd ->
          List.iter
            (fun (f : Program.field) ->
              if not (Hashtbl.mem st.fields (h, f.fname)) then
                Hashtbl.replace st.fields (h, f.fname) 0L)
            hd.fields
        | None -> ())
      | Program.SetInvalid h -> Hashtbl.remove st.valid h
      | Program.EmitDigest dname -> (
        match Program.find_digest sw.program dname with
        | None -> error "unknown digest %s" dname
        | Some d ->
          let values =
            List.map (fun (n, r) -> (n, read_ref sw st r)) d.dfields
          in
          Obs.Counter.incr m_digests;
          sw.digest_queue <- { digest_name = dname; values } :: sw.digest_queue)
      | Program.Drop -> st.dropped <- true
      | Program.Forward e ->
        Hashtbl.replace st.meta "egress_spec" (eval sw st params e)
      | Program.Multicast e ->
        Hashtbl.replace st.meta "mcast_grp" (eval sw st params e)
      | Program.CloneTo e -> st.clones <- eval sw st params e :: st.clones
      | Program.Count (c, e) ->
        let idx = eval sw st params e in
        let tbl = Hashtbl.find sw.counters c in
        Hashtbl.replace tbl idx
          (Int64.add 1L (Option.value ~default:0L (Hashtbl.find_opt tbl idx)))
      | Program.RegWrite (r, idx, v) ->
        let tbl = Hashtbl.find sw.registers r in
        Hashtbl.replace tbl (eval sw st params idx) (eval sw st params v)
      | Program.RegRead (dst, r, idx) ->
        let tbl = Hashtbl.find sw.registers r in
        let v =
          Option.value ~default:0L (Hashtbl.find_opt tbl (eval sw st params idx))
        in
        write_ref sw st dst v)
    a.body

(* ---------------- table application ---------------- *)

let lookup (ts : table_state) (values : int64 list) : Entry.t option =
  match ts.exact_index with
  | Some idx -> Hashtbl.find_opt idx values
  | None ->
    (* rank: longest total LPM prefix first, then priority *)
    let rank e = (Entry.lpm_length e, e.Entry.priority) in
    Hashtbl.fold
      (fun _ (e : Entry.t) best ->
        let matches =
          List.for_all2
            (fun (w, mv) v -> Entry.match_value_matches ~width:w mv v)
            (List.combine ts.key_widths e.matches)
            values
        in
        if not matches then best
        else
          match best with
          | None -> Some e
          | Some b -> if rank e > rank b then Some e else best)
      ts.entries None

let apply_table sw (st : pkt_state) (tname : string) : unit =
  let ts = table_state sw tname in
  let values =
    List.map (fun (k : Program.key) -> read_ref sw st k.kref) ts.table.keys
  in
  let action, args =
    match lookup ts values with
    | Some e ->
      ts.hits <- ts.hits + 1;
      Obs.Counter.incr ts.obs_hits;
      (e.action, e.args)
    | None ->
      ts.misses <- ts.misses + 1;
      Obs.Counter.incr ts.obs_misses;
      ts.table.default_action
  in
  match Program.find_action sw.program action with
  | Some a -> run_action sw st a args
  | None -> error "unknown action %s" action

let rec run_control sw (st : pkt_state) (c : Program.control) : unit =
  match c with
  | Program.Nop -> ()
  | Program.Seq (a, b) ->
    run_control sw st a;
    run_control sw st b
  | Program.ApplyTable t -> apply_table sw st t
  | Program.If (cond, a, b) ->
    if eval sw st [] cond <> 0L then run_control sw st a else run_control sw st b

(* ---------------- parsing and deparsing ---------------- *)

let parse sw (pkt : Packet.t) (st : pkt_state) : bool =
  let bit = ref 0 in
  let extract hname =
    match Program.find_header sw.program hname with
    | None -> error "unknown header %s" hname
    | Some h ->
      if !bit + Program.header_width h > 8 * Packet.length pkt then false
      else begin
        List.iter
          (fun (f : Program.field) ->
            let v = Packet.get_bits pkt ~bit_offset:!bit ~width:f.fwidth in
            Hashtbl.replace st.fields (hname, f.fname) v;
            bit := !bit + f.fwidth)
          h.fields;
        Hashtbl.replace st.valid hname ();
        true
      end
  in
  let rec run state_name fuel =
    if fuel <= 0 then error "parser loop in program %s" sw.program.name
    else
      match Program.find_state sw.program state_name with
      | None -> error "unknown parser state %s" state_name
      | Some s ->
        if not (List.for_all extract s.extracts) then false (* truncated *)
        else begin
          match s.transition with
          | Program.Accept ->
            st.payload <- Packet.drop_bytes pkt ((!bit + 7) / 8);
            true
          | Program.Reject -> false
          | Program.Select (r, cases) ->
            let v = read_ref sw st r in
            let rec pick = function
              | [] -> false
              | (Some c, target) :: rest ->
                if Int64.equal c v then run target (fuel - 1) else pick rest
              | (None, target) :: _ -> run target (fuel - 1)
            in
            pick cases
        end
  in
  run sw.program.parser.start 64

let deparse sw (st : pkt_state) : Packet.t =
  let width =
    List.fold_left
      (fun acc (h : Program.header) ->
        if Hashtbl.mem st.valid h.hname then acc + Program.header_width h else acc)
      0 sw.program.headers
  in
  let hdr_bytes = (width + 7) / 8 in
  let out = Packet.create hdr_bytes in
  let bit = ref 0 in
  List.iter
    (fun (h : Program.header) ->
      if Hashtbl.mem st.valid h.hname then
        List.iter
          (fun (f : Program.field) ->
            let v =
              Option.value ~default:0L (Hashtbl.find_opt st.fields (h.hname, f.fname))
            in
            Packet.set_bits out ~bit_offset:!bit ~width:f.fwidth v;
            bit := !bit + f.fwidth)
          h.fields)
    sw.program.headers;
  Packet.concat out st.payload

(* ---------------- the pipeline ---------------- *)

let copy_state (st : pkt_state) : pkt_state =
  {
    fields = Hashtbl.copy st.fields;
    valid = Hashtbl.copy st.valid;
    meta = Hashtbl.copy st.meta;
    payload = st.payload;
    dropped = st.dropped;
    clones = [];
  }

(** Inject a packet on [in_port]; returns the (port, packet) copies the
    switch emits.  Digests emitted during processing are queued on the
    switch and retrieved with [take_digests]. *)
let process (sw : t) ~(in_port : int) (pkt : Packet.t) : (int * Packet.t) list =
  sw.packets_in <- sw.packets_in + 1;
  Obs.Counter.incr m_packets_in;
  let st =
    {
      fields = Hashtbl.create 32;
      valid = Hashtbl.create 8;
      meta = Hashtbl.create 8;
      payload = Packet.of_bytes Bytes.empty;
      dropped = false;
      clones = [];
    }
  in
  Hashtbl.replace st.meta "ingress_port" (Int64.of_int in_port);
  if not (parse sw pkt st) then [] (* parser reject *)
  else begin
    run_control sw st sw.program.ingress;
    (* Replication: unicast via egress_spec, multicast via mcast_grp,
       plus clones.  A Drop verdict is sticky: it suppresses all
       replication, including clones. *)
    let copies = ref [] in
    let mcast = Option.value ~default:0L (Hashtbl.find_opt st.meta "mcast_grp") in
    if not st.dropped then begin
      (match Hashtbl.find_opt st.meta "egress_spec" with
      | Some port when mcast = 0L -> copies := [ (port, copy_state st) ]
      | _ -> ());
      if mcast <> 0L then begin
        let ports = Option.value ~default:[] (mcast_group sw mcast) in
        List.iter
          (fun port ->
            (* do not reflect back to the ingress port *)
            if port <> Int64.of_int in_port then
              copies := (port, copy_state st) :: !copies)
          ports
      end;
      List.iter
        (fun port ->
          let c = copy_state st in
          Hashtbl.replace c.meta "is_clone" 1L;
          copies := (port, c) :: !copies)
        st.clones
    end;
    (* Egress control per copy, then deparse. *)
    let outputs =
      List.filter_map
        (fun (port, c) ->
          Hashtbl.replace c.meta "egress_port" port;
          c.dropped <- false;
          run_control sw c sw.program.egress;
          if c.dropped then None else Some (Int64.to_int port, deparse sw c))
        (List.rev !copies)
    in
    sw.packets_out <- sw.packets_out + List.length outputs;
    Obs.Counter.add m_packets_out (List.length outputs);
    outputs
  end

(* ---------------- introspection ---------------- *)

type table_stats = { entries : int; hits : int; misses : int }

let stats sw tname =
  let ts = table_state sw tname in
  { entries = Hashtbl.length ts.entries; hits = ts.hits; misses = ts.misses }
