(* Raw packets: byte buffers with big-endian bit-field accessors.

   The behavioural model parses real bytes into header instances and
   re-serialises them on the way out, so tests can exercise the exact
   wire formats (Ethernet, 802.1Q, IPv4, ...). *)

type t = Bytes.t

let of_bytes b : t = b
let to_bytes (p : t) = p
let of_string s : t = Bytes.of_string s
let to_string (p : t) = Bytes.to_string p
let length (p : t) = Bytes.length p
let equal (a : t) (b : t) = Bytes.equal a b

let create n : t = Bytes.make n '\000'

exception Out_of_bounds of string

let check_range p ~bit_offset ~width =
  if width < 0 || width > 64 then
    raise (Out_of_bounds (Printf.sprintf "bad field width %d" width));
  if bit_offset < 0 || bit_offset + width > 8 * Bytes.length p then
    raise
      (Out_of_bounds
         (Printf.sprintf "bits [%d, %d) of a %d-byte packet" bit_offset
            (bit_offset + width) (Bytes.length p)))

(** Read [width] bits starting at absolute [bit_offset] (bit 0 is the
    most significant bit of byte 0), returned right-aligned. *)
let get_bits (p : t) ~bit_offset ~width : int64 =
  check_range p ~bit_offset ~width;
  let v = ref 0L in
  for i = 0 to width - 1 do
    let bit = bit_offset + i in
    let byte = Char.code (Bytes.get p (bit / 8)) in
    let b = (byte lsr (7 - (bit mod 8))) land 1 in
    v := Int64.logor (Int64.shift_left !v 1) (Int64.of_int b)
  done;
  !v

(** Write [width] bits of [v] (right-aligned) at [bit_offset]. *)
let set_bits (p : t) ~bit_offset ~width (v : int64) : unit =
  check_range p ~bit_offset ~width;
  for i = 0 to width - 1 do
    let bit = bit_offset + i in
    let byte_idx = bit / 8 in
    let mask = 1 lsl (7 - (bit mod 8)) in
    let byte = Char.code (Bytes.get p byte_idx) in
    let value_bit =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L)
    in
    let byte' = if value_bit = 1 then byte lor mask else byte land lnot mask in
    Bytes.set p byte_idx (Char.chr byte')
  done

(** The bytes from [byte_offset] to the end (the payload after the
    parsed headers). *)
let drop_bytes (p : t) byte_offset : t =
  if byte_offset >= Bytes.length p then Bytes.empty
  else Bytes.sub p byte_offset (Bytes.length p - byte_offset)

let concat (a : t) (b : t) : t = Bytes.cat a b

(** Internet checksum (RFC 1071) over the whole buffer. *)
let internet_checksum (p : t) : int =
  let n = Bytes.length p in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + (Char.code (Bytes.get p !i) lsl 8) + Char.code (Bytes.get p (!i + 1));
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Char.code (Bytes.get p !i) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let pp fmt (p : t) =
  Bytes.iter (fun c -> Format.fprintf fmt "%02x" (Char.code c)) p

let to_hex (p : t) = Format.asprintf "%a" pp p

let of_hex (s : string) : t =
  let s = String.concat "" (String.split_on_char ' ' s) in
  if String.length s mod 2 <> 0 then invalid_arg "Packet.of_hex: odd length";
  let n = String.length s / 2 in
  let p = create n in
  for i = 0 to n - 1 do
    let hex = String.sub s (2 * i) 2 in
    match int_of_string_opt ("0x" ^ hex) with
    | Some b -> Bytes.set p i (Char.chr b)
    | None -> invalid_arg ("Packet.of_hex: bad byte " ^ hex)
  done;
  p
