(* An in-process P4Runtime: the API through which the control plane
   programs data-plane switches and receives digests, mirroring the
   P4Runtime gRPC service (WriteRequest batches with atomic semantics,
   entity reads, multicast group programming, and a digest stream with
   acknowledgements).  The transport is a function call instead of gRPC,
   but message shapes and semantics follow the spec. *)

exception Rpc_error of string

let error fmt = Format.kasprintf (fun s -> raise (Rpc_error s)) fmt

(* ---------------- entities ---------------- *)

type field_match =
  | FmExact of int64
  | FmLpm of int64 * int
  | FmTernary of int64 * int64
  | FmOptional of int64 option

type table_entry = {
  table_id : int;
  matches : field_match list;
  priority : int;
  action_id : int;
  action_args : int64 list;
}

type multicast_group_entry = { group_id : int64; replicas : int64 list }

type entity =
  | TableEntry of table_entry
  | MulticastGroupEntry of multicast_group_entry

type update_type = Insert | Modify | Delete

type update = { utype : update_type; entity : entity }

type digest_list = {
  digest_id : int;
  list_id : int;
  entries : int64 list list;       (* each entry: field values in order *)
}

(* ---------------- server ---------------- *)

type server = {
  switch : P4.Switch.t;
  info : P4.P4info.t;
  mutable next_list_id : int;
  mutable unacked : (int * digest_list) list;
}

let attach (switch : P4.Switch.t) : server =
  { switch; info = P4.P4info.of_program switch.P4.Switch.program;
    next_list_id = 0; unacked = [] }

let info (srv : server) = srv.info

(* Convert a wire table entry into the switch's internal form, with full
   validation against P4Info. *)
let to_switch_entry (srv : server) (te : table_entry) : string * P4.Entry.t =
  let tinfo =
    match P4.P4info.find_table_by_id srv.info te.table_id with
    | Some t -> t
    | None -> error "unknown table id %d" te.table_id
  in
  let ainfo =
    match P4.P4info.find_action_by_id srv.info te.action_id with
    | Some a -> a
    | None -> error "unknown action id %d" te.action_id
  in
  if not (List.mem ainfo.action_name tinfo.action_names) then
    error "action %s not allowed in table %s" ainfo.action_name tinfo.table_name;
  if List.length te.matches <> List.length tinfo.key_kinds then
    error "table %s: expected %d matches, got %d" tinfo.table_name
      (List.length tinfo.key_kinds) (List.length te.matches);
  let matches =
    List.map2
      (fun kind fm ->
        match kind, fm with
        | P4.Program.Exact, FmExact v -> P4.Entry.MExact v
        | P4.Program.Lpm, FmLpm (v, l) -> P4.Entry.MLpm (v, l)
        | P4.Program.Ternary, FmTernary (v, m) -> P4.Entry.MTernary (v, m)
        | P4.Program.Ternary, FmExact v -> P4.Entry.MTernary (v, -1L)
        | P4.Program.Optional, FmOptional (Some v) -> P4.Entry.MExact v
        | P4.Program.Optional, FmOptional None -> P4.Entry.MAny
        | _ -> error "table %s: match kind mismatch" tinfo.table_name)
      tinfo.key_kinds te.matches
  in
  ( tinfo.table_name,
    { P4.Entry.matches; priority = te.priority;
      action = ainfo.action_name; args = te.action_args } )

let apply_update (srv : server) (u : update) : unit =
  match u.entity with
  | TableEntry te -> (
    let table, entry = to_switch_entry srv te in
    match u.utype with
    | Insert ->
      if P4.Switch.find_same_match srv.switch table entry <> None then
        error "table %s: entry already exists" table
      else P4.Switch.insert_entry srv.switch table entry
    | Modify ->
      if P4.Switch.find_same_match srv.switch table entry = None then
        error "table %s: no such entry to modify" table
      else P4.Switch.insert_entry srv.switch table entry
    | Delete -> P4.Switch.delete_entry srv.switch table entry)
  | MulticastGroupEntry mge -> (
    match u.utype with
    | Insert | Modify ->
      P4.Switch.set_mcast_group srv.switch mge.group_id mge.replicas
    | Delete -> P4.Switch.set_mcast_group srv.switch mge.group_id [])

(** Execute a batch of updates.  Per the P4Runtime spec the batch is
    atomic: on any error, updates already applied are rolled back and
    [Error] is returned. *)
let write (srv : server) (updates : update list) : (unit, string) result =
  let applied = ref [] in
  let invert (u : update) : update =
    match u.utype with
    | Insert -> { u with utype = Delete }
    | Delete -> { u with utype = Insert }
    | Modify -> u (* restored explicitly below *)
  in
  try
    List.iter
      (fun u ->
        (* For Modify and Delete, remember the previous state to restore. *)
        let undo =
          match u.entity, u.utype with
          | TableEntry te, (Modify | Delete) ->
            let table, entry = to_switch_entry srv te in
            let prev = P4.Switch.find_same_match srv.switch table entry in
            (match prev with
            | Some old ->
              let old_te = { te with action_id = te.action_id } in
              ignore old_te;
              Some
                (fun () ->
                  P4.Switch.insert_entry srv.switch table old)
            | None -> Some (fun () -> ()))
          | TableEntry te, Insert ->
            let _ = te in
            None
          | MulticastGroupEntry mge, _ ->
            let prev = P4.Switch.mcast_group srv.switch mge.group_id in
            Some
              (fun () ->
                P4.Switch.set_mcast_group srv.switch mge.group_id
                  (Option.value ~default:[] prev))
        in
        apply_update srv u;
        applied := (u, undo) :: !applied)
      updates;
    Ok ()
  with
  | Rpc_error msg | P4.Switch.Switch_error msg ->
    List.iter
      (fun (u, undo) ->
        match undo with
        | Some restore -> restore ()
        | None -> (
          try apply_update srv (invert u) with _ -> ()))
      !applied;
    Error msg

let write_exn srv updates =
  match write srv updates with Ok () -> () | Error msg -> error "%s" msg

(** Read back the entries of a table (by id). *)
let read_table (srv : server) ~(table_id : int) : table_entry list =
  let tinfo =
    match P4.P4info.find_table_by_id srv.info table_id with
    | Some t -> t
    | None -> error "unknown table id %d" table_id
  in
  List.map
    (fun (e : P4.Entry.t) ->
      let ainfo =
        match P4.P4info.find_action srv.info e.action with
        | Some a -> a
        | None -> error "entry action %s missing from P4Info" e.action
      in
      let matches =
        List.map2
          (fun kind mv ->
            match kind, mv with
            | P4.Program.Exact, P4.Entry.MExact v -> FmExact v
            | P4.Program.Lpm, P4.Entry.MLpm (v, l) -> FmLpm (v, l)
            | P4.Program.Ternary, P4.Entry.MTernary (v, m) -> FmTernary (v, m)
            | P4.Program.Optional, P4.Entry.MExact v -> FmOptional (Some v)
            | P4.Program.Optional, P4.Entry.MAny -> FmOptional None
            | _, mv ->
              error "entry match %s inconsistent with key kind"
                (P4.Entry.match_value_to_string mv))
          tinfo.key_kinds e.matches
      in
      { table_id; matches; priority = e.priority;
        action_id = ainfo.action_id; action_args = e.args })
    (P4.Switch.table_entries srv.switch tinfo.table_name)

(** Drain pending digests as DigestList messages (the stream channel).
    Messages stay un-acknowledged until [ack_digest_list]. *)
let stream_digests (srv : server) : digest_list list =
  let msgs = P4.Switch.take_digests srv.switch in
  (* group consecutive digests of the same type into lists, as the
     target would *)
  let grouped = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (d : P4.Switch.digest_msg) ->
      let dinfo =
        match P4.P4info.find_digest srv.info d.digest_name with
        | Some i -> i
        | None -> error "digest %s missing from P4Info" d.digest_name
      in
      let values = List.map snd d.values in
      match Hashtbl.find_opt grouped dinfo.digest_id with
      | Some entries -> entries := values :: !entries
      | None ->
        Hashtbl.add grouped dinfo.digest_id (ref [ values ]);
        order := dinfo.digest_id :: !order)
    msgs;
  List.rev_map
    (fun digest_id ->
      let entries = List.rev !(Hashtbl.find grouped digest_id) in
      let list_id = srv.next_list_id in
      srv.next_list_id <- list_id + 1;
      let dl = { digest_id; list_id; entries } in
      srv.unacked <- (list_id, dl) :: srv.unacked;
      dl)
    !order

(** Acknowledge a digest list, releasing it from the retransmit queue. *)
let ack_digest_list (srv : server) ~(list_id : int) : unit =
  srv.unacked <- List.remove_assoc list_id srv.unacked

let unacked_digests (srv : server) : digest_list list = List.map snd srv.unacked

(* ---------------- client-side helpers ---------------- *)

(** Build a table entry from names instead of ids. *)
let entry (info : P4.P4info.t) ~table ~matches ?(priority = 0) ~action ~args ()
    : table_entry =
  let tinfo =
    match P4.P4info.find_table info table with
    | Some t -> t
    | None -> error "unknown table %s" table
  in
  let ainfo =
    match P4.P4info.find_action info action with
    | Some a -> a
    | None -> error "unknown action %s" action
  in
  { table_id = tinfo.table_id; matches; priority;
    action_id = ainfo.action_id; action_args = args }

let insert e = { utype = Insert; entity = TableEntry e }
let modify e = { utype = Modify; entity = TableEntry e }
let delete e = { utype = Delete; entity = TableEntry e }

let set_multicast ~group ~ports =
  { utype = Modify; entity = MulticastGroupEntry { group_id = group; replicas = ports } }
