let () =
  (* ofp4 semantics *)
  let open Ofp4 in
  let simple_router : P4.Program.t =
    let open P4.Program in
    { name = "router";
      headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
      parser = { start = "s"; states = [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ]; transition = Accept } ] };
      actions = [
        { aname = "forward"; params = [ ("port", 16) ]; body = [ Forward (EParam "port") ] };
        { aname = "drop"; params = []; body = [ Drop ] };
        { aname = "flood"; params = [ ("g", 16) ]; body = [ Multicast (EParam "g") ] } ];
      tables = [
        { tname = "acl"; keys = [ { kref = Field ("ipv4", "src"); kind = Ternary } ];
          actions = [ "forward"; "drop" ]; default_action = ("forward", [ 0L ]); size = 64 };
        { tname = "routes"; keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm } ];
          actions = [ "forward"; "drop"; "flood" ]; default_action = ("drop", []); size = 1024 } ];
      digests = []; counters = []; registers = [];
      ingress = Seq (ApplyTable "acl", ApplyTable "routes"); egress = Nop }
  in
  let sw = P4.Switch.create simple_router in
  P4.Switch.insert_entry sw "routes" { P4.Entry.matches = [ P4.Entry.MLpm (0x0A000000L, 8) ]; priority = 0; action = "forward"; args = [ 1L ] };
  P4.Switch.insert_entry sw "routes" { P4.Entry.matches = [ P4.Entry.MLpm (0x0A010000L, 16) ]; priority = 0; action = "forward"; args = [ 2L ] };
  P4.Switch.insert_entry sw "acl" { P4.Entry.matches = [ P4.Entry.MTernary (0xDEAD0000L, 0xFFFF0000L) ]; priority = 9; action = "drop"; args = [] };
  let prog = Compile.compile sw in
  print_endline (Openflow.dump prog);
  let v = Openflow.eval prog { Openflow.fields = [ ("ipv4.src", 1L); ("ipv4.dst", 0x0A016666L) ]; present = [] } in
  Printf.printf "outputs: %s\n" (String.concat "," (List.map Int64.to_string v.Openflow.outputs))
