let lookup_program : P4.Program.t =
  let open P4.Program in
  { name = "lookup"; headers = [ P4.Stdhdrs.ipv4 ];
    parser = { start = "s"; states = [ { sname = "s"; extracts = [ "ipv4" ]; transition = Accept } ] };
    actions = [ { aname = "forward"; params = [ ("port", 16) ]; body = [ Forward (EParam "port") ] };
                { aname = "drop"; params = []; body = [ Drop ] } ];
    tables = [ { tname = "mixed";
                 keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm };
                          { kref = Field ("ipv4", "protocol"); kind = Ternary } ];
                 actions = [ "forward"; "drop" ]; default_action = ("drop", []); size = 4096 } ];
    digests = []; counters = []; registers = [];
    ingress = ApplyTable "mixed"; egress = Nop }

let () =
  let sw = P4.Switch.create lookup_program in
  P4.Switch.insert_entry sw "mixed"
    { P4.Entry.matches = [ P4.Entry.MLpm (1L, 30); P4.Entry.MTernary (0L, 0L) ];
      priority = 0; action = "forward"; args = [ 7L ] };
  let pkt = P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:9L
      ~ip_dst:0L ~src_port:1L ~dst_port:2L ~payload:"" in
  P4.Packet.set_bits pkt ~bit_offset:(14*8+72) ~width:8 0L;
  (match P4.Switch.process sw ~in_port:1 pkt with
   | [ (p, _) ] -> Printf.printf "single entry A: forwarded to %d\n" p
   | [] -> print_endline "single entry A: dropped!"
   | _ -> print_endline "multi");
  Printf.printf "mask/30 = %Lx\n" (P4.Entry.mask_of_prefix ~width:32 ~prefix_len:30);
  Printf.printf "matches? %b\n"
    (P4.Entry.match_value_matches ~width:32 (P4.Entry.MLpm (1L, 30)) 0L)
