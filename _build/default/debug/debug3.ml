(* minimize the lookup property failure *)
let lookup_program : P4.Program.t =
  let open P4.Program in
  { name = "lookup"; headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
    parser = { start = "s"; states = [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ]; transition = Accept } ] };
    actions = [ { aname = "forward"; params = [ ("port", 16) ]; body = [ Forward (EParam "port") ] };
                { aname = "drop"; params = []; body = [ Drop ] } ];
    tables = [ { tname = "mixed";
                 keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm };
                          { kref = Field ("ipv4", "protocol"); kind = Ternary } ];
                 actions = [ "forward"; "drop" ]; default_action = ("drop", []); size = 4096 } ];
    digests = []; counters = []; registers = [];
    ingress = ApplyTable "mixed"; egress = Nop }

let reference_winners entries ~widths values =
  let matching =
    List.filter
      (fun (e : P4.Entry.t) ->
        List.for_all2 (fun (w, mv) v -> P4.Entry.match_value_matches ~width:w mv v)
          (List.combine widths e.matches) values)
      entries
  in
  let rank (e : P4.Entry.t) = (P4.Entry.lpm_length e, e.priority) in
  match matching with
  | [] -> []
  | _ ->
    let best = List.fold_left (fun b e -> max b (rank e)) (min_int, min_int) matching in
    List.filter (fun e -> rank e = best) matching

let () =
  let r = Random.State.make [| 99 |] in
  let found = ref false in
  let attempt = ref 0 in
  while not !found && !attempt < 100000 do
    incr attempt;
    let n = 1 + Random.State.int r 4 in
    let entries = List.init n (fun _ ->
      { P4.Entry.matches =
          [ P4.Entry.MLpm (Int64.of_int (Random.State.int r 16), List.nth [0;28;30;32] (Random.State.int r 4));
            P4.Entry.MTernary (Int64.of_int (Random.State.int r 4), if Random.State.bool r then 0L else 3L) ];
        priority = Random.State.int r 4; action = "forward";
        args = [ Int64.of_int (1 + Random.State.int r 8) ] })
    in
    let sw = P4.Switch.create lookup_program in
    let installed = List.fold_left (fun acc (e : P4.Entry.t) ->
        P4.Switch.insert_entry sw "mixed" e;
        e :: List.filter (fun e' -> not (P4.Entry.same_match e e')) acc) [] entries in
    for dst = 0 to 15 do
      for proto = 0 to 3 do
        if not !found then begin
          let values = [ Int64.of_int dst; Int64.of_int proto ] in
          let winners = reference_winners installed ~widths:[ 32; 8 ] values in
          let pkt = P4.Stdhdrs.udp_packet ~eth_dst:1L ~eth_src:2L ~ip_src:9L
              ~ip_dst:(Int64.of_int dst) ~src_port:1L ~dst_port:2L ~payload:"" in
          P4.Packet.set_bits pkt ~bit_offset:(14*8+72) ~width:8 (Int64.of_int proto);
          let outs = P4.Switch.process sw ~in_port:1 pkt in
          let ok = match winners, outs with
            | [], [] -> true
            | _ :: _, [ (p, _) ] ->
              List.exists (fun (e : P4.Entry.t) -> e.P4.Entry.args = [ Int64.of_int p ]) winners
            | _ -> false
          in
          if not ok then begin
            found := true;
            Printf.printf "attempt %d: dst=%d proto=%d\n" !attempt dst proto;
            List.iter (fun e -> print_endline ("  installed: " ^ P4.Entry.to_string e)) installed;
            Printf.printf "  winners: %d, outs: [%s]\n" (List.length winners)
              (String.concat ";" (List.map (fun (p,_) -> string_of_int p) outs))
          end
        end
      done
    done
  done;
  if not !found then print_endline "no failure found"
