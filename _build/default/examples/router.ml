(* The L3 router application end-to-end: longest-prefix routing with
   next-hop resolution, TTL handling and per-protocol filtering, all
   computed incrementally from two OVSDB tables.

   Run with:  dune exec examples/router.exe *)

let ip = P4.Stdhdrs.ipv4_of_string
let mac = P4.Stdhdrs.mac_of_string

let probe d dst =
  let pkt =
    P4.Stdhdrs.udp_packet ~eth_dst:(mac "02:00:00:00:00:aa")
      ~eth_src:(mac "02:00:00:00:00:bb") ~ip_src:(ip "192.168.0.1")
      ~ip_dst:(ip dst) ~src_port:40000L ~dst_port:53L ~payload:"probe"
  in
  let sw = L3router.switch d "r0" in
  match P4.Switch.process sw ~in_port:9 pkt with
  | [ (port, out) ] ->
    Printf.printf "  %-16s -> port %d, next hop %s, ttl %Ld\n" dst port
      (P4.Stdhdrs.mac_to_string (P4.Packet.get_bits out ~bit_offset:0 ~width:48))
      (P4.Packet.get_bits out ~bit_offset:(14 * 8 + 64) ~width:8)
  | [] -> Printf.printf "  %-16s -> (dropped)\n" dst
  | _ -> Printf.printf "  %-16s -> (replicated?)\n" dst

let () =
  print_endline "== deploying the L3 router (2 switches, same program) ==";
  let d = L3router.deploy ~switch_names:[ "r0"; "r1" ] () in
  L3router.add_neighbor d ~ip:(ip "10.0.0.254") ~mac:(mac "02:aa:00:00:00:01")
    ~port:1;
  L3router.add_neighbor d ~ip:(ip "10.1.0.254") ~mac:(mac "02:aa:00:00:00:02")
    ~port:2;
  L3router.add_route d ~prefix:(ip "10.0.0.0") ~plen:8 ~nexthop:(ip "10.0.0.254");
  L3router.add_route d ~prefix:(ip "10.1.0.0") ~plen:16 ~nexthop:(ip "10.1.0.254");
  (* a route whose next hop is not resolvable yet *)
  L3router.add_route d ~prefix:(ip "10.2.0.0") ~plen:16 ~nexthop:(ip "10.2.0.254");
  ignore (L3router.sync d);

  print_endline "routing table installed from OVSDB (longest prefix wins):";
  probe d "10.9.9.9";
  probe d "10.1.2.3";
  probe d "10.2.7.7";
  let eng = Nerpa.Controller.engine d.controller in
  Printf.printf "unresolved routes (monitoring relation): %d\n"
    (Dl.Engine.relation_cardinal eng "UnresolvedRoute");

  print_endline "\nthe missing neighbor appears:";
  L3router.add_neighbor d ~ip:(ip "10.2.0.254") ~mac:(mac "02:aa:00:00:00:03")
    ~port:3;
  ignore (L3router.sync d);
  probe d "10.2.7.7";

  print_endline "\ndeny UDP (protocol 17) via the management plane:";
  L3router.set_protocol d ~protocol:17 ~allow:false;
  ignore (L3router.sync d);
  probe d "10.1.2.3";

  Printf.printf
    "\nboth switches carry identical state: r0 has %d routes, r1 has %d\n"
    (P4.Switch.entry_count (L3router.switch d "r0") "routes")
    (P4.Switch.entry_count (L3router.switch d "r1") "routes")
