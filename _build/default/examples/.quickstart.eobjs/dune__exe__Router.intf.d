examples/router.mli:
