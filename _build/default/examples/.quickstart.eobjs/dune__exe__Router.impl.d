examples/router.ml: Dl L3router Nerpa P4 Printf
