examples/quickstart.mli:
