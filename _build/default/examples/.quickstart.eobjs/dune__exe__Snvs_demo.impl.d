examples/snvs_demo.ml: List Nerpa P4 Printf Snvs String
