examples/load_balancer.ml: Baseline Dl Engine Int64 List Netgen Parser Printf Unix Value Zset
