examples/quickstart.ml: Array Dl Engine List Parser Printf Row Value Zset
