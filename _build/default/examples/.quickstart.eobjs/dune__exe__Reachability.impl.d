examples/reachability.ml: Array Baseline Dl Engine Int64 List Netgen Parser Printf Unix Value Zset
