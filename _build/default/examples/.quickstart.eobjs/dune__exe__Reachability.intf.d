examples/reachability.mli:
