examples/snvs_demo.mli:
