(* The paper's headline example end-to-end: a simple network virtual
   switch (snvs) run across all three planes.

   The administrator writes rows into the OVSDB management database;
   the DL control plane incrementally computes table entries; the
   P4Runtime layer installs them into the behavioural switch; real
   Ethernet frames flow; MAC-learning digests feed back into the
   control plane.

   Run with:  dune exec examples/snvs_demo.exe *)

let mac = P4.Stdhdrs.mac_of_string

let frame ~dst ~src =
  P4.Stdhdrs.ethernet_frame ~dst ~src ~ethertype:0x0800L ~payload:"payload"

let show_outputs what outs =
  Printf.printf "%-40s -> %s\n" what
    (if outs = [] then "(dropped)"
     else
       String.concat ", "
         (List.map
            (fun (port, pkt) ->
              let tagged =
                P4.Packet.get_bits pkt ~bit_offset:96 ~width:16
                = P4.Stdhdrs.ethertype_vlan
              in
              Printf.sprintf "port %d%s" port (if tagged then " (tagged)" else ""))
            outs))

let () =
  print_endline "== deploying snvs: OVSDB + DL controller + P4 switch ==";
  let d = Snvs.deploy () in

  print_endline "administrator: adding ports via OVSDB transactions";
  ignore (Snvs.add_port d ~name:"h1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"h2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"h3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"up" ~port:4 ~mode:"trunk" ~tag:0 ~trunks:[ 10; 20 ]);
  let txns = Nerpa.Controller.sync d.controller in
  Printf.printf "controller synced (%d transactions)\n\n" txns;

  let h1 = mac "02:00:00:00:00:01" and h2 = mac "02:00:00:00:00:02" in
  let bcast = mac "ff:ff:ff:ff:ff:ff" in

  show_outputs "h1 broadcasts (unknown dst, vlan 10)"
    (P4.Switch.process d.switch ~in_port:1 (frame ~dst:bcast ~src:h1));
  ignore (Nerpa.Controller.sync d.controller);
  Printf.printf "  ... controller consumed the learning digest; dmac now has %d entries\n"
    (P4.Switch.entry_count d.switch "dmac");

  show_outputs "h2 replies to h1 (now unicast)"
    (P4.Switch.process d.switch ~in_port:2 (frame ~dst:h1 ~src:h2));
  ignore (Nerpa.Controller.sync d.controller);

  show_outputs "h1 sends to h2 (both learned)"
    (P4.Switch.process d.switch ~in_port:1 (frame ~dst:h2 ~src:h1));

  print_endline "\nadministrator: mirror port 1 to port 9";
  ignore (Snvs.add_mirror d ~name:"tap" ~select_port:1 ~output_port:9);
  ignore (Nerpa.Controller.sync d.controller);
  show_outputs "h1 sends to h2 (with mirror)"
    (P4.Switch.process d.switch ~in_port:1 (frame ~dst:h2 ~src:h1));

  print_endline "\nadministrator: deny h1 -> h2 with an ACL";
  ignore
    (Snvs.add_acl d ~priority:10 ~src:h1 ~src_mask:0xFFFFFFFFFFFFL ~dst:h2
       ~dst_mask:0xFFFFFFFFFFFFL ~allow:false);
  ignore (Nerpa.Controller.sync d.controller);
  show_outputs "h1 sends to h2 (ACL denies)"
    (P4.Switch.process d.switch ~in_port:1 (frame ~dst:h2 ~src:h1));
  show_outputs "h2 sends to h1 (unaffected)"
    (P4.Switch.process d.switch ~in_port:2 (frame ~dst:h1 ~src:h2));

  print_endline "\nadministrator: removing port h2";
  Snvs.del_port d ~name:"h2";
  ignore (Nerpa.Controller.sync d.controller);
  show_outputs "h1 broadcasts again"
    (P4.Switch.process d.switch ~in_port:1 (frame ~dst:bcast ~src:h1));

  let s = Nerpa.Controller.stats d.controller in
  Printf.printf
    "\ncontroller totals: %d DL transactions, %d entry writes, %d digests, %d group updates\n"
    s.Nerpa.Controller.txns s.Nerpa.Controller.entries_written
    s.Nerpa.Controller.digests_consumed s.Nerpa.Controller.groups_updated;
  let inv = Snvs.loc_inventory () in
  Printf.printf
    "snvs artefacts: %d rule lines, %d generated declaration lines, ~%d P4 lines, %d OVSDB tables\n"
    inv.Snvs.rules_loc inv.Snvs.generated_loc inv.Snvs.p4_loc inv.Snvs.ovsdb_tables
