(* A layer-4 load balancer on the Nerpa stack — and the honest flip
   side: the paper's §2.2 observation that *cold-start-then-teardown*
   is a worst case for automatic incrementality.

   The DL program maps virtual IPs to hash buckets over backends; the
   example then reproduces the OVN load-balancer benchmark shape
   (create large LBs, then delete them one by one) against both the
   incremental engine and the C-style imperative controller.

   Run with:  dune exec examples/load_balancer.exe *)

open Dl

let program =
  Parser.parse_program_exn
    {|
    input relation LoadBalancer(name: string, vip: bit<32>, backends: vec<bit<32>>)
    input relation BackendHealth(addr: bit<32>, healthy: bool)

    relation Dead(addr: bit<32>)
    Dead(a) :- BackendHealth(a, false).

    // One hash-bucket entry per healthy backend of each VIP.
    output relation LbEntry(vip: bit<32>, bucket: bit<16>, backend: bit<32>)
    LbEntry(vip, bucket, b) :-
      LoadBalancer(_, vip, bs), var b in bs, not Dead(b),
      var bucket = bit_slice(hash32(b), 15, 0).

    // Monitoring view: backends per VIP.
    output relation VipSize(vip: bit<32>, n: int)
    VipSize(vip, n) :- LbEntry(vip, _, b), var n = count(b) group_by (vip).
    |}

let vip i = Value.bit 32 (Int64.of_int (0x0A000000 + i))
let backend v = Value.bit 32 v

let () =
  let n_lbs = 40 and n_backends = 50 in
  let plans = Netgen.lbs ~n:n_lbs ~backends:n_backends ~seed:9 in
  Printf.printf "scenario: %d load balancers x %d backends\n\n" n_lbs n_backends;

  let engine = Engine.create program in

  (* Cold start. *)
  let t0 = Unix.gettimeofday () in
  let txn = Engine.transaction engine in
  List.iteri
    (fun i (p : Netgen.lb_plan) ->
      Engine.insert txn "LoadBalancer"
        (Row.intern
           [| Value.of_string p.lb_name; vip i;
              Value.VVec (List.map backend p.lb_backends) |]))
    plans;
  ignore (Engine.commit txn);
  Printf.printf "engine cold start: %d entries in %.1f ms (footprint %d tuples)\n"
    (Engine.relation_cardinal engine "LbEntry")
    ((Unix.gettimeofday () -. t0) *. 1e3)
    (Engine.footprint engine);

  let imp = Baseline.Lb_imperative.create () in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i (p : Netgen.lb_plan) ->
      Baseline.Lb_imperative.add_lb imp
        ~vip:(Int64.of_int (0x0A000000 + i))
        ~backends:p.lb_backends)
    plans;
  Printf.printf "imperative cold start: %d entries in %.1f ms (footprint %d tuples)\n\n"
    (Baseline.Lb_imperative.entry_count imp)
    ((Unix.gettimeofday () -. t0) *. 1e3)
    (Baseline.Lb_imperative.footprint imp);

  (* Health-based failover: the genuinely incremental case, where the
     engine shines: one backend dies, only its buckets change. *)
  let victim = List.hd (List.hd plans).Netgen.lb_backends in
  let t0 = Unix.gettimeofday () in
  let deltas =
    Engine.apply engine
      [ ("BackendHealth", Row.intern [| backend victim; Value.VBool false |],
          true) ]
  in
  let changed =
    List.fold_left (fun acc (_, dz) -> acc + Zset.cardinal dz) 0 deltas
  in
  Printf.printf
    "backend %Ld marked unhealthy: %d facts changed in %.0f us (out of %d entries)\n\n"
    victim changed
    ((Unix.gettimeofday () -. t0) *. 1e6)
    (Engine.relation_cardinal engine "LbEntry");

  (* The §2.2 worst case: delete every LB, one transaction each. *)
  print_endline "teardown (one delete per transaction) — the paper's worst case:";
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i (p : Netgen.lb_plan) ->
      ignore
        (Engine.apply engine
           [ ( "LoadBalancer",
               Row.intern
                 [| Value.of_string p.lb_name; vip i;
                    Value.VVec (List.map backend p.lb_backends) |],
               false ) ]))
    plans;
  let engine_teardown = (Unix.gettimeofday () -. t0) *. 1e3 in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i _ ->
      Baseline.Lb_imperative.remove_lb imp ~vip:(Int64.of_int (0x0A000000 + i)))
    plans;
  let imp_teardown = (Unix.gettimeofday () -. t0) *. 1e3 in
  Printf.printf "  incremental engine : %.1f ms\n" engine_teardown;
  Printf.printf "  imperative (C-style): %.2f ms\n" imp_teardown;
  Printf.printf
    "  -> the imperative version wins this shape, as §2.2 reports for OVN;\n\
    \     the engine pays for indexes it maintains but never reuses.\n"
