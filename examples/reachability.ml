(* The paper's §1 motivating example at network scale: maintaining
   forwarding-relevant reachability labels over a changing topology.

   The same computation is run three ways —
     1. the DL engine (3 declarative rules, automatically incremental);
     2. the "tens of lines" full recompute;
     3. the hand-written incremental implementation —
   and the example shows both that they agree and how much work each
   performs per link event.

   Run with:  dune exec examples/reachability.exe *)

open Dl

let program =
  Parser.parse_program_exn
    {|
    input relation Edge(a: int, b: int)
    input relation GivenLabel(n: int, l: string)
    output relation Label(n: int, l: string)
    Label(n, l) :- GivenLabel(n, l).
    Label(n2, l) :- Label(n1, l), Edge(n1, n2).
    |}

let ints l = Row.of_list (List.map Value.of_int l)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e6)

let () =
  let nodes = 400 in
  let edges = Netgen.random_graph ~nodes ~edges:1200 ~seed:3 in
  Printf.printf "topology: %d nodes, %d random links, 4 labelled gateways\n\n"
    nodes (List.length edges);

  (* Engine setup. *)
  let engine = Engine.create program in
  let txn = Engine.transaction engine in
  List.iter (fun (a, b) -> Engine.insert txn "Edge" (ints [ a; b ])) edges;
  List.iter
    (fun g ->
      Engine.insert txn "GivenLabel"
        (Row.intern
           [| Value.of_int g; Value.of_string (Printf.sprintf "gw%d" g) |]))
    [ 0; 1; 2; 3 ];
  let _, cold = time (fun () -> Engine.commit txn) in
  Printf.printf "cold start: %d labels in %.0f us\n"
    (Engine.relation_cardinal engine "Label")
    cold;

  (* Hand-incremental twin. *)
  let incr = Baseline.Label_baseline.Incr.create () in
  List.iter (fun (a, b) -> Baseline.Label_baseline.Incr.add_edge incr a b) edges;
  List.iter
    (fun g ->
      Baseline.Label_baseline.Incr.add_given incr g (Printf.sprintf "gw%d" g))
    [ 0; 1; 2; 3 ];

  (* Link events. *)
  let current_edges = ref edges in
  let gw = [ (0, "gw0"); (1, "gw1"); (2, "gw2"); (3, "gw3") ] in
  let check_agreement () =
    let expected =
      List.sort compare
        (Baseline.Label_baseline.full_recompute ~edges:!current_edges
           ~given:gw)
    in
    let actual =
      List.sort compare
        (List.map
           (fun r ->
             (Int64.to_int (Value.as_int (Row.get r 0)), Value.as_string (Row.get r 1)))
           (Engine.relation_rows engine "Label"))
    in
    let hand = List.sort compare (Baseline.Label_baseline.Incr.labels incr) in
    assert (expected = actual);
    assert (expected = hand)
  in
  let event label apply_engine apply_hand =
    let deltas, t_engine = time apply_engine in
    let (), t_hand = time apply_hand in
    let changed =
      match List.assoc_opt "Label" deltas with
      | Some dz -> Zset.cardinal dz
      | None -> 0
    in
    let (), t_full =
      time (fun () ->
          ignore
            (Baseline.Label_baseline.full_recompute ~edges:!current_edges
               ~given:gw))
    in
    check_agreement ();
    Printf.printf
      "%-28s %5d label changes | engine %7.0f us | hand-incr %7.0f us | full recompute %7.0f us\n"
      label changed t_engine t_hand t_full
  in

  print_endline "\nper-event costs (all three implementations agree):";
  let cut (a, b) =
    current_edges := List.filter (fun e -> e <> (a, b)) !current_edges;
    event
      (Printf.sprintf "cut link %d->%d" a b)
      (fun () -> Engine.apply engine [ ("Edge", ints [ a; b ], false) ])
      (fun () -> Baseline.Label_baseline.Incr.remove_edge incr a b)
  in
  let join (a, b) =
    current_edges := (a, b) :: !current_edges;
    event
      (Printf.sprintf "new link %d->%d" a b)
      (fun () -> Engine.apply engine [ ("Edge", ints [ a; b ], true) ])
      (fun () -> Baseline.Label_baseline.Incr.add_edge incr a b)
  in
  cut (List.nth edges 0);
  cut (List.nth edges 7);
  join (5, 9);
  join (350, 17);
  cut (List.nth edges 100);
  join (17, 350);

  print_endline
    "\nLoC to get here: 3 DL rules vs ~170 lines of hand-written incremental OCaml\n\
     (lib/baseline/label_baseline.ml) vs full recomputation on every event."
