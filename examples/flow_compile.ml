(* The OpenFlow compiler end-to-end: compile the snvs L2 pipeline —
   conditionals and all — into flow tables through a forwarding
   decision diagram, watch shadowed entries disappear, and check the
   compiled artefact against the behavioural switch packet-for-packet.

   Run with:  dune exec examples/flow_compile.exe *)

let mac = P4.Stdhdrs.mac_of_string

let () =
  print_endline "== compiling snvs (If-bearing control flow) ==";
  let sw = P4.Switch.create ~name:"s0" Snvs.p4 in
  (* an access port on VLAN 10, a trunk, and a learned MAC *)
  P4.Switch.insert_entry sw "in_vlan"
    { P4.Entry.matches = [ P4.Entry.MExact 1L; P4.Entry.MExact 0L ];
      priority = 5; action = "set_vlan"; args = [ 10L ] };
  P4.Switch.insert_entry sw "in_vlan"
    { P4.Entry.matches = [ P4.Entry.MExact 2L; P4.Entry.MExact 10L ];
      priority = 0; action = "keep_tag"; args = [] };
  P4.Switch.insert_entry sw "dmac"
    { P4.Entry.matches =
        [ P4.Entry.MExact 10L; P4.Entry.MExact (mac "02:00:00:00:00:01") ];
      priority = 0; action = "forward"; args = [ 2L ] };
  (* the naive per-entry translator rejects snvs's [If (EValid "vlan", ...)] *)
  (match Ofp4.Compile.compile_naive sw with
  | exception Ofp4.Compile.Unsupported msg ->
    Printf.printf "naive backend: Unsupported (%s)\n" msg
  | _ -> assert false);
  let prog = Ofp4.Compile.compile sw in
  Printf.printf "fdd backend:   %d flows over %d tables\n\n"
    (Ofp4.Openflow.flow_count prog) prog.Ofp4.Openflow.n_tables;

  print_endline "the in_vlan table as flows (condition folded in):";
  List.iter
    (fun f -> print_endline ("  " ^ Ofp4.Openflow.flow_to_string f))
    (Ofp4.Openflow.flows_in_table prog 1);

  print_endline "\n== shadowed rules emit nothing ==";
  (* same match as the access port above, outranked: fully shadowed *)
  P4.Switch.insert_entry sw "in_vlan"
    { P4.Entry.matches = [ P4.Entry.MExact 1L; P4.Entry.MExact 0L ];
      priority = 0; action = "drop"; args = [] };
  let with_shadow = Ofp4.Compile.compile sw in
  Printf.printf
    "4 entries installed, still %d flows: the priority-0 duplicate is \
     folded away\n"
    (Ofp4.Openflow.flow_count with_shadow);

  print_endline "\n== the evaluator as differential oracle ==";
  let ev = Ofp4.Eval.of_switch sw with_shadow in
  let show outs =
    if outs = [] then "(dropped)"
    else
      String.concat " "
        (List.map (fun (p, _) -> Printf.sprintf "port %d" p) outs)
  in
  List.iter
    (fun (what, in_port, pkt) ->
      let p4 = P4.Switch.process sw ~in_port pkt in
      let ofp = Ofp4.Eval.process ev ~in_port pkt in
      let key l =
        List.sort compare (List.map (fun (p, o) -> (p, P4.Packet.to_hex o)) l)
      in
      assert (key p4 = key ofp);
      Printf.printf "  %-34s switch: %-12s flows: %s\n" what (show p4)
        (show ofp))
    [ ( "known MAC from access port 1",
        1,
        P4.Stdhdrs.ethernet_frame
          ~dst:(mac "02:00:00:00:00:01")
          ~src:(mac "02:00:00:00:00:02")
          ~ethertype:0x0800L ~payload:"hi" );
      ( "tagged frame on trunk port 2",
        2,
        P4.Stdhdrs.vlan_frame
          ~dst:(mac "02:00:00:00:00:01")
          ~src:(mac "02:00:00:00:00:03")
          ~vid:10L ~ethertype:0x0800L ~payload:"hi" );
      ( "wrong VLAN on trunk port 2",
        2,
        P4.Stdhdrs.vlan_frame
          ~dst:(mac "02:00:00:00:00:01")
          ~src:(mac "02:00:00:00:00:03")
          ~vid:99L ~ethertype:0x0800L ~payload:"hi" ) ];
  print_endline "\nevery line above was asserted equal, byte for byte.";

  print_endline "\n== incremental recompilation (Compile.State) ==";
  (* a single-LPM FIB — the shape the fast path is built for *)
  let fib_prog : P4.Program.t =
    let open P4.Program in
    { name = "fib";
      headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
      parser =
        { start = "s";
          states =
            [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ];
                transition = Accept } ] };
      actions =
        [ { aname = "forward"; params = [ ("port", 16) ];
            body = [ Forward (EParam "port") ] };
          { aname = "drop"; params = []; body = [ Drop ] } ];
      tables =
        [ { tname = "fib";
            keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm } ];
            actions = [ "forward"; "drop" ];
            default_action = ("drop", []); size = 50_000 } ];
      digests = []; counters = []; registers = [];
      ingress = ApplyTable "fib"; egress = Nop }
  in
  let route i len =
    { P4.Entry.matches =
        [ P4.Entry.MLpm
            ( (if len = 32 then Int64.logor 0x0A000000L (Int64.of_int i)
               else Int64.shift_left (Int64.of_int (0xC000 + i)) 8),
              len ) ];
      priority = 0; action = "forward"; args = [ Int64.of_int (1 + (i land 3)) ] }
  in
  let fib = P4.Switch.create ~name:"fib0" fib_prog in
  for i = 0 to 9_999 do
    P4.Switch.insert_entry fib "fib" (route i (if i land 7 = 7 then 24 else 32))
  done;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let _, full_ms = time (fun () -> Ofp4.Compile.compile fib) in
  let st = Ofp4.Compile.State.create fib in
  let fresh = route 20_000 32 in
  let delta, patch_ms =
    time (fun () ->
        Ofp4.Compile.State.apply_delta st [ ("fib", [ (fresh, 1) ]) ])
  in
  Printf.printf
    "10^4-route FIB: full compile %.1f ms, one-route patch %.3f ms\n" full_ms
    patch_ms;
  Printf.printf "the patch is a delta, not a pipeline (+%d ~%d -%d):\n"
    (List.length delta.Ofp4.Openflow.fd_add)
    (List.length delta.Ofp4.Openflow.fd_mod)
    (List.length delta.Ofp4.Openflow.fd_del);
  List.iter
    (fun f -> print_endline ("  + " ^ Ofp4.Openflow.flow_to_string f))
    delta.Ofp4.Openflow.fd_add;
  (* the patched state stays byte-identical to a from-scratch compile *)
  P4.Switch.insert_entry fib "fib" fresh;
  let scratch = Ofp4.Compile.compile fib in
  assert
    (Ofp4.Openflow.dump (Ofp4.Compile.State.flows st)
    = Ofp4.Openflow.dump scratch);
  print_endline "patched pipeline == from-scratch compile, byte for byte."
