(* The OpenFlow compiler end-to-end: compile the snvs L2 pipeline —
   conditionals and all — into flow tables through a forwarding
   decision diagram, watch shadowed entries disappear, and check the
   compiled artefact against the behavioural switch packet-for-packet.

   Run with:  dune exec examples/flow_compile.exe *)

let mac = P4.Stdhdrs.mac_of_string

let () =
  print_endline "== compiling snvs (If-bearing control flow) ==";
  let sw = P4.Switch.create ~name:"s0" Snvs.p4 in
  (* an access port on VLAN 10, a trunk, and a learned MAC *)
  P4.Switch.insert_entry sw "in_vlan"
    { P4.Entry.matches = [ P4.Entry.MExact 1L; P4.Entry.MExact 0L ];
      priority = 5; action = "set_vlan"; args = [ 10L ] };
  P4.Switch.insert_entry sw "in_vlan"
    { P4.Entry.matches = [ P4.Entry.MExact 2L; P4.Entry.MExact 10L ];
      priority = 0; action = "keep_tag"; args = [] };
  P4.Switch.insert_entry sw "dmac"
    { P4.Entry.matches =
        [ P4.Entry.MExact 10L; P4.Entry.MExact (mac "02:00:00:00:00:01") ];
      priority = 0; action = "forward"; args = [ 2L ] };
  (* the naive per-entry translator rejects snvs's [If (EValid "vlan", ...)] *)
  (match Ofp4.Compile.compile_naive sw with
  | exception Ofp4.Compile.Unsupported msg ->
    Printf.printf "naive backend: Unsupported (%s)\n" msg
  | _ -> assert false);
  let prog = Ofp4.Compile.compile sw in
  Printf.printf "fdd backend:   %d flows over %d tables\n\n"
    (Ofp4.Openflow.flow_count prog) prog.Ofp4.Openflow.n_tables;

  print_endline "the in_vlan table as flows (condition folded in):";
  List.iter
    (fun f -> print_endline ("  " ^ Ofp4.Openflow.flow_to_string f))
    (Ofp4.Openflow.flows_in_table prog 1);

  print_endline "\n== shadowed rules emit nothing ==";
  (* same match as the access port above, outranked: fully shadowed *)
  P4.Switch.insert_entry sw "in_vlan"
    { P4.Entry.matches = [ P4.Entry.MExact 1L; P4.Entry.MExact 0L ];
      priority = 0; action = "drop"; args = [] };
  let with_shadow = Ofp4.Compile.compile sw in
  Printf.printf
    "4 entries installed, still %d flows: the priority-0 duplicate is \
     folded away\n"
    (Ofp4.Openflow.flow_count with_shadow);

  print_endline "\n== the evaluator as differential oracle ==";
  let ev = Ofp4.Eval.of_switch sw with_shadow in
  let show outs =
    if outs = [] then "(dropped)"
    else
      String.concat " "
        (List.map (fun (p, _) -> Printf.sprintf "port %d" p) outs)
  in
  List.iter
    (fun (what, in_port, pkt) ->
      let p4 = P4.Switch.process sw ~in_port pkt in
      let ofp = Ofp4.Eval.process ev ~in_port pkt in
      let key l =
        List.sort compare (List.map (fun (p, o) -> (p, P4.Packet.to_hex o)) l)
      in
      assert (key p4 = key ofp);
      Printf.printf "  %-34s switch: %-12s flows: %s\n" what (show p4)
        (show ofp))
    [ ( "known MAC from access port 1",
        1,
        P4.Stdhdrs.ethernet_frame
          ~dst:(mac "02:00:00:00:00:01")
          ~src:(mac "02:00:00:00:00:02")
          ~ethertype:0x0800L ~payload:"hi" );
      ( "tagged frame on trunk port 2",
        2,
        P4.Stdhdrs.vlan_frame
          ~dst:(mac "02:00:00:00:00:01")
          ~src:(mac "02:00:00:00:00:03")
          ~vid:10L ~ethertype:0x0800L ~payload:"hi" );
      ( "wrong VLAN on trunk port 2",
        2,
        P4.Stdhdrs.vlan_frame
          ~dst:(mac "02:00:00:00:00:01")
          ~src:(mac "02:00:00:00:00:03")
          ~vid:99L ~ethertype:0x0800L ~payload:"hi" ) ];
  print_endline "\nevery line above was asserted equal, byte for byte."
