(* Quickstart: the incremental control plane in isolation.

   Write a DL program, feed it transactions, and watch it emit exactly
   the output *changes* — the engine never recomputes the world.

   Run with:  dune exec examples/quickstart.exe *)

open Dl

let program_text =
  {|
  // Management state: network links and per-node policies.
  input relation Link(src: string, dst: string)
  input relation Policy(node: string, tier: string)

  // Which node pairs can talk: reachability over links (recursive!).
  relation Reach(src: string, dst: string)
  Reach(a, b) :- Link(a, b).
  Reach(a, c) :- Reach(a, b), Link(b, c).

  // Forwarding rules: a pair is allowed when both ends share a tier.
  output relation Allowed(src: string, dst: string, tier: string)
  Allowed(a, b, t) :- Reach(a, b), Policy(a, t), Policy(b, t).

  // A per-tier connectivity report using aggregation.
  output relation TierSize(tier: string, pairs: int)
  TierSize(t, n) :- Allowed(a, b, t), var n = count(b) group_by (t).
  |}

let str s = Value.of_string s
let row l = Row.of_list l

let show_deltas label deltas =
  Printf.printf "%s\n" label;
  if deltas = [] then print_endline "  (no changes)"
  else
    List.iter
      (fun (rel, dz) ->
        Zset.iter
          (fun r w ->
            Printf.printf "  %s %s%s\n"
              (if w > 0 then "+" else "-")
              rel (Row.to_string r))
          dz)
      deltas;
  print_newline ()

let () =
  let program = Parser.parse_program_exn program_text in
  let engine = Engine.create program in

  (* Transaction 1: bring up a little network. *)
  let txn = Engine.transaction engine in
  Engine.insert txn "Link" (row [ str "a"; str "b" ]);
  Engine.insert txn "Link" (row [ str "b"; str "c" ]);
  Engine.insert txn "Policy" (row [ str "a"; str "web" ]);
  Engine.insert txn "Policy" (row [ str "c"; str "web" ]);
  show_deltas "== txn 1: links a->b->c, nodes a and c in tier 'web' =="
    (Engine.output_deltas engine (Engine.commit txn));

  (* Transaction 2: a single new link. Note the engine only emits the
     *new* pairs it enables. *)
  let txn = Engine.transaction engine in
  Engine.insert txn "Link" (row [ str "c"; str "d" ]);
  Engine.insert txn "Policy" (row [ str "d"; str "web" ]);
  show_deltas "== txn 2: extend the chain with d =="
    (Engine.output_deltas engine (Engine.commit txn));

  (* Transaction 3: cut the chain in the middle; everything downstream
     is retracted, nothing is recomputed from scratch. *)
  let txn = Engine.transaction engine in
  Engine.delete txn "Link" (row [ str "b"; str "c" ]);
  show_deltas "== txn 3: cut link b->c =="
    (Engine.output_deltas engine (Engine.commit txn));

  Printf.printf "final Allowed relation:\n";
  List.iter
    (fun r -> Printf.printf "  %s\n" (Row.to_string r))
    (List.sort Row.compare (Engine.relation_rows engine "Allowed"))
