(* Fault tolerance across the plane boundaries.

   The controller talks to its planes over typed links
   (lib/transport).  Here the P4Runtime link round-trips every message
   through serialized bytes AND injects deterministic faults — drops,
   duplicates, delays, disconnects — from a seeded PRNG.  The driver
   absorbs them: transient write failures are retried with bounded
   backoff, redelivered digest lists are deduplicated by list_id, and
   a switch that reconnects is fully reconciled (tables dumped over
   the link, diffed against the engine, corrective writes issued).

   Run with:  dune exec examples/fault_tolerance.exe *)

let mac = P4.Stdhdrs.mac_of_string
let bcast = mac "ff:ff:ff:ff:ff:ff"

let frame ~src =
  P4.Stdhdrs.ethernet_frame ~dst:bcast ~src ~ethertype:0x0800L ~payload:"hi"

let metric name = Printf.printf "  %-30s %d\n" name (Obs.counter_value name)

let () =
  print_endline "== deploying snvs over a lossy serialized P4Runtime link ==";
  let d =
    Snvs.deploy
      ~endpoint:
        (Nerpa.Endpoint.faulty_p4 ~seed:42
           (Nerpa.Endpoint.planes ~mgmt:Nerpa.Endpoint.plane_in_process
              ~p4_of:(fun _ -> Nerpa.Endpoint.plane_wire)))
      ()
  in
  let ctl = Option.get (Nerpa.Controller.p4_ctl d.controller "snvs0") in

  print_endline "administrator: adding ports (writes may drop; sync retries)";
  ignore (Snvs.add_port d ~name:"h1" ~port:1 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Snvs.add_port d ~name:"h2" ~port:2 ~mode:"access" ~tag:10 ~trunks:[]);
  ignore (Nerpa.Controller.sync d.controller);

  print_endline "hosts talk; learning digests flow back over the lossy link";
  ignore (P4.Switch.process d.switch ~in_port:1 (frame ~src:(mac "aa:00:00:00:00:01")));
  ignore (P4.Switch.process d.switch ~in_port:2 (frame ~src:(mac "aa:00:00:00:00:02")));
  ignore (Nerpa.Controller.sync d.controller);

  print_endline "the switch goes away mid-operation...";
  Transport.force_disconnect ctl ~down_for:3 ();
  ignore (Snvs.add_port d ~name:"h3" ~port:3 ~mode:"access" ~tag:20 ~trunks:[]);
  (* writes fail Closed while down; each attempt ticks the reconnect
     clock, and the reconnect edge triggers a full reconciliation *)
  ignore (Nerpa.Controller.sync d.controller);
  ignore (Nerpa.Controller.sync d.controller);

  print_endline "...heal the link and settle";
  Transport.heal ctl;
  ignore (Nerpa.Controller.sync d.controller);
  Nerpa.Controller.reconcile d.controller "snvs0";

  Printf.printf "\nfinal switch state: %d in_vlan entries, %d dmac entries\n"
    (P4.Switch.entry_count d.switch "in_vlan")
    (P4.Switch.entry_count d.switch "dmac");
  assert (P4.Switch.entry_count d.switch "in_vlan" = 3);

  print_endline "\nwhat the transport and the driver saw:";
  List.iter metric
    [ "transport.sends"; "transport.errors"; "transport.faults.drops";
      "transport.faults.duplicates"; "transport.faults.delays";
      "transport.faults.disconnects"; "nerpa.retry.count";
      "nerpa.digest.duplicates"; "nerpa.reconcile.count";
      "nerpa.reconcile.corrections" ]
