(* Ad-hoc search for a minimal failing trace of engine-vs-naive. *)
open Dl

let ints l = Row.of_list (List.map Value.of_int l)

let program =
  Parser.parse_program_exn
    {|
    input relation Edge(a: int, b: int)
    input relation Src(n: int)
    output relation Reach(n: int)
    Reach(n) :- Src(n).
    Reach(b) :- Reach(a), Edge(a, b).
    |}

let rels = [ ("Edge", 2); ("Src", 1) ]

let pp_update (rel, row, ins) =
  Printf.sprintf "%s %s %s" (if ins then "+" else "-") rel (Row.to_string row)

let run_trace trace =
  let eng = Engine.create program in
  let current = Hashtbl.create 8 in
  List.iter (fun (r, _) -> Hashtbl.replace current r Row.Set.empty) rels;
  let fail = ref None in
  List.iteri
    (fun ti txn_updates ->
      if !fail = None then begin
        let txn = Engine.transaction eng in
        List.iter
          (fun (rel, row, ins) ->
            if ins then Engine.insert txn rel row else Engine.delete txn rel row;
            let s = Hashtbl.find current rel in
            Hashtbl.replace current rel
              (if ins then Row.Set.add row s else Row.Set.remove row s))
          txn_updates;
        ignore (Engine.commit txn);
        let inputs =
          Hashtbl.fold (fun rel s acc -> (rel, Row.Set.elements s) :: acc) current []
        in
        let oracle = Naive.run program inputs in
        List.iter
          (fun (d : Ast.rel_decl) ->
            let expected =
              List.sort Row.compare (Row.Set.elements (Naive.get oracle d.rname))
            in
            let actual = List.sort Row.compare (Engine.relation_rows eng d.rname) in
            if not (List.equal Row.equal expected actual) && !fail = None then
              fail :=
                Some
                  (Printf.sprintf "txn %d rel %s:\n  expected %s\n  actual   %s" ti
                     d.rname
                     (String.concat " " (List.map Row.to_string expected))
                     (String.concat " " (List.map Row.to_string actual))))
          program.Ast.decls
      end)
    trace;
  !fail

let random_trace rng =
  let n_txn = 1 + Random.State.int rng 6 in
  List.init n_txn (fun _ ->
      let n_up = 1 + Random.State.int rng 4 in
      List.init n_up (fun _ ->
          let rel, arity = List.nth rels (Random.State.int rng (List.length rels)) in
          let row = ints (List.init arity (fun _ -> Random.State.int rng 3)) in
          (rel, row, Random.State.bool rng)))

(* Shrinking: try removing transactions, then updates. *)
let rec shrink trace =
  let candidates =
    List.concat
      [
        List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) trace) trace;
        List.concat
          (List.mapi
             (fun i txn ->
               List.mapi
                 (fun j _ ->
                   List.mapi
                     (fun i' txn' ->
                       if i = i' then List.filteri (fun j' _ -> j' <> j) txn'
                       else txn')
                     trace
                   |> List.filter (fun t -> t <> []))
                 txn)
             trace);
      ]
  in
  match List.find_opt (fun t -> t <> [] && run_trace t <> None) candidates with
  | Some t -> shrink t
  | None -> trace

let () =
  let rng = Random.State.make [| 42 |] in
  let rec search i =
    if i > 200000 then print_endline "no failure found"
    else
      let trace = random_trace rng in
      match run_trace trace with
      | None -> search (i + 1)
      | Some _ ->
        let trace = shrink trace in
        Printf.printf "minimal failing trace (attempt %d):\n" i;
        List.iteri
          (fun ti txn ->
            Printf.printf "  txn %d:\n" ti;
            List.iter (fun u -> Printf.printf "    %s\n" (pp_update u)) txn)
          trace;
        (match run_trace trace with
        | Some msg -> print_endline msg
        | None -> ())
  in
  search 0
