(* The benchmark harness: one reproduction per quantitative claim in
   the paper (see DESIGN.md's experiment index), plus a Bechamel
   micro-benchmark suite over the engine and data-plane primitives.

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- fig3    # one experiment
     dune exec bench/main.exe -- micro   # Bechamel micro-benchmarks

   Absolute numbers differ from the paper's (their substrate was BMv2 +
   the Rust DDlog runtime on a testbed; ours is an in-process
   simulator), so each experiment prints the paper's claim next to the
   measured *shape*. *)

open Dl

let line () = print_endline (String.make 78 '-')

let header title claim =
  line ();
  Printf.printf "%s\n" title;
  Printf.printf "paper: %s\n" claim;
  line ()

let now () = Unix.gettimeofday ()

(* Percentiles come from the shared nearest-rank implementation in Obs;
   the bench-local floor(p*n) variant it replaces was biased one rank
   high (p50 of [1.; 2.] came out as 2.). *)
let summarise (xs : float list) =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int (max 1 n) in
  ( mean,
    Obs.Histogram.percentile_of_sorted a 0.50,
    Obs.Histogram.percentile_of_sorted a 0.99 )

(* ------------------------------------------------------------------ *)
(* FIG3: controller growth vs scattered fragments                      *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "FIG3  OVN-style controller: code size vs scattered OpenFlow fragments"
    "controller LoC and the number of flow fragments grow at the same rate \
     (Fig. 3)";
  Printf.printf "%10s %16s %12s %10s %13s %12s\n" "features" "controller_loc"
    "fragments" "tables" "nerpa_rules" "flows";
  let snaps =
    List.init (List.length Baseline.Frag_controller.catalogue) (fun k ->
        let s = Baseline.Frag_controller.snapshot (k + 1) in
        let prog = Baseline.Frag_controller.materialise (k + 1) in
        Printf.printf "%10d %16d %12d %10d %13d %12d\n" s.features
          s.controller_loc s.fragment_sites s.tables_touched s.nerpa_rules
          (Ofp4.Openflow.flow_count prog);
        s)
  in
  (* Shape check: correlation between feature-code growth and fragment
     growth (the fixed framework cost is excluded, as Fig. 3's y-axes
     both start from the project's birth). *)
  let first = List.hd snaps and last = List.nth snaps (List.length snaps - 1) in
  let framework = 400 in
  let loc_growth =
    float_of_int (last.controller_loc - framework)
    /. float_of_int (first.controller_loc - framework)
  in
  let frag_growth =
    float_of_int last.fragment_sites /. float_of_int first.fragment_sites
  in
  Printf.printf
    "\nshape: feature code grew %.1fx while fragments grew %.1fx — the two \
     curves\ntrack each other as in Fig. 3; the Nerpa encoding needs %d rules \
     vs %d\nimperative lines (%.0fx).\n"
    loc_growth frag_growth last.nerpa_rules last.controller_loc
    (float_of_int last.controller_loc /. float_of_int last.nerpa_rules)

(* ------------------------------------------------------------------ *)
(* EXP-PORTS: §4.3 — 2,000 ports through the full stack                *)
(* ------------------------------------------------------------------ *)

let exp_ports ?(n = 2000) () =
  header
    (Printf.sprintf
       "EXP-PORTS  §4.3 — adding %d ports, OVSDB-write -> P4-entry latency" n)
    "first port 0.013 s, port #2000 0.018 s (~1.4x): incrementality keeps \
     per-port work flat";
  let plans = Netgen.ports ~vlans:16 ~trunk_every:0 ~n () in

  (* Nerpa: the real stack, one OVSDB transaction + sync per port. *)
  let d = Snvs.deploy () in
  let lat_nerpa =
    List.map
      (fun (p : Netgen.port_plan) ->
        let t0 = now () in
        ignore
          (Snvs.add_port d ~name:p.pp_name ~port:p.pp_port ~mode:p.pp_mode
             ~tag:p.pp_tag ~trunks:p.pp_trunks);
        ignore (Nerpa.Controller.sync d.controller);
        (now () -. t0) *. 1e6)
      plans
  in
  assert (P4.Switch.entry_count d.switch "in_vlan" = n);

  (* Baseline: recompute-everything controller, one reconcile per port. *)
  let sw2 = P4.Switch.create Snvs.p4 in
  let inst = Baseline.Snvs_imperative.fresh_installed () in
  let cfg = ref Baseline.Snvs_imperative.empty_config in
  let lat_base =
    List.map
      (fun (p : Netgen.port_plan) ->
        let t0 = now () in
        cfg :=
          { !cfg with
            Baseline.Snvs_imperative.ports =
              { port = p.pp_port; mode = `Access; tag = p.pp_tag; trunks = [] }
              :: !cfg.Baseline.Snvs_imperative.ports };
        ignore (Baseline.Snvs_imperative.reconcile inst sw2 !cfg);
        (now () -. t0) *. 1e6)
      plans
  in

  let show name lats =
    let arr = Array.of_list lats in
    Printf.printf "%s\n" name;
    Printf.printf "  %8s %12s\n" "port#" "latency(us)";
    List.iter
      (fun i ->
        if i <= n then Printf.printf "  %8d %12.1f\n" i arr.(i - 1))
      [ 1; 10; 100; 500; 1000; 1500; 2000 ];
    let mean, p50, p99 = summarise lats in
    let first = List.hd lats and last = List.nth lats (n - 1) in
    (* smooth the endpoints over a small window to damp GC noise *)
    let window l ofs =
      let xs = List.filteri (fun i _ -> i >= ofs && i < ofs + 20) l in
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
    in
    let first_w = window lats 0 and last_w = window lats (n - 20) in
    Printf.printf
      "  first=%.1fus last=%.1fus (windowed %.1f -> %.1f, ratio %.2fx)  \
       mean=%.1f p50=%.1f p99=%.1f\n"
      first last first_w last_w (last_w /. first_w) mean p50 p99;
    (first_w, last_w)
  in
  let _, _ = show "Nerpa (incremental engine):" lat_nerpa in
  let bf, bl = show "Baseline (full recompute per change):" lat_base in
  Printf.printf
    "\nshape: the incremental stack stays near-flat as the paper's 0.013->0.018 s;\n\
     the recompute controller grows ~linearly (%.1fx over the run).\n"
    (bl /. bf)

(* ------------------------------------------------------------------ *)
(* EXP-LOC: §4.3 — the snvs lines-of-code inventory                    *)
(* ------------------------------------------------------------------ *)

let count_file_lines path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  end
  else None

let exp_loc () =
  header "EXP-LOC  §4.3 — snvs artefact sizes"
    "snvs = 350 DDlog (250 rules + 100 generated) + 300 P4 + 5 OVSDB tables \
     + 50 glue; >= 10x less than an incremental imperative implementation";
  let inv = Snvs.loc_inventory () in
  let imperative =
    match
      ( count_file_lines "lib/baseline/snvs_imperative.ml",
        count_file_lines "lib/baseline/label_baseline.ml" )
    with
    | Some a, Some b -> Some (a, b)
    | _ -> None
  in
  Printf.printf "%-38s %12s %12s\n" "artefact" "this repo" "paper";
  Printf.printf "%-38s %12d %12d\n" "hand-written DL rules (lines)" inv.rules_loc 250;
  Printf.printf "%-38s %12d %12d\n" "generated relation declarations" inv.generated_loc 100;
  Printf.printf "%-38s %12d %12d\n" "P4 program (estimated source lines)" inv.p4_loc 300;
  Printf.printf "%-38s %12d %12d\n" "OVSDB tables" inv.ovsdb_tables 5;
  Printf.printf "%-38s %12d %12d\n" "deployment glue (lines)" inv.glue_loc 50;
  let total = inv.rules_loc + inv.generated_loc + inv.p4_loc + inv.glue_loc in
  Printf.printf "%-38s %12d %12d\n" "total" total 700;
  (match imperative with
  | Some (snvs_imp, label_imp) ->
    Printf.printf
      "\nimperative counterparts in this repo: snvs recompute controller = %d \
       lines\n(and it is NOT incremental); the hand-incremental labeller alone \
       is %d lines\nfor what 3 DL rules express — the paper's >=10x gap in \
       miniature.\n"
      snvs_imp label_imp
  | None ->
    print_endline
      "\n(baseline sources not found relative to the working directory; run \
       from the repository root for the imperative comparison)")

(* ------------------------------------------------------------------ *)
(* EXP-LB: §2.2 — the load-balancer worst case                         *)
(* ------------------------------------------------------------------ *)

let lb_program =
  Parser.parse_program_exn
    {|
    input relation LoadBalancer(name: string, vip: bit<32>, backends: vec<bit<32>>)
    output relation LbEntry(vip: bit<32>, bucket: bit<16>, backend: bit<32>)
    LbEntry(vip, bucket, b) :-
      LoadBalancer(_, vip, bs), var b in bs,
      var bucket = bit_slice(hash32(b), 15, 0).
    |}

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let exp_lb ?(n_lbs = 100) ?(n_backends = 100) () =
  header
    (Printf.sprintf
       "EXP-LB  §2.2 — cold start %d LBs x %d backends, then delete each"
       n_lbs n_backends)
    "this shape is a WORST case for automatic incrementality: the DDlog \
     controller took 2x the CPU and 5x the RAM of the C implementation";
  let plans = Netgen.lbs ~n:n_lbs ~backends:n_backends ~seed:4 in
  let vip i = Value.bit 32 (Int64.of_int (0x0A000000 + i)) in

  let base_words = live_words () in
  let engine = Engine.create lb_program in
  let t0 = now () in
  let txn = Engine.transaction engine in
  List.iteri
    (fun i (p : Netgen.lb_plan) ->
      Engine.insert txn "LoadBalancer"
        (Row.intern [| Value.of_string p.lb_name; vip i;
           Value.VVec (List.map (Value.bit 32) p.lb_backends) |]))
    plans;
  ignore (Engine.commit txn);
  let eng_cold = (now () -. t0) *. 1e3 in
  let eng_words = live_words () - base_words in
  let eng_tuples = Engine.footprint engine in
  let t0 = now () in
  List.iteri
    (fun i (p : Netgen.lb_plan) ->
      ignore
        (Engine.apply engine
           [ ( "LoadBalancer",
               (Row.intern [| Value.of_string p.lb_name; vip i;
                  Value.VVec (List.map (Value.bit 32) p.lb_backends) |]),
               false ) ]))
    plans;
  let eng_teardown = (now () -. t0) *. 1e3 in

  let base_words2 = live_words () in
  let imp = Baseline.Lb_imperative.create () in
  let t0 = now () in
  List.iteri
    (fun i (p : Netgen.lb_plan) ->
      Baseline.Lb_imperative.add_lb imp
        ~vip:(Int64.of_int (0x0A000000 + i))
        ~backends:p.lb_backends)
    plans;
  let imp_cold = (now () -. t0) *. 1e3 in
  let imp_words = live_words () - base_words2 in
  let imp_tuples = Baseline.Lb_imperative.footprint imp in
  let t0 = now () in
  List.iteri
    (fun i _ ->
      Baseline.Lb_imperative.remove_lb imp ~vip:(Int64.of_int (0x0A000000 + i)))
    plans;
  let imp_teardown = (now () -. t0) *. 1e3 in

  Printf.printf "%-28s %16s %16s %10s\n" "" "incremental" "imperative" "ratio";
  let row name a b =
    Printf.printf "%-28s %16.2f %16.2f %9.1fx\n" name a b (a /. b)
  in
  row "cold start (ms)" eng_cold imp_cold;
  row "teardown (ms)" eng_teardown imp_teardown;
  row "CPU total (ms)" (eng_cold +. eng_teardown) (imp_cold +. imp_teardown);
  row "live heap (words)" (float_of_int eng_words) (float_of_int imp_words);
  row "stored tuples" (float_of_int eng_tuples) (float_of_int imp_tuples);
  Printf.printf
    "\nshape: the imperative controller wins this benchmark on both CPU and \
     RAM,\nreproducing the paper's observation (2x CPU / 5x RAM there).\n"

(* ------------------------------------------------------------------ *)
(* EXP-EBAY: §2.2 — incremental processing vs recompute                *)
(* ------------------------------------------------------------------ *)

let exp_incr ?(base = 512) ?(changes = 200) () =
  header
    (Printf.sprintf
       "EXP-EBAY  §2.2 — %d small config changes on a %d-port network" changes
       base)
    "eBay's incremental ovn-controller cut latency 3x and CPU cost 20x in \
     production";
  let stream = Netgen.change_stream ~base ~n:changes ~seed:5 in

  (* Incremental: the Nerpa stack. *)
  let d = Snvs.deploy () in
  List.iter
    (fun (p : Netgen.port_plan) ->
      ignore
        (Snvs.add_port d ~name:p.pp_name ~port:p.pp_port ~mode:p.pp_mode
           ~tag:p.pp_tag ~trunks:p.pp_trunks))
    (Netgen.ports ~vlans:16 ~trunk_every:0 ~n:base ());
  ignore (Nerpa.Controller.sync d.controller);
  let apply_nerpa (c : Netgen.change) =
    match c with
    | Netgen.AddPort p ->
      ignore
        (Snvs.add_port d ~name:p.pp_name ~port:p.pp_port ~mode:p.pp_mode
           ~tag:p.pp_tag ~trunks:p.pp_trunks)
    | Netgen.DelPort name -> Snvs.del_port d ~name
    | Netgen.AddAcl { prio; src; dst; allow } ->
      ignore
        (Snvs.add_acl d ~priority:prio ~src ~src_mask:(-1L) ~dst ~dst_mask:(-1L)
           ~allow)
    | Netgen.DelAcl prio ->
      ignore
        (Ovsdb.Db.transact_exn d.db
           [ Ovsdb.Db.Delete
               { table = "Acl";
                 where =
                   [ Ovsdb.Db.eq "priority"
                       (Ovsdb.Datum.integer (Int64.of_int prio)) ] } ])
    | Netgen.SetMirror { select_port; output_port } ->
      ignore
        (Ovsdb.Db.transact_exn d.db
           [ Ovsdb.Db.Delete { table = "Mirror"; where = [] };
             Ovsdb.Db.Insert
               { table = "Mirror";
                 row =
                   [ ("name", Ovsdb.Datum.string "m");
                     ("select_port",
                      Ovsdb.Datum.integer (Int64.of_int select_port));
                     ("output_port",
                      Ovsdb.Datum.integer (Int64.of_int output_port)) ];
                 uuid = None } ])
  in
  let t_all0 = now () in
  let lat_nerpa =
    List.map
      (fun c ->
        let t0 = now () in
        apply_nerpa c;
        ignore (Nerpa.Controller.sync d.controller);
        (now () -. t0) *. 1e6)
      stream
  in
  let cpu_nerpa = (now () -. t_all0) *. 1e3 in

  (* Recompute: same stream against the full-recompute controller. *)
  let sw2 = P4.Switch.create Snvs.p4 in
  let inst = Baseline.Snvs_imperative.fresh_installed () in
  let cfg = ref Baseline.Snvs_imperative.empty_config in
  List.iter
    (fun (p : Netgen.port_plan) ->
      cfg :=
        { !cfg with
          Baseline.Snvs_imperative.ports =
            { port = p.pp_port; mode = `Access; tag = p.pp_tag; trunks = [] }
            :: !cfg.Baseline.Snvs_imperative.ports })
    (Netgen.ports ~vlans:16 ~trunk_every:0 ~n:base ());
  ignore (Baseline.Snvs_imperative.reconcile inst sw2 !cfg);
  let apply_base (c : Netgen.change) =
    let open Baseline.Snvs_imperative in
    match c with
    | Netgen.AddPort p ->
      cfg :=
        { !cfg with
          ports =
            { port = p.pp_port; mode = `Access; tag = p.pp_tag; trunks = [] }
            :: !cfg.ports }
    | Netgen.DelPort name ->
      (* names encode the port number *)
      let num = int_of_string (String.sub name 5 (String.length name - 5)) in
      cfg := { !cfg with ports = List.filter (fun p -> p.port <> num) !cfg.ports }
    | Netgen.AddAcl { prio; src; dst; allow } ->
      cfg :=
        { !cfg with
          acls =
            { prio; src; src_mask = -1L; dst; dst_mask = -1L; allow }
            :: !cfg.acls }
    | Netgen.DelAcl prio ->
      cfg := { !cfg with acls = List.filter (fun a -> a.prio <> prio) !cfg.acls }
    | Netgen.SetMirror { select_port; output_port } ->
      cfg := { !cfg with mirrors = [ { select_port; output_port } ] }
  in
  let t_all0 = now () in
  let lat_base =
    List.map
      (fun c ->
        let t0 = now () in
        apply_base c;
        ignore (Baseline.Snvs_imperative.reconcile inst sw2 !cfg);
        (now () -. t0) *. 1e6)
      stream
  in
  let cpu_base = (now () -. t_all0) *. 1e3 in

  let m1, p501, p991 = summarise lat_nerpa in
  let m2, p502, p992 = summarise lat_base in
  Printf.printf "%-28s %14s %14s %10s\n" "" "incremental" "recompute" "ratio";
  Printf.printf "%-28s %14.1f %14.1f %9.1fx\n" "mean latency (us)" m1 m2 (m2 /. m1);
  Printf.printf "%-28s %14.1f %14.1f %9.1fx\n" "p50 latency (us)" p501 p502
    (p502 /. p501);
  Printf.printf "%-28s %14.1f %14.1f %9.1fx\n" "p99 latency (us)" p991 p992
    (p992 /. p991);
  Printf.printf "%-28s %14.1f %14.1f %9.1fx\n" "total CPU (ms)" cpu_nerpa cpu_base
    (cpu_base /. cpu_nerpa);
  Printf.printf
    "\nshape: incremental processing wins by the same order the paper cites \
     (3x latency,\n20x CPU at eBay); the gap widens with network size (see \
     'robotron').\n"

(* ------------------------------------------------------------------ *)
(* EXP-REACH: §1 — the labelling problem three ways                    *)
(* ------------------------------------------------------------------ *)

let reach_program =
  Parser.parse_program_exn
    {|
    input relation Edge(a: int, b: int)
    input relation GivenLabel(n: int, l: string)
    output relation Label(n: int, l: string)
    Label(n, l) :- GivenLabel(n, l).
    Label(n2, l) :- Label(n1, l), Edge(n1, n2).
    |}

let exp_reach ?(nodes = 2000) ?(ops = 200) () =
  header
    (Printf.sprintf
       "EXP-REACH  §1 — incremental graph labelling (%d nodes, %d updates)"
       nodes ops)
    "full recompute is tens of lines but O(graph) per change; the \
     hand-incremental version took thousands of lines and several releases \
     to debug";
  let ints l = Row.of_list (List.map Value.of_int l) in
  (* A backbone with leaf fan-out: the realistic shape for this claim —
     most changes are edge churn at the leaves (hosts and access links
     coming and going), whose label cones are tiny compared to the
     network.  Cutting the backbone itself would change O(n) labels, a
     case where *no* incremental algorithm can beat recomputation. *)
  let backbone = nodes / 10 in
  let edges =
    Netgen.chain backbone
    @ List.concat
        (List.init (nodes - backbone) (fun i ->
             [ (i mod backbone, backbone + i) ]))
  in
  let gw = [ (0, "gw") ] in
  let engine = Engine.create reach_program in
  let txn = Engine.transaction engine in
  List.iter (fun (a, b) -> Engine.insert txn "Edge" (ints [ a; b ])) edges;
  List.iter
    (fun (n, l) ->
      Engine.insert txn "GivenLabel" (Row.intern [| Value.of_int n; Value.of_string l |]))
    gw;
  ignore (Engine.commit txn);
  let incr = Baseline.Label_baseline.Incr.create () in
  List.iter (fun (a, b) -> Baseline.Label_baseline.Incr.add_edge incr a b) edges;
  List.iter (fun (n, l) -> Baseline.Label_baseline.Incr.add_given incr n l) gw;

  let r = Random.State.make [| 13 |] in
  let current = ref edges in
  (* Leaf churn: connect and disconnect leaf nodes. *)
  let updates =
    List.init ops (fun _ ->
        let leaf = backbone + Random.State.int r (nodes - backbone) in
        let b = Random.State.int r backbone in
        let e = (b, leaf) in
        if List.mem e !current then begin
          current := List.filter (fun e' -> e' <> e) !current;
          Some (e, false)
        end
        else begin
          current := e :: !current;
          Some (e, true)
        end)
    |> List.filter_map Fun.id
  in
  let t_eng = ref 0.0 and t_hand = ref 0.0 and t_full = ref 0.0 in
  let lat_eng = ref [] and lat_full = ref [] in
  let replay = ref edges in
  List.iter
    (fun ((a, b), ins) ->
      replay :=
        if ins then (a, b) :: !replay
        else List.filter (fun e -> e <> (a, b)) !replay;
      let t0 = now () in
      ignore (Engine.apply engine [ ("Edge", ints [ a; b ], ins) ]);
      let dt = now () -. t0 in
      t_eng := !t_eng +. dt;
      lat_eng := dt *. 1e6 :: !lat_eng;
      let t0 = now () in
      if ins then Baseline.Label_baseline.Incr.add_edge incr a b
      else Baseline.Label_baseline.Incr.remove_edge incr a b;
      t_hand := !t_hand +. (now () -. t0);
      let t0 = now () in
      ignore (Baseline.Label_baseline.full_recompute ~edges:!replay ~given:gw);
      let dt = now () -. t0 in
      t_full := !t_full +. dt;
      lat_full := dt *. 1e6 :: !lat_full)
    updates;
  (* cross-check all three *)
  let expected =
    List.sort compare
      (Baseline.Label_baseline.full_recompute ~edges:!replay ~given:gw)
  in
  let actual =
    List.sort compare
      (List.map
         (fun row ->
           (Int64.to_int (Value.as_int (Row.get row 0)), Value.as_string (Row.get row 1)))
         (Engine.relation_rows engine "Label"))
  in
  assert (expected = actual);
  assert (expected = List.sort compare (Baseline.Label_baseline.Incr.labels incr));
  let me, _, pe = summarise !lat_eng in
  let mf, _, pf = summarise !lat_full in
  Printf.printf "%-30s %12s %12s %12s\n" "" "DL engine" "hand-incr"
    "full recompute";
  Printf.printf "%-30s %12.0f %12.0f %12.0f\n" "total CPU (ms) for updates"
    (!t_eng *. 1e3) (!t_hand *. 1e3) (!t_full *. 1e3);
  Printf.printf "%-30s %12.0f %12s %12.0f\n" "mean latency (us)" me "-" mf;
  Printf.printf "%-30s %12.0f %12s %12.0f\n" "p99 latency (us)" pe "-" pf;
  Printf.printf "%-30s %12s %12s %12s\n" "lines of code" "3 rules" "~170" "~30";
  Printf.printf
    "\nshape: both incremental versions beat recompute (engine %.1fx, \
     hand-written %.1fx CPU)\non leaf-churn workloads; all three outputs \
     verified identical, and only the DL\nversion is 3 lines long.\n"
    (!t_full /. !t_eng) (!t_full /. !t_hand)

(* ------------------------------------------------------------------ *)
(* EXP-ROBOTRON: §2.1 — work proportional to the change                *)
(* ------------------------------------------------------------------ *)

let exp_robotron () =
  header
    "EXP-ROBOTRON  §2.1 — a fixed dozen config changes vs network size"
    "Robotron devices see ~a dozen changes per week; incremental work should \
     scale with the change, not the network";
  Printf.printf "%12s %22s %22s %10s\n" "ports" "incremental (ms/batch)"
    "recompute (ms/batch)" "ratio";
  List.iter
    (fun base ->
      (* incremental stack *)
      let d = Snvs.deploy () in
      List.iter
        (fun (p : Netgen.port_plan) ->
          ignore
            (Snvs.add_port d ~name:p.pp_name ~port:p.pp_port ~mode:p.pp_mode
               ~tag:p.pp_tag ~trunks:p.pp_trunks))
        (Netgen.ports ~vlans:16 ~trunk_every:0 ~n:base ());
      ignore (Nerpa.Controller.sync d.controller);
      let t0 = now () in
      for i = 0 to 11 do
        ignore
          (Snvs.add_port d
             ~name:(Printf.sprintf "chg%d" i)
             ~port:(base + 10 + i) ~mode:"access" ~tag:(10 + (i mod 8))
             ~trunks:[]);
        ignore (Nerpa.Controller.sync d.controller)
      done;
      let t_inc = (now () -. t0) *. 1e3 in
      (* recompute baseline *)
      let sw2 = P4.Switch.create Snvs.p4 in
      let inst = Baseline.Snvs_imperative.fresh_installed () in
      let mk_ports n =
        List.map
          (fun (p : Netgen.port_plan) ->
            { Baseline.Snvs_imperative.port = p.pp_port; mode = `Access;
              tag = p.pp_tag; trunks = [] })
          (Netgen.ports ~vlans:16 ~trunk_every:0 ~n ())
      in
      let cfg =
        ref { Baseline.Snvs_imperative.empty_config with ports = mk_ports base }
      in
      ignore (Baseline.Snvs_imperative.reconcile inst sw2 !cfg);
      let t0 = now () in
      for i = 0 to 11 do
        cfg :=
          { !cfg with
            Baseline.Snvs_imperative.ports =
              { port = base + 10 + i; mode = `Access; tag = 10 + (i mod 8);
                trunks = [] }
              :: !cfg.Baseline.Snvs_imperative.ports };
        ignore (Baseline.Snvs_imperative.reconcile inst sw2 !cfg)
      done;
      let t_rec = (now () -. t0) *. 1e3 in
      Printf.printf "%12d %22.2f %22.2f %9.1fx\n" base t_inc t_rec (t_rec /. t_inc))
    [ 128; 256; 512; 1024; 2048 ];
  Printf.printf
    "\nshape: the incremental column stays ~flat as the network grows; the \
     recompute\ncolumn grows linearly — change-proportional work, as §2.1 \
     demands.\n"

(* ------------------------------------------------------------------ *)
(* ABLATION: the engine's design choices                               *)
(* ------------------------------------------------------------------ *)

let exp_ablation ?(nodes = 1500) ?(ops = 100) () =
  header "ABLATION  engine design choices: join planner and hash indexes"
    "(design-choice evidence for DESIGN.md, not a paper table)";
  let ints l = Row.of_list (List.map Value.of_int l) in
  let backbone = nodes / 10 in
  let edges =
    Netgen.chain backbone
    @ List.concat
        (List.init (nodes - backbone) (fun i ->
             [ (i mod backbone, backbone + i) ]))
  in
  let r = Random.State.make [| 21 |] in
  let updates =
    List.init ops (fun _ ->
        let leaf = backbone + Random.State.int r (nodes - backbone) in
        let b = Random.State.int r backbone in
        ((b, leaf), Random.State.bool r))
  in
  let run ~planner ~use_indexes =
    let engine = Engine.create ~planner ~use_indexes reach_program in
    let t0 = now () in
    let txn = Engine.transaction engine in
    List.iter (fun (a, b) -> Engine.insert txn "Edge" (ints [ a; b ])) edges;
    Engine.insert txn "GivenLabel" (Row.intern [| Value.of_int 0; Value.of_string "g" |]);
    ignore (Engine.commit txn);
    let cold = (now () -. t0) *. 1e3 in
    let t0 = now () in
    List.iter
      (fun ((a, b), ins) ->
        ignore (Engine.apply engine [ ("Edge", ints [ a; b ], ins) ]))
      updates;
    let upd = (now () -. t0) *. 1e3 in
    (cold, upd, Engine.relation_cardinal engine "Label")
  in
  Printf.printf "%-34s %14s %16s\n" "configuration"
    "cold start (ms)" "updates (ms)";
  let full = run ~planner:true ~use_indexes:true in
  let noplan = run ~planner:false ~use_indexes:true in
  let noidx = run ~planner:true ~use_indexes:false in
  let show name (cold, upd, card) =
    Printf.printf "%-34s %14.1f %16.1f\n" name cold upd;
    card
  in
  let c1 = show "full engine" full in
  let c2 = show "  - without join planner" noplan in
  let c3 = show "  - without hash indexes" noidx in
  assert (c1 = c2 && c2 = c3);
  let _, u1, _ = full and _, u2, _ = noplan and _, u3, _ = noidx in
  Printf.printf
    "\nall three configurations computed identical results; the planner buys      %.1fx\nand indexes %.1fx on this workload's update stream.\n"
    (u2 /. u1) (u3 /. u1);
  (* A re-derivation-heavy workload: deletions whose DRed phase issues
     point queries with partially bound heads — where join order is the
     difference between O(1) and O(labels) per query. *)
  let chain = 800 in
  let chain_edges = Netgen.chain chain in
  let run_chain ~planner =
    let engine = Engine.create ~planner reach_program in
    let txn = Engine.transaction engine in
    List.iter (fun (a, b) -> Engine.insert txn "Edge" (ints [ a; b ])) chain_edges;
    (* a parallel shortcut lattice so deleted facts re-derive *)
    List.iter
      (fun i -> Engine.insert txn "Edge" (ints [ i; i + 1 ]))
      [];
    List.iter
      (fun i ->
        if i + 2 < chain then Engine.insert txn "Edge" (ints [ i; i + 2 ]))
      (List.init (chain - 2) (fun i -> i));
    Engine.insert txn "GivenLabel" (Row.intern [| Value.of_int 0; Value.of_string "g" |]);
    ignore (Engine.commit txn);
    let t0 = now () in
    List.iter
      (fun i ->
        ignore (Engine.apply engine [ ("Edge", ints [ i; i + 1 ], false) ]);
        ignore (Engine.apply engine [ ("Edge", ints [ i; i + 1 ], true) ]))
      [ 100; 250; 400; 550; 700 ];
    (now () -. t0) *. 1e3
  in
  let with_p = run_chain ~planner:true in
  let without_p = run_chain ~planner:false in
  Printf.printf
    "re-derivation-heavy deletions (800-node lattice): planner on %.1f ms,\n     planner off %.1f ms (%.1fx)\n"
    with_p without_p (without_p /. with_p)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "MICRO  Bechamel micro-benchmarks of the substrate primitives"
    "(engine and data-plane building blocks; not a paper table)";
  let open Bechamel in
  let open Toolkit in
  (* engine with a medium join workload *)
  let join_engine () =
    let p =
      Parser.parse_program_exn
        {|
        input relation R(x: int, y: int)
        input relation S(y: int, z: int)
        output relation T(x: int, z: int)
        T(x, z) :- R(x, y), S(y, z).
        |}
    in
    let e = Engine.create p in
    let txn = Engine.transaction e in
    for i = 0 to 999 do
      Engine.insert txn "R"
        (Row.intern [| Value.of_int i; Value.of_int (i mod 100) |]);
      Engine.insert txn "S"
        (Row.intern [| Value.of_int (i mod 100); Value.of_int i |])
    done;
    ignore (Engine.commit txn);
    e
  in
  let e_join = join_engine () in
  let i_join = ref 10_000 in
  let reach_engine () =
    let e = Engine.create reach_program in
    let txn = Engine.transaction e in
    List.iter
      (fun (a, b) ->
        Engine.insert txn "Edge" (Row.intern [| Value.of_int a; Value.of_int b |]))
      (Netgen.chain 500);
    Engine.insert txn "GivenLabel" (Row.intern [| Value.of_int 0; Value.of_string "g" |]);
    ignore (Engine.commit txn);
    e
  in
  let e_reach = reach_engine () in
  let i_reach = ref 1_000 in
  let zs =
    Zset.of_list
      (List.init 500 (fun i -> ((Row.intern [| Value.of_int i |]), (i mod 3) - 1)))
  in
  let pkt =
    P4.Stdhdrs.vlan_frame ~dst:1L ~src:2L ~vid:10L ~ethertype:0x0800L
      ~payload:"hello world"
  in
  let sw_parse = P4.Switch.create Snvs.p4 in
  let tests =
    [
      Test.make ~name:"zset.union(500)"
        (Staged.stage (fun () -> ignore (Zset.union zs zs)));
      Test.make ~name:"engine: 1-row txn through a join"
        (Staged.stage (fun () ->
             incr i_join;
             let i = !i_join in
             ignore
               (Engine.apply e_join
                  [ ("R", (Row.intern [| Value.of_int i; Value.of_int (i mod 100) |]), true) ]);
             ignore
               (Engine.apply e_join
                  [ ("R", (Row.intern [| Value.of_int i; Value.of_int (i mod 100) |]), false) ])));
      Test.make ~name:"engine: extend+retract a 500-chain"
        (Staged.stage (fun () ->
             incr i_reach;
             let i = !i_reach in
             ignore
               (Engine.apply e_reach
                  [ ("Edge", (Row.intern [| Value.of_int 499; Value.of_int i |]), true) ]);
             ignore
               (Engine.apply e_reach
                  [ ("Edge", (Row.intern [| Value.of_int 499; Value.of_int i |]), false) ])));
      Test.make ~name:"switch: parse+pipeline+deparse"
        (Staged.stage (fun () ->
             ignore (P4.Switch.process sw_parse ~in_port:1 pkt)));
      Test.make ~name:"ovsdb: insert+delete txn"
        (let db = Ovsdb.Db.create Snvs.schema in
         let i = ref 0 in
         Staged.stage (fun () ->
             incr i;
             let name = Printf.sprintf "bench%d" !i in
             ignore
               (Ovsdb.Db.transact_exn db
                  [ Ovsdb.Db.Insert
                      { table = "Switch";
                        row = [ ("name", Ovsdb.Datum.string name) ];
                        uuid = None };
                    Ovsdb.Db.Delete
                      { table = "Switch";
                        where = [ Ovsdb.Db.eq "name" (Ovsdb.Datum.string name) ] } ])));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    results
  in
  List.iter
    (fun t ->
      let results = benchmark (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ t ]) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-44s %12.0f ns/op\n" name est
          | _ -> Printf.printf "%-44s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* OBS-OVERHEAD: cost of the observability layer on the commit path    *)
(* ------------------------------------------------------------------ *)

let overhead_program =
  Parser.parse_program_exn
    {|
    input relation R(x: int, y: int)
    input relation S(y: int, z: int)
    output relation T(x: int, z: int)
    T(x, z) :- R(x, y), S(y, z).
    |}

(* Verifies the ISSUE 1 acceptance criterion: with collection disabled,
   every instrumentation point is a single branch, so the commit path
   must cost < 5% extra.  An uninstrumented build no longer exists to
   A/B against, so the check is two-pronged:
   - measure the per-point cost of a *disabled* counter/span directly
     and bound the commit-path overhead as points * cost / commit time;
   - report the enabled-vs-disabled commit timing for context (that
     difference is the cost of *enabled* collection, which may be
     larger — it reads the clock). *)
let obs_overhead () =
  header "OBS-OVERHEAD  observability cost on the engine commit path"
    "(ISSUE 1 acceptance: disabled instrumentation < 5% of a commit)";
  let commit_time enabled n =
    Obs.set_enabled enabled;
    let e = Engine.create overhead_program in
    let txn = Engine.transaction e in
    for i = 0 to 499 do
      Engine.insert txn "R" (Row.intern [| Value.of_int i; Value.of_int (i mod 50) |]);
      Engine.insert txn "S" (Row.intern [| Value.of_int (i mod 50); Value.of_int i |])
    done;
    ignore (Engine.commit txn);
    let t0 = now () in
    for i = 0 to n - 1 do
      let row = (Row.intern [| Value.of_int (1000 + i); Value.of_int (i mod 50) |]) in
      ignore (Engine.apply e [ ("R", row, true) ]);
      ignore (Engine.apply e [ ("R", row, false) ])
    done;
    let dt = now () -. t0 in
    Obs.set_enabled true;
    dt /. float_of_int (2 * n)
  in
  ignore (commit_time true 1000) (* warm up *);
  let t_on = commit_time true 10_000 in
  let t_off = commit_time false 10_000 in
  (* Direct cost of one disabled instrumentation point. *)
  let probe = Obs.Counter.create "bench.overhead.probe" in
  Obs.set_enabled false;
  let m = 10_000_000 in
  let t0 = now () in
  for _ = 1 to m do
    Obs.Counter.incr probe
  done;
  let per_point = (now () -. t0) /. float_of_int m in
  Obs.set_enabled true;
  (* Instrumentation points a 1-stratum commit crosses: the commit
     histogram and counters, the per-stratum span, and the controller-
     facing counters — round generously upward. *)
  let points = 16 in
  let bound = float_of_int points *. per_point /. t_off in
  Printf.printf "commit (collection enabled):     %8.2f us\n" (t_on *. 1e6);
  Printf.printf "commit (collection disabled):    %8.2f us\n" (t_off *. 1e6);
  Printf.printf "disabled instrumentation point:  %8.2f ns\n" (per_point *. 1e9);
  Printf.printf "disabled overhead bound (%d pts): %7.3f %%\n" points
    (bound *. 100.0);
  let pass = bound < 0.05 in
  Printf.printf "%s: disabled observability costs %s5%% of the commit path\n"
    (if pass then "PASS" else "FAIL")
    (if pass then "< " else ">= ");
  pass

(* ------------------------------------------------------------------ *)
(* EXP-PARALLEL: PR 4 — domain-pool scaling                            *)
(* ------------------------------------------------------------------ *)

(* A wide program whose first dependency layer holds five independent
   derived relations, so a parallel commit has real fan-out (the
   recursive reach program has a single recursive stratum and thus no
   layer parallelism — it is included as the honest worst case). *)
let wide_program =
  Parser.parse_program_exn
    {|
    input relation E(x: int, y: int)
    output relation J2(x: int, z: int)
    J2(x, z) :- E(x, y), E(y, z).
    output relation J3(x: int, w: int)
    J3(x, w) :- E(x, y), E(y, z), E(z, w).
    output relation Deg(x: int, n: int)
    Deg(x, n) :- E(x, y), var n = count(y) group_by (x).
    output relation Rev(y: int, x: int)
    Rev(y, x) :- E(x, y).
    output relation Sym(x: int, y: int)
    Sym(x, y) :- E(x, y), E(y, x).
    |}

(* Bulk-load [rows] edges, then time [ops] insert/delete edge pairs. *)
let bench_wide_churn ?pool ~rows ~ops () =
  let engine = Engine.create ?pool wide_program in
  let txn = Engine.transaction engine in
  for i = 0 to rows - 1 do
    Engine.insert txn "E"
      (Row.intern [| Value.of_int i; Value.of_int (i * 7 mod rows) |])
  done;
  ignore (Engine.commit txn);
  let t0 = now () in
  for i = 0 to ops - 1 do
    let row = Row.intern [| Value.of_int (rows + i); Value.of_int (i mod 997) |] in
    ignore (Engine.apply engine [ ("E", row, true) ]);
    ignore (Engine.apply engine [ ("E", row, false) ])
  done;
  (now () -. t0) *. 1e3

(* The commit_reach_5000 churn with an optional pool. *)
let bench_reach_churn ?pool ~nodes ~ops () =
  let ints l = Row.of_list (List.map Value.of_int l) in
  let backbone = nodes / 10 in
  let edges =
    Netgen.chain backbone
    @ List.concat
        (List.init (nodes - backbone) (fun i -> [ (i mod backbone, backbone + i) ]))
  in
  let engine = Engine.create ?pool reach_program in
  let txn = Engine.transaction engine in
  List.iter (fun (a, b) -> Engine.insert txn "Edge" (ints [ a; b ])) edges;
  Engine.insert txn "GivenLabel"
    (Row.intern [| Value.of_int 0; Value.of_string "g" |]);
  ignore (Engine.commit txn);
  let r = Random.State.make [| 2025 |] in
  let t0 = now () in
  for _ = 1 to ops do
    let leaf = backbone + Random.State.int r (nodes - backbone) in
    let b = Random.State.int r backbone in
    ignore (Engine.apply engine [ ("Edge", ints [ b; leaf ], true) ]);
    ignore (Engine.apply engine [ ("Edge", ints [ b; leaf ], false) ])
  done;
  (now () -. t0) *. 1e3

(* A 16-switch fleet driven through port config and digest floods: the
   parallel driver's per-switch polls, write batches and broadcasts are
   the work being scaled here. *)
let bench_fleet_sync ?pool ~switches:nsw ~ports () =
  let db = Ovsdb.Db.create Snvs.schema in
  let sws =
    List.init nsw (fun i ->
        let name = Printf.sprintf "sw%02d" i in
        (name, P4.Switch.create ~name Snvs.p4))
  in
  let controller =
    Nerpa.Controller.create
      ~digest_replace:[ ("learned_mac", [ "vlan"; "mac" ]) ]
      ?pool ~db ~p4:Snvs.p4 ~rules:Snvs.rules ~switches:sws ()
  in
  let t0 = now () in
  List.iter
    (fun (p : Netgen.port_plan) ->
      ignore
        (Ovsdb.Db.insert_exn db "Port"
           [ ("name", Ovsdb.Datum.string p.pp_name);
             ("port", Ovsdb.Datum.integer (Int64.of_int p.pp_port));
             ("mode", Ovsdb.Datum.string p.pp_mode);
             ("tag", Ovsdb.Datum.integer (Int64.of_int p.pp_tag));
             ( "trunks",
               Ovsdb.Datum.set
                 (List.map
                    (fun v -> Ovsdb.Atom.Integer (Int64.of_int v))
                    p.pp_trunks) ) ]);
      ignore (Nerpa.Controller.sync controller))
    (Netgen.ports ~vlans:16 ~trunk_every:0 ~n:ports ());
  (* MAC learning digests from half the fleet, each triggering a
     broadcast write to every switch. *)
  List.iteri
    (fun i (_, sw) ->
      if i < nsw / 2 then begin
        ignore
          (P4.Switch.process sw ~in_port:1
             (P4.Stdhdrs.ethernet_frame ~dst:0xFFFFFFFFFFFFL
                ~src:(Int64.of_int (0xA0000 + i))
                ~ethertype:0x1234L ~payload:"x"));
        ignore (Nerpa.Controller.sync controller)
      end)
    sws;
  (now () -. t0) *. 1e3

let parallel_domain_counts = [ 1; 2; 4; 8 ]

(* One row per domain count (domains = pool workers + the submitting
   domain, so domains=1 means pool size 0, the sequential fallback). *)
let measure_parallel () =
  let with_size size f =
    if size = 0 then f None
    else begin
      let pool = Pool.create ~size () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f (Some pool))
    end
  in
  List.map
    (fun domains ->
      let size = domains - 1 in
      let wide =
        with_size size (fun pool -> bench_wide_churn ?pool ~rows:4000 ~ops:400 ())
      in
      let reach =
        with_size size (fun pool ->
            bench_reach_churn ?pool ~nodes:5000 ~ops:400 ())
      in
      let fleet =
        with_size size (fun pool ->
            bench_fleet_sync ?pool ~switches:16 ~ports:64 ())
      in
      (domains, wide, reach, fleet))
    parallel_domain_counts

let exp_parallel () =
  header "EXP-PARALLEL  PR 4 — domain-pool scaling (engine layers + driver)"
    "(scaling experiment recorded in BENCH_PR4.json; results are \
     bit-identical across all domain counts)";
  Printf.printf "host: %d core(s) recommended by the runtime\n\n"
    (Domain.recommended_domain_count ());
  let results = measure_parallel () in
  let _, w1, r1, f1 = List.hd results in
  Printf.printf "%8s %13s %8s %13s %8s %13s %8s\n" "domains" "wide(ms)" "x"
    "reach(ms)" "x" "fleet16(ms)" "x";
  List.iter
    (fun (d, w, r, f) ->
      Printf.printf "%8d %13.2f %7.2fx %13.2f %7.2fx %13.2f %7.2fx\n" d w
        (w1 /. w) r (r1 /. r) f (f1 /. f))
    results;
  Printf.printf
    "\nwide: five independent layer-0 relations (real fan-out); reach: one \
     recursive\nstratum (no layer parallelism — honest worst case); fleet16: \
     the parallel\nmulti-switch driver.  Speedups track the host's core \
     count; on a single-core\nhost the parallel paths can only verify \
     determinism and bound the overhead.\n"

let parallel_json () : Ovsdb.Json.t =
  let results = measure_parallel () in
  Ovsdb.Json.Obj
    [ ("cores", Ovsdb.Json.Int (Int64.of_int (Domain.recommended_domain_count ())));
      ( "runs",
        Ovsdb.Json.Obj
          (List.map
             (fun (d, w, r, f) ->
               ( Printf.sprintf "domains_%d" d,
                 Ovsdb.Json.Obj
                   [ ("wide_churn_ms", Ovsdb.Json.Float w);
                     ("reach_churn_ms", Ovsdb.Json.Float r);
                     ("fleet16_sync_ms", Ovsdb.Json.Float f) ] ))
             results) ) ]

(* ------------------------------------------------------------------ *)
(* EXP-SHARD: PR 10 — cross-shard relation-exchange latency            *)
(* ------------------------------------------------------------------ *)

(* An [nshards]-controller in-process fleet (Nerpa.Cluster) over [nsw]
   switches sharing one management database: after the port config
   settles, each round injects one MAC-learning frame into a switch and
   times a full [sync_all] — the digest commit on the owner, the
   exchange publish, every peer applying the delta, and the dmac
   rewrites it triggers fleet-wide.  That quiescence time is the
   cross-shard sync latency the EXP-SHARD table records. *)
let measure_shard ~nshards ~nsw ~rounds () =
  let db = Ovsdb.Db.create Snvs.schema in
  let names = List.init nsw (Printf.sprintf "bsh%02d") in
  let cl =
    Nerpa.Cluster.create_local ~digest_replace:Snvs.digest_replace ~nshards ~db
      ~p4:Snvs.p4 ~rules:Snvs.rules ~switch_names:names ()
  in
  List.iter
    (fun (name, port, tag) ->
      ignore
        (Ovsdb.Db.insert_exn db "Port"
           [ ("name", Ovsdb.Datum.string name);
             ("port", Ovsdb.Datum.integer (Int64.of_int port));
             ("mode", Ovsdb.Datum.string "access");
             ("tag", Ovsdb.Datum.integer (Int64.of_int tag));
             ("trunks", Ovsdb.Datum.set []) ]))
    [ ("p1", 1, 10); ("p2", 2, 10) ];
  ignore (Nerpa.Cluster.sync_all cl);
  let lats = ref [] in
  for i = 0 to rounds - 1 do
    let sw = Nerpa.Cluster.switch cl (List.nth names (i mod nsw)) in
    ignore
      (P4.Switch.process sw ~in_port:1
         (P4.Stdhdrs.ethernet_frame ~dst:0xFFFFFFFFFFFFL
            ~src:(Int64.of_int (0x020000000000 + i + 1))
            ~ethertype:0x1234L ~payload:"x"));
    let t0 = now () in
    ignore (Nerpa.Cluster.sync_all cl);
    lats := ((now () -. t0) *. 1e6) :: !lats
  done;
  summarise !lats

(* The gate workload: a 3-shard 6-switch fleet and 20 learning rounds;
   identical in smoke () and in the recorded baseline. *)
let shard_smoke_leg () =
  let _, p50, _ = measure_shard ~nshards:3 ~nsw:6 ~rounds:20 () in
  p50

let exp_shard () =
  header "EXP-SHARD  PR 10 — cross-shard relation exchange over a sharded fleet"
    "(sharding experiment recorded in BENCH_PR10.json; a learned MAC must \
     reach every shard)";
  Printf.printf "%8s %10s %12s %12s %12s\n" "shards" "switches" "mean(us)"
    "p50(us)" "p99(us)";
  List.iter
    (fun nshards ->
      let mean, p50, p99 = measure_shard ~nshards ~nsw:6 ~rounds:40 () in
      Printf.printf "%8d %10d %12.1f %12.1f %12.1f\n" nshards 6 mean p50 p99)
    [ 1; 2; 3; 6 ];
  Printf.printf
    "\nshape: the 1-shard row is the no-exchange baseline; extra shards add \
     the\npublish + per-peer apply + extra sync rounds of the exchange \
     protocol, and the\ncost grows with the peer count, not the network \
     size.\n"

let shard_json () : Ovsdb.Json.t =
  let rows =
    List.map
      (fun nshards ->
        let mean, p50, p99 = measure_shard ~nshards ~nsw:6 ~rounds:40 () in
        ( Printf.sprintf "shards_%d" nshards,
          Ovsdb.Json.Obj
            [ ("sync_mean_us", Ovsdb.Json.Float mean);
              ("sync_p50_us", Ovsdb.Json.Float p50);
              ("sync_p99_us", Ovsdb.Json.Float p99) ] ))
      [ 1; 2; 3; 6 ]
  in
  let smoke_p50 = shard_smoke_leg () in
  Ovsdb.Json.Obj
    (rows
    @ [ ( "smoke_shard_3x6",
          Ovsdb.Json.Obj [ ("sync_p50_us", Ovsdb.Json.Float smoke_p50) ] ) ])

(* ------------------------------------------------------------------ *)
(* JSON report: machine-readable numbers for BENCH_PR4.json            *)
(* ------------------------------------------------------------------ *)

(* Fixed workloads whose dl.commit.us distributions back the PR 2
   speedup claim.  Each runs against a freshly reset registry and
   reports the commit-latency histogram (plus workload-specific bulk
   timings), so before/after engine builds are directly comparable. *)

let json_num f = Ovsdb.Json.Float f

let hist_json name : (string * Ovsdb.Json.t) list =
  match Obs.find_histogram name with
  | None -> []
  | Some h ->
    [ ( name ^ ".us",
        Ovsdb.Json.Obj
          [ ("count", Ovsdb.Json.Int (Int64.of_int (Obs.Histogram.count h)));
            ("mean", json_num (Obs.Histogram.mean h));
            ("p50", json_num (Obs.Histogram.percentile h 0.50));
            ("p99", json_num (Obs.Histogram.percentile h 0.99));
            ("max", json_num (Obs.Histogram.max_value h)) ] ) ]

(* Leaf-churn reachability: bulk-load a backbone+leaf network in one
   transaction, then [ops] single-edge transactions.  The churn
   commits alone populate dl.commit.us (the registry is reset after
   the bulk load). *)
let bench_commit_reach ~nodes ~ops () : Ovsdb.Json.t =
  Obs.reset ();
  let ints l = Row.of_list (List.map Value.of_int l) in
  let backbone = nodes / 10 in
  let edges =
    Netgen.chain backbone
    @ List.concat
        (List.init (nodes - backbone) (fun i -> [ (i mod backbone, backbone + i) ]))
  in
  let engine = Engine.create reach_program in
  let t0 = now () in
  let txn = Engine.transaction engine in
  List.iter (fun (a, b) -> Engine.insert txn "Edge" (ints [ a; b ])) edges;
  Engine.insert txn "GivenLabel" (Row.intern [| Value.of_int 0; Value.of_string "g" |]);
  ignore (Engine.commit txn);
  let bulk_ms = (now () -. t0) *. 1e3 in
  Obs.reset ();
  let r = Random.State.make [| 2025 |] in
  for _ = 1 to ops do
    let leaf = backbone + Random.State.int r (nodes - backbone) in
    let b = Random.State.int r backbone in
    ignore (Engine.apply engine [ ("Edge", ints [ b; leaf ], true) ]);
    ignore (Engine.apply engine [ ("Edge", ints [ b; leaf ], false) ])
  done;
  Ovsdb.Json.Obj
    ([ ("nodes", Ovsdb.Json.Int (Int64.of_int nodes));
       ("churn_txns", Ovsdb.Json.Int (Int64.of_int (2 * ops)));
       ("bulk_load_ms", json_num bulk_ms) ]
    @ hist_json "dl.commit")

(* A wide non-recursive join: one 2x[rows] bulk transaction, then [ops]
   single-row insert/delete pairs through the join. *)
let bench_commit_join ~rows ~ops () : Ovsdb.Json.t =
  Obs.reset ();
  let p =
    Parser.parse_program_exn
      {|
      input relation R(x: int, y: int)
      input relation S(y: int, z: int)
      output relation T(x: int, z: int)
      T(x, z) :- R(x, y), S(y, z).
      |}
  in
  let engine = Engine.create p in
  let t0 = now () in
  let txn = Engine.transaction engine in
  for i = 0 to rows - 1 do
    Engine.insert txn "R" (Row.intern [| Value.of_int i; Value.of_int (i mod 997) |]);
    Engine.insert txn "S" (Row.intern [| Value.of_int (i mod 997); Value.of_int i |])
  done;
  ignore (Engine.commit txn);
  let bulk_ms = (now () -. t0) *. 1e3 in
  Obs.reset ();
  for i = 0 to ops - 1 do
    let row = (Row.intern [| Value.of_int (rows + i); Value.of_int (i mod 997) |]) in
    ignore (Engine.apply engine [ ("R", row, true) ]);
    ignore (Engine.apply engine [ ("R", row, false) ])
  done;
  Ovsdb.Json.Obj
    ([ ("rows", Ovsdb.Json.Int (Int64.of_int (2 * rows)));
       ("churn_txns", Ovsdb.Json.Int (Int64.of_int (2 * ops)));
       ("bulk_load_ms", json_num bulk_ms) ]
    @ hist_json "dl.commit")

(* The full stack: one OVSDB port + sync per transaction. *)
let bench_ports ~n () : Ovsdb.Json.t =
  Obs.reset ();
  let d = Snvs.deploy () in
  let t0 = now () in
  List.iter
    (fun (p : Netgen.port_plan) ->
      ignore
        (Snvs.add_port d ~name:p.pp_name ~port:p.pp_port ~mode:p.pp_mode
           ~tag:p.pp_tag ~trunks:p.pp_trunks);
      ignore (Nerpa.Controller.sync d.controller))
    (Netgen.ports ~vlans:16 ~trunk_every:0 ~n ());
  let total_ms = (now () -. t0) *. 1e3 in
  Ovsdb.Json.Obj
    ([ ("ports", Ovsdb.Json.Int (Int64.of_int n));
       ("total_ms", json_num total_ms) ]
    @ hist_json "dl.commit" @ hist_json "nerpa.sync")

(* The same per-port workload with the database and switch hosted by a
   lib/server daemon in this process: every plane message crosses a
   Unix-domain socket (framing + syscalls + handler threads).  Returns
   the workload wall time; counters/histograms are left in Obs for the
   caller to read. *)
let socket_workload ?(codec = Transport.Binary) ~n () : float =
  Obs.reset ();
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nerpa-bench-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let db = Ovsdb.Db.create Snvs.schema in
  let switch = P4.Switch.create ~name:"snvs0" Snvs.p4 in
  let server = Server.create ~db ~switches:[ ("snvs0", switch) ] ~dir () in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let c = Snvs.connect ~endpoint:(Nerpa.Endpoint.sockets ~codec ~dir ()) () in
  let t0 = now () in
  List.iter
    (fun (p : Netgen.port_plan) ->
      Server.with_lock server (fun () ->
          ignore
            (Ovsdb.Db.insert_exn db "Port"
               [ ("name", Ovsdb.Datum.string p.pp_name);
                 ("port", Ovsdb.Datum.integer (Int64.of_int p.pp_port));
                 ("mode", Ovsdb.Datum.string p.pp_mode);
                 ("tag", Ovsdb.Datum.integer (Int64.of_int p.pp_tag));
                 ("trunks",
                  Ovsdb.Datum.set
                    (List.map
                       (fun v -> Ovsdb.Atom.Integer (Int64.of_int v))
                       p.pp_trunks)) ]));
      ignore (Nerpa.Controller.sync c))
    (Netgen.ports ~vlans:16 ~trunk_every:0 ~n ());
  let total_ms = (now () -. t0) *. 1e3 in
  assert (P4.Switch.entry_count switch "in_vlan" = n);
  total_ms

let bench_sockets ?codec ~n () : Ovsdb.Json.t =
  let total_ms = socket_workload ?codec ~n () in
  Ovsdb.Json.Obj
    ([ ("ports", Ovsdb.Json.Int (Int64.of_int n));
       ("total_ms", json_num total_ms);
       ("socket_msgs",
        Ovsdb.Json.Int
          (Int64.of_int (Obs.counter_value "transport.socket.msgs")));
       ("socket_bytes",
        Ovsdb.Json.Int
          (Int64.of_int (Obs.counter_value "transport.socket.bytes"))) ]
    @ hist_json "nerpa.sync")

(* ------------------------------------------------------------------ *)
(* EXP-PACKETS: PR 7 — data-plane fast path vs the AST interpreter     *)
(* ------------------------------------------------------------------ *)

(* An LPM-heavy FIB: [n] distinct prefixes mixing /32 hosts with /24
   and /20 aggregates, so trie lookups traverse realistic depths and
   the naive scan pays the full entry count. *)
let l3_fib n =
  List.init n (fun i ->
      let prefix, len =
        match i land 3 with
        | 0 | 1 -> (Int64.logor 0x0a000000L (Int64.of_int i), 32)
        | 2 ->
          (Int64.logor 0x0a000000L (Int64.shift_left (Int64.of_int (i lsr 2)) 8),
           24)
        | _ ->
          (Int64.logor 0x0a000000L
             (Int64.shift_left (Int64.of_int (i lsr 2)) 12),
           20)
      in
      { P4.Entry.matches = [ P4.Entry.MLpm (prefix, len) ];
        priority = 0;
        action = "route_to";
        args = [ Int64.of_int (1 + (i land 3)); Int64.of_int (0x020000 + i) ] })

let l3_switch ~use_compiled ~routes () =
  let sw = P4.Switch.create ~name:"bl3" ~use_compiled L3router.p4 in
  List.iter (fun e -> P4.Switch.insert_entry sw "routes" e) (l3_fib routes);
  sw

let l3_pkts ~routes npkts =
  Array.init npkts (fun k ->
      (* a co-prime stride over the host range: most packets hit a /32,
         the rest fall through to an aggregate or the drop default *)
      let r = k * 7919 mod routes in
      let p =
        P4.Stdhdrs.udp_packet ~eth_dst:0xaaL ~eth_src:0xbbL
          ~ip_src:0x0a000001L
          ~ip_dst:(Int64.logor 0x0a000000L (Int64.of_int r))
          ~src_port:7L ~dst_port:53L ~payload:"benchpayload"
      in
      P4.Packet.set_bits p ~bit_offset:((14 * 8) + 64) ~width:8 64L;
      p)

(* The exact-heavy leg: an snvs L2 switch with learned MACs in the
   all-exact dmac/smac tables (smac is pre-populated so no digests are
   emitted on the hot path). *)
let snvs_exact_switch ~use_compiled ~hosts () =
  let sw = P4.Switch.create ~name:"bsnvs" ~use_compiled Snvs.p4 in
  let e matches action args =
    { P4.Entry.matches; priority = 0; action; args }
  in
  for p = 1 to 4 do
    P4.Switch.insert_entry sw "in_vlan"
      (e [ P4.Entry.MExact (Int64.of_int p); P4.Entry.MExact 0L ]
         "set_vlan" [ 10L ])
  done;
  for i = 0 to hosts - 1 do
    let mac = Int64.of_int (0x1000 + i) in
    P4.Switch.insert_entry sw "dmac"
      (e [ P4.Entry.MExact 10L; P4.Entry.MExact mac ]
         "forward" [ Int64.of_int (1 + (i land 3)) ]);
    for p = 1 to 4 do
      P4.Switch.insert_entry sw "smac"
        (e [ P4.Entry.MExact 10L; P4.Entry.MExact mac;
             P4.Entry.MExact (Int64.of_int p) ]
           "noop" [])
    done
  done;
  sw

let snvs_pkts ~hosts npkts =
  Array.init npkts (fun k ->
      let i = k mod hosts in
      P4.Stdhdrs.ethernet_frame
        ~dst:(Int64.of_int (0x1000 + ((i + 1) mod hosts)))
        ~src:(Int64.of_int (0x1000 + i))
        ~ethertype:0x0800L ~payload:"bp")

(* Like [time_packets] below, but drives each batch through
   [Switch.process_many], which acquires the compiled pipeline's scratch
   once per batch instead of once per packet. *)
let time_packets_batch sw ~in_port (pkts : P4.Packet.t array) ~batches
    ~per_batch =
  let npkts = Array.length pkts in
  ignore
    (P4.Switch.process_many sw
       (List.init (min 256 per_batch) (fun k -> (in_port, pkts.(k mod npkts)))));
  let samples =
    List.init batches (fun b ->
        let jobs =
          List.init per_batch (fun k ->
              (in_port, pkts.(((b * per_batch) + k) mod npkts)))
        in
        let t0 = now () in
        ignore (P4.Switch.process_many sw jobs);
        (now () -. t0) *. 1e9 /. float_of_int per_batch)
  in
  summarise samples

(* Per-packet cost over [batches] timed batches of [per_batch] packets
   each (ns/packet samples; the packet pool is reused — [process] never
   mutates its input).  Returns (mean, p50, p99) in ns/packet. *)
let time_packets sw ~in_port (pkts : P4.Packet.t array) ~batches ~per_batch =
  let npkts = Array.length pkts in
  for k = 0 to min 255 (per_batch - 1) do
    ignore (P4.Switch.process sw ~in_port pkts.(k mod npkts))
  done;
  let samples =
    List.init batches (fun b ->
        let t0 = now () in
        for k = 0 to per_batch - 1 do
          ignore
            (P4.Switch.process sw ~in_port pkts.(((b * per_batch) + k) mod npkts))
        done;
        (now () -. t0) *. 1e9 /. float_of_int per_batch)
  in
  summarise samples

(* The gate workload: a smaller FIB so the smoke run stays sub-second;
   identical in smoke () and in the recorded baseline. *)
let packet_smoke_leg () =
  let sw = l3_switch ~use_compiled:true ~routes:2000 () in
  time_packets sw ~in_port:9 (l3_pkts ~routes:2000 256) ~batches:8
    ~per_batch:1000

let pkt_leg_json (mean, p50, p99) =
  Ovsdb.Json.Obj
    [ ("ns_per_packet_p50", json_num p50);
      ("ns_per_packet_mean", json_num mean);
      ("ns_per_packet_p99", json_num p99);
      ("pps", json_num (1e9 /. mean)) ]

let measure_packets () =
  let lpm_c =
    let sw = l3_switch ~use_compiled:true ~routes:10_000 () in
    time_packets sw ~in_port:9 (l3_pkts ~routes:10_000 256) ~batches:30
      ~per_batch:2000
  and lpm_n =
    let sw = l3_switch ~use_compiled:false ~routes:10_000 () in
    time_packets sw ~in_port:9 (l3_pkts ~routes:10_000 256) ~batches:15
      ~per_batch:40
  and exact_c =
    let sw = snvs_exact_switch ~use_compiled:true ~hosts:512 () in
    time_packets sw ~in_port:1 (snvs_pkts ~hosts:512 256) ~batches:20
      ~per_batch:2000
  and exact_n =
    let sw = snvs_exact_switch ~use_compiled:false ~hosts:512 () in
    time_packets sw ~in_port:1 (snvs_pkts ~hosts:512 256) ~batches:15
      ~per_batch:100
  and lpm_b =
    let sw = l3_switch ~use_compiled:true ~routes:10_000 () in
    time_packets_batch sw ~in_port:9 (l3_pkts ~routes:10_000 256) ~batches:30
      ~per_batch:2000
  in
  (lpm_c, lpm_n, exact_c, exact_n, lpm_b)

let packets_json () : Ovsdb.Json.t =
  let lpm_c, lpm_n, exact_c, exact_n, lpm_b = measure_packets () in
  let p50 (_, p, _) = p in
  Ovsdb.Json.Obj
    [ ("lpm_10000_compiled", pkt_leg_json lpm_c);
      ("lpm_10000_naive", pkt_leg_json lpm_n);
      ("lpm_speedup_p50", json_num (p50 lpm_n /. p50 lpm_c));
      ("lpm_10000_batched", pkt_leg_json lpm_b);
      ("batch_speedup_p50", json_num (p50 lpm_c /. p50 lpm_b));
      ("snvs_exact_compiled", pkt_leg_json exact_c);
      ("snvs_exact_naive", pkt_leg_json exact_n);
      ("snvs_speedup_p50", json_num (p50 exact_n /. p50 exact_c));
      ("smoke_lpm", pkt_leg_json (packet_smoke_leg ())) ]

let exp_packets () =
  header "EXP-PACKETS  PR 7 — compiled matchers vs AST interpreter"
    "per-packet work should be a handful of lookups, not a walk over \
     every entry";
  let sw = l3_switch ~use_compiled:true ~routes:1 () in
  Printf.printf "matcher representations: routes=%s protocol_filter=%s \
                 (snvs dmac=exact)\n\n"
    (P4.Switch.matcher_repr sw "routes")
    (P4.Switch.matcher_repr sw "protocol_filter");
  let lpm_c, lpm_n, exact_c, exact_n, lpm_b = measure_packets () in
  Printf.printf "%-26s %12s %12s %12s %14s\n" "leg" "p50 ns/pkt" "p99 ns/pkt"
    "mean" "pps";
  let row name (mean, p50, p99) =
    Printf.printf "%-26s %12.0f %12.0f %12.0f %14.0f\n" name p50 p99 mean
      (1e9 /. mean)
  in
  row "l3 lpm-10000 compiled" lpm_c;
  row "l3 lpm-10000 batched" lpm_b;
  row "l3 lpm-10000 interpreter" lpm_n;
  row "snvs exact-512 compiled" exact_c;
  row "snvs exact-512 interpreter" exact_n;
  let p50 (_, p, _) = p in
  Printf.printf
    "\nspeedup (p50): lpm %.1fx, exact %.1fx — the LPM trie replaces a \
     10^4-entry\nscan per packet; the exact tables were already hashed in \
     spirit but now skip\nall per-packet list allocation.  process_many \
     amortises scratch acquisition\nacross a batch: %.2fx vs per-packet \
     process on the same workload.\n"
    (p50 lpm_n /. p50 lpm_c)
    (p50 exact_n /. p50 exact_c)
    (p50 lpm_c /. p50 lpm_b)

(* ------------------------------------------------------------------ *)
(* EXP-FLOWS: PR 8 — FDD flow compiler vs the naive translator         *)
(* ------------------------------------------------------------------ *)

(* A single-LPM-table pipeline sized for 10^5 entries (the real
   l3router caps its routes table at 65536), with an If-free ingress so
   the naive backend compiles the same program. *)
let flows_prog : P4.Program.t =
  let open P4.Program in
  {
    name = "fib";
    headers = [ P4.Stdhdrs.ethernet; P4.Stdhdrs.ipv4 ];
    parser =
      { start = "s";
        states = [ { sname = "s"; extracts = [ "ethernet"; "ipv4" ];
                     transition = Accept } ] };
    actions =
      [
        { aname = "forward"; params = [ ("port", 16) ];
          body = [ Forward (EParam "port") ] };
        { aname = "drop"; params = []; body = [ Drop ] };
      ];
    tables =
      [
        { tname = "fib";
          keys = [ { kref = Field ("ipv4", "dst"); kind = Lpm } ];
          actions = [ "forward"; "drop" ];
          default_action = ("drop", []); size = 200_000 };
      ];
    digests = []; counters = []; registers = [];
    ingress = ApplyTable "fib";
    egress = Nop;
  }

(* [n] routes: mostly /32 hosts, one in eight a duplicate of the
   previous host prefix at a higher priority (a fully shadowed rule the
   FDD backend must elide), plus /24 and /16 aggregates. *)
let flows_entries n =
  List.init n (fun i ->
      let prefix, len, prio =
        match i land 7 with
        | 5 ->
          (* same /32 as entry i-1 but outranking it: i-1 is shadowed *)
          (Int64.logor 0x0A000000L (Int64.of_int (i - 1)), 32, 1)
        | 6 -> (Int64.shift_left (Int64.of_int (i lsr 3)) 8, 24, 0)
        | 7 -> (Int64.shift_left (Int64.of_int (i lsr 3)) 16, 16, 0)
        | _ -> (Int64.logor 0x0A000000L (Int64.of_int i), 32, 0)
      in
      { P4.Entry.matches = [ P4.Entry.MLpm (prefix, len) ];
        priority = prio;
        action = "forward";
        args = [ Int64.of_int (1 + (i land 3)) ] })

let flows_switch n =
  let sw = P4.Switch.create ~name:"bfib" flows_prog in
  List.iter (fun e -> P4.Switch.insert_entry sw "fib" e) (flows_entries n);
  sw

(* (flow count, compile ms) for one backend on a populated switch. *)
let time_compile f sw =
  let t0 = now () in
  let ofp = f sw in
  ((Ofp4.Openflow.flow_count ofp, (now () -. t0) *. 1e3), ofp)

let measure_flows n =
  let sw = flows_switch n in
  let naive, _ = time_compile Ofp4.Compile.compile_naive sw in
  let fdd, _ = time_compile Ofp4.Compile.compile sw in
  (naive, fdd)

let flows_sizes = [ 1_000; 10_000; 100_000 ]

(* The gate workload: FDD-only at a size that keeps the smoke run
   sub-second; identical in smoke () and in the recorded baseline. *)
let flows_smoke_leg () =
  let sw = flows_switch 5_000 in
  let (flows, ms), _ = time_compile Ofp4.Compile.compile sw in
  (flows, ms)

let flows_json () : Ovsdb.Json.t =
  let legs =
    List.map
      (fun n ->
        let (nf, nms), (ff, fms) = measure_flows n in
        ( Printf.sprintf "fib_%d" n,
          Ovsdb.Json.Obj
            [ ("entries", Ovsdb.Json.Int (Int64.of_int n));
              ("naive_flows", Ovsdb.Json.Int (Int64.of_int nf));
              ("naive_compile_ms", json_num nms);
              ("fdd_flows", Ovsdb.Json.Int (Int64.of_int ff));
              ("fdd_compile_ms", json_num fms);
              ("flow_reduction", json_num (float_of_int (nf - ff) /. float_of_int nf)) ] ))
      flows_sizes
  in
  let sflows, sms = flows_smoke_leg () in
  Ovsdb.Json.Obj
    (legs
    @ [ ( "smoke_fdd_5000",
          Ovsdb.Json.Obj
            [ ("flows", Ovsdb.Json.Int (Int64.of_int sflows));
              ("compile_ms", json_num sms) ] ) ])

let exp_flows () =
  header "EXP-FLOWS  PR 8 — FDD flow compiler vs naive per-entry translation"
    "compiling through a decision diagram drops shadowed rules and keeps \
     10^5-entry compile times in engineering range";
  Printf.printf "%10s %14s %12s %14s %12s %11s\n" "entries" "naive_flows"
    "naive_ms" "fdd_flows" "fdd_ms" "reduction";
  List.iter
    (fun n ->
      let (nf, nms), (ff, fms) = measure_flows n in
      assert (ff < nf);
      Printf.printf "%10d %14d %12.1f %14d %12.1f %10.1f%%\n" n nf nms ff fms
        (100.0 *. float_of_int (nf - ff) /. float_of_int nf))
    flows_sizes;
  Printf.printf
    "\nshape: one route in eight is fully shadowed and the FDD backend emits \
     no flow\nfor it (plus one priority level per disjointness group instead \
     of one per rule);\nthe naive column is one flow per entry regardless.\n"

(* ------------------------------------------------------------------ *)
(* EXP-FLOWS-INCR: PR 9 — incremental FDD recompilation                *)
(* ------------------------------------------------------------------ *)

(* Churn entries in a prefix region disjoint from [flows_entries],
   aligned to their prefix length, so adds never replace a pre-existing
   route and removes restore the exact starting table. *)
let incr_churn_entry i =
  let prefix, len =
    match i mod 3 with
    | 0 -> (Int64.logor 0x0F000000L (Int64.of_int i), 32)
    | 1 -> (Int64.shift_left (Int64.of_int (0xF10000 + i)) 8, 24)
    | _ -> (Int64.shift_left (Int64.of_int (0xF000 + i)) 16, 16)
  in
  { P4.Entry.matches = [ P4.Entry.MLpm (prefix, len) ];
    priority = 0;
    action = "forward";
    args = [ 2L ] }

(* Full from-scratch compile time of an [n]-entry FIB, then [ops]
   add + [ops] delete single-entry transactions through
   Compile.State.apply_delta (latencies in us). *)
let measure_flows_incr ~n ~ops () =
  let sw = flows_switch n in
  let (_, full_ms), _ = time_compile Ofp4.Compile.compile sw in
  let st = Ofp4.Compile.State.create sw in
  let lats = ref [] in
  for i = 0 to ops - 1 do
    let e = incr_churn_entry i in
    let t0 = now () in
    ignore (Ofp4.Compile.State.apply_delta st [ ("fib", [ (e, 1) ]) ]);
    lats := ((now () -. t0) *. 1e6) :: !lats;
    let t0 = now () in
    ignore (Ofp4.Compile.State.apply_delta st [ ("fib", [ (e, -1) ]) ]);
    lats := ((now () -. t0) *. 1e6) :: !lats
  done;
  let mean, p50, p99 = summarise !lats in
  (full_ms, mean, p50, p99)

let flows_prog_sized size =
  { flows_prog with
    P4.Program.tables =
      List.map
        (fun (t : P4.Program.table) -> { t with P4.Program.size })
        flows_prog.P4.Program.tables }

(* Streaming extraction over a [n]-entry FIB: count flows through
   [fold_flows] without materialising a flow list.  The switch skips
   the packet-path matchers — only the table entries matter here. *)
let measure_flows_stream ~n () =
  let sw =
    P4.Switch.create ~name:"bfibstream" ~use_compiled:false
      (flows_prog_sized (n + (n / 2)))
  in
  List.iter (fun e -> P4.Switch.insert_entry sw "fib" e) (flows_entries n);
  let t0 = now () in
  let count = Ofp4.Compile.fold_flows sw ~init:0 ~f:(fun c _ -> c + 1) in
  (count, (now () -. t0) *. 1e3)

(* The gate workload: a 5000-entry FIB and 100 single-entry patch
   transactions; identical in smoke () and in the recorded baseline. *)
let flows_incr_smoke_leg () =
  let sw = flows_switch 5_000 in
  let st = Ofp4.Compile.State.create sw in
  let lats = ref [] in
  for i = 0 to 49 do
    let e = incr_churn_entry i in
    let t0 = now () in
    ignore (Ofp4.Compile.State.apply_delta st [ ("fib", [ (e, 1) ]) ]);
    lats := ((now () -. t0) *. 1e6) :: !lats;
    let t0 = now () in
    ignore (Ofp4.Compile.State.apply_delta st [ ("fib", [ (e, -1) ]) ]);
    lats := ((now () -. t0) *. 1e6) :: !lats
  done;
  let _, p50, _ = summarise !lats in
  p50

let flows_incr_json () : Ovsdb.Json.t =
  let full_ms, mean, p50, p99 = measure_flows_incr ~n:100_000 ~ops:50 () in
  let sc, sms = measure_flows_stream ~n:1_000_000 () in
  let smoke_p50 = flows_incr_smoke_leg () in
  Ovsdb.Json.Obj
    [ ( "fib_100000",
        Ovsdb.Json.Obj
          [ ("full_compile_ms", json_num full_ms);
            ("patch_mean_us", json_num mean);
            ("patch_p50_us", json_num p50);
            ("patch_p99_us", json_num p99);
            ("speedup_p50", json_num (full_ms *. 1e3 /. p50)) ] );
      ( "stream_1000000",
        Ovsdb.Json.Obj
          [ ("flows", Ovsdb.Json.Int (Int64.of_int sc));
            ("extract_ms", json_num sms) ] );
      ( "smoke_incr_5000",
        Ovsdb.Json.Obj [ ("patch_p50_us", json_num smoke_p50) ] ) ]

let exp_flows_incr () =
  header "EXP-FLOWS-INCR  PR 9 — incremental FDD recompilation"
    "entry churn should patch the diagram and emit flow deltas, not \
     recompile 10^5 entries from scratch";
  let full_ms, mean, p50, p99 = measure_flows_incr ~n:100_000 ~ops:50 () in
  Printf.printf "fib_100000 single-entry churn (100 patch txns):\n";
  Printf.printf "  full compile     %10.1f ms\n" full_ms;
  Printf.printf "  apply_delta mean %10.1f us   p50 %8.1f us   p99 %8.1f us\n"
    mean p50 p99;
  Printf.printf "  speedup (p50)    %10.0fx\n" (full_ms *. 1e3 /. p50);
  let sc, sms = measure_flows_stream ~n:1_000_000 () in
  Printf.printf
    "\nstreaming extraction: 10^6-entry FIB -> %d flows in %.0f ms via \
     fold_flows\n(no flow list materialised).\n"
    sc sms;
  Printf.printf
    "\nshape: patching re-unions only the spine suffix below the churn \
     point and\nrescans priorities linearly, so a single-entry change costs \
     microseconds\nwhere the from-scratch compiler costs seconds.\n"

let json_experiments () : (string * Ovsdb.Json.t) list =
  (* Compact between experiments: the DB benchmarks grow the major
     heap, and collections triggered mid-experiment would otherwise
     bleed into the microsecond-scale socket percentiles. *)
  let isolated (name, f) =
    Gc.compact ();
    (name, f ())
  in
  List.map isolated
    [ ("commit_reach_5000", fun () -> bench_commit_reach ~nodes:5000 ~ops:400 ());
      ("commit_join_10000", fun () -> bench_commit_join ~rows:10_000 ~ops:500 ());
      ("ports_200", fun () -> bench_ports ~n:200 ());
      ("sockets_60", fun () -> bench_sockets ~codec:Transport.Binary ~n:60 ());
      ("sockets_60_json", fun () -> bench_sockets ~codec:Transport.Json ~n:60 ());
      ("smoke_ports_40", fun () -> bench_ports ~n:40 ());
      ("packets", fun () -> packets_json ());
      ("parallel", fun () -> parallel_json ());
      ("flows", fun () -> flows_json ());
      ("flows_incr", fun () -> flows_incr_json ());
      ("shard", fun () -> shard_json ()) ]

(* The regression gate compares the smoke run's dl.commit p50 against
   this recorded baseline.  The relative bound catches real slowdowns;
   the absolute slack absorbs the timer-granularity jitter that
   dominates micro-second scale percentiles over only 40 samples. *)
let gate_json (exps : (string * Ovsdb.Json.t) list) : Ovsdb.Json.t =
  let p50_of exp hist =
    match List.assoc_opt exp exps with
    | Some j -> (
      match Ovsdb.Json.member hist j with
      | Some h -> (
        match Ovsdb.Json.member "p50" h with
        | Some (Ovsdb.Json.Float f) -> f
        | Some (Ovsdb.Json.Int i) -> Int64.to_float i
        | _ -> 0.)
      | None -> 0.)
    | None -> 0.
  in
  let smoke_p50 = p50_of "smoke_ports_40" "dl.commit.us" in
  (* The socket row gates the PR6 work (binary codec + pipelining): a
     regression that drags the per-sync latency back toward the old
     JSON/serial numbers fails `dune runtest`.  Looser bounds than the
     in-process gate — syscalls and scheduler noise dominate at this
     scale. *)
  let socket_p50 = p50_of "sockets_60" "nerpa.sync.us" in
  (* The packet row gates the PR7 fast path: the smoke run repeats the
     same compiled-LPM workload (packet_smoke_leg) and must stay within
     max_regression of this p50.  Nanosecond-scale batches jitter with
     GC pauses, hence the absolute slack. *)
  let packet_p50 =
    match List.assoc_opt "packets" exps with
    | Some j -> (
      match
        Option.bind (Ovsdb.Json.member "smoke_lpm" j)
          (Ovsdb.Json.member "ns_per_packet_p50")
      with
      | Some (Ovsdb.Json.Float f) -> f
      | Some (Ovsdb.Json.Int i) -> Int64.to_float i
      | _ -> 0.)
    | None -> 0.
  in
  (* The flows row gates the PR8 work (FDD flow compiler): the smoke
     run recompiles the same 5000-entry fib workload and its wall time
     must stay within max_regression of this recording.  Compile time
     is milliseconds-scale, so a generous relative bound plus absolute
     slack absorbs allocator and GC variance. *)
  let flows_ms =
    match List.assoc_opt "flows" exps with
    | Some j -> (
      match
        Option.bind (Ovsdb.Json.member "smoke_fdd_5000" j)
          (Ovsdb.Json.member "compile_ms")
      with
      | Some (Ovsdb.Json.Float f) -> f
      | Some (Ovsdb.Json.Int i) -> Int64.to_float i
      | _ -> 0.)
    | None -> 0.
  in
  (* The incremental row gates the PR9 work (State.apply_delta): the
     smoke run repeats the 5000-entry 100-txn patch workload and its
     p50 must stay within max_regression of this recording.  Patch
     latency is tens-of-microseconds scale, so the absolute slack
     absorbs GC and allocator variance. *)
  let incr_us =
    match List.assoc_opt "flows_incr" exps with
    | Some j -> (
      match
        Option.bind (Ovsdb.Json.member "smoke_incr_5000" j)
          (Ovsdb.Json.member "patch_p50_us")
      with
      | Some (Ovsdb.Json.Float f) -> f
      | Some (Ovsdb.Json.Int i) -> Int64.to_float i
      | _ -> 0.)
    | None -> 0.
  in
  (* The shard row gates the PR10 work (multi-controller exchange): the
     smoke run repeats the 3-shard 6-switch learning workload and its
     fleet-quiescence p50 must stay within max_regression of this
     recording.  The workload spans three full controllers, so the
     bounds are the loosest of the gate. *)
  let shard_us =
    match List.assoc_opt "shard" exps with
    | Some j -> (
      match
        Option.bind (Ovsdb.Json.member "smoke_shard_3x6" j)
          (Ovsdb.Json.member "sync_p50_us")
      with
      | Some (Ovsdb.Json.Float f) -> f
      | Some (Ovsdb.Json.Int i) -> Int64.to_float i
      | _ -> 0.)
    | None -> 0.
  in
  Ovsdb.Json.Obj
    [ ("metric", Ovsdb.Json.String "smoke dl.commit.us p50");
      ("smoke_commit_p50_us", json_num smoke_p50);
      ("max_regression", json_num 1.25);
      ("abs_slack_us", json_num 5.0);
      ("socket_sync_p50_us", json_num socket_p50);
      ("socket_max_regression", json_num 1.5);
      ("socket_abs_slack_us", json_num 20.0);
      ("packet_p50_ns", json_num packet_p50);
      ("packet_max_regression", json_num 1.25);
      ("packet_abs_slack_ns", json_num 200.0);
      ("flows_compile_ms", json_num flows_ms);
      ("flows_max_regression", json_num 1.6);
      ("flows_abs_slack_ms", json_num 50.0);
      ("flows_incr_p50_us", json_num incr_us);
      ("flows_incr_max_regression", json_num 1.6);
      ("flows_incr_abs_slack_us", json_num 500.0);
      ("shard_sync_p50_us", json_num shard_us);
      ("shard_max_regression", json_num 2.0);
      ("shard_abs_slack_us", json_num 2000.0) ]

let json_report path =
  let exps = json_experiments () in
  let doc =
    Ovsdb.Json.Obj
      [ ("schema", Ovsdb.Json.String "nerpa-bench-pr10/1");
        ("experiments", Ovsdb.Json.Obj exps);
        ("gate", gate_json exps) ]
  in
  let oc = open_out path in
  output_string oc (Ovsdb.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* SMOKE: a seconds-scale end-to-end pass for the tier-1 test alias    *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* EXP-TRANSPORT — direct vs wire plane links                          *)
(* ------------------------------------------------------------------ *)

(* Cost of the transport abstraction: the same add-port workload over
   the default in-process links and over the wire links that round-trip
   every message through serialized bytes.  The direct path is the one
   the smoke gate covers; this experiment quantifies what a real
   out-of-process channel would add. *)
let exp_transport ?(n = 200) () =
  header
    (Printf.sprintf
       "EXP-TRANSPORT  %d ports over direct vs serialized plane links" n)
    "the wire links add codec work per message but identical final state";
  let run label deploy =
    Obs.reset ();
    let d : Snvs.deployment = deploy () in
    let t0 = now () in
    List.iter
      (fun (p : Netgen.port_plan) ->
        ignore
          (Snvs.add_port d ~name:p.pp_name ~port:p.pp_port ~mode:p.pp_mode
             ~tag:p.pp_tag ~trunks:p.pp_trunks);
        ignore (Nerpa.Controller.sync d.controller))
      (Netgen.ports ~vlans:16 ~trunk_every:0 ~n ());
    let total_ms = (now () -. t0) *. 1e3 in
    assert (P4.Switch.entry_count d.switch "in_vlan" = n);
    let sync_p50 =
      match Obs.find_histogram "nerpa.sync" with
      | Some h -> Obs.Histogram.percentile h 0.50
      | None -> 0.
    in
    Printf.printf
      "  %-8s total %8.2f ms   sync p50 %8.2f us   wire msgs %7d   wire \
       bytes %9d\n"
      label total_ms sync_p50
      (Obs.counter_value "transport.wire.msgs")
      (Obs.counter_value "transport.wire.bytes")
  in
  run "direct" (fun () -> Snvs.deploy ());
  run "wire" (fun () -> Snvs.deploy ~endpoint:Nerpa.Endpoint.wire ());
  (* socket: same workload, but db and switch live behind a real daemon
     (in-process listener threads, out-of-process framing + syscalls).
     One row per wire codec; both use pipelined write batches. *)
  List.iter
    (fun (label, codec) ->
      let total_ms = socket_workload ~codec ~n () in
      let sync_p50 =
        match Obs.find_histogram "nerpa.sync" with
        | Some h -> Obs.Histogram.percentile h 0.50
        | None -> 0.
      in
      Printf.printf
        "  %-8s total %8.2f ms   sync p50 %8.2f us   sock msgs %7d   sock \
         bytes %9d\n"
        label total_ms sync_p50
        (Obs.counter_value "transport.socket.msgs")
        (Obs.counter_value "transport.socket.bytes"))
    [ ("sock/js", Transport.Json); ("sock/bin", Transport.Binary) ]

(* The smoke gate compares against the NEWEST recorded baseline: the
   BENCH_PR<N>.json with the highest N in the given directory, so each
   PR's recorded numbers supersede the previous gate without editing
   the dune rule. *)
let newest_baseline dir =
  let prefix = "BENCH_PR" and suffix = ".json" in
  (try Array.to_list (Sys.readdir dir) with Sys_error _ -> [])
  |> List.filter_map (fun f ->
         if
           String.length f > String.length prefix + String.length suffix
           && String.starts_with ~prefix f
           && Filename.check_suffix f suffix
         then
           let digits =
             String.sub f (String.length prefix)
               (String.length f - String.length prefix - String.length suffix)
           in
           Option.map (fun n -> (n, Filename.concat dir f))
             (int_of_string_opt digits)
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> function
  | (_, path) :: _ -> Some path
  | [] -> None

(* Compare the freshly measured smoke dl.commit p50 (and, when the
   socket leg ran, the per-sync p50 over sockets) against the gate
   recorded in the baseline file; a regression beyond
   p50 * max_regression + abs_slack fails the run (and hence
   `dune runtest`, which invokes the smoke alias). *)
let smoke_gate ?socket_p50 ?packet_p50 ?flows_ms ?flows_incr_us ?shard_us
    (baseline_path : string) (measured_p50 : float) =
  match
    try Some (Ovsdb.Json.of_string (In_channel.with_open_text baseline_path In_channel.input_all))
    with _ -> None
  with
  | None ->
    Printf.printf "smoke gate: no readable baseline at %s (skipped)\n"
      baseline_path
  | Some doc -> (
    let num j =
      match j with
      | Some (Ovsdb.Json.Float f) -> Some f
      | Some (Ovsdb.Json.Int i) -> Some (Int64.to_float i)
      | _ -> None
    in
    let field k =
      Option.bind (Ovsdb.Json.member "gate" doc) (Ovsdb.Json.member k) |> num
    in
    let check ?(unit = "us") ~what base maxr slack measured =
      let limit = (base *. maxr) +. slack in
      if measured > limit then (
        Printf.printf
          "smoke gate: FAIL %s p50 %.2f %s exceeds limit %.2f %s (baseline \
           %.2f x %.2f + %.1f slack)\n"
          what measured unit limit unit base maxr slack;
        exit 1)
      else
        Printf.printf "smoke gate: ok, %s p50 %.2f %s within limit %.2f %s\n"
          what measured unit limit unit
    in
    (match
       ( field "smoke_commit_p50_us",
         field "max_regression",
         field "abs_slack_us" )
     with
    | Some base, Some maxr, Some slack ->
      check ~what:"dl.commit.us" base maxr slack measured_p50
    | _ ->
      Printf.printf "smoke gate: baseline %s has no gate section (skipped)\n"
        baseline_path);
    (match
       ( socket_p50,
         field "socket_sync_p50_us",
         field "socket_max_regression",
         field "socket_abs_slack_us" )
     with
    | Some measured, Some base, Some maxr, Some slack when base > 0. ->
      check ~what:"socket nerpa.sync.us" base maxr slack measured
    | None, Some _, _, _ ->
      Printf.printf "smoke gate: socket leg skipped (no socket support)\n"
    | _ ->
      Printf.printf
        "smoke gate: baseline %s has no socket gate (skipped)\n" baseline_path);
    (match
       ( packet_p50,
         field "packet_p50_ns",
         field "packet_max_regression",
         field "packet_abs_slack_ns" )
     with
    | Some measured, Some base, Some maxr, Some slack when base > 0. ->
      check ~unit:"ns" ~what:"packet ns/pkt" base maxr slack measured
    | _ ->
      Printf.printf "smoke gate: baseline %s has no packet gate (skipped)\n"
        baseline_path);
    (match
       ( flows_ms,
         field "flows_compile_ms",
         field "flows_max_regression",
         field "flows_abs_slack_ms" )
     with
    | Some measured, Some base, Some maxr, Some slack when base > 0. ->
      check ~unit:"ms" ~what:"fdd compile 5000" base maxr slack measured
    | _ ->
      Printf.printf "smoke gate: baseline %s has no flows gate (skipped)\n"
        baseline_path);
    (match
       ( flows_incr_us,
         field "flows_incr_p50_us",
         field "flows_incr_max_regression",
         field "flows_incr_abs_slack_us" )
     with
    | Some measured, Some base, Some maxr, Some slack when base > 0. ->
      check ~what:"incremental patch 5000" base maxr slack measured
    | _ ->
      Printf.printf
        "smoke gate: baseline %s has no incremental gate (skipped)\n"
        baseline_path);
    match
      ( shard_us,
        field "shard_sync_p50_us",
        field "shard_max_regression",
        field "shard_abs_slack_us" )
    with
    | Some measured, Some base, Some maxr, Some slack when base > 0. ->
      check ~what:"cross-shard sync 3x6" base maxr slack measured
    | _ ->
      Printf.printf "smoke gate: baseline %s has no shard gate (skipped)\n"
        baseline_path)

(* Runs a miniature exp_ports plus the observability overhead check,
   touching all three planes, and fails loudly if the overhead bound is
   violated.  Wired into `dune runtest` from bench/dune. *)
let smoke ?baseline () =
  exp_ports ~n:40 ();
  (* capture the commit percentile before obs_overhead pollutes the
     histogram with its synthetic commits *)
  let p50 =
    match Obs.find_histogram "dl.commit" with
    | Some h -> Obs.Histogram.percentile h 0.50
    | None -> 0.
  in
  (* the socket leg (it resets the Obs registry, so it runs after the
     commit percentile is captured); sandboxes that cannot bind
     Unix-domain sockets skip it rather than failing the smoke run *)
  let socket_p50 =
    match socket_workload ~n:60 () with
    | _total_ms -> (
      match Obs.find_histogram "nerpa.sync" with
      | Some h -> Some (Obs.Histogram.percentile h 0.50)
      | None -> None)
    | exception _ -> None
  in
  (match socket_p50 with
  | Some s -> Printf.printf "  socket sync p50 %8.2f us over 60 ports\n" s
  | None -> Printf.printf "  socket leg skipped (no socket support)\n");
  (* the data-plane leg: the compiled-LPM gate workload (PR 7) *)
  let _, packet_p50, _ = packet_smoke_leg () in
  Printf.printf "  packet p50 %8.0f ns over 2000 lpm routes (compiled)\n"
    packet_p50;
  (* the flow-compiler leg: recompile the PR 8 gate workload *)
  let smoke_flows, flows_ms = flows_smoke_leg () in
  Printf.printf "  fdd compile %8.1f ms for 5000 routes (%d flows)\n" flows_ms
    smoke_flows;
  (* the incremental leg: the PR 9 gate workload (100 patch txns) *)
  let flows_incr_us = flows_incr_smoke_leg () in
  Printf.printf "  incremental patch p50 %8.1f us over 5000 routes\n"
    flows_incr_us;
  (* the sharding leg: the PR 10 gate workload (3-shard fleet sync) *)
  let shard_us = shard_smoke_leg () in
  Printf.printf "  cross-shard sync p50 %8.1f us over a 3-shard fleet\n"
    shard_us;
  (match baseline with
  | Some path ->
    smoke_gate ?socket_p50 ~packet_p50 ~flows_ms ~flows_incr_us ~shard_us path
      p50
  | None -> ());
  if not (obs_overhead ()) then exit 1

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig3", fun () -> fig3 ());
    ("ports", fun () -> exp_ports ());
    ("loc", fun () -> exp_loc ());
    ("lb", fun () -> exp_lb ());
    ("incr", fun () -> exp_incr ());
    ("reach", fun () -> exp_reach ());
    ("robotron", fun () -> exp_robotron ());
    ("ablation", fun () -> exp_ablation ());
    ("overhead", fun () -> ignore (obs_overhead ()));
    ("transport", fun () -> exp_transport ());
    ("packets", fun () -> exp_packets ());
    ("parallel", fun () -> exp_parallel ());
    ("flows", fun () -> exp_flows ());
    ("flows_incr", fun () -> exp_flows_incr ());
    ("shard", fun () -> exp_shard ());
    ("micro", fun () -> micro ());
    ("smoke", fun () -> smoke ());
  ]

(* Each experiment runs against a freshly zeroed registry and is
   followed by the metrics it populated, so the footer attributes
   commits, syncs and table hits to that experiment alone. *)
let run_experiment name f =
  Obs.reset ();
  f ();
  line ();
  Printf.printf "metric registry after '%s':\n" name;
  print_string (Obs.render_table ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "--json" :: rest ->
    let path = match rest with p :: _ -> p | [] -> "BENCH_PR10.json" in
    json_report path
  | "packets" :: "--json" :: rest ->
    (* the packet numbers land in the full report so the recorded file
       keeps a complete gate section for the smoke baseline *)
    let path = match rest with p :: _ -> p | [] -> "BENCH_PR10.json" in
    json_report path
  | "smoke" :: "--baseline" :: path :: _ ->
    run_experiment "smoke" (fun () -> smoke ~baseline:path ())
  | "smoke" :: "--baseline-dir" :: dir :: _ -> (
    match newest_baseline dir with
    | Some path ->
      Printf.printf "smoke gate baseline: %s\n" path;
      run_experiment "smoke" (fun () -> smoke ~baseline:path ())
    | None ->
      Printf.printf "smoke gate: no BENCH_PR*.json under %s (ungated run)\n" dir;
      run_experiment "smoke" (fun () -> smoke ()))
  | [] ->
    (* smoke is the runtest subset of ports+overhead; skip it when
       running everything *)
    List.iter
      (fun (name, f) -> if name <> "smoke" then run_experiment name f)
      experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> run_experiment name f
        | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
