(** Rows (facts) of a relation: fixed-arity vectors of values,
    hash-consed so equality is physical and the hash is cached.

    Construct rows only via {!intern} / {!of_list} / {!project}; the
    record is private so the intern table stays canonical.  The value
    array passed to {!intern} (and the one returned by {!values}) is
    owned by the row — callers must not mutate it afterwards. *)

type t = private { values : Value.t array; hash : int; mutable id : int }

val intern : Value.t array -> t
(** Canonical row for this value vector.  O(arity) on a miss, a hash
    probe on a hit.  Does not copy the array. *)

val enable_domain_safety : unit -> unit
(** Switch interning to its locked mode (mutex-sharded buckets).  Must
    be called before rows are interned from more than one domain; the
    switch is sticky for the life of the process.  Pool owners call
    this whenever they spawn workers; sequential runs never pay for
    the locks. *)

val of_list : Value.t list -> t

val values : t -> Value.t array
(** The underlying vector. Do not mutate. *)

val get : t -> int -> Value.t
val arity : t -> int

val id : t -> int
(** Intern id: unique among live rows, assigned in intern order. *)

val compare : t -> t -> int
(** Structural (value) order — stable across runs, unlike {!id}. *)

val equal : t -> t -> bool
(** Physical equality; equivalent to structural equality for interned
    rows. *)

val hash : t -> int
(** Cached structural hash. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val project : t -> int array -> t
(** [project r positions] extracts (and interns) the sub-row at the
    given column positions (used as an index key). *)

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

module Tbl : Hashtbl.S with type key = t
(** Hash table over physical equality and the cached hash. *)
