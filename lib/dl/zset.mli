(** Z-sets: finite maps from rows to non-zero integer weights.

    Z-sets are the currency of incremental computation: a relation's
    contents is a Z-set with positive weights, and a change (delta) is
    a Z-set whose positive weights are insertions and negative weights
    deletions.  All operations maintain the invariant that no row maps
    to weight zero.

    Internally keyed by row intern id (see {!Row.id}): lookups and
    merges cost int comparisons, not structural row comparisons. *)

type t

val empty : t
val is_empty : t -> bool

val weight : t -> Row.t -> int
(** Weight of a row ([0] if absent). *)

val add : t -> Row.t -> int -> t
(** [add z row w] adds weight [w] to [row], dropping the row if the
    resulting weight is [0]. *)

val singleton : Row.t -> int -> t
val of_list : (Row.t * int) list -> t

val of_rows : Row.t list -> t
(** Each row with weight [+1]. *)

val to_list : t -> (Row.t * int) list
(** Bindings in structural row order (deterministic across runs). *)

val cardinal : t -> int
(** Number of distinct rows present, regardless of weight sign. *)

val fold : (Row.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Row.t -> int -> unit) -> t -> unit

val union : t -> t -> t
(** Pointwise sum of weights. *)

val diff : t -> t -> t
(** Pointwise difference. *)

val neg : t -> t
val scale : int -> t -> t

val distinct : t -> t
(** Rows with positive weight, each at weight [1] (the set view). *)

val support : t -> Row.t list
(** All rows with positive weight. *)

val filter : (Row.t -> int -> bool) -> t -> t

val map_rows : (Row.t -> Row.t) -> t -> t
(** Transform each row; weights of colliding images are summed. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
