(* Mutable storage for one relation: the set of visible rows, their
   derivation counts, and hash indexes (arrangements) over column
   subsets.

   For input relations a visible row always has count 1.  For computed
   relations in non-recursive strata the count is the number of
   derivations (counting-based incremental view maintenance); a row is
   visible iff its count is positive.  Relations in recursive strata use
   set semantics and keep all counts at 1.

   Invariants (relied on by Engine):
   - [counts] holds exactly the visible rows, each with count > 0.
   - Every index in [indexes] covers exactly the visible rows: index
     maintenance happens on visibility transitions (count 0 -> positive
     and positive -> 0), never on mere count changes.
   - Index positions are ascending, duplicate-free and within the
     relation's arity, so add/remove/lookup all project the same
     canonical key.
   - No store or index is mutated while one of its buckets is being
     iterated: Engine accumulates derived deltas and applies them after
     the joins that produced them have finished reading. *)

(* A bucket holds the visible rows sharing one index key.  Small
   buckets are plain arrays with swap-remove (cheap and compact — most
   buckets of a near-unique key hold one row, and exp_lb measures live
   heap); buckets that outgrow [promote_threshold] are promoted to a
   hashtable so removal stays O(1) instead of O(bucket). *)
type bucket = {
  mutable arr : Row.t array; (* first [len] slots live; unused iff promoted *)
  mutable len : int;
  mutable tbl : unit Row.Tbl.t option;
}

let promote_threshold = 16

type index = {
  positions : int array; (* column positions forming the key *)
  table : bucket Row.Tbl.t; (* key sub-row -> visible rows *)
}

type t = {
  decl : Ast.rel_decl;
  counts : int Row.Tbl.t; (* visible rows -> derivation count > 0 *)
  mutable indexes : index list;
  by_positions : (int list, index) Hashtbl.t; (* canonical positions -> index *)
  (* Serializes {!ensure_index}: pool tasks (parallel stratum eval,
     per-switch reconciliation) may demand new arrangements
     concurrently.  Index *lookups* go through index handles and stay
     lock-free; building never touches existing indexes, so readers of
     those are unaffected. *)
  index_mutex : Mutex.t;
}

let create (decl : Ast.rel_decl) =
  { decl;
    counts = Row.Tbl.create 64;
    indexes = [];
    by_positions = Hashtbl.create 4;
    index_mutex = Mutex.create () }

let name t = t.decl.rname
let arity t = Ast.arity t.decl
let mem t row = Row.Tbl.mem t.counts row

let count t row =
  match Row.Tbl.find_opt t.counts row with Some c -> c | None -> 0

let cardinal t = Row.Tbl.length t.counts
let iter f t = Row.Tbl.iter (fun row _ -> f row) t.counts
let fold f t acc = Row.Tbl.fold (fun row _ acc -> f row acc) t.counts acc
let rows t = Row.Tbl.fold (fun row _ acc -> row :: acc) t.counts []

let to_zset t : Zset.t =
  Row.Tbl.fold (fun row _ z -> Zset.add z row 1) t.counts Zset.empty

(* ------------------------------------------------------------------ *)
(* Buckets                                                             *)
(* ------------------------------------------------------------------ *)

let bucket_singleton row = { arr = Array.make 4 row; len = 1; tbl = None }

let bucket_add b row =
  match b.tbl with
  | Some tbl -> Row.Tbl.replace tbl row ()
  | None ->
    if b.len >= promote_threshold then begin
      let tbl = Row.Tbl.create (4 * b.len) in
      for i = 0 to b.len - 1 do
        Row.Tbl.replace tbl b.arr.(i) ()
      done;
      Row.Tbl.replace tbl row ();
      b.tbl <- Some tbl;
      b.arr <- [||];
      b.len <- 0
    end
    else begin
      if b.len = Array.length b.arr then begin
        let grown = Array.make (2 * b.len) row in
        Array.blit b.arr 0 grown 0 b.len;
        b.arr <- grown
      end;
      b.arr.(b.len) <- row;
      b.len <- b.len + 1
    end

(* Swap-remove; returns [true] when the bucket became empty (caller
   drops the key).  The vacated slot is overwritten with a live row so
   the array holds no stale reference that would pin a dead row in the
   intern table. *)
let bucket_remove b row =
  match b.tbl with
  | Some tbl ->
    Row.Tbl.remove tbl row;
    Row.Tbl.length tbl = 0
  | None ->
    let i = ref 0 in
    while !i < b.len && not (Row.equal b.arr.(!i) row) do
      incr i
    done;
    if !i < b.len then begin
      b.len <- b.len - 1;
      b.arr.(!i) <- b.arr.(b.len);
      if b.len > 0 then b.arr.(b.len) <- b.arr.(0)
    end;
    b.len = 0

let bucket_iter f b =
  match b.tbl with
  | Some tbl -> Row.Tbl.iter (fun row () -> f row) tbl
  | None ->
    for i = 0 to b.len - 1 do
      f b.arr.(i)
    done

let bucket_count b =
  match b.tbl with Some tbl -> Row.Tbl.length tbl | None -> b.len

let bucket_to_list b =
  match b.tbl with
  | Some tbl -> Row.Tbl.fold (fun row () acc -> row :: acc) tbl []
  | None -> Array.to_list (Array.sub b.arr 0 b.len)

(* ------------------------------------------------------------------ *)
(* Index maintenance                                                   *)
(* ------------------------------------------------------------------ *)

let index_add idx row =
  let key = Row.project row idx.positions in
  match Row.Tbl.find_opt idx.table key with
  | Some bucket -> bucket_add bucket row
  | None -> Row.Tbl.add idx.table key (bucket_singleton row)

let index_remove idx row =
  let key = Row.project row idx.positions in
  match Row.Tbl.find_opt idx.table key with
  | Some bucket -> if bucket_remove bucket row then Row.Tbl.remove idx.table key
  | None -> ()

(* Visibility transitions: update every index when a row appears or
   disappears from the visible set. *)
let on_appear t row = List.iter (fun idx -> index_add idx row) t.indexes
let on_disappear t row = List.iter (fun idx -> index_remove idx row) t.indexes

(** [add_derivations t row dcount] adds [dcount] to the derivation count
    of [row] and returns the visibility change: [+1] if the row became
    visible, [-1] if it disappeared, [0] otherwise. *)
let add_derivations t row dcount =
  if dcount = 0 then 0
  else
    let old_count = count t row in
    let new_count = old_count + dcount in
    if new_count < 0 then
      invalid_arg
        (Printf.sprintf "Store.add_derivations: negative count for %s%s"
           (name t) (Row.to_string row));
    if new_count = 0 then begin
      Row.Tbl.remove t.counts row;
      if old_count > 0 then begin on_disappear t row; -1 end else 0
    end
    else begin
      Row.Tbl.replace t.counts row new_count;
      if old_count = 0 then begin on_appear t row; 1 end else 0
    end

(** [apply_derivations t delta] applies a whole Z-set of derivation
    count changes in one sweep: counts first (collecting visibility
    transitions), then each index updated once over the transition
    lists.  Returns the visibility delta (+1 appeared / -1
    disappeared). *)
let apply_derivations t (delta : Zset.t) : Zset.t =
  let appeared = ref [] and disappeared = ref [] in
  Zset.iter
    (fun row dcount ->
      let old_count = count t row in
      let new_count = old_count + dcount in
      if new_count < 0 then
        invalid_arg
          (Printf.sprintf "Store.apply_derivations: negative count for %s%s"
             (name t) (Row.to_string row));
      if new_count = 0 then begin
        Row.Tbl.remove t.counts row;
        if old_count > 0 then disappeared := row :: !disappeared
      end
      else begin
        Row.Tbl.replace t.counts row new_count;
        if old_count = 0 then appeared := row :: !appeared
      end)
    delta;
  List.iter
    (fun idx ->
      List.iter (fun row -> index_remove idx row) !disappeared;
      List.iter (fun row -> index_add idx row) !appeared)
    t.indexes;
  let z =
    List.fold_left (fun z row -> Zset.add z row 1) Zset.empty !appeared
  in
  List.fold_left (fun z row -> Zset.add z row (-1)) z !disappeared

(** Set-semantics insertion; returns [true] if the row was new. *)
let set_insert t row =
  if mem t row then false
  else begin
    Row.Tbl.replace t.counts row 1;
    on_appear t row;
    true
  end

(** Set-semantics removal; returns [true] if the row was present. *)
let set_remove t row =
  if mem t row then begin
    Row.Tbl.remove t.counts row;
    on_disappear t row;
    true
  end
  else false

(** [apply_set_batch t ops] applies set-semantics operations ([true] =
    insert, [false] = delete; at most one op per row) and returns the
    visibility delta.  Like {!apply_derivations}, each index is
    maintained in one sweep over the transitions rather than per
    operation. *)
let apply_set_batch t (ops : (Row.t * bool) list) : Zset.t =
  let appeared = ref [] and disappeared = ref [] in
  List.iter
    (fun (row, ins) ->
      if ins then begin
        if not (mem t row) then begin
          Row.Tbl.replace t.counts row 1;
          appeared := row :: !appeared
        end
      end
      else if mem t row then begin
        Row.Tbl.remove t.counts row;
        disappeared := row :: !disappeared
      end)
    ops;
  List.iter
    (fun idx ->
      List.iter (fun row -> index_remove idx row) !disappeared;
      List.iter (fun row -> index_add idx row) !appeared)
    t.indexes;
  let z =
    List.fold_left (fun z row -> Zset.add z row 1) Zset.empty !appeared
  in
  List.fold_left (fun z row -> Zset.add z row (-1)) z !disappeared

let m_index_builds = Obs.Counter.create "dl.store.index_builds"

(** [ensure_index t positions] finds or builds the index (arrangement)
    keyed on the given column positions (sorted ascending and
    deduplicated for canonicalisation).  Indexes are deduplicated
    across all callers — rules sharing a key shape share the
    arrangement.
    @raise Invalid_argument if a position is outside the relation's
    arity — projecting such a key would either crash or silently build
    an index that can never match a lookup. *)
let ensure_index t (positions : int array) : index =
  let arity = Ast.arity t.decl in
  Array.iter
    (fun p ->
      if p < 0 || p >= arity then
        invalid_arg
          (Printf.sprintf
             "Store.ensure_index: position %d out of range for %s (arity %d)"
             p (name t) arity))
    positions;
  let canonical = List.sort_uniq Int.compare (Array.to_list positions) in
  Mutex.lock t.index_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.index_mutex)
    (fun () ->
      match Hashtbl.find_opt t.by_positions canonical with
      | Some idx -> idx
      | None ->
        Obs.Counter.incr m_index_builds;
        let idx =
          { positions = Array.of_list canonical; table = Row.Tbl.create 64 }
        in
        iter (fun row -> index_add idx row) t;
        t.indexes <- idx :: t.indexes;
        Hashtbl.add t.by_positions canonical idx;
        idx)

(** Visible rows whose projection on [idx.positions] equals [key]. *)
let index_lookup idx (key : Row.t) : Row.t list =
  match Row.Tbl.find_opt idx.table key with
  | Some b -> bucket_to_list b
  | None -> []

(** Allocation-free variants for the join inner loop. *)
let index_iter idx (key : Row.t) f =
  match Row.Tbl.find_opt idx.table key with
  | Some b -> bucket_iter f b
  | None -> ()

let index_count idx (key : Row.t) =
  match Row.Tbl.find_opt idx.table key with
  | Some b -> bucket_count b
  | None -> 0

(** Rough memory footprint in stored rows, counting index duplication;
    used by the RAM-overhead experiment. *)
let footprint t = cardinal t * (1 + List.length t.indexes)
