(* Compilation of surface rules into slot-addressed form.

   Variables are renamed to integer slots in an environment array, so
   that rule evaluation allocates one flat array per derivation attempt
   instead of threading association lists. *)

type cexpr =
  | CVar of int
  | CConst of Value.t
  | CCall of string * cexpr array
  | CTuple of cexpr array
  | CIf of cexpr * cexpr * cexpr

type cpat =
  | CSlot of int           (* variable occurrence (bound or binding) *)
  | CConstP of Value.t
  | CWildP

type catom = {
  aid : int; (* program-unique atom id, keys the arrangement cache *)
  crel : string;
  pats : cpat array;
}

type clit =
  | CAtom of catom
  | CNeg of catom
  | CCond of cexpr
  | CAssign of int * cexpr
  | CFlat of int * cexpr

type cagg = {
  cagg_out : int;            (* slot receiving the aggregate result *)
  cagg_func : string;
  cagg_expr : cexpr;         (* aggregated expression, over body slots *)
  cagg_by : int array;       (* slots of the grouping variables *)
}

type crule = {
  rule_id : int;
  head_rel : string;
  head_exprs : cexpr array;
  body : clit array;             (* literals before the aggregate, if any *)
  agg : cagg option;
  nslots : int;
  source : Ast.rule;             (* for error messages *)
}

type slot_env = { mutable table : (string * int) list; mutable next : int }

let slot_of env v =
  match List.assoc_opt v env.table with
  | Some i -> i
  | None ->
    let i = env.next in
    env.next <- i + 1;
    env.table <- (v, i) :: env.table;
    i

let rec compile_expr env (e : Ast.expr) : cexpr =
  match e with
  | Ast.EVar v -> CVar (slot_of env v)
  | Ast.EConst c -> CConst c
  | Ast.ECall (f, args) -> CCall (f, Array.of_list (List.map (compile_expr env) args))
  | Ast.ETuple es -> CTuple (Array.of_list (List.map (compile_expr env) es))
  | Ast.EIf (c, t, e) ->
    CIf (compile_expr env c, compile_expr env t, compile_expr env e)

(* Atom ids key the engine's per-(atom, bound-columns) arrangement
   cache; they only need to be unique, not dense, so a module-level
   counter is fine across programs. *)
let next_aid = ref 0

let compile_atom env (a : Ast.atom) : catom =
  let pats =
    Array.map
      (function
        | Ast.PVar v -> CSlot (slot_of env v)
        | Ast.PConst c -> CConstP c
        | Ast.PWild -> CWildP)
      a.args
  in
  let aid = !next_aid in
  incr next_aid;
  { aid; crel = a.rel; pats }

(** Compile one rule.  [rule_id] must be unique across the program; it
    keys the per-rule aggregate state in the engine. *)
let compile_rule ~rule_id (rule : Ast.rule) : crule =
  let env = { table = []; next = 0 } in
  let body_rev, agg =
    List.fold_left
      (fun (acc, agg) lit ->
        match lit with
        | Ast.LAtom a -> (CAtom (compile_atom env a) :: acc, agg)
        | Ast.LNeg a -> (CNeg (compile_atom env a) :: acc, agg)
        | Ast.LCond e -> (CCond (compile_expr env e) :: acc, agg)
        | Ast.LAssign (v, e) ->
          let ce = compile_expr env e in
          (CAssign (slot_of env v, ce) :: acc, agg)
        | Ast.LFlat (v, e) ->
          let ce = compile_expr env e in
          (CFlat (slot_of env v, ce) :: acc, agg)
        | Ast.LAgg g ->
          let cagg_expr = compile_expr env g.agg_expr in
          let cagg_by = Array.of_list (List.map (slot_of env) g.agg_by) in
          let cagg_out = slot_of env g.agg_out in
          (acc, Some { cagg_out; cagg_func = g.agg_func; cagg_expr; cagg_by }))
      ([], None) rule.body
  in
  let head_exprs = Array.map (compile_expr env) rule.head.hargs in
  {
    rule_id;
    head_rel = rule.head.hrel;
    head_exprs;
    body = Array.of_list (List.rev body_rev);
    agg;
    nslots = env.next;
    source = rule;
  }

(** Positions (into [body]) of positive and negated atoms — the literals
    that can drive incremental re-evaluation when their relation
    changes. *)
let driver_positions (r : crule) : (int * string * bool) list =
  (* (body index, relation, negated?) *)
  let acc = ref [] in
  Array.iteri
    (fun i lit ->
      match lit with
      | CAtom a -> acc := (i, a.crel, false) :: !acc
      | CNeg a -> acc := (i, a.crel, true) :: !acc
      | CCond _ | CAssign _ | CFlat _ -> ())
    r.body;
  List.rev !acc

(* Expression evaluation over a slot environment. *)

let rec eval_expr (env : Value.t array) (e : cexpr) : Value.t =
  match e with
  | CVar i -> env.(i)
  | CConst c -> c
  | CCall (f, args) ->
    Builtins.eval f (Array.to_list (Array.map (eval_expr env) args))
  | CTuple es -> Value.VTuple (Array.map (eval_expr env) es)
  | CIf (c, t, e) ->
    if Value.as_bool (eval_expr env c) then eval_expr env t else eval_expr env e
