(* Z-sets: finite maps from rows to non-zero integer weights.

   Z-sets are the currency of incremental computation: a relation's
   contents is a Z-set with positive weights, and a change (delta) is a
   Z-set whose positive weights are insertions and negative weights are
   deletions.  All operations maintain the invariant that no row maps to
   weight zero.

   Rows are interned (see {!Row}), so the map is keyed by intern id —
   int comparisons instead of structural array comparisons on every
   lookup.  Each binding carries the row alongside its weight, which
   both lets us enumerate rows and keeps them alive (so their intern
   ids stay canonical for as long as they are in any Z-set). *)

module IntMap = Map.Make (Int)

type t = (Row.t * int) IntMap.t

let empty : t = IntMap.empty
let is_empty = IntMap.is_empty

(** Weight of [row] ([0] if absent). *)
let weight (z : t) row =
  match IntMap.find_opt (Row.id row) z with Some (_, w) -> w | None -> 0

(** [add z row w] adds weight [w] to [row], dropping it if the result is 0. *)
let add (z : t) row w : t =
  if w = 0 then z
  else
    IntMap.update (Row.id row)
      (function
        | None -> Some (row, w)
        | Some (_, w') -> if w + w' = 0 then None else Some (row, w + w'))
      z

let singleton row w : t =
  if w = 0 then empty else IntMap.singleton (Row.id row) (row, w)

let of_list l : t = List.fold_left (fun z (row, w) -> add z row w) empty l
let of_rows l : t = List.fold_left (fun z row -> add z row 1) empty l

(** Number of distinct rows present (regardless of weight). *)
let cardinal = IntMap.cardinal

let fold f (z : t) acc = IntMap.fold (fun _ (row, w) acc -> f row w acc) z acc
let iter f (z : t) = IntMap.iter (fun _ (row, w) -> f row w) z

(** Bindings in structural row order (deterministic across runs, unlike
    intern-id order). *)
let to_list (z : t) =
  List.sort
    (fun (a, _) (b, _) -> Row.compare a b)
    (IntMap.fold (fun _ entry acc -> entry :: acc) z [])

(** Pointwise sum of weights. *)
let union (a : t) (b : t) : t =
  IntMap.union
    (fun _ (row, w) (_, w') -> if w + w' = 0 then None else Some (row, w + w'))
    a b

(** Pointwise difference [a - b]. *)
let diff (a : t) (b : t) : t = fold (fun row w acc -> add acc row (-w)) b a

(** Negate every weight. *)
let neg (z : t) : t = IntMap.map (fun (row, w) -> (row, -w)) z

(** Multiply every weight by [k]. *)
let scale k (z : t) : t =
  if k = 0 then empty else IntMap.map (fun (row, w) -> (row, w * k)) z

(** Rows with positive weight, each mapped to weight 1 (set view). *)
let distinct (z : t) : t =
  IntMap.filter_map
    (fun _ (row, w) -> if w > 0 then Some (row, 1) else None)
    z

(** All rows with positive weight. *)
let support (z : t) : Row.t list =
  fold (fun row w acc -> if w > 0 then row :: acc else acc) z []

let filter f (z : t) : t = IntMap.filter (fun _ (row, w) -> f row w) z

(** Transform each row; weights of colliding images are summed. *)
let map_rows f (z : t) : t = fold (fun row w acc -> add acc (f row) w) z empty

(* Equal keys imply physically equal rows, so only weights need
   comparing. *)
let equal (a : t) (b : t) = IntMap.equal (fun (_, w) (_, w') -> w = w') a b

let pp fmt (z : t) =
  let pp_entry f (row, w) = Format.fprintf f "%a:%+d" Row.pp row w in
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_entry)
    (to_list z)

let to_string z = Format.asprintf "%a" pp z
