(* The incremental evaluation engine.

   The engine maintains the contents of every relation of a DL program
   and updates them *incrementally* when inputs change: a transaction
   carries a set of input insertions and deletions, and [commit] returns
   the exact set-level deltas of the computed relations, after touching
   an amount of state proportional to the change rather than to the
   database.

   Algorithms:
   - non-recursive strata use counting-based incremental view
     maintenance: the delta of a rule is the standard semi-naive
     expansion sum_i join(new_1..new_{i-1}, delta_i, old_{i+1}..old_k),
     and per-row derivation counts turn multiset deltas into set-level
     visibility changes (supports deletions exactly);
   - negated literals drive deltas through their *projection*: the
     existence status of each binding of the non-wildcard positions,
     with the sign flipped;
   - group_by aggregates maintain one multiset per group and re-emit
     [-old_result +new_result] for touched groups;
   - recursive strata use set semantics: semi-naive iteration for
     insertions and DRed (over-delete, then re-derive) for deletions. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type version = Old | New

(* Per-aggregate-rule state: group key row -> multiset of aggregated
   values (value -> multiplicity > 0). *)
type group = { mutable elems : int Value.Map.t }

type stratum_c = {
  info : Stratify.stratum;
  crules : Compile.crule list;
  reads : string list;       (* relations read by rule bodies *)
  hist : Obs.Histogram.t;    (* per-stratum propagation time (us) *)
}

type t = {
  program : Ast.program;
  strata : stratum_c array;
  (* Strata grouped by dependency depth: layer 0 reads only inputs,
     layer d+1 reads at least one relation written at depth <= d and
     none written deeper.  Strata within one layer read none of each
     other's relations, so their evaluations commute — the unit of
     parallelism for [commit] when a pool is attached. *)
  layers : int array array;
  pool : Pool.t option;
  rels : (string, Store.t) Hashtbl.t;
  agg_state : (int, group Row.Tbl.t) Hashtbl.t;
  (* Arrangement cache: (atom id, bound-position bitmask) -> the shared
     store index that probe uses.  Seeded at [create] by walking every
     rule's textual execution orders, extended lazily for signatures
     only the runtime planner produces.  Copy-on-write under
     [arr_mutex]: readers (pool tasks included) do one lock-free
     [Atomic.get]; the rare miss copies the table, adds the entry and
     publishes the copy. *)
  arr_cache : (int * int, Store.index) Hashtbl.t Atomic.t;
  arr_mutex : Mutex.t;
  mutable txn_open : bool;
  (* A commit that raises mid-propagation leaves the stores with some
     strata applied and others not; the engine is poisoned so every
     later operation fails loudly instead of reading half-updated
     state. *)
  mutable poisoned : bool;
  (* ablation switches, used by the design-choice benchmarks: *)
  planner : bool;       (* greedy selectivity-based join ordering *)
  use_indexes : bool;   (* per-join-key hash indexes (else full scans) *)
}

(* Observability (metric names are a public contract, see README).
   The registry is process-global, so engines of different programs
   aggregate into the same metrics. *)
let m_commits = Obs.Counter.create "dl.commit.count"
let m_input_rows = Obs.Counter.create "dl.commit.input_rows"
let m_output_rows = Obs.Counter.create "dl.commit.output_rows"
let h_commit = Obs.Histogram.create ~unit_:"us" "dl.commit"

let check_live eng =
  if eng.poisoned then
    error
      "engine poisoned: an earlier commit failed mid-propagation and the \
       relation stores may be inconsistent; rebuild the engine"

type txn = {
  eng : t;
  mutable ops : (string * Row.t * bool) list;  (* rel, row, is_insert; reversed *)
  mutable committed : bool;
}

let store eng name =
  match Hashtbl.find_opt eng.rels name with
  | Some s -> s
  | None -> error "unknown relation %s" name

(* ------------------------------------------------------------------ *)
(* Version-aware access                                                *)
(* ------------------------------------------------------------------ *)

(* [changed] maps a relation name to its accumulated set-level delta in
   the current transaction.  The store always holds the newest state, so
   the old state is reconstructed as (new - delta). *)

type changed = (string, Zset.t ref) Hashtbl.t

let get_delta (changed : changed) rel : Zset.t =
  match Hashtbl.find_opt changed rel with Some z -> !z | None -> Zset.empty

let record_delta (changed : changed) rel row w =
  if w <> 0 then begin
    match Hashtbl.find_opt changed rel with
    | Some z -> z := Zset.add !z row w
    | None -> Hashtbl.add changed rel (ref (Zset.singleton row w))
  end

(* Match [row] against the pattern array, binding fresh slots (recorded
   on [trail]) and checking constants and already-bound slots.  Returns
   true on success; on failure the caller must still unwind [trail]. *)
let match_pattern (pats : Compile.cpat array) (row : Row.t)
    (env : Value.t array) (bound : bool array) (trail : int list ref) : bool =
  let n = Array.length pats in
  let rec go i =
    if i >= n then true
    else
      match pats.(i) with
      | Compile.CWildP -> go (i + 1)
      | Compile.CConstP c -> Value.equal c (Row.get row i) && go (i + 1)
      | Compile.CSlot s ->
        if bound.(s) then Value.equal env.(s) (Row.get row i) && go (i + 1)
        else begin
          env.(s) <- Row.get row i;
          bound.(s) <- true;
          trail := s :: !trail;
          go (i + 1)
        end
  in
  go 0

let unwind (bound : bool array) (trail : int list ref) (upto : int list) =
  let rec go l =
    if l != upto then
      match l with
      | [] -> ()
      | s :: rest ->
        bound.(s) <- false;
        go rest
  in
  go !trail;
  trail := upto

(* ------------------------------------------------------------------ *)
(* Arrangements                                                        *)
(* ------------------------------------------------------------------ *)

(* An arrangement is a store index keyed by the columns an atom probe
   has bound: constants always, slots when the current partial binding
   fixes them.  The signature of a probe is the bitmask of those
   positions; per (atom, mask) the index is resolved once and memoised
   in [eng.arr_cache], so the hot join loop does a single int-pair
   hash lookup instead of collecting/sorting positions and searching
   the store's index list on every probe. *)

(* Bitmasks only work below the word size; atoms wider than this take
   an uncached slow path (and never arise in practice). *)
let max_mask_arity = 60

let atom_mask (a : Compile.catom) (bound : bool array) =
  let mask = ref 0 in
  Array.iteri
    (fun i pat ->
      match pat with
      | Compile.CConstP _ -> mask := !mask lor (1 lsl i)
      | Compile.CSlot s when bound.(s) -> mask := !mask lor (1 lsl i)
      | Compile.CSlot _ | Compile.CWildP -> ())
    a.pats;
  !mask

let index_for_mask eng (a : Compile.catom) (mask : int) : Store.index =
  let key = (a.Compile.aid, mask) in
  match Hashtbl.find_opt (Atomic.get eng.arr_cache) key with
  | Some idx -> idx
  | None ->
    Mutex.lock eng.arr_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock eng.arr_mutex)
      (fun () ->
        (* Re-check: another domain may have published this entry while
           we waited for the lock. *)
        let cache = Atomic.get eng.arr_cache in
        match Hashtbl.find_opt cache key with
        | Some idx -> idx
        | None ->
          let positions = ref [] in
          for i = Array.length a.pats - 1 downto 0 do
            if mask land (1 lsl i) <> 0 then positions := i :: !positions
          done;
          let idx =
            Store.ensure_index (store eng a.crel) (Array.of_list !positions)
          in
          let copy = Hashtbl.copy cache in
          Hashtbl.add copy key idx;
          Atomic.set eng.arr_cache copy;
          idx)

(* Resolve the arrangement and interned key for an atom probe under the
   current binding. *)
let atom_index eng (a : Compile.catom) (env : Value.t array)
    (bound : bool array) : Store.index * Row.t =
  let idx =
    if Array.length a.pats <= max_mask_arity then
      let mask = if eng.use_indexes then atom_mask a bound else 0 in
      index_for_mask eng a mask
    else begin
      (* uncached slow path for very wide atoms *)
      let key_positions = ref [] in
      if eng.use_indexes then
        Array.iteri
          (fun i pat ->
            match pat with
            | Compile.CConstP _ -> key_positions := i :: !key_positions
            | Compile.CSlot s when bound.(s) ->
              key_positions := i :: !key_positions
            | Compile.CSlot _ | Compile.CWildP -> ())
          a.pats;
      Store.ensure_index (store eng a.crel)
        (Array.of_list (List.rev !key_positions))
    end
  in
  let key =
    Row.intern
      (Array.map
         (fun p ->
           match a.pats.(p) with
           | Compile.CConstP c -> c
           | Compile.CSlot s -> env.(s)
           | Compile.CWildP -> assert false)
         idx.positions)
  in
  (idx, key)

(* Iterate the rows of [rel] matching the atom pattern under the current
   partial binding, in the requested version.  [f] is called with the
   environment extended; bindings are undone afterwards.

   Buckets are iterated live (no snapshot): sound because no engine
   path mutates a store while joins are reading it — derived deltas
   are accumulated and applied only after the joins that produced them
   finish (see the Store invariants). *)
let iter_atom_matches eng (changed : changed) ~version (a : Compile.catom)
    (env : Value.t array) (bound : bool array) (trail : int list ref)
    (f : unit -> unit) =
  let idx, key = atom_index eng a env bound in
  let delta = get_delta changed a.crel in
  let try_row row =
    let saved = !trail in
    if match_pattern a.pats row env bound trail then f ();
    unwind bound trail saved
  in
  match version with
  | New -> Store.index_iter idx key try_row
  | Old ->
    Store.index_iter idx key (fun row ->
        if Zset.weight delta row <= 0 then try_row row);
    (* Rows deleted this transaction are absent from the index. *)
    Zset.iter (fun row w -> if w < 0 then try_row row) delta

(* Existence test used by negated literals: is there any row matching
   the (fully bound apart from wildcards) pattern? *)
exception Found

let exists_match eng changed ~version (a : Compile.catom) env bound trail =
  try
    iter_atom_matches eng changed ~version a env bound trail (fun () ->
        raise Found);
    false
  with Found -> true

(* ------------------------------------------------------------------ *)
(* Rule body solving                                                   *)
(* ------------------------------------------------------------------ *)

(* Expression slot dependencies, for deciding when a literal is ready. *)
let rec expr_slots acc (e : Compile.cexpr) =
  match e with
  | Compile.CVar s -> s :: acc
  | Compile.CConst _ -> acc
  | Compile.CCall (_, args) | Compile.CTuple args ->
    Array.fold_left expr_slots acc args
  | Compile.CIf (c, t, e) -> expr_slots (expr_slots (expr_slots acc c) t) e

let all_bound (bound : bool array) slots = List.for_all (fun s -> bound.(s)) slots

(* Estimated result size of matching an atom under the current binding:
   the size of its index bucket (plus the txn delta size for old
   versions — an over-estimate is fine, this is only a planner). *)
let atom_estimate eng changed ~version (a : Compile.catom) env bound : int =
  let idx, key = atom_index eng a env bound in
  let base = Store.index_count idx key in
  match version with
  | New -> base
  | Old -> base + Zset.cardinal (get_delta changed a.crel)

(* Solve the remaining body literals with greedy selectivity-based
   planning: conditions and assignments run as soon as their inputs are
   bound; among atoms, the one with the smallest estimated match count
   goes first.  Reordering is sound because each literal carries its own
   version and the body denotes a product of constraints; assignments
   against already-bound slots degrade to equality checks.  [emit] is
   called once per completed binding. *)
let rec solve eng changed (crule : Compile.crule)
    (remaining : (int * version) list) (env : Value.t array)
    (bound : bool array) (trail : int list ref) (emit : unit -> unit) =
  match remaining with
  | [] -> emit ()
  | [ (lit_idx, version) ] ->
    (* singleton fast path: nothing to plan *)
    exec_literal eng changed crule lit_idx version [] env bound trail emit
  | _ ->
    (* Pick the next literal. *)
    let position_of item =
      let rec go i = function
        | [] -> i
        | x :: rest -> if x == item then i else go (i + 1) rest
      in
      go 0 remaining
    in
    let ready_score ((lit_idx, version) as item) =
      ignore version;
      let selectivity a v =
        if eng.planner then atom_estimate eng changed ~version:v a env bound
        else position_of item
      in
      match crule.body.(lit_idx) with
      | Compile.CCond e ->
        if all_bound bound (expr_slots [] e) then Some (-3) else None
      | Compile.CAssign (_, e) ->
        if all_bound bound (expr_slots [] e) then Some (-2) else None
      | Compile.CFlat (_, e) ->
        if all_bound bound (expr_slots [] e) then Some 2 else None
      | Compile.CNeg a ->
        let slots =
          Array.to_list a.pats
          |> List.filter_map (function
               | Compile.CSlot s -> Some s
               | Compile.CConstP _ | Compile.CWildP -> None)
        in
        if all_bound bound slots then Some (-1) else None
      | Compile.CAtom a -> Some (selectivity a version)
    in
    let best =
      List.fold_left
        (fun best item ->
          match ready_score item with
          | None -> best
          | Some score ->
            (* with the planner disabled, fall back to textual order *)
            let score = if eng.planner then score else position_of item in
            (match best with
            | Some (_, s) when s <= score -> best
            | _ -> Some (item, score)))
        None remaining
    in
    (match best with
    | None ->
      (* No literal is ready — impossible for type-checked rules, since
         the original left-to-right order is always executable. *)
      error "rule %s: no evaluable literal (planner bug)"
        (Format.asprintf "%a" Ast.pp_rule crule.source)
    | Some (((lit_idx, version) as chosen), _) ->
      let rest = List.filter (fun item -> item != chosen) remaining in
      exec_literal eng changed crule lit_idx version rest env bound trail emit)

and exec_literal eng changed (crule : Compile.crule) lit_idx version rest env
    bound trail emit =
  let continue () = solve eng changed crule rest env bound trail emit in
  match crule.body.(lit_idx) with
  | Compile.CAtom a ->
    iter_atom_matches eng changed ~version a env bound trail continue
  | Compile.CNeg a ->
    if not (exists_match eng changed ~version a env bound trail) then
      continue ()
  | Compile.CCond e ->
    if Value.as_bool (Compile.eval_expr env e) then continue ()
  | Compile.CAssign (s, e) ->
    let v = Compile.eval_expr env e in
    if bound.(s) then begin
      if Value.equal env.(s) v then continue ()
    end
    else begin
      env.(s) <- v;
      bound.(s) <- true;
      let saved = !trail in
      trail := s :: !trail;
      continue ();
      unwind bound trail saved
    end
  | Compile.CFlat (s, e) ->
    let elems = Value.as_vec (Compile.eval_expr env e) in
    if bound.(s) then
      (* Pre-bound by a driver: one continuation per equal occurrence. *)
      List.iter (fun v -> if Value.equal env.(s) v then continue ()) elems
    else
      List.iter
        (fun v ->
          env.(s) <- v;
          bound.(s) <- true;
          let saved = !trail in
          trail := s :: !trail;
          continue ();
          unwind bound trail saved)
        elems

(* Evaluation order when driving from body literal [i]: literals before
   [i] read the new state, literals after read the old state. *)
let order_for_driver (crule : Compile.crule) (i : int) : (int * version) array
    =
  let k = Array.length crule.body in
  Array.init (k - 1) (fun j ->
      if j < i then (j, New) else (j + 1, Old))

let order_full (crule : Compile.crule) : (int * version) array =
  Array.init (Array.length crule.body) (fun j -> (j, New))

(* Values produced by the rule for the current environment. *)
let head_row (crule : Compile.crule) (env : Value.t array) : Row.t =
  Row.intern (Array.map (Compile.eval_expr env) crule.head_exprs)

(* The "pre-aggregation row" of an aggregate rule: group-by values
   followed by the aggregated expression's value. *)
let pre_agg_row (cagg : Compile.cagg) (env : Value.t array) : Row.t =
  let n = Array.length cagg.cagg_by in
  Row.intern
    (Array.init (n + 1) (fun i ->
         if i < n then env.(cagg.cagg_by.(i))
         else Compile.eval_expr env cagg.cagg_expr))

(* Drive rule [crule] from a delta on body literal [i].  For every
   completed derivation, [emit row weight] is called, where [row] is
   produced by [mk_row] and [weight] already accounts for the driver's
   weight and, for negated drivers, the flipped sign of the projection's
   existence change. *)
let drive ?(all_new = false) eng changed (crule : Compile.crule) (i : int)
    (delta : Zset.t) ~(mk_row : Value.t array -> Row.t)
    (emit : Row.t -> int -> unit) =
  if not (Zset.is_empty delta) then begin
    (* [all_new] is used inside recursive strata, where every literal
       must read the current (partially updated) state of the fixpoint;
       the mixed old/new order is only correct for the telescoped sum
       over external deltas. *)
    let order =
      Array.to_list
        (if all_new then
           Array.map (fun (j, _) -> (j, New)) (order_for_driver crule i)
         else order_for_driver crule i)
    in
    match crule.body.(i) with
    | Compile.CAtom a ->
      Zset.iter
        (fun row w ->
          let env = Array.make crule.nslots (Value.VBool false) in
          let bound = Array.make crule.nslots false in
          let trail = ref [] in
          if match_pattern a.pats row env bound trail then
            solve eng changed crule order env bound trail (fun () ->
                emit (mk_row env) w))
        delta
    | Compile.CNeg a ->
      (* The negation depends only on the projection of the relation on
         the non-wildcard positions of the pattern.  Compute, for every
         candidate binding touched by the delta, whether its existence
         status changed, and drive with the flipped sign. *)
      let seen = Row.Tbl.create 16 in
      Zset.iter
        (fun row _w ->
          let env = Array.make crule.nslots (Value.VBool false) in
          let bound = Array.make crule.nslots false in
          let trail = ref [] in
          if match_pattern a.pats row env bound trail then begin
            (* Canonical key: slot values in pattern order. *)
            let slots =
              Array.to_list a.pats
              |> List.filter_map (function
                   | Compile.CSlot s -> Some s
                   | Compile.CConstP _ | Compile.CWildP -> None)
            in
            let key = Row.of_list (List.map (fun s -> env.(s)) slots) in
            if not (Row.Tbl.mem seen key) then begin
              Row.Tbl.replace seen key ();
              (* Here all of the pattern's slots are bound, so the two
                 existence tests reuse the same environment. *)
              let ex_old = exists_match eng changed ~version:Old a env bound trail in
              let ex_new = exists_match eng changed ~version:New a env bound trail in
              let dw =
                match ex_old, ex_new with
                | false, true -> -1     (* appeared: derivations lost *)
                | true, false -> 1      (* disappeared: derivations gained *)
                | _ -> 0
              in
              if dw <> 0 then
                solve eng changed crule order env bound trail (fun () ->
                    emit (mk_row env) dw)
            end
          end;
          unwind bound trail [])
        delta
    | Compile.CCond _ | Compile.CAssign _ | Compile.CFlat _ ->
      assert false (* only atoms are drivers *)
  end

(* Full (from-scratch) evaluation of a rule against the current state. *)
let eval_full eng changed (crule : Compile.crule)
    ~(mk_row : Value.t array -> Row.t) (emit : Row.t -> int -> unit) =
  let env = Array.make (max 1 crule.nslots) (Value.VBool false) in
  let bound = Array.make (max 1 crule.nslots) false in
  let trail = ref [] in
  solve eng changed crule (Array.to_list (order_full crule)) env bound trail
    (fun () -> emit (mk_row env) 1)

(* ------------------------------------------------------------------ *)
(* Aggregate rules                                                     *)
(* ------------------------------------------------------------------ *)

let agg_groups eng (crule : Compile.crule) : group Row.Tbl.t =
  match Hashtbl.find_opt eng.agg_state crule.rule_id with
  | Some tbl -> tbl
  | None ->
    let tbl = Row.Tbl.create 16 in
    Hashtbl.add eng.agg_state crule.rule_id tbl;
    tbl

let agg_result (cagg : Compile.cagg) (g : group) : Value.t option =
  if Value.Map.is_empty g.elems then None
  else Some (Builtins.agg_eval cagg.cagg_func (Value.Map.bindings g.elems))

(* Head row of an aggregate rule for a given group key and result. *)
let agg_head_row (crule : Compile.crule) (cagg : Compile.cagg) (key : Row.t)
    (result : Value.t) : Row.t =
  let env = Array.make crule.nslots (Value.VBool false) in
  Array.iteri (fun i s -> env.(s) <- Row.get key i) cagg.cagg_by;
  env.(cagg.cagg_out) <- result;
  head_row crule env

(* Process an aggregate rule: compute the delta of the pre-aggregation
   multiset, update per-group state, and emit head derivation deltas. *)
let eval_agg_rule eng changed (crule : Compile.crule) (cagg : Compile.cagg)
    ~(drivers : (int * Zset.t) list) (emit : Row.t -> int -> unit) =
  let pre_delta = ref Zset.empty in
  List.iter
    (fun (i, delta) ->
      drive eng changed crule i delta
        ~mk_row:(fun env -> pre_agg_row cagg env)
        (fun row w -> pre_delta := Zset.add !pre_delta row w))
    drivers;
  if not (Zset.is_empty !pre_delta) then begin
    let nby = Array.length cagg.cagg_by in
    (* Group the pre-aggregation delta by key. *)
    let by_key : int Value.Map.t ref Row.Tbl.t = Row.Tbl.create 16 in
    let by_pos = Array.init nby (fun i -> i) in
    Zset.iter
      (fun row w ->
        let key = Row.project row by_pos in
        let v = Row.get row nby in
        let m =
          match Row.Tbl.find_opt by_key key with
          | Some m -> m
          | None ->
            let m = ref Value.Map.empty in
            Row.Tbl.add by_key key m;
            m
        in
        m :=
          Value.Map.update v
            (function
              | None -> Some w
              | Some w' -> if w + w' = 0 then None else Some (w + w'))
            !m)
      !pre_delta;
    let groups = agg_groups eng crule in
    Row.Tbl.iter
      (fun key delta_elems ->
        let g =
          match Row.Tbl.find_opt groups key with
          | Some g -> g
          | None ->
            let g = { elems = Value.Map.empty } in
            Row.Tbl.add groups key g;
            g
        in
        let old_result = agg_result cagg g in
        Value.Map.iter
          (fun v w ->
            g.elems <-
              Value.Map.update v
                (function
                  | None ->
                    if w < 0 then
                      error "aggregate group under-run in rule %s"
                        (Format.asprintf "%a" Ast.pp_rule crule.source);
                    if w = 0 then None else Some w
                  | Some w' ->
                    let n = w + w' in
                    if n < 0 then
                      error "aggregate group under-run in rule %s"
                        (Format.asprintf "%a" Ast.pp_rule crule.source);
                    if n = 0 then None else Some n)
                g.elems)
          !delta_elems;
        let new_result = agg_result cagg g in
        if Value.Map.is_empty g.elems then Row.Tbl.remove groups key;
        (match old_result, new_result with
        | Some o, Some n when Value.equal o n -> ()
        | _ ->
          (match old_result with
          | Some o -> emit (agg_head_row crule cagg key o) (-1)
          | None -> ());
          (match new_result with
          | Some n -> emit (agg_head_row crule cagg key n) 1
          | None -> ())))
      by_key
  end

(* ------------------------------------------------------------------ *)
(* Non-recursive strata                                                *)
(* ------------------------------------------------------------------ *)

(* Drivers of a rule that have pending deltas. *)
let active_drivers (changed : changed) (crule : Compile.crule) :
    (int * Zset.t) list =
  List.filter_map
    (fun (i, rel, _neg) ->
      let d = get_delta changed rel in
      if Zset.is_empty d then None else Some (i, d))
    (Compile.driver_positions crule)

(* Evaluation phase of a non-recursive stratum: joins read the stores
   and [changed] but mutate neither (aggregate rules update only their
   own rule's group tables), so the evaluations of strata in the same
   dependency layer can run on pool domains concurrently.  Returns the
   accumulated derivation-count delta of the stratum's head relation. *)
let eval_nonrecursive eng (changed : changed) (sc : stratum_c) ~init : Zset.t =
  let head_delta = ref Zset.empty in
  let emit row w = head_delta := Zset.add !head_delta row w in
  List.iter
    (fun (crule : Compile.crule) ->
      match crule.agg with
      | Some cagg ->
        let drivers = active_drivers changed crule in
        if drivers <> [] then
          eval_agg_rule eng changed crule cagg ~drivers emit
      | None ->
        if init && Array.length crule.body = 0 then
          (* A fact: fires exactly once, at initialisation. *)
          eval_full eng changed crule ~mk_row:(head_row crule) emit
        else
          List.iter
            (fun (i, delta) ->
              drive eng changed crule i delta ~mk_row:(head_row crule) emit)
            (active_drivers changed crule))
    sc.crules;
  !head_delta

(* Apply phase: single-domain only.  Applies the accumulated derivation
   deltas as one batch per relation — counts updated in one pass, every
   index maintained in one sweep over the visibility transitions.  The
   visibility delta becomes the stratum's set-level output delta. *)
let apply_nonrecursive eng (changed : changed) (sc : stratum_c)
    (head_delta : Zset.t) =
  match sc.info.relations with
  | [ rel_name ] ->
    let st = store eng rel_name in
    let vis = Store.apply_derivations st head_delta in
    if not (Zset.is_empty vis) then begin
      match Hashtbl.find_opt changed rel_name with
      | Some z -> z := Zset.union !z vis
      | None -> Hashtbl.add changed rel_name (ref vis)
    end
  | _ -> assert false (* non-recursive strata have exactly one relation *)

let process_nonrecursive eng (changed : changed) (sc : stratum_c) ~init =
  apply_nonrecursive eng changed sc (eval_nonrecursive eng changed sc ~init)

(* ------------------------------------------------------------------ *)
(* Recursive strata: semi-naive insertion + DRed deletion              *)
(* ------------------------------------------------------------------ *)

(* Can this rule's head be inverted for the re-derivation query?  Yes
   when every head argument is a variable or a constant. *)
let invertible_head (crule : Compile.crule) =
  Array.for_all
    (function Compile.CVar _ | Compile.CConst _ -> true | _ -> false)
    crule.head_exprs

(* Is [fact] derivable in one step by [crule] against the current state? *)
let rederivable eng changed (crule : Compile.crule) (fact : Row.t) : bool =
  let env = Array.make (max 1 crule.nslots) (Value.VBool false) in
  let bound = Array.make (max 1 crule.nslots) false in
  let trail = ref [] in
  let ok = ref true in
  if invertible_head crule then begin
    Array.iteri
      (fun i e ->
        match e with
        | Compile.CConst c ->
          if not (Value.equal c (Row.get fact i)) then ok := false
        | Compile.CVar s ->
          if bound.(s) then begin
            if not (Value.equal env.(s) (Row.get fact i)) then ok := false
          end
          else begin
            env.(s) <- Row.get fact i;
            bound.(s) <- true
          end
        | _ -> assert false)
      crule.head_exprs;
    !ok
    &&
    try
      solve eng changed crule (Array.to_list (order_full crule)) env bound
        trail (fun () -> raise Found);
      false
    with Found -> true
  end
  else begin
    (* Fallback: enumerate the rule and compare heads. *)
    try
      solve eng changed crule (Array.to_list (order_full crule)) env bound
        trail (fun () ->
          if Row.equal (head_row crule env) fact then raise Found);
      false
    with Found -> true
  end

let process_recursive eng (changed : changed) (sc : stratum_c) ~init =
  let in_scc rel = List.mem rel sc.info.relations in
  (* Rules indexed by head relation, and the SCC driver positions. *)
  let scc_drivers crule =
    List.filter (fun (_, rel, neg) -> in_scc rel && not neg)
      (Compile.driver_positions crule)
  in
  (* Phase 0: contributions from outside the stratum (and facts). *)
  let pos_seed = ref [] and neg_seed = ref [] in
  let emit_seed crule row w =
    if w > 0 then pos_seed := (crule.Compile.head_rel, row) :: !pos_seed
    else if w < 0 then neg_seed := (crule.Compile.head_rel, row) :: !neg_seed
  in
  List.iter
    (fun (crule : Compile.crule) ->
      if init && Array.length crule.body = 0 then
        eval_full eng changed crule ~mk_row:(head_row crule) (fun row w ->
            emit_seed crule row w)
      else
        List.iter
          (fun (i, rel, _neg) ->
            if not (in_scc rel) then
              let delta = get_delta changed rel in
              drive eng changed crule i delta ~mk_row:(head_row crule)
                (fun row w -> emit_seed crule row w))
          (Compile.driver_positions crule))
    sc.crules;
  (* Phase 1: DRed.  Over-delete the closure of the lost facts, then
     re-derive survivors. *)
  let marked : (string, unit Row.Tbl.t) Hashtbl.t = Hashtbl.create 4 in
  let marked_tbl rel =
    match Hashtbl.find_opt marked rel with
    | Some tbl -> tbl
    | None ->
      let tbl = Row.Tbl.create 16 in
      Hashtbl.add marked rel tbl;
      tbl
  in
  let is_marked rel row = Row.Tbl.mem (marked_tbl rel) row in
  let mark rel row = Row.Tbl.replace (marked_tbl rel) row () in
  let del_frontier = ref [] in
  List.iter
    (fun (rel, row) ->
      let st = store eng rel in
      if Store.mem st row && not (is_marked rel row) then begin
        mark rel row;
        del_frontier := (rel, row) :: !del_frontier
      end)
    !neg_seed;
  while !del_frontier <> [] do
    let frontier = !del_frontier in
    del_frontier := [];
    (* Group the frontier by relation for driving. *)
    let by_rel = Hashtbl.create 4 in
    List.iter
      (fun (rel, row) ->
        let z = try Hashtbl.find by_rel rel with Not_found -> Zset.empty in
        Hashtbl.replace by_rel rel (Zset.add z row 1))
      frontier;
    List.iter
      (fun (crule : Compile.crule) ->
        List.iter
          (fun (i, rel, _) ->
            match Hashtbl.find_opt by_rel rel with
            | None -> ()
            | Some delta ->
              drive ~all_new:true eng changed crule i delta
                ~mk_row:(head_row crule)
                (fun row _w ->
                  let hrel = crule.head_rel in
                  let st = store eng hrel in
                  if Store.mem st row && not (is_marked hrel row) then begin
                    mark hrel row;
                    del_frontier := (hrel, row) :: !del_frontier
                  end))
          (scc_drivers crule))
      sc.crules
  done;
  (* Physically remove the over-deleted facts. *)
  Hashtbl.iter
    (fun rel tbl ->
      let st = store eng rel in
      Row.Tbl.iter
        (fun row () ->
          if Store.set_remove st row then record_delta changed rel row (-1))
        tbl)
    marked;
  (* Re-derivation: a removed fact comes back if some rule still derives
     it in one step from the remaining state. *)
  let ins_frontier = ref [] in
  Hashtbl.iter
    (fun rel tbl ->
      Row.Tbl.iter
        (fun row () ->
          let derivable =
            List.exists
              (fun (crule : Compile.crule) ->
                String.equal crule.head_rel rel
                && Array.length crule.body > 0
                && rederivable eng changed crule row)
              sc.crules
          in
          if derivable then ins_frontier := (rel, row) :: !ins_frontier)
        tbl)
    marked;
  (* Phase 2: insertions — external seeds plus re-derived facts,
     propagated to a fixpoint semi-naively.  A positive seed was
     computed before the deletion phase ran, so it may have become
     stale (its supporting SCC facts may just have been deleted);
     re-verify one-step derivability against the current state.  Seeds
     that only become derivable via other seeds are recovered by the
     semi-naive propagation below. *)
  List.iter
    (fun (rel, row) ->
      let st = store eng rel in
      if
        (not (Store.mem st row))
        && List.exists
             (fun (crule : Compile.crule) ->
               String.equal crule.Compile.head_rel rel
               && rederivable eng changed crule row)
             sc.crules
      then ins_frontier := (rel, row) :: !ins_frontier)
    !pos_seed;
  (* Deduplicate the initial frontier. *)
  let rec loop frontier =
    (* Insert the frontier first so that derivations combining two new
       facts see both. *)
    let inserted =
      List.filter
        (fun (rel, row) ->
          let st = store eng rel in
          if Store.set_insert st row then begin
            record_delta changed rel row 1;
            true
          end
          else false)
        frontier
    in
    if inserted <> [] then begin
      let by_rel = Hashtbl.create 4 in
      List.iter
        (fun (rel, row) ->
          let z = try Hashtbl.find by_rel rel with Not_found -> Zset.empty in
          Hashtbl.replace by_rel rel (Zset.add z row 1))
        inserted;
      let next = ref [] in
      List.iter
        (fun (crule : Compile.crule) ->
          List.iter
            (fun (i, rel, _) ->
              match Hashtbl.find_opt by_rel rel with
              | None -> ()
              | Some delta ->
                drive ~all_new:true eng changed crule i delta
                  ~mk_row:(head_row crule)
                  (fun row w ->
                    if w > 0 then begin
                      let st = store eng crule.head_rel in
                      if not (Store.mem st row) then
                        next := (crule.head_rel, row) :: !next
                    end))
            (scc_drivers crule))
        sc.crules;
      if !next <> [] then loop !next
    end
  in
  loop !ins_frontier

(* ------------------------------------------------------------------ *)
(* Engine construction and transactions                                *)
(* ------------------------------------------------------------------ *)

(* Versioned evaluation inside recursive strata always uses [New]; the
   drive of seeds uses mixed versions, which is consistent because SCC
   relations have no delta yet at seeding time. *)

(* Arrangement pre-planning: walk every rule's textual execution orders
   (full evaluation; one order per driver, with the driver's slots
   pre-bound; re-derivation, with head slots pre-bound) and build the
   index each atom probe would use.  This hoists arrangement
   construction out of the first commits, dedupes arrangements across
   rules and strata through Store's canonical-positions table, and
   seeds the (atom, mask) memo cache.  The greedy runtime planner can
   still produce novel probe signatures under unusual data
   distributions; those extend the cache lazily via [atom_index]. *)
let preplan_arrangements eng =
  let register (a : Compile.catom) bound =
    if Array.length a.pats <= max_mask_arity then
      ignore (index_for_mask eng a (atom_mask a bound))
  in
  let bind_atom_slots (a : Compile.catom) bound =
    Array.iter
      (function Compile.CSlot s -> bound.(s) <- true | _ -> ())
      a.pats
  in
  Array.iter
    (fun sc ->
      List.iter
        (fun (crule : Compile.crule) ->
          let n = Array.length crule.body in
          let nslots = max 1 crule.nslots in
          let sim bound order =
            List.iter
              (fun j ->
                match crule.body.(j) with
                | Compile.CAtom a ->
                  register a bound;
                  bind_atom_slots a bound
                | Compile.CNeg a ->
                  (* negation probes only run once all their slots are
                     bound *)
                  register a (Array.make nslots true)
                | Compile.CCond _ -> ()
                | Compile.CAssign (s, _) | Compile.CFlat (s, _) ->
                  bound.(s) <- true)
              order
          in
          let full = List.init n Fun.id in
          sim (Array.make nslots false) full;
          List.iter
            (fun (i, _, _) ->
              let b = Array.make nslots false in
              (match crule.body.(i) with
              | Compile.CAtom a | Compile.CNeg a -> bind_atom_slots a b
              | Compile.CCond _ | Compile.CAssign _ | Compile.CFlat _ -> ());
              sim b (List.filter (fun j -> j <> i) full))
            (Compile.driver_positions crule);
          (* re-derivation probes (DRed): head slots bound, full body *)
          let b = Array.make nslots false in
          Array.iter
            (function Compile.CVar s -> b.(s) <- true | _ -> ())
            crule.head_exprs;
          sim b full)
        sc.crules)
    eng.strata

(* Group strata by dependency depth.  [Stratify.stratify] returns the
   strata in dependency order, so stratum [i] only reads relations
   written by strata [j < i] (or inputs, or its own SCC relations):
   depth(i) = 1 + max depth of the earlier strata whose relations it
   reads.  Strata at equal depth read none of each other's relations,
   which is what makes their evaluations independent. *)
let compute_layers (strata : stratum_c array) : int array array =
  let n = Array.length strata in
  let depth = Array.make n 0 in
  for i = 0 to n - 1 do
    let reads = strata.(i).reads in
    for j = 0 to i - 1 do
      if
        List.exists
          (fun r -> List.mem r strata.(j).info.relations)
          reads
      then depth.(i) <- max depth.(i) (depth.(j) + 1)
    done
  done;
  let maxd = Array.fold_left max 0 depth in
  Array.init (maxd + 1) (fun d ->
      List.init n Fun.id
      |> List.filter (fun i -> depth.(i) = d)
      |> Array.of_list)

let create ?(planner = true) ?(use_indexes = true) ?pool
    (program : Ast.program) : t =
  (match Typecheck.check_program program with
  | Ok () -> ()
  | Error errs -> error "type errors:\n%s" (String.concat "\n" errs));
  let strata_info =
    try Stratify.stratify program
    with Stratify.Unstratifiable msg -> error "unstratifiable program: %s" msg
  in
  let rule_id = ref 0 in
  let compiled = Hashtbl.create 64 in
  List.iter
    (fun rule ->
      let cr = Compile.compile_rule ~rule_id:!rule_id rule in
      incr rule_id;
      Hashtbl.add compiled rule cr)
    program.rules;
  let strata =
    Array.of_list
      (List.mapi
         (fun i (info : Stratify.stratum) ->
           let crules = List.map (Hashtbl.find compiled) info.rules in
           let reads =
             List.concat_map
               (fun rule ->
                 List.map fst (Ast.body_dependencies rule))
               info.rules
             |> List.sort_uniq String.compare
           in
           let hist =
             Obs.Histogram.create ~unit_:"us"
               (Printf.sprintf "dl.commit.stratum.%d" i)
           in
           { info; crules; reads; hist })
         strata_info)
  in
  let rels = Hashtbl.create 64 in
  List.iter
    (fun (d : Ast.rel_decl) -> Hashtbl.add rels d.rname (Store.create d))
    program.decls;
  (* A pool with workers means rows and metrics will be touched from
     several domains: flip the intern table into its locked mode before
     any parallel evaluation can run. *)
  (match pool with
  | Some p when Pool.size p > 0 -> Row.enable_domain_safety ()
  | _ -> ());
  let agg_state = Hashtbl.create 16 in
  (* Pre-create every aggregate rule's group table so pool tasks only
     ever *find* entries in [agg_state]; the table itself is touched
     only by the single task evaluating the owning rule's stratum. *)
  Array.iter
    (fun sc ->
      List.iter
        (fun (crule : Compile.crule) ->
          if crule.Compile.agg <> None then
            Hashtbl.replace agg_state crule.rule_id (Row.Tbl.create 16))
        sc.crules)
    strata;
  let eng =
    { program; strata; layers = compute_layers strata; pool; rels; agg_state;
      arr_cache = Atomic.make (Hashtbl.create 64); arr_mutex = Mutex.create ();
      txn_open = false; poisoned = false; planner; use_indexes }
  in
  (* Build the program's arrangements up front, while the stores are
     still empty. *)
  if use_indexes then preplan_arrangements eng;
  (* Initialisation transaction: fire the program's facts. *)
  let changed : changed = Hashtbl.create 16 in
  Array.iter
    (fun sc ->
      if sc.info.recursive then process_recursive eng changed sc ~init:true
      else process_nonrecursive eng changed sc ~init:true)
    eng.strata;
  eng

let relation_rows eng name : Row.t list =
  check_live eng;
  Store.rows (store eng name)

let relations eng : string list =
  List.map (fun (d : Ast.rel_decl) -> d.rname) eng.program.Ast.decls

(** Indexed point query: rows of [name] whose columns at [positions]
    equal [key].  Positions are normalised (sorted, deduplicated);
    duplicate positions constrained to conflicting values make the
    query unsatisfiable and return [].  Builds and maintains the index
    on first use, so repeated queries are O(result). *)
let query eng name ~(positions : int list) ~(key : Value.t list) : Row.t list =
  check_live eng;
  let st = store eng name in
  let arity = Store.arity st in
  if List.length positions <> List.length key then
    error "query %s: %d positions but %d key values" name
      (List.length positions) (List.length key);
  List.iter
    (fun p ->
      if p < 0 || p >= arity then
        error "query %s: position %d out of range (arity %d)" name p arity)
    positions;
  (* Normalise the (position, value) constraints: sort by position and
     collapse duplicates.  The previous implementation handed the raw
     list straight to the index, silently assuming ascending
     duplicate-free positions (and crashing or answering from a wrong
     bucket otherwise). *)
  let pairs =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.combine positions key)
  in
  let exception Unsat in
  match
    let rec dedup = function
      | ([] | [ _ ]) as l -> l
      | (p1, v1) :: ((p2, v2) :: _ as rest) when p1 = p2 ->
        if Value.equal v1 v2 then dedup rest else raise Unsat
      | pv :: rest -> pv :: dedup rest
    in
    dedup pairs
  with
  | exception Unsat -> []
  | pairs ->
    if eng.use_indexes then
      let idx = Store.ensure_index st (Array.of_list (List.map fst pairs)) in
      Store.index_lookup idx (Row.of_list (List.map snd pairs))
    else
      (* With indexes disabled, answer one-shot queries by scanning
         instead of permanently installing (and forever maintaining) an
         index per distinct constraint set. *)
      Store.fold
        (fun row acc ->
          if
            List.for_all
              (fun (p, v) -> Value.equal (Row.get row p) v)
              pairs
          then row :: acc
          else acc)
        st []

let relation_zset eng name : Zset.t =
  check_live eng;
  Store.to_zset (store eng name)

let relation_cardinal eng name : int =
  check_live eng;
  Store.cardinal (store eng name)

(** Total stored tuples, including index duplication and aggregate
    state — the "RAM" proxy used by the memory experiments. *)
let footprint eng =
  let rels =
    Hashtbl.fold (fun _ st acc -> acc + Store.footprint st) eng.rels 0
  in
  let aggs =
    Hashtbl.fold
      (fun _ tbl acc ->
        Row.Tbl.fold
          (fun _ g acc -> acc + 1 + Value.Map.cardinal g.elems)
          tbl acc)
      eng.agg_state 0
  in
  rels + aggs

let transaction eng : txn =
  check_live eng;
  if eng.txn_open then error "a transaction is already open";
  eng.txn_open <- true;
  { eng; ops = []; committed = false }

let check_input (eng : t) rel (row : Row.t) =
  match Ast.find_decl eng.program rel with
  | None -> error "unknown relation %s" rel
  | Some d ->
    if d.role <> Ast.Input then
      error "%s is not an input relation" rel;
    if Row.arity row <> Ast.arity d then
      error "%s: arity mismatch (expected %d, got %d)" rel (Ast.arity d)
        (Row.arity row);
    List.iteri
      (fun i (cname, ty) ->
        if not (Dtype.check ty (Row.get row i)) then
          error "%s.%s: value %s does not have type %s" rel cname
            (Value.to_string (Row.get row i)) (Dtype.to_string ty))
      d.cols

let insert txn rel row =
  check_input txn.eng rel row;
  txn.ops <- (rel, row, true) :: txn.ops

let delete txn rel row =
  check_input txn.eng rel row;
  txn.ops <- (rel, row, false) :: txn.ops

let rollback txn =
  txn.eng.txn_open <- false;
  txn.committed <- true

let stratum_active (changed : changed) (sc : stratum_c) =
  sc.crules <> []
  && List.exists
       (fun r -> not (Zset.is_empty (get_delta changed r)))
       sc.reads

(* Propagate a transaction's input deltas through the strata in
   dependency order. *)
let propagate_sequential eng (changed : changed) =
  Array.iter
    (fun sc ->
      if stratum_active changed sc then
        Obs.Histogram.time sc.hist @@ fun () ->
        if sc.info.recursive then process_recursive eng changed sc ~init:false
        else process_nonrecursive eng changed sc ~init:false)
    eng.strata

(* Parallel propagation: walk the dependency layers in order; within a
   layer, evaluate the active non-recursive strata as pool tasks
   (stores and [changed] are read-only during that phase), then apply
   the returned derivation deltas sequentially in ascending stratum
   order, then run the layer's recursive strata sequentially (their
   fixpoint loops mutate stores *while* joining, so they cannot share
   the read-only phase).

   Determinism: same-layer strata read none of each other's relations,
   so each task computes exactly the Zset the sequential schedule
   would; the apply order is the sequential order; and Zset merge /
   store sweeps are order-insensitive per relation.  Hence parallel
   commits return bit-identical deltas to sequential ones. *)
let propagate_parallel eng pool (changed : changed) =
  Array.iter
    (fun layer ->
      let active =
        Array.to_list layer
        |> List.filter (fun i -> stratum_active changed eng.strata.(i))
      in
      let nonrec_, rec_ =
        List.partition (fun i -> not eng.strata.(i).info.recursive) active
      in
      let tasks =
        Array.of_list
          (List.map
             (fun i () ->
               let sc = eng.strata.(i) in
               Obs.Histogram.time sc.hist (fun () ->
                   eval_nonrecursive eng changed sc ~init:false))
             nonrec_)
      in
      let deltas = Pool.run pool tasks in
      List.iteri
        (fun k i -> apply_nonrecursive eng changed eng.strata.(i) deltas.(k))
        nonrec_;
      List.iter
        (fun i ->
          let sc = eng.strata.(i) in
          Obs.Histogram.time sc.hist (fun () ->
              process_recursive eng changed sc ~init:false))
        rec_)
    eng.layers

let propagate eng (changed : changed) =
  match eng.pool with
  | Some pool when Pool.size pool > 0 -> propagate_parallel eng pool changed
  | _ -> propagate_sequential eng changed

(** Commit the transaction.  Returns the set-level delta of every
    relation whose contents changed (inputs included). *)
let commit (txn : txn) : (string * Zset.t) list =
  if txn.committed then error "transaction already committed";
  let eng = txn.eng in
  check_live eng;
  txn.committed <- true;
  eng.txn_open <- false;
  Obs.Counter.incr m_commits;
  Obs.Histogram.time h_commit @@ fun () ->
  let changed : changed = Hashtbl.create 16 in
  (* An exception between the first store mutation and the end of the
     last stratum leaves the engine half-updated; poison it so later
     calls raise clearly instead of returning inconsistent answers. *)
  (try
     (* Net effect of the input operations.  Under set semantics the
        in-order result per row depends only on the *last* op staged
        for it (insert -> present, delete -> absent), so the ops are
        collapsed to one per (relation, row) and applied as a single
        batch per relation — one index-maintenance sweep per store
        instead of one per operation. *)
     let staged : (string, bool Row.Tbl.t) Hashtbl.t = Hashtbl.create 8 in
     List.iter
       (fun (rel, row, is_insert) ->
         let tbl =
           match Hashtbl.find_opt staged rel with
           | Some t -> t
           | None ->
             let t = Row.Tbl.create 32 in
             Hashtbl.add staged rel t;
             t
         in
         Row.Tbl.replace tbl row is_insert)
       (List.rev txn.ops);
     Hashtbl.iter
       (fun rel tbl ->
         let ops = Row.Tbl.fold (fun row ins acc -> (row, ins) :: acc) tbl [] in
         let vis = Store.apply_set_batch (store eng rel) ops in
         if not (Zset.is_empty vis) then begin
           match Hashtbl.find_opt changed rel with
           | Some z -> z := Zset.union !z vis
           | None -> Hashtbl.add changed rel (ref vis)
         end)
       staged;
     if Obs.enabled () then
       Obs.Counter.add m_input_rows
         (Hashtbl.fold (fun _ z acc -> acc + Zset.cardinal !z) changed 0);
     propagate eng changed
   with e ->
     eng.poisoned <- true;
     raise e);
  let deltas =
    Hashtbl.fold
      (fun rel z acc -> if Zset.is_empty !z then acc else (rel, !z) :: acc)
      changed []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if Obs.enabled () then
    Obs.Counter.add m_output_rows
      (List.fold_left (fun acc (_, z) -> acc + Zset.cardinal z) 0 deltas);
  deltas

(** Deltas restricted to the program's output relations. *)
let output_deltas eng (deltas : (string * Zset.t) list) =
  List.filter
    (fun (rel, _) ->
      match Ast.find_decl eng.program rel with
      | Some d -> d.role = Ast.Output
      | None -> false)
    deltas

(** One-shot convenience: apply a batch of updates.  [updates] maps a
    relation to (row, insert?) pairs. *)
let apply eng (updates : (string * Row.t * bool) list) :
    (string * Zset.t) list =
  let txn = transaction eng in
  List.iter
    (fun (rel, row, ins) -> if ins then insert txn rel row else delete txn rel row)
    updates;
  commit txn
