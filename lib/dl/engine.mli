(** The incremental evaluation engine.

    The engine maintains the contents of every relation of a DL program
    and updates them {e incrementally} when inputs change: a transaction
    carries a batch of input insertions and deletions, and [commit]
    returns the exact set-level deltas of the computed relations —
    touching an amount of state proportional to the change rather than
    to the database.

    Algorithms (see the implementation for details): counting-based
    incremental view maintenance for non-recursive strata; semi-naive
    iteration for insertions and DRed (over-delete / re-derive) for
    deletions in recursive strata; projection-based maintenance for
    negation; per-group multisets for [group_by] aggregates. *)

exception Error of string

type t
(** An engine instance: the materialised state of one program. *)

val create :
  ?planner:bool -> ?use_indexes:bool -> ?pool:Pool.t -> Ast.program -> t
(** Type-check, stratify and materialise [program] (its facts are
    evaluated immediately).  [planner] (default [true]) enables greedy
    selectivity-based join ordering; [use_indexes] (default [true])
    enables per-join-key hash indexes.  [pool] (default: none, i.e.
    sequential) evaluates independent non-recursive strata of each
    dependency layer on the pool's worker domains during {!commit};
    passing a pool of size [0] is equivalent to passing none.  All
    three switches change performance only, never results — parallel
    commits return bit-identical deltas (see DESIGN "The domain pool").
    Attaching a pool with workers flips [Row] interning into its locked
    mode for the rest of the process.
    @raise Error if the program does not type-check or stratify. *)

(** {1 Transactions} *)

type txn

val transaction : t -> txn
(** Open a transaction.  Only one may be open at a time.
    @raise Error if one is already open. *)

val insert : txn -> string -> Row.t -> unit
(** Stage an insertion into an input relation.  Validates the target
    relation's role, arity and column types.
    @raise Error on any mismatch. *)

val delete : txn -> string -> Row.t -> unit
(** Stage a deletion; same validation as {!insert}. *)

val rollback : txn -> unit
(** Abandon the transaction (nothing was applied yet). *)

val commit : txn -> (string * Zset.t) list
(** Apply the staged updates and propagate through all strata.  Returns
    the set-level delta of every relation whose visible contents
    changed (inputs included), sorted by relation name.  Inserting a
    present row or deleting an absent one is a no-op; an insert and a
    delete of the same row in one transaction cancel.

    If propagation raises (e.g. a rule body evaluates [1 / 0]), the
    stores may hold some strata updated and others not; the engine is
    {e poisoned} and every subsequent read, query or transaction raises
    {!Error} until a fresh engine is built.  The commit path records
    per-stratum propagation timings and delta sizes into the [dl.*]
    metrics of {!Obs} when collection is enabled. *)

val apply : t -> (string * Row.t * bool) list -> (string * Zset.t) list
(** One-shot convenience: open, stage [(rel, row, insert?)] updates,
    commit. *)

val output_deltas : t -> (string * Zset.t) list -> (string * Zset.t) list
(** Restrict a delta list to the program's [output] relations. *)

(** {1 Inspection} *)

val relation_rows : t -> string -> Row.t list
(** Current visible contents of a relation (unordered). *)

val relations : t -> string list
(** All declared relation names, in declaration order. *)

val relation_zset : t -> string -> Zset.t
val relation_cardinal : t -> string -> int

val query : t -> string -> positions:int list -> key:Value.t list -> Row.t list
(** Indexed point query: rows whose columns at [positions] equal [key].
    Positions may arrive in any order and may repeat: the constraint
    list is normalised (sorted by position, duplicates collapsed), and
    duplicate positions constrained to conflicting values make the
    query unsatisfiable and return [[]].  Builds and maintains the
    index on first use, so repeated queries cost O(result).  When the
    engine was created with [use_indexes:false], queries fall back to a
    scan instead of installing (and forever maintaining) an index per
    distinct constraint set.
    @raise Error if [positions] and [key] differ in length or a
    position is outside the relation's arity. *)

val footprint : t -> int
(** Total stored tuples including index duplication and aggregate
    state — the memory proxy used by the RAM-overhead experiments. *)
