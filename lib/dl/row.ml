(* A row (fact) of a relation: a fixed-arity vector of values,
   hash-consed in a global weak table.

   Interning gives three things the hot path depends on:
   - equality is physical ([==]) — no structural array walks;
   - the structural hash is computed once at intern time and cached;
   - every live row has a unique intern [id], so weight maps (Z-sets)
     can be keyed by int instead of by value vector.

   The weak table means rows are collected once nothing outside the
   table references them; a later re-intern of the same value vector
   yields a fresh id.  That is sound because ids only need to be
   canonical among *live* rows: any structure keyed by id also holds
   the row itself (keeping it alive), and the weak table guarantees at
   most one live row per value vector at any time.

   Domain safety: the table is sharded by hash into [shard_count]
   independent weak sets, each with its own mutex, and ids come from an
   atomic counter.  Locking is gated on a sticky flag
   ([enable_domain_safety]) set by whoever creates a pool with workers,
   so purely sequential runs pay one atomic load per intern and no
   mutex traffic — keeping the pool-size-0 path at PR 2 speed. *)

type t = { values : Value.t array; hash : int; mutable id : int }

let values r = r.values
let get r i = r.values.(i)
let arity r = Array.length r.values
let id r = r.id

let hash_values (values : Value.t array) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 values

module WeakSet = Weak.Make (struct
  type nonrec t = t

  let equal a b =
    a == b || (a.hash = b.hash && Value.compare_arrays a.values b.values = 0)

  let hash r = r.hash
end)

let shard_count = 64 (* power of two: shard = hash land (shard_count-1) *)
let tables = Array.init shard_count (fun _ -> WeakSet.create 256)
let locks = Array.init shard_count (fun _ -> Mutex.create ())
let next_id = Atomic.make 0
let locking = Atomic.make false
let enable_domain_safety () = Atomic.set locking true

(* The probe record doubles as the interned row on a miss, so interning
   allocates exactly one record.  [id] is set before the row is
   published to the table, and never mutated afterwards. *)
let find_or_add tbl probe =
  match WeakSet.find_opt tbl probe with
  | Some r -> r
  | None ->
    probe.id <- Atomic.fetch_and_add next_id 1;
    WeakSet.add tbl probe;
    probe

let intern (values : Value.t array) : t =
  let probe = { values; hash = hash_values values; id = -1 } in
  let s = probe.hash land (shard_count - 1) in
  let tbl = tables.(s) in
  if Atomic.get locking then begin
    let m = locks.(s) in
    Mutex.lock m;
    let r = try find_or_add tbl probe with e -> Mutex.unlock m; raise e in
    Mutex.unlock m;
    r
  end
  else find_or_add tbl probe

let of_list vs = intern (Array.of_list vs)

let equal (a : t) (b : t) = a == b
let hash (r : t) = r.hash

(* Structural order (not intern-id order): callers sort rows for
   deterministic output, so the order must not depend on allocation
   history. *)
let compare (a : t) (b : t) =
  if a == b then 0 else Value.compare_arrays a.values b.values

let pp fmt (r : t) =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Value.pp)
    (Array.to_seq r.values)

let to_string r = Format.asprintf "%a" pp r

(** [project r positions] extracts (and interns) the sub-row at the
    given column positions, used as an index key. *)
let project (r : t) (positions : int array) : t =
  intern (Array.map (fun i -> r.values.(i)) positions)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Hash = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hash)
