(* A deliberately simple, non-incremental reference evaluator.

   It shares only the AST, value and builtin modules with the
   incremental engine, and evaluates rules by brute-force nested loops
   over association-list environments, recomputing every stratum to a
   fixpoint from scratch.  Its purpose is differential testing: for any
   program and any input database, the incremental engine's visible
   relations must coincide with this evaluator's result. *)

type db = (string, Row.Set.t) Hashtbl.t

let get (db : db) rel : Row.Set.t =
  match Hashtbl.find_opt db rel with Some s -> s | None -> Row.Set.empty

let add (db : db) rel row = Hashtbl.replace db rel (Row.Set.add row (get db rel))

type env = (string * Value.t) list

let rec eval_expr (env : env) (e : Ast.expr) : Value.t =
  match e with
  | Ast.EVar v -> List.assoc v env
  | Ast.EConst c -> c
  | Ast.ECall (f, args) -> Builtins.eval f (List.map (eval_expr env) args)
  | Ast.ETuple es -> Value.VTuple (Array.of_list (List.map (eval_expr env) es))
  | Ast.EIf (c, t, e) ->
    if Value.as_bool (eval_expr env c) then eval_expr env t else eval_expr env e

(* Extend [env] by matching [row] against the atom's patterns. *)
let match_atom (env : env) (args : Ast.pattern array) (row : Row.t) :
    env option =
  let n = Array.length args in
  let rec go env i =
    if i >= n then Some env
    else
      match args.(i) with
      | Ast.PWild -> go env (i + 1)
      | Ast.PConst c ->
        if Value.equal c (Row.get row i) then go env (i + 1) else None
      | Ast.PVar v -> (
        match List.assoc_opt v env with
        | Some x ->
          if Value.equal x (Row.get row i) then go env (i + 1) else None
        | None -> go ((v, Row.get row i) :: env) (i + 1))
  in
  go env 0

(* All environments satisfying the body, with multiplicity (list may
   contain duplicates, which matter only for aggregates). *)
let rec solve (db : db) (env : env) (body : Ast.literal list) : env list =
  match body with
  | [] -> [ env ]
  | lit :: rest -> (
    match lit with
    | Ast.LAtom a ->
      Row.Set.fold
        (fun row acc ->
          match match_atom env a.args row with
          | Some env' -> solve db env' rest @ acc
          | None -> acc)
        (get db a.rel) []
    | Ast.LNeg a ->
      let exists =
        Row.Set.exists
          (fun row -> match_atom env a.args row <> None)
          (get db a.rel)
      in
      if exists then [] else solve db env rest
    | Ast.LCond e ->
      if Value.as_bool (eval_expr env e) then solve db env rest else []
    | Ast.LAssign (v, e) -> solve db ((v, eval_expr env e) :: env) rest
    | Ast.LFlat (v, e) ->
      List.concat_map
        (fun x -> solve db ((v, x) :: env) rest)
        (Value.as_vec (eval_expr env e))
    | Ast.LAgg g ->
      (* [rest] is empty (checked by the type checker); aggregation is
         applied over the environments accumulated so far by the caller,
         so it is handled in [eval_rule] below. *)
      ignore g;
      invalid_arg "Naive.solve: aggregate literal must be handled by eval_rule")

let eval_rule (db : db) (rule : Ast.rule) : Row.t list =
  let rec split acc = function
    | [ Ast.LAgg g ] -> (List.rev acc, Some g)
    | [] -> (List.rev acc, None)
    | lit :: rest -> split (lit :: acc) rest
  in
  let body, agg = split [] rule.body in
  let envs = solve db [] body in
  match agg with
  | None ->
    List.map
      (fun env -> Row.intern (Array.map (eval_expr env) rule.head.hargs))
      envs
  | Some g ->
    (* Group environments by the group_by variables. *)
    let groups : (Row.t * Value.t list ref) list ref = ref [] in
    List.iter
      (fun env ->
        let key =
          Row.of_list (List.map (fun v -> List.assoc v env) g.agg_by)
        in
        let value = eval_expr env g.agg_expr in
        match List.find_opt (fun (k, _) -> Row.equal k key) !groups with
        | Some (_, vs) -> vs := value :: !vs
        | None -> groups := (key, ref [ value ]) :: !groups)
      envs;
    List.map
      (fun (key, vs) ->
        let sorted = List.sort Value.compare !vs in
        (* Build (value, multiplicity) runs for the aggregate library. *)
        let runs =
          List.fold_left
            (fun acc v ->
              match acc with
              | (v', n) :: rest when Value.equal v v' -> (v', n + 1) :: rest
              | _ -> (v, 1) :: acc)
            [] sorted
          |> List.rev
        in
        let result = Builtins.agg_eval g.agg_func runs in
        let env =
          (g.agg_out, result)
          :: List.map2 (fun v x -> (v, x)) g.agg_by
               (Array.to_list (Row.values key))
        in
        Row.intern (Array.map (eval_expr env) rule.head.hargs))
      !groups

(** Evaluate [program] over the given input database (relation name ->
    rows).  Returns the full contents of every relation. *)
let run (program : Ast.program) (inputs : (string * Row.t list) list) : db =
  let db : db = Hashtbl.create 16 in
  List.iter (fun (rel, rows) -> List.iter (add db rel) rows) inputs;
  let strata = Stratify.stratify program in
  List.iter
    (fun (s : Stratify.stratum) ->
      (* Recompute the stratum to a fixpoint from scratch. *)
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun rule ->
            List.iter
              (fun row ->
                if not (Row.Set.mem row (get db rule.Ast.head.hrel)) then begin
                  add db rule.Ast.head.hrel row;
                  changed := true
                end)
              (eval_rule db rule))
          s.rules
      done)
    strata;
  db
