(** An in-process P4Runtime: the API through which the control plane
    programs data-plane switches and receives digests, mirroring the
    P4Runtime gRPC service — WriteRequest batches with atomic
    semantics, entity reads, multicast-group programming, and a digest
    stream with acknowledgements.  The transport is a function call
    instead of gRPC, but message shapes and semantics follow the spec. *)

exception Rpc_error of string

(** {1 Entities} *)

type field_match =
  | FmExact of int64
  | FmLpm of int64 * int
  | FmTernary of int64 * int64
  | FmOptional of int64 option

type table_entry = {
  table_id : int;
  matches : field_match list;
  priority : int;
  action_id : int;
  action_args : int64 list;
}

type multicast_group_entry = { group_id : int64; replicas : int64 list }

type entity =
  | TableEntry of table_entry
  | MulticastGroupEntry of multicast_group_entry

type update_type = Insert | Modify | Delete

type update = { utype : update_type; entity : entity }

type digest_list = {
  digest_id : int;
  list_id : int;
  entries : int64 list list;  (** each entry: field values in order *)
}

(** {1 Server} *)

type server

val attach : P4.Switch.t -> server
(** Attach a P4Runtime server to a switch (deriving its P4Info). *)

val info : server -> P4.P4info.t

val write : server -> update list -> (unit, string) result
(** Execute a batch atomically: on any error (unknown ids, match-kind
    mismatches, duplicate inserts, missing modify targets, capacity)
    the updates already applied are rolled back. *)

val write_exn : server -> update list -> unit
(** @raise Rpc_error instead of returning [Error]. *)

val read_table : server -> table_id:int -> table_entry list
(** Read back a table's entries in wire form. *)

val multicast_groups : server -> (int64 * int64 list) list
(** Read back every programmed multicast group, sorted by group id. *)

val stream_digests : server -> digest_list list
(** Drain pending digests as DigestList messages; consecutive digests
    of the same type are batched.  Lists from earlier calls that were
    never acknowledged are redelivered first (oldest first) — consumers
    must deduplicate by [list_id].  Messages remain retransmittable
    until acknowledged. *)

val ack_digest_list : server -> list_id:int -> unit
val unacked_digests : server -> digest_list list

(** {1 Client-side helpers} *)

val entry :
  P4.P4info.t ->
  table:string ->
  matches:field_match list ->
  ?priority:int ->
  action:string ->
  args:int64 list ->
  unit ->
  table_entry
(** Build a table entry from names instead of numeric ids.
    @raise Rpc_error on unknown names. *)

val insert : table_entry -> update
val modify : table_entry -> update
val delete : table_entry -> update
val set_multicast : group:int64 -> ports:int64 list -> update

val to_entry : P4.P4info.t -> table_entry -> string * P4.Entry.t
(** Resolve a wire entry against P4Info into the switch-internal form:
    [(table_name, entry)], validating table/action ids, action
    membership, and match kinds — the same conversion the server applies
    on write.  Clients use it to mirror their own writes (e.g. to feed
    an incremental flow compiler with Z-set deltas).
    @raise Rpc_error on validation failure. *)

(** {1 Wire codec}

    Serialized message shapes for the five exchanges the controller
    performs, so a byte-oriented transport ({!Transport.wire}) can
    round-trip them.  JSON keeps the repo dependency-free; the real
    service's protobufs carry the same payloads. *)
module Wire : sig
  type request =
    | Write of update list
    | Read_table of int
    | Read_groups
    | Poll_digests
    | Ack of int

  type response =
    | Write_reply of (unit, string) result
    | Table of table_entry list
    | Groups of (int64 * int64 list) list
    | Digests of digest_list list
    | Acked
    | Error_reply of string
        (** a server-side failure outside [write]'s result channel
            (e.g. an unknown table id on read) *)

  val encode_request : request -> string
  val decode_request : string -> (request, string) result
  val encode_response : response -> string
  val decode_response : string -> (response, string) result

  val encode_request_bin : request -> string
  val decode_request_bin : string -> (request, string) result
  val encode_response_bin : response -> string
  val decode_response_bin : string -> (response, string) result
  (** The same messages in the compact binary form ({!Ovsdb.Binc}),
      used when a socket connection negotiated the binary codec.  The
      decoders are total: corrupt input yields [Error], never an
      exception. *)

  val dispatch : server -> request -> response
  (** Server side: execute one request.  Server exceptions become
      [Error_reply]; a wire peer never sees an OCaml exception. *)
end
