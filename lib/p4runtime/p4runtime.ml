(* An in-process P4Runtime: the API through which the control plane
   programs data-plane switches and receives digests, mirroring the
   P4Runtime gRPC service (WriteRequest batches with atomic semantics,
   entity reads, multicast group programming, and a digest stream with
   acknowledgements).  The transport is a function call instead of gRPC,
   but message shapes and semantics follow the spec. *)

exception Rpc_error of string

let error fmt = Format.kasprintf (fun s -> raise (Rpc_error s)) fmt

(* ---------------- entities ---------------- *)

type field_match =
  | FmExact of int64
  | FmLpm of int64 * int
  | FmTernary of int64 * int64
  | FmOptional of int64 option

type table_entry = {
  table_id : int;
  matches : field_match list;
  priority : int;
  action_id : int;
  action_args : int64 list;
}

type multicast_group_entry = { group_id : int64; replicas : int64 list }

type entity =
  | TableEntry of table_entry
  | MulticastGroupEntry of multicast_group_entry

type update_type = Insert | Modify | Delete

type update = { utype : update_type; entity : entity }

type digest_list = {
  digest_id : int;
  list_id : int;
  entries : int64 list list;       (* each entry: field values in order *)
}

(* ---------------- server ---------------- *)

type server = {
  switch : P4.Switch.t;
  info : P4.P4info.t;
  mutable next_list_id : int;
  mutable unacked : (int * digest_list) list;
}

let attach (switch : P4.Switch.t) : server =
  { switch; info = P4.P4info.of_program switch.P4.Switch.program;
    next_list_id = 0; unacked = [] }

let info (srv : server) = srv.info

(* Convert a wire table entry into the switch's internal form, with full
   validation against P4Info. *)
let to_entry (info : P4.P4info.t) (te : table_entry) : string * P4.Entry.t =
  let tinfo =
    match P4.P4info.find_table_by_id info te.table_id with
    | Some t -> t
    | None -> error "unknown table id %d" te.table_id
  in
  let ainfo =
    match P4.P4info.find_action_by_id info te.action_id with
    | Some a -> a
    | None -> error "unknown action id %d" te.action_id
  in
  if not (List.mem ainfo.action_name tinfo.action_names) then
    error "action %s not allowed in table %s" ainfo.action_name tinfo.table_name;
  if List.length te.matches <> List.length tinfo.key_kinds then
    error "table %s: expected %d matches, got %d" tinfo.table_name
      (List.length tinfo.key_kinds) (List.length te.matches);
  let matches =
    List.map2
      (fun kind fm ->
        match kind, fm with
        | P4.Program.Exact, FmExact v -> P4.Entry.MExact v
        | P4.Program.Lpm, FmLpm (v, l) -> P4.Entry.MLpm (v, l)
        | P4.Program.Ternary, FmTernary (v, m) -> P4.Entry.MTernary (v, m)
        | P4.Program.Ternary, FmExact v -> P4.Entry.MTernary (v, -1L)
        | P4.Program.Optional, FmOptional (Some v) -> P4.Entry.MExact v
        | P4.Program.Optional, FmOptional None -> P4.Entry.MAny
        | _ -> error "table %s: match kind mismatch" tinfo.table_name)
      tinfo.key_kinds te.matches
  in
  ( tinfo.table_name,
    { P4.Entry.matches; priority = te.priority;
      action = ainfo.action_name; args = te.action_args } )

let to_switch_entry (srv : server) (te : table_entry) : string * P4.Entry.t =
  to_entry srv.info te

let apply_update (srv : server) (u : update) : unit =
  match u.entity with
  | TableEntry te -> (
    let table, entry = to_switch_entry srv te in
    match u.utype with
    | Insert ->
      if P4.Switch.find_same_match srv.switch table entry <> None then
        error "table %s: entry already exists" table
      else P4.Switch.insert_entry srv.switch table entry
    | Modify ->
      if P4.Switch.find_same_match srv.switch table entry = None then
        error "table %s: no such entry to modify" table
      else P4.Switch.insert_entry srv.switch table entry
    | Delete -> P4.Switch.delete_entry srv.switch table entry)
  | MulticastGroupEntry mge -> (
    match u.utype with
    | Insert | Modify ->
      P4.Switch.set_mcast_group srv.switch mge.group_id mge.replicas
    | Delete -> P4.Switch.set_mcast_group srv.switch mge.group_id [])

(** Execute a batch of updates.  Per the P4Runtime spec the batch is
    atomic: on any error, updates already applied are rolled back and
    [Error] is returned. *)
let write (srv : server) (updates : update list) : (unit, string) result =
  let applied = ref [] in
  let invert (u : update) : update =
    match u.utype with
    | Insert -> { u with utype = Delete }
    | Delete -> { u with utype = Insert }
    | Modify -> u (* restored explicitly below *)
  in
  try
    List.iter
      (fun u ->
        (* For Modify and Delete, remember the previous state to restore. *)
        let undo =
          match u.entity, u.utype with
          | TableEntry te, (Modify | Delete) ->
            let table, entry = to_switch_entry srv te in
            let prev = P4.Switch.find_same_match srv.switch table entry in
            (match prev with
            | Some old ->
              let old_te = { te with action_id = te.action_id } in
              ignore old_te;
              Some
                (fun () ->
                  P4.Switch.insert_entry srv.switch table old)
            | None -> Some (fun () -> ()))
          | TableEntry te, Insert ->
            let _ = te in
            None
          | MulticastGroupEntry mge, _ ->
            let prev = P4.Switch.mcast_group srv.switch mge.group_id in
            Some
              (fun () ->
                P4.Switch.set_mcast_group srv.switch mge.group_id
                  (Option.value ~default:[] prev))
        in
        apply_update srv u;
        applied := (u, undo) :: !applied)
      updates;
    Ok ()
  with
  | Rpc_error msg | P4.Switch.Switch_error msg ->
    List.iter
      (fun (u, undo) ->
        match undo with
        | Some restore -> restore ()
        | None -> (
          try apply_update srv (invert u) with _ -> ()))
      !applied;
    Error msg

let write_exn srv updates =
  match write srv updates with Ok () -> () | Error msg -> error "%s" msg

(** Read back the entries of a table (by id). *)
let read_table (srv : server) ~(table_id : int) : table_entry list =
  let tinfo =
    match P4.P4info.find_table_by_id srv.info table_id with
    | Some t -> t
    | None -> error "unknown table id %d" table_id
  in
  List.map
    (fun (e : P4.Entry.t) ->
      let ainfo =
        match P4.P4info.find_action srv.info e.action with
        | Some a -> a
        | None -> error "entry action %s missing from P4Info" e.action
      in
      let matches =
        List.map2
          (fun kind mv ->
            match kind, mv with
            | P4.Program.Exact, P4.Entry.MExact v -> FmExact v
            | P4.Program.Lpm, P4.Entry.MLpm (v, l) -> FmLpm (v, l)
            | P4.Program.Ternary, P4.Entry.MTernary (v, m) -> FmTernary (v, m)
            | P4.Program.Optional, P4.Entry.MExact v -> FmOptional (Some v)
            | P4.Program.Optional, P4.Entry.MAny -> FmOptional None
            | _, mv ->
              error "entry match %s inconsistent with key kind"
                (P4.Entry.match_value_to_string mv))
          tinfo.key_kinds e.matches
      in
      { table_id; matches; priority = e.priority;
        action_id = ainfo.action_id; action_args = e.args })
    (P4.Switch.table_entries srv.switch tinfo.table_name)

(** Read back every multicast group currently programmed. *)
let multicast_groups (srv : server) : (int64 * int64 list) list =
  P4.Switch.mcast_groups_list srv.switch

(** Drain pending digests as DigestList messages (the stream channel).
    Un-acknowledged lists from earlier calls are redelivered first
    (oldest first), exactly as a stream channel retransmits after a
    missing ack; consumers must dedup by [list_id].  Messages stay
    un-acknowledged until [ack_digest_list]. *)
let stream_digests (srv : server) : digest_list list =
  let redelivered = List.rev_map snd srv.unacked in
  let msgs = P4.Switch.take_digests srv.switch in
  (* group consecutive digests of the same type into lists, as the
     target would *)
  let grouped = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (d : P4.Switch.digest_msg) ->
      let dinfo =
        match P4.P4info.find_digest srv.info d.digest_name with
        | Some i -> i
        | None -> error "digest %s missing from P4Info" d.digest_name
      in
      let values = List.map snd d.values in
      match Hashtbl.find_opt grouped dinfo.digest_id with
      | Some entries -> entries := values :: !entries
      | None ->
        Hashtbl.add grouped dinfo.digest_id (ref [ values ]);
        order := dinfo.digest_id :: !order)
    msgs;
  redelivered
  @ List.rev_map
      (fun digest_id ->
        let entries = List.rev !(Hashtbl.find grouped digest_id) in
        let list_id = srv.next_list_id in
        srv.next_list_id <- list_id + 1;
        let dl = { digest_id; list_id; entries } in
        srv.unacked <- (list_id, dl) :: srv.unacked;
        dl)
      !order

(** Acknowledge a digest list, releasing it from the retransmit queue. *)
let ack_digest_list (srv : server) ~(list_id : int) : unit =
  srv.unacked <- List.remove_assoc list_id srv.unacked

let unacked_digests (srv : server) : digest_list list = List.map snd srv.unacked

(* ---------------- client-side helpers ---------------- *)

(** Build a table entry from names instead of ids. *)
let entry (info : P4.P4info.t) ~table ~matches ?(priority = 0) ~action ~args ()
    : table_entry =
  let tinfo =
    match P4.P4info.find_table info table with
    | Some t -> t
    | None -> error "unknown table %s" table
  in
  let ainfo =
    match P4.P4info.find_action info action with
    | Some a -> a
    | None -> error "unknown action %s" action
  in
  { table_id = tinfo.table_id; matches; priority;
    action_id = ainfo.action_id; action_args = args }

let insert e = { utype = Insert; entity = TableEntry e }
let modify e = { utype = Modify; entity = TableEntry e }
let delete e = { utype = Delete; entity = TableEntry e }

let set_multicast ~group ~ports =
  { utype = Modify; entity = MulticastGroupEntry { group_id = group; replicas = ports } }

(* ---------------- wire codec ---------------- *)

(* A serialized message shape for the five P4Runtime exchanges the
   controller performs, so a byte-oriented transport can round-trip
   them.  JSON via Ovsdb.Json keeps the repo dependency-free; the gRPC
   protobufs of the real service carry the same payloads. *)
module Wire = struct
  module J = Ovsdb.Json

  type request =
    | Write of update list
    | Read_table of int
    | Read_groups
    | Poll_digests
    | Ack of int

  type response =
    | Write_reply of (unit, string) result
    | Table of table_entry list
    | Groups of (int64 * int64 list) list
    | Digests of digest_list list
    | Acked
    | Error_reply of string

  exception Codec of string

  let cerror fmt = Format.kasprintf (fun s -> raise (Codec s)) fmt
  let int_ i = J.Int (Int64.of_int i)

  let to_int = function
    | J.Int i -> Int64.to_int i
    | j -> cerror "expected int, got %s" (J.to_string j)

  let to_int64 = function
    | J.Int i -> i
    | j -> cerror "expected int64, got %s" (J.to_string j)

  let field_match_to_json = function
    | FmExact v -> J.List [ J.String "exact"; J.Int v ]
    | FmLpm (v, l) -> J.List [ J.String "lpm"; J.Int v; int_ l ]
    | FmTernary (v, m) -> J.List [ J.String "ternary"; J.Int v; J.Int m ]
    | FmOptional (Some v) -> J.List [ J.String "optional"; J.Int v ]
    | FmOptional None -> J.List [ J.String "optional" ]

  let field_match_of_json = function
    | J.List [ J.String "exact"; J.Int v ] -> FmExact v
    | J.List [ J.String "lpm"; J.Int v; l ] -> FmLpm (v, to_int l)
    | J.List [ J.String "ternary"; J.Int v; J.Int m ] -> FmTernary (v, m)
    | J.List [ J.String "optional"; J.Int v ] -> FmOptional (Some v)
    | J.List [ J.String "optional" ] -> FmOptional None
    | j -> cerror "bad field match %s" (J.to_string j)

  let table_entry_to_json (te : table_entry) =
    J.Obj
      [ ("table_id", int_ te.table_id);
        ("matches", J.List (List.map field_match_to_json te.matches));
        ("priority", int_ te.priority);
        ("action_id", int_ te.action_id);
        ("action_args", J.List (List.map (fun a -> J.Int a) te.action_args)) ]

  let mem name j =
    match J.member name j with
    | Some v -> v
    | None -> cerror "missing field %s in %s" name (J.to_string j)

  let table_entry_of_json j =
    {
      table_id = to_int (mem "table_id" j);
      matches = List.map field_match_of_json (J.to_list_exn (mem "matches" j));
      priority = to_int (mem "priority" j);
      action_id = to_int (mem "action_id" j);
      action_args = List.map to_int64 (J.to_list_exn (mem "action_args" j));
    }

  let update_to_json (u : update) =
    let utype =
      match u.utype with
      | Insert -> "insert"
      | Modify -> "modify"
      | Delete -> "delete"
    in
    let entity =
      match u.entity with
      | TableEntry te -> J.Obj [ ("table_entry", table_entry_to_json te) ]
      | MulticastGroupEntry g ->
        J.Obj
          [ ("multicast_group",
             J.Obj
               [ ("group_id", J.Int g.group_id);
                 ("replicas", J.List (List.map (fun r -> J.Int r) g.replicas))
               ]) ]
    in
    J.Obj [ ("type", J.String utype); ("entity", entity) ]

  let update_of_json j =
    let utype =
      match mem "type" j with
      | J.String "insert" -> Insert
      | J.String "modify" -> Modify
      | J.String "delete" -> Delete
      | t -> cerror "bad update type %s" (J.to_string t)
    in
    let entity =
      let e = mem "entity" j in
      match J.member "table_entry" e, J.member "multicast_group" e with
      | Some te, None -> TableEntry (table_entry_of_json te)
      | None, Some g ->
        MulticastGroupEntry
          {
            group_id = to_int64 (mem "group_id" g);
            replicas = List.map to_int64 (J.to_list_exn (mem "replicas" g));
          }
      | _ -> cerror "bad update entity %s" (J.to_string e)
    in
    { utype; entity }

  let digest_list_to_json (dl : digest_list) =
    J.Obj
      [ ("digest_id", int_ dl.digest_id);
        ("list_id", int_ dl.list_id);
        ("entries",
         J.List
           (List.map
              (fun entry -> J.List (List.map (fun v -> J.Int v) entry))
              dl.entries)) ]

  let digest_list_of_json j =
    {
      digest_id = to_int (mem "digest_id" j);
      list_id = to_int (mem "list_id" j);
      entries =
        List.map
          (fun e -> List.map to_int64 (J.to_list_exn e))
          (J.to_list_exn (mem "entries" j));
    }

  let request_to_json = function
    | Write updates ->
      J.Obj
        [ ("op", J.String "write");
          ("updates", J.List (List.map update_to_json updates)) ]
    | Read_table id ->
      J.Obj [ ("op", J.String "read_table"); ("table_id", int_ id) ]
    | Read_groups -> J.Obj [ ("op", J.String "read_groups") ]
    | Poll_digests -> J.Obj [ ("op", J.String "poll_digests") ]
    | Ack list_id -> J.Obj [ ("op", J.String "ack"); ("list_id", int_ list_id) ]

  let request_of_json j =
    match mem "op" j with
    | J.String "write" ->
      Write (List.map update_of_json (J.to_list_exn (mem "updates" j)))
    | J.String "read_table" -> Read_table (to_int (mem "table_id" j))
    | J.String "read_groups" -> Read_groups
    | J.String "poll_digests" -> Poll_digests
    | J.String "ack" -> Ack (to_int (mem "list_id" j))
    | op -> cerror "bad request op %s" (J.to_string op)

  let response_to_json = function
    | Write_reply (Ok ()) -> J.Obj [ ("op", J.String "write_ok") ]
    | Write_reply (Error msg) ->
      J.Obj [ ("op", J.String "write_error"); ("message", J.String msg) ]
    | Table entries ->
      J.Obj
        [ ("op", J.String "table");
          ("entries", J.List (List.map table_entry_to_json entries)) ]
    | Groups groups ->
      J.Obj
        [ ("op", J.String "groups");
          ("groups",
           J.List
             (List.map
                (fun (gid, ports) ->
                  J.List
                    [ J.Int gid; J.List (List.map (fun p -> J.Int p) ports) ])
                groups)) ]
    | Digests dls ->
      J.Obj
        [ ("op", J.String "digests");
          ("lists", J.List (List.map digest_list_to_json dls)) ]
    | Acked -> J.Obj [ ("op", J.String "acked") ]
    | Error_reply msg ->
      J.Obj [ ("op", J.String "error"); ("message", J.String msg) ]

  let response_of_json j =
    match mem "op" j with
    | J.String "write_ok" -> Write_reply (Ok ())
    | J.String "write_error" ->
      Write_reply (Error (J.to_string_exn (mem "message" j)))
    | J.String "table" ->
      Table (List.map table_entry_of_json (J.to_list_exn (mem "entries" j)))
    | J.String "groups" ->
      Groups
        (List.map
           (function
             | J.List [ gid; ports ] ->
               (to_int64 gid, List.map to_int64 (J.to_list_exn ports))
             | g -> cerror "bad group %s" (J.to_string g))
           (J.to_list_exn (mem "groups" j)))
    | J.String "digests" ->
      Digests (List.map digest_list_of_json (J.to_list_exn (mem "lists" j)))
    | J.String "acked" -> Acked
    | J.String "error" -> Error_reply (J.to_string_exn (mem "message" j))
    | op -> cerror "bad response op %s" (J.to_string op)

  let encode_request r = J.to_string (request_to_json r)
  let encode_response r = J.to_string (response_to_json r)

  (* ---- binary codec: the same messages in Ovsdb.Binc's compact
     form, for peers that negotiated the binary frame codec.  Ints
     ride as 8-byte big-endian int64s (total for any value, signed
     included); lists and strings are varint-length-prefixed.  The
     decoders are strict: unknown tags raise [Binc.Error], which
     [Binc.decode] turns into [Error] — corrupt input never escapes
     as an exception. *)

  module B = Ovsdb.Binc

  let bfail fmt = Format.kasprintf (fun m -> raise (B.Error m)) fmt
  let w_int b i = B.w_int64 b (Int64.of_int i)
  let r_int r = Int64.to_int (B.r_int64 r)

  let w_field_match b = function
    | FmExact v ->
      B.w_u8 b 0;
      B.w_int64 b v
    | FmLpm (v, l) ->
      B.w_u8 b 1;
      B.w_int64 b v;
      w_int b l
    | FmTernary (v, m) ->
      B.w_u8 b 2;
      B.w_int64 b v;
      B.w_int64 b m
    | FmOptional (Some v) ->
      B.w_u8 b 3;
      B.w_int64 b v
    | FmOptional None -> B.w_u8 b 4

  let r_field_match r =
    match B.r_u8 r with
    | 0 -> FmExact (B.r_int64 r)
    | 1 ->
      let v = B.r_int64 r in
      FmLpm (v, r_int r)
    | 2 ->
      let v = B.r_int64 r in
      FmTernary (v, B.r_int64 r)
    | 3 -> FmOptional (Some (B.r_int64 r))
    | 4 -> FmOptional None
    | t -> bfail "bad field-match tag %d" t

  let w_table_entry b (te : table_entry) =
    w_int b te.table_id;
    B.w_list w_field_match b te.matches;
    w_int b te.priority;
    w_int b te.action_id;
    B.w_list B.w_int64 b te.action_args

  let r_table_entry r =
    let table_id = r_int r in
    let matches = B.r_list r_field_match r in
    let priority = r_int r in
    let action_id = r_int r in
    let action_args = B.r_list B.r_int64 r in
    { table_id; matches; priority; action_id; action_args }

  let w_update b (u : update) =
    B.w_u8 b
      (match u.utype with Insert -> 0 | Modify -> 1 | Delete -> 2);
    match u.entity with
    | TableEntry te ->
      B.w_u8 b 0;
      w_table_entry b te
    | MulticastGroupEntry g ->
      B.w_u8 b 1;
      B.w_int64 b g.group_id;
      B.w_list B.w_int64 b g.replicas

  let r_update r =
    let utype =
      match B.r_u8 r with
      | 0 -> Insert
      | 1 -> Modify
      | 2 -> Delete
      | t -> bfail "bad update type %d" t
    in
    let entity =
      match B.r_u8 r with
      | 0 -> TableEntry (r_table_entry r)
      | 1 ->
        let group_id = B.r_int64 r in
        let replicas = B.r_list B.r_int64 r in
        MulticastGroupEntry { group_id; replicas }
      | t -> bfail "bad entity tag %d" t
    in
    { utype; entity }

  let w_digest_list b (dl : digest_list) =
    w_int b dl.digest_id;
    w_int b dl.list_id;
    B.w_list (B.w_list B.w_int64) b dl.entries

  let r_digest_list r =
    let digest_id = r_int r in
    let list_id = r_int r in
    let entries = B.r_list (B.r_list B.r_int64) r in
    { digest_id; list_id; entries }

  let w_request b = function
    | Write updates ->
      B.w_u8 b 0;
      B.w_list w_update b updates
    | Read_table id ->
      B.w_u8 b 1;
      w_int b id
    | Read_groups -> B.w_u8 b 2
    | Poll_digests -> B.w_u8 b 3
    | Ack list_id ->
      B.w_u8 b 4;
      w_int b list_id

  let r_request r =
    match B.r_u8 r with
    | 0 -> Write (B.r_list r_update r)
    | 1 -> Read_table (r_int r)
    | 2 -> Read_groups
    | 3 -> Poll_digests
    | 4 -> Ack (r_int r)
    | t -> bfail "bad request tag %d" t

  let w_response b = function
    | Write_reply (Ok ()) -> B.w_u8 b 0
    | Write_reply (Error msg) ->
      B.w_u8 b 1;
      B.w_string b msg
    | Table entries ->
      B.w_u8 b 2;
      B.w_list w_table_entry b entries
    | Groups groups ->
      B.w_u8 b 3;
      B.w_list
        (fun b (gid, ports) ->
          B.w_int64 b gid;
          B.w_list B.w_int64 b ports)
        b groups
    | Digests dls ->
      B.w_u8 b 4;
      B.w_list w_digest_list b dls
    | Acked -> B.w_u8 b 5
    | Error_reply msg ->
      B.w_u8 b 6;
      B.w_string b msg

  let r_response r =
    match B.r_u8 r with
    | 0 -> Write_reply (Ok ())
    | 1 -> Write_reply (Error (B.r_string r))
    | 2 -> Table (B.r_list r_table_entry r)
    | 3 ->
      Groups
        (B.r_list
           (fun r ->
             let gid = B.r_int64 r in
             let ports = B.r_list B.r_int64 r in
             (gid, ports))
           r)
    | 4 -> Digests (B.r_list r_digest_list r)
    | 5 -> Acked
    | 6 -> Error_reply (B.r_string r)
    | t -> bfail "bad response tag %d" t

  let encode_request_bin req = B.to_string w_request req
  let encode_response_bin resp = B.to_string w_response resp
  let decode_request_bin s = B.decode r_request s
  let decode_response_bin s = B.decode r_response s

  let decode guard s =
    match J.of_string s with
    | exception J.Parse_error msg -> Error msg
    | j -> ( try Ok (guard j) with Codec msg -> Error msg)

  let decode_request s = decode request_of_json s
  let decode_response s = decode response_of_json s

  (** Server side of the wire protocol: execute one request.  Server
      exceptions become [Error_reply] — a wire peer never sees an OCaml
      exception. *)
  let dispatch (srv : server) (req : request) : response =
    try
      match req with
      | Write updates -> Write_reply (write srv updates)
      | Read_table table_id -> Table (read_table srv ~table_id)
      | Read_groups -> Groups (multicast_groups srv)
      | Poll_digests -> Digests (stream_digests srv)
      | Ack list_id ->
        ack_digest_list srv ~list_id;
        Acked
    with
    | Rpc_error msg | P4.Switch.Switch_error msg -> Error_reply msg
end
