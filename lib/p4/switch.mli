(** The behavioural model: a software switch that executes a mini-P4
    program, in the role BMv2 plays in the paper's prototype.

    Packet life cycle (v1model-like): parse → ingress control →
    replication (unicast / multicast / clones) → egress control per
    copy → deparse.  The switch also holds the control-plane-visible
    state: table entries, multicast groups, counters, and the queue of
    emitted digests.

    By default packets run on a *compiled* fast path: the program is
    resolved once at [create] into slot arrays and closures, and each
    table keeps an incrementally-updated {!Matcher.t}, so per-packet
    work is a handful of lookups with no list allocation.
    [create ~use_compiled:false] instead runs the reference AST
    interpreter — bit-identical by construction of the shared
    [Entry.rank_compare] order, and enforced by the differential
    suite. *)

exception Switch_error of string

type t = {
  program : Program.t;
  name : string;
  ports : int list;
  tables : (string, table_state) Hashtbl.t;
  mcast_groups : (int64, int64 list) Hashtbl.t;
  counters : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  registers : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  digest_queue : digest_msg list ref;
  packets_in : int Atomic.t;   (** domain-safe packet counters *)
  packets_out : int Atomic.t;
  compiled : compiled;
  use_compiled : bool;
}

and table_state

and compiled

and digest_msg = { digest_name : string; values : (string * int64) list }

val create : ?name:string -> ?ports:int list -> ?use_compiled:bool -> Program.t -> t
(** Instantiate a switch running [program].  [use_compiled] (default
    true) selects the compiled fast path; [false] keeps the naive AST
    interpreter for differential testing.
    @raise Switch_error if the program does not type-check. *)

(** {1 Control-plane operations} *)

val insert_entry : t -> string -> Entry.t -> unit
(** Install an entry; replaces an existing entry with the same match
    part.  Validates match kinds, the action and its arity against the
    program, and the table's declared capacity.  Updates the table's
    compiled matcher incrementally.
    @raise Switch_error on any violation. *)

val delete_entry : t -> string -> Entry.t -> unit
(** Remove the entry with the same match part, if present. *)

val find_same_match : t -> string -> Entry.t -> Entry.t option
(** The installed entry with the same match part, if any (O(1)). *)

val table_entries : t -> string -> Entry.t list
(** Installed entries in unspecified (hashtable) order. *)

val table_entries_ranked : t -> string -> Entry.t list
(** Installed entries highest-rank first under [Entry.rank_compare] —
    the order in which the data plane resolves overlaps, suitable for
    first-defined-wins folds (e.g. the FDD flow compiler). *)

val entry_count : t -> string -> int

val lookup : ?use_compiled:bool -> t -> string -> int64 array -> Entry.t option
(** The winning entry for raw key values (one per key column, already
    truncated to the column width), under the (lpm_length, priority,
    structural) total order.  [use_compiled:false] forces the naive
    scan over the entry store, mirroring [Engine.query ~use_indexes]. *)

val matcher_repr : t -> string -> string
(** Which compiled representation a table's schema selected:
    ["exact"], ["lpm-trie"] or ["scan"]. *)

val set_mcast_group : t -> int64 -> int64 list -> unit
(** Define the replica port list of a multicast group; an empty list
    removes the group. *)

val mcast_group : t -> int64 -> int64 list option

val mcast_groups_list : t -> (int64 * int64 list) list
(** All multicast groups, sorted by group id. *)

val take_digests : t -> digest_msg list
(** Drain queued digests, oldest first. *)

val counter_value : t -> string -> int64 -> int64
(** Current value of a counter cell.
    @raise Switch_error on unknown counters. *)

val register_value : t -> string -> int64 -> int64
(** Current value of a register cell (0 if never written). *)

val register_write : t -> string -> int64 -> int64 -> unit
(** Control-plane write to a register cell. *)

(** {1 The data path} *)

val process : t -> in_port:int -> Packet.t -> (int * Packet.t) list
(** Inject a packet; returns the (port, packet) copies the switch
    emits.  A parser reject or a [Drop] verdict yields no output; a
    [Drop] is sticky and suppresses clones too.  Digests emitted during
    processing are queued on the switch. *)

val process_many : t -> (int * Packet.t) list -> (int * Packet.t) list list
(** Batched {!process}: run [(in_port, packet)] jobs back to back on a
    single scratch-pool acquisition instead of one pool round-trip per
    packet.  Returns one output list per job, in order, each equal to
    what {!process} would have returned. *)

(** {1 Introspection} *)

type table_stats = { entries : int; hits : int; misses : int }

val stats : t -> string -> table_stats
