(* Runtime table entries, shared between the behavioural switch and the
   P4Runtime API layer. *)

type match_value =
  | MExact of int64
  | MLpm of int64 * int            (* value, prefix length *)
  | MTernary of int64 * int64      (* value, mask *)
  | MAny                           (* optional key left unspecified *)

type t = {
  matches : match_value list;      (* one per table key *)
  priority : int;                  (* higher wins among ternary matches *)
  action : string;
  args : int64 list;               (* action parameters in order *)
}

let mask_of_prefix ~width ~prefix_len : int64 =
  if prefix_len <= 0 then 0L
  else if prefix_len >= width then
    if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
  else
    let ones = Int64.sub (Int64.shift_left 1L prefix_len) 1L in
    Int64.shift_left ones (width - prefix_len)

(** Does [mv] match the looked-up [value] for a key of [width] bits? *)
let match_value_matches ~width (mv : match_value) (value : int64) : bool =
  match mv with
  | MExact v -> Int64.equal v value
  | MLpm (v, len) ->
    let mask = mask_of_prefix ~width ~prefix_len:len in
    Int64.equal (Int64.logand v mask) (Int64.logand value mask)
  | MTernary (v, mask) ->
    Int64.equal (Int64.logand v mask) (Int64.logand value mask)
  | MAny -> true

(** Total prefix length, used to rank LPM matches. *)
let lpm_length (t : t) : int =
  List.fold_left
    (fun acc mv -> match mv with MLpm (_, len) -> acc + len | _ -> acc)
    0 t.matches

(** Two entries with identical match parts denote the same logical row
    (modify-in-place semantics in P4Runtime). *)
let same_match (a : t) (b : t) =
  a.matches = b.matches && a.priority = b.priority

(** Total rank order shared by every lookup path: longest total LPM
    prefix first, then highest priority, then a structural tie-break on
    the match part so that entries tied on (lpm_length, priority)
    resolve to the same winner in every matcher representation.
    Positive means [a] outranks [b]; 0 only for [same_match] entries. *)
let rank_compare (a : t) (b : t) : int =
  let c = Int.compare (lpm_length a) (lpm_length b) in
  if c <> 0 then c
  else
    let c = Int.compare a.priority b.priority in
    if c <> 0 then c else compare b.matches a.matches

let match_value_to_string = function
  | MExact v -> Printf.sprintf "%Ld" v
  | MLpm (v, len) -> Printf.sprintf "%Ld/%d" v len
  | MTernary (v, m) -> Printf.sprintf "%Ld&%Ld" v m
  | MAny -> "*"

let to_string (t : t) =
  Printf.sprintf "[%s] pri=%d -> %s(%s)"
    (String.concat ", " (List.map match_value_to_string t.matches))
    t.priority t.action
    (String.concat ", " (List.map Int64.to_string t.args))

let pp fmt t = Format.pp_print_string fmt (to_string t)
