(* The behavioural model: a software switch that executes a mini-P4
   program, in the role BMv2 plays in the paper's prototype.

   Packet life cycle (v1model-like):
     parse -> ingress control -> replication (unicast / multicast /
     clones) -> egress control per copy -> deparse.

   Two data paths share this file.  The *compiled* fast path (default)
   resolves the program once at [create] into static structures: every
   header field and standard-metadata name gets a slot in a flat
   [int64 array], expressions/actions/controls/parser states become
   closures over those slots, and each table gets a [Matcher.t] updated
   incrementally on entry install/delete — so per-packet work is a
   handful of array reads and matcher probes with no list allocation.
   The *interpreter* (behind [create ~use_compiled:false]) walks the
   AST per packet over hashtable state, and is kept as the executable
   reference the differential suite checks the fast path against.

   The switch also maintains the control-plane-visible state: table
   entries, multicast groups, counters, and the queue of emitted
   digests. *)

exception Switch_error of string

let error fmt = Format.kasprintf (fun s -> raise (Switch_error s)) fmt

(* Observability (metric names are a public contract, see README).
   Per-table hit/miss counters are registered as p4.table.<name>.hits
   and .misses when the switch is created, so they aggregate across
   switches running the same program. *)
let m_packets_in = Obs.Counter.create "p4.packets_in"
let m_packets_out = Obs.Counter.create "p4.packets_out"
let m_digests = Obs.Counter.create "p4.digests"

let mask w v =
  if w >= 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

(* ---------------- per-packet execution state (interpreter) -------- *)

type pkt_state = {
  mutable fields : (string * string, int64) Hashtbl.t; (* header.field values *)
  mutable valid : (string, unit) Hashtbl.t;            (* valid headers *)
  mutable meta : (string, int64) Hashtbl.t;
  mutable payload : Packet.t;                          (* unparsed remainder *)
  mutable dropped : bool;
  mutable clones : int64 list;                         (* mirror ports *)
}

type digest_msg = { digest_name : string; values : (string * int64) list }

(* ---------------- per-packet execution state (compiled) ----------- *)

(* One slot per header field and per standard-metadata name; a slot
   keeps its value across header invalidation, which reproduces the
   interpreter's fields-table-first read semantics (stale reads of
   fields of invalidated headers return the last written value).
   [s_egress_set] mirrors the interpreter's "egress_spec present in the
   meta table" distinction, which a plain 0L slot cannot represent. *)
type scratch = {
  vals : int64 array;
  hvalid : bool array;
  mutable s_payload : Packet.t;
  mutable s_dropped : bool;
  mutable s_clones : int64 list;
  mutable s_egress_set : bool;
  keybufs : int64 array array;       (* per-table key buffer, by tidx *)
}

type caction = scratch -> int64 array -> unit

(* What a matcher stores per entry: the action closure plus the entry's
   argument vector pre-masked to the parameter widths at install time. *)
type prepared = { p_fn : caction; p_args : int64 array }

(* ---------------- table state ---------------- *)

(* Entries are stored keyed by their match part (matches + priority), so
   that insert / modify / delete and duplicate checks are O(1) even for
   tables with tens of thousands of entries.  The row caches the
   entry's total LPM length so the naive scan never recomputes it per
   packet; the matcher is the compiled lookup structure, maintained
   incrementally alongside. *)
type scan_row = { row_entry : Entry.t; row_lpm : int }

type table_state = {
  table : Program.table;
  tidx : int;                        (* index into scratch keybufs *)
  key_widths : int array;
  key_refs : Program.fref array;
  entries : (Entry.match_value list * int, scan_row) Hashtbl.t;
  matcher : prepared Matcher.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  obs_hits : Obs.Counter.t;
  obs_misses : Obs.Counter.t;
}

(* ---------------- the compiled pipeline ---------------- *)

type chdr = {
  ch_idx : int;                      (* header index, for validity bits *)
  ch_width : int;                    (* total width in bits *)
  ch_fields : (int * int) array;     (* (slot, width) in wire order *)
}

type ctrans =
  | CAccept
  | CReject
  | CSelect of int * (int64 * int) array * int
    (* key slot, (constant, state index) cases in order, default state
       index (-1 = reject) *)

type cstate = { cs_extracts : chdr array; cs_trans : ctrans }

type compiled = {
  c_pname : string;
  c_nslots : int;
  c_nheaders : int;
  c_states : cstate array;
  c_start : int;
  c_headers : chdr array;            (* deparse order *)
  c_actions : (string, caction) Hashtbl.t;
  c_ingress : scratch -> unit;
  c_egress : scratch -> unit;
  c_ingress_port : int;
  c_egress_port : int;
  c_egress_spec : int;
  c_mcast : int;
  c_is_clone : int;
  c_keybuf_arities : int array;
  c_pool : scratch option Atomic.t;  (* one cached scratch, race-safe *)
}

type t = {
  program : Program.t;
  name : string;                       (* switch instance name *)
  ports : int list;                    (* physical ports *)
  tables : (string, table_state) Hashtbl.t;
  mcast_groups : (int64, int64 list) Hashtbl.t;  (* group id -> ports *)
  counters : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  registers : (string, (int64, int64) Hashtbl.t) Hashtbl.t;
  digest_queue : digest_msg list ref;             (* newest first *)
  packets_in : int Atomic.t;
  packets_out : int Atomic.t;
  compiled : compiled;
  use_compiled : bool;
}

(* ---------------- compilation ---------------- *)

let no_args : int64 array = [||]

let premask_args (program : Program.t) (aname : string) (args : int64 list) :
    int64 array =
  match Program.find_action program aname with
  | None -> error "unknown action %s" aname
  | Some a -> Array.of_list (List.map2 (fun (_, w) v -> mask w v) a.params args)

let compile (program : Program.t) (tables : (string, table_state) Hashtbl.t)
    (counters : (string, (int64, int64) Hashtbl.t) Hashtbl.t)
    (registers : (string, (int64, int64) Hashtbl.t) Hashtbl.t)
    (digest_queue : digest_msg list ref) : compiled =
  (* slot assignment: header fields in declaration order, then the
     standard metadata *)
  let slots = Hashtbl.create 64 in
  let widths = ref [] in
  let nslots = ref 0 in
  let add_slot r w =
    Hashtbl.replace slots r !nslots;
    widths := w :: !widths;
    incr nslots
  in
  List.iter
    (fun (h : Program.header) ->
      List.iter
        (fun (f : Program.field) ->
          add_slot (Program.Field (h.hname, f.fname)) f.fwidth)
        h.fields)
    program.headers;
  List.iter (fun (m, w) -> add_slot (Program.Meta m) w) Program.standard_metadata;
  let slot_widths = Array.of_list (List.rev !widths) in
  let slot_of r =
    match Hashtbl.find_opt slots r with
    | Some s -> s
    | None ->
      error "program %s: unresolved reference %s" program.name
        (Program.ref_to_string r)
  in
  let hidx = Hashtbl.create 8 in
  List.iteri (fun i (h : Program.header) -> Hashtbl.replace hidx h.hname i)
    program.headers;
  let header_idx h =
    match Hashtbl.find_opt hidx h with
    | Some i -> i
    | None -> error "unknown header %s" h
  in
  let headers =
    Array.of_list
      (List.map
         (fun (h : Program.header) ->
           {
             ch_idx = header_idx h.hname;
             ch_width = Program.header_width h;
             ch_fields =
               Array.of_list
                 (List.map
                    (fun (f : Program.field) ->
                      (slot_of (Program.Field (h.hname, f.fname)), f.fwidth))
                    h.fields);
           })
         program.headers)
  in
  let slot_egress_spec = slot_of (Program.Meta "egress_spec") in
  (* expressions: closures over the scratch slots and the (positional)
     action argument vector *)
  let rec comp_expr (params : string array) (e : Program.expr) :
      scratch -> int64 array -> int64 =
    match e with
    | Program.EConst (w, v) ->
      let v = mask w v in
      fun _ _ -> v
    | Program.ERef r ->
      let s = slot_of r in
      fun sc _ -> sc.vals.(s)
    | Program.EParam p ->
      let rec idx i =
        if i >= Array.length params then error "unbound action parameter %s" p
        else if String.equal params.(i) p then i
        else idx (i + 1)
      in
      let i = idx 0 in
      fun _ args -> args.(i)
    | Program.EValid h ->
      let hi = header_idx h in
      fun sc _ -> if sc.hvalid.(hi) then 1L else 0L
    | Program.ENot e ->
      let f = comp_expr params e in
      fun sc a -> if Int64.equal (f sc a) 0L then 1L else 0L
    | Program.EBin (op, x, y) -> (
      let fx = comp_expr params x and fy = comp_expr params y in
      let bool_of c = if c then 1L else 0L in
      match op with
      | Program.Add -> fun sc a -> Int64.add (fx sc a) (fy sc a)
      | Program.Sub -> fun sc a -> Int64.sub (fx sc a) (fy sc a)
      | Program.And -> fun sc a -> Int64.logand (fx sc a) (fy sc a)
      | Program.Or -> fun sc a -> Int64.logor (fx sc a) (fy sc a)
      | Program.Xor -> fun sc a -> Int64.logxor (fx sc a) (fy sc a)
      | Program.Shl ->
        fun sc a -> Int64.shift_left (fx sc a) (Int64.to_int (fy sc a))
      | Program.Shr ->
        fun sc a -> Int64.shift_right_logical (fx sc a) (Int64.to_int (fy sc a))
      | Program.Eq -> fun sc a -> bool_of (Int64.equal (fx sc a) (fy sc a))
      | Program.Ne ->
        fun sc a -> bool_of (not (Int64.equal (fx sc a) (fy sc a)))
      | Program.Lt ->
        fun sc a -> bool_of (Int64.unsigned_compare (fx sc a) (fy sc a) < 0)
      | Program.Gt ->
        fun sc a -> bool_of (Int64.unsigned_compare (fx sc a) (fy sc a) > 0)
      | Program.Le ->
        fun sc a -> bool_of (Int64.unsigned_compare (fx sc a) (fy sc a) <= 0)
      | Program.Ge ->
        fun sc a -> bool_of (Int64.unsigned_compare (fx sc a) (fy sc a) >= 0)
      | Program.BoolAnd ->
        fun sc a -> bool_of (fx sc a <> 0L && fy sc a <> 0L)
      | Program.BoolOr -> fun sc a -> bool_of (fx sc a <> 0L || fy sc a <> 0L))
  in
  (* a store through a fref masks to the reference width, like the
     interpreter's write_ref; writing egress_spec must also raise the
     was-set flag *)
  let comp_store (r : Program.fref) : scratch -> int64 -> unit =
    let s = slot_of r in
    let w = slot_widths.(s) in
    if s = slot_egress_spec then fun sc v ->
      sc.vals.(s) <- mask w v;
      sc.s_egress_set <- true
    else fun sc v -> sc.vals.(s) <- mask w v
  in
  let comp_prim (params : string array) (prim : Program.prim) : caction =
    match prim with
    | Program.Assign (r, e) ->
      let st = comp_store r and f = comp_expr params e in
      fun sc args -> st sc (f sc args)
    | Program.SetValid h ->
      (* the interpreter also zero-fills fields that were never
         written; compiled slots start at 0 every packet and keep
         values written while the header was invalid, which is exactly
         the interpreter's fields-table behaviour *)
      let hi = header_idx h in
      fun sc _ -> sc.hvalid.(hi) <- true
    | Program.SetInvalid h ->
      let hi = header_idx h in
      fun sc _ -> sc.hvalid.(hi) <- false
    | Program.EmitDigest dname -> (
      match Program.find_digest program dname with
      | None -> error "unknown digest %s" dname
      | Some d ->
        let dfields =
          Array.of_list
            (List.map (fun (n, r) -> (n, slot_of r)) d.dfields)
        in
        fun sc _ ->
          let values =
            Array.fold_right
              (fun (n, s) acc -> (n, sc.vals.(s)) :: acc)
              dfields []
          in
          Obs.Counter.incr m_digests;
          digest_queue := { digest_name = dname; values } :: !digest_queue)
    | Program.Drop -> fun sc _ -> sc.s_dropped <- true
    | Program.Forward e ->
      (* like the interpreter's raw meta write: no width mask *)
      let f = comp_expr params e in
      fun sc args ->
        sc.vals.(slot_egress_spec) <- f sc args;
        sc.s_egress_set <- true
    | Program.Multicast e ->
      let f = comp_expr params e in
      let s = slot_of (Program.Meta "mcast_grp") in
      fun sc args -> sc.vals.(s) <- f sc args
    | Program.CloneTo e ->
      let f = comp_expr params e in
      fun sc args -> sc.s_clones <- f sc args :: sc.s_clones
    | Program.Count (c, e) ->
      let tbl = Hashtbl.find counters c in
      let f = comp_expr params e in
      fun sc args ->
        let idx = f sc args in
        Hashtbl.replace tbl idx
          (Int64.add 1L (Option.value ~default:0L (Hashtbl.find_opt tbl idx)))
    | Program.RegWrite (r, idx, v) ->
      let tbl = Hashtbl.find registers r in
      let fi = comp_expr params idx and fv = comp_expr params v in
      fun sc args -> Hashtbl.replace tbl (fi sc args) (fv sc args)
    | Program.RegRead (dst, r, idx) ->
      let tbl = Hashtbl.find registers r in
      let st = comp_store dst and fi = comp_expr params idx in
      fun sc args ->
        st sc (Option.value ~default:0L (Hashtbl.find_opt tbl (fi sc args)))
  in
  let cactions = Hashtbl.create 16 in
  List.iter
    (fun (a : Program.action) ->
      let params = Array.of_list (List.map fst a.params) in
      let prims = Array.of_list (List.map (comp_prim params) a.body) in
      Hashtbl.replace cactions a.aname (fun sc args ->
          Array.iter (fun f -> f sc args) prims))
    program.actions;
  let caction_of name =
    match Hashtbl.find_opt cactions name with
    | Some f -> f
    | None -> error "unknown action %s" name
  in
  let rec comp_control (c : Program.control) : scratch -> unit =
    match c with
    | Program.Nop -> fun _ -> ()
    | Program.Seq (a, b) ->
      let fa = comp_control a and fb = comp_control b in
      fun sc ->
        fa sc;
        fb sc
    | Program.If (cond, a, b) ->
      let fc = comp_expr [||] cond in
      let fa = comp_control a and fb = comp_control b in
      fun sc -> if Int64.equal (fc sc no_args) 0L then fb sc else fa sc
    | Program.ApplyTable tname ->
      let ts =
        match Hashtbl.find_opt tables tname with
        | Some ts -> ts
        | None -> error "unknown table %s" tname
      in
      let key_slots =
        Array.of_list
          (List.map (fun (k : Program.key) -> slot_of k.kref) ts.table.keys)
      in
      let nkeys = Array.length key_slots in
      let tidx = ts.tidx in
      let dname, dargs = ts.table.default_action in
      let dfn = caction_of dname in
      let dargs = premask_args program dname dargs in
      fun sc ->
        let kb = sc.keybufs.(tidx) in
        for i = 0 to nkeys - 1 do
          kb.(i) <- sc.vals.(key_slots.(i))
        done;
        (match Matcher.find ts.matcher kb with
        | Some (_, prep) ->
          Atomic.incr ts.hits;
          Obs.Counter.incr ts.obs_hits;
          prep.p_fn sc prep.p_args
        | None ->
          Atomic.incr ts.misses;
          Obs.Counter.incr ts.obs_misses;
          dfn sc dargs)
  in
  (* parser: states as an array, transitions by index *)
  let pstates = Array.of_list program.parser.states in
  let sidx = Hashtbl.create 8 in
  Array.iteri
    (fun i (s : Program.parser_state) -> Hashtbl.replace sidx s.sname i)
    pstates;
  let state_idx name =
    match Hashtbl.find_opt sidx name with
    | Some i -> i
    | None -> error "unknown parser state %s" name
  in
  let c_states =
    Array.map
      (fun (s : Program.parser_state) ->
        let extracts =
          Array.of_list (List.map (fun h -> headers.(header_idx h)) s.extracts)
        in
        let trans =
          match s.transition with
          | Program.Accept -> CAccept
          | Program.Reject -> CReject
          | Program.Select (r, cases) ->
            (* the first None case catches everything after it, so
               later cases are unreachable, as in the interpreter *)
            let slot = slot_of r in
            let rec split acc = function
              | [] -> (List.rev acc, -1)
              | (Some c, tgt) :: rest -> split ((c, state_idx tgt) :: acc) rest
              | (None, tgt) :: _ -> (List.rev acc, state_idx tgt)
            in
            let consts, dflt = split [] cases in
            CSelect (slot, Array.of_list consts, dflt)
        in
        { cs_extracts = extracts; cs_trans = trans })
      pstates
  in
  let keybuf_arities = Array.make (List.length program.tables) 0 in
  Hashtbl.iter
    (fun _ ts -> keybuf_arities.(ts.tidx) <- Array.length ts.key_widths)
    tables;
  {
    c_pname = program.name;
    c_nslots = !nslots;
    c_nheaders = List.length program.headers;
    c_states;
    c_start = state_idx program.parser.start;
    c_headers = headers;
    c_actions = cactions;
    c_ingress = comp_control program.ingress;
    c_egress = comp_control program.egress;
    c_ingress_port = slot_of (Program.Meta "ingress_port");
    c_egress_port = slot_of (Program.Meta "egress_port");
    c_egress_spec = slot_egress_spec;
    c_mcast = slot_of (Program.Meta "mcast_grp");
    c_is_clone = slot_of (Program.Meta "is_clone");
    c_keybuf_arities = keybuf_arities;
    c_pool = Atomic.make None;
  }

let create ?(name = "sw0") ?(ports = []) ?(use_compiled = true)
    (program : Program.t) : t =
  (match Program.typecheck program with
  | Ok () -> ()
  | Error errs ->
    error "program %s does not type-check: %s" program.name
      (String.concat "; " errs));
  let tables = Hashtbl.create 16 in
  List.iteri
    (fun tidx (tbl : Program.table) ->
      let key_widths =
        Array.of_list
          (List.map
             (fun (k : Program.key) ->
               match Program.ref_width program k.kref with
               | Ok w -> w
               | Error e -> error "%s" e)
             tbl.keys)
      in
      let key_kinds =
        Array.of_list (List.map (fun (k : Program.key) -> k.kind) tbl.keys)
      in
      let key_refs =
        Array.of_list (List.map (fun (k : Program.key) -> k.kref) tbl.keys)
      in
      Hashtbl.add tables tbl.tname
        {
          table = tbl;
          tidx;
          key_widths;
          key_refs;
          entries = Hashtbl.create 64;
          matcher = Matcher.create { Matcher.widths = key_widths; kinds = key_kinds };
          hits = Atomic.make 0;
          misses = Atomic.make 0;
          obs_hits =
            Obs.Counter.create (Printf.sprintf "p4.table.%s.hits" tbl.tname);
          obs_misses =
            Obs.Counter.create (Printf.sprintf "p4.table.%s.misses" tbl.tname);
        })
    program.tables;
  let counters = Hashtbl.create 4 in
  List.iter
    (fun (c : Program.counter) -> Hashtbl.add counters c.cname (Hashtbl.create 16))
    program.counters;
  let registers = Hashtbl.create 4 in
  List.iter
    (fun (r : Program.register) -> Hashtbl.add registers r.rname (Hashtbl.create 16))
    program.registers;
  let digest_queue = ref [] in
  let compiled = compile program tables counters registers digest_queue in
  {
    program;
    name;
    ports;
    tables;
    mcast_groups = Hashtbl.create 8;
    counters;
    registers;
    digest_queue;
    packets_in = Atomic.make 0;
    packets_out = Atomic.make 0;
    compiled;
    use_compiled;
  }

let table_state sw name =
  match Hashtbl.find_opt sw.tables name with
  | Some ts -> ts
  | None -> error "switch %s: no table %s" sw.name name

(* ---------------- control-plane operations ---------------- *)

let validate_entry sw (ts : table_state) (e : Entry.t) =
  if List.length e.matches <> List.length ts.table.keys then
    error "table %s: expected %d match fields, got %d" ts.table.tname
      (List.length ts.table.keys) (List.length e.matches);
  List.iteri
    (fun i (k : Program.key) ->
      let mv = List.nth e.matches i in
      match k.kind, mv with
      | Program.Exact, Entry.MExact _
      | Program.Lpm, Entry.MLpm _
      | Program.Ternary, (Entry.MTernary _ | Entry.MExact _)
      | Program.Optional, (Entry.MExact _ | Entry.MAny) -> ()
      | _ ->
        error "table %s: match kind mismatch on key %d" ts.table.tname i)
    ts.table.keys;
  if not (List.mem e.action ts.table.actions) then
    error "table %s: action %s not allowed" ts.table.tname e.action;
  match Program.find_action sw.program e.action with
  | None -> error "unknown action %s" e.action
  | Some a ->
    if List.length a.params <> List.length e.args then
      error "action %s: expected %d args, got %d" e.action
        (List.length a.params) (List.length e.args)

let match_key (e : Entry.t) = (e.Entry.matches, e.Entry.priority)

(* A ternary key accepts MExact installs (P4Runtime maps exact field
   matches onto ternary columns); the matcher handles MExact in any
   column as a full-mask compare, so no translation is needed here. *)
let prepare sw (e : Entry.t) : prepared =
  { p_fn =
      (match Hashtbl.find_opt sw.compiled.c_actions e.Entry.action with
      | Some f -> f
      | None -> error "unknown action %s" e.Entry.action);
    p_args = premask_args sw.program e.Entry.action e.Entry.args;
  }

(** Install a table entry; replaces an existing entry with the same
    match part. *)
let insert_entry sw table (e : Entry.t) : unit =
  let ts = table_state sw table in
  validate_entry sw ts e;
  if Hashtbl.length ts.entries >= ts.table.size
     && not (Hashtbl.mem ts.entries (match_key e)) then
    error "table %s is full (%d entries)" table ts.table.size;
  Hashtbl.replace ts.entries (match_key e)
    { row_entry = e; row_lpm = Entry.lpm_length e };
  Matcher.insert ts.matcher e (prepare sw e)

(** Remove the entry with the same match part, if any. *)
let delete_entry sw table (e : Entry.t) : unit =
  let ts = table_state sw table in
  Hashtbl.remove ts.entries (match_key e);
  Matcher.remove ts.matcher e

let table_entries sw table =
  Hashtbl.fold (fun _ r acc -> r.row_entry :: acc) (table_state sw table).entries []

(** Entries in winner order — highest rank first under
    [Entry.rank_compare] — so folds over the list implement
    first-defined-wins.  [table_entries] has hashtable order. *)
let table_entries_ranked sw table =
  List.sort (fun a b -> Entry.rank_compare b a) (table_entries sw table)

(** Is an entry with the same match part installed? *)
let find_same_match sw table (e : Entry.t) : Entry.t option =
  Option.map
    (fun r -> r.row_entry)
    (Hashtbl.find_opt (table_state sw table).entries (match_key e))

let entry_count sw table = Hashtbl.length (table_state sw table).entries

let matcher_repr sw table = Matcher.repr (table_state sw table).matcher

let set_mcast_group sw group ports =
  (* an empty replica list removes the group: Some [] is unrepresentable *)
  if ports = [] then Hashtbl.remove sw.mcast_groups group
  else Hashtbl.replace sw.mcast_groups group ports

let mcast_group sw group = Hashtbl.find_opt sw.mcast_groups group

let mcast_groups_list sw =
  List.sort compare
    (Hashtbl.fold (fun g ps acc -> (g, ps) :: acc) sw.mcast_groups [])

(** Drain queued digests, oldest first. *)
let take_digests sw : digest_msg list =
  let ds = List.rev !(sw.digest_queue) in
  sw.digest_queue := [];
  ds

let counter_value sw name index =
  match Hashtbl.find_opt sw.counters name with
  | None -> error "no counter %s" name
  | Some tbl -> Option.value ~default:0L (Hashtbl.find_opt tbl index)

(** Current value of a register cell (0 if never written). *)
let register_value sw name index =
  match Hashtbl.find_opt sw.registers name with
  | None -> error "no register %s" name
  | Some tbl -> Option.value ~default:0L (Hashtbl.find_opt tbl index)

(** Control-plane write to a register cell. *)
let register_write sw name index v =
  match Hashtbl.find_opt sw.registers name with
  | None -> error "no register %s" name
  | Some tbl -> Hashtbl.replace tbl index v

(* ---------------- table lookup ---------------- *)

(* The naive reference scan: allocation-free per entry (no
   List.combine), cached LPM lengths, and the same total rank order as
   the compiled matchers ((lpm_length, priority, structural match
   tie-break), see Entry.rank_compare). *)

let scan_matches (key_widths : int array) (matches : Entry.match_value list)
    (values : int64 array) : bool =
  let rec go i = function
    | [] -> true
    | mv :: rest ->
      Entry.match_value_matches ~width:key_widths.(i) mv values.(i)
      && go (i + 1) rest
  in
  go 0 matches

let row_outranks (a : scan_row) (b : scan_row) : bool =
  a.row_lpm > b.row_lpm
  || (a.row_lpm = b.row_lpm
      && (a.row_entry.Entry.priority > b.row_entry.Entry.priority
          || (a.row_entry.Entry.priority = b.row_entry.Entry.priority
              && compare b.row_entry.Entry.matches a.row_entry.Entry.matches > 0)))

let lookup_scan (ts : table_state) (values : int64 array) : Entry.t option =
  let best =
    Hashtbl.fold
      (fun _ (r : scan_row) best ->
        if not (scan_matches ts.key_widths r.row_entry.Entry.matches values)
        then best
        else
          match best with
          | None -> Some r
          | Some b -> if row_outranks r b then Some r else best)
      ts.entries None
  in
  Option.map (fun r -> r.row_entry) best

(** Look up the winning entry for raw key values ([values.(i)] for key
    column i, truncated to the column width).  [use_compiled:false]
    forces the naive scan over the entry store, mirroring
    [Engine.query ~use_indexes]. *)
let lookup ?(use_compiled = true) sw tname (values : int64 array) :
    Entry.t option =
  let ts = table_state sw tname in
  if use_compiled then Option.map fst (Matcher.find ts.matcher values)
  else lookup_scan ts values

(* ---------------- the interpreter ---------------- *)

let read_ref sw (st : pkt_state) (r : Program.fref) : int64 =
  match r with
  | Program.Field (h, f) -> (
    match Hashtbl.find_opt st.fields (h, f) with
    | Some v -> v
    | None ->
      if Hashtbl.mem st.valid h then
        error "switch %s: field %s.%s unset" sw.name h f
      else 0L (* reading a field of an invalid header yields 0, as BMv2 *))
  | Program.Meta m -> Option.value ~default:0L (Hashtbl.find_opt st.meta m)

let ref_width_exn sw r =
  match Program.ref_width sw.program r with
  | Ok w -> w
  | Error e -> error "%s" e

let write_ref sw (st : pkt_state) (r : Program.fref) (v : int64) : unit =
  match r with
  | Program.Field (h, f) ->
    let w = ref_width_exn sw r in
    Hashtbl.replace st.fields (h, f) (mask w v)
  | Program.Meta m ->
    let w = ref_width_exn sw r in
    Hashtbl.replace st.meta m (mask w v)

let rec eval sw (st : pkt_state) (params : (string * int64) list)
    (e : Program.expr) : int64 =
  match e with
  | Program.EConst (w, v) -> mask w v
  | Program.ERef r -> read_ref sw st r
  | Program.EParam p -> (
    match List.assoc_opt p params with
    | Some v -> v
    | None -> error "unbound action parameter %s" p)
  | Program.EValid h -> if Hashtbl.mem st.valid h then 1L else 0L
  | Program.ENot e -> if eval sw st params e = 0L then 1L else 0L
  | Program.EBin (op, a, b) -> (
    let va = eval sw st params a and vb = eval sw st params b in
    let bool_of c = if c then 1L else 0L in
    match op with
    | Program.Add -> Int64.add va vb
    | Program.Sub -> Int64.sub va vb
    | Program.And -> Int64.logand va vb
    | Program.Or -> Int64.logor va vb
    | Program.Xor -> Int64.logxor va vb
    | Program.Shl -> Int64.shift_left va (Int64.to_int vb)
    | Program.Shr -> Int64.shift_right_logical va (Int64.to_int vb)
    | Program.Eq -> bool_of (Int64.equal va vb)
    | Program.Ne -> bool_of (not (Int64.equal va vb))
    | Program.Lt -> bool_of (Int64.unsigned_compare va vb < 0)
    | Program.Gt -> bool_of (Int64.unsigned_compare va vb > 0)
    | Program.Le -> bool_of (Int64.unsigned_compare va vb <= 0)
    | Program.Ge -> bool_of (Int64.unsigned_compare va vb >= 0)
    | Program.BoolAnd -> bool_of (va <> 0L && vb <> 0L)
    | Program.BoolOr -> bool_of (va <> 0L || vb <> 0L))

let run_action sw (st : pkt_state) (a : Program.action) (args : int64 list) :
    unit =
  let params = List.map2 (fun (n, w) v -> (n, mask w v)) a.params args in
  List.iter
    (fun prim ->
      match prim with
      | Program.Assign (r, e) -> write_ref sw st r (eval sw st params e)
      | Program.SetValid h ->
        Hashtbl.replace st.valid h ();
        (* initialise missing fields to zero *)
        (match Program.find_header sw.program h with
        | Some hd ->
          List.iter
            (fun (f : Program.field) ->
              if not (Hashtbl.mem st.fields (h, f.fname)) then
                Hashtbl.replace st.fields (h, f.fname) 0L)
            hd.fields
        | None -> ())
      | Program.SetInvalid h -> Hashtbl.remove st.valid h
      | Program.EmitDigest dname -> (
        match Program.find_digest sw.program dname with
        | None -> error "unknown digest %s" dname
        | Some d ->
          let values =
            List.map (fun (n, r) -> (n, read_ref sw st r)) d.dfields
          in
          Obs.Counter.incr m_digests;
          sw.digest_queue := { digest_name = dname; values } :: !(sw.digest_queue))
      | Program.Drop -> st.dropped <- true
      | Program.Forward e ->
        Hashtbl.replace st.meta "egress_spec" (eval sw st params e)
      | Program.Multicast e ->
        Hashtbl.replace st.meta "mcast_grp" (eval sw st params e)
      | Program.CloneTo e -> st.clones <- eval sw st params e :: st.clones
      | Program.Count (c, e) ->
        let idx = eval sw st params e in
        let tbl = Hashtbl.find sw.counters c in
        Hashtbl.replace tbl idx
          (Int64.add 1L (Option.value ~default:0L (Hashtbl.find_opt tbl idx)))
      | Program.RegWrite (r, idx, v) ->
        let tbl = Hashtbl.find sw.registers r in
        Hashtbl.replace tbl (eval sw st params idx) (eval sw st params v)
      | Program.RegRead (dst, r, idx) ->
        let tbl = Hashtbl.find sw.registers r in
        let v =
          Option.value ~default:0L (Hashtbl.find_opt tbl (eval sw st params idx))
        in
        write_ref sw st dst v)
    a.body

let apply_table sw (st : pkt_state) (tname : string) : unit =
  let ts = table_state sw tname in
  let values = Array.map (fun r -> read_ref sw st r) ts.key_refs in
  let action, args =
    match lookup_scan ts values with
    | Some e ->
      Atomic.incr ts.hits;
      Obs.Counter.incr ts.obs_hits;
      (e.action, e.args)
    | None ->
      Atomic.incr ts.misses;
      Obs.Counter.incr ts.obs_misses;
      ts.table.default_action
  in
  match Program.find_action sw.program action with
  | Some a -> run_action sw st a args
  | None -> error "unknown action %s" action

let rec run_control sw (st : pkt_state) (c : Program.control) : unit =
  match c with
  | Program.Nop -> ()
  | Program.Seq (a, b) ->
    run_control sw st a;
    run_control sw st b
  | Program.ApplyTable t -> apply_table sw st t
  | Program.If (cond, a, b) ->
    if eval sw st [] cond <> 0L then run_control sw st a else run_control sw st b

let parse sw (pkt : Packet.t) (st : pkt_state) : bool =
  let bit = ref 0 in
  let extract hname =
    match Program.find_header sw.program hname with
    | None -> error "unknown header %s" hname
    | Some h ->
      if !bit + Program.header_width h > 8 * Packet.length pkt then false
      else begin
        List.iter
          (fun (f : Program.field) ->
            let v = Packet.get_bits pkt ~bit_offset:!bit ~width:f.fwidth in
            Hashtbl.replace st.fields (hname, f.fname) v;
            bit := !bit + f.fwidth)
          h.fields;
        Hashtbl.replace st.valid hname ();
        true
      end
  in
  let rec run state_name fuel =
    if fuel <= 0 then error "parser loop in program %s" sw.program.name
    else
      match Program.find_state sw.program state_name with
      | None -> error "unknown parser state %s" state_name
      | Some s ->
        if not (List.for_all extract s.extracts) then false (* truncated *)
        else begin
          match s.transition with
          | Program.Accept ->
            st.payload <- Packet.drop_bytes pkt ((!bit + 7) / 8);
            true
          | Program.Reject -> false
          | Program.Select (r, cases) ->
            let v = read_ref sw st r in
            let rec pick = function
              | [] -> false
              | (Some c, target) :: rest ->
                if Int64.equal c v then run target (fuel - 1) else pick rest
              | (None, target) :: _ -> run target (fuel - 1)
            in
            pick cases
        end
  in
  run sw.program.parser.start 64

let deparse sw (st : pkt_state) : Packet.t =
  let width =
    List.fold_left
      (fun acc (h : Program.header) ->
        if Hashtbl.mem st.valid h.hname then acc + Program.header_width h else acc)
      0 sw.program.headers
  in
  let hdr_bytes = (width + 7) / 8 in
  let out = Packet.create hdr_bytes in
  let bit = ref 0 in
  List.iter
    (fun (h : Program.header) ->
      if Hashtbl.mem st.valid h.hname then
        List.iter
          (fun (f : Program.field) ->
            let v =
              Option.value ~default:0L (Hashtbl.find_opt st.fields (h.hname, f.fname))
            in
            Packet.set_bits out ~bit_offset:!bit ~width:f.fwidth v;
            bit := !bit + f.fwidth)
          h.fields)
    sw.program.headers;
  Packet.concat out st.payload

let copy_state (st : pkt_state) : pkt_state =
  {
    fields = Hashtbl.copy st.fields;
    valid = Hashtbl.copy st.valid;
    meta = Hashtbl.copy st.meta;
    payload = st.payload;
    dropped = st.dropped;
    clones = [];
  }

let process_interp (sw : t) ~(in_port : int) (pkt : Packet.t) :
    (int * Packet.t) list =
  let st =
    {
      fields = Hashtbl.create 32;
      valid = Hashtbl.create 8;
      meta = Hashtbl.create 8;
      payload = Packet.of_bytes Bytes.empty;
      dropped = false;
      clones = [];
    }
  in
  Hashtbl.replace st.meta "ingress_port" (Int64.of_int in_port);
  if not (parse sw pkt st) then [] (* parser reject *)
  else begin
    run_control sw st sw.program.ingress;
    (* Replication: unicast via egress_spec, multicast via mcast_grp,
       plus clones.  A Drop verdict is sticky: it suppresses all
       replication, including clones. *)
    let copies = ref [] in
    let mcast = Option.value ~default:0L (Hashtbl.find_opt st.meta "mcast_grp") in
    if not st.dropped then begin
      (match Hashtbl.find_opt st.meta "egress_spec" with
      | Some port when mcast = 0L -> copies := [ (port, copy_state st) ]
      | _ -> ());
      if mcast <> 0L then begin
        let ports = Option.value ~default:[] (mcast_group sw mcast) in
        List.iter
          (fun port ->
            (* do not reflect back to the ingress port *)
            if port <> Int64.of_int in_port then
              copies := (port, copy_state st) :: !copies)
          ports
      end;
      List.iter
        (fun port ->
          let c = copy_state st in
          Hashtbl.replace c.meta "is_clone" 1L;
          copies := (port, c) :: !copies)
        st.clones
    end;
    (* Egress control per copy, then deparse. *)
    List.filter_map
      (fun (port, c) ->
        Hashtbl.replace c.meta "egress_port" port;
        c.dropped <- false;
        run_control sw c sw.program.egress;
        if c.dropped then None else Some (Int64.to_int port, deparse sw c))
      (List.rev !copies)
  end

(* ---------------- the compiled fast path ---------------- *)

let empty_payload = Packet.of_bytes Bytes.empty

let fresh_scratch (cp : compiled) : scratch =
  {
    vals = Array.make cp.c_nslots 0L;
    hvalid = Array.make cp.c_nheaders false;
    s_payload = empty_payload;
    s_dropped = false;
    s_clones = [];
    s_egress_set = false;
    keybufs = Array.map (fun n -> Array.make n 0L) cp.c_keybuf_arities;
  }

let reset_scratch (sc : scratch) : unit =
  Array.fill sc.vals 0 (Array.length sc.vals) 0L;
  Array.fill sc.hvalid 0 (Array.length sc.hvalid) false;
  sc.s_payload <- empty_payload;
  sc.s_dropped <- false;
  sc.s_clones <- [];
  sc.s_egress_set <- false

let acquire_scratch (cp : compiled) : scratch =
  match Atomic.exchange cp.c_pool None with
  | Some sc ->
    reset_scratch sc;
    sc
  | None -> fresh_scratch cp

let release_scratch (cp : compiled) (sc : scratch) : unit =
  Atomic.set cp.c_pool (Some sc)

(* Replication copies run egress strictly sequentially, so they can
   share the parent's key buffers (fully rewritten before each probe). *)
let copy_scratch (sc : scratch) : scratch =
  {
    vals = Array.copy sc.vals;
    hvalid = Array.copy sc.hvalid;
    s_payload = sc.s_payload;
    s_dropped = sc.s_dropped;
    s_clones = [];
    s_egress_set = sc.s_egress_set;
    keybufs = sc.keybufs;
  }

let cparse (cp : compiled) (sc : scratch) (pkt : Packet.t) : bool =
  let pkt_bits = 8 * Packet.length pkt in
  let bit = ref 0 in
  let extract (h : chdr) =
    if !bit + h.ch_width > pkt_bits then false
    else begin
      Array.iter
        (fun (slot, w) ->
          sc.vals.(slot) <- Packet.get_bits pkt ~bit_offset:!bit ~width:w;
          bit := !bit + w)
        h.ch_fields;
      sc.hvalid.(h.ch_idx) <- true;
      true
    end
  in
  let rec run si fuel =
    if fuel <= 0 then error "parser loop in program %s" cp.c_pname
    else begin
      let s = cp.c_states.(si) in
      if not (Array.for_all extract s.cs_extracts) then false (* truncated *)
      else
        match s.cs_trans with
        | CAccept ->
          sc.s_payload <- Packet.drop_bytes pkt ((!bit + 7) / 8);
          true
        | CReject -> false
        | CSelect (slot, cases, dflt) ->
          let v = sc.vals.(slot) in
          let n = Array.length cases in
          let rec pick i =
            if i >= n then if dflt >= 0 then run dflt (fuel - 1) else false
            else
              let c, tgt = cases.(i) in
              if Int64.equal c v then run tgt (fuel - 1) else pick (i + 1)
          in
          pick 0
    end
  in
  run cp.c_start 64

let cdeparse (cp : compiled) (sc : scratch) : Packet.t =
  let width = ref 0 in
  Array.iter
    (fun h -> if sc.hvalid.(h.ch_idx) then width := !width + h.ch_width)
    cp.c_headers;
  let out = Packet.create ((!width + 7) / 8) in
  let bit = ref 0 in
  Array.iter
    (fun h ->
      if sc.hvalid.(h.ch_idx) then
        Array.iter
          (fun (slot, w) ->
            Packet.set_bits out ~bit_offset:!bit ~width:w sc.vals.(slot);
            bit := !bit + w)
          h.ch_fields)
    cp.c_headers;
  Packet.concat out sc.s_payload

(* Core of the fast path over an already-acquired scratch, so batch
   processing can amortise pool traffic across packets. *)
let process_fast_in (sw : t) (cp : compiled) (sc : scratch) ~(in_port : int)
    (pkt : Packet.t) : (int * Packet.t) list =
  sc.vals.(cp.c_ingress_port) <- Int64.of_int in_port;
  if not (cparse cp sc pkt) then [] (* parser reject *)
  else begin
      cp.c_ingress sc;
      let mcast = sc.vals.(cp.c_mcast) in
      if sc.s_dropped then []
      else if sc.s_egress_set && mcast = 0L && sc.s_clones = [] then begin
        (* the common case: exactly one unicast copy — run egress in
           place, no replication copy at all *)
        let port = sc.vals.(cp.c_egress_spec) in
        sc.vals.(cp.c_egress_port) <- port;
        cp.c_egress sc;
        if sc.s_dropped then [] else [ (Int64.to_int port, cdeparse cp sc) ]
      end
      else begin
        let copies = ref [] in
        if sc.s_egress_set && mcast = 0L then
          copies := [ (sc.vals.(cp.c_egress_spec), copy_scratch sc) ];
        if mcast <> 0L then begin
          let ports =
            Option.value ~default:[] (Hashtbl.find_opt sw.mcast_groups mcast)
          in
          List.iter
            (fun port ->
              (* do not reflect back to the ingress port *)
              if port <> Int64.of_int in_port then
                copies := (port, copy_scratch sc) :: !copies)
            ports
        end;
        List.iter
          (fun port ->
            let c = copy_scratch sc in
            c.vals.(cp.c_is_clone) <- 1L;
            copies := (port, c) :: !copies)
          sc.s_clones;
        List.filter_map
          (fun (port, c) ->
            c.vals.(cp.c_egress_port) <- port;
            c.s_dropped <- false;
            cp.c_egress c;
            if c.s_dropped then None else Some (Int64.to_int port, cdeparse cp c))
          (List.rev !copies)
      end
  end

let process_fast (sw : t) ~(in_port : int) (pkt : Packet.t) :
    (int * Packet.t) list =
  let cp = sw.compiled in
  let sc = acquire_scratch cp in
  let outputs = process_fast_in sw cp sc ~in_port pkt in
  release_scratch cp sc;
  outputs

(** Inject a packet on [in_port]; returns the (port, packet) copies the
    switch emits.  Digests emitted during processing are queued on the
    switch and retrieved with [take_digests]. *)
let process (sw : t) ~(in_port : int) (pkt : Packet.t) : (int * Packet.t) list =
  Atomic.incr sw.packets_in;
  Obs.Counter.incr m_packets_in;
  let outputs =
    if sw.use_compiled then process_fast sw ~in_port pkt
    else process_interp sw ~in_port pkt
  in
  ignore (Atomic.fetch_and_add sw.packets_out (List.length outputs));
  Obs.Counter.add m_packets_out (List.length outputs);
  outputs

(** Batched injection: process [(in_port, packet)] jobs back to back on
    one scratch acquisition, resetting it between packets, instead of a
    pool round-trip (atomic exchange + set) per packet.  Output lists
    are per input packet, in order.  Falls back to per-packet [process]
    under the interpreter. *)
let process_many (sw : t) (jobs : (int * Packet.t) list) :
    (int * Packet.t) list list =
  if not sw.use_compiled then
    List.map (fun (in_port, pkt) -> process sw ~in_port pkt) jobs
  else begin
    let cp = sw.compiled in
    let sc = acquire_scratch cp in
    let outs =
      List.map
        (fun (in_port, pkt) ->
          Atomic.incr sw.packets_in;
          Obs.Counter.incr m_packets_in;
          reset_scratch sc;
          let outputs = process_fast_in sw cp sc ~in_port pkt in
          ignore (Atomic.fetch_and_add sw.packets_out (List.length outputs));
          Obs.Counter.add m_packets_out (List.length outputs);
          outputs)
        jobs
    in
    release_scratch cp sc;
    outs
  end

(* ---------------- introspection ---------------- *)

type table_stats = { entries : int; hits : int; misses : int }

let stats sw tname =
  let ts = table_state sw tname in
  {
    entries = Hashtbl.length ts.entries;
    hits = Atomic.get ts.hits;
    misses = Atomic.get ts.misses;
  }
