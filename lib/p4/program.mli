(** The mini-P4 program representation: headers, a parser state
    machine, actions, match-action tables, digests, counters and the
    ingress/egress control flow.

    This plays the role of the P4 source program in the paper's
    prototype; it is an OCaml-embedded AST rather than a parsed .p4
    file, but carries the same information — enough for the type
    checker, the behavioural switch, the P4Runtime layer, the OpenFlow
    backend and Nerpa's relation-schema generation. *)

(** {1 Headers} *)

type field = { fname : string; fwidth : int (** bits, ≤ 64 *) }

type header = { hname : string; fields : field list }

val header_width : header -> int
val find_field : header -> string -> field option

(** {1 Expressions} *)

(** References usable as table keys and assignment targets. *)
type fref =
  | Field of string * string  (** header.field *)
  | Meta of string            (** standard metadata *)

type expr =
  | EConst of int * int64  (** width, value *)
  | ERef of fref
  | EParam of string       (** action parameter *)
  | EBin of binop * expr * expr
  | ENot of expr
  | EValid of string       (** header validity test *)

and binop =
  | Add | Sub | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Gt | Le | Ge | BoolAnd | BoolOr

(** {1 Actions} *)

type prim =
  | Assign of fref * expr
  | SetValid of string
  | SetInvalid of string
  | EmitDigest of string
  | Drop                   (** sticky: suppresses all replication *)
  | Forward of expr        (** set the unicast egress port *)
  | Multicast of expr      (** set the multicast group *)
  | CloneTo of expr        (** mirror a copy to a port *)
  | Count of string * expr (** counter name, index *)
  | RegWrite of string * expr * expr  (** register, index, value *)
  | RegRead of fref * string * expr   (** destination, register, index *)

type action = { aname : string; params : (string * int) list; body : prim list }

(** {1 Tables} *)

type match_kind = Exact | Lpm | Ternary | Optional

type key = { kref : fref; kind : match_kind }

type table = {
  tname : string;
  keys : key list;
  actions : string list;
  default_action : string * int64 list;
  size : int;
}

(** {1 Digests and counters} *)

type digest = { dname : string; dfields : (string * fref) list }

type counter = { cname : string; cwidth : int }

type register = { rname : string; rwidth : int (** cell width in bits *) }
(** A register array: per-switch mutable state readable and writable
    from actions (v1model registers). *)

(** {1 Parser} *)

type transition =
  | Accept
  | Reject
  | Select of fref * (int64 option * string) list
      (** cases: [Some v] on equality, [None] default *)

type parser_state = {
  sname : string;
  extracts : string list;
  transition : transition;
}

type parser_spec = { start : string; states : parser_state list }

(** {1 Controls and programs} *)

type control =
  | Nop
  | Seq of control * control
  | ApplyTable of string
  | If of expr * control * control

type t = {
  name : string;
  headers : header list;  (** deparse order *)
  parser : parser_spec;
  actions : action list;
  tables : table list;
  digests : digest list;
  counters : counter list;
  registers : register list;
  ingress : control;
  egress : control;
}

val standard_metadata : (string * int) list
(** Metadata fields understood by the behavioural model
    (ingress_port, egress_port, egress_spec, mcast_grp, vlan_id,
    is_clone) with their widths. *)

val find_header : t -> string -> header option
val find_action : t -> string -> action option
val find_table : t -> string -> table option
val find_digest : t -> string -> digest option
val find_state : t -> string -> parser_state option

val ref_width : t -> fref -> (int, string) result
val ref_to_string : fref -> string

val table_key_schema :
  t -> table -> ((fref * match_kind * int) list, string) result
(** A table's key columns as (reference, match kind, width) triples —
    what compilers derive variable orders and match layouts from. *)

val expr_width : t -> (string * int) list -> expr -> (int, string) result
(** Width of an expression under an action-parameter environment;
    boolean results have width 1. *)

val typecheck : t -> (unit, string list) result
(** Full static checking: unique names, field widths in range, parser
    states and extractions valid, action bodies width-correct, table
    keys/actions/defaults consistent, controls boolean-conditioned. *)

val loc_estimate : t -> int
(** Rough source-line count of the program as it would appear in P4,
    used by the §4.3 LoC inventory. *)
