(* Compiled per-table match structures: exact hash / binary LPM trie /
   rank-sorted mask scan, chosen statically from the key schema and
   updated incrementally on insert/delete.  See matcher.mli for the
   representation contract. *)

type schema = {
  widths : int array;
  kinds : Program.match_kind array;
}

(* A stored entry plus its payload.  Cell lists are kept sorted best
   rank first (Entry.rank_compare descending); since rank_compare is a
   total order that is 0 only for same_match entries — and same_match
   entries replace each other — sorted lists have strictly decreasing
   rank, so the head is always the unique winner. *)
type 'a cell = Entry.t * 'a

let rec cell_insert (cell : 'a cell) (cs : 'a cell list) : 'a cell list =
  match cs with
  | [] -> [ cell ]
  | ((e', _) as c) :: rest ->
    if Entry.same_match (fst cell) e' then cell :: rest
    else if Entry.rank_compare (fst cell) e' > 0 then cell :: c :: rest
    else c :: cell_insert cell rest

let cell_remove (e : Entry.t) (cs : 'a cell list) : 'a cell list =
  List.filter (fun (e', _) -> not (Entry.same_match e e')) cs

(* ---------------- exact: packed-key hash ---------------- *)

(* Key = the MExact values in column order, packed into an int64 array.
   Lookup hashes a caller-owned scratch array; inserted keys are copies
   so the scratch can be reused.  A bucket holds every entry sharing
   the key (distinct priorities), sorted. *)

let exact_key (e : Entry.t) : int64 array =
  Array.of_list
    (List.map
       (function
         | Entry.MExact v -> v
         | mv ->
           invalid_arg
             (Printf.sprintf "Matcher: non-exact match %s in exact table"
                (Entry.match_value_to_string mv)))
       e.Entry.matches)

(* ---------------- lpm: binary prefix trie ---------------- *)

(* One node per prefix, MSB first.  [t_here] holds the entries whose
   (clamped) prefix ends at this node.  The deepest non-empty node on
   the lookup path wins: an entry at depth d has lpm_length ≥ d, and an
   entry at a strictly shallower depth d' < width has lpm_length = d'
   (a raw length above the width clamps to a full-width path), so
   deeper always outranks shallower; within a node the sorted cell list
   breaks the tie. *)
type 'a tnode = {
  mutable t_zero : 'a tnode option;
  mutable t_one : 'a tnode option;
  mutable t_here : 'a cell list;
}

let tnode () = { t_zero = None; t_one = None; t_here = [] }

let lpm_prefix (width : int) (e : Entry.t) : int64 * int =
  match e.Entry.matches with
  | [ Entry.MLpm (v, len) ] ->
    let depth = if len <= 0 then 0 else min len width in
    (v, depth)
  | _ -> invalid_arg "Matcher: non-LPM match in LPM-trie table"

(* ---------------- scan: rank-sorted compact array ---------------- *)

(* General fallback (ternary / optional / mixed / keyless): entries in
   rank order, each with per-column mask and pre-masked value computed
   at install time.  Lookup walks from the best rank down and returns
   the first row whose columns all satisfy value land mask = val. *)
type 'a srow = {
  s_entry : Entry.t;
  s_payload : 'a;
  s_masks : int64 array;
  s_vals : int64 array;
}

type 'a scan = { mutable rows : 'a srow option array; mutable n : int }

let mask_and_val ~width (mv : Entry.match_value) : int64 * int64 =
  match mv with
  | Entry.MExact v -> (-1L, v)
  | Entry.MLpm (v, len) ->
    let m = Entry.mask_of_prefix ~width ~prefix_len:len in
    (m, Int64.logand v m)
  | Entry.MTernary (v, m) -> (m, Int64.logand v m)
  | Entry.MAny -> (0L, 0L)

let srow_of_entry (schema : schema) (e : Entry.t) (payload : 'a) : 'a srow =
  let ncols = Array.length schema.widths in
  let masks = Array.make ncols 0L and vals = Array.make ncols 0L in
  List.iteri
    (fun i mv ->
      let m, v = mask_and_val ~width:schema.widths.(i) mv in
      masks.(i) <- m;
      vals.(i) <- v)
    e.Entry.matches;
  { s_entry = e; s_payload = payload; s_masks = masks; s_vals = vals }

(* ---------------- the matcher ---------------- *)

type 'a repr =
  | Exact of (int64 array, 'a cell list) Hashtbl.t
  | Trie of 'a tnode                   (* root; width from the schema *)
  | Scan of 'a scan

type 'a t = { schema : schema; r : 'a repr; mutable count : int }

let create (schema : schema) : 'a t =
  let ncols = Array.length schema.kinds in
  let r =
    if ncols > 0 && Array.for_all (fun k -> k = Program.Exact) schema.kinds
    then Exact (Hashtbl.create 64)
    else if ncols = 1 && schema.kinds.(0) = Program.Lpm then Trie (tnode ())
    else Scan { rows = Array.make 16 None; n = 0 }
  in
  { schema; r; count = 0 }

let repr (m : _ t) =
  match m.r with Exact _ -> "exact" | Trie _ -> "lpm-trie" | Scan _ -> "scan"

let cardinal (m : _ t) = m.count

(* Walk (and create) the trie path of an entry's prefix. *)
let trie_node_of (root : 'a tnode) ~(width : int) (v : int64) (depth : int) :
    'a tnode =
  let node = ref root in
  for i = width - 1 downto width - depth do
    let bit = Int64.logand (Int64.shift_right_logical v i) 1L in
    let next =
      if bit = 0L then (
        match !node.t_zero with
        | Some c -> c
        | None ->
          let c = tnode () in
          !node.t_zero <- Some c;
          c)
      else
        match !node.t_one with
        | Some c -> c
        | None ->
          let c = tnode () in
          !node.t_one <- Some c;
          c
    in
    node := next
  done;
  !node

(* Walk the existing trie path without creating nodes. *)
let trie_find_node (root : 'a tnode) ~(width : int) (v : int64) (depth : int) :
    'a tnode option =
  let rec go node i =
    if i < width - depth then Some node
    else
      let bit = Int64.logand (Int64.shift_right_logical v i) 1L in
      match (if bit = 0L then node.t_zero else node.t_one) with
      | None -> None
      | Some c -> go c (i - 1)
  in
  go root (width - 1)

let scan_index_of (s : 'a scan) (e : Entry.t) : int option =
  let rec go i =
    if i >= s.n then None
    else
      match s.rows.(i) with
      | Some r when Entry.same_match r.s_entry e -> Some i
      | _ -> go (i + 1)
  in
  go 0

let scan_remove (s : 'a scan) (e : Entry.t) : bool =
  match scan_index_of s e with
  | None -> false
  | Some i ->
    Array.blit s.rows (i + 1) s.rows i (s.n - i - 1);
    s.n <- s.n - 1;
    s.rows.(s.n) <- None;
    true

let scan_insert (s : 'a scan) (row : 'a srow) : unit =
  if s.n = Array.length s.rows then begin
    let bigger = Array.make (2 * s.n) None in
    Array.blit s.rows 0 bigger 0 s.n;
    s.rows <- bigger
  end;
  (* binary search for the first index that the new row outranks;
     rank_compare is strict across distinct match parts, so the slot is
     unique *)
  let outranks i =
    match s.rows.(i) with
    | Some r -> Entry.rank_compare row.s_entry r.s_entry > 0
    | None -> true
  in
  let lo = ref 0 and hi = ref s.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if outranks mid then hi := mid else lo := mid + 1
  done;
  let pos = !lo in
  Array.blit s.rows pos s.rows (pos + 1) (s.n - pos);
  s.rows.(pos) <- Some row;
  s.n <- s.n + 1

let insert (m : 'a t) (e : Entry.t) (payload : 'a) : unit =
  match m.r with
  | Exact h ->
    let key = exact_key e in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt h key) in
    let before = List.length bucket in
    let bucket' = cell_insert (e, payload) bucket in
    Hashtbl.replace h key bucket';
    if List.length bucket' > before then m.count <- m.count + 1
  | Trie root ->
    let width = m.schema.widths.(0) in
    let v, depth = lpm_prefix width e in
    let node = trie_node_of root ~width v depth in
    let before = List.length node.t_here in
    node.t_here <- cell_insert (e, payload) node.t_here;
    if List.length node.t_here > before then m.count <- m.count + 1
  | Scan s ->
    let removed = scan_remove s e in
    scan_insert s (srow_of_entry m.schema e payload);
    if not removed then m.count <- m.count + 1

let remove (m : 'a t) (e : Entry.t) : unit =
  match m.r with
  | Exact h -> (
    let key = exact_key e in
    match Hashtbl.find_opt h key with
    | None -> ()
    | Some bucket ->
      let bucket' = cell_remove e bucket in
      if List.length bucket' < List.length bucket then m.count <- m.count - 1;
      if bucket' = [] then Hashtbl.remove h key
      else Hashtbl.replace h key bucket')
  | Trie root -> (
    let width = m.schema.widths.(0) in
    let v, depth = lpm_prefix width e in
    match trie_find_node root ~width v depth with
    | None -> ()
    | Some node ->
      let before = List.length node.t_here in
      node.t_here <- cell_remove e node.t_here;
      if List.length node.t_here < before then m.count <- m.count - 1)
    (* empty nodes are left in place: delete/re-insert churn is common
       and path lengths are bounded by the key width anyway *)
  | Scan s -> if scan_remove s e then m.count <- m.count - 1

let find (m : 'a t) (values : int64 array) : (Entry.t * 'a) option =
  match m.r with
  | Exact h -> (
    match Hashtbl.find_opt h values with
    | Some (c :: _) -> Some c
    | Some [] | None -> None)
  | Trie root ->
    let width = m.schema.widths.(0) in
    let v = values.(0) in
    let best = ref (match root.t_here with c :: _ -> Some c | [] -> None) in
    let rec walk node i =
      if i >= 0 then
        match
          if Int64.logand (Int64.shift_right_logical v i) 1L = 0L then
            node.t_zero
          else node.t_one
        with
        | None -> ()
        | Some child ->
          (match child.t_here with c :: _ -> best := Some c | [] -> ());
          walk child (i - 1)
    in
    walk root (width - 1);
    !best
  | Scan s ->
    let ncols = Array.length m.schema.widths in
    let matches (r : 'a srow) =
      let ok = ref true in
      let j = ref 0 in
      while !ok && !j < ncols do
        if Int64.logand values.(!j) r.s_masks.(!j) <> r.s_vals.(!j) then
          ok := false;
        incr j
      done;
      !ok
    in
    let rec go i =
      if i >= s.n then None
      else
        match s.rows.(i) with
        | Some r when matches r -> Some (r.s_entry, r.s_payload)
        | _ -> go (i + 1)
    in
    go 0
