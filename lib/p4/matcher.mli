(** Compiled per-table match structures.

    A matcher is built once per table at [Switch.create] from the
    table's key schema and updated incrementally on every entry
    install/delete — never rebuilt from scratch.  Lookups take the key
    values as an [int64 array] (one slot per key column, each value
    already truncated to the column width) and cost a handful of probes
    with no list allocation.

    The representation is chosen statically from the schema:
    - all-[Exact] keys (≥1 column): a hash table over a packed
      [int64 array] key, each bucket a rank-sorted entry list;
    - a single [Lpm] column: a binary (MSB-first) prefix trie, the
      deepest non-empty node on the lookup path wins;
    - anything else (ternary / optional / mixed / keyless): a
      rank-sorted compact array with per-column masks and values
      precomputed at install time — first match wins.

    All three agree with the naive reference scan under the shared
    total order [Entry.rank_compare], which is what makes the compiled
    path bit-identical to the interpreter. *)

type schema = {
  widths : int array;              (** key column widths, in bits *)
  kinds : Program.match_kind array;
}

type 'a t
(** A matcher holding one ['a] payload per installed entry (the switch
    stores the entry's precompiled action thunk there). *)

val create : schema -> 'a t

val insert : 'a t -> Entry.t -> 'a -> unit
(** Install an entry; replaces an existing entry with the same match
    part ([Entry.same_match]).  Incremental: cost is bounded by the
    entry's bucket / trie path / rank position, not the table size. *)

val remove : 'a t -> Entry.t -> unit
(** Remove the entry with the same match part, if present. *)

val find : 'a t -> int64 array -> (Entry.t * 'a) option
(** The best-ranked entry matching the key values, per
    [Entry.rank_compare].  The array is read, never retained, so a
    caller-owned scratch buffer is safe.  Values must already be
    truncated to the column widths (as [Packet.get_bits] and the
    compiled pipeline's masked stores guarantee). *)

val cardinal : _ t -> int

val repr : _ t -> string
(** ["exact"], ["lpm-trie"] or ["scan"] — which representation the
    schema selected (introspection for tests and docs). *)
