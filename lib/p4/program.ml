(* The mini-P4 program representation: headers, a parser state machine,
   actions, match-action tables, digests, counters and the
   ingress/egress control flow.  This plays the role of the P4 source
   program in the paper's prototype; it is an OCaml-embedded AST rather
   than a parsed .p4 file, but carries the same information — enough for
   the type checker, the behavioural switch, the P4Runtime layer, the
   OpenFlow backend and Nerpa's relation-schema generation. *)

(* ---------------- headers ---------------- *)

type field = { fname : string; fwidth : int }  (* width in bits, <= 64 *)

type header = {
  hname : string;
  fields : field list;
}

let header_width h = List.fold_left (fun acc f -> acc + f.fwidth) 0 h.fields

let find_field h name = List.find_opt (fun f -> String.equal f.fname name) h.fields

(* ---------------- expressions ---------------- *)

(** References usable as table keys and assignment targets. *)
type fref =
  | Field of string * string       (* header.field *)
  | Meta of string                 (* standard or user metadata *)

type expr =
  | EConst of int * int64          (* width, value *)
  | ERef of fref
  | EParam of string               (* action parameter *)
  | EBin of binop * expr * expr
  | ENot of expr
  | EValid of string               (* header validity test *)

and binop = Add | Sub | And | Or | Xor | Shl | Shr | Eq | Ne | Lt | Gt | Le | Ge
          | BoolAnd | BoolOr

(* ---------------- actions ---------------- *)

type prim =
  | Assign of fref * expr
  | SetValid of string
  | SetInvalid of string
  | EmitDigest of string           (* digest declaration name *)
  | Drop
  | Forward of expr                (* set the unicast egress port *)
  | Multicast of expr              (* set the multicast group *)
  | CloneTo of expr                (* mirror a copy to a port *)
  | Count of string * expr         (* counter name, index *)
  | RegWrite of string * expr * expr   (* register, index, value *)
  | RegRead of fref * string * expr    (* destination, register, index *)

type action = {
  aname : string;
  params : (string * int) list;    (* name, width *)
  body : prim list;
}

(* ---------------- tables ---------------- *)

type match_kind = Exact | Lpm | Ternary | Optional

type key = { kref : fref; kind : match_kind }

type table = {
  tname : string;
  keys : key list;
  actions : string list;           (* action names installable in entries *)
  default_action : string * int64 list;
  size : int;                      (* declared capacity *)
}

(* ---------------- digests, counters ---------------- *)

(** A digest carries a list of named values from the data plane to the
    control plane (e.g. MAC learning events). *)
type digest = {
  dname : string;
  dfields : (string * fref) list;  (* message field name, source *)
}

type counter = { cname : string; cwidth : int (* index width *) }

(** A register array: per-switch mutable state readable and writable
    from actions (v1model registers). *)
type register = { rname : string; rwidth : int (* cell width in bits *) }

(* ---------------- parser ---------------- *)

type transition =
  | Accept
  | Reject
  | Select of fref * (int64 option * string) list
    (* cases: Some v -> state on equality; None -> default *)

type parser_state = {
  sname : string;
  extracts : string list;          (* headers extracted, in order *)
  transition : transition;
}

type parser_spec = {
  start : string;
  states : parser_state list;
}

(* ---------------- controls ---------------- *)

type control =
  | Nop
  | Seq of control * control
  | ApplyTable of string
  | If of expr * control * control

(* ---------------- the program ---------------- *)

type t = {
  name : string;
  headers : header list;           (* deparse order *)
  parser : parser_spec;
  actions : action list;
  tables : table list;
  digests : digest list;
  counters : counter list;
  registers : register list;
  ingress : control;
  egress : control;
}

(* Standard metadata understood by the behavioural model; all bit<16>
   for simplicity except noted. *)
let standard_metadata =
  [ ("ingress_port", 16); ("egress_port", 16); ("egress_spec", 16);
    ("mcast_grp", 16); ("vlan_id", 12); ("is_clone", 1);
    (* general-purpose user metadata, as a P4 programmer would declare *)
    ("tmp0", 16); ("tmp1", 16); ("tmp2", 32) ]

let find_header p name = List.find_opt (fun h -> String.equal h.hname name) p.headers
let find_action p name = List.find_opt (fun a -> String.equal a.aname name) p.actions
let find_table p name = List.find_opt (fun t -> String.equal t.tname name) p.tables
let find_digest p name = List.find_opt (fun d -> String.equal d.dname name) p.digests
let find_state p name =
  List.find_opt (fun s -> String.equal s.sname name) p.parser.states

(** Width in bits of a field reference. *)
let ref_width p (r : fref) : (int, string) result =
  match r with
  | Field (h, f) -> (
    match find_header p h with
    | None -> Error (Printf.sprintf "unknown header %s" h)
    | Some hd -> (
      match find_field hd f with
      | Some fl -> Ok fl.fwidth
      | None -> Error (Printf.sprintf "unknown field %s.%s" h f)))
  | Meta m -> (
    match List.assoc_opt m standard_metadata with
    | Some w -> Ok w
    | None -> Error (Printf.sprintf "unknown metadata %s" m))

let ref_to_string = function
  | Field (h, f) -> h ^ "." ^ f
  | Meta m -> "meta." ^ m

(** A table's key schema as (reference, match kind, width) triples —
    the shape compilers derive variable orders and match layouts from.
    Errors on a key whose reference does not resolve. *)
let table_key_schema p (t : table) :
    ((fref * match_kind * int) list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (k : key) :: rest -> (
      match ref_width p k.kref with
      | Ok w -> go ((k.kref, k.kind, w) :: acc) rest
      | Error e -> Error e)
  in
  go [] t.keys

(* ---------------- type checking ---------------- *)

(* Infers the width of an expression; boolean results are width 1. *)
let rec expr_width p (params : (string * int) list) (e : expr) :
    (int, string) result =
  let ( let* ) = Result.bind in
  match e with
  | EConst (w, _) ->
    if w >= 1 && w <= 64 then Ok w
    else Error (Printf.sprintf "bad constant width %d" w)
  | ERef r -> ref_width p r
  | EParam name -> (
    match List.assoc_opt name params with
    | Some w -> Ok w
    | None -> Error (Printf.sprintf "unknown action parameter %s" name))
  | EValid h ->
    if find_header p h = None then Error (Printf.sprintf "unknown header %s" h)
    else Ok 1
  | ENot e ->
    let* w = expr_width p params e in
    if w = 1 then Ok 1 else Error "not: expected boolean (width-1) operand"
  | EBin (op, a, b) -> (
    let* wa = expr_width p params a in
    let* wb = expr_width p params b in
    match op with
    | Add | Sub | And | Or | Xor ->
      if wa = wb then Ok wa
      else Error (Printf.sprintf "width mismatch %d vs %d" wa wb)
    | Shl | Shr -> Ok wa
    | Eq | Ne | Lt | Gt | Le | Ge ->
      if wa = wb then Ok 1
      else Error (Printf.sprintf "comparison width mismatch %d vs %d" wa wb)
    | BoolAnd | BoolOr ->
      if wa = 1 && wb = 1 then Ok 1 else Error "boolean op on non-boolean")

let check_action p (a : action) : (unit, string) result =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc prim ->
      let* () = acc in
      match prim with
      | Assign (r, e) ->
        let* wr = ref_width p r in
        let* we = expr_width p a.params e in
        if wr = we then Ok ()
        else
          Error
            (Printf.sprintf "action %s: assign width mismatch on %s (%d vs %d)"
               a.aname (ref_to_string r) wr we)
      | SetValid h | SetInvalid h ->
        if find_header p h = None then
          Error (Printf.sprintf "action %s: unknown header %s" a.aname h)
        else Ok ()
      | EmitDigest d ->
        if find_digest p d = None then
          Error (Printf.sprintf "action %s: unknown digest %s" a.aname d)
        else Ok ()
      | Drop -> Ok ()
      | Forward e | Multicast e | CloneTo e ->
        let* _ = expr_width p a.params e in
        Ok ()
      | Count (c, e) ->
        if not (List.exists (fun ct -> String.equal ct.cname c) p.counters) then
          Error (Printf.sprintf "action %s: unknown counter %s" a.aname c)
        else
          let* _ = expr_width p a.params e in
          Ok ()
      | RegWrite (r, idx, v) -> (
        match List.find_opt (fun rg -> String.equal rg.rname r) p.registers with
        | None -> Error (Printf.sprintf "action %s: unknown register %s" a.aname r)
        | Some rg ->
          let* _ = expr_width p a.params idx in
          let* wv = expr_width p a.params v in
          if wv = rg.rwidth then Ok ()
          else
            Error
              (Printf.sprintf "action %s: register %s stores bit<%d>, got bit<%d>"
                 a.aname r rg.rwidth wv))
      | RegRead (dst, r, idx) -> (
        match List.find_opt (fun rg -> String.equal rg.rname r) p.registers with
        | None -> Error (Printf.sprintf "action %s: unknown register %s" a.aname r)
        | Some rg ->
          let* wd = ref_width p dst in
          let* _ = expr_width p a.params idx in
          if wd = rg.rwidth then Ok ()
          else
            Error
              (Printf.sprintf "action %s: register %s stores bit<%d>, destination is bit<%d>"
                 a.aname r rg.rwidth wd)))
    (Ok ()) a.body

let check_table p (t : table) : (unit, string) result =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc (k : key) ->
        let* () = acc in
        let* _ = ref_width p k.kref in
        Ok ())
      (Ok ()) t.keys
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        if find_action p name = None then
          Error (Printf.sprintf "table %s: unknown action %s" t.tname name)
        else Ok ())
      (Ok ()) t.actions
  in
  let dname, dargs = t.default_action in
  match find_action p dname with
  | None -> Error (Printf.sprintf "table %s: unknown default action %s" t.tname dname)
  | Some a ->
    if List.length a.params <> List.length dargs then
      Error (Printf.sprintf "table %s: default action arity" t.tname)
    else if not (List.mem dname t.actions) then
      Error
        (Printf.sprintf "table %s: default action %s not in action list" t.tname
           dname)
    else Ok ()

let rec check_control p (c : control) : (unit, string) result =
  let ( let* ) = Result.bind in
  match c with
  | Nop -> Ok ()
  | Seq (a, b) ->
    let* () = check_control p a in
    check_control p b
  | ApplyTable t ->
    if find_table p t = None then Error (Printf.sprintf "unknown table %s" t)
    else Ok ()
  | If (cond, a, b) ->
    let* w = expr_width p [] cond in
    let* () =
      if w = 1 then Ok () else Error "if condition must be boolean (width 1)"
    in
    let* () = check_control p a in
    check_control p b

let check_parser p : (unit, string) result =
  let ( let* ) = Result.bind in
  let* () =
    if find_state p p.parser.start = None then
      Error (Printf.sprintf "unknown start state %s" p.parser.start)
    else Ok ()
  in
  List.fold_left
    (fun acc (s : parser_state) ->
      let* () = acc in
      let* () =
        List.fold_left
          (fun acc h ->
            let* () = acc in
            if find_header p h = None then
              Error (Printf.sprintf "state %s extracts unknown header %s" s.sname h)
            else Ok ())
          (Ok ()) s.extracts
      in
      match s.transition with
      | Accept | Reject -> Ok ()
      | Select (r, cases) ->
        let* _ = ref_width p r in
        List.fold_left
          (fun acc (_, target) ->
            let* () = acc in
            if find_state p target = None then
              Error (Printf.sprintf "state %s: unknown target %s" s.sname target)
            else Ok ())
          (Ok ()) cases)
    (Ok ()) p.parser.states

(** Full static checking of a program; returns all errors found. *)
let typecheck (p : t) : (unit, string list) result =
  let errors = ref [] in
  let collect = function Ok () -> () | Error e -> errors := e :: !errors in
  (* unique names *)
  let check_unique kind names =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun n ->
        if Hashtbl.mem seen n then
          errors := Printf.sprintf "duplicate %s %s" kind n :: !errors
        else Hashtbl.add seen n ())
      names
  in
  check_unique "header" (List.map (fun h -> h.hname) p.headers);
  check_unique "action" (List.map (fun a -> a.aname) p.actions);
  check_unique "table" (List.map (fun t -> t.tname) p.tables);
  check_unique "digest" (List.map (fun d -> d.dname) p.digests);
  check_unique "parser state" (List.map (fun s -> s.sname) p.parser.states);
  List.iter
    (fun h ->
      List.iter
        (fun f ->
          if f.fwidth < 1 || f.fwidth > 64 then
            errors :=
              Printf.sprintf "header %s.%s: width %d out of range" h.hname
                f.fname f.fwidth
              :: !errors)
        h.fields)
    p.headers;
  collect (check_parser p);
  List.iter (fun a -> collect (check_action p a)) p.actions;
  List.iter (fun t -> collect (check_table p t)) p.tables;
  List.iter
    (fun d ->
      List.iter
        (fun (_, r) ->
          collect (Result.map (fun (_ : int) -> ()) (ref_width p r)))
        d.dfields)
    p.digests;
  collect (check_control p p.ingress);
  collect (check_control p p.egress);
  match !errors with [] -> Ok () | errs -> Error (List.rev errs)

(** A rough LoC count of the program as it would appear in P4 source —
    used by the paper's LoC inventory experiment. *)
let loc_estimate (p : t) : int =
  let header_loc h = 2 + List.length h.fields in
  let action_loc a = 2 + List.length a.body in
  let register_loc = List.length p.registers in
  let table_loc t = 4 + List.length t.keys + List.length t.actions in
  let state_loc (s : parser_state) =
    2 + List.length s.extracts
    + (match s.transition with Select (_, cases) -> List.length cases | _ -> 1)
  in
  let rec control_loc = function
    | Nop -> 0
    | Seq (a, b) -> control_loc a + control_loc b
    | ApplyTable _ -> 1
    | If (_, a, b) -> 2 + control_loc a + control_loc b
  in
  List.fold_left (fun acc h -> acc + header_loc h) 0 p.headers
  + List.fold_left (fun acc a -> acc + action_loc a) 0 p.actions
  + List.fold_left (fun acc t -> acc + table_loc t) 0 p.tables
  + List.fold_left (fun acc s -> acc + state_loc s) 0 p.parser.states
  + List.fold_left (fun acc (d : digest) -> acc + 2 + List.length d.dfields) 0 p.digests
  + register_loc
  + control_loc p.ingress + control_loc p.egress + 10
