(** Runtime table entries, shared between the behavioural switch and
    the P4Runtime API layer. *)

type match_value =
  | MExact of int64
  | MLpm of int64 * int            (** value, prefix length *)
  | MTernary of int64 * int64      (** value, mask *)
  | MAny                           (** optional key left unspecified *)

type t = {
  matches : match_value list;      (** one per table key *)
  priority : int;                  (** higher wins among ternary matches *)
  action : string;
  args : int64 list;               (** action parameters in order *)
}

val mask_of_prefix : width:int -> prefix_len:int -> int64
(** The left-aligned mask of a prefix within a [width]-bit key. *)

val match_value_matches : width:int -> match_value -> int64 -> bool
(** Does the match value accept a looked-up key value? *)

val lpm_length : t -> int
(** Total prefix length, used to rank LPM matches. *)

val same_match : t -> t -> bool
(** Entries with identical match parts denote the same logical row
    (P4Runtime modify-in-place semantics). *)

val rank_compare : t -> t -> int
(** Total rank order shared by every lookup path: longest total LPM
    prefix, then priority, then a deterministic structural tie-break on
    the match part.  Positive means the first entry wins; 0 only for
    [same_match] entries. *)

val match_value_to_string : match_value -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
