type transport =
  | In_process
  | Wire
  | Socket of string * Transport.codec
  | Faulty of int * transport

type t = { mgmt : transport; p4_of : string -> transport }

let in_process = { mgmt = In_process; p4_of = (fun _ -> In_process) }
let wire = { mgmt = Wire; p4_of = (fun _ -> Wire) }

let mgmt_socket_path ~dir = Filename.concat dir "ovsdb.sock"
let p4_socket_path ~dir name = Filename.concat dir ("p4-" ^ name ^ ".sock")

let sockets ?(codec = Transport.Binary) ~dir () =
  { mgmt = Socket (mgmt_socket_path ~dir, codec);
    p4_of = (fun name -> Socket (p4_socket_path ~dir name, codec)) }

let faulty_mgmt ~seed t = { t with mgmt = Faulty (seed, t.mgmt) }

let faulty_p4 ~seed t =
  let p4_of = t.p4_of in
  { t with p4_of = (fun name -> Faulty (seed, p4_of name)) }

let rec transport_to_string = function
  | In_process -> "in-process"
  | Wire -> "wire"
  | Socket (path, codec) ->
    Printf.sprintf "socket(%s):%s" (Transport.codec_to_string codec) path
  | Faulty (seed, inner) ->
    Printf.sprintf "faulty(%d):%s" seed (transport_to_string inner)

(* A transport needs local objects (the db / switch living in this
   process) unless every layer bottoms out in a socket. *)
let rec is_remote = function
  | In_process | Wire -> false
  | Socket _ -> true
  | Faulty (_, inner) -> is_remote inner
