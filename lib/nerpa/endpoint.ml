type transport =
  | In_process
  | Wire
  | Socket of { addr : Transport.addr; codec : Transport.codec; auth : string option }
  | Faulty of { seed : int; faults : Transport.faults option; inner : transport }

type planes = { mgmt : transport; p4_of : string -> transport }

type cluster = {
  map : Shard_map.t;
  codec : Transport.codec;
  auth : string option;
}

type t = Planes of planes | Cluster of cluster

let plane_in_process = In_process
let plane_wire = Wire

let socket ?(codec = Transport.Binary) ?auth addr = Socket { addr; codec; auth }

let in_process = Planes { mgmt = In_process; p4_of = (fun _ -> In_process) }
let wire = Planes { mgmt = Wire; p4_of = (fun _ -> Wire) }

let planes ~mgmt ~p4_of = Planes { mgmt; p4_of }

(* Socket-path layout is owned by {!Shard_map} (a 1-shard cluster and
   a plain serve/connect pair must agree on it); these remain the
   spelling the server and tests use. *)
let mgmt_socket_path ~dir = Shard_map.mgmt_socket_path ~dir
let p4_socket_path ~dir name = Shard_map.p4_socket_path ~dir name
let xrel_socket_path ~dir = Shard_map.xrel_socket_path ~dir

let sockets ?(codec = Transport.Binary) ?auth ~dir () =
  Planes
    {
      mgmt = socket ~codec ?auth (Transport.Unix_path (mgmt_socket_path ~dir));
      p4_of =
        (fun name ->
          socket ~codec ?auth (Transport.Unix_path (p4_socket_path ~dir name)));
    }

let cluster ?(codec = Transport.Binary) ?auth map = Cluster { map; codec; auth }

(* The per-plane transports a given shard's controller derives from a
   cluster endpoint: the shared management database lives at shard 0's
   daemon; each of the shard's own switches at its own daemon. *)
let shard_planes (c : cluster) ~shard:_ =
  {
    mgmt = socket ~codec:c.codec ?auth:c.auth (Shard_map.mgmt_addr c.map);
    p4_of =
      (fun name ->
        socket ~codec:c.codec ?auth:c.auth (Shard_map.p4_addr c.map name));
  }

let xrel_transport (c : cluster) ~shard =
  socket ~codec:c.codec ?auth:c.auth (Shard_map.xrel_addr c.map shard)

let planes_exn = function
  | Planes p -> p
  | Cluster _ ->
    invalid_arg
      "Endpoint: a cluster endpoint names a whole fleet; derive one shard's \
       planes via Cluster.connect_shard"

let map_planes f = function
  | Planes p -> Planes (f p)
  | Cluster _ ->
    invalid_arg "Endpoint: fault injection wraps per-plane endpoints, not clusters"

let faulty_mgmt ~seed ?faults t =
  map_planes (fun p -> { p with mgmt = Faulty { seed; faults; inner = p.mgmt } }) t

let faulty_p4 ~seed ?faults t =
  map_planes
    (fun p ->
      let p4_of = p.p4_of in
      { p with p4_of = (fun name -> Faulty { seed; faults; inner = p4_of name }) })
    t

let rec transport_to_string = function
  | In_process -> "in-process"
  | Wire -> "wire"
  | Socket { addr; codec; auth } ->
    Printf.sprintf "socket(%s%s):%s"
      (Transport.codec_to_string codec)
      (match auth with Some _ -> ",auth" | None -> "")
      (Transport.addr_to_string addr)
  | Faulty { seed; inner; _ } ->
    Printf.sprintf "faulty(%d):%s" seed (transport_to_string inner)

(* A transport needs local objects (the db / switch living in this
   process) unless every layer bottoms out in a socket. *)
let rec is_remote = function
  | In_process | Wire -> false
  | Socket _ -> true
  | Faulty { inner; _ } -> is_remote inner
