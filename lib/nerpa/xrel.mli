(** The cross-shard exchange store: one OVSDB table, [Xrel], holding
    every (shard, relation, canonical row text) triple a shard has
    published of its exchanged relations — unique on all three.

    Each shard daemon hosts one such database.  A controller publishes
    its own contributions at its own shard's store ({!Links.Publish})
    and subscribes to every peer's store through the ordinary monitor
    machinery ([Poll_monitor] / [Resync] + snapshot diff), so the
    exchange inherits the binary codec, pipelining and resync
    semantics of the management plane.  Row text is the DL literal
    syntax ([Dl.Row.to_string]): canonical, byte-stable across
    processes, and parseable by the DL front end. *)

val table_name : string
(** ["Xrel"]. *)

val schema : Ovsdb.Schema.t

val create_db : unit -> Ovsdb.Db.t
(** A fresh, empty exchange store. *)

val apply :
  Ovsdb.Db.t ->
  shard:int ->
  reset:bool ->
  rows:(string * (string * int) list) list ->
  unit
(** Apply one publish atomically, with set semantics (inserting a
    present row or deleting an absent one is a no-op, so
    re-publication after a connection loss is idempotent).  [reset]
    first deletes every row of [shard].
    @raise Ovsdb.Db.Db_error when [db] is not an exchange store. *)

val deltas_of_updates :
  Ovsdb.Db.table_updates -> (int * string * string * int) list
(** Flatten one monitor batch (or snapshot) into signed
    [(shard, rel, row text, ±1)] deltas. *)

val row_text : Dl.Row.t -> string
(** Canonical row text, e.g. [("h1", 12'd5)]. *)

val row_of_text : Dl.Ast.program -> string -> string -> Dl.Row.t
(** [row_of_text program rel text] parses canonical row text back into
    an interned row, coercing bare integer literals to the declared
    bit widths of [rel]'s columns in [program].
    @raise Failure on text that does not parse as a constant fact. *)
