(** The cluster layout: which controller shard owns which switch, and
    where each shard's daemon listens.  Renderable to (and strictly
    parseable from) a small line-based text form, so [nerpa_cli],
    tests and operators drive a fleet from the same artifact:

    {v
    nerpa-shard-map v1
    shard 0 dir:/tmp/shard0
    shard 1 tcp:10.0.0.2:7600
    switch sw00 0
    switch sw01 1
    v}

    Assignment is deterministic — switch names sorted, dealt
    round-robin across shards — so equal inputs derive equal
    ownership in every process. *)

(** Where a shard daemon listens.  [Dir]: Unix-domain sockets in the
    directory ([ovsdb.sock] on shard 0, [xrel.sock], [p4-<name>.sock]
    per hosted switch).  [Tcp (host, base)]: [base] = management
    (shard 0 only), [base+1] = exchange store, [base+2+k] = the
    shard's k-th switch in fleet order. *)
type location = Dir of string | Tcp of string * int

val location_to_string : location -> string
(** ["dir:PATH"] / ["tcp:HOST:PORT"] — the spelling shard-map lines
    and [nerpa_cli --endpoint] share. *)

val location_of_string : string -> (location, string) result

type t

val create : locations:location list -> switches:string list -> t
(** One shard per location.
    @raise Invalid_argument on no shards or duplicate switch names. *)

val nshards : t -> int

val shard_of : t -> string -> int
(** The shard owning the named switch.
    @raise Invalid_argument on an unknown name. *)

val switches : t -> string list
(** All switches, in fleet (sorted-name) order. *)

val switches_of : t -> int -> string list
(** The named shard's switches, in fleet order. *)

val location : t -> int -> location
(** @raise Invalid_argument on an out-of-range shard. *)

(** {1 Socket layout} *)

val mgmt_socket_path : dir:string -> string
val xrel_socket_path : dir:string -> string
val p4_socket_path : dir:string -> string -> string

val mgmt_addr : t -> Transport.addr
(** The shared management database's listener — hosted by shard 0. *)

val xrel_addr : t -> int -> Transport.addr
(** The named shard's exchange-store listener. *)

val p4_addr : t -> string -> Transport.addr
(** The named switch's P4Runtime listener, at its owning shard. *)

(** {1 Text form} *)

val render : t -> string

val parse : string -> (t, string) result
(** Strict inverse of {!render}: unknown lines, sparse shard ids,
    duplicate or dangling switch assignments are all errors. *)
