(* Multi-controller sharding: wiring a fleet of controllers together,
   one per shard of a {!Shard_map}.

   Two halves:

   - [shard_endpoint] / [shard_exchange] derive one shard's socket
     links from a shard map — what [nerpa_cli serve]/[connect] and the
     multi-process tests use against real [lib/server] daemons;

   - [create_local] is the in-process harness: the same topology
     (shared management database, per-shard exchange stores, each
     controller owning its shard's switches) over direct links, with
     [kill]/[restart] swapping a shard's daemon state out from behind
     {!Transport.switchable} relays so peers observe ordinary
     connectivity edges and resync — which is how the convergence and
     fault tests exercise the cluster deterministically, without
     processes or sockets. *)

(* ---------------- socket wiring from a shard map ---------------- *)

let shard_endpoint ?(codec = Transport.Binary) ?auth (map : Shard_map.t)
    ~(shard : int) : Endpoint.t =
  Endpoint.Planes (Endpoint.shard_planes { Endpoint.map; codec; auth } ~shard)

let shard_exchange ?(codec = Transport.Binary) ?auth (map : Shard_map.t)
    ~(shard : int) : Controller.exchange =
  let store k =
    Links.socket_mgmt ~codec ?auth ~addr:(Shard_map.xrel_addr map k) ()
  in
  let peers =
    List.filter_map
      (fun k -> if k = shard then None else Some (k, store k))
      (List.init (Shard_map.nshards map) Fun.id)
  in
  { Controller.ex_shard = shard; ex_publish = store shard; ex_peers = peers }

(* ---------------- in-process harness ---------------- *)

(* One shard's "daemon state": its exchange store.  Killed and
   recreated wholesale on [kill]/[restart]. *)
type store = { mutable xdb : Ovsdb.Db.t; mutable up : bool }

type member = {
  shard : int;
  mutable ctl : Controller.t;
  mutable switches : (string * P4.Switch.t) list;
  mutable alive : bool;
}

(* A switchable relay owned by controller [owner], pointing at shard
   [target]'s store — the registry lets [kill]/[restart] retarget
   every link aimed at a store in one sweep. *)
type lnk = { owner : int; target : int; set : Links.mgmt_link option -> unit }

type local = {
  map : Shard_map.t;
  db : Ovsdb.Db.t;  (* the shared management database; survives kills *)
  p4 : P4.Program.t;
  rules : string;
  digest_replace : (string * string list) list;
  max_iterations : int option;
  stores : store array;
  mutable members : member array;
  mutable links : lnk list;
}

(* A fresh serving end for one subscriber (or publisher): each link
   gets its own monitor, as each connection does in [lib/server]. *)
let store_link (s : store) : Links.mgmt_link =
  let mon = Ovsdb.Db.add_monitor s.xdb [ (Xrel.table_name, None) ] in
  Transport.direct (Links.mgmt_handler s.xdb mon)

let mk_link (t : local) ~(owner : int) ~(target : int) : Links.mgmt_link =
  let link, set = Transport.switchable () in
  if t.stores.(target).up then set (Some (store_link t.stores.(target)));
  t.links <- { owner; target; set } :: t.links;
  link

let fresh_switches (t : local) (shard : int) : (string * P4.Switch.t) list =
  List.map
    (fun name -> (name, P4.Switch.create ~name t.p4))
    (Shard_map.switches_of t.map shard)

let mk_controller (t : local) (shard : int)
    (switches : (string * P4.Switch.t) list) : Controller.t =
  let exchange =
    {
      Controller.ex_shard = shard;
      ex_publish = mk_link t ~owner:shard ~target:shard;
      ex_peers =
        List.filter_map
          (fun k ->
            if k = shard then None else Some (k, mk_link t ~owner:shard ~target:k))
          (List.init (Shard_map.nshards t.map) Fun.id);
    }
  in
  Controller.create ~digest_replace:t.digest_replace
    ?max_iterations:t.max_iterations ~exchange ~db:t.db ~p4:t.p4
    ~rules:t.rules ~switches ()

let create_local ?(digest_replace = []) ?max_iterations ~(nshards : int)
    ~(db : Ovsdb.Db.t) ~(p4 : P4.Program.t) ~(rules : string)
    ~(switch_names : string list) () : local =
  if nshards <= 0 then invalid_arg "Cluster.create_local: nshards <= 0";
  let map =
    Shard_map.create
      ~locations:
        (List.init nshards (fun i -> Shard_map.Dir (Printf.sprintf "(local-%d)" i)))
      ~switches:switch_names
  in
  let t =
    {
      map;
      db;
      p4;
      rules;
      digest_replace;
      max_iterations;
      stores =
        Array.init nshards (fun _ -> { xdb = Xrel.create_db (); up = true });
      members = [||];
      links = [];
    }
  in
  t.members <-
    Array.init nshards (fun shard ->
        let switches = fresh_switches t shard in
        { shard; ctl = mk_controller t shard switches; switches; alive = true });
  t

let map (t : local) = t.map
let nshards (t : local) = Array.length t.members

let check_shard (t : local) shard =
  if shard < 0 || shard >= nshards t then
    invalid_arg (Printf.sprintf "Cluster: no shard %d" shard)

let controller (t : local) (shard : int) : Controller.t =
  check_shard t shard;
  t.members.(shard).ctl

let alive (t : local) (shard : int) : bool =
  check_shard t shard;
  t.members.(shard).alive

let owner (t : local) (name : string) : int = Shard_map.shard_of t.map name

let switch (t : local) (name : string) : P4.Switch.t =
  let m = t.members.(owner t name) in
  if not m.alive then
    invalid_arg (Printf.sprintf "Cluster.switch: %s's shard %d is down" name m.shard);
  List.assoc name m.switches

(* Kill one shard: its daemon state (exchange store, hosted switches,
   controller) is gone; every relay aimed at its store goes down, so
   live peers observe [Disconnected] and fail over to dirty polling.
   The shared management database is modelled as external (an OVSDB
   server of its own) and survives. *)
let kill (t : local) (shard : int) : unit =
  check_shard t shard;
  t.members.(shard).alive <- false;
  t.stores.(shard).up <- false;
  List.iter (fun l -> if l.target = shard then l.set None) t.links

(* Restart one shard from nothing: empty store, empty switches, a
   fresh controller that resyncs the shared database, reset-publishes
   (clearing any stale rows of the previous incarnation) and
   snapshot-resyncs every peer.  Peers' relays are retargeted, which
   queues the reconnect edges that make THEM resync this store. *)
let restart (t : local) (shard : int) : unit =
  check_shard t shard;
  if t.members.(shard).alive then
    invalid_arg (Printf.sprintf "Cluster.restart: shard %d is alive" shard);
  t.stores.(shard).xdb <- Xrel.create_db ();
  t.stores.(shard).up <- true;
  (* the dead incarnation's own relays are garbage now *)
  t.links <- List.filter (fun l -> l.owner <> shard) t.links;
  List.iter
    (fun l -> if l.target = shard then l.set (Some (store_link t.stores.(shard))))
    t.links;
  let m = t.members.(shard) in
  m.switches <- fresh_switches t shard;
  m.ctl <- mk_controller t shard m.switches;
  Controller.mark_mgmt_dirty m.ctl;
  m.alive <- true

(* Drive every live controller round-robin until a full round commits
   nothing anywhere — each controller's own {!Controller.sync} already
   quiesces its planes, but a publication flushed by one shard is only
   consumed by the others' NEXT sync, so fleet-wide quiescence takes a
   few rounds.  Returns the total transactions committed. *)
let sync_all ?(max_rounds = 100) (t : local) : int =
  let rec go rounds total =
    if rounds = 0 then
      failwith
        (Printf.sprintf
           "Cluster.sync_all: fleet did not quiesce in %d rounds" max_rounds);
    let round =
      Array.fold_left
        (fun acc m -> if m.alive then acc + Controller.sync m.ctl else acc)
        0 t.members
    in
    if round > 0 then go (rounds - 1) (total + round) else total
  in
  go max_rounds 0
