(* The cross-shard exchange store: one OVSDB table, [Xrel], holding
   every row a shard has published of its exchanged relations —
   (shard, relation name, canonical row text), unique on all three.

   Each shard daemon hosts one such database.  A controller publishes
   its own contributions at its own shard's store ([Links.Publish])
   and subscribes to every peer's store with the ordinary monitor
   machinery — [Poll_monitor] for incremental deltas, [Resync] +
   snapshot diff after a reconnect — so the exchange inherits the
   binary codec, pipelining and resync semantics the management plane
   already has instead of growing a parallel protocol.

   Rows travel as text in the DL literal syntax ([Dl.Row.to_string],
   e.g. [(12'd5, 42, "h1")]): canonical (rows are interned), byte-
   stable across processes, and parseable by the DL front end, which
   is also what makes the store greppable/dumpable when debugging a
   fleet. *)

let table_name = "Xrel"

let schema =
  Ovsdb.Schema.make ~name:"nerpa_exchange" ~version:"1.0.0"
    [
      Ovsdb.Schema.table
        ~indexes:[ [ "shard"; "rel"; "row" ] ]
        table_name
        [
          Ovsdb.Schema.column "shard" (Ovsdb.Otype.scalar Ovsdb.Otype.AInteger);
          Ovsdb.Schema.column "rel" (Ovsdb.Otype.scalar Ovsdb.Otype.AString);
          Ovsdb.Schema.column "row" (Ovsdb.Otype.scalar Ovsdb.Otype.AString);
        ];
    ]

let create_db () = Ovsdb.Db.create schema

let get_int row col =
  match Ovsdb.Datum.as_integer (Ovsdb.Db.column_value row col) with
  | Some v -> Int64.to_int v
  | None -> raise (Ovsdb.Db.Db_error ("Xrel: non-integer " ^ col))

let get_str row col =
  match Ovsdb.Datum.as_string (Ovsdb.Db.column_value row col) with
  | Some v -> v
  | None -> raise (Ovsdb.Db.Db_error ("Xrel: non-string " ^ col))

(* Apply one [Links.Publish] to the store, with set semantics (insert
   of a present row / delete of an absent one is a no-op — mirroring
   [Dl.Engine]'s input semantics keeps re-publication after a
   connection loss idempotent).  One atomic transaction, so a peer's
   monitor sees the whole publish as one batch.
   @raise Ovsdb.Db.Db_error when [db] has no [Xrel] table (the publish
   reached something that is not an exchange store). *)
let apply db ~shard ~reset ~rows =
  let present = Hashtbl.create 64 in
  if not reset then
    Ovsdb.Db.iter_rows db table_name (fun _ r ->
        if get_int r "shard" = shard then
          Hashtbl.replace present (get_str r "rel", get_str r "row") ());
  let shard_d = Ovsdb.Datum.integer (Int64.of_int shard) in
  let ops = ref [] in
  if reset then
    ops :=
      [ Ovsdb.Db.Delete { table = table_name; where = [ Ovsdb.Db.eq "shard" shard_d ] } ];
  List.iter
    (fun (rel, rws) ->
      List.iter
        (fun (row, w) ->
          let key = (rel, row) in
          let here = Hashtbl.mem present key in
          if w > 0 && not here then begin
            Hashtbl.replace present key ();
            ops :=
              Ovsdb.Db.Insert
                {
                  table = table_name;
                  row =
                    [
                      ("shard", shard_d);
                      ("rel", Ovsdb.Datum.string rel);
                      ("row", Ovsdb.Datum.string row);
                    ];
                  uuid = None;
                }
              :: !ops
          end
          else if w < 0 && here then begin
            Hashtbl.remove present key;
            ops :=
              Ovsdb.Db.Delete
                {
                  table = table_name;
                  where =
                    [
                      Ovsdb.Db.eq "shard" shard_d;
                      Ovsdb.Db.eq "rel" (Ovsdb.Datum.string rel);
                      Ovsdb.Db.eq "row" (Ovsdb.Datum.string row);
                    ];
                }
              :: !ops
          end)
        rws)
    rows;
  match List.rev !ops with
  | [] -> ()
  | ops -> ignore (Ovsdb.Db.transact_exn db ops)

(* Flatten monitor updates of an exchange store into signed
   (shard, rel, row-text) deltas; a modification (which the store
   never produces, rows being immutable-by-identity) decomposes into
   delete + insert. *)
let deltas_of_updates (updates : Ovsdb.Db.table_updates) :
    (int * string * string * int) list =
  List.concat_map
    (fun (tbl, rows) ->
      if not (String.equal tbl table_name) then []
      else
        List.concat_map
          (fun (_, (u : Ovsdb.Db.row_update)) ->
            let signed w r = (get_int r "shard", get_str r "rel", get_str r "row", w) in
            match u.before, u.after with
            | None, Some r -> [ signed 1 r ]
            | Some r, None -> [ signed (-1) r ]
            | Some b, Some a -> [ signed (-1) b; signed 1 a ]
            | None, None -> [])
          rows)
    updates

(* ---------------- row text codec ---------------- *)

let row_text (row : Dl.Row.t) : string = Dl.Row.to_string row

(* Parse canonical row text back into an interned row, against the
   relation's declaration in [program] (bit-width literals like
   [12'd5] already carry their type; bare integers are coerced to the
   declared [TBit] width, mirroring the CLI script reader).
   @raise Failure on text that does not parse as a constant fact. *)
let row_of_text (program : Dl.Ast.program) (rel : string) (text : string) :
    Dl.Row.t =
  match Dl.Parser.parse_program (rel ^ text ^ ".") with
  | Ok { Dl.Ast.rules = [ { head; body = [] } ]; _ } ->
    let row =
      Dl.Row.intern
        (Array.map
           (function
             | Dl.Ast.EConst c -> c
             | Dl.Ast.ECall ("neg", [ Dl.Ast.EConst (Dl.Value.VInt v) ]) ->
               Dl.Value.VInt (Int64.neg v)
             | _ -> failwith ("exchange row not constant: " ^ text))
           head.Dl.Ast.hargs)
    in
    (match Dl.Ast.find_decl program rel with
    | None -> row
    | Some d ->
      let tys = Array.of_list (List.map snd d.cols) in
      if Array.length tys <> Dl.Row.arity row then row
      else
        Dl.Row.intern
          (Array.mapi
             (fun i v ->
               match tys.(i), v with
               | Dl.Dtype.TBit w, Dl.Value.VInt x -> Dl.Value.bit w x
               | _ -> v)
             (Dl.Row.values row)))
  | Ok _ | Error _ -> failwith (Printf.sprintf "bad exchange row %s%s" rel text)
