(** The Nerpa controller: the state-synchronisation loop tying the
    three planes together (Fig. 4 of the paper).

    The controller is split into a {e step core} and a {e driver}.
    The step core ({!Step}, {!step}) turns one plane event into the
    commands to execute; it commits DL transactions but performs no
    transport I/O.  The driver ({!sync}) polls the {!Links}, feeds
    events to the core and executes its commands, owning every
    failure-handling policy: bounded retry with exponential backoff on
    transient write errors, digest-redelivery dedup by [list_id], and
    full reconciliation when a switch reconnects (dump its tables over
    the link, diff against the engine's outputs, write corrective
    deletes/inserts — observable via the [nerpa.reconcile.*] metrics). *)

exception Controller_error of string

type stats = {
  txns : int;             (** DL transactions committed *)
  entries_written : int;  (** table entries inserted/deleted *)
  digests_consumed : int;
  groups_updated : int;
}
(** An immutable snapshot of {e this} controller's counts, independent
    of the process-global {!Obs} registry (the [nerpa.*] metrics
    aggregate across controllers and read zero while collection is
    disabled; these do neither). *)

type t

(** Attachment to a sharded fleet's cross-shard relation exchange: the
    controller publishes its data-plane-learned (digest-fed) relations
    to its own shard's {!Xrel} store over [ex_publish] and subscribes
    to every peer shard's store over [ex_peers] — ordinary management
    links speaking {!Links.Publish} / [Poll_monitor] / [Resync], built
    by [Cluster] from a {!Shard_map} (socket links) or directly (the
    in-process harness). *)
type exchange = {
  ex_shard : int;  (** this controller's shard id *)
  ex_publish : Links.mgmt_link;  (** own shard's exchange store *)
  ex_peers : (int * Links.mgmt_link) list;  (** peer stores, by shard *)
}

val create :
  ?digest_replace:(string * string list) list ->
  ?max_iterations:int ->
  ?retry_limit:int ->
  ?endpoint:Endpoint.t ->
  ?exchange:exchange ->
  ?pool:Pool.t ->
  db:Ovsdb.Db.t ->
  p4:P4.Program.t ->
  rules:string ->
  switches:(string * P4.Switch.t) list ->
  unit ->
  t
(** Build a controller around in-process plane objects: generate the
    relation schema from [db]'s schema and [p4], parse the user [rules]
    text, create the engine, subscribe a monitor (only when a plane
    needs one), and attach a P4Runtime server to every switch (all run
    the same program, as in the paper's prototype).

    [digest_replace] gives last-writer-wins semantics to digest
    relations: [(digest, key_columns)] makes a newly inserted digest
    row retract previous rows agreeing on the key columns — e.g. MAC
    mobility, where a (vlan, mac) binding moves between ports.

    [max_iterations] (default [1000]) bounds the {!sync} feedback loop:
    the number of poll-commit-push iterations allowed before sync gives
    up and reports the still-changing relations.

    [retry_limit] (default [8]) bounds the write retries on a transient
    link failure before the switch is marked for reconciliation.

    [endpoint] (default {!Endpoint.in_process}) names each plane's
    transport; [Faulty] layers expose their {!Transport.ctl} via
    {!mgmt_ctl} / {!p4_ctl}.  A cluster endpoint is rejected — derive
    one shard's planes via [Cluster.connect_shard].

    [exchange] attaches the controller to a sharded fleet: each
    {!sync} iteration publishes newly learned digest rows to the own
    shard's store and ingests the peers' (with a snapshot resync on
    first contact and after any reconnect edge), feeding them into the
    engine as input deltas under the same last-writer-wins
    [digest_replace] policy as local digests.

    [pool] (default: none, i.e. fully sequential) parallelises the
    driver and the engine: per-switch polls, command batches and
    reconciliations run as pool tasks (a slow or down link no longer
    stalls the fleet), independent DL strata evaluate on the pool
    during commits, and the step core stays single-threaded — results
    are identical to a sequential run.
    @raise Controller_error on parse errors, schema mismatches, a
    non-positive [max_iterations]/[retry_limit], or an [endpoint] plane
    that bottoms out in a socket-less transport with no local object. *)

val connect :
  ?digest_replace:(string * string list) list ->
  ?max_iterations:int ->
  ?retry_limit:int ->
  ?exchange:exchange ->
  ?pool:Pool.t ->
  endpoint:Endpoint.t ->
  schema:Ovsdb.Schema.t ->
  p4:P4.Program.t ->
  rules:string ->
  switch_names:string list ->
  unit ->
  t
(** Build a controller whose planes all live in {e another} process —
    typically one hosting them via [nerpa_cli serve] / [lib/server].
    Every transport in [endpoint] must bottom out in a [Socket]; the
    database schema and P4 program are this process's copies (drift
    fails loudly in the codecs), and switches are identified by name
    only.  The controller starts with every plane marked dirty, so the
    first {!sync} resyncs the management plane against the server's
    database and reconciles every switch rather than assuming empty
    peers.
    @raise Controller_error as {!create}, or if a transport is not
    socket-backed. *)

(** Events consumed and commands produced by the pure step core. *)
module Step : sig
  type event =
    | Monitor_batch of Ovsdb.Db.table_updates
    | Digest_lists of string * P4runtime.digest_list list
        (** digest lists received from the named switch (possibly
            redelivered — the core dedups by [list_id]) *)
    | Switch_up of string
    | Switch_down of string

  type command =
    | Write of string * P4runtime.update list
        (** send this batch to the named switch (atomic) *)
    | Ack of string * int  (** acknowledge a digest list *)
    | Reconcile of string  (** resynchronise the named switch's state *)
end

val step : t -> Step.event -> Step.command list
(** Process one plane event and return the commands to execute.  The
    core commits DL transactions and updates controller-local state but
    performs no transport I/O, so its decisions are testable without
    any link in place.  {!sync} is a thin loop around this function.
    @raise Controller_error on events naming unknown switches or
    digests. *)

val sync : t -> int
(** Process all pending management-plane changes and data-plane digests
    until quiescent; returns the number of DL transactions committed.
    Transient write failures are retried (bounded by [retry_limit]);
    switches whose links failed are reconciled when they reconnect.
    @raise Controller_error if a switch rejects a fresh batch outright,
    or if the feedback loop is still producing changes after
    [max_iterations] iterations — the error message reports the fuel
    spent and the names and delta cardinalities of the relations that
    were still changing in the last iteration. *)

val reconcile : t -> string -> unit
(** Force a full reconciliation of one switch (by name): dump its
    tables and multicast groups over the link, diff against the
    engine's outputs, and write corrective deletes/inserts.  A link
    failure leaves the switch marked dirty; the next {!sync} retries.
    @raise Controller_error on an unknown switch name. *)

val attach_flow_programmer :
  t -> string -> P4.Switch.t -> push:(Ofp4.Openflow.flow_delta -> unit) -> unit
(** Attach an incremental flow compiler ({!Ofp4.Compile.State}) to the
    named switch: from now on, every write batch the driver observes the
    switch apply — sync batches and reconciliation corrections alike —
    is mirrored into the state as a Z-set delta, and the resulting
    OpenFlow rule delta is handed to [push].  The state snapshots the
    switch's current entries at attach time; callers wanting the initial
    full pipeline read it via {!flow_pipeline}.  When a write outcome is
    ambiguous (the paths that schedule reconciliation) the feed pauses
    and the next successful reconciliation rebuilds the state from the
    switch object, pushing the catch-up as one delta — so [push] always
    converges to the switch's true compiled pipeline.  Requires the
    in-process switch object, i.e. a {!create}d controller, not a
    {!connect}ed one.
    @raise Controller_error on an unknown switch name. *)

val flow_pipeline : t -> string -> Ofp4.Openflow.t option
(** The attached flow programmer's current full pipeline, or [None]
    when no programmer is attached.
    @raise Controller_error on an unknown switch name. *)

val mark_mgmt_dirty : t -> unit
(** Force a management-plane resync (snapshot + diff + one corrective
    transaction) at the start of the next {!sync} — what the driver
    does itself after a reconnect edge or a failed poll. *)

val mgmt_ctl : t -> Transport.ctl option
(** The fault-injection handle of the management link, when the
    endpoint wrapped it in [Faulty]. *)

val p4_ctl : t -> string -> Transport.ctl option
(** The fault-injection handle of the named switch's link, when the
    endpoint wrapped it in [Faulty]. *)

val dump_switch : t -> string -> string
(** Canonical byte dump of one switch's forwarding state, read over its
    link: every table's entries (sorted) in the wire encoding plus the
    multicast groups (sorted).  Byte-comparable across processes and
    transports — the convergence tests' equality oracle.
    @raise Controller_error on an unknown switch or a link failure. *)

val engine : t -> Dl.Engine.t
(** The underlying engine, for inspection. *)

val relations : t -> string list
(** Every relation of the generated program, in declaration order. *)

val relation_dump : t -> string -> string list
(** Canonical text dump of one engine relation, sorted — the
    cross-shard convergence tests' per-relation equality oracle. *)

val stats : t -> stats
(** This controller's own counts (see {!type-stats}). *)

val preflight : t -> string list
(** Authoring lint: output relations no rule writes (except those bound
    to a table's default action) and digest relations no rule reads. *)
