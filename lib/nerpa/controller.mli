(** The Nerpa controller: the state-synchronisation loop tying the
    three planes together (Fig. 4 of the paper).

    The controller is split into a {e step core} and a {e driver}.
    The step core ({!Step}, {!step}) turns one plane event into the
    commands to execute; it commits DL transactions but performs no
    transport I/O.  The driver ({!sync}) polls the {!Links}, feeds
    events to the core and executes its commands, owning every
    failure-handling policy: bounded retry with exponential backoff on
    transient write errors, digest-redelivery dedup by [list_id], and
    full reconciliation when a switch reconnects (dump its tables over
    the link, diff against the engine's outputs, write corrective
    deletes/inserts — observable via the [nerpa.reconcile.*] metrics). *)

exception Controller_error of string

type stats = {
  txns : int;             (** DL transactions committed *)
  entries_written : int;  (** table entries inserted/deleted *)
  digests_consumed : int;
  groups_updated : int;
}
(** An immutable snapshot of {e this} controller's counts, independent
    of the process-global {!Obs} registry (the [nerpa.*] metrics
    aggregate across controllers and read zero while collection is
    disabled; these do neither). *)

type t

val create :
  ?digest_replace:(string * string list) list ->
  ?max_iterations:int ->
  ?retry_limit:int ->
  ?mgmt_link_of:(Ovsdb.Db.monitor -> Links.mgmt_link) ->
  ?p4_link_of:(string -> P4runtime.server -> Links.p4_link) ->
  ?pool:Pool.t ->
  db:Ovsdb.Db.t ->
  p4:P4.Program.t ->
  rules:string ->
  switches:(string * P4.Switch.t) list ->
  unit ->
  t
(** Build a controller: generate the relation schema from [db]'s schema
    and [p4], parse the user [rules] text, create the engine, subscribe
    a monitor, and attach a P4Runtime server to every switch (all run
    the same program, as in the paper's prototype).

    [digest_replace] gives last-writer-wins semantics to digest
    relations: [(digest, key_columns)] makes a newly inserted digest
    row retract previous rows agreeing on the key columns — e.g. MAC
    mobility, where a (vlan, mac) binding moves between ports.

    [max_iterations] (default [1000]) bounds the {!sync} feedback loop:
    the number of poll-commit-push iterations allowed before sync gives
    up and reports the still-changing relations.

    [retry_limit] (default [8]) bounds the write retries on a transient
    link failure before the switch is marked for reconciliation.

    [mgmt_link_of] and [p4_link_of] choose the transport for each plane
    boundary (default: the direct in-process links).  Pass
    {!Links.wire_mgmt} / {!Links.wire_p4} to round-trip every message
    through serialized bytes, or wrap either with {!Transport.faulty}
    for fault-injection runs.

    [pool] (default: none, i.e. fully sequential) parallelises the
    driver and the engine: per-switch polls, command batches and
    reconciliations run as pool tasks (a slow or down link no longer
    stalls the fleet), independent DL strata evaluate on the pool
    during commits, and the step core stays single-threaded — results
    are identical to a sequential run.
    @raise Controller_error on parse errors, schema mismatches, or a
    non-positive [max_iterations]/[retry_limit]. *)

(** Events consumed and commands produced by the pure step core. *)
module Step : sig
  type event =
    | Monitor_batch of Ovsdb.Db.table_updates
    | Digest_lists of string * P4runtime.digest_list list
        (** digest lists received from the named switch (possibly
            redelivered — the core dedups by [list_id]) *)
    | Switch_up of string
    | Switch_down of string

  type command =
    | Write of string * P4runtime.update list
        (** send this batch to the named switch (atomic) *)
    | Ack of string * int  (** acknowledge a digest list *)
    | Reconcile of string  (** resynchronise the named switch's state *)
end

val step : t -> Step.event -> Step.command list
(** Process one plane event and return the commands to execute.  The
    core commits DL transactions and updates controller-local state but
    performs no transport I/O, so its decisions are testable without
    any link in place.  {!sync} is a thin loop around this function.
    @raise Controller_error on events naming unknown switches or
    digests. *)

val sync : t -> int
(** Process all pending management-plane changes and data-plane digests
    until quiescent; returns the number of DL transactions committed.
    Transient write failures are retried (bounded by [retry_limit]);
    switches whose links failed are reconciled when they reconnect.
    @raise Controller_error if a switch rejects a fresh batch outright,
    or if the feedback loop is still producing changes after
    [max_iterations] iterations — the error message reports the fuel
    spent and the names and delta cardinalities of the relations that
    were still changing in the last iteration. *)

val reconcile : t -> string -> unit
(** Force a full reconciliation of one switch (by name): dump its
    tables and multicast groups over the link, diff against the
    engine's outputs, and write corrective deletes/inserts.  A link
    failure leaves the switch marked dirty; the next {!sync} retries.
    @raise Controller_error on an unknown switch name. *)

val engine : t -> Dl.Engine.t
(** The underlying engine, for inspection. *)

val stats : t -> stats
(** This controller's own counts (see {!type-stats}). *)

val preflight : t -> string list
(** Authoring lint: output relations no rule writes (except those bound
    to a table's default action) and digest relations no rule reads. *)
